package lsnuma

// Differential tests for the flat paged directory (PR 5): every
// workload × protocol × scheduler combination must export byte-identical
// Results under the dense array-backed directory and under the legacy
// map-backed directory (Config.MapDirectory). The map backend is the
// reference storage semantics; the flat backend claims identical protocol
// behavior with none of the hashing, and these tests hold it to that.
// Machine reuse (the run pool) is also pinned here: re-running a point on
// a Reset machine must reproduce a fresh machine's Result byte for byte.

import (
	"bytes"
	"fmt"
	"testing"
)

// runFlatMap runs the same point with the flat and the map directory
// backends and fails unless the exported Results match byte for byte.
func runFlatMap(t *testing.T, cfg Config, run func(Config) (*Result, error)) {
	t.Helper()
	cfg.MapDirectory = true
	mp, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MapDirectory = false
	flat, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mj, fj := exportJSON(t, mp), exportJSON(t, flat)
	if !bytes.Equal(mj, fj) {
		t.Errorf("directory backends diverge:\nmap:  %s\nflat: %s", mj, fj)
	}
}

// TestFlatVsMapMatrix covers the full workload × protocol × scheduler
// matrix: the directory storage layout must be invisible in every Result.
func TestFlatVsMapMatrix(t *testing.T) {
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			for _, serial := range []bool{false, true} {
				w, p, serial := w, p, serial
				sched := "ahead"
				if serial {
					sched = "serial"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", w, p, sched), func(t *testing.T) {
					t.Parallel()
					cfg := DefaultConfig()
					if w == "oltp" {
						cfg = OLTPConfig()
					}
					cfg.Protocol = p
					cfg.SerialSchedule = serial
					runFlatMap(t, cfg, func(c Config) (*Result, error) {
						return Run(c, w, ScaleTest)
					})
				})
			}
		}
	}
}

// TestFlatVsMapChecked re-runs the matrix's LS column with the online
// invariant checker on: the checker iterates the directory, so it must
// see identical state under both layouts.
func TestFlatVsMapChecked(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			if w == "oltp" {
				cfg = OLTPConfig()
			}
			cfg.Protocol = LS
			cfg.Check = CheckFull
			runFlatMap(t, cfg, func(c Config) (*Result, error) {
				return Run(c, w, ScaleTest)
			})
		})
	}
}

// TestMachineReuseDeterminism pins the run pool's contract: the first Run
// of a config uses a fresh machine, later Runs of structurally compatible
// configs get a Reset pooled machine, and every repetition must export a
// byte-identical Result. The middle runs deliberately retarget the pooled
// machine across protocols to exercise Reset's protocol swap.
func TestMachineReuseDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	first, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, first)
	for i := 0; i < 3; i++ {
		for _, p := range Protocols() {
			c := cfg
			c.Protocol = p
			if _, err := Run(c, "mp3d", ScaleTest); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Run(cfg, "mp3d", ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		if got := exportJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("rep %d diverged from fresh-machine run:\nfresh:  %s\nreused: %s", i, want, got)
		}
	}
}
