package lsnuma

import (
	"context"
	"fmt"
)

// SweepParam identifies one axis of the paper's Table 1 parameter space
// (the Section 5.5 variation analysis).
type SweepParam string

// The four sweep axes shared by cmd/lssweep, cmd/lsreport and the
// benchmark harness.
const (
	SweepBlock SweepParam = "block" // block sizes 16..128 B (Table 1)
	SweepL1    SweepParam = "l1"    // L1 sizes 4..64 kB (Table 1)
	SweepL2    SweepParam = "l2"    // L2 sizes 64 kB..2 MB (Table 1)
	SweepNodes SweepParam = "nodes" // processor counts 2..32 (Figure 5 regime)
)

// SweepParams lists the supported sweep axes.
func SweepParams() []SweepParam {
	return []SweepParam{SweepBlock, SweepL1, SweepL2, SweepNodes}
}

// ParseSweepParam converts a string (e.g. a CLI flag) to a SweepParam.
func ParseSweepParam(s string) (SweepParam, error) {
	for _, p := range SweepParams() {
		if s == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown sweep %q (want block, l1, l2, nodes)", s)
}

// SweepPoint is one labeled configuration of a sweep grid.
type SweepPoint struct {
	Label  string
	Config Config
}

// SweepGrid returns the labeled configurations of the Table 1 sweep along
// param, derived from base. This is the single definition of the grids
// that cmd/lssweep prints, cmd/lsreport regenerates and the benchmark
// harness samples.
func SweepGrid(param SweepParam, base Config) ([]SweepPoint, error) {
	var points []SweepPoint
	switch param {
	case SweepBlock:
		// Table 1: block sizes 16..128 (OLTP's Table 4 also uses 256).
		for _, b := range []uint64{16, 32, 64, 128} {
			cfg := base
			cfg.BlockSize = b
			points = append(points, SweepPoint{fmt.Sprintf("block=%dB", b), cfg})
		}
	case SweepL1:
		// Table 1: L1 sizes 4..64 kB.
		for _, kb := range []uint64{4, 16, 32, 64} {
			cfg := base
			cfg.L1.Size = kb * 1024
			points = append(points, SweepPoint{fmt.Sprintf("l1=%dkB", kb), cfg})
		}
	case SweepL2:
		// Table 1: L2 sizes 64 kB..2 MB. The L1 must stay no larger than
		// the (inclusive) L2.
		for _, kb := range []uint64{64, 512, 1024, 2048} {
			cfg := base
			cfg.L2.Size = kb * 1024
			if cfg.L1.Size > cfg.L2.Size {
				cfg.L1.Size = cfg.L2.Size / 2
			}
			points = append(points, SweepPoint{fmt.Sprintf("l2=%dkB", kb), cfg})
		}
	case SweepNodes:
		for _, n := range []int{2, 4, 8, 16, 32} {
			cfg := base
			cfg.Nodes = n
			points = append(points, SweepPoint{fmt.Sprintf("nodes=%d", n), cfg})
		}
	default:
		return nil, fmt.Errorf("unknown sweep %q (want block, l1, l2, nodes)", param)
	}
	return points, nil
}

// SweepResult is one grid point's protocol comparison. A failed cell
// leaves a nil entry in Results and records its error (and diagnostic
// bundle) under the same protocol key — an annotated hole rather than a
// dead sweep.
type SweepResult struct {
	Label   string
	Config  Config
	Results map[Protocol]*Result
	// Errs holds the failure of each failed cell (no key for successes).
	Errs map[Protocol]error
	// Repros holds the diagnostic bundles of failed cells.
	Repros map[Protocol]*ReproBundle
}

// SweepPoints expands the Table 1 grid along param into the flat
// (point, protocol) list that Sweep executes: the labeled grid plus
// len(grid)*len(Protocols()) points in grid-major, protocol-minor
// order. Exported so services (the lsnumad daemon) can run the exact
// point set Sweep would and stream cells as they complete.
func SweepPoints(param SweepParam, base Config, workloadName string, scale Scale) ([]SweepPoint, []Point, error) {
	grid, err := SweepGrid(param, base)
	if err != nil {
		return nil, nil, err
	}
	protos := Protocols()
	points := make([]Point, 0, len(grid)*len(protos))
	for _, g := range grid {
		for _, p := range protos {
			cfg := g.Config
			cfg.Protocol = p
			points = append(points, Point{
				Label:    fmt.Sprintf("%s/%s", g.Label, p),
				Config:   cfg,
				Workload: workloadName,
				Scale:    scale,
			})
		}
	}
	return grid, points, nil
}

// CellResult assembles one grid point's SweepResult from its
// per-protocol PointResults (in Protocols() order — the slice
// results[i*len(Protocols()) : (i+1)*len(Protocols())] of a
// SweepPoints run).
func CellResult(g SweepPoint, prs []PointResult) SweepResult {
	protos := Protocols()
	out := SweepResult{Label: g.Label, Config: g.Config, Results: make(map[Protocol]*Result, len(protos))}
	for j, p := range protos {
		pr := prs[j]
		out.Results[p] = pr.Result
		if pr.Err != nil {
			if out.Errs == nil {
				out.Errs = make(map[Protocol]error)
				out.Repros = make(map[Protocol]*ReproBundle)
			}
			out.Errs[p] = pr.Err
			out.Repros[p] = pr.Repro
		}
	}
	return out
}

// SweepProgress tracks cell completion over the flat point list of a
// SweepPoints run: points complete in any order, and the tracker hands
// back cells in grid order exactly once, as soon as every protocol of a
// cell has finished. It is the single implementation behind both the
// lsnumad daemon's in-order NDJSON cell stream and the job journal's
// completion cursor (the leading-complete cell count is what survives a
// daemon restart meaningfully: every cell before the cursor is durable
// in the result cache).
//
// SweepProgress is not safe for concurrent use; callers serialize
// PointDone/Flush (the daemon holds its stream mutex across both).
type SweepProgress struct {
	nproto int
	remain []int
	seen   []bool
	next   int
	done   int
}

// NewSweepProgress returns a tracker for a grid of cells cells, each
// awaiting one point per protocol (the SweepPoints layout).
func NewSweepProgress(cells int) *SweepProgress {
	nproto := len(Protocols())
	remain := make([]int, cells)
	for i := range remain {
		remain[i] = nproto
	}
	return &SweepProgress{nproto: nproto, remain: remain, seen: make([]bool, cells*nproto)}
}

// PointDone records completion of flat point index i (grid-major,
// protocol-minor) and returns the indexes of cells that became emittable
// because of it, in grid order. A cell is emittable when all its
// protocols are done and every earlier cell has already been handed out.
// Out-of-range indexes and repeat completions are ignored.
func (p *SweepProgress) PointDone(i int) []int {
	if i < 0 || i >= len(p.seen) || p.seen[i] {
		return nil
	}
	p.seen[i] = true
	p.remain[i/p.nproto]--
	p.done++
	var ready []int
	for p.next < len(p.remain) && p.remain[p.next] == 0 {
		ready = append(ready, p.next)
		p.next++
	}
	return ready
}

// Flush returns every cell not yet handed out (in grid order) and marks
// them emitted — the tail-flush path for cancelled sweeps whose skipped
// points never reach PointDone.
func (p *SweepProgress) Flush() []int {
	var rest []int
	for ; p.next < len(p.remain); p.next++ {
		rest = append(rest, p.next)
	}
	return rest
}

// PointsDone returns how many points have completed.
func (p *SweepProgress) PointsDone() int { return p.done }

// Cursor returns the leading-complete cell count: every cell below it
// has been handed out in grid order.
func (p *SweepProgress) Cursor() int { return p.next }

// Sweep runs the Table 1 grid along param for the workload under every
// protocol, with all (point, protocol) simulations executing concurrently
// on a bounded worker pool. Results come back in grid order; a failed
// simulation leaves a nil entry in its point's map and is reported in the
// aggregated error, without aborting the other points.
func Sweep(ctx context.Context, base Config, param SweepParam, workloadName string, scale Scale, opt RunOptions) ([]SweepResult, error) {
	grid, points, err := SweepPoints(param, base, workloadName, scale)
	if err != nil {
		return nil, err
	}
	results, runErr := RunAll(ctx, points, opt)
	protos := Protocols()
	out := make([]SweepResult, len(grid))
	for i, g := range grid {
		out[i] = CellResult(g, results[i*len(protos):(i+1)*len(protos)])
	}
	return out, runErr
}
