package lsnuma

// Host-core scaling measurements for the parallel scheduler. `go test
// -run WriteParBenchJSON -parbenchjson BENCH_6.json .` benchmarks the
// run-ahead scheduler (the single-threaded baseline) and the parallel
// conservative scheduler at GOMAXPROCS 1, 2, 4 and 8 on the two figure
// workloads with enough parked concurrency to shard (cholesky and mp3d
// at 16 processors, scale=small), writing one JSON record per point:
// wall-clock per full simulation, simulator throughput in simulated
// memory operations per wall-clock second, and the speedup over the
// run-ahead baseline. Every point must reproduce the baseline's
// simulated cycles and operation counts exactly — the schedulers are
// differential oracles for each other, so a scaling table comparing
// different experiments would be a bug, not a measurement.
//
// The file checked in at the repo root records the numbers on the
// machine that generated it, including num_cpu: scaling points beyond
// the host's core count measure scheduling overhead, not parallelism,
// and a single-core host cannot show any speedup at all (the
// coordinator/worker handoffs and the per-round safe-window computation
// are pure overhead there). Regenerate it when touching the engine hot
// path or the parallel scheduler.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

var parBenchJSONFlag = flag.String("parbenchjson", "", "write machine-readable parallel-scheduler scaling benchmarks to this file")

// ParBenchPoint is one benchmarked configuration in the -parbenchjson
// output.
type ParBenchPoint struct {
	Workload   string `json:"workload"`
	Protocol   string `json:"protocol"`
	Nodes      int    `json:"nodes"`
	Scheduler  string `json:"scheduler"`  // "run-ahead" or "parallel"
	GoMaxProcs int    `json:"gomaxprocs"` // host cores the measurement may use
	Shards     int    `json:"shards"`     // home shards (0 on the run-ahead rows)

	NsPerOp      float64 `json:"ns_per_op"`       // wall-clock per full simulation
	SimCycles    uint64  `json:"sim_cycles"`      // simulated execution time
	SimOps       uint64  `json:"sim_ops"`         // simulated loads + stores
	SimOpsPerSec float64 `json:"sim_ops_per_sec"` // simulator throughput
	Speedup      float64 `json:"speedup"`         // vs the run-ahead baseline of the same workload
}

// ParBenchReport is the top-level -parbenchjson document.
type ParBenchReport struct {
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	NumCPU  int             `json:"num_cpu"`
	Scale   string          `json:"scale"`
	Results []ParBenchPoint `json:"results"`
}

func TestWriteParBenchJSON(t *testing.T) {
	if *parBenchJSONFlag == "" {
		t.Skip("set -parbenchjson <file> to generate parallel-scheduler scaling benchmarks")
	}
	// Restore the harness's parallelism when done — later tests in the
	// same process must not inherit a pinned GOMAXPROCS.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	workloads := []struct {
		name  string
		nodes int
	}{
		{"cholesky", 16},
		{"mp3d", 16},
	}
	hostCores := []int{1, 2, 4, 8}
	report := ParBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "small",
	}
	for _, w := range workloads {
		cfg := DefaultConfig()
		cfg.Nodes = w.nodes
		cfg.Protocol = LS

		measure := func(cfg Config, procs int) (float64, *Result) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			var last *Result
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg, w.name, ScaleSmall)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			})
			return float64(br.NsPerOp()), last
		}

		// Baseline: the production run-ahead scheduler. It is
		// single-threaded, so measure it at GOMAXPROCS=1.
		baseNs, baseRes := measure(cfg, 1)
		baseOps := baseRes.Loads + baseRes.Stores
		report.Results = append(report.Results, ParBenchPoint{
			Workload: w.name, Protocol: string(LS), Nodes: w.nodes,
			Scheduler: "run-ahead", GoMaxProcs: 1,
			NsPerOp: baseNs, SimCycles: baseRes.ExecTime, SimOps: baseOps,
			SimOpsPerSec: float64(baseOps) / (baseNs / 1e9),
			Speedup:      1,
		})
		t.Logf("%s/%d run-ahead: %.2fms/op, %.2fM sim-ops/s",
			w.name, w.nodes, baseNs/1e6, float64(baseOps)/(baseNs/1e9)/1e6)

		for _, procs := range hostCores {
			pcfg := cfg
			pcfg.Scheduler = "parallel"
			pcfg.Shards = procs // one home shard per available core
			ns, res := measure(pcfg, procs)
			ops := res.Loads + res.Stores
			if res.ExecTime != baseRes.ExecTime || ops != baseOps {
				t.Errorf("%s/%d parallel@%d disagrees with run-ahead: %d cycles/%d ops vs %d cycles/%d ops",
					w.name, w.nodes, procs, res.ExecTime, ops, baseRes.ExecTime, baseOps)
			}
			report.Results = append(report.Results, ParBenchPoint{
				Workload: w.name, Protocol: string(LS), Nodes: w.nodes,
				Scheduler: "parallel", GoMaxProcs: procs, Shards: procs,
				NsPerOp: ns, SimCycles: res.ExecTime, SimOps: ops,
				SimOpsPerSec: float64(ops) / (ns / 1e9),
				Speedup:      baseNs / ns,
			})
			t.Logf("%s/%d parallel@%d: %.2fms/op, %.2fM sim-ops/s, %.2fx vs run-ahead",
				w.name, w.nodes, procs, ns/1e6, float64(ops)/(ns/1e9)/1e6, baseNs/ns)
		}
	}

	f, err := os.Create(*parBenchJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}
