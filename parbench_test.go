package lsnuma

// Host-core scaling measurements for the parallel scheduler. `go test
// -run WriteParBenchJSON -parbenchjson BENCH_10.json .` benchmarks the
// run-ahead scheduler (the single-threaded baseline) and the parallel
// conservative scheduler at GOMAXPROCS 1, 2, 4 and 8 on the two figure
// workloads with enough parked concurrency to shard (cholesky and mp3d
// at 16 processors, scale=small), writing one JSON record per point:
// wall-clock per full simulation, simulator throughput in simulated
// memory operations per wall-clock second, the speedup over the
// run-ahead baseline, heap allocations per simulation, and the
// coordination counters from Machine.RoundStats / Machine.WindowStats
// (serial steps, inline vs worker rounds, fused streak extensions,
// worker wakeups, sequence-log replays, window recomputes). Every point
// must reproduce the baseline's simulated cycles and operation counts
// exactly — the schedulers are differential oracles for each other, so
// a scaling table comparing different experiments would be a bug, not a
// measurement.
//
// The file checked in at the repo root records the numbers on the
// machine that generated it, including num_cpu: scaling points beyond
// the host's core count measure scheduling overhead, not parallelism,
// and a single-core host cannot show any speedup at all (the
// coordinator/worker handoffs and the per-round safe-window computation
// are pure overhead there). Regenerate it when touching the engine hot
// path or the parallel scheduler.
//
// This file also holds the two regression guards for that overhead:
// TestParallelSingleShardOverhead pins the shards=1 coordination tax to
// ≤1.5x of run-ahead on one core, and TestParallelAllocsPerRound pins
// the round machinery's marginal allocation cost to ~zero.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
)

var parBenchJSONFlag = flag.String("parbenchjson", "", "write machine-readable parallel-scheduler scaling benchmarks to this file")

// ParBenchPoint is one benchmarked configuration in the -parbenchjson
// output. The round/wakeup/window counters come from a separate counted
// run outside the timing loop and are zero on the run-ahead rows.
type ParBenchPoint struct {
	Workload   string `json:"workload"`
	Protocol   string `json:"protocol"`
	Nodes      int    `json:"nodes"`
	Scheduler  string `json:"scheduler"`  // "run-ahead" or "parallel"
	GoMaxProcs int    `json:"gomaxprocs"` // host cores the measurement may use
	Shards     int    `json:"shards"`     // home shards (0 on the run-ahead rows)

	NsPerOp      float64 `json:"ns_per_op"`       // wall-clock per full simulation
	SimCycles    uint64  `json:"sim_cycles"`      // simulated execution time
	SimOps       uint64  `json:"sim_ops"`         // simulated loads + stores
	SimOpsPerSec float64 `json:"sim_ops_per_sec"` // simulator throughput
	Speedup      float64 `json:"speedup"`         // vs the run-ahead baseline of the same workload
	AllocsPerRun int64   `json:"allocs_per_run"`  // heap allocations per full simulation

	SerialSteps      uint64 `json:"serial_steps,omitempty"`      // head-of-line ops serviced by the coordinator
	InlineRounds     uint64 `json:"inline_rounds,omitempty"`     // sub-batches serviced without a worker handoff
	WorkerRounds     uint64 `json:"worker_rounds,omitempty"`     // sub-batches dispatched to shard workers
	FusedRounds      uint64 `json:"fused_rounds,omitempty"`      // sub-batches that extended an open streak
	Wakeups          uint64 `json:"wakeups,omitempty"`           // parked-worker kicks (spin pickups are free)
	Replays          uint64 `json:"replays,omitempty"`           // sequence-log merge passes
	WindowRounds     uint64 `json:"window_rounds,omitempty"`     // safe-window reads answered
	WindowRecomputes uint64 `json:"window_recomputes,omitempty"` // per-op bound recomputations
}

// ParBenchReport is the top-level -parbenchjson document.
type ParBenchReport struct {
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	NumCPU  int             `json:"num_cpu"`
	Scale   string          `json:"scale"`
	Results []ParBenchPoint `json:"results"`
}

// countedRun runs one simulation on a dedicated machine — bypassing the
// machine pool, which may recycle a successful run's machine before its
// counters can be read — and returns the machine for counter inspection.
func countedRun(t *testing.T, cfg Config, name string, scale Scale) *engine.Machine {
	t.Helper()
	m, err := NewEngineMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := registry.New(name, scale, cfg.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteParBenchJSON(t *testing.T) {
	if *parBenchJSONFlag == "" {
		t.Skip("set -parbenchjson <file> to generate parallel-scheduler scaling benchmarks")
	}
	// Restore the harness's parallelism when done — later tests in the
	// same process must not inherit a pinned GOMAXPROCS.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	workloads := []struct {
		name  string
		nodes int
	}{
		{"cholesky", 16},
		{"mp3d", 16},
	}
	hostCores := []int{1, 2, 4, 8}
	report := ParBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "small",
	}
	for _, w := range workloads {
		cfg := DefaultConfig()
		cfg.Nodes = w.nodes
		cfg.Protocol = LS

		measure := func(cfg Config, procs int) (float64, int64, *Result) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			var last *Result
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg, w.name, ScaleSmall)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			})
			return float64(br.NsPerOp()), br.AllocsPerOp(), last
		}

		// Baseline: the production run-ahead scheduler. It is
		// single-threaded, so measure it at GOMAXPROCS=1.
		baseNs, baseAllocs, baseRes := measure(cfg, 1)
		baseOps := baseRes.Loads + baseRes.Stores
		report.Results = append(report.Results, ParBenchPoint{
			Workload: w.name, Protocol: string(LS), Nodes: w.nodes,
			Scheduler: "run-ahead", GoMaxProcs: 1,
			NsPerOp: baseNs, SimCycles: baseRes.ExecTime, SimOps: baseOps,
			SimOpsPerSec: float64(baseOps) / (baseNs / 1e9),
			Speedup:      1,
			AllocsPerRun: baseAllocs,
		})
		t.Logf("%s/%d run-ahead: %.2fms/op, %.2fM sim-ops/s",
			w.name, w.nodes, baseNs/1e6, float64(baseOps)/(baseNs/1e9)/1e6)

		for _, procs := range hostCores {
			pcfg := cfg
			pcfg.Scheduler = "parallel"
			pcfg.Shards = procs // one home shard per available core
			ns, allocs, res := measure(pcfg, procs)
			ops := res.Loads + res.Stores
			if res.ExecTime != baseRes.ExecTime || ops != baseOps {
				t.Errorf("%s/%d parallel@%d disagrees with run-ahead: %d cycles/%d ops vs %d cycles/%d ops",
					w.name, w.nodes, procs, res.ExecTime, ops, baseRes.ExecTime, baseOps)
			}
			// One counted run outside the timing loop surfaces the
			// coordination counters for this point.
			cm := countedRun(t, pcfg, w.name, ScaleSmall)
			rs := cm.RoundStats()
			winRounds, winRecomputes, _ := cm.WindowStats()
			report.Results = append(report.Results, ParBenchPoint{
				Workload: w.name, Protocol: string(LS), Nodes: w.nodes,
				Scheduler: "parallel", GoMaxProcs: procs, Shards: procs,
				NsPerOp: ns, SimCycles: res.ExecTime, SimOps: ops,
				SimOpsPerSec: float64(ops) / (ns / 1e9),
				Speedup:      baseNs / ns,
				AllocsPerRun: allocs,
				SerialSteps:  rs.SerialSteps, InlineRounds: rs.InlineRounds,
				WorkerRounds: rs.WorkerRounds, FusedRounds: rs.FusedRounds,
				Wakeups: rs.Wakeups, Replays: rs.Replays,
				WindowRounds: winRounds, WindowRecomputes: winRecomputes,
			})
			t.Logf("%s/%d parallel@%d: %.2fms/op, %.2fM sim-ops/s, %.2fx vs run-ahead (serial=%d inline=%d worker=%d fused=%d wakeups=%d replays=%d)",
				w.name, w.nodes, procs, ns/1e6, float64(ops)/(ns/1e9)/1e6, baseNs/ns,
				rs.SerialSteps, rs.InlineRounds, rs.WorkerRounds, rs.FusedRounds, rs.Wakeups, rs.Replays)
		}
	}

	f, err := os.Create(*parBenchJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSingleShardOverhead pins the parallel scheduler's
// coordination tax at shards=1 on a single core: the pure-overhead
// configuration where every cycle beyond the run-ahead baseline is
// round machinery, not parallelism. Before the persistent-worker /
// fused-round / conch-handoff rework this ratio sat near 3.0x; it now
// measures ~1.1x, so the 1.5x bound leaves real headroom against
// benchmark noise while still catching any regression back toward
// per-op channel ping-pong.
func TestParallelSingleShardOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock benchmark in -short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	cfg := DefaultConfig()
	cfg.Nodes = 16
	cfg.Protocol = LS

	bench := func(cfg Config) float64 {
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, "cholesky", ScaleSmall); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(br.NsPerOp())
	}

	baseNs := bench(cfg)
	pcfg := cfg
	pcfg.Scheduler = "parallel"
	pcfg.Shards = 1
	parNs := bench(pcfg)

	ratio := parNs / baseNs
	t.Logf("cholesky/16 small GOMAXPROCS=1: run-ahead %.2fms, parallel@1 %.2fms, ratio %.2fx",
		baseNs/1e6, parNs/1e6, ratio)
	if ratio > 1.5 {
		t.Errorf("parallel shards=1 runs at %.2fx of run-ahead on one core, want <= 1.5x", ratio)
	}
}

// TestParallelAllocsPerRound guards the allocation-free round machinery:
// with per-shard batch slices, per-lane sequence logs and the served
// scratch reused across rounds, the marginal allocation cost of 20x more
// serviced operations (and therefore ~20x more rounds) must be ~zero.
// Before the reuse rework every round allocated batch slices and every
// replay allocated a merged log.
func TestParallelAllocsPerRound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Scheduler = "parallel"
	cfg.Shards = 2

	allocsFor := func(accesses int) float64 {
		build := func(m *engine.Machine) ([]engine.Program, error) {
			shared := m.Alloc().Alloc("shared", 256, 0)
			bufs := make([]memory.Addr, cfg.Nodes)
			for i := range bufs {
				bufs[i] = m.Alloc().Alloc("buf", 1024, 0)
			}
			progs := make([]engine.Program, cfg.Nodes)
			for i := range progs {
				buf := bufs[i]
				progs[i] = func(p *engine.Proc) {
					for j := 0; j < accesses; j++ {
						a := buf + memory.Addr((j*memory.WordSize)%1024)
						p.Read(a)
						p.Write(a)
						// Cross-node traffic so operations park and the
						// coordinator actually forms multi-op rounds.
						p.Read(shared + memory.Addr((j*memory.WordSize)%256))
					}
				}
			}
			return progs, nil
		}
		return testing.AllocsPerRun(3, func() {
			if _, err := RunPrograms(cfg, "allocguard", build); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := allocsFor(500)
	big := allocsFor(10000)
	perAccess := (big - small) / float64(3*(10000-500))
	t.Logf("parallel allocs: %d accesses=%.0f, %d accesses=%.0f, marginal=%.4f allocs/access",
		3*500, small, 3*10000, big, perAccess)
	if perAccess > 0.05 {
		t.Errorf("parallel round machinery allocates %.4f allocations per access, want ~0 (<= 0.05)", perAccess)
	}
}
