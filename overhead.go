package lsnuma

import "math"

// DirectoryOverhead reports the per-memory-block directory storage each
// protocol needs, in bits — the hardware-cost comparison of the paper's
// Section 3.1 ("the complexity added for this protocol extension ... is
// equal to the complexity added by previous migratory sharing
// techniques").
type DirectoryOverhead struct {
	// PresenceBits is the full-map sharer vector (one bit per node).
	PresenceBits int
	// StateBits encodes the home state (Uncached/Shared/Dirty/Load-Store).
	StateBits int
	// OwnerBits identifies the exclusive owner (log2 N).
	OwnerBits int
	// TagBits is the protocol extension's addition: for LS the
	// last-reader field (log2 N) plus the LS bit; for AD the last-writer
	// field (log2 N) plus the migratory bit; zero for Baseline.
	TagBits int
	// HysteresisBits is the §5.5 two-step counters' cost, when enabled.
	HysteresisBits int
}

// Total returns the bits per block.
func (d DirectoryOverhead) Total() int {
	return d.PresenceBits + d.StateBits + d.OwnerBits + d.TagBits + d.HysteresisBits
}

// Overhead computes the per-block directory cost for a protocol on an
// n-node machine. It returns the zero value for unknown protocols.
func Overhead(p Protocol, n int, v Variant) DirectoryOverhead {
	if n < 2 {
		n = 2
	}
	logN := int(math.Ceil(math.Log2(float64(n))))
	d := DirectoryOverhead{
		PresenceBits: n,
		StateBits:    2,
		OwnerBits:    logN,
	}
	switch p {
	case Baseline, EX:
		// EX adds no directory state: the annotation travels with the
		// request.
	case AD, LS:
		d.TagBits = logN + 1
		if v.TagHysteresis > 1 || v.DetagHysteresis > 1 {
			d.HysteresisBits = 2
		}
	default:
		return DirectoryOverhead{}
	}
	return d
}
