package lsnuma

import (
	"lsnuma/internal/classify"
	"lsnuma/internal/memory"
	"lsnuma/internal/stats"
)

// Result is the full measurement set of one simulation run, mirroring the
// quantities the paper reports.
type Result struct {
	Workload string
	Protocol string
	Scale    string
	Nodes    int

	// Execution time (cycles of the slowest processor) and its
	// machine-wide decomposition (Figures 3, 4, 6, 7, left diagrams).
	ExecTime   uint64
	Busy       uint64
	ReadStall  uint64
	WriteStall uint64

	// Traffic (middle diagrams): message and byte counts total and per
	// category (read-related, write-related, other).
	Msgs       uint64
	Bytes      uint64
	ClassMsgs  [3]uint64
	ClassBytes [3]uint64

	// Global read misses by home state (right diagrams): Clean, Dirty,
	// Clean-exclusive, Dirty-exclusive.
	ReadMisses [4]uint64

	// Invalidation accounting (Figure 5).
	GlobalInv                   uint64 // ownership acquisitions (upgrades)
	GlobalWriteMisses           uint64
	Invalidations               uint64 // individual invalidation messages
	InvalidationsPerGlobalWrite float64

	// Optimization activity.
	EliminatedOwnership uint64
	ExclusiveGrants     uint64
	FailedPredictions   uint64

	// Load-store sequence analysis (Tables 2 and 3).
	Sources  [3]SourceRow
	Total    SourceRow
	Coverage CoverageRow

	// RegionCoverage attributes load-store coverage per named data region
	// (allocator region names), for diagnostics and region reports.
	RegionCoverage map[string]CoverageRow

	// SequenceDistance histograms the number of intervening global
	// accesses between each load-store sequence's read and write
	// (buckets: 0, 1-3, 4-15, 16-63, 64-255, ≥256). Large distances are
	// what defeat instruction-centric (static) detection on OLTP (§2).
	SequenceDistance [6]uint64

	// False sharing (Table 4); populated when TrackFalseSharing is set.
	MissKinds        [4]uint64 // cold, replacement, true-sharing, false-sharing
	FalseSharingFrac float64
	// FalseSharingSteadyFrac excludes cold misses from the denominator
	// (the paper's long runs are effectively cold-free).
	FalseSharingSteadyFrac float64

	// Resil summarizes the resilient transaction layer's activity: NACKs
	// from saturated home buffers, retries with their backoff-induced
	// latency, the per-transaction retry histogram, and injected message
	// faults survived. All-zero on classic (reliable, unlimited-buffer)
	// runs.
	Resil ResilRow

	// Dir summarizes the directory wire format (Config.DirFormat): its
	// name, modeled per-block entry size, and — for the compact formats —
	// the architectural invalidation overshoot. The counters are all-zero
	// under the default full-map format, and they are the only fields a
	// compact format changes: everything else in the Result is
	// byte-identical across formats.
	Dir DirRow

	// Access counts.
	Loads, Stores uint64

	// PerCPU is the per-processor cycle decomposition (load imbalance
	// shows up as busy-time spread: idle spinning is accounted as busy).
	PerCPU []CPURow
}

// CPURow is one processor's cycle and access counts.
type CPURow struct {
	Busy, ReadStall, WriteStall uint64
	Loads, Stores               uint64
}

// ResilRow is the resilience measurement block of a Result.
type ResilRow struct {
	// Nacks counts NACKs from saturated home transaction buffers
	// (Config.DirMSHRs); Retries counts request retransmissions from all
	// causes, of which TimeoutResends recovered lost messages.
	Nacks          uint64
	Retries        uint64
	TimeoutResends uint64
	// Backoff-induced latency: total cycles spent waiting between
	// retries, and the largest single wait.
	BackoffCycles uint64
	MaxBackoff    uint64
	// MaxRetries is the worst per-transaction retry count; MeanRetries is
	// retries per global transaction; RetryHist buckets recovered
	// transactions by retry count (1, 2, 3, 4-7, 8-15, >=16).
	MaxRetries  uint64
	MeanRetries float64
	RetryHist   [6]uint64
	// Injected message-fault activity (Config.Faults drop-msg/dup-msg/
	// reorder-msg).
	DroppedMsgs   uint64
	DupMsgs       uint64
	ReorderedMsgs uint64
}

// DirRow is the directory-wire-format measurement block of a Result.
type DirRow struct {
	// Format is the canonical format name ("full", "limited:4",
	// "coarse:8").
	Format string
	// EntryBits is the modeled presence-tracking storage per directory
	// entry in bits: P for full-map, i*ceil(log2 P)+1 for limited:i,
	// ceil(P/K) for coarse:K.
	EntryBits int
	// ExtraInvals counts invalidations the format would send beyond the
	// exact sharer set (broadcast or coarse-group overshoot).
	ExtraInvals uint64
	// Broadcasts counts invalidation rounds served from an overflowed
	// limited-pointer entry.
	Broadcasts uint64
	// Overflows counts limited-pointer capacity overflow events.
	Overflows uint64
}

// SourceRow is one column of Table 2.
type SourceRow struct {
	GlobalWrites    uint64
	LoadStoreWrites uint64
	MigratoryWrites uint64
	LoadStoreFrac   float64 // load-store of all global writes
	MigratoryFrac   float64 // migratory of load-store sequences
}

// CoverageRow is one row of Table 3.
type CoverageRow struct {
	LoadStoreWrites     uint64
	LoadStoreEliminated uint64
	LoadStoreCoverage   float64
	MigratoryWrites     uint64
	MigratoryEliminated uint64
	MigratoryCoverage   float64
}

// GlobalWrites returns ownership acquisitions plus write misses.
func (r *Result) GlobalWrites() uint64 { return r.GlobalInv + r.GlobalWriteMisses }

// GlobalReadMisses returns the total global read-miss count.
func (r *Result) GlobalReadMisses() uint64 {
	var n uint64
	for _, v := range r.ReadMisses {
		n += v
	}
	return n
}

// fillResult converts the collectors into a Result.
func fillResult(r *Result, st *stats.Stats, seq *classify.Sequences, fs *classify.FalseSharing) {
	sum := st.Sum()
	r.PerCPU = make([]CPURow, len(st.CPUs))
	for i := range st.CPUs {
		c := &st.CPUs[i]
		r.PerCPU[i] = CPURow{
			Busy: c.Busy, ReadStall: c.ReadStall, WriteStall: c.WriteStall,
			Loads: c.Loads, Stores: c.Stores,
		}
	}
	r.ExecTime = st.ExecTime()
	r.Busy = sum.Busy
	r.ReadStall = sum.ReadStall
	r.WriteStall = sum.WriteStall
	r.Loads = sum.Loads
	r.Stores = sum.Stores

	r.Msgs = st.TotalMsgs()
	r.Bytes = st.TotalBytes()
	cm := st.ClassMsgs()
	cb := st.ClassBytes()
	for i := 0; i < 3; i++ {
		r.ClassMsgs[i] = cm[i]
		r.ClassBytes[i] = cb[i]
	}
	for i := 0; i < 4; i++ {
		r.ReadMisses[i] = st.ReadMisses[i]
	}
	r.GlobalInv = st.GlobalInv
	r.GlobalWriteMisses = st.GlobalWriteMisses
	r.Invalidations = st.Invalidations
	r.InvalidationsPerGlobalWrite = st.InvalidationsPerGlobalWrite()
	r.EliminatedOwnership = st.EliminatedOwnership
	r.ExclusiveGrants = st.ExclusiveGrants
	r.FailedPredictions = st.FailedPredictions

	rs := &st.Resil
	r.Resil = ResilRow{
		Nacks: rs.Nacks, Retries: rs.Retries, TimeoutResends: rs.TimeoutResends,
		BackoffCycles: rs.BackoffCycles, MaxBackoff: rs.MaxBackoff,
		MaxRetries: rs.MaxRetries, RetryHist: rs.RetryHist,
		DroppedMsgs: rs.DroppedMsgs, DupMsgs: rs.DupMsgs, ReorderedMsgs: rs.ReorderedMsgs,
	}
	if txns := st.GlobalReadMisses() + st.GlobalWrites(); txns > 0 {
		r.Resil.MeanRetries = float64(rs.Retries) / float64(txns)
	}
	r.Dir.ExtraInvals = st.Dir.ExtraInvals
	r.Dir.Broadcasts = st.Dir.Broadcasts
	r.Dir.Overflows = st.Dir.Overflows

	if seq != nil {
		for s := memory.Source(0); s < memory.NumSources; s++ {
			r.Sources[s] = sourceRow(seq.Sources[s])
		}
		r.Total = sourceRow(seq.Total())
		for i, v := range seq.Distance {
			r.SequenceDistance[i] = v
		}
		if len(seq.Regions) > 0 {
			r.RegionCoverage = make(map[string]CoverageRow, len(seq.Regions))
			for name, c := range seq.Regions {
				r.RegionCoverage[name] = CoverageRow{
					LoadStoreWrites:     c.LoadStoreWrites,
					LoadStoreEliminated: c.LoadStoreEliminated,
					LoadStoreCoverage:   c.LoadStoreCoverage(),
					MigratoryWrites:     c.MigratoryWrites,
					MigratoryEliminated: c.MigratoryEliminated,
					MigratoryCoverage:   c.MigratoryCoverage(),
				}
			}
		}
		cov := seq.Cov
		r.Coverage = CoverageRow{
			LoadStoreWrites:     cov.LoadStoreWrites,
			LoadStoreEliminated: cov.LoadStoreEliminated,
			LoadStoreCoverage:   cov.LoadStoreCoverage(),
			MigratoryWrites:     cov.MigratoryWrites,
			MigratoryEliminated: cov.MigratoryEliminated,
			MigratoryCoverage:   cov.MigratoryCoverage(),
		}
	}
	if fs != nil {
		for i := 0; i < 4; i++ {
			r.MissKinds[i] = fs.Misses[i]
		}
		r.FalseSharingFrac = fs.FalseSharingFrac()
		r.FalseSharingSteadyFrac = fs.SteadyStateFrac()
	}
}

func sourceRow(c classify.SourceCounters) SourceRow {
	return SourceRow{
		GlobalWrites:    c.GlobalWrites,
		LoadStoreWrites: c.LoadStoreWrites,
		MigratoryWrites: c.MigratoryWrites,
		LoadStoreFrac:   c.LoadStoreFrac(),
		MigratoryFrac:   c.MigratoryFrac(),
	}
}
