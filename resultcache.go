package lsnuma

import (
	"encoding/json"
	"strconv"
	"sync/atomic"

	"lsnuma/internal/engine"
	"lsnuma/internal/resultcache"
)

// DefaultCacheDir is the result cache location used when none is given
// (the -cache flag of lssweep/lsreport).
const DefaultCacheDir = ".lscache"

// resultSchema identifies the cache envelope layout. Bump it if the
// envelope itself (not the simulated semantics — that is
// engine.SchemaVersion) changes shape.
const resultSchema = "lsnuma-result-v1"

// cacheVersion qualifies the cache directory with the engine schema
// version, so entries written by an older engine generation are invisible
// (and thus invalid) after any semantics-changing upgrade.
func cacheVersion() string { return "e" + strconv.Itoa(engine.SchemaVersion) }

// CacheStats counts a ResultCache's traffic over its lifetime.
type CacheStats struct {
	// Hits is the number of points answered from the cache.
	Hits uint64
	// Misses is the number of points that had to simulate (absent,
	// truncated, corrupted or stale entries all count as misses).
	Misses uint64
	// Skips is the number of points not eligible for caching (fault
	// injection configured).
	Skips uint64
	// Errors counts failed cache operations (hashing or write failures);
	// the affected points still simulate normally.
	Errors uint64
	// Dedups is the number of points answered by joining another
	// in-flight computation of the same key (single-flight stampede
	// protection) instead of simulating or reading the store.
	Dedups uint64
}

// ResultCache memoizes point Results persistently (see RunOptions.Cache):
// a point whose canonical content hash — Config, workload, scale and
// engine schema version — matches a stored entry returns the stored
// Result byte-identically instead of simulating. Safe for concurrent use
// by any number of goroutines and processes sharing one cache directory.
//
// In front of the persistent store sits an in-process single-flight
// layer: concurrent computations of the same key collapse into one
// simulation whose outcome every caller shares (see CacheStats.Dedups
// and PointResult.Deduped). A cache with no backing directory —
// NewDedupCache — provides only that layer.
type ResultCache struct {
	c      *resultcache.Cache // nil for a dedup-only cache
	flight resultcache.Flight[pointOutcome]
	hits   atomic.Uint64
	misses atomic.Uint64
	skips  atomic.Uint64
	errs   atomic.Uint64
	dedups atomic.Uint64
}

// OpenResultCache opens (creating if needed) the persistent result cache
// rooted at dir; "" means DefaultCacheDir.
func OpenResultCache(dir string) (*ResultCache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	c, err := resultcache.Open(dir, cacheVersion())
	if err != nil {
		return nil, err
	}
	return &ResultCache{c: c}, nil
}

// NewDedupCache returns a ResultCache with no persistent store: every
// lookup misses and nothing is written to disk, but concurrent
// computations of identical points still collapse into one simulation
// through the single-flight layer. This is what a daemon uses when
// on-disk caching is disabled but stampede protection must stay on.
func NewDedupCache() *ResultCache { return &ResultCache{} }

// Stats returns the cache's hit/miss/skip/error/dedup counters.
func (rc *ResultCache) Stats() CacheStats {
	if rc == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:   rc.hits.Load(),
		Misses: rc.misses.Load(),
		Skips:  rc.skips.Load(),
		Errors: rc.errs.Load(),
		Dedups: rc.dedups.Load(),
	}
}

// PointKey returns the content-addressed cache key of a simulation point:
// a canonical hash of the configuration (field-order independent), the
// workload name, the scale, and the engine schema version. Two points
// with equal keys produce byte-identical Results.
func PointKey(cfg Config, workloadName string, scale Scale) (string, error) {
	cj, err := resultcache.CanonicalJSON(cfg)
	if err != nil {
		return "", err
	}
	return resultcache.Key(
		[]byte(resultSchema),
		[]byte(strconv.Itoa(engine.SchemaVersion)),
		[]byte(workloadName),
		[]byte(scale.String()),
		cj,
	), nil
}

// cacheEnvelope is the stored form of one entry. Embedding the schema and
// key lets lookups reject foreign, stale or corrupted files as plain
// misses.
type cacheEnvelope struct {
	Schema string  `json:"schema"`
	Key    string  `json:"key"`
	Result *Result `json:"result"`
}

// cacheable reports whether a point's Result may be memoized.
// Fault-injected runs exist to exercise failure machinery, not to be
// remembered.
func cacheable(cfg Config) bool { return cfg.Faults == "" }

// get returns the stored Result under key, if any. Every failure mode
// of the stored entry — absent, unreadable, truncated, corrupted,
// written under a different key or schema — is a miss, never an error.
// A dedup-only cache (nil store) always misses.
func (rc *ResultCache) get(key string) (*Result, bool) {
	if rc.c == nil {
		rc.misses.Add(1)
		return nil, false
	}
	data, ok := rc.c.Get(key)
	if !ok {
		rc.misses.Add(1)
		return nil, false
	}
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.Schema != resultSchema || env.Key != key || env.Result == nil {
		rc.misses.Add(1)
		return nil, false
	}
	rc.hits.Add(1)
	return env.Result, true
}

// put memoizes a fresh Result under key. Failures only bump the error
// counter: the simulation already succeeded, and the cache is an
// optimization. A dedup-only cache drops the write.
func (rc *ResultCache) put(key string, res *Result) {
	if rc.c == nil {
		return
	}
	data, err := json.Marshal(cacheEnvelope{Schema: resultSchema, Key: key, Result: res})
	if err != nil {
		rc.errs.Add(1)
		return
	}
	if err := rc.c.Put(key, data); err != nil {
		rc.errs.Add(1)
	}
}

// lookup returns the cached Result for pt, if any (see get for the
// miss semantics). Kept as the direct, flight-free read path for tests
// and tools; RunAll goes through do.
func (rc *ResultCache) lookup(pt Point) (*Result, bool) {
	if rc == nil {
		return nil, false
	}
	if !cacheable(pt.Config) {
		rc.skips.Add(1)
		return nil, false
	}
	key, err := PointKey(pt.Config, pt.Workload, pt.Scale)
	if err != nil {
		rc.errs.Add(1)
		return nil, false
	}
	return rc.get(key)
}

// store memoizes a fresh Result (see put for the failure semantics).
func (rc *ResultCache) store(pt Point, res *Result) {
	if rc == nil || !cacheable(pt.Config) {
		return
	}
	key, err := PointKey(pt.Config, pt.Workload, pt.Scale)
	if err != nil {
		rc.errs.Add(1)
		return
	}
	rc.put(key, res)
}

// pointOutcome is what one flight of a point's computation produced —
// the value shared between a single-flight leader and its followers.
type pointOutcome struct {
	res    *Result
	bundle *ReproBundle
	cached bool
	err    error
}

// do runs one point's computation through the cache stack: the
// persistent store first (a hit returns the stored Result), then the
// single-flight layer (exactly one of N concurrent identical
// computations runs; the rest share its outcome, flagged deduped), then
// compute itself, whose successful Result is written back to the store.
// A nil cache, an uncacheable point (fault injection) or an unhashable
// config computes directly with no dedup.
//
// A follower waits for its leader without observing its own context;
// identical points carry identical deadlines, so the wait is bounded by
// the same budget the follower's own computation would have had.
func (rc *ResultCache) do(pt Point, compute func() (*Result, *ReproBundle, error)) (res *Result, bundle *ReproBundle, cached, deduped bool, err error) {
	if rc == nil {
		res, bundle, err = compute()
		return
	}
	if !cacheable(pt.Config) {
		rc.skips.Add(1)
		res, bundle, err = compute()
		return
	}
	key, kerr := PointKey(pt.Config, pt.Workload, pt.Scale)
	if kerr != nil {
		rc.errs.Add(1)
		res, bundle, err = compute()
		return
	}
	o, deduped := rc.flight.Do(key, func() pointOutcome {
		if res, ok := rc.get(key); ok {
			return pointOutcome{res: res, cached: true}
		}
		res, bundle, err := compute()
		if err == nil {
			rc.put(key, res)
		}
		return pointOutcome{res: res, bundle: bundle, err: err}
	})
	if deduped {
		rc.dedups.Add(1)
	}
	return o.res, o.bundle, o.cached, deduped, o.err
}
