package lsnuma

import (
	"context"
	"fmt"
	"os"
	"sync"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
	"lsnuma/internal/workload/cholesky"
	"lsnuma/internal/workload/lu"
	"lsnuma/internal/workload/mp3d"
	"lsnuma/internal/workload/oltp"
)

// registry holds the four paper workloads.
var registry = func() *workload.Registry {
	r := workload.NewRegistry()
	r.Register("mp3d", mp3d.New)
	r.Register("cholesky", cholesky.New)
	r.Register("lu", lu.New)
	r.Register("oltp", oltp.New)
	return r
}()

// Workloads lists the available workload names.
func Workloads() []string { return registry.Names() }

// Run simulates the named workload at the given scale under cfg and
// returns the full measurement set.
func Run(cfg Config, workloadName string, scale Scale) (*Result, error) {
	res, _, err := runNamed(context.Background(), cfg, workloadName, scale)
	return res, err
}

// runNamed is Run returning the underlying machine as well, so failure
// paths (RunAll's retry escalation) can read crash diagnostics — the
// last-ops ring — off the dead machine. The machine is nil when the
// failure precedes machine construction.
func runNamed(ctx context.Context, cfg Config, workloadName string, scale Scale) (*Result, *engine.Machine, error) {
	w, err := registry.New(workloadName, scale, cfg.Nodes)
	if err != nil {
		return nil, nil, err
	}
	return runMachine(ctx, cfg, w, scale.String())
}

// RunWorkload simulates an arbitrary workload (including user-defined
// ones implementing the workload interface via RunPrograms).
func RunWorkload(cfg Config, w workload.Workload, scaleName string) (*Result, error) {
	res, _, err := runMachine(context.Background(), cfg, w, scaleName)
	return res, err
}

// machineClass is the structural part of a Config: two configs in the
// same class build machines with identical node counts, cache geometry,
// address-space layout and directory storage, so a machine built for one
// can be Reset and reused for the other (protocol, timing, checking and
// scheduler settings all travel with the per-run engine config).
type machineClass struct {
	Nodes        int
	L1, L2       CacheConfig
	BlockSize    uint64
	PageSize     uint64
	MapDirectory bool
}

// machinePool holds idle machines for reuse across runs. Re-running a
// sweep point against a Reset machine skips reallocating caches,
// directory pages and scheduler structures — the dominant per-point setup
// cost — while producing bit-identical Results (proven by differential
// tests). Fault-injected runs never enter the pool: injector state is
// per-machine and not reconstructable by Reset.
var machinePool = struct {
	sync.Mutex
	free map[machineClass][]*engine.Machine
	n    int
}{free: make(map[machineClass][]*engine.Machine)}

// maxPooledMachines bounds the pool's memory footprint; beyond it,
// machines finishing a run are simply dropped for the GC.
const maxPooledMachines = 16

// machineReuseDisabled turns the pool off (e.g. for memory profiling of
// machine construction).
var machineReuseDisabled = os.Getenv("LSNUMA_NO_REUSE") != ""

func poolClass(c Config) machineClass {
	return machineClass{
		Nodes: c.Nodes, L1: c.L1, L2: c.L2,
		BlockSize: c.BlockSize, PageSize: c.PageSize,
		MapDirectory: c.MapDirectory,
	}
}

func poolable(cfg Config) bool {
	return !machineReuseDisabled && cfg.Faults == ""
}

// acquireMachine returns a pooled machine Reset for ec, or nil when none
// is available (or reuse does not apply).
func acquireMachine(cfg Config, ec engine.Config) *engine.Machine {
	if !poolable(cfg) {
		return nil
	}
	cl := poolClass(cfg)
	machinePool.Lock()
	var m *engine.Machine
	if list := machinePool.free[cl]; len(list) > 0 {
		m = list[len(list)-1]
		list[len(list)-1] = nil
		machinePool.free[cl] = list[:len(list)-1]
		machinePool.n--
	}
	machinePool.Unlock()
	if m == nil {
		return nil
	}
	if err := m.Reset(ec); err != nil {
		// Cannot happen for a class-matched machine; fall back to a fresh
		// build rather than fail the run.
		return nil
	}
	return m
}

// releaseMachine returns a machine that completed a run successfully to
// the pool. Failed runs never release: their machines may hold aborted
// scheduler state and are kept out for diagnostics.
func releaseMachine(cfg Config, m *engine.Machine) bool {
	if !poolable(cfg) {
		return false
	}
	machinePool.Lock()
	defer machinePool.Unlock()
	if machinePool.n >= maxPooledMachines {
		return false
	}
	cl := poolClass(cfg)
	machinePool.free[cl] = append(machinePool.free[cl], m)
	machinePool.n++
	return true
}

// runMachine builds (or reuses, see machinePool), runs and measures one
// simulation point, returning the machine when the run fails (for
// diagnostics; nil on success — a successful machine may already be back
// in the pool serving another run). When ctx is cancellable, the machine
// polls it between operations and aborts the run with an
// engine.CancelledError once it expires — the hook behind
// RunOptions.PointTimeout.
func runMachine(ctx context.Context, cfg Config, w workload.Workload, scaleName string) (*Result, *engine.Machine, error) {
	ec, err := cfg.engineConfig()
	if err != nil {
		return nil, nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		ec.Cancel = ctx.Err
	}
	m := acquireMachine(cfg, ec)
	if m == nil {
		m, err = engine.NewMachine(ec)
		if err != nil {
			return nil, nil, err
		}
	}
	progs, err := w.Programs(m)
	if err != nil {
		return nil, m, err
	}
	if err := m.Run(progs); err != nil {
		return nil, m, fmt.Errorf("lsnuma: %s on %s: %w", w.Name(), cfg.ProtocolName(), err)
	}
	res := &Result{
		Workload: w.Name(),
		Protocol: cfg.ProtocolName(),
		Scale:    scaleName,
		Nodes:    cfg.Nodes,
	}
	res.Dir.Format = ec.DirFormat.String()
	res.Dir.EntryBits = ec.DirFormat.EntryBits(cfg.Nodes)
	fillResult(res, m.Stats(), m.Sequences(), m.FalseSharing())
	if releaseMachine(cfg, m) {
		return res, nil, nil
	}
	return res, m, nil
}

// BuildPrograms is the signature for user-defined workloads run through
// RunPrograms: it allocates shared state on the machine and returns one
// program per processor.
type BuildPrograms func(m *engine.Machine) ([]engine.Program, error)

// RunPrograms simulates a custom set of per-processor programs. It gives
// library users the full program-driven API (engine.Proc, locks,
// barriers) without registering a named workload.
func RunPrograms(cfg Config, name string, build BuildPrograms) (*Result, error) {
	return RunWorkload(cfg, customWorkload{name: name, build: build}, "custom")
}

type customWorkload struct {
	name  string
	build BuildPrograms
}

func (c customWorkload) Name() string { return c.name }
func (c customWorkload) Programs(m *engine.Machine) ([]engine.Program, error) {
	return c.build(m)
}

// NewEngineMachine builds the underlying simulation machine for advanced
// uses that need direct engine access (trace capture, custom recorders,
// hand-driven programs). Most callers should use Run / RunPrograms.
func NewEngineMachine(cfg Config) (*engine.Machine, error) {
	ec, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	return engine.NewMachine(ec)
}
