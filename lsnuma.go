package lsnuma

import (
	"context"
	"fmt"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
	"lsnuma/internal/workload/cholesky"
	"lsnuma/internal/workload/lu"
	"lsnuma/internal/workload/mp3d"
	"lsnuma/internal/workload/oltp"
)

// registry holds the four paper workloads.
var registry = func() *workload.Registry {
	r := workload.NewRegistry()
	r.Register("mp3d", mp3d.New)
	r.Register("cholesky", cholesky.New)
	r.Register("lu", lu.New)
	r.Register("oltp", oltp.New)
	return r
}()

// Workloads lists the available workload names.
func Workloads() []string { return registry.Names() }

// Run simulates the named workload at the given scale under cfg and
// returns the full measurement set.
func Run(cfg Config, workloadName string, scale Scale) (*Result, error) {
	res, _, err := runNamed(context.Background(), cfg, workloadName, scale)
	return res, err
}

// runNamed is Run returning the underlying machine as well, so failure
// paths (RunAll's retry escalation) can read crash diagnostics — the
// last-ops ring — off the dead machine. The machine is nil when the
// failure precedes machine construction.
func runNamed(ctx context.Context, cfg Config, workloadName string, scale Scale) (*Result, *engine.Machine, error) {
	w, err := registry.New(workloadName, scale, cfg.Nodes)
	if err != nil {
		return nil, nil, err
	}
	return runMachine(ctx, cfg, w, scale.String())
}

// RunWorkload simulates an arbitrary workload (including user-defined
// ones implementing the workload interface via RunPrograms).
func RunWorkload(cfg Config, w workload.Workload, scaleName string) (*Result, error) {
	res, _, err := runMachine(context.Background(), cfg, w, scaleName)
	return res, err
}

// runMachine builds, runs and measures one simulation point, returning
// the machine even when the run fails (for diagnostics). When ctx is
// cancellable, the machine polls it between operations and aborts the
// run with an engine.CancelledError once it expires — the hook behind
// RunOptions.PointTimeout.
func runMachine(ctx context.Context, cfg Config, w workload.Workload, scaleName string) (*Result, *engine.Machine, error) {
	ec, err := cfg.engineConfig()
	if err != nil {
		return nil, nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		ec.Cancel = ctx.Err
	}
	m, err := engine.NewMachine(ec)
	if err != nil {
		return nil, nil, err
	}
	progs, err := w.Programs(m)
	if err != nil {
		return nil, m, err
	}
	if err := m.Run(progs); err != nil {
		return nil, m, fmt.Errorf("lsnuma: %s on %s: %w", w.Name(), cfg.ProtocolName(), err)
	}
	res := &Result{
		Workload: w.Name(),
		Protocol: cfg.ProtocolName(),
		Scale:    scaleName,
		Nodes:    cfg.Nodes,
	}
	fillResult(res, m.Stats(), m.Sequences(), m.FalseSharing())
	return res, m, nil
}

// BuildPrograms is the signature for user-defined workloads run through
// RunPrograms: it allocates shared state on the machine and returns one
// program per processor.
type BuildPrograms func(m *engine.Machine) ([]engine.Program, error)

// RunPrograms simulates a custom set of per-processor programs. It gives
// library users the full program-driven API (engine.Proc, locks,
// barriers) without registering a named workload.
func RunPrograms(cfg Config, name string, build BuildPrograms) (*Result, error) {
	return RunWorkload(cfg, customWorkload{name: name, build: build}, "custom")
}

type customWorkload struct {
	name  string
	build BuildPrograms
}

func (c customWorkload) Name() string { return c.name }
func (c customWorkload) Programs(m *engine.Machine) ([]engine.Program, error) {
	return c.build(m)
}

// NewEngineMachine builds the underlying simulation machine for advanced
// uses that need direct engine access (trace capture, custom recorders,
// hand-driven programs). Most callers should use Run / RunPrograms.
func NewEngineMachine(cfg Config) (*engine.Machine, error) {
	ec, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	return engine.NewMachine(ec)
}
