package lsnuma

// Resilient-transaction-layer tests: the headline TestResilientMatrix
// invariant (lossy runs with retries terminate with Results identical —
// minus traffic and resilience accounting — to the lossless run, under
// both schedulers), the forward-progress watchdog's fail-fast guarantee
// when retries are off, finite-MSHR determinism, and the per-point
// deadline of RunOptions.PointTimeout.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"lsnuma/internal/engine"
)

// resilientCfg is the matrix's resilient base: finite home transaction
// buffers plus a seeded bounded-backoff retry policy.
func resilientCfg(workload string) Config {
	cfg := DefaultConfig()
	if workload == "oltp" {
		cfg = OLTPConfig()
	}
	cfg.DirMSHRs = 4
	cfg.Retry = "max:64,base:100,cap:4000,jitter:11"
	return cfg
}

// stripTransparent zeroes the fields a lossy run is allowed to differ in:
// the traffic counters (retransmissions and NACKs ride on spare
// interconnect capacity but still count as messages) and the resilience
// accounting itself. Everything else — timing, misses, invalidations,
// sequence analysis, per-CPU decomposition — must match the lossless run
// exactly.
func stripTransparent(r *Result) *Result {
	c := *r
	c.Msgs, c.Bytes = 0, 0
	c.ClassMsgs, c.ClassBytes = [3]uint64{}, [3]uint64{}
	c.Resil = ResilRow{}
	return &c
}

// TestResilientMatrix is the PR's headline invariant: every workload ×
// protocol × scheduler cell, run under combined message loss, duplication
// and reordering with retries enabled, must terminate with a Result
// byte-identical (minus traffic and resilience accounting) to the same
// cell's lossless run. The message-fault recovery is architecturally
// transparent — retransmissions never shift the simulated timeline.
func TestResilientMatrix(t *testing.T) {
	const faults = "drop-msg@0.01,dup-msg@0.005,reorder-msg@0.005:3"
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			w, p := w, p
			t.Run(fmt.Sprintf("%s/%s", w, p), func(t *testing.T) {
				t.Parallel()
				cfg := resilientCfg(w)
				cfg.Protocol = p
				lossless, err := Run(cfg, w, ScaleTest)
				if err != nil {
					t.Fatalf("lossless: %v", err)
				}
				want := exportJSON(t, stripTransparent(lossless))
				for _, serial := range []bool{false, true} {
					c := cfg
					c.SerialSchedule = serial
					c.Faults = faults
					lossy, err := Run(c, w, ScaleTest)
					if err != nil {
						t.Fatalf("serial=%v lossy: %v", serial, err)
					}
					rs := &lossy.Resil
					if rs.DroppedMsgs == 0 || rs.DupMsgs == 0 || rs.ReorderedMsgs == 0 {
						t.Errorf("serial=%v: fault injection idle: dropped=%d dup=%d reordered=%d",
							serial, rs.DroppedMsgs, rs.DupMsgs, rs.ReorderedMsgs)
					}
					if rs.TimeoutResends == 0 {
						t.Errorf("serial=%v: losses recovered without a single resend", serial)
					}
					// The MSHR path is architectural: saturation depends only
					// on the configuration, so the NACK count must match the
					// lossless run exactly.
					if rs.Nacks != lossless.Resil.Nacks {
						t.Errorf("serial=%v: NACKs diverge: lossy=%d lossless=%d",
							serial, rs.Nacks, lossless.Resil.Nacks)
					}
					if got := exportJSON(t, stripTransparent(lossy)); !bytes.Equal(want, got) {
						t.Errorf("serial=%v: lossy run diverges from lossless:\nlossless: %s\nlossy:    %s",
							serial, want, got)
					}
					if lossy.Msgs <= lossless.Msgs {
						t.Errorf("serial=%v: recovery traffic unaccounted: lossy msgs=%d <= lossless %d",
							serial, lossy.Msgs, lossless.Msgs)
					}
				}
			})
		}
	}
}

// TestWatchdogMatrix: with retries disabled, every lossy cell must die
// with a structured StarvationError — never a hang and never a silently
// wrong result. The watchdog fails fast: the first unrecoverable loss is
// reported immediately (at the time its progress window would expire).
func TestWatchdogMatrix(t *testing.T) {
	for _, w := range Workloads() {
		for _, class := range []string{"drop-msg", "reorder-msg"} {
			for _, p := range Protocols() {
				w, p, class := w, p, class
				t.Run(fmt.Sprintf("%s/%s/%s", w, p, class), func(t *testing.T) {
					t.Parallel()
					cfg := resilientCfg(w)
					cfg.Protocol = p
					cfg.Retry = "" // retries off: the first loss is fatal
					cfg.Faults = class + "@0.01:3"
					start := time.Now()
					_, err := Run(cfg, w, ScaleTest)
					if err == nil {
						t.Fatal("lossy run without retries completed cleanly")
					}
					var starve *engine.StarvationError
					if !errors.As(err, &starve) {
						t.Fatalf("failure is not a StarvationError: %v", err)
					}
					if starve.Budget != 0 {
						t.Errorf("budget = %d, want 0 (retries disabled)", starve.Budget)
					}
					if starve.Stalled != starve.Window || starve.Window == 0 {
						t.Errorf("fail-fast report should charge the whole window: stalled=%d window=%d",
							starve.Stalled, starve.Window)
					}
					if !strings.Contains(starve.Cause, "retries disabled") {
						t.Errorf("cause does not name the disabled retries: %q", starve.Cause)
					}
					if len(starve.Requesters) == 0 {
						t.Error("starvation report carries no requester set")
					}
					if d := starve.Diagnosis(); !strings.Contains(d, "requesters of the stuck block") {
						t.Errorf("diagnosis misses the requester set:\n%s", d)
					}
					if elapsed := time.Since(start); elapsed > 30*time.Second {
						t.Errorf("watchdog took %v to fire — not fail-fast", elapsed)
					}
				})
			}
		}
	}
}

// TestDupLossless: duplicated messages need no recovery — the run must
// terminate cleanly with only the wasted traffic visible, even with
// retries disabled.
func TestDupLossless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	cfg.Faults = "dup-msg@0.02:5"
	res, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resil.DupMsgs == 0 {
		t.Error("duplication injector never fired")
	}
	if res.Resil.Retries != 0 || res.Resil.TimeoutResends != 0 {
		t.Errorf("duplication triggered recovery: %+v", res.Resil)
	}
}

// TestUnsaturatedMSHRIdentity: home transaction buffers deep enough to
// never saturate must leave the simulation byte-identical to the classic
// unlimited-buffer model — the resilient layer is pay-for-what-you-use.
func TestUnsaturatedMSHRIdentity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	classic, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DirMSHRs = 1024
	cfg.Retry = "max:16,base:100,cap:4000,jitter:11"
	deep, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Resil.Nacks != 0 {
		t.Fatalf("1024 buffers saturated on the test scale: %d NACKs", deep.Resil.Nacks)
	}
	if cj, dj := exportJSON(t, classic), exportJSON(t, deep); !bytes.Equal(cj, dj) {
		t.Errorf("unsaturated MSHRs perturb the run:\nclassic: %s\nMSHRs:   %s", cj, dj)
	}
}

// TestMSHRContention: a single transaction buffer per home under a
// sharing-heavy workload must NACK and retry — and the whole architectural
// recovery path must stay deterministic across both schedulers.
func TestMSHRContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = Baseline
	cfg.DirMSHRs = 1
	cfg.Retry = "max:100,base:50,cap:2000,jitter:7"
	runBoth(t, cfg, func(c Config) (*Result, error) {
		return Run(c, "mp3d", ScaleTest)
	})
	res, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	rs := &res.Resil
	if rs.Nacks == 0 || rs.Retries == 0 {
		t.Fatalf("single-buffer homes never saturated: %+v", rs)
	}
	if rs.BackoffCycles == 0 || rs.MaxBackoff == 0 {
		t.Errorf("retries without backoff accounting: %+v", rs)
	}
	if rs.MeanRetries <= 0 {
		t.Errorf("mean retries not derived: %+v", rs)
	}
	var hist uint64
	for _, n := range rs.RetryHist {
		hist += n
	}
	if hist == 0 {
		t.Errorf("no recovered transaction entered the retry histogram: %+v", rs)
	}
	// Saturation legitimately shifts the timeline (it is architectural),
	// so the classic run is no ground truth here — instead hold the
	// contended machine to the coherence invariants under online checking.
	cfg.Check = CheckTouched
	if _, err := Run(cfg, "mp3d", ScaleTest); err != nil {
		t.Errorf("contended run violates coherence: %v", err)
	}
}

// TestPointTimeout: RunOptions.PointTimeout bounds each point's wall
// clock; an expired point surfaces context.DeadlineExceeded as an
// annotated hole and is not retried (the failure is already structured).
func TestPointTimeout(t *testing.T) {
	results, err := RunAll(context.Background(),
		[]Point{goodPoint("deadline")},
		RunOptions{PointTimeout: time.Nanosecond})
	if err == nil {
		t.Fatal("1ns point deadline did not fire")
	}
	pr := results[0]
	if pr.Result != nil {
		t.Fatal("expired point still produced a result")
	}
	if !errors.Is(pr.Err, context.DeadlineExceeded) {
		t.Fatalf("error is not the context deadline: %v", pr.Err)
	}
	var cancelled *engine.CancelledError
	if !errors.As(pr.Err, &cancelled) {
		t.Errorf("expiry did not abort through the engine's cancel hook: %v", pr.Err)
	}
	if b := pr.Repro; b == nil {
		t.Error("expired point carries no repro bundle")
	} else if b.Retry != "" {
		t.Errorf("deadline failure was retried: %q", b.Retry)
	}
}

// TestPointTimeoutGenerous: a deadline the point comfortably makes must
// not perturb the run at all.
func TestPointTimeoutGenerous(t *testing.T) {
	ref, err := Run(goodPoint("x").Config, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll(context.Background(),
		[]Point{goodPoint("relaxed")},
		RunOptions{PointTimeout: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result == nil {
		t.Fatal("point with a generous deadline failed")
	}
	if rj, gj := exportJSON(t, ref), exportJSON(t, results[0].Result); !bytes.Equal(rj, gj) {
		t.Errorf("deadline polling perturbed the run:\nref:      %s\ndeadline: %s", rj, gj)
	}
}

// TestStarvationRepro: a starvation death inside RunAll must land the
// watchdog's full diagnosis in the repro bundle without a checks-on
// retry (the failure is already structured).
func TestStarvationRepro(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	cfg.Faults = "drop-msg@0.01:3"
	pt := Point{Label: "starving", Config: cfg, Workload: "mp3d", Scale: ScaleTest}
	results, err := RunAll(context.Background(), []Point{pt}, RunOptions{})
	if err == nil {
		t.Fatal("lossy run without retries survived RunAll")
	}
	b := results[0].Repro
	if b == nil {
		t.Fatal("no repro bundle")
	}
	if !strings.Contains(b.Diagnosis, "starvation") ||
		!strings.Contains(b.Diagnosis, "requesters of the stuck block") {
		t.Errorf("bundle diagnosis is not the watchdog report: %q", b.Diagnosis)
	}
	if b.Retry != "" {
		t.Errorf("structured starvation was retried with checks on: %q", b.Retry)
	}
}

var resTableFlag = flag.Bool("restable", false, "print the EXPERIMENTS.md retry-overhead table")

// TestWriteResilienceTable regenerates the EXPERIMENTS.md retry-overhead
// appendix: MP3D at test scale per protocol, 4 transaction buffers per
// home, under message-loss rates {0, 1e-4, 1e-3}. Run with
// `go test -run WriteResilienceTable -restable .`.
func TestWriteResilienceTable(t *testing.T) {
	if !*resTableFlag {
		t.Skip("set -restable to print the retry-overhead table")
	}
	fmt.Fprintln(os.Stderr, "| Protocol | loss rate | NACKs | NACK rate | resends | mean retries | max | backoff cycles | max backoff | exec |")
	fmt.Fprintln(os.Stderr, "|---|---|---|---|---|---|---|---|---|---|")
	for _, p := range Protocols() {
		for _, loss := range []float64{0, 1e-4, 1e-3} {
			cfg := DefaultConfig()
			cfg.Protocol = p
			cfg.DirMSHRs = 4
			cfg.Retry = "max:64,base:100,cap:4000,jitter:11"
			if loss > 0 {
				cfg.Faults = fmt.Sprintf("drop-msg@%g:3", loss)
			}
			res, err := Run(cfg, "mp3d", ScaleTest)
			if err != nil {
				t.Fatalf("%s loss=%g: %v", p, loss, err)
			}
			rs := &res.Resil
			txns := res.GlobalReadMisses() + res.GlobalWrites()
			fmt.Fprintf(os.Stderr, "| %s | %g | %d | %.4f | %d | %.4f | %d | %d | %d | %d |\n",
				p, loss, rs.Nacks, float64(rs.Nacks)/float64(txns), rs.TimeoutResends,
				rs.MeanRetries, rs.MaxRetries, rs.BackoffCycles, rs.MaxBackoff, res.ExecTime)
		}
	}
}

// TestBadResilienceSpecs: malformed retry and fault specs fail at config
// lowering with actionable errors.
func TestBadResilienceSpecs(t *testing.T) {
	cases := []struct{ retry, faults, want string }{
		{"max:banana", "", "retry"},
		{"max:4,base:0", "", "retry"},
		{"frequency:9", "", "retry"},
		{"", "drop-msg@2.0", "rate"},
		{"", "drop-msg@0.1,drop-msg@0.2", "duplicate"},
		{"", "drop-msg:1,dup-msg:2", "seed"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Retry = tc.retry
		cfg.Faults = tc.faults
		_, err := Run(cfg, "mp3d", ScaleTest)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("retry=%q faults=%q: want error containing %q, got %v",
				tc.retry, tc.faults, tc.want, err)
		}
	}
	cfg := DefaultConfig()
	cfg.DirMSHRs = -1
	if _, err := Run(cfg, "mp3d", ScaleTest); err == nil {
		t.Error("negative DirMSHRs accepted")
	}
}
