package lsnuma

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	res, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ResultFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ExecTime != res.ExecTime || back.Protocol != res.Protocol ||
		back.Msgs != res.Msgs || back.Coverage != res.Coverage {
		t.Errorf("roundtrip mismatch: %+v vs %+v", back, res)
	}
	if back.Total != res.Total {
		t.Errorf("sequence totals mismatch")
	}
}

func TestResultFromJSONRejectsGarbage(t *testing.T) {
	if _, err := ResultFromJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ResultFromJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestWriteComparisonJSON(t *testing.T) {
	res, err := Compare(DefaultConfig(), "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteComparisonJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"workload": "mp3d"`, `"Baseline"`, `"AD"`, `"LS"`, `"ExecTime"`} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison JSON missing %q", want)
		}
	}
}
