package lsnuma

// Differential tests for the directory wire formats (Config.DirFormat):
// the exact sharer set stays simulation truth in every format, so a run
// under limited-pointer or coarse-vector encoding must export a Result
// byte-identical to the full-map reference except for the documented
// Dir block (format name, entry bits, extra-invalidation counters). The
// matrix runs with online coherence checking on, so the compact formats
// are also certified invariant-clean.

import (
	"bytes"
	"fmt"
	"testing"
)

// dirFormats are the compact encodings the matrix holds against the
// full-map oracle: a tight limited-pointer directory that actually
// overflows on shared data, and a coarse vector whose groups actually
// overshoot.
var dirFormats = []string{"limited:1", "limited:2", "coarse:4"}

// stripDir zeroes the format-dependent Dir block so the remainder of two
// Results can be compared byte for byte.
func stripDir(r *Result) *Result {
	cp := *r
	cp.Dir = DirRow{}
	return &cp
}

// runFormats runs the same point under the full-map reference and every
// compact format, requiring byte-identical Results modulo the Dir block,
// and returns the compact Results by format for counter assertions.
func runFormats(t *testing.T, cfg Config, run func(Config) (*Result, error)) map[string]*Result {
	t.Helper()
	ref, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Dir.Format != "full" {
		t.Errorf("reference Dir.Format = %q, want full", ref.Dir.Format)
	}
	if d := ref.Dir; d.ExtraInvals != 0 || d.Broadcasts != 0 || d.Overflows != 0 {
		t.Errorf("full-map run reports format overshoot: %+v", d)
	}
	rj := exportJSON(t, stripDir(ref))
	out := make(map[string]*Result, len(dirFormats))
	for _, format := range dirFormats {
		c := cfg
		c.DirFormat = format
		res, err := run(c)
		if err != nil {
			t.Fatalf("dirformat=%s: %v", format, err)
		}
		if res.Dir.Format != format {
			t.Errorf("dirformat=%s: Dir.Format = %q", format, res.Dir.Format)
		}
		if fj := exportJSON(t, stripDir(res)); !bytes.Equal(rj, fj) {
			t.Errorf("dirformat=%s diverges from full-map beyond the Dir block:\nfull:    %s\ncompact: %s",
				format, rj, fj)
		}
		out[format] = res
	}
	return out
}

// TestDirFormatMatrix covers the four paper workloads under all three
// protocols with checking on: every compact format must reproduce the
// full-map Result exactly, modulo the Dir counters.
func TestDirFormatMatrix(t *testing.T) {
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			w, p := w, p
			t.Run(fmt.Sprintf("%s/%s", w, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				if w == "oltp" {
					cfg = OLTPConfig()
				}
				cfg.Protocol = p
				cfg.Check = CheckTouched
				runFormats(t, cfg, func(c Config) (*Result, error) {
					return Run(c, w, ScaleTest)
				})
			})
		}
	}
}

// TestDirFormatCounters pins the architectural accounting on a workload
// with real read sharing: a single-pointer directory must overflow and
// broadcast, and a coarse vector must overshoot, while the wider limited
// directory stays within capacity on mostly-migratory data.
func TestDirFormatCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.Protocol = Baseline
	cfg.Check = CheckTouched
	results := runFormats(t, cfg, func(c Config) (*Result, error) {
		return Run(c, "cholesky", ScaleTest)
	})
	lim := results["limited:1"].Dir
	if lim.Overflows == 0 || lim.Broadcasts == 0 || lim.ExtraInvals == 0 {
		t.Errorf("limited:1 on shared data never overflowed: %+v", lim)
	}
	coarse := results["coarse:4"].Dir
	if coarse.ExtraInvals == 0 {
		t.Errorf("coarse:4 never overshot a group: %+v", coarse)
	}
	if coarse.Overflows != 0 || coarse.Broadcasts != 0 {
		t.Errorf("coarse vector reported pointer-overflow counters: %+v", coarse)
	}
	if eb := results["coarse:4"].Dir.EntryBits; eb != 2 {
		t.Errorf("coarse:4 EntryBits at 8 nodes = %d, want 2", eb)
	}
}

// TestDirFormatParallel certifies the compact formats under the parallel
// scheduler: the per-lane Dir counters must merge to exactly the serial
// run's totals, and everything else must stay byte-identical, at every
// shard count.
func TestDirFormatParallel(t *testing.T) {
	for _, format := range dirFormats {
		format := format
		t.Run(format, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Nodes = 16
			cfg.Protocol = LS
			cfg.DirFormat = format
			ref := cfg
			ref.SerialSchedule = true
			serial, err := Run(ref, "cholesky", ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			sj := exportJSON(t, serial)
			for _, shards := range parShards {
				c := cfg
				c.Scheduler = "parallel"
				c.Shards = shards
				par, err := Run(c, "cholesky", ScaleTest)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if pj := exportJSON(t, par); !bytes.Equal(sj, pj) {
					t.Errorf("parallel (shards=%d, %s) diverges from serial:\nserial:   %s\nparallel: %s",
						shards, format, sj, pj)
				}
			}
		})
	}
}

// TestDirFormatBigMachine exercises the sharer sets beyond one 64-bit
// word: a 96-processor read-shared run must behave identically under the
// full map and a coarse vector, and the coarse entry must cost a quarter
// of the full map's bits.
func TestDirFormatBigMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 96
	cfg.Protocol = Baseline
	cfg.Check = CheckTouched
	cfg.Mesh2D = true
	cfg.HopDelay = 2
	cfg.Concentration = 4
	results := runFormats(t, cfg, func(c Config) (*Result, error) {
		return Run(c, "mp3d", ScaleTest)
	})
	if eb := results["coarse:4"].Dir.EntryBits; eb != 24 {
		t.Errorf("coarse:4 EntryBits at 96 nodes = %d, want 24", eb)
	}
}
