package lsnuma

import (
	"context"
	"math/rand"
	"testing"
)

// TestSweepProgressInOrder: points completing in order hand cells back
// one at a time, in grid order, exactly once.
func TestSweepProgressInOrder(t *testing.T) {
	nproto := len(Protocols())
	const cells = 4
	p := NewSweepProgress(cells)
	var got []int
	for i := 0; i < cells*nproto; i++ {
		got = append(got, p.PointDone(i)...)
	}
	if len(got) != cells {
		t.Fatalf("handed out %d cells, want %d", len(got), cells)
	}
	for i, ci := range got {
		if ci != i {
			t.Fatalf("cell order %v, want ascending from 0", got)
		}
	}
	if p.Cursor() != cells || p.PointsDone() != cells*nproto {
		t.Fatalf("cursor=%d pointsDone=%d, want %d/%d", p.Cursor(), p.PointsDone(), cells, cells*nproto)
	}
	if rest := p.Flush(); len(rest) != 0 {
		t.Fatalf("Flush after completion = %v, want empty", rest)
	}
}

// TestSweepProgressOutOfOrder: any completion order still yields each
// cell exactly once, in grid order, and Flush returns the unfinished
// tail of a cancelled run.
func TestSweepProgressOutOfOrder(t *testing.T) {
	nproto := len(Protocols())
	const cells = 7
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(cells * nproto)
		stop := len(perm)
		if trial%2 == 1 { // half the trials: simulate a cancelled run
			stop = rng.Intn(len(perm))
		}
		p := NewSweepProgress(cells)
		var got []int
		for _, i := range perm[:stop] {
			got = append(got, p.PointDone(i)...)
		}
		if p.PointsDone() != stop {
			t.Fatalf("trial %d: pointsDone=%d, want %d", trial, p.PointsDone(), stop)
		}
		got = append(got, p.Flush()...)
		if len(got) != cells {
			t.Fatalf("trial %d: handed out %d cells, want %d", trial, len(got), cells)
		}
		for i, ci := range got {
			if ci != i {
				t.Fatalf("trial %d: cell order %v, want ascending", trial, got)
			}
		}
	}
}

// TestSweepProgressDuplicateAndBogusPoints: double-completions and
// out-of-range indexes are ignored instead of corrupting the cursor.
func TestSweepProgressDuplicateAndBogusPoints(t *testing.T) {
	nproto := len(Protocols())
	p := NewSweepProgress(2)
	for i := 0; i < nproto; i++ {
		p.PointDone(0) // same point over and over
	}
	if p.Cursor() != 0 {
		t.Fatalf("cursor after duplicate completions = %d, want 0 (cell 0 has %d distinct points)", p.Cursor(), nproto)
	}
	p.PointDone(-1)
	p.PointDone(2 * nproto) // beyond the grid
	if p.PointsDone() != 1 {
		t.Fatalf("pointsDone=%d, want 1 (duplicates and bogus indexes ignored)", p.PointsDone())
	}
}

// TestPointResultFresh: the freshness predicate matches the cache flags.
func TestPointResultFresh(t *testing.T) {
	res := &Result{}
	cases := []struct {
		pr   PointResult
		want bool
	}{
		{PointResult{Result: res}, true},
		{PointResult{Result: res, Cached: true}, false},
		{PointResult{Result: res, Deduped: true}, false},
		{PointResult{Err: context.Canceled}, false},
		{PointResult{}, false},
	}
	for i, tc := range cases {
		if got := tc.pr.Fresh(); got != tc.want {
			t.Errorf("case %d: Fresh() = %v, want %v", i, got, tc.want)
		}
	}
}
