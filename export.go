package lsnuma

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the result as indented JSON, for downstream plotting
// and archival (EXPERIMENTS.md is generated from such dumps).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ResultFromJSON parses a result previously written with WriteJSON.
func ResultFromJSON(r io.Reader) (*Result, error) {
	var out Result
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("lsnuma: decoding result: %w", err)
	}
	return &out, nil
}

// ComparisonJSON bundles a protocol comparison for export.
type ComparisonJSON struct {
	Workload string             `json:"workload"`
	Scale    string             `json:"scale"`
	Results  map[string]*Result `json:"results"`
}

// WriteComparisonJSON writes a Compare result set as one JSON document.
func WriteComparisonJSON(w io.Writer, results map[Protocol]*Result) error {
	out := ComparisonJSON{Results: make(map[string]*Result, len(results))}
	for p, r := range results {
		out.Results[string(p)] = r
		out.Workload = r.Workload
		out.Scale = r.Scale
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
