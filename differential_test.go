package lsnuma

// Differential determinism tests for the run-ahead handoff scheduler and
// the conservative parallel scheduler: every workload × protocol
// combination must export byte-identical Results under
// Config.SerialSchedule, under the default run-ahead scheduler, and
// under Scheduler="parallel" at every shard count. The serial per-access
// handshake scheduler is the reference semantics; the other two claim to
// service operations in exactly the same order, and these tests hold
// them to that across the full workload matrix, including the 16- and
// 32-processor Figure 5 configurations, the micro kernels, online
// checking, and lossy-interconnect runs.

import (
	"bytes"
	"fmt"
	"testing"

	"lsnuma/internal/workload/micro"
)

// exportJSON renders a Result to its canonical JSON form for comparison.
func exportJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runBoth runs the same point under both schedulers and fails unless the
// exported Results match byte for byte.
func runBoth(t *testing.T, cfg Config, run func(Config) (*Result, error)) {
	t.Helper()
	cfg.SerialSchedule = true
	serial, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SerialSchedule = false
	ahead, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sj, aj := exportJSON(t, serial), exportJSON(t, ahead)
	if !bytes.Equal(sj, aj) {
		t.Errorf("schedulers diverge:\nserial:    %s\nrun-ahead: %s", sj, aj)
	}
}

// TestDifferentialWorkloads covers the four paper workloads under all
// three protocols at the default node counts.
func TestDifferentialWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			w, p := w, p
			t.Run(fmt.Sprintf("%s/%s", w, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				if w == "oltp" {
					cfg = OLTPConfig()
				}
				cfg.Protocol = p
				runBoth(t, cfg, func(c Config) (*Result, error) {
					return Run(c, w, ScaleTest)
				})
			})
		}
	}
}

// TestDifferentialScaling covers the Figure 5 processor counts: Cholesky
// at 16 and 32 CPUs, where the scheduler heap actually gets deep.
func TestDifferentialScaling(t *testing.T) {
	for _, nodes := range []int{16, 32} {
		for _, p := range Protocols() {
			nodes, p := nodes, p
			t.Run(fmt.Sprintf("cholesky-%dcpu/%s", nodes, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.Nodes = nodes
				cfg.Protocol = p
				runBoth(t, cfg, func(c Config) (*Result, error) {
					return Run(c, "cholesky", ScaleTest)
				})
			})
		}
	}
}

// TestDifferentialMicros covers the micro kernels (migratory,
// private-evict, read-shared, producer-consumer) under all protocols.
func TestDifferentialMicros(t *testing.T) {
	for _, kind := range micro.Kinds() {
		for _, p := range Protocols() {
			kind, p := kind, p
			t.Run(fmt.Sprintf("%s/%s", kind, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.Protocol = p
				runBoth(t, cfg, func(c Config) (*Result, error) {
					return RunWorkload(c, micro.New(kind, ScaleTest, c.Nodes), "test")
				})
			})
		}
	}
}

// TestCheckedMatrix certifies the whole workload × protocol matrix
// invariant-clean under online coherence checking, and holds the checker
// to its no-perturbation contract: the exported Results with
// Check=touched (and, outside -short, Check=full) must be byte-identical
// to the unchecked run, under both schedulers.
func TestCheckedMatrix(t *testing.T) {
	levels := []CheckLevel{CheckTouched}
	if !testing.Short() {
		levels = append(levels, CheckFull)
	}
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			w, p := w, p
			t.Run(fmt.Sprintf("%s/%s", w, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				if w == "oltp" {
					cfg = OLTPConfig()
				}
				cfg.Protocol = p
				ref, err := Run(cfg, w, ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				rj := exportJSON(t, ref)
				for _, serial := range []bool{false, true} {
					for _, level := range levels {
						c := cfg
						c.SerialSchedule = serial
						c.Check = level
						res, err := Run(c, w, ScaleTest)
						if err != nil {
							t.Fatalf("serial=%v check=%s: %v", serial, level, err)
						}
						if cj := exportJSON(t, res); !bytes.Equal(rj, cj) {
							t.Errorf("serial=%v check=%s diverges from unchecked:\nunchecked: %s\nchecked:   %s",
								serial, level, rj, cj)
						}
					}
				}
			})
		}
	}
}

// parShards are the shard counts the parallel-scheduler matrix exercises:
// degenerate (1), even (2), and one that does not divide any of the node
// counts (7), so the home→shard mapping wraps unevenly.
var parShards = []int{1, 2, 7}

// runParallel runs the same point under the serial reference scheduler and
// under the parallel scheduler at every shard count in parShards, and
// fails unless each exported Result matches the reference byte for byte.
func runParallel(t *testing.T, cfg Config, run func(Config) (*Result, error)) {
	t.Helper()
	ref := cfg
	ref.SerialSchedule = true
	serial, err := run(ref)
	if err != nil {
		t.Fatal(err)
	}
	sj := exportJSON(t, serial)
	for _, shards := range parShards {
		c := cfg
		c.SerialSchedule = false
		c.Scheduler = "parallel"
		c.Shards = shards
		par, err := run(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if pj := exportJSON(t, par); !bytes.Equal(sj, pj) {
			t.Errorf("parallel (shards=%d) diverges from serial:\nserial:   %s\nparallel: %s",
				shards, sj, pj)
		}
	}
}

// TestParallelWorkloadsMatrix holds the conservative parallel scheduler to
// byte-identical Results against the serial reference across the full
// workload × protocol matrix, at every shard count in parShards.
func TestParallelWorkloadsMatrix(t *testing.T) {
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			w, p := w, p
			t.Run(fmt.Sprintf("%s/%s", w, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				if w == "oltp" {
					cfg = OLTPConfig()
				}
				cfg.Protocol = p
				runParallel(t, cfg, func(c Config) (*Result, error) {
					return Run(c, w, ScaleTest)
				})
			})
		}
	}
}

// TestParallelScalingMatrix covers the deep-heap configurations: 4, 16 and
// 32 processors, where batches actually grow past a handful of operations.
func TestParallelScalingMatrix(t *testing.T) {
	for _, nodes := range []int{4, 16, 32} {
		for _, p := range Protocols() {
			nodes, p := nodes, p
			t.Run(fmt.Sprintf("cholesky-%dcpu/%s", nodes, p), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.Nodes = nodes
				cfg.Protocol = p
				runParallel(t, cfg, func(c Config) (*Result, error) {
					return Run(c, "cholesky", ScaleTest)
				})
			})
		}
	}
}

// TestParallelCheckedMatrix runs the parallel scheduler with the online
// coherence checker enabled (per-shard scoped checkers plus the
// coordinator's full sweeps) and requires Results byte-identical to the
// unchecked serial run — the checker's no-perturbation contract must
// survive concurrent service.
func TestParallelCheckedMatrix(t *testing.T) {
	levels := []CheckLevel{CheckTouched}
	if !testing.Short() {
		levels = append(levels, CheckFull)
	}
	for _, w := range Workloads() {
		w := w
		t.Run(w, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			if w == "oltp" {
				cfg = OLTPConfig()
			}
			cfg.Protocol = LS
			ref := cfg
			ref.SerialSchedule = true
			serial, err := Run(ref, w, ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			sj := exportJSON(t, serial)
			for _, level := range levels {
				for _, shards := range parShards {
					c := cfg
					c.Scheduler = "parallel"
					c.Shards = shards
					c.Check = level
					par, err := Run(c, w, ScaleTest)
					if err != nil {
						t.Fatalf("check=%s shards=%d: %v", level, shards, err)
					}
					if pj := exportJSON(t, par); !bytes.Equal(sj, pj) {
						t.Errorf("check=%s shards=%d diverges from unchecked serial:\nserial:   %s\nparallel: %s",
							level, shards, sj, pj)
					}
				}
			}
		})
	}
}

// TestParallelFaultyMatrix runs the parallel scheduler on a lossy,
// reordering interconnect. Message faults force every global operation
// onto the coordinator (the fault layer's verdict stream is order-
// dependent), so this certifies the degraded path still matches the
// serial reference byte for byte, retries and all.
func TestParallelFaultyMatrix(t *testing.T) {
	specs := []string{"drop-msg@1e-3:7", "reorder-msg@1e-3:9", "drop-msg@1e-3,reorder-msg@1e-4:5"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Protocol = LS
			cfg.Faults = spec
			cfg.Retry = "max:16"
			runParallel(t, cfg, func(c Config) (*Result, error) {
				return Run(c, "mp3d", ScaleTest)
			})
		})
	}
}

// TestDifferentialAblations covers the configuration corners that stress
// different engine paths: relaxed writes, software-exclusive reads, false
// sharing tracking, and the §5.5 protocol variants.
func TestDifferentialAblations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"relaxed-writes", func(c *Config) { c.Protocol = LS; c.RelaxedWrites = true }},
		{"software-exclusive", func(c *Config) { c.Protocol = EX }},
		{"false-sharing", func(c *Config) { c.Protocol = Baseline; c.TrackFalseSharing = true }},
		{"default-tagged", func(c *Config) { c.Protocol = LS; c.Variant.DefaultTagged = true }},
		{"hysteresis", func(c *Config) {
			c.Protocol = LS
			c.Variant.TagHysteresis = 2
			c.Variant.DetagHysteresis = 2
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			runBoth(t, cfg, func(c Config) (*Result, error) {
				return Run(c, "mp3d", ScaleTest)
			})
		})
	}
}
