package resultcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flightSettle is how long the flight tests wait for follower
// goroutines to reach their Do call while the leader holds the flight
// open. Generous relative to goroutine startup (~µs) so the tests stay
// deterministic on loaded CI machines.
const flightSettle = 100 * time.Millisecond

// TestFlightDedup races N goroutines on one key and asserts exactly one
// computation, with every caller seeing the same value and all but one
// flagged shared. The leader blocks until the followers have had ample
// time to queue behind it, so the test cannot pass by accident of fast
// sequential execution.
func TestFlightDedup(t *testing.T) {
	const n = 32
	var (
		f        Flight[int]
		computes atomic.Int64
		release  = make(chan struct{})
		started  = make(chan struct{})
	)

	vals := make([]int, n)
	shared := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: registers the key, then holds it open
		defer wg.Done()
		vals[0], shared[0] = f.Do("k", func() int {
			computes.Add(1)
			close(started)
			<-release
			return 42
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shared[i] = f.Do("k", func() int {
				computes.Add(1)
				return 42
			})
		}(i)
	}
	time.Sleep(flightSettle)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	nshared := 0
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, vals[i])
		}
		if shared[i] {
			nshared++
		}
	}
	if nshared != n-1 {
		t.Fatalf("shared callers = %d, want %d", nshared, n-1)
	}
	if f.Inflight() != 0 {
		t.Fatalf("inflight after completion = %d, want 0", f.Inflight())
	}
}

// TestFlightDistinctKeys verifies distinct keys do not serialize or
// share values.
func TestFlightDistinctKeys(t *testing.T) {
	var f Flight[string]
	var wg sync.WaitGroup
	out := make([]string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			out[i], _ = f.Do(key, func() string { return key })
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if want := string(rune('a' + i)); out[i] != want {
			t.Fatalf("key %d got %q, want %q", i, out[i], want)
		}
	}
}

// TestFlightSequentialReuse verifies a key is forgotten once its flight
// lands: a later Do for the same key computes again (memoization across
// calls is the persistent store's job, not the flight's).
func TestFlightSequentialReuse(t *testing.T) {
	var f Flight[int]
	computes := 0
	for i := 0; i < 3; i++ {
		v, shared := f.Do("k", func() int { computes++; return computes })
		if shared {
			t.Fatalf("call %d shared, want leader", i)
		}
		if v != i+1 {
			t.Fatalf("call %d = %d, want %d", i, v, i+1)
		}
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 (no cross-call memoization)", computes)
	}
}

// TestFlightLeaderPanic verifies a panicking leader releases its
// followers with a panic rather than a hang or a silent zero value, and
// that the key is usable again afterwards.
func TestFlightLeaderPanic(t *testing.T) {
	var f Flight[int]
	started := make(chan struct{})
	finish := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		f.Do("k", func() int {
			close(started)
			<-finish
			panic("boom")
		})
	}()
	<-started

	var followerComputed atomic.Bool
	followerDone := make(chan any, 1)
	go func() {
		defer func() { followerDone <- recover() }()
		f.Do("k", func() int {
			followerComputed.Store(true)
			return 7
		})
	}()
	time.Sleep(flightSettle) // let the follower park behind the leader
	close(finish)

	if p := <-leaderDone; p == nil {
		t.Fatal("leader panic did not propagate")
	}
	// If the follower queued in time (the settle sleep makes this all but
	// certain) it must observe the panic; if it somehow arrived after the
	// leader's cleanup it legitimately computed fresh — but it must never
	// hang or return a zero value silently.
	if p := <-followerDone; p == nil && !followerComputed.Load() {
		t.Fatal("follower neither observed the leader's panic nor computed fresh")
	}
	// The key must be released for fresh computations.
	v, shared := f.Do("k", func() int { return 7 })
	if shared || v != 7 {
		t.Fatalf("post-panic Do = (%d, shared=%v), want fresh (7, false)", v, shared)
	}
}
