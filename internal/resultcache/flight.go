package resultcache

import "sync"

// Flight deduplicates concurrent computations of the same key in one
// process: while a computation for key is in flight, further Do calls
// with that key wait for it and share its value instead of computing
// again. This is the stampede protection in front of the persistent
// cache — N clients asking for the same cold point pay for one
// simulation, not N — and it composes with the on-disk store: the
// flight leader consults the store, computes on a miss, and every
// follower inherits whichever outcome the leader produced.
//
// Unlike the persistent cache, a Flight remembers nothing: once the
// leader returns and the followers are released, the key is forgotten.
// Cross-call memoization is the store's job.
//
// The zero Flight is ready to use. All methods are safe for concurrent
// use.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

// flightCall is one in-flight computation: done closes when the leader
// finishes (val is valid only after that), and panicked records a
// leader that died so followers fail loudly instead of hanging or
// silently inheriting a zero value.
type flightCall[V any] struct {
	done     chan struct{}
	val      V
	panicked bool
}

// Do returns fn's value for key, running fn only if no other call for
// key is already in flight; otherwise it blocks until the in-flight
// leader finishes and returns the leader's value with shared=true.
//
// Do does not accept a context: a follower waits for its leader
// unconditionally. Callers that bound their computations (deadlines,
// cancellation) bound the leader's fn, which releases the followers
// with whatever outcome the bound produced — identical keys mean
// identical bounds, so a follower never waits longer than its own
// computation was allowed to take.
//
// If the leader's fn panics, the panic propagates on the leader and
// every follower panics too (with a note pointing at the shared key):
// a shared computation has no private outcome to fall back on.
func (f *Flight[V]) Do(key string, fn func() V) (val V, shared bool) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*flightCall[V])
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		if c.panicked {
			panic("resultcache: single-flight leader for key " + key + " panicked")
		}
		return c.val, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	normal := false
	defer func() {
		c.panicked = !normal
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val = fn()
	normal = true
	return c.val, false
}

// Inflight reports the number of keys currently being computed (for
// metrics and tests).
func (f *Flight[V]) Inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}
