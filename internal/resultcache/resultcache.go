// Package resultcache is a persistent, content-addressed store for
// simulation results. Entries are keyed by a canonical hash of everything
// that determines a simulation's outcome (configuration, workload, scale,
// engine schema version) and written atomically, so concurrent sweeps can
// share one cache directory: a warm sweep re-reads its points instead of
// re-simulating them.
//
// The store is deliberately forgiving on the read side — a missing,
// truncated, corrupted or stale entry is a miss, never an error — and
// conservative on the write side: entries are staged in a temp file and
// renamed into place, with a best-effort exclusive lock file serializing
// same-key writers. Since all writers of one key derive the entry from the
// same deterministic simulation, losing a write race is harmless.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// lockStaleAfter is the age past which an abandoned lock file (e.g. from
// a crashed process) is broken.
const lockStaleAfter = 10 * time.Minute

// Cache is one version-qualified cache directory. Entries written under
// one version string are invisible under any other, which is how schema-
// version bumps invalidate stale results without any migration logic.
type Cache struct {
	root string
}

// Open returns a cache rooted at dir/version, creating it if needed.
func Open(dir, version string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if version == "" {
		return nil, fmt.Errorf("resultcache: empty schema version")
	}
	root := filepath.Join(dir, version)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{root: root}, nil
}

// Path returns the file an entry with the given key lives at. Entries are
// fanned out over key-prefix subdirectories to keep directories small.
func (c *Cache) Path(key string) string {
	if len(key) < 2 {
		return filepath.Join(c.root, key+".json")
	}
	return filepath.Join(c.root, key[:2], key+".json")
}

// Get returns the stored bytes for key, or ok=false on any kind of
// absence — including unreadable files. Corruption detection is the
// caller's job (the stored envelope embeds the key and schema).
func (c *Cache) Get(key string) (data []byte, ok bool) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores data under key: staged in a temp file, fsync-free, renamed
// into place (atomic on POSIX). A lock file serializes same-key writers;
// if another writer holds the lock the Put is skipped — the other writer
// is storing the same deterministic result. Stale locks are broken.
func (c *Cache) Put(key string, data []byte) error {
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	lock := path + ".lock"
	lf, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if os.IsExist(err) {
		if fi, serr := os.Stat(lock); serr == nil && time.Since(fi.ModTime()) > lockStaleAfter {
			os.Remove(lock)
			lf, err = os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
		if err != nil {
			return nil // another live writer owns the key; its data is ours too
		}
	} else if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	defer func() {
		lf.Close()
		os.Remove(lock)
	}()

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// Key hashes the given byte parts into a hex cache key. Parts are
// length-prefixed, so no two distinct part sequences collide by
// concatenation.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalJSON marshals v into key-sorted JSON with no insignificant
// whitespace: the same logical value always hashes identically, no matter
// the declaration order of struct fields (Go maps marshal with sorted
// keys, so a marshal → generic-unmarshal → re-marshal round trip
// canonicalizes field order). Numbers survive the round trip exactly for
// magnitudes below 2^53, far above any configuration field.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	var generic any
	if err := json.Unmarshal(raw, &generic); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	out, err := json.Marshal(generic)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return out, nil
}
