package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, version string) *Cache {
	t.Helper()
	c, err := Open(t.TempDir(), version)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", "v1"); err == nil {
		t.Error("Open accepted empty directory")
	}
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Error("Open accepted empty version")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := open(t, "v1")
	key := Key([]byte("hello"))
	if _, ok := c.Get(key); ok {
		t.Fatal("Get hit on empty cache")
	}
	want := []byte(`{"x":1}`)
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	// Overwrite wins.
	want2 := []byte(`{"x":2}`)
	if err := c.Put(key, want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(key); !bytes.Equal(got, want2) {
		t.Fatalf("Get after overwrite = %q, want %q", got, want2)
	}
	// No lock or temp debris left behind.
	var stray []string
	filepath.Walk(filepath.Dir(c.Path(key)), func(p string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && p != c.Path(key) {
			stray = append(stray, p)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Fatalf("stray files after Put: %v", stray)
	}
}

// TestVersionIsolation is the schema-bump invalidation mechanism: entries
// written under one version string are invisible under any other.
func TestVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	v1, err := Open(dir, "e5")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, "e6")
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("point"))
	if err := v1.Put(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(key); ok {
		t.Fatal("entry written under e5 visible under e6")
	}
	if got, ok := v1.Get(key); !ok || string(got) != "old" {
		t.Fatal("entry lost under its own version")
	}
}

func TestKeyLengthPrefixed(t *testing.T) {
	// Same concatenation, different part boundaries: must not collide.
	a := Key([]byte("ab"), []byte("c"))
	b := Key([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("length prefixing failed: part boundaries do not affect the key")
	}
	// Deterministic.
	if a != Key([]byte("ab"), []byte("c")) {
		t.Fatal("Key not deterministic")
	}
	// Empty parts are significant.
	if Key([]byte("x")) == Key([]byte("x"), nil) {
		t.Fatal("trailing empty part ignored")
	}
}

// TestCanonicalJSONFieldOrder verifies the hash-stability property the
// result cache depends on: two structs with the same logical fields in
// different declaration order canonicalize to identical bytes.
func TestCanonicalJSONFieldOrder(t *testing.T) {
	type fwd struct {
		Alpha int    `json:"alpha"`
		Beta  string `json:"beta"`
		Gamma bool   `json:"gamma"`
	}
	type rev struct {
		Gamma bool   `json:"gamma"`
		Beta  string `json:"beta"`
		Alpha int    `json:"alpha"`
	}
	a, err := CanonicalJSON(fwd{Alpha: 7, Beta: "b", Gamma: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(rev{Gamma: true, Beta: "b", Alpha: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("field order changed canonical form:\n%s\n%s", a, b)
	}
	if Key(a) != Key(b) {
		t.Fatal("field order changed the cache key")
	}
	// Different values must still differ.
	c, err := CanonicalJSON(fwd{Alpha: 8, Beta: "b", Gamma: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("distinct values canonicalized identically")
	}
}

func TestCanonicalJSONNested(t *testing.T) {
	type inner struct {
		Z int `json:"z"`
		A int `json:"a"`
	}
	type outer struct {
		In  inner          `json:"in"`
		Map map[string]int `json:"map"`
	}
	got, err := CanonicalJSON(outer{In: inner{Z: 1, A: 2}, Map: map[string]int{"b": 2, "a": 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"in":{"a":2,"z":1},"map":{"a":1,"b":2}}`
	if string(got) != want {
		t.Fatalf("CanonicalJSON = %s, want %s", got, want)
	}
}

// TestConcurrentPut hammers one key from many goroutines under -race: no
// Put may fail, and the surviving entry must be one of the writers'
// payloads, never torn.
func TestConcurrentPut(t *testing.T) {
	c := open(t, "v1")
	key := Key([]byte("contested"))
	const writers = 16
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 4096)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Put(key, payload(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("no entry after concurrent writers")
	}
	if len(got) != 4096 {
		t.Fatalf("torn entry: %d bytes", len(got))
	}
	for _, b := range got[1:] {
		if b != got[0] {
			t.Fatal("torn entry: mixed writer payloads")
		}
	}
}

// TestStaleLockBroken verifies a lock abandoned by a crashed writer does
// not wedge the key forever.
func TestStaleLockBroken(t *testing.T) {
	c := open(t, "v1")
	key := Key([]byte("wedged"))
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	lock := path + ".lock"
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-lockStaleAfter - time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(key); !ok || string(got) != "data" {
		t.Fatal("Put behind stale lock did not land")
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatal("stale lock not cleaned up")
	}
}

// TestLiveLockSkipsWrite: a fresh lock means another live writer owns the
// key; Put must return nil without writing (the other writer's data is
// byte-identical by construction).
func TestLiveLockSkipsWrite(t *testing.T) {
	c := open(t, "v1")
	key := Key([]byte("busy"))
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".lock", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []byte("mine")); err != nil {
		t.Fatalf("Put against live lock errored: %v", err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Put wrote despite a live lock")
	}
}

func TestShortKeyPath(t *testing.T) {
	c := open(t, "v1")
	// Degenerate short keys must still round-trip (Path has a special case).
	for _, key := range []string{"a", ""} {
		if err := c.Put(key, []byte("v")); err != nil {
			t.Fatalf("Put(%q): %v", key, err)
		}
		if got, ok := c.Get(key); !ok || string(got) != "v" {
			t.Fatalf("Get(%q) = %q, %v", key, got, ok)
		}
	}
}

func TestManyKeysFanOut(t *testing.T) {
	c := open(t, "v1")
	for i := 0; i < 64; i++ {
		key := Key([]byte(fmt.Sprintf("k%d", i)))
		if err := c.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		key := Key([]byte(fmt.Sprintf("k%d", i)))
		got, ok := c.Get(key)
		if !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("Get(k%d) = %v, %v", i, got, ok)
		}
	}
}
