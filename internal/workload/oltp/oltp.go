// Package oltp implements the paper's transaction-processing workload: a
// TPC-B-style banking benchmark in the spirit of MySQL 3.22 running on
// SparcLinux (Section 4.1). The real stack is not reproducible offline; a
// synthetic transaction engine stands in, built to reproduce the stream
// properties the paper's analysis depends on (see DESIGN.md):
//
//   - branch / teller / account / history records updated by
//     read-modify-write (load-store sequences), with a small hot branch
//     table that migrates between processors;
//   - a buffer pool with hashed page headers whose LRU fields are
//     load-store updated on every access, and whose working set exceeds
//     the L2 cache (capacity/conflict misses that break AD's migratory
//     detection but not LS's tagging);
//   - read-shared catalog/statistics data that is periodically written,
//     producing more than one invalidation per global write (the paper
//     reports ~1.4 for OLTP);
//   - pthread-style locks (library), a transaction-context allocator
//     (library), and an operating-system layer (scheduler run queue,
//     timer ticks, log flush syscalls), each tagged with its source class
//     so Table 2's MySQL / libraries / OS split is measurable.
package oltp

import (
	"fmt"

	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
	"lsnuma/internal/workload"
)

// Config sets the problem size.
type Config struct {
	// Branches is the TPC-B scale (the paper uses 40).
	Branches int
	// TellersPerBranch and AccountsPerBranch follow TPC-B ratios.
	TellersPerBranch  int
	AccountsPerBranch int
	// TxPerCPU is the number of transactions each processor runs.
	TxPerCPU int
	// PoolPages is the buffer-pool page-header count.
	PoolPages int
	// CatalogEntries is the size of the read-mostly catalog.
	CatalogEntries int
	// OSTickEvery inserts a timer tick/scheduler pass every N transactions.
	OSTickEvery int
	// ScanEvery inserts a read-only branch scan every N transactions,
	// spreading read-shared copies that later writes must invalidate.
	ScanEvery int
	// Seed for the deterministic request stream.
	Seed int64
}

// ConfigFor returns the configuration for a scale. ScalePaper uses the
// paper's 40 branches; record counts are scaled to hold the simulated
// working set in the tens of megabytes rather than the paper's 600 MB
// while keeping it far larger than the 512 kB L2 (the property that
// matters: a large conflict/capacity miss rate on shared data).
func ConfigFor(scale workload.Scale) Config {
	switch scale {
	case workload.ScaleTest:
		return Config{
			Branches: 8, TellersPerBranch: 10, AccountsPerBranch: 8000,
			TxPerCPU: 150, PoolPages: 1024, CatalogEntries: 64,
			OSTickEvery: 6, ScanEvery: 4, Seed: 11,
		}
	case workload.ScaleSmall:
		return Config{
			Branches: 20, TellersPerBranch: 10, AccountsPerBranch: 8000,
			TxPerCPU: 300, PoolPages: 4096, CatalogEntries: 128,
			OSTickEvery: 6, ScanEvery: 4, Seed: 11,
		}
	default:
		return Config{
			Branches: 40, TellersPerBranch: 10, AccountsPerBranch: 8000,
			TxPerCPU: 1000, PoolPages: 8192, CatalogEntries: 256,
			OSTickEvery: 6, ScanEvery: 4, Seed: 11,
		}
	}
}

// Record sizes (bytes). Account/teller/branch rows are 64 B as in a
// row-store with a few columns; history entries are 32 B; buffer-pool
// page headers are 32 B (page id, LRU links, pin count, dirty flag).
const (
	rowSize     = 64
	histSize    = 64
	logRecSize  = 64
	pageHdrSize = 32
)

// OLTP is the workload object.
type OLTP struct {
	cfg  Config
	cpus int
	d    *db

	// CommittedTx counts committed transactions (host-side, for tests).
	CommittedTx int64
}

// New constructs the workload for the given scale and processor count.
func New(scale workload.Scale, cpus int) workload.Workload {
	return &OLTP{cfg: ConfigFor(scale), cpus: cpus}
}

// NewWithConfig constructs the workload with an explicit configuration.
func NewWithConfig(cfg Config, cpus int) *OLTP {
	return &OLTP{cfg: cfg, cpus: cpus}
}

// Name implements workload.Workload.
func (w *OLTP) Name() string { return "oltp" }

// db bundles the shared database state.
type db struct {
	cfg Config

	accounts *workload.Record
	tellers  *workload.Record
	branches *workload.Record
	history  *workload.Record
	balances []int64 // host-side account balances
	tBal     []int64
	bBal     []int64

	pool      *workload.Record // buffer-pool page headers
	poolLock  *engine.Lock
	poolClock int32

	catalog *workload.F64 // read-mostly statistics / catalog
	catLock *engine.Lock

	branchLocks []*engine.Lock
	logLock     *engine.Lock
	logTail     *workload.I32
	histCursor  int32

	// OS structures.
	runqueue    *workload.Record // per-CPU scheduler entries, adjacent
	schedLock   *engine.Lock
	taskStructs *workload.Record

	// Library structures.
	arena     *workload.I32    // global allocator cursor
	freeLists *workload.Record // per-CPU free-list heads (adjacent words)

	// Kernel log staging buffer: pure (write-only) global stores.
	logBuf *workload.Record

	// Per-connection session state (sort buffers, cursors, statement
	// cache): private to one processor but far larger than the L1 and in
	// conflict with the account stream in the L2, so it is repeatedly
	// re-fetched and read-modify-written by the SAME processor — the
	// non-migratory load-store sequences that LS optimizes and AD cannot
	// (Section 2: "data accessed in a load-store sequence does not
	// necessarily have to migrate").
	sessions       *workload.Record
	sessionsPerCPU int

	// statsTable holds per-table row/page counters: scanned (read) by
	// every processor's monitor query, blindly updated by transactions.
	statsTable *workload.Record

	// statusVars is a page of densely packed 4-byte server status
	// counters (threads_running, questions, bytes_sent, ...), each owned
	// by one thread but packed adjacently — the classic word-granularity
	// false sharing of 1990s server globals that drives the paper's
	// Table 4 (19.9 % false-sharing misses already at 16 B blocks).
	statusVars *workload.I32

	// index is the B-tree interior node region: read-only after load, so
	// its pages are read-shared and never tagged by any protocol.
	index *workload.Record
}

// Programs implements workload.Workload.
func (w *OLTP) Programs(m *engine.Machine) ([]engine.Program, error) {
	cfg := w.cfg
	if cfg.Branches < 1 || cfg.TxPerCPU < 1 {
		return nil, fmt.Errorf("oltp: bad config %+v", cfg)
	}
	a := m.Alloc()
	nAcc := cfg.Branches * cfg.AccountsPerBranch
	nTel := cfg.Branches * cfg.TellersPerBranch

	d := &db{
		cfg:            cfg,
		accounts:       workload.NewRecords(a, "accounts", nAcc, rowSize, 0),
		tellers:        workload.NewRecords(a, "tellers", nTel, rowSize, 0),
		branches:       workload.NewRecords(a, "branches", cfg.Branches, rowSize, 0),
		history:        workload.NewRecords(a, "history", cfg.TxPerCPU*w.cpus+1, histSize, 0),
		balances:       make([]int64, nAcc),
		tBal:           make([]int64, nTel),
		bBal:           make([]int64, cfg.Branches),
		pool:           workload.NewRecords(a, "buffer-pool", cfg.PoolPages, pageHdrSize, 0),
		poolLock:       engine.NewLock(a, "pool-lock"),
		catalog:        workload.NewF64(a, "catalog", cfg.CatalogEntries),
		catLock:        engine.NewLock(a, "catalog-lock"),
		logLock:        engine.NewLock(a, "log-lock"),
		logTail:        workload.NewI32(a, "log-tail", 1),
		runqueue:       workload.NewRecords(a, "runqueue", w.cpus, 16, 0),
		schedLock:      engine.NewLock(a, "sched-lock"),
		taskStructs:    workload.NewRecords(a, "task-structs", w.cpus*4, 64, 0),
		arena:          workload.NewI32(a, "malloc-arena", 1),
		freeLists:      workload.NewRecords(a, "free-lists", w.cpus, 256, 256),
		logBuf:         workload.NewRecords(a, "log-buffer", 4096, logRecSize, 0),
		sessionsPerCPU: 96,
	}
	d.sessions = workload.NewRecords(a, "sessions", w.cpus*d.sessionsPerCPU, rowSize, 0)
	d.statsTable = workload.NewRecords(a, "stats-table", 48, 32, 0)
	d.statusVars = workload.NewI32(a, "status-vars", 16*w.cpus)
	d.index = workload.NewRecords(a, "index", nAcc/64+64, rowSize, 0)
	d.branchLocks = make([]*engine.Lock, cfg.Branches)
	for i := range d.branchLocks {
		d.branchLocks[i] = engine.NewLock(a, "branch-locks")
	}
	w.d = d

	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		progs[cpu] = func(p *engine.Proc) {
			rng := p.Rand()
			for tx := 0; tx < cfg.TxPerCPU; tx++ {
				w.transaction(p, d, tx)
				if tx%cfg.OSTickEvery == cfg.OSTickEvery-1 {
					w.osTick(p, d)
				}
				if tx%cfg.ScanEvery == cfg.ScanEvery-1 {
					w.statsScan(p, d)
				}
				if tx%(cfg.ScanEvery*3) == cfg.ScanEvery*3-1 {
					w.branchScan(p, d)
				}
				p.Compute(60 + rng.Intn(60)) // think time / network
			}
		}
	}
	return progs, nil
}

// transaction runs one TPC-B transaction: update account, teller and
// branch balances, append to history, write the log.
func (w *OLTP) transaction(p *engine.Proc, d *db, txSeq int) {
	cfg := d.cfg
	rng := p.Rand()

	// --- library: allocate the transaction context ---
	p.SetSource(memory.SrcLib)
	w.malloc(p, d)

	// --- application: the TPC-B profile ---
	// TPC-B terminals are bound to branches: each simulated processor
	// serves the branches of its own terminals (branch % cpus == cpu),
	// with a small fraction of remote-branch transactions. This affinity
	// is what makes a large share of OLTP's load-store sequences
	// NON-migratory (the paper's Table 2: only ~47 % of load-store
	// sequences migrate) — the same processor revisits its own branch,
	// teller and page-header data after capacity evictions.
	p.SetSource(memory.SrcApp)
	cpu := int(p.ID())
	branch := (cpu + w.cpus*rng.Intn(cfg.Branches/w.cpus+1)) % cfg.Branches
	if rng.Intn(100) >= 88 { // remote terminal traffic
		branch = rng.Intn(cfg.Branches)
	}
	teller := branch*cfg.TellersPerBranch + rng.Intn(cfg.TellersPerBranch)
	// 85 % of accounts belong to the home branch (TPC-B locality rule).
	accBranch := branch
	if rng.Intn(100) >= 85 {
		accBranch = rng.Intn(cfg.Branches)
	}
	account := accBranch*cfg.AccountsPerBranch + rng.Intn(cfg.AccountsPerBranch)
	delta := int64(rng.Intn(2000) - 1000)

	// Session state: cursor + sort-buffer slots for this connection,
	// read-modify-written in place (same-processor load-store sequences).
	for i := 0; i < 6; i++ {
		slot := cpu*d.sessionsPerCPU + (txSeq*7+i*17)%d.sessionsPerCPU
		d.sessions.ReadField(p, slot, 0, 24)
		p.Compute(8)
		d.sessions.WriteField(p, slot, 8, 16)
	}

	// Catalog lookup: read-shared metadata — the hot root of the index,
	// read by every transaction on every processor.
	d.catalog.Get(p, branch%8)
	d.catalog.Get(p, 8+(account%8))

	// Buffer-pool fixes along the B-tree path: index root, index leaf,
	// data page and undo page headers are looked up in the pool hash and
	// LRU-touched — load-store sequences on the headers, revisited after
	// the page stream has pushed them out of the caches.
	w.fixPage(p, d, account/4096)            // index root
	w.fixPage(p, d, 1000000+account/64)      // index leaf
	w.fixPage(p, d, account)                 // data page
	w.fixPage(p, d, 2000000+txSeq%64+cpu*64) // undo/rollback page

	// Walk the B-tree: read an interior index page (read-only region —
	// shared but never written) and scan the account's leaf page (MySQL
	// reads whole pages through the buffer pool). This page stream is
	// what keeps the direct-mapped L2 churning: hot rows are evicted
	// between revisits, which destroys AD's migratory detection (the
	// last writer's copy is gone by the time the data migrates) but not
	// LS's tagging (the LS bit lives in the directory) — the central
	// effect behind the paper's Table 3 coverage gap.
	idxPage := d.index.Addr(account/64, 0) &^ 1023
	p.ReadN(idxPage, 1024)
	p.Compute(32)
	page := d.accounts.Addr(account, 0) &^ 4095
	p.ReadN(page, 4096)
	p.Compute(128)

	// Account update: read the row, write the balance back.
	d.accounts.ReadField(p, account, 0, 32)
	p.Compute(20)
	d.balances[account] += delta
	d.accounts.WriteField(p, account, 8, 8)

	// Teller update.
	w.fixPage(p, d, d.cfg.PoolPages+teller) // teller pages hash elsewhere
	d.tellers.ReadField(p, teller, 0, 16)
	d.tBal[teller] += delta
	d.tellers.WriteField(p, teller, 8, 8)

	// Branch update under the branch lock (pthread mutex → library).
	p.SetSource(memory.SrcLib)
	d.branchLocks[branch].Acquire(p)
	p.SetSource(memory.SrcApp)
	d.branches.ReadField(p, branch, 0, 16)
	p.Compute(10)
	d.bBal[branch] += delta
	d.branches.WriteField(p, branch, 8, 8)
	p.SetSource(memory.SrcLib)
	d.branchLocks[branch].Release(p)

	// History append under the log lock. The redo-log record copy is
	// MySQL code (pure stores into the shared staging buffer — global
	// write actions that are NOT load-store sequences).
	p.SetSource(memory.SrcLib)
	d.logLock.Acquire(p)
	p.SetSource(memory.SrcApp)
	slot := d.histCursor
	d.histCursor++
	d.logTail.Add(p, 0, 1)
	d.history.WriteField(p, int(slot)%d.history.Count(), 0, histSize)
	d.logBuf.WriteField(p, int(slot)%d.logBuf.Count(), 0, logRecSize)
	p.SetSource(memory.SrcLib)
	d.logLock.Release(p)

	// Periodic catalog maintenance: a write to heavily read-shared data —
	// the source of the >1 invalidation per global write the paper
	// reports.
	if txSeq%12 == 11 {
		p.SetSource(memory.SrcLib)
		d.catLock.Acquire(p)
		p.SetSource(memory.SrcApp)
		// Update a hot catalog entry (read-shared by all processors).
		d.catalog.Update(p, (txSeq/12+int(p.ID()))%16, func(v float64) float64 { return v + 1 })
		p.SetSource(memory.SrcLib)
		d.catLock.Release(p)
	}

	// Server status counters: each thread bumps its own densely packed
	// counters (blind stores to falsely shared blocks).
	d.statusVars.Set(p, cpu*16+(txSeq%16), int32(txSeq))
	d.statusVars.Set(p, cpu*16+((txSeq*5+3)%16), int32(txSeq))

	// Per-table statistics maintenance: blind stores (no preceding read)
	// into counters every processor scans — writes to read-shared blocks
	// that pay multiple invalidations without being load-store sequences
	// (the paper's ~1.4 invalidations per write to a shared block).
	d.statsTable.WriteField(p, branch%d.statsTable.Count(), 8, 8)
	d.statsTable.WriteField(p, (teller/3)%d.statsTable.Count(), 16, 8)

	// --- OS: commit = log write syscall ---
	p.SetSource(memory.SrcOS)
	w.logFlush(p, d)
	p.SetSource(memory.SrcApp)
	w.CommittedTx++
}

// fixPage looks up a page header in the buffer-pool hash and touches its
// LRU fields (read-modify-write). The pool is sized beyond the L2 cache,
// so headers bounce in and out — the conflict/capacity behaviour that
// defeats migratory detection.
func (w *OLTP) fixPage(p *engine.Proc, d *db, key int) {
	h := (key*2654435761 + 12345) % d.cfg.PoolPages
	if h < 0 {
		h += d.cfg.PoolPages
	}
	// Hash probe: read the header, then LRU-touch it.
	d.pool.ReadField(p, h, 0, 16)
	p.Compute(8)
	d.pool.WriteField(p, h, 16, 8) // LRU back-pointer update
	d.poolClock++
}

// malloc models glibc allocating a transaction context: the per-CPU free
// list head is read-modify-written; every few calls the global arena
// cursor is bumped (a shared load-store sequence).
func (w *OLTP) malloc(p *engine.Proc, d *db) {
	cpu := int(p.ID())
	d.freeLists.ReadField(p, cpu, 0, 8)
	p.Compute(12)
	d.freeLists.WriteField(p, cpu, 0, 8)
	if d.poolClock%8 == 7 {
		d.arena.Add(p, 0, 64) // refill from the global arena
	}
}

// logFlush models the commit syscall: the OS copies the log record and
// runs a short scheduler pass touching its own task struct.
func (w *OLTP) logFlush(p *engine.Proc, d *db) {
	cpu := int(p.ID())
	// Kernel log flush: read-modify-write the in-kernel write position
	// (an OS load-store sequence), then post the device queue descriptor
	// (pure stores into a rotating slot — kernel writes that are not
	// load-store sequences).
	d.logTail.Add(p, 0, 0)
	d.logBuf.WriteField(p, (int(d.histCursor)+d.logBuf.Count()/2)%d.logBuf.Count(), 0, 32)
	// Touch the current task struct (private-ish, migrates on reschedule).
	d.taskStructs.ReadField(p, cpu*4, 0, 16)
	d.taskStructs.WriteField(p, cpu*4, 16, 8)
	p.Compute(40) // kernel entry/exit
}

// osTick models a timer interrupt: the scheduler updates this CPU's
// run-queue entry (adjacent entries share cache blocks — kernel false
// sharing) and occasionally takes the scheduler lock to rebalance.
func (w *OLTP) osTick(p *engine.Proc, d *db) {
	p.SetSource(memory.SrcOS)
	cpu := int(p.ID())
	d.runqueue.ReadField(p, cpu, 0, 8)
	p.Compute(15)
	d.runqueue.WriteField(p, cpu, 8, 8)
	if p.Rand().Intn(2) == 0 {
		d.schedLock.Acquire(p)
		// Rebalance scan: read every CPU's run-queue entry, then move a
		// task: write the busiest entry (a write to read-shared data).
		busiest := 0
		for c := 0; c < w.cpus; c++ {
			d.runqueue.ReadField(p, c, 0, 8)
			if c%3 == 1 {
				busiest = c
			}
		}
		d.runqueue.WriteField(p, busiest, 8, 8)
		// Context switch: the migrated task's struct is read-modify-
		// written by the new CPU — kernel migratory data.
		task := (busiest*4 + 1) % d.taskStructs.Count()
		d.taskStructs.ReadField(p, task, 0, 32)
		p.Compute(30)
		d.taskStructs.WriteField(p, task, 32, 16)
		d.schedLock.Release(p)
	}
	p.SetSource(memory.SrcApp)
}

// branchScan is a read-only reporting query: it reads every branch row
// plus the tellers of one (rotating) branch, spreading read-shared copies
// of blocks the update path writes — the source of the paper's >1
// invalidation per global write.
func (w *OLTP) branchScan(p *engine.Proc, d *db) {
	p.SetSource(memory.SrcApp)
	var sum int64
	for b := 0; b < d.cfg.Branches; b++ {
		d.branches.ReadField(p, b, 8, 8)
		sum += d.bBal[b]
	}
	b := int(d.histCursor) % d.cfg.Branches
	for t := 0; t < d.cfg.TellersPerBranch; t++ {
		d.tellers.ReadField(p, b*d.cfg.TellersPerBranch+t, 8, 8)
	}
	p.Compute(d.cfg.Branches * 2)
}

// statsScan is the cheap monitor query: it reads the statistics counters,
// read-sharing the blocks the transactions blindly update. The stats
// blocks are never load-store-tagged (their writes have no preceding
// read), so this read-sharing produces invalidations without perturbing
// the LS optimization.
func (w *OLTP) statsScan(p *engine.Proc, d *db) {
	p.SetSource(memory.SrcApp)
	for i := 0; i < d.statsTable.Count(); i++ {
		d.statsTable.ReadField(p, i, 8, 8)
	}
	// SHOW STATUS: read every thread's status counters.
	for i := 0; i < d.statusVars.Len(); i += 4 {
		d.statusVars.Get(p, i)
	}
	p.Compute(d.statsTable.Count())
}

// Balances exposes the host-side balance state after a run, for TPC-B
// conservation checks (the sums of account, teller and branch deltas must
// agree).
func (w *OLTP) Balances() (accounts, tellers, branches []int64) {
	if w.d == nil {
		return nil, nil, nil
	}
	return w.d.balances, w.d.tBal, w.d.bBal
}
