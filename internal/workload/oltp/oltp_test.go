package oltp

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

func machine(t *testing.T, kind protocol.Kind) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 64 * 1024, Assoc: 2, BlockSize: 32, AccessTime: 1},
		L2:             cache.Config{Size: 512 * 1024, Assoc: 1, BlockSize: 32, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      50_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, kind protocol.Kind, cfg Config) (*OLTP, *engine.Machine) {
	t.Helper()
	m := machine(t, kind)
	w := NewWithConfig(cfg, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
	return w, m
}

func smallCfg() Config {
	c := ConfigFor(workload.ScaleTest)
	c.TxPerCPU = 40
	return c
}

func TestConfigScales(t *testing.T) {
	paper := ConfigFor(workload.ScalePaper)
	if paper.Branches != 40 {
		t.Errorf("paper scale branches = %d, want the paper's 40 (TPC-B)", paper.Branches)
	}
	test := ConfigFor(workload.ScaleTest)
	if test.TxPerCPU >= paper.TxPerCPU {
		t.Error("test scale not smaller than paper scale")
	}
}

func TestProgramsValidation(t *testing.T) {
	m := machine(t, protocol.Baseline)
	if _, err := NewWithConfig(Config{Branches: 0, TxPerCPU: 10}, 4).Programs(m); err == nil {
		t.Error("zero branches accepted")
	}
	if _, err := NewWithConfig(Config{Branches: 4, TxPerCPU: 0}, 4).Programs(m); err == nil {
		t.Error("zero transactions accepted")
	}
}

// TestBalanceConservation checks TPC-B semantics: every transaction adds
// the same delta to one account, one teller and one branch, so the table
// sums must agree after any interleaving.
func TestBalanceConservation(t *testing.T) {
	w, _ := run(t, protocol.LS, smallCfg())
	acc, tel, br := w.Balances()
	var sa, st, sb int64
	for _, v := range acc {
		sa += v
	}
	for _, v := range tel {
		st += v
	}
	for _, v := range br {
		sb += v
	}
	if sa != st || st != sb {
		t.Errorf("sums diverged: accounts=%d tellers=%d branches=%d", sa, st, sb)
	}
	if w.CommittedTx != 4*int64(smallCfg().TxPerCPU) {
		t.Errorf("committed %d transactions, want %d", w.CommittedTx, 4*smallCfg().TxPerCPU)
	}
}

// TestAllSourceClassesPresent verifies every Table 2 source class issues
// global writes.
func TestAllSourceClassesPresent(t *testing.T) {
	_, m := run(t, protocol.Baseline, smallCfg())
	seq := m.Sequences()
	for s := memory.Source(0); s < memory.NumSources; s++ {
		if seq.Sources[s].GlobalWrites == 0 {
			t.Errorf("source %v produced no global writes", s)
		}
		if seq.Sources[s].LoadStoreWrites == 0 {
			t.Errorf("source %v produced no load-store sequences", s)
		}
	}
}

// TestStreamProperties checks the Table 2 stream shape on the baseline
// protocol: a large minority of global writes are load-store sequences and
// roughly half of those migrate.
func TestStreamProperties(t *testing.T) {
	_, m := run(t, protocol.Baseline, ConfigFor(workload.ScaleTest))
	total := m.Sequences().Total()
	if f := total.LoadStoreFrac(); f < 0.25 || f > 0.8 {
		t.Errorf("load-store fraction = %.3f (paper: 0.42)", f)
	}
	if f := total.MigratoryFrac(); f < 0.25 || f > 0.75 {
		t.Errorf("migratory fraction = %.3f (paper: 0.47)", f)
	}
}

func TestDeterministic(t *testing.T) {
	_, m1 := run(t, protocol.AD, smallCfg())
	_, m2 := run(t, protocol.AD, smallCfg())
	if m1.Stats().ExecTime() != m2.Stats().ExecTime() {
		t.Errorf("nondeterministic: %d vs %d", m1.Stats().ExecTime(), m2.Stats().ExecTime())
	}
	if m1.Stats().TotalMsgs() != m2.Stats().TotalMsgs() {
		t.Error("message counts nondeterministic")
	}
}

func TestBalancesBeforeRun(t *testing.T) {
	w := NewWithConfig(smallCfg(), 4)
	if a, b, c := w.Balances(); a != nil || b != nil || c != nil {
		t.Error("Balances before Programs should be nil")
	}
}
