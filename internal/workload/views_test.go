package workload

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/protocol"
)

func testMachine(t *testing.T) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          2,
		L1:             cache.Config{Size: 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 4096, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(protocol.LS, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestViewsThroughEngine exercises every typed-view accessor through a
// real simulated program and checks both the values and the access
// accounting.
func TestViewsThroughEngine(t *testing.T) {
	m := testMachine(t)
	a := m.Alloc()
	f := NewF64(a, "f", 8)
	i32 := NewI32(a, "i", 8)
	recs := NewRecords(a, "r", 4, 32, 0)

	var got float64
	var gotI int32
	prog := func(p *engine.Proc) {
		f.Set(p, 2, 1.5)
		f.Update(p, 2, func(v float64) float64 { return v * 2 })
		got = f.Get(p, 2)

		i32.Set(p, 3, 7)
		i32.Add(p, 3, 5)
		gotI = i32.Get(p, 3)

		recs.WriteField(p, 1, 8, 16)
		recs.ReadField(p, 1, 8, 16)

		// A genuine load-store sequence on a fresh element: global read
		// followed by the same processor's global write.
		f.Get(p, 6)
		f.Set(p, 6, 9)
	}
	if err := m.Run([]engine.Program{prog}); err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Errorf("F64 value = %v, want 3", got)
	}
	if gotI != 12 {
		t.Errorf("I32 value = %d, want 12", gotI)
	}
	sum := m.Stats().Sum()
	if sum.Loads == 0 || sum.Stores == 0 {
		t.Error("views issued no simulated accesses")
	}
	if m.Sequences().Total().LoadStoreWrites == 0 {
		t.Error("no load-store sequences detected from the view helpers")
	}
}

// TestZeroSizeAccessorsAreNoOps: ReadN/WriteN with size 0 must not panic
// or submit operations.
func TestZeroSizeAccessorsAreNoOps(t *testing.T) {
	m := testMachine(t)
	prog := func(p *engine.Proc) {
		p.ReadN(0, 0)
		p.WriteN(0, 0)
		p.ReadExN(0, 0)
	}
	if err := m.Run([]engine.Program{prog}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Sum().Loads != 0 || m.Stats().Sum().Stores != 0 {
		t.Error("zero-size accesses were submitted")
	}
}
