package micro

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

func machine(t *testing.T, kind protocol.Kind) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      10_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runKind(t *testing.T, kind Kind, proto protocol.Kind) *engine.Machine {
	t.Helper()
	m := machine(t, proto)
	w := New(kind, workload.ScaleTest, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
	return m
}

func TestKindsAndNames(t *testing.T) {
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds = %v", Kinds())
	}
	for _, k := range Kinds() {
		w := New(k, workload.ScaleTest, 4)
		if w.Name() != "micro-"+string(k) {
			t.Errorf("name = %q", w.Name())
		}
	}
	m := machine(t, protocol.Baseline)
	if _, err := NewWithConfig(Config{Kind: "bogus", Rounds: 1}, 4).Programs(m); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := NewWithConfig(Config{Kind: Migratory, Rounds: 0}, 4).Programs(m); err == nil {
		t.Error("zero rounds accepted")
	}
}

// TestMigratoryKernel: the datum is handed around — virtually all
// load-store sequences migrate, and both AD and LS eliminate most of the
// data-block ownership acquisitions.
func TestMigratoryKernel(t *testing.T) {
	base := runKind(t, Migratory, protocol.Baseline)
	ad := runKind(t, Migratory, protocol.AD)
	ls := runKind(t, Migratory, protocol.LS)

	seq := base.Sequences().Total()
	if seq.MigratoryFrac() < 0.8 {
		t.Errorf("migratory fraction = %.2f, want near 1", seq.MigratoryFrac())
	}
	if ad.Stats().EliminatedOwnership == 0 || ls.Stats().EliminatedOwnership == 0 {
		t.Errorf("eliminations: AD=%d LS=%d, want both > 0",
			ad.Stats().EliminatedOwnership, ls.Stats().EliminatedOwnership)
	}
	if base.Stats().EliminatedOwnership != 0 {
		t.Error("baseline eliminated ownership acquisitions")
	}
}

// TestPrivateEvictKernel: the paper-defining case — load-store sequences
// with no migration; LS eliminates (the LS bit survives in the directory
// across evictions), AD cannot (it never sees two sharers).
func TestPrivateEvictKernel(t *testing.T) {
	base := runKind(t, PrivateEvict, protocol.Baseline)
	ad := runKind(t, PrivateEvict, protocol.AD)
	ls := runKind(t, PrivateEvict, protocol.LS)

	seq := base.Sequences().Total()
	if seq.MigratoryFrac() > 0.01 {
		t.Errorf("migratory fraction = %.3f, want 0", seq.MigratoryFrac())
	}
	if seq.LoadStoreFrac() < 0.9 {
		t.Errorf("load-store fraction = %.2f, want near 1", seq.LoadStoreFrac())
	}
	if got := ad.Stats().EliminatedOwnership; got != 0 {
		t.Errorf("AD eliminated %d on non-migratory data", got)
	}
	lsElim := ls.Stats().EliminatedOwnership
	potential := base.Stats().GlobalWrites()
	if lsElim*2 < potential {
		t.Errorf("LS eliminated %d of ~%d re-fetch ownership acquisitions, want most",
			lsElim, potential)
	}
	if ls.Stats().ExecTime() >= base.Stats().ExecTime() {
		t.Errorf("LS exec %d not below baseline %d", ls.Stats().ExecTime(), base.Stats().ExecTime())
	}
}

// TestReadSharedKernel: no load-store sequences at all — LS must not
// inflate read misses much (its Shared-state reads never grant exclusive).
func TestReadSharedKernel(t *testing.T) {
	base := runKind(t, ReadShared, protocol.Baseline)
	ls := runKind(t, ReadShared, protocol.LS)

	seq := base.Sequences().Total()
	if seq.LoadStoreFrac() > 0.2 {
		t.Errorf("load-store fraction = %.2f, want near 0", seq.LoadStoreFrac())
	}
	b, l := base.Stats().GlobalReadMisses(), ls.Stats().GlobalReadMisses()
	if l > b*120/100 {
		t.Errorf("LS read misses %d vs baseline %d on read-shared data", l, b)
	}
	// Writes to read-shared data pay invalidations.
	if base.Stats().Invalidations == 0 {
		t.Error("no invalidations on read-shared kernel")
	}
}

// TestProducerConsumerKernel completes and exercises the failed-
// prediction path under LS (the producer's flag/buffer blocks get tagged
// by its rewrite sequences; the consumers' reads then de-tag them).
func TestProducerConsumerKernel(t *testing.T) {
	ls := runKind(t, ProducerConsumer, protocol.LS)
	if ls.Stats().FailedPredictions == 0 {
		t.Error("producer/consumer produced no NotLS events under LS")
	}
}

func TestDeterminism(t *testing.T) {
	a := runKind(t, Migratory, protocol.LS).Stats().ExecTime()
	b := runKind(t, Migratory, protocol.LS).Stats().ExecTime()
	if a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}
