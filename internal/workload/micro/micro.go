// Package micro provides small synthetic kernels with analytically known
// sharing behaviour, used to validate the protocols and to demonstrate
// individual effects in isolation:
//
//   - Migratory: N processors read-modify-write one datum in turn — pure
//     migratory sharing; AD and LS both eliminate every steady-state
//     ownership acquisition.
//   - PrivateEvict: each processor read-modify-writes its own data with a
//     footprint that thrashes the cache — load-store sequences with NO
//     migration; only LS (whose tag survives in the directory) eliminates
//     the re-fetch ownership acquisitions. This is the paper's central
//     Cholesky/OLTP effect distilled.
//   - ReadShared: all processors read a region that one processor
//     periodically writes — no load-store sequences; neither technique
//     should do anything but must not regress (spurious exclusive grants
//     would inflate read misses).
//   - ProducerConsumer: a flag-and-buffer handoff pattern; exercises the
//     failed-prediction (NotLS) path.
package micro

import (
	"fmt"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
)

// Kind selects a micro kernel.
type Kind string

// The micro kernels.
const (
	Migratory        Kind = "migratory"
	PrivateEvict     Kind = "private-evict"
	ReadShared       Kind = "read-shared"
	ProducerConsumer Kind = "producer-consumer"
)

// Kinds lists all micro kernels.
func Kinds() []Kind {
	return []Kind{Migratory, PrivateEvict, ReadShared, ProducerConsumer}
}

// Config sets the kernel and iteration count.
type Config struct {
	Kind   Kind
	Rounds int
	// FootprintBytes sizes PrivateEvict's per-processor working set; it
	// should exceed the L2 capacity to force re-fetches.
	FootprintBytes int
}

// ConfigFor returns a Config for a scale.
func ConfigFor(kind Kind, scale workload.Scale) Config {
	c := Config{Kind: kind, Rounds: 50, FootprintBytes: 96 * 1024}
	if kind == PrivateEvict {
		// Each round sweeps the whole footprint; a handful suffices.
		c.Rounds = 8
	}
	switch scale {
	case workload.ScaleSmall:
		c.Rounds *= 4
	case workload.ScalePaper:
		c.Rounds *= 16
	}
	return c
}

// Micro is the workload object.
type Micro struct {
	cfg  Config
	cpus int
}

// New constructs the named micro kernel at the given scale.
func New(kind Kind, scale workload.Scale, cpus int) *Micro {
	return &Micro{cfg: ConfigFor(kind, scale), cpus: cpus}
}

// NewWithConfig constructs a kernel with an explicit configuration.
func NewWithConfig(cfg Config, cpus int) *Micro {
	return &Micro{cfg: cfg, cpus: cpus}
}

// Name implements workload.Workload.
func (w *Micro) Name() string { return "micro-" + string(w.cfg.Kind) }

// Programs implements workload.Workload.
func (w *Micro) Programs(m *engine.Machine) ([]engine.Program, error) {
	if w.cfg.Rounds < 1 {
		return nil, fmt.Errorf("micro: rounds %d < 1", w.cfg.Rounds)
	}
	switch w.cfg.Kind {
	case Migratory:
		return w.migratory(m), nil
	case PrivateEvict:
		return w.privateEvict(m), nil
	case ReadShared:
		return w.readShared(m), nil
	case ProducerConsumer:
		return w.producerConsumer(m), nil
	default:
		return nil, fmt.Errorf("micro: unknown kernel %q", w.cfg.Kind)
	}
}

// migratory: the processors take turns performing a read-modify-write of
// one shared datum, handing it around with a turn counter.
func (w *Micro) migratory(m *engine.Machine) []engine.Program {
	alloc := m.Alloc()
	turn := workload.NewI32(alloc, "turn", 1)
	alloc.Alloc("pad", 256, 256) // keep the datum off the turn counter's block
	data := workload.NewF64(alloc, "datum", 2)
	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		self := int32(cpu)
		progs[cpu] = func(p *engine.Proc) {
			for r := 0; r < w.cfg.Rounds; r++ {
				for {
					if turn.Get(p, 0)%int32(w.cpus) == self {
						break
					}
					p.Compute(16 + p.Rand().Intn(16))
				}
				// The migratory load-store sequence.
				v := data.Get(p, 0)
				p.Compute(10)
				data.Set(p, 0, v+1)
				turn.Add(p, 0, 1)
			}
		}
	}
	return progs
}

// privateEvict: each processor sweeps a private region larger than the
// L2, read-modify-writing each element; every revisit re-fetches from the
// home with an ownership acquisition under the baseline protocol.
func (w *Micro) privateEvict(m *engine.Machine) []engine.Program {
	alloc := m.Alloc()
	layout := m.Layout()
	elems := w.cfg.FootprintBytes / 8
	regions := make([]*workload.F64, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		regions[cpu] = workload.NewF64(alloc, "private", elems)
	}
	// Stride by one cache block so each access touches a fresh block.
	stride := int(layout.BlockSize / 8)
	if stride == 0 {
		stride = 1
	}
	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		mine := regions[cpu]
		progs[cpu] = func(p *engine.Proc) {
			for r := 0; r < w.cfg.Rounds; r++ {
				for i := 0; i < elems; i += stride {
					v := mine.Get(p, i)
					p.Compute(4)
					mine.Set(p, i, v+1)
				}
			}
		}
	}
	return progs
}

// readShared: processor 0 periodically rewrites a small table that all
// the others continuously read.
func (w *Micro) readShared(m *engine.Machine) []engine.Program {
	alloc := m.Alloc()
	table := workload.NewF64(alloc, "table", 64)
	progs := make([]engine.Program, w.cpus)
	progs[0] = func(p *engine.Proc) {
		for r := 0; r < w.cfg.Rounds; r++ {
			for i := 0; i < table.Len(); i += 8 {
				table.Set(p, i, float64(r))
			}
			p.Compute(2000)
		}
	}
	for cpu := 1; cpu < w.cpus; cpu++ {
		progs[cpu] = func(p *engine.Proc) {
			for r := 0; r < w.cfg.Rounds*4; r++ {
				for i := 0; i < table.Len(); i += 4 {
					table.Get(p, i)
					p.Compute(6)
				}
			}
		}
	}
	return progs
}

// producerConsumer: processor 0 fills a buffer and raises a flag; the
// consumers read the buffer. The consumers' reads of the flag right after
// the producer's store exercise exclusive grants that fail (NotLS).
func (w *Micro) producerConsumer(m *engine.Machine) []engine.Program {
	alloc := m.Alloc()
	flag := workload.NewI32(alloc, "flag", 1)
	alloc.Alloc("pad", 256, 256)
	buf := workload.NewF64(alloc, "buffer", 32)
	alloc.Alloc("pad", 256, 256)
	acks := workload.NewI32(alloc, "acks", 1)
	progs := make([]engine.Program, w.cpus)
	progs[0] = func(p *engine.Proc) {
		for r := 1; r <= w.cfg.Rounds; r++ {
			for i := 0; i < buf.Len(); i++ {
				buf.Set(p, i, float64(r*i))
			}
			flag.Set(p, 0, int32(r))
			// Wait until every consumer acknowledged this round.
			for {
				if acks.Get(p, 0) >= int32(r*(w.cpus-1)) {
					break
				}
				p.Compute(40)
			}
		}
	}
	for cpu := 1; cpu < w.cpus; cpu++ {
		progs[cpu] = func(p *engine.Proc) {
			seen := int32(0)
			for seen < int32(w.cfg.Rounds) {
				if v := flag.Get(p, 0); v > seen {
					seen = v
					var sum float64
					for i := 0; i < buf.Len(); i++ {
						sum += buf.Get(p, i)
					}
					_ = sum
					acks.Add(p, 0, 1)
				} else {
					p.Compute(30 + p.Rand().Intn(30))
				}
			}
		}
	}
	return progs
}
