// Package workload defines the benchmark-program interface and shared
// helpers for the paper's four workloads: MP3D (SPLASH), Cholesky and LU
// (SPLASH-2), and the OLTP (TPC-B on MySQL/SparcLinux) workload, each
// reimplemented as a program-driven kernel with the sharing structure the
// paper's analysis depends on (see DESIGN.md for the substitution
// rationale).
//
// A Workload allocates its data structures in the machine's simulated
// address space and returns one program per processor. Programs are real
// Go code: control flow depends on computed values and simulated
// synchronization, so the memory-reference interleaving emerges from the
// modeled latencies, as in the paper's program-driven methodology.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
)

// Workload is a benchmark that can be instantiated on a machine.
type Workload interface {
	// Name returns the benchmark name (e.g. "mp3d").
	Name() string
	// Programs allocates the workload's shared data on m and returns one
	// program per processor (len == m.Nodes()).
	Programs(m *engine.Machine) ([]engine.Program, error)
}

// Registry maps workload names to constructors with default ("paper") and
// reduced ("test") scales.
type Registry struct {
	byName map[string]func(scale Scale, cpus int) Workload
	names  []string
}

// Scale selects the workload problem size.
type Scale int

const (
	// ScaleTest is a reduced size for fast unit tests.
	ScaleTest Scale = iota
	// ScaleSmall is a mid-size configuration for benchmarks.
	ScaleSmall
	// ScalePaper approximates the paper's problem sizes.
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts "test", "small" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "test":
		return ScaleTest, nil
	case "small":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("workload: unknown scale %q", s)
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]func(Scale, int) Workload)}
}

// Register adds a constructor under name.
func (r *Registry) Register(name string, ctor func(scale Scale, cpus int) Workload) {
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	r.byName[name] = ctor
	r.names = append(r.names, name)
	sort.Strings(r.names)
}

// New instantiates the named workload.
func (r *Registry) New(name string, scale Scale, cpus int) (Workload, error) {
	ctor, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, r.names)
	}
	return ctor(scale, cpus), nil
}

// Names lists the registered workloads in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Rand returns a deterministic RNG for workload construction.
func Rand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// --- typed views over the simulated address space ---
//
// Workloads keep their real data in Go slices and mirror every element
// access with a simulated memory access at the matching address, so cache
// and sharing behaviour follow the actual algorithm.

// F64 is a shared array of float64 (8 bytes / 2 machine words each).
type F64 struct {
	base memory.Addr
	vals []float64
}

// NewF64 allocates n float64s under the given region name.
func NewF64(a *memory.Allocator, name string, n int) *F64 {
	return &F64{base: a.Alloc(name, uint64(n)*8, 8), vals: make([]float64, n)}
}

// Addr returns the simulated address of element i.
func (x *F64) Addr(i int) memory.Addr { return x.base + memory.Addr(i*8) }

// Len returns the number of elements.
func (x *F64) Len() int { return len(x.vals) }

// Get loads element i.
func (x *F64) Get(p *engine.Proc, i int) float64 {
	p.ReadN(x.Addr(i), 8)
	return x.vals[i]
}

// Set stores element i.
func (x *F64) Set(p *engine.Proc, i int, v float64) {
	p.WriteN(x.Addr(i), 8)
	x.vals[i] = v
}

// Update performs a read-modify-write of element i (two accesses: the
// load-store pattern). The load carries an exclusive-read annotation: a
// compiler's dataflow analysis would trivially mark this load as followed
// by a store to the same address, so machines configured with the static
// EX technique combine it with the ownership acquisition.
func (x *F64) Update(p *engine.Proc, i int, f func(float64) float64) {
	p.ReadExN(x.Addr(i), 8)
	v := x.vals[i]
	x.Set(p, i, f(v))
}

// Peek returns the value without a simulated access (host-side checks).
func (x *F64) Peek(i int) float64 { return x.vals[i] }

// Poke sets the value without a simulated access (initialization before
// the run; cold misses still occur because caches start empty).
func (x *F64) Poke(i int, v float64) { x.vals[i] = v }

// I32 is a shared array of int32 (one machine word each).
type I32 struct {
	base memory.Addr
	vals []int32
}

// NewI32 allocates n int32s under the given region name.
func NewI32(a *memory.Allocator, name string, n int) *I32 {
	return &I32{base: a.Alloc(name, uint64(n)*4, 4), vals: make([]int32, n)}
}

// Addr returns the simulated address of element i.
func (x *I32) Addr(i int) memory.Addr { return x.base + memory.Addr(i*4) }

// Len returns the number of elements.
func (x *I32) Len() int { return len(x.vals) }

// Get loads element i.
func (x *I32) Get(p *engine.Proc, i int) int32 {
	p.Read(x.Addr(i))
	return x.vals[i]
}

// Set stores element i.
func (x *I32) Set(p *engine.Proc, i int, v int32) {
	p.Write(x.Addr(i))
	x.vals[i] = v
}

// Add atomically adds delta to element i (an RMW: one load-store
// sequence) and returns the new value.
func (x *I32) Add(p *engine.Proc, i int, delta int32) int32 {
	p.RMW(x.Addr(i))
	x.vals[i] += delta
	return x.vals[i]
}

// Peek returns the value without a simulated access.
func (x *I32) Peek(i int) int32 { return x.vals[i] }

// Poke sets the value without a simulated access.
func (x *I32) Poke(i int, v int32) { x.vals[i] = v }

// Record is a view over an array of fixed-size records (structs) in
// simulated memory; fields are addressed by byte offset. It lets workloads
// express "read the particle, update three fields" with the right number
// and placement of memory accesses.
type Record struct {
	base  memory.Addr
	size  uint64
	count int
}

// NewRecords allocates count records of size bytes each, aligned to align
// (0 for word alignment).
func NewRecords(a *memory.Allocator, name string, count int, size, align uint64) *Record {
	return &Record{base: a.Alloc(name, uint64(count)*size, align), size: size, count: count}
}

// Addr returns the address of record i's field at byte offset off.
func (r *Record) Addr(i int, off uint64) memory.Addr {
	return r.base + memory.Addr(uint64(i)*r.size+off)
}

// Count returns the number of records.
func (r *Record) Count() int { return r.count }

// Size returns the record size in bytes.
func (r *Record) Size() uint64 { return r.size }

// ReadField loads n bytes of record i at offset off.
func (r *Record) ReadField(p *engine.Proc, i int, off uint64, n uint32) {
	p.ReadN(r.Addr(i, off), n)
}

// WriteField stores n bytes of record i at offset off.
func (r *Record) WriteField(p *engine.Proc, i int, off uint64, n uint32) {
	p.WriteN(r.Addr(i, off), n)
}
