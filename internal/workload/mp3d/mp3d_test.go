package mp3d

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

func machine(t *testing.T, kind protocol.Kind) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      2_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigScales(t *testing.T) {
	test := ConfigFor(workload.ScaleTest)
	paper := ConfigFor(workload.ScalePaper)
	if paper.Particles != 10000 || paper.Steps != 10 {
		t.Errorf("paper scale = %+v, want 10k particles / 10 steps", paper)
	}
	if test.Particles >= paper.Particles {
		t.Error("test scale not smaller than paper scale")
	}
	small := ConfigFor(workload.ScaleSmall)
	if small.Particles <= test.Particles || small.Particles >= paper.Particles {
		t.Errorf("small scale %d not between test and paper", small.Particles)
	}
}

func TestProgramsValidation(t *testing.T) {
	m := machine(t, protocol.Baseline)
	w := NewWithConfig(Config{Particles: 2, Steps: 1, X: 4, Y: 4, Z: 4}, 4)
	if _, err := w.Programs(m); err == nil {
		t.Error("fewer particles than CPUs accepted")
	}
	w = NewWithConfig(Config{Particles: 100, Steps: 1, X: 0, Y: 4, Z: 4}, 4)
	if _, err := w.Programs(m); err == nil {
		t.Error("zero-dimension space array accepted")
	}
}

func TestRunsToCompletion(t *testing.T) {
	m := machine(t, protocol.LS)
	w := New(workload.ScaleTest, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 4 {
		t.Fatalf("got %d programs", len(progs))
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
	st := m.Stats()
	if st.Sum().Stores == 0 {
		t.Error("no stores executed")
	}
	// Cell updates dominate the sharing: the sequence detector must see
	// substantial migratory behaviour (Gupta & Weber's MP3D result).
	total := m.Sequences().Total()
	if total.LoadStoreWrites == 0 {
		t.Fatal("no load-store sequences detected")
	}
	if total.MigratoryFrac() < 0.2 {
		t.Errorf("migratory fraction = %.2f, want substantial", total.MigratoryFrac())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() uint64 {
		m := machine(t, protocol.AD)
		w := New(workload.ScaleTest, 4)
		progs, err := w.Programs(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Stats().ExecTime()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestNameAndRegistryCtor(t *testing.T) {
	if New(workload.ScaleTest, 4).Name() != "mp3d" {
		t.Error("name wrong")
	}
}
