// Package mp3d reimplements the SPLASH MP3D benchmark kernel: a
// particle-based hypersonic wind-tunnel simulator. MP3D is the paper's
// canonical migratory workload (Section 5.1): space-cell records are
// read-modify-written in turn by whichever processor's particles currently
// occupy them, and global collision counters are updated under a lock —
// both producing the single-invalidation migratory pattern identified by
// Gupta & Weber.
//
// The kernel keeps MP3D's sharing structure: statically partitioned
// particle records (mostly private), a shared 3-D space array of cell
// records (migratory), boundary/reservoir handling, and lock-protected
// global counters, advanced in barrier-separated time steps.
package mp3d

import (
	"fmt"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
)

// Config sets the problem size.
type Config struct {
	Particles int
	Steps     int
	// Space array dimensions (cells). The original MP3D space array is
	// 14×24×7.
	X, Y, Z int
	// CollisionFrac is the probability a particle move triggers the
	// collision bookkeeping path.
	CollisionFrac float64
	// Seed for the deterministic initial state.
	Seed int64
}

// ConfigFor returns the configuration for a scale. ScalePaper matches the
// paper's run: 10 k particles, 10 time steps.
func ConfigFor(scale workload.Scale) Config {
	switch scale {
	case workload.ScaleTest:
		return Config{Particles: 600, Steps: 3, X: 8, Y: 8, Z: 4, CollisionFrac: 0.15, Seed: 42}
	case workload.ScaleSmall:
		return Config{Particles: 3000, Steps: 5, X: 14, Y: 24, Z: 7, CollisionFrac: 0.15, Seed: 42}
	default:
		return Config{Particles: 10000, Steps: 10, X: 14, Y: 24, Z: 7, CollisionFrac: 0.15, Seed: 42}
	}
}

// particle field offsets within the 32-byte particle record, mirroring
// MP3D's particle struct (3 position words, 3 velocity words, cell index,
// flags).
const (
	recSize     = 32
	offPos      = 0  // 12 bytes
	offVel      = 12 // 12 bytes
	offCell     = 24 // 4 bytes
	offFlags    = 28 // 4 bytes
	cellSize    = 16
	offCount    = 0 // 4 bytes: particles in cell this step
	offMomentum = 4 // 12 bytes: momentum accumulator
)

// MP3D is the workload object.
type MP3D struct {
	cfg  Config
	cpus int
}

// New constructs the workload for the given scale and processor count.
func New(scale workload.Scale, cpus int) workload.Workload {
	return &MP3D{cfg: ConfigFor(scale), cpus: cpus}
}

// NewWithConfig constructs the workload with an explicit configuration.
func NewWithConfig(cfg Config, cpus int) *MP3D {
	return &MP3D{cfg: cfg, cpus: cpus}
}

// Name implements workload.Workload.
func (w *MP3D) Name() string { return "mp3d" }

// state is the host-side simulation state; every access to it is mirrored
// by a simulated memory access through the record views.
type state struct {
	cfg    Config
	pos    [][3]float32
	vel    [][3]float32
	cellOf []int32

	cellCount []int32
	cellMom   [][3]float32

	collisions int64
}

func (s *state) cellIndex(x, y, z float32) int32 {
	cx := int(x) % s.cfg.X
	cy := int(y) % s.cfg.Y
	cz := int(z) % s.cfg.Z
	if cx < 0 {
		cx += s.cfg.X
	}
	if cy < 0 {
		cy += s.cfg.Y
	}
	if cz < 0 {
		cz += s.cfg.Z
	}
	return int32((cx*s.cfg.Y+cy)*s.cfg.Z + cz)
}

// Programs implements workload.Workload.
func (w *MP3D) Programs(m *engine.Machine) ([]engine.Program, error) {
	cfg := w.cfg
	if cfg.Particles < w.cpus {
		return nil, fmt.Errorf("mp3d: %d particles for %d CPUs", cfg.Particles, w.cpus)
	}
	if cfg.X < 1 || cfg.Y < 1 || cfg.Z < 1 {
		return nil, fmt.Errorf("mp3d: bad space array %dx%dx%d", cfg.X, cfg.Y, cfg.Z)
	}
	alloc := m.Alloc()
	ncells := cfg.X * cfg.Y * cfg.Z

	particles := workload.NewRecords(alloc, "particles", cfg.Particles, recSize, 0)
	cells := workload.NewRecords(alloc, "cells", ncells, cellSize, 0)
	barrier := engine.NewBarrier(alloc, "barrier", w.cpus, m.Nodes())
	colLock := engine.NewLock(alloc, "collision-lock")
	globals := workload.NewI32(alloc, "globals", 4) // collision count, step, reservoir in/out

	st := &state{
		cfg:       cfg,
		pos:       make([][3]float32, cfg.Particles),
		vel:       make([][3]float32, cfg.Particles),
		cellOf:    make([]int32, cfg.Particles),
		cellCount: make([]int32, ncells),
		cellMom:   make([][3]float32, ncells),
	}
	rng := workload.Rand(cfg.Seed)
	for i := range st.pos {
		st.pos[i] = [3]float32{
			rng.Float32() * float32(cfg.X),
			rng.Float32() * float32(cfg.Y),
			rng.Float32() * float32(cfg.Z),
		}
		st.vel[i] = [3]float32{
			rng.Float32()*2 - 1,
			rng.Float32()*2 - 1,
			rng.Float32()*2 - 1,
		}
		st.cellOf[i] = st.cellIndex(st.pos[i][0], st.pos[i][1], st.pos[i][2])
	}

	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		lo := cpu * cfg.Particles / w.cpus
		hi := (cpu + 1) * cfg.Particles / w.cpus
		progs[cpu] = func(p *engine.Proc) {
			for step := 0; step < cfg.Steps; step++ {
				localCollisions := int64(0)
				for i := lo; i < hi; i++ {
					w.move(p, st, particles, cells, i, &localCollisions)
				}
				if localCollisions > 0 {
					colLock.Acquire(p)
					globals.Add(p, 0, int32(localCollisions))
					st.collisions += localCollisions
					colLock.Release(p)
				}
				barrier.Wait(p)
			}
		}
	}
	return progs, nil
}

// move advances one particle: read its record, integrate, write it back,
// and read-modify-write the destination cell's counters — the load-store
// sequence on shared (migratory) data.
func (w *MP3D) move(p *engine.Proc, st *state, particles, cells *workload.Record, i int, collisions *int64) {
	// Load position and velocity (24 bytes).
	particles.ReadField(p, i, offPos, 24)
	pos, vel := st.pos[i], st.vel[i]
	p.Compute(20) // integration arithmetic

	for d := 0; d < 3; d++ {
		pos[d] += vel[d]
	}
	// Reservoir boundary: wrap in x (flow direction), reflect in y/z.
	if pos[0] < 0 || int(pos[0]) >= st.cfg.X {
		pos[0] = 0.5
		p.Read(particles.Addr(i, offFlags)) // boundary-condition check
	}
	newCell := st.cellIndex(pos[0], pos[1], pos[2])
	st.pos[i] = pos

	// Store the new position and cell index.
	particles.WriteField(p, i, offPos, 12)
	oldCell := st.cellOf[i]
	if newCell != oldCell {
		particles.WriteField(p, i, offCell, 4)
		st.cellOf[i] = newCell
	}

	// Cell update: the migratory read-modify-write. Count and momentum
	// accumulate into the shared cell record.
	c := int(newCell)
	cells.ReadField(p, c, offCount, 8)
	cnt := st.cellCount[c]
	p.Compute(6)
	st.cellCount[c] = cnt + 1
	cells.WriteField(p, c, offCount, 8)

	// Collision path: particles in a populated cell exchange momentum.
	// Deterministic pseudo-randomness from particle state keeps runs
	// reproducible across protocols.
	h := uint32(i*2654435761) ^ uint32(cnt*40503)
	if float64(h%1000)/1000.0 < st.cfg.CollisionFrac && cnt > 0 {
		cells.ReadField(p, c, offMomentum, 12)
		mom := st.cellMom[c]
		p.Compute(25) // collision arithmetic
		for d := 0; d < 3; d++ {
			mom[d] += st.vel[i][d] * 0.5
			st.vel[i][d] = -0.5*st.vel[i][d] + 0.1*mom[d]
		}
		st.cellMom[c] = mom
		cells.WriteField(p, c, offMomentum, 12)
		particles.WriteField(p, i, offVel, 12)
		*collisions++
	}
}

// Collisions returns the total collision count after a run (host-side
// verification hook).
func Collisions(st *workload.I32) int32 { return st.Peek(0) }
