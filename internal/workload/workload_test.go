package workload

import (
	"testing"

	"lsnuma/internal/memory"
)

func alloc(t *testing.T) *memory.Allocator {
	t.Helper()
	l, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return memory.NewAllocator(l, 0)
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("b", func(Scale, int) Workload { return nil })
	r.Register("a", func(Scale, int) Workload { return nil })
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if _, err := r.New("a", ScaleTest, 4); err != nil {
		t.Errorf("New(a) failed: %v", err)
	}
	if _, err := r.New("zzz", ScaleTest, 4); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	ctor := func(Scale, int) Workload { return nil }
	r.Register("x", ctor)
	r.Register("x", ctor)
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"test": ScaleTest, "small": ScaleSmall, "paper": ScalePaper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
	if ScaleTest.String() != "test" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("scale strings wrong")
	}
	if Scale(42).String() == "" {
		t.Error("unknown scale string empty")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := Rand(7), Rand(7)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Rand not deterministic per seed")
		}
	}
}

func TestF64Layout(t *testing.T) {
	a := alloc(t)
	x := NewF64(a, "x", 10)
	if x.Len() != 10 {
		t.Errorf("Len = %d", x.Len())
	}
	if x.Addr(3)-x.Addr(0) != 24 {
		t.Errorf("element stride = %d", x.Addr(3)-x.Addr(0))
	}
	if uint64(x.Addr(0))%8 != 0 {
		t.Errorf("base %#x not 8-aligned", x.Addr(0))
	}
	x.Poke(4, 2.5)
	if x.Peek(4) != 2.5 {
		t.Error("Poke/Peek roundtrip failed")
	}
}

func TestI32Layout(t *testing.T) {
	a := alloc(t)
	x := NewI32(a, "x", 8)
	if x.Len() != 8 {
		t.Errorf("Len = %d", x.Len())
	}
	if x.Addr(2)-x.Addr(0) != 8 {
		t.Errorf("element stride = %d", x.Addr(2)-x.Addr(0))
	}
	x.Poke(1, -7)
	if x.Peek(1) != -7 {
		t.Error("Poke/Peek roundtrip failed")
	}
}

func TestRecordLayout(t *testing.T) {
	a := alloc(t)
	r := NewRecords(a, "recs", 5, 64, 0)
	if r.Count() != 5 || r.Size() != 64 {
		t.Errorf("Count/Size = %d/%d", r.Count(), r.Size())
	}
	if r.Addr(2, 8)-r.Addr(0, 0) != 2*64+8 {
		t.Errorf("record addressing wrong: %d", r.Addr(2, 8)-r.Addr(0, 0))
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	a := alloc(t)
	x := NewF64(a, "x", 10)
	y := NewI32(a, "y", 10)
	r := NewRecords(a, "r", 3, 32, 0)
	endX := x.Addr(9) + 8
	if y.Addr(0) < endX {
		t.Error("y overlaps x")
	}
	endY := y.Addr(9) + 4
	if r.Addr(0, 0) < endY {
		t.Error("r overlaps y")
	}
}
