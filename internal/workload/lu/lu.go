// Package lu reimplements the SPLASH-2 LU benchmark kernel: blocked dense
// LU factorization of an N×N matrix (the paper runs 256×256). The matrix
// is stored as a single contiguous row-major array of doubles with no
// padding — the "non-contiguous blocks" layout — so cache blocks straddle
// ownership boundaries and different processors perform load-store
// sequences to different words of the same cache block. That false-sharing
// effect is what makes AD appear to help LU in the paper (an illusion of
// migratory behaviour, Section 5.3), and what lets LS remove most of the
// remaining write stall.
//
// Simulated accesses are issued at row-segment granularity (one ReadN or
// WriteN per block-row, touching every cache line the elementwise sweep
// would), while the arithmetic itself runs host-side at full precision —
// a standard reference-compaction that preserves cache and coherence
// behaviour while keeping simulation time tractable; see DESIGN.md.
package lu

import (
	"fmt"
	"math"

	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
	"lsnuma/internal/workload"
)

// Config sets the problem size.
type Config struct {
	// N is the matrix order.
	N int
	// B is the block size in elements (N must be a multiple of B).
	B int
	// Seed for the deterministic matrix generator.
	Seed int64
}

// ConfigFor returns the configuration for a scale. ScalePaper matches the
// paper's 256×256 run (SPLASH-2 default block size 16).
func ConfigFor(scale workload.Scale) Config {
	switch scale {
	case workload.ScaleTest:
		return Config{N: 48, B: 8, Seed: 3}
	case workload.ScaleSmall:
		return Config{N: 128, B: 16, Seed: 3}
	default:
		return Config{N: 256, B: 16, Seed: 3}
	}
}

// LU is the workload object.
type LU struct {
	cfg  Config
	cpus int

	// host-side matrix (row-major), shared with the simulated programs
	a []float64
	// addr of the matrix region
	arr *workload.F64
}

// New constructs the workload for the given scale and processor count.
func New(scale workload.Scale, cpus int) workload.Workload {
	return &LU{cfg: ConfigFor(scale), cpus: cpus}
}

// NewWithConfig constructs the workload with an explicit configuration.
func NewWithConfig(cfg Config, cpus int) *LU {
	return &LU{cfg: cfg, cpus: cpus}
}

// Name implements workload.Workload.
func (w *LU) Name() string { return "lu" }

// Matrix exposes the factored matrix after a run (for verification).
func (w *LU) Matrix() []float64 { return w.a }

// idx returns the flat index of element (i,j).
func (w *LU) idx(i, j int) int { return i*w.cfg.N + j }

// rowAddr returns the simulated address of elements (i, j..j+len).
func (w *LU) rowAddr(i, j int) memory.Addr { return w.arr.Addr(w.idx(i, j)) }

// owner returns the processor owning block (I, J) under the SPLASH-2 2-D
// scatter decomposition.
func (w *LU) owner(I, J int) int {
	pr := 1
	for pr*pr < w.cpus {
		pr++
	}
	if pr*pr != w.cpus {
		// Non-square processor counts fall back to 1-D round-robin.
		nb := w.cfg.N / w.cfg.B
		return (I*nb + J) % w.cpus
	}
	return (I%pr)*pr + J%pr
}

// Programs implements workload.Workload.
func (w *LU) Programs(m *engine.Machine) ([]engine.Program, error) {
	cfg := w.cfg
	if cfg.N < 1 || cfg.B < 1 || cfg.N%cfg.B != 0 {
		return nil, fmt.Errorf("lu: N=%d not a multiple of B=%d", cfg.N, cfg.B)
	}
	alloc := m.Alloc()
	// SPLASH-2's non-contiguous LU allocates the matrix with plain malloc,
	// which on the paper's platform is not cache-block aligned. The 8-byte
	// shim reproduces that: cache blocks straddle block-column ownership
	// boundaries, so neighbouring owners' load-store sequences falsely
	// share blocks — the "illusion of migratory behaviour" of Section 5.3.
	alloc.Alloc("matrix-shim", 8, 8)
	w.arr = workload.NewF64(alloc, "matrix", cfg.N*cfg.N)
	w.a = make([]float64, cfg.N*cfg.N)
	rng := workload.Rand(cfg.Seed)
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			v := rng.Float64()*2 - 1
			if i == j {
				v += float64(cfg.N) // diagonal dominance: no pivoting needed
			}
			w.a[w.idx(i, j)] = v
		}
	}

	barrier := engine.NewBarrier(alloc, "barrier", w.cpus, m.Nodes())
	nb := cfg.N / cfg.B

	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		progs[cpu] = func(p *engine.Proc) {
			for k := 0; k < nb; k++ {
				// Phase 1: the owner factors the diagonal block.
				if w.owner(k, k) == int(p.ID())%w.cpus {
					w.factorDiag(p, k)
				}
				barrier.Wait(p)
				// Phase 2: owners update their perimeter blocks.
				for j := k + 1; j < nb; j++ {
					if w.owner(k, j) == int(p.ID())%w.cpus {
						w.updateRowBlock(p, k, j)
					}
					if w.owner(j, k) == int(p.ID())%w.cpus {
						w.updateColBlock(p, j, k)
					}
				}
				barrier.Wait(p)
				// Phase 3: owners update their interior blocks.
				for i := k + 1; i < nb; i++ {
					for j := k + 1; j < nb; j++ {
						if w.owner(i, j) == int(p.ID())%w.cpus {
							w.updateInterior(p, i, j, k)
						}
					}
				}
				barrier.Wait(p)
			}
		}
	}
	return progs, nil
}

// readRow / rmwRow issue the simulated accesses for a length-B row segment.
func (w *LU) readRow(p *engine.Proc, i, j int) {
	p.ReadN(w.rowAddr(i, j), uint32(w.cfg.B*8))
}

func (w *LU) rmwRow(p *engine.Proc, i, j int) {
	p.ReadN(w.rowAddr(i, j), uint32(w.cfg.B*8))
	p.WriteN(w.rowAddr(i, j), uint32(w.cfg.B*8))
}

// factorDiag performs the unblocked LU of diagonal block (k,k).
func (w *LU) factorDiag(p *engine.Proc, k int) {
	b, n := w.cfg.B, w.cfg.N
	base := k * b
	for c := 0; c < b; c++ {
		pivRow := base + c
		w.readRow(p, pivRow, base)
		piv := w.a[w.idx(pivRow, pivRow)]
		for r := c + 1; r < b; r++ {
			row := base + r
			w.rmwRow(p, row, base)
			p.Compute(2 * b) // daxpy
			l := w.a[w.idx(row, pivRow)] / piv
			w.a[w.idx(row, pivRow)] = l
			for j := pivRow + 1; j < base+b && j < n; j++ {
				w.a[w.idx(row, j)] -= l * w.a[w.idx(pivRow, j)]
			}
		}
	}
}

// updateRowBlock applies the diagonal block's L factor to perimeter block
// (k, j): triangular solve down the block's rows.
func (w *LU) updateRowBlock(p *engine.Proc, k, j int) {
	b := w.cfg.B
	rBase, cBase := k*b, j*b
	for c := 0; c < b; c++ {
		w.readRow(p, rBase+c, rBase) // L row
		for r := c + 1; r < b; r++ {
			w.rmwRow(p, rBase+r, cBase)
			p.Compute(2 * b)
			l := w.a[w.idx(rBase+r, rBase+c)]
			for jj := 0; jj < b; jj++ {
				w.a[w.idx(rBase+r, cBase+jj)] -= l * w.a[w.idx(rBase+c, cBase+jj)]
			}
		}
	}
}

// updateColBlock computes the L factors of perimeter block (i, k).
func (w *LU) updateColBlock(p *engine.Proc, i, k int) {
	b := w.cfg.B
	rBase, cBase := i*b, k*b
	for c := 0; c < b; c++ {
		piv := w.a[w.idx(cBase+c, cBase+c)]
		w.readRow(p, cBase+c, cBase) // U row from the diagonal block
		for r := 0; r < b; r++ {
			w.rmwRow(p, rBase+r, cBase)
			p.Compute(2 * b)
			l := w.a[w.idx(rBase+r, cBase+c)] / piv
			w.a[w.idx(rBase+r, cBase+c)] = l
			for jj := c + 1; jj < b; jj++ {
				w.a[w.idx(rBase+r, cBase+jj)] -= l * w.a[w.idx(cBase+c, cBase+jj)]
			}
		}
	}
}

// updateInterior applies A[i][j] -= A[i][k] × A[k][j] (block GEMM): the
// bulk of the work. Each row of the target block is read-modify-written —
// a load-store sequence to the owner's data, with block-boundary words
// falsely shared with neighbouring owners.
func (w *LU) updateInterior(p *engine.Proc, i, j, k int) {
	b := w.cfg.B
	iBase, jBase, kBase := i*b, j*b, k*b
	for r := 0; r < b; r++ {
		w.readRow(p, iBase+r, kBase) // A[i][k] row
		w.readRow(p, kBase+r, jBase) // A[k][j] row (round-robin over rows)
		w.rmwRow(p, iBase+r, jBase)  // target row
		p.Compute(2 * b * b / 4)
		for c := 0; c < b; c++ {
			var sum float64
			for kk := 0; kk < b; kk++ {
				sum += w.a[w.idx(iBase+r, kBase+kk)] * w.a[w.idx(kBase+kk, jBase+c)]
			}
			w.a[w.idx(iBase+r, jBase+c)] -= sum
		}
	}
}

// Residual verifies the factorization on the host: it recomposes L·U and
// returns the max-norm relative error against the original matrix
// (regenerated from the seed). Intended for tests at small N.
func Residual(cfg Config, factored []float64) float64 {
	n := cfg.N
	rng := workload.Rand(cfg.Seed)
	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.Float64()*2 - 1
			if i == j {
				v += float64(n)
			}
			orig[i*n+j] = v
		}
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kMax := i
			if j < i {
				kMax = j
			}
			for k := 0; k <= kMax; k++ {
				l := factored[i*n+k]
				if k == i {
					l = 1
				}
				u := factored[k*n+j]
				if k > j {
					u = 0
				}
				sum += l * u
			}
			err := math.Abs(sum-orig[i*n+j]) / float64(n)
			if err > worst {
				worst = err
			}
		}
	}
	return worst
}
