package lu

import (
	"math"
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

func machine(t *testing.T, kind protocol.Kind) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      20_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigScales(t *testing.T) {
	paper := ConfigFor(workload.ScalePaper)
	if paper.N != 256 || paper.B != 16 {
		t.Errorf("paper scale = %+v, want 256x256 blocked 16", paper)
	}
	test := ConfigFor(workload.ScaleTest)
	if test.N%test.B != 0 {
		t.Errorf("test N=%d not a multiple of B=%d", test.N, test.B)
	}
}

func TestProgramsValidation(t *testing.T) {
	m := machine(t, protocol.Baseline)
	if _, err := NewWithConfig(Config{N: 50, B: 16}, 4).Programs(m); err == nil {
		t.Error("N not multiple of B accepted")
	}
}

func TestOwner2DScatter(t *testing.T) {
	w := NewWithConfig(Config{N: 64, B: 16}, 4)
	// 2x2 processor grid.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			o := w.owner(i, j)
			if o < 0 || o > 3 {
				t.Fatalf("owner(%d,%d) = %d", i, j, o)
			}
			seen[o] = true
			if o != w.owner(i+2, j) || o != w.owner(i, j+2) {
				t.Error("2D scatter not periodic with stride 2")
			}
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d owners used", len(seen))
	}
}

func TestFactorizationCorrect(t *testing.T) {
	m := machine(t, protocol.LS)
	cfg := ConfigFor(workload.ScaleTest)
	w := NewWithConfig(cfg, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
	if r := Residual(cfg, w.Matrix()); r > 1e-9 {
		t.Errorf("LU residual = %g", r)
	}
}

// TestSameResultUnderAllProtocols: the coherence protocol must never
// change program semantics, only timing.
func TestSameResultUnderAllProtocols(t *testing.T) {
	cfg := ConfigFor(workload.ScaleTest)
	var ref []float64
	for _, kind := range []protocol.Kind{protocol.Baseline, protocol.AD, protocol.LS} {
		m := machine(t, kind)
		w := NewWithConfig(cfg, 4)
		progs, err := w.Programs(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = w.Matrix()
			continue
		}
		for i, v := range w.Matrix() {
			if math.Abs(v-ref[i]) > 1e-12 {
				t.Fatalf("%v: element %d differs: %g vs %g", kind, i, v, ref[i])
			}
		}
	}
}

func TestResidualDetectsCorruption(t *testing.T) {
	cfg := Config{N: 16, B: 8, Seed: 3}
	m := machine(t, protocol.Baseline)
	w := NewWithConfig(cfg, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	good := Residual(cfg, w.Matrix())
	w.Matrix()[5] += 1.0
	bad := Residual(cfg, w.Matrix())
	if bad <= good {
		t.Errorf("residual did not detect corruption: good=%g bad=%g", good, bad)
	}
}

// TestMisalignedLayoutSharesBlocks documents the deliberate malloc-style
// misalignment: the matrix base is 8-byte but not 16-byte aligned, so a
// 16-byte cache block straddles block-column ownership boundaries.
func TestMisalignedLayoutSharesBlocks(t *testing.T) {
	m := machine(t, protocol.Baseline)
	w := NewWithConfig(Config{N: 32, B: 8, Seed: 3}, 4)
	if _, err := w.Programs(m); err != nil {
		t.Fatal(err)
	}
	base := w.arr.Addr(0)
	if uint64(base)%8 != 0 {
		t.Fatalf("matrix base %#x not 8-aligned", base)
	}
	if uint64(base)%16 == 0 {
		t.Fatalf("matrix base %#x unexpectedly 16-aligned (shim missing)", base)
	}
	// The boundary elements of adjacent block-columns share a cache block.
	layout := m.Layout()
	lastOfBlock0 := w.rowAddr(0, 7)
	firstOfBlock1 := w.rowAddr(0, 8)
	if !layout.SameBlock(lastOfBlock0, firstOfBlock1) {
		t.Error("block-column boundary does not share a cache block (false sharing lost)")
	}
}
