package cholesky

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

func machine(t *testing.T, kind protocol.Kind, nodes int) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          nodes,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      20_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStructureDeterministicAndAcyclic(t *testing.T) {
	cfg := ConfigFor(workload.ScaleTest)
	h1, t1 := structureFor(cfg, 4)
	h2, t2 := structureFor(cfg, 4)
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("heights not deterministic")
		}
		if len(t1[j]) != len(t2[j]) {
			t.Fatal("targets not deterministic")
		}
		for i := range t1[j] {
			if t1[j][i] != t2[j][i] {
				t.Fatal("targets not deterministic")
			}
			if t1[j][i] <= j {
				t.Fatalf("column %d updates non-later column %d (cycle)", j, t1[j][i])
			}
		}
		if h1[j] < cfg.MinHeight || h1[j] > cfg.MaxHeight {
			t.Fatalf("height %d outside [%d,%d]", h1[j], cfg.MinHeight, cfg.MaxHeight)
		}
	}
}

func TestDataFootprintExceedsL2(t *testing.T) {
	// The test scale must stress a 64 kB L2 per the paper's Cholesky
	// analysis (re-fetch after conflict/capacity evictions).
	if f := DataFootprint(ConfigFor(workload.ScaleTest)); f < 2*64*1024 {
		t.Errorf("test-scale footprint %d bytes does not exceed 2x the 64 kB L2", f)
	}
}

func TestOwnerPartitioning(t *testing.T) {
	w := NewWithConfig(Config{Columns: 100, MinHeight: 4, MaxHeight: 8, MaxUpdates: 2, Seed: 1}, 4)
	if w.owner(0) != 0 || w.owner(99) != 3 {
		t.Errorf("owner bounds: %d, %d", w.owner(0), w.owner(99))
	}
	// Owners are monotone contiguous chunks.
	prev := 0
	for c := 0; c < 100; c++ {
		o := w.owner(c)
		if o < prev || o > prev+1 {
			t.Fatalf("owner(%d) = %d after %d", c, o, prev)
		}
		prev = o
	}
}

func TestProgramsValidation(t *testing.T) {
	m := machine(t, protocol.Baseline, 4)
	if _, err := NewWithConfig(Config{Columns: 2, MinHeight: 4, MaxHeight: 8}, 4).Programs(m); err == nil {
		t.Error("fewer columns than CPUs accepted")
	}
	if _, err := NewWithConfig(Config{Columns: 10, MinHeight: 8, MaxHeight: 4}, 4).Programs(m); err == nil {
		t.Error("inverted heights accepted")
	}
}

// TestAllColumnsFactored runs a small instance to completion and checks
// every column was processed exactly once (every dependency consumed).
func TestAllColumnsFactored(t *testing.T) {
	m := machine(t, protocol.LS, 4)
	cfg := Config{Columns: 120, MinHeight: 8, MaxHeight: 24, MaxUpdates: 3, Seed: 9}
	w := NewWithConfig(cfg, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// TestNoMigrationAtFourProcessors checks the §5.2 property the synthetic
// structure is built for: with owner-partitioned columns, load-store
// sequences on column data do not migrate.
func TestNoMigrationAtFourProcessors(t *testing.T) {
	m := machine(t, protocol.Baseline, 4)
	w := New(workload.ScaleTest, 4)
	progs, err := w.Programs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	total := m.Sequences().Total()
	if total.LoadStoreWrites == 0 {
		t.Fatal("no load-store sequences")
	}
	if frac := total.MigratoryFrac(); frac > 0.1 {
		t.Errorf("migratory fraction = %.3f, want ~0", frac)
	}
}

// TestInvalidationShareGrowsWithProcessors reproduces the Figure 5 trend:
// the share of individual invalidations in the total invalidation traffic
// grows from 4 to 16 processors (task-queue and boundary contention).
func TestInvalidationShareGrowsWithProcessors(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine cholesky scaling in -short mode")
	}
	share := func(nodes int) float64 {
		m := machine(t, protocol.Baseline, nodes)
		w := New(workload.ScaleTest, nodes)
		progs, err := w.Programs(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		total := st.GlobalInv + st.Invalidations
		if total == 0 {
			return 0
		}
		return float64(st.Invalidations) / float64(total)
	}
	s4 := share(4)
	s16 := share(16)
	if !(s16 > s4) {
		t.Errorf("invalidation share: 4p=%.3f 16p=%.3f, want growth", s4, s16)
	}
}
