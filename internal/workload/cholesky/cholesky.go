// Package cholesky reimplements the SPLASH-2 Cholesky benchmark kernel:
// task-queue-driven sparse supernodal factorization. The tk15.0 input
// matrix is not available offline; a deterministic synthetic elimination
// structure with the same shape parameters stands in for it (see
// DESIGN.md).
//
// The sharing structure the paper's analysis relies on is preserved:
//
//   - Supernodes are partitioned over the processors with subtree
//     locality (contiguous column ranges), and all modifications of a
//     column are performed by its owner — so column data does NOT migrate
//     at four processors. The paper finds "virtually no migrating data
//     objects" at four processors, ownership requests without a single
//     invalidation dominating the write overhead, and AD consequently
//     unable to remove any of it (§5.2).
//
//   - Column modifications (cmod) read-modify-write the owner's column
//     data: load-store sequences to data that is re-fetched after
//     conflict/capacity evictions — the data footprint is sized well past
//     the 64 kB L2 — which is exactly the ownership overhead LS removes.
//
//   - Work is distributed through per-processor task queues; cross-chunk
//     updates push tasks into other processors' queues, so queue blocks
//     are contended and migrate increasingly as the processor count grows
//     (the Figure 5 effect at 16 and 32 processors).
package cholesky

import (
	"fmt"
	"sort"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
)

// Config sets the synthetic problem shape.
type Config struct {
	// Columns is the number of supernodal columns.
	Columns int
	// MinHeight/MaxHeight bound the column heights in doubles.
	MinHeight, MaxHeight int
	// MaxUpdates bounds the out-degree of a column in the elimination
	// structure (how many later columns it updates).
	MaxUpdates int
	// Seed for the deterministic structure generator.
	Seed int64
}

// ConfigFor returns the configuration for a scale. The data footprint must
// exceed the 64 kB L2 — the paper's Cholesky effect is ownership overhead
// on columns re-fetched after conflict/capacity evictions.
func ConfigFor(scale workload.Scale) Config {
	switch scale {
	case workload.ScaleTest:
		return Config{Columns: 600, MinHeight: 64, MaxHeight: 128, MaxUpdates: 4, Seed: 7}
	case workload.ScaleSmall:
		return Config{Columns: 900, MinHeight: 64, MaxHeight: 144, MaxUpdates: 5, Seed: 7}
	default:
		// Work comparable to tk15.0 at the paper's cache sizes.
		return Config{Columns: 1500, MinHeight: 64, MaxHeight: 160, MaxUpdates: 6, Seed: 7}
	}
}

// Cholesky is the workload object.
type Cholesky struct {
	cfg  Config
	cpus int
}

// New constructs the workload for the given scale and processor count.
func New(scale workload.Scale, cpus int) workload.Workload {
	return &Cholesky{cfg: ConfigFor(scale), cpus: cpus}
}

// NewWithConfig constructs the workload with an explicit configuration.
func NewWithConfig(cfg Config, cpus int) *Cholesky {
	return &Cholesky{cfg: cfg, cpus: cpus}
}

// Name implements workload.Workload.
func (w *Cholesky) Name() string { return "cholesky" }

// structureFor generates the synthetic elimination structure: per-column
// heights and update targets (strictly increasing column indices, skewed
// toward nearby columns as in a real elimination tree). The structure is
// a forest whose subtrees align with the processor chunks (the supernodal
// partitioning assigns whole subtrees to processors), so updates stay
// almost entirely within a chunk and the processors run independently —
// without this, chunk-crossing chains serialize the machine into a
// pipeline and idle time swamps the measurement.
func structureFor(cfg Config, cpus int) (heights []int, targets [][]int) {
	if cpus < 1 {
		cpus = 1
	}
	rng := workload.Rand(cfg.Seed)
	heights = make([]int, cfg.Columns)
	targets = make([][]int, cfg.Columns)
	chunkOf := func(col int) int { return col * cpus / cfg.Columns }
	for j := 0; j < cfg.Columns; j++ {
		heights[j] = cfg.MinHeight + rng.Intn(cfg.MaxHeight-cfg.MinHeight+1)
		n := rng.Intn(cfg.MaxUpdates + 1)
		seen := map[int]bool{}
		for t := 0; t < n; t++ {
			// Geometric-ish skew toward near columns (elimination-tree
			// locality).
			gap := 1 + rng.Intn(8)*rng.Intn(8)
			k := j + gap
			if k >= cfg.Columns || seen[k] {
				continue
			}
			if chunkOf(k) != chunkOf(j) && rng.Intn(100) < 85 {
				// Subtree locality: only a small fraction of updates
				// cross the chunk boundary (the elimination forest's
				// shared ancestors).
				continue
			}
			seen[k] = true
			targets[j] = append(targets[j], k)
		}
		sort.Ints(targets[j])
	}
	return heights, targets
}

// owner returns the processor owning a column: contiguous chunks model the
// subtree partitioning of the supernodal elimination tree.
func (w *Cholesky) owner(col int) int {
	return col * w.cpus / w.cfg.Columns
}

// Programs implements workload.Workload.
func (w *Cholesky) Programs(m *engine.Machine) ([]engine.Program, error) {
	cfg := w.cfg
	if cfg.Columns < 1 || cfg.MinHeight < 1 || cfg.MaxHeight < cfg.MinHeight {
		return nil, fmt.Errorf("cholesky: bad config %+v", cfg)
	}
	if cfg.Columns < w.cpus {
		return nil, fmt.Errorf("cholesky: %d columns for %d CPUs", cfg.Columns, w.cpus)
	}
	alloc := m.Alloc()
	heights, targets := structureFor(cfg, w.cpus)

	// Column data: one contiguous region, column j at colOff[j].
	total := 0
	colOff := make([]int, cfg.Columns)
	for j, h := range heights {
		colOff[j] = total
		total += h
	}
	data := workload.NewF64(alloc, "column-data", total)
	for i := 0; i < total; i++ {
		data.Poke(i, 1.0+float64(i%17)*0.25)
	}

	// Dependency counts (touched only by each column's owner).
	deps := workload.NewI32(alloc, "dep-counts", cfg.Columns)
	indeg := make([]int, cfg.Columns)
	for _, ts := range targets {
		for _, k := range ts {
			indeg[k]++
		}
	}
	for j, d := range indeg {
		deps.Poke(j, int32(d))
	}

	// Per-processor task queues: a ring of encoded tasks plus head/tail
	// cursors, each under its owner's lock. Task encoding: a cdiv of
	// column j is -(j+1); a cmod of column k from source j is
	// j*Columns + k. The head cursor (written only by the consumer) and
	// the tail cursor (written by producers) live in separate cache
	// blocks — colocating them would ping-pong a block on every push/pop
	// pair, a false-sharing artifact no real runqueue has.
	const ringSize = 4096
	type queue struct {
		ring *workload.I32
		tail *workload.I32
		head *workload.I32
		lock *engine.Lock
		// host-side mirror (the simulated ring words mirror these)
		tasks []int32
		hd    int
	}
	queues := make([]*queue, w.cpus)
	for i := range queues {
		q := &queue{ring: workload.NewI32(alloc, "task-queues", ringSize)}
		alloc.AllocBlocks("task-queue-pad", 64)
		q.tail = workload.NewI32(alloc, "task-queue-cursors", 1)
		alloc.AllocBlocks("task-queue-pad", 64)
		q.head = workload.NewI32(alloc, "task-queue-cursors", 1)
		alloc.AllocBlocks("task-queue-pad", 64)
		q.lock = engine.NewLock(alloc, "task-queue-locks")
		alloc.AllocBlocks("task-queue-pad", 64)
		queues[i] = q
	}
	doneCount := workload.NewI32(alloc, "done-count", 1)

	push := func(p *engine.Proc, who int, task int32) {
		q := queues[who]
		q.lock.Acquire(p)
		slot := len(q.tasks) % ringSize
		q.ring.Set(p, slot, task)               // ring entry
		q.tail.Set(p, 0, int32(len(q.tasks)+1)) // tail cursor
		q.tasks = append(q.tasks, task)
		q.lock.Release(p)
	}
	pop := func(p *engine.Proc) (int32, bool) {
		id := int(p.ID())
		q := queues[id]
		// Fast check of the tail cursor before taking the lock (the
		// consumer's copy stays cached until a producer advances it).
		q.tail.Get(p, 0)
		if q.hd == len(q.tasks) {
			return 0, false
		}
		q.lock.Acquire(p)
		if q.hd == len(q.tasks) {
			q.lock.Release(p)
			return 0, false
		}
		task := q.ring.Get(p, q.hd%ringSize)
		q.head.Set(p, 0, int32(q.hd+1)) // consumer-private head cursor
		task = q.tasks[q.hd]
		q.hd++
		q.lock.Release(p)
		return task, true
	}

	// Seed: cdiv tasks for columns with no dependencies.
	for j, d := range indeg {
		if d == 0 {
			q := queues[w.owner(j)]
			q.tasks = append(q.tasks, int32(-(j + 1)))
		}
	}

	progs := make([]engine.Program, w.cpus)
	for cpu := 0; cpu < w.cpus; cpu++ {
		progs[cpu] = func(p *engine.Proc) {
			finish := func(j int) {
				// Column j is fully factored: hand its updates to the
				// owners of the target columns.
				for _, k := range targets[j] {
					push(p, w.owner(k), int32(j*cfg.Columns+k))
				}
				doneCount.Add(p, 0, 1)
			}
			for {
				p.Read(doneCount.Addr(0))
				if doneCount.Peek(0) >= int32(cfg.Columns) {
					return
				}
				task, ok := pop(p)
				if !ok {
					p.Compute(400 + p.Rand().Intn(400)) // idle backoff
					continue
				}
				if task < 0 {
					j := int(-task) - 1
					w.cdiv(p, data, colOff[j], heights[j])
					finish(j)
					continue
				}
				j := int(task) / cfg.Columns
				k := int(task) % cfg.Columns
				w.cmod(p, data, colOff[k], heights[k], colOff[j], heights[j])
				if deps.Add(p, k, -1) == 0 {
					w.cdiv(p, data, colOff[k], heights[k])
					finish(k)
				}
			}
		}
	}
	return progs, nil
}

// cdiv scales a column by its diagonal: a read-modify-write sweep over the
// column's data (load-store sequences by the owner).
func (w *Cholesky) cdiv(p *engine.Proc, data *workload.F64, off, h int) {
	diag := data.Get(p, off)
	if diag <= 0 {
		diag = 1
	}
	p.Compute(30) // sqrt
	inv := 1.0 / diag
	for i := 1; i < h; i++ {
		data.Update(p, off+i, func(v float64) float64 { return v * inv })
		p.Compute(4)
	}
}

// cmod applies one column update: target[i] -= src[i']·scale, reading the
// (completed, read-only) source column and read-modify-writing the
// owner's target column.
func (w *Cholesky) cmod(p *engine.Proc, data *workload.F64, tOff, tH, sOff, sH int) {
	n := tH
	if sH < n {
		n = sH
	}
	scale := data.Get(p, sOff)
	for i := 1; i < n; i++ {
		s := data.Get(p, sOff+i)
		data.Update(p, tOff+i, func(v float64) float64 { return v - s*scale*0.01 })
		p.Compute(4)
	}
}

// TotalWork returns the column count (for progress assertions).
func (w *Cholesky) TotalWork() int { return w.cfg.Columns }

// DataFootprint returns the column-data size in bytes for the config.
func DataFootprint(cfg Config) uint64 {
	heights, _ := structureFor(cfg, 1)
	total := 0
	for _, h := range heights {
		total += h
	}
	return uint64(total) * 8
}
