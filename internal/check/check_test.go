package check

import (
	"strings"
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// harness is a hand-built 4-node machine state: directory plus per-node
// cache hierarchies, with no engine attached, so tests can construct
// arbitrary (including illegal) global states directly.
type harness struct {
	layout  memory.Layout
	dir     *directory.Directory
	caches  []*cache.Hierarchy
	checker *Checker
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	layout, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(layout, nil)
	caches := make([]*cache.Hierarchy, 4)
	for i := range caches {
		h, err := cache.NewHierarchy(
			cache.Config{Size: 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
			cache.Config{Size: 4096, Assoc: 1, BlockSize: 16, AccessTime: 10})
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = h
	}
	return &harness{layout: layout, dir: dir, caches: caches,
		checker: New(layout, dir, caches)}
}

// expectViolation asserts CheckBlock reports the named invariant.
func (h *harness) expectViolation(t *testing.T, block memory.Addr, invariant string) *CoherenceViolation {
	t.Helper()
	err := h.checker.CheckBlock(block, 42)
	if err == nil {
		t.Fatalf("CheckBlock(%#x): no violation, want %q", block, invariant)
	}
	v, ok := err.(*CoherenceViolation)
	if !ok {
		t.Fatalf("CheckBlock(%#x): error type %T, want *CoherenceViolation", block, err)
	}
	if v.Invariant != invariant {
		t.Fatalf("CheckBlock(%#x): invariant %q, want %q (%v)", block, v.Invariant, invariant, v)
	}
	return v
}

func TestCleanStatesPass(t *testing.T) {
	h := newHarness(t)
	const block = memory.Addr(0x100)

	// Empty machine.
	if err := h.checker.CheckAll(0); err != nil {
		t.Fatalf("empty machine: %v", err)
	}

	// Two sharers, exact directory.
	h.caches[0].Fill(block, cache.Shared)
	h.caches[2].Fill(block, cache.Shared)
	e := h.dir.Entry(block)
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(2)
	if err := h.checker.CheckAll(0); err != nil {
		t.Fatalf("shared state: %v", err)
	}

	// One Modified owner under a Dirty home.
	const owned = memory.Addr(0x200)
	h.caches[1].Fill(owned, cache.Modified)
	oe := h.dir.Entry(owned)
	oe.State = directory.Dirty
	oe.Owner = 1
	if err := h.checker.CheckAll(0); err != nil {
		t.Fatalf("owned state: %v", err)
	}

	// The LS protocol's silent promotion: a Modified copy while the home
	// still says Load-Store (Excl) is legal.
	oe.State = directory.Excl
	if err := h.checker.CheckBlock(owned, 0); err != nil {
		t.Fatalf("silent promotion: %v", err)
	}

	// An LStemp copy under a Load-Store home.
	const ls = memory.Addr(0x300)
	h.caches[3].Fill(ls, cache.LStemp)
	le := h.dir.Entry(ls)
	le.State = directory.Excl
	le.Owner = 3
	if err := h.checker.CheckAll(0); err != nil {
		t.Fatalf("LStemp state: %v", err)
	}
}

func TestSWMRViolation(t *testing.T) {
	h := newHarness(t)
	const block = memory.Addr(0x100)
	h.caches[0].Fill(block, cache.Modified)
	h.caches[1].Fill(block, cache.Shared)
	v := h.expectViolation(t, block, "swmr")
	if v.Cycle != 42 {
		t.Errorf("cycle = %d, want 42", v.Cycle)
	}
}

func TestDirectoryExactnessViolations(t *testing.T) {
	h := newHarness(t)

	// Cached block with no directory entry at all.
	const orphan = memory.Addr(0x100)
	h.caches[0].Fill(orphan, cache.Shared)
	h.expectViolation(t, orphan, "directory-exactness")

	// Modified copy while the home thinks the block is Shared.
	const stale = memory.Addr(0x200)
	h.caches[1].Fill(stale, cache.Modified)
	e := h.dir.Entry(stale)
	e.State = directory.Shared
	e.Sharers.Add(1)
	h.expectViolation(t, stale, "directory-exactness")

	// LStemp copy the home never granted (home still Shared).
	const leak = memory.Addr(0x300)
	h.caches[2].Fill(leak, cache.LStemp)
	le := h.dir.Entry(leak)
	le.State = directory.Shared
	le.Sharers.Add(2)
	h.expectViolation(t, leak, "directory-exactness")

	// Shared copy whose presence bit is missing.
	const dropped = memory.Addr(0x400)
	h.caches[3].Fill(dropped, cache.Shared)
	de := h.dir.Entry(dropped)
	de.State = directory.Shared
	de.Sharers.Add(0)
	h.caches[0].Fill(dropped, cache.Shared)
	de.Sharers.Remove(3) // no-op: bit never set; cpu3 is the unlisted sharer
	h.expectViolation(t, dropped, "directory-exactness")
}

func TestHomeStateViolation(t *testing.T) {
	h := newHarness(t)
	const block = memory.Addr(0x100)
	e := h.dir.Entry(block)
	e.State = directory.Dirty
	e.Owner = memory.NoNode // structurally illegal: Dirty with no owner
	h.expectViolation(t, block, "home-state")
}

func TestGhostHolderViolation(t *testing.T) {
	h := newHarness(t)
	const block = memory.Addr(0x100)
	e := h.dir.Entry(block)
	e.State = directory.Shared
	e.Sharers.Add(1) // cpu1's cache is empty
	v := h.expectViolation(t, block, "directory-ghost")
	if !strings.Contains(v.Detail, "cpu 1") {
		t.Errorf("detail %q does not name the ghost holder", v.Detail)
	}
}

func TestViolationErrorRendering(t *testing.T) {
	h := newHarness(t)
	const block = memory.Addr(0x110)
	h.caches[0].Fill(block, cache.Modified)
	h.caches[1].Fill(block, cache.Shared)
	err := h.checker.CheckBlock(block, 7)
	if err == nil {
		t.Fatal("no violation")
	}
	msg := err.Error()
	for _, want := range []string{"coherence:", "swmr", "0x110", "cycle 7", "cpu0=M", "cpu1=S"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestCheckAllFindsDirectoryOnlyCorruption(t *testing.T) {
	// A corrupted entry for a block no cache holds is invisible to
	// touched-block checking from the caches' side; the sweep must still
	// find it via the directory walk.
	h := newHarness(t)
	e := h.dir.Entry(memory.Addr(0x500))
	e.State = directory.Shared // no sharers: structurally illegal
	err := h.checker.CheckAll(9)
	if err == nil {
		t.Fatal("CheckAll missed a directory-only corruption")
	}
	v, ok := err.(*CoherenceViolation)
	if !ok || v.Invariant != "home-state" {
		t.Fatalf("got %v, want home-state violation", err)
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
	}{{"", Off}, {"off", Off}, {"touched", Touched}, {"full", Full}}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("Level(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseLevel("paranoid"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
