// Package check implements the machine-wide coherence invariants of the
// simulated multiprocessor as a reusable checker, shared by the exhaustive
// model-check tests (internal/engine/modelcheck_test.go) and the engine's
// online checking mode (engine.Config.CheckLevel) so the two cannot drift.
//
// The invariants are the classic directory-protocol safety properties,
// extended for the paper's LS protocol (whose exclusive-on-read LStemp
// state is exactly where subtle coherence bugs hide):
//
//   - single-writer / multiple-reader (SWMR): an exclusive copy
//     (Modified or LStemp) is never co-resident with any other copy;
//   - home-state legality: every directory entry satisfies its structural
//     invariant (directory.Entry.CheckInvariant);
//   - directory exactness: the home's presence information matches the
//     caches exactly, including the state mapping — a Modified copy
//     requires a Dirty or Load-Store home entry owned by its holder (the
//     Excl case is the LS protocol's silent promotion), an LStemp copy
//     requires a Load-Store entry owned by its holder, and a Shared copy
//     requires a Shared entry listing its holder;
//   - no ghosts: the directory never claims a holder whose cache does not
//     have the block;
//   - inclusion: an L1 copy always has a compatible L2 copy behind it.
//
// A violation is reported as a *CoherenceViolation naming the invariant,
// the block, the cycle, and the full cache + directory state of the block,
// so a corruption is localized the moment it becomes observable instead of
// surfacing later as a cryptic engine panic or silently skewed results.
package check

import (
	"fmt"
	"strings"

	"lsnuma/internal/cache"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// Level selects how much online checking the engine performs.
type Level uint8

const (
	// Off disables online checking entirely (near-zero overhead: one nil
	// comparison per serviced operation).
	Off Level = iota
	// Touched validates every block an operation touches — the accessed
	// block(s) before the transaction and every block the transaction
	// modified (including replacement victims) after it.
	Touched
	// Full is Touched plus a whole-machine sweep every CheckInterval
	// serviced operations and once at the end of the run.
	Full
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Touched:
		return "touched"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// ParseLevel converts a level name ("off", "touched", "full"; "" means
// off) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "touched":
		return Touched, nil
	case "full":
		return Full, nil
	default:
		return Off, fmt.Errorf("check: unknown level %q (want off, touched, full)", s)
	}
}

// CoherenceViolation is a structured invariant failure: which invariant
// broke, on which block, at which cycle, and the complete cache and
// directory state of the block at the moment of detection.
type CoherenceViolation struct {
	// Invariant names the broken invariant: "swmr", "home-state",
	// "directory-exactness", "directory-ghost" or "inclusion".
	Invariant string
	// Block is the block-aligned address of the offending block.
	Block memory.Addr
	// Cycle is the issuing processor's clock when the violation was
	// detected (zero for post-run or test-driven checks).
	Cycle uint64
	// Detail describes what specifically disagreed.
	Detail string
	// State is the full snapshot: per-CPU cache states and the directory
	// entry of the block.
	State string
}

func (v *CoherenceViolation) Error() string {
	return fmt.Sprintf("coherence: %s invariant violated for block %#x at cycle %d: %s [%s]",
		v.Invariant, v.Block, v.Cycle, v.Detail, v.State)
}

// Checker validates the invariants over one machine's directory and cache
// hierarchies. All checks are side-effect free: probes never touch LRU
// state and missing directory entries are never created, so enabling the
// checker cannot perturb a simulation.
type Checker struct {
	layout memory.Layout
	dir    *directory.Directory
	caches []*cache.Hierarchy

	// scope, when non-zero, restricts cache probing to the named nodes:
	// out-of-scope hierarchies are neither probed nor expected (the ghost
	// check skips holders outside the scope). The parallel scheduler gives
	// each shard a scoped checker so concurrent per-shard checking never
	// reads another shard's LRU-mutating cache arrays; the merge pass at
	// epoch boundaries (and the end-of-run sweep) runs the full-scope
	// checker. A zero scope means all nodes.
	scope directory.Bitset
}

// New builds a checker over the given directory and per-node hierarchies
// (index = node ID).
func New(layout memory.Layout, dir *directory.Directory, caches []*cache.Hierarchy) *Checker {
	return &Checker{layout: layout, dir: dir, caches: caches}
}

// NewScoped builds a checker restricted to the nodes in scope (see the
// scope field). A zero scope behaves like New.
func NewScoped(layout memory.Layout, dir *directory.Directory, caches []*cache.Hierarchy, scope directory.Bitset) *Checker {
	return &Checker{layout: layout, dir: dir, caches: caches, scope: scope}
}

// inScope reports whether node i's cache may be probed by this checker.
func (c *Checker) inScope(i int) bool {
	return c.scope.Empty() || c.scope.Has(memory.NodeID(i))
}

// violation builds a fully described CoherenceViolation for block.
func (c *Checker) violation(invariant string, block memory.Addr, cycle uint64, format string, args ...any) *CoherenceViolation {
	return &CoherenceViolation{
		Invariant: invariant,
		Block:     c.layout.Block(block),
		Cycle:     cycle,
		Detail:    fmt.Sprintf(format, args...),
		State:     c.describe(block),
	}
}

// describe renders the complete cache + directory state of block.
func (c *Checker) describe(block memory.Addr) string {
	var b strings.Builder
	b.WriteString("caches:")
	any := false
	for i, h := range c.caches {
		if !c.inScope(i) {
			continue
		}
		s2 := h.State(block)
		l1 := h.L1().Probe(block)
		if s2 == cache.Invalid && l1 == cache.Invalid {
			continue
		}
		any = true
		fmt.Fprintf(&b, " cpu%d=%v", i, s2)
		if l1 != cache.Invalid {
			fmt.Fprintf(&b, "(L1=%v)", l1)
		}
	}
	if !any {
		b.WriteString(" none")
	}
	if e, ok := c.dir.Lookup(block); ok {
		fmt.Fprintf(&b, "; home: %v owner=%d sharers=%v LS=%v LR=%d",
			e.State, e.Owner, e.Sharers, e.LS, e.LR)
	} else {
		b.WriteString("; home: no entry")
	}
	return b.String()
}

// CheckBlock validates every invariant for the single block containing
// addr. It allocates nothing on the success path.
func (c *Checker) CheckBlock(addr memory.Addr, cycle uint64) error {
	block := c.layout.Block(addr)
	var copies, excl int
	for i, h := range c.caches {
		if !c.inScope(i) {
			continue
		}
		s2 := h.State(block)
		l1 := h.L1().Probe(block)
		if s2 == cache.Invalid {
			if l1 != cache.Invalid {
				return c.violation("inclusion", block, cycle,
					"cpu %d holds the block in L1 (%v) but not in L2", i, l1)
			}
			continue
		}
		if l1 != cache.Invalid && l1.Exclusive() && !s2.Exclusive() {
			return c.violation("inclusion", block, cycle,
				"cpu %d holds the block exclusive in L1 (%v) but %v in L2", i, l1, s2)
		}
		copies++
		if s2.Exclusive() {
			excl++
		}
	}
	if excl > 0 && copies > 1 {
		return c.violation("swmr", block, cycle,
			"%d copies co-resident with %d exclusive", copies, excl)
	}

	e, ok := c.dir.Lookup(block)
	if !ok {
		if copies > 0 {
			return c.violation("directory-exactness", block, cycle,
				"block cached by %d cpus but the directory has no entry", copies)
		}
		return nil
	}
	if err := e.CheckInvariant(); err != nil {
		return c.violation("home-state", block, cycle, "%v", err)
	}
	for i, h := range c.caches {
		if !c.inScope(i) {
			continue
		}
		n := memory.NodeID(i)
		switch h.State(block) {
		case cache.Modified:
			if (e.State != directory.Dirty && e.State != directory.Excl) || e.Owner != n {
				return c.violation("directory-exactness", block, cycle,
					"cpu %d holds Modified but home is %v with owner %d", i, e.State, e.Owner)
			}
		case cache.LStemp:
			if e.State != directory.Excl || e.Owner != n {
				return c.violation("directory-exactness", block, cycle,
					"cpu %d holds LStemp but home is %v with owner %d", i, e.State, e.Owner)
			}
		case cache.Shared:
			if e.State != directory.Shared || !e.Sharers.Has(n) {
				return c.violation("directory-exactness", block, cycle,
					"cpu %d holds Shared but home is %v with sharers %v", i, e.State, e.Sharers)
			}
		}
	}
	var ghost memory.NodeID = memory.NoNode
	e.Holders().ForEach(func(n memory.NodeID) {
		if !c.inScope(int(n)) {
			return
		}
		if c.caches[n].State(block) == cache.Invalid && ghost == memory.NoNode {
			ghost = n
		}
	})
	if ghost != memory.NoNode {
		return c.violation("directory-ghost", block, cycle,
			"directory claims cpu %d holds the block but its cache is invalid", ghost)
	}
	return nil
}

// CheckAll sweeps the whole machine: every resident cache block, every
// hierarchy's inclusion property, and every directory entry.
func (c *Checker) CheckAll(cycle uint64) error {
	for i, h := range c.caches {
		if err := h.CheckInclusion(); err != nil {
			return &CoherenceViolation{
				Invariant: "inclusion",
				Cycle:     cycle,
				Detail:    fmt.Sprintf("cpu %d: %v", i, err),
				State:     "(hierarchy-wide)",
			}
		}
		for _, ln := range h.L2().Resident() {
			if err := c.CheckBlock(ln.Block, cycle); err != nil {
				return err
			}
		}
	}
	var err error
	c.dir.ForEach(func(idx uint64, _ *directory.Entry) {
		if err != nil {
			return
		}
		err = c.CheckBlock(memory.Addr(idx*c.layout.BlockSize), cycle)
	})
	return err
}
