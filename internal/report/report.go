// Package report renders the paper's figures and tables as text: the
// three-panel behaviour figures (execution time, traffic, global read
// misses — Figures 3, 4, 6, 7), the invalidation-traffic figure
// (Figure 5), and Tables 2-4.
//
// All figure quantities are normalized to the Baseline protocol = 100, as
// in the paper.
package report

import (
	"fmt"
	"sort"
	"strings"

	"lsnuma"
)

// barWidth is the character width of the normalized bars.
const barWidth = 40

// segment glyphs for the stacked bars, one per component.
var glyphs = []rune{'█', '▒', '░', '·'}

// normBar renders one stacked horizontal bar. values are in normalized
// units where 100 = the full barWidth.
func normBar(label string, total float64, parts []float64, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s %6.1f |", label, total)
	drawn := 0
	for i, v := range parts {
		n := int(v / 100 * barWidth)
		if n < 0 {
			n = 0
		}
		b.WriteString(strings.Repeat(string(glyphs[i%len(glyphs)]), n))
		drawn += n
	}
	if drawn > barWidth {
		drawn = barWidth
	}
	b.WriteString(strings.Repeat(" ", maxInt(0, barWidth+4-drawn)))
	for i, v := range parts {
		fmt.Fprintf(&b, " %s %.1f", names[i], v)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ordered returns results in the paper's presentation order.
func ordered(res map[lsnuma.Protocol]*lsnuma.Result) []*lsnuma.Result {
	var out []*lsnuma.Result
	for _, p := range lsnuma.Protocols() {
		if r, ok := res[p]; ok {
			out = append(out, r)
		}
	}
	return out
}

// BehaviorFigure renders the three-panel behaviour figure for one
// workload (the paper's Figures 3/4/6/7): normalized execution time split
// into busy / read stall / write stall, normalized traffic split into the
// three message categories, and normalized global read misses split by
// home-state class.
func BehaviorFigure(title string, res map[lsnuma.Protocol]*lsnuma.Result) string {
	rs := ordered(res)
	if len(rs) == 0 {
		return "(no results)"
	}
	base := res[lsnuma.Baseline]
	if base == nil {
		base = rs[0]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", title)

	// Panel 1: execution time.
	fmt.Fprintf(&b, "\nNormalized execution time (Baseline = 100)\n")
	baseExec := float64(base.ExecTime)
	for _, r := range rs {
		scale := 100 / baseExec
		cpuTotal := float64(r.Busy + r.ReadStall + r.WriteStall)
		// Decompose the machine exec time proportionally to the summed
		// per-CPU cycle categories.
		f := float64(r.ExecTime) / cpuTotal
		parts := []float64{
			float64(r.Busy) * f * scale,
			float64(r.ReadStall) * f * scale,
			float64(r.WriteStall) * f * scale,
		}
		b.WriteString(normBar(r.Protocol, float64(r.ExecTime)*scale, parts,
			[]string{"busy", "read-stall", "write-stall"}) + "\n")
	}

	// Panel 2: traffic (messages).
	fmt.Fprintf(&b, "\nNormalized amount of messages (Baseline = 100)\n")
	baseMsgs := float64(base.Msgs)
	for _, r := range rs {
		scale := 100 / baseMsgs
		parts := []float64{
			float64(r.ClassMsgs[0]) * scale,
			float64(r.ClassMsgs[1]) * scale,
			float64(r.ClassMsgs[2]) * scale,
		}
		b.WriteString(normBar(r.Protocol, float64(r.Msgs)*scale, parts,
			[]string{"read", "write", "other"}) + "\n")
	}

	// Panel 3: global read misses.
	fmt.Fprintf(&b, "\nNormalized global read misses (Baseline = 100)\n")
	baseMisses := float64(base.GlobalReadMisses())
	for _, r := range rs {
		scale := 100 / baseMisses
		parts := []float64{
			float64(r.ReadMisses[0]) * scale,
			float64(r.ReadMisses[1]) * scale,
			float64(r.ReadMisses[2]) * scale,
			float64(r.ReadMisses[3]) * scale,
		}
		b.WriteString(normBar(r.Protocol, float64(r.GlobalReadMisses())*scale, parts,
			[]string{"clean", "dirty", "clean-excl", "dirty-excl"}) + "\n")
	}
	return b.String()
}

// InvalidationFigure renders Figure 5: normalized invalidation traffic
// (ownership acquisitions vs individual invalidations) for a set of runs
// at different processor counts, normalized to the Baseline run at each
// count.
func InvalidationFigure(title string, byProcs map[int]map[lsnuma.Protocol]*lsnuma.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", title)
	var counts []int
	for n := range byProcs {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		res := byProcs[n]
		base := res[lsnuma.Baseline]
		if base == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%d processors (Baseline = 100; global inv's + invalidations)\n", n)
		baseTotal := float64(base.GlobalInv + base.Invalidations)
		for _, r := range ordered(res) {
			scale := 100 / baseTotal
			parts := []float64{
				float64(r.GlobalInv) * scale,
				float64(r.Invalidations) * scale,
			}
			total := float64(r.GlobalInv+r.Invalidations) * scale
			b.WriteString(normBar(fmt.Sprintf("%s-%d", r.Protocol, n), total, parts,
				[]string{"global-inv", "invalidations"}) + "\n")
		}
	}
	return b.String()
}

// Table2 renders the occurrence of load-store sequences and migratory
// behaviour per source class (the paper's Table 2). The run should be a
// Baseline OLTP run so the stream is unperturbed by the optimizations.
func Table2(r *lsnuma.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Occurrence of load-store sequences and migratory behavior (%s)\n", r.Workload)
	fmt.Fprintf(&b, "%-40s %8s %9s %6s %7s\n", "Fraction of accesses", "MySQL", "Libraries", "OS", "Total")
	fmt.Fprintf(&b, "%-40s %7.1f%% %8.1f%% %5.1f%% %6.1f%%\n",
		"load-store of all global write actions",
		100*r.Sources[0].LoadStoreFrac, 100*r.Sources[1].LoadStoreFrac,
		100*r.Sources[2].LoadStoreFrac, 100*r.Total.LoadStoreFrac)
	fmt.Fprintf(&b, "%-40s %7.1f%% %8.1f%% %5.1f%% %6.1f%%\n",
		"migratory of load-store sequences",
		100*r.Sources[0].MigratoryFrac, 100*r.Sources[1].MigratoryFrac,
		100*r.Sources[2].MigratoryFrac, 100*r.Total.MigratoryFrac)
	return b.String()
}

// Table3 renders the coverage table (the paper's Table 3): the fraction
// of load-store and migratory global writes each technique removed.
func Table3(ls, ad *lsnuma.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Coverage of LS and AD for load-store and migratory sequences (%s)\n", ls.Workload)
	fmt.Fprintf(&b, "%-10s %11s %10s\n", "Technique", "Load-Store", "Migratory")
	fmt.Fprintf(&b, "%-10s %10.1f%% %9.1f%%\n", "LS",
		100*ls.Coverage.LoadStoreCoverage, 100*ls.Coverage.MigratoryCoverage)
	fmt.Fprintf(&b, "%-10s %10.1f%% %9.1f%%\n", "AD",
		100*ad.Coverage.LoadStoreCoverage, 100*ad.Coverage.MigratoryCoverage)
	return b.String()
}

// Table4 renders the false-sharing table (the paper's Table 4): the
// fraction of data misses due to false sharing per block size.
func Table4(byBlock map[uint64]*lsnuma.Result) string {
	var sizes []int
	for s := range byBlock {
		sizes = append(sizes, int(s))
	}
	sort.Ints(sizes)
	var b strings.Builder
	b.WriteString("Table 4: Impact of cache block size on the fraction of false-sharing misses\n")
	b.WriteString("Block size (Bytes)      ")
	for _, s := range sizes {
		fmt.Fprintf(&b, "%7d", s)
	}
	b.WriteString("\nFalse sharing (steady)  ")
	for _, s := range sizes {
		fmt.Fprintf(&b, " %5.1f%%", 100*byBlock[uint64(s)].FalseSharingSteadyFrac)
	}
	b.WriteString("\nFalse sharing (all)     ")
	for _, s := range sizes {
		fmt.Fprintf(&b, " %5.1f%%", 100*byBlock[uint64(s)].FalseSharingFrac)
	}
	b.WriteString("\n")
	return b.String()
}

// Summary renders a one-line summary of a result for logs and sweeps.
func Summary(r *lsnuma.Result) string {
	return fmt.Sprintf("%-9s %-9s exec=%d busy=%d rstall=%d wstall=%d msgs=%d bytes=%d gInv=%d wMiss=%d inv=%d elim=%d",
		r.Workload, r.Protocol, r.ExecTime, r.Busy, r.ReadStall, r.WriteStall,
		r.Msgs, r.Bytes, r.GlobalInv, r.GlobalWriteMisses, r.Invalidations, r.EliminatedOwnership)
}

// Resilience renders a one-line summary of the resilient transaction
// layer's activity, or "" when the run saw no NACKs, retries or injected
// message faults (the classic reliable model).
func Resilience(r *lsnuma.Result) string {
	rs := &r.Resil
	if rs.Nacks == 0 && rs.Retries == 0 &&
		rs.DroppedMsgs == 0 && rs.DupMsgs == 0 && rs.ReorderedMsgs == 0 {
		return ""
	}
	return fmt.Sprintf("resilience: nacks=%d retries=%d (mean %.4f/txn, max %d) resends=%d backoff=%d/%d dropped=%d dup=%d reordered=%d",
		rs.Nacks, rs.Retries, rs.MeanRetries, rs.MaxRetries, rs.TimeoutResends,
		rs.BackoffCycles, rs.MaxBackoff, rs.DroppedMsgs, rs.DupMsgs, rs.ReorderedMsgs)
}
