package report

import (
	"fmt"
	"strings"

	"lsnuma"
)

// SweepCell renders one sweep grid point exactly as cmd/lssweep prints
// it: the point label, one summary line per protocol (FAILED lines with
// their diagnostic bundle for holes), the resilience line when the
// resilient transaction layer saw traffic, and the normalized
// comparison line for the non-baseline protocols. It returns the text
// (newline-terminated) and the number of failed cells.
//
// This is the single definition of the sweep row format: lssweep prints
// it to stdout and the lsnumad daemon streams it in each cell record's
// "text" field, which is what makes the daemon's warm-cache streams
// byte-identical to the equivalent lssweep invocation — an equivalence
// the load harness asserts.
func SweepCell(pt lsnuma.SweepResult) (string, int) {
	var b strings.Builder
	failed := 0
	base := pt.Results[lsnuma.Baseline]
	fmt.Fprintf(&b, "%s:\n", pt.Label)
	for _, p := range lsnuma.Protocols() {
		r := pt.Results[p]
		if r == nil {
			failed++
			fmt.Fprintf(&b, "  %s: FAILED: %v\n", p, pt.Errs[p])
			b.WriteString(ReproText(pt.Repros[p], "    "))
			continue
		}
		fmt.Fprintf(&b, "  %s\n", Summary(r))
		if line := Resilience(r); line != "" {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		if p != lsnuma.Baseline && base != nil && base.ExecTime > 0 {
			fmt.Fprintf(&b, "    normalized: exec=%.1f traffic-bytes=%.1f traffic-msgs=%.1f read-misses=%.1f\n",
				100*float64(r.ExecTime)/float64(base.ExecTime),
				100*float64(r.Bytes)/float64(base.Bytes),
				100*float64(r.Msgs)/float64(base.Msgs),
				100*float64(r.GlobalReadMisses())/float64(base.GlobalReadMisses()))
		}
	}
	return b.String(), failed
}

// ReproText renders a failed cell's diagnostic bundle — the watchdog
// diagnosis, the checks-on retry outcome, the tail of the operation
// ring and a note about any captured panic stack — one line per piece,
// each prefixed with indent. Nil bundles render as "".
func ReproText(b *lsnuma.ReproBundle, indent string) string {
	if b == nil {
		return ""
	}
	var sb strings.Builder
	if b.Diagnosis != "" {
		for _, line := range strings.Split(b.Diagnosis, "\n") {
			fmt.Fprintf(&sb, "%s%s\n", indent, line)
		}
	}
	if b.Retry != "" {
		fmt.Fprintf(&sb, "%s%s\n", indent, b.Retry)
	}
	if n := len(b.LastOps); n > 0 {
		show := b.LastOps
		if n > 8 {
			show = show[n-8:]
		}
		fmt.Fprintf(&sb, "%slast ops before failure:", indent)
		for _, o := range show {
			fmt.Fprintf(&sb, " [%s]", o)
		}
		sb.WriteString("\n")
	}
	if b.Stack != "" {
		fmt.Fprintf(&sb, "%spanic stack captured (%d bytes); re-run the cell with lssim for the full trace\n", indent, len(b.Stack))
	}
	return sb.String()
}
