package report

import (
	"strings"
	"testing"

	"lsnuma"
)

func fakeResults() map[lsnuma.Protocol]*lsnuma.Result {
	mk := func(proto string, exec, busy, rs, ws, msgs uint64) *lsnuma.Result {
		r := &lsnuma.Result{
			Workload: "fake", Protocol: proto,
			ExecTime: exec, Busy: busy, ReadStall: rs, WriteStall: ws,
			Msgs: msgs,
		}
		r.ClassMsgs = [3]uint64{msgs / 2, msgs / 4, msgs - msgs/2 - msgs/4}
		r.ReadMisses = [4]uint64{10, 5, 1, 2}
		r.GlobalInv = 100
		r.Invalidations = 60
		return r
	}
	return map[lsnuma.Protocol]*lsnuma.Result{
		lsnuma.Baseline: mk("Baseline", 1000, 300, 400, 300, 4000),
		lsnuma.AD:       mk("AD", 830, 300, 400, 130, 3300),
		lsnuma.LS:       mk("LS", 770, 300, 410, 60, 3000),
	}
}

func TestBehaviorFigureContents(t *testing.T) {
	out := BehaviorFigure("Figure X", fakeResults())
	for _, want := range []string{
		"Figure X",
		"Normalized execution time",
		"Normalized amount of messages",
		"Normalized global read misses",
		"Baseline", "AD", "LS",
		"busy", "read-stall", "write-stall",
		"clean", "dirty-excl",
		"100.0", // baseline normalization
		"83.0",  // AD exec
		"77.0",  // LS exec
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestBehaviorFigureEmpty(t *testing.T) {
	if out := BehaviorFigure("x", nil); !strings.Contains(out, "no results") {
		t.Errorf("empty figure = %q", out)
	}
}

func TestBehaviorFigureWithoutBaseline(t *testing.T) {
	res := fakeResults()
	delete(res, lsnuma.Baseline)
	out := BehaviorFigure("x", res)
	// Normalizes against the first protocol present instead of crashing.
	if !strings.Contains(out, "AD") || !strings.Contains(out, "LS") {
		t.Errorf("figure without baseline = %q", out)
	}
}

func TestInvalidationFigure(t *testing.T) {
	byProcs := map[int]map[lsnuma.Protocol]*lsnuma.Result{
		4:  fakeResults(),
		16: fakeResults(),
	}
	out := InvalidationFigure("Figure 5", byProcs)
	for _, want := range []string{"4 processors", "16 processors", "global-inv", "invalidations", "Baseline-4", "LS-16"} {
		if !strings.Contains(out, want) {
			t.Errorf("invalidation figure missing %q:\n%s", want, out)
		}
	}
	// Processor counts must appear in ascending order.
	if strings.Index(out, "4 processors") > strings.Index(out, "16 processors") {
		t.Error("processor counts not sorted")
	}
}

func TestTable2(t *testing.T) {
	r := &lsnuma.Result{Workload: "oltp"}
	r.Sources[0] = lsnuma.SourceRow{LoadStoreFrac: 0.304, MigratoryFrac: 0.429}
	r.Sources[1] = lsnuma.SourceRow{LoadStoreFrac: 0.256, MigratoryFrac: 0.474}
	r.Sources[2] = lsnuma.SourceRow{LoadStoreFrac: 0.476, MigratoryFrac: 0.511}
	r.Total = lsnuma.SourceRow{LoadStoreFrac: 0.42, MigratoryFrac: 0.471}
	out := Table2(r)
	for _, want := range []string{"Table 2", "MySQL", "Libraries", "OS", "Total", "30.4%", "47.4%", "42.0%", "51.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	ls := &lsnuma.Result{Workload: "oltp", Coverage: lsnuma.CoverageRow{LoadStoreCoverage: 0.576, MigratoryCoverage: 1.0}}
	ad := &lsnuma.Result{Workload: "oltp", Coverage: lsnuma.CoverageRow{LoadStoreCoverage: 0.317, MigratoryCoverage: 0.476}}
	out := Table3(ls, ad)
	for _, want := range []string{"Table 3", "LS", "AD", "57.6%", "100.0%", "31.7%", "47.6%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4SortedAndFormatted(t *testing.T) {
	byBlock := map[uint64]*lsnuma.Result{
		64:  {FalseSharingSteadyFrac: 0.379, FalseSharingFrac: 0.1},
		16:  {FalseSharingSteadyFrac: 0.199, FalseSharingFrac: 0.05},
		256: {FalseSharingSteadyFrac: 0.485, FalseSharingFrac: 0.2},
	}
	out := Table4(byBlock)
	for _, want := range []string{"Table 4", "19.9%", "37.9%", "48.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "16") > strings.Index(out, "256") {
		t.Error("block sizes not sorted")
	}
}

func TestSummaryOneLine(t *testing.T) {
	r := &lsnuma.Result{Workload: "mp3d", Protocol: "LS", ExecTime: 42}
	out := Summary(r)
	if strings.Contains(out, "\n") {
		t.Error("Summary spans multiple lines")
	}
	for _, want := range []string{"mp3d", "LS", "exec=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q: %s", want, out)
		}
	}
}
