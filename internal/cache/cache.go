// Package cache models the per-node cache hierarchy of the simulated
// multiprocessor: set-associative, write-back, write-allocate caches with
// LRU replacement, arranged as a two-level inclusive hierarchy (L1 backed
// by L2), as in the paper's architectural model (Section 4.2, Table 1).
//
// Coherence states follow the baseline DASH-like write-invalidate protocol
// with the addition of LStemp, the temporary exclusive-clean state used by
// the LS protocol extension (Section 3.1): a block granted exclusively on a
// read stays in LStemp until the predicted store arrives (then Modified,
// silently), a foreign access de-tags it, or it is replaced.
package cache

import (
	"fmt"
	"math/bits"

	"lsnuma/internal/memory"
)

// State is the coherence state of a block in a cache.
type State uint8

const (
	// Invalid marks a block not present (or invalidated).
	Invalid State = iota
	// Shared marks a read-only copy; other caches may also hold it.
	Shared
	// Modified marks the only copy, dirty with respect to memory.
	Modified
	// LStemp marks an exclusive clean copy granted on a read of an
	// LS-tagged (or migratory) block, awaiting the predicted store.
	LStemp
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	case LStemp:
		return "LStemp"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Exclusive reports whether the state implies this cache holds the only
// valid copy among caches.
func (s State) Exclusive() bool { return s == Modified || s == LStemp }

// Config describes one cache level.
type Config struct {
	Size       uint64 // total capacity in bytes
	Assoc      int    // associativity (1 = direct mapped)
	BlockSize  uint64 // line size in bytes
	AccessTime int    // hit latency in cycles
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.BlockSize == 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockSize)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity %d < 1", c.Assoc)
	}
	if c.Size == 0 || c.Size%(c.BlockSize*uint64(c.Assoc)) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block size %d × assoc %d",
			c.Size, c.BlockSize, c.Assoc)
	}
	sets := c.Size / (c.BlockSize * uint64(c.Assoc))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.AccessTime < 0 {
		return fmt.Errorf("cache: negative access time %d", c.AccessTime)
	}
	return nil
}

type line struct {
	block memory.Addr // block-aligned address; valid only if state != Invalid
	state State
	lru   uint64
}

// Cache is one set-associative cache level. Lines of all sets live in one
// contiguous array indexed by set*assoc+way; set selection is two shifts
// and a mask (block size and set count are powers of two), keeping the
// per-access lookup free of hardware divides and pointer chasing.
type Cache struct {
	cfg        Config
	numSets    uint64
	blockShift uint // log2(cfg.BlockSize)
	assoc      uint64
	lines      []line
	clock      uint64
}

// New builds a cache from cfg. It panics on an invalid configuration;
// validate with cfg.Validate first when the parameters come from input.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.BlockSize * uint64(cfg.Assoc))
	return &Cache{
		cfg:        cfg,
		numSets:    sets,
		blockShift: uint(bits.TrailingZeros64(cfg.BlockSize)),
		assoc:      uint64(cfg.Assoc),
		lines:      make([]line, sets*uint64(cfg.Assoc)),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(block memory.Addr) []line {
	idx := (uint64(block) >> c.blockShift) & (c.numSets - 1)
	base := idx * c.assoc
	return c.lines[base : base+c.assoc]
}

// Reset returns the cache to its freshly constructed state — all lines
// invalid and the LRU clock at zero — reusing the line array. A Reset
// cache behaves bit-identically to a new one (the clock restart matters:
// LRU decisions compare clock values).
func (c *Cache) Reset() {
	clear(c.lines)
	c.clock = 0
}

// Lookup returns the state of block, touching LRU on hit. Invalid means
// miss.
func (c *Cache) Lookup(block memory.Addr) State {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && set[i].block == block {
			c.clock++
			set[i].lru = c.clock
			return set[i].state
		}
	}
	return Invalid
}

// Probe returns the state of block without disturbing LRU order.
func (c *Cache) Probe(block memory.Addr) State {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && set[i].block == block {
			return set[i].state
		}
	}
	return Invalid
}

// SetState changes the state of a resident block and reports whether the
// block was present. Setting Invalid is equivalent to Invalidate.
func (c *Cache) SetState(block memory.Addr, s State) bool {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && set[i].block == block {
			set[i].state = s
			return true
		}
	}
	return false
}

// Invalidate removes block and returns its previous state (Invalid if it
// was not present).
func (c *Cache) Invalidate(block memory.Addr) State {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && set[i].block == block {
			old := set[i].state
			set[i].state = Invalid
			return old
		}
	}
	return Invalid
}

// Victim describes a block evicted by Insert.
type Victim struct {
	Block memory.Addr
	State State
}

// Insert places block with the given state, evicting the LRU line of the
// set if needed. It panics if the block is already present (callers must
// use SetState for state changes) or if state is Invalid.
func (c *Cache) Insert(block memory.Addr, s State) (Victim, bool) {
	if s == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set := c.set(block)
	var free *line
	var lru *line
	for i := range set {
		ln := &set[i]
		if ln.state != Invalid && ln.block == block {
			panic(fmt.Sprintf("cache: Insert of resident block %#x", block))
		}
		if ln.state == Invalid {
			if free == nil {
				free = ln
			}
			continue
		}
		if lru == nil || ln.lru < lru.lru {
			lru = ln
		}
	}
	c.clock++
	if free != nil {
		*free = line{block: block, state: s, lru: c.clock}
		return Victim{}, false
	}
	v := Victim{Block: lru.block, State: lru.state}
	*lru = line{block: block, state: s, lru: c.clock}
	return v, true
}

// SetBlocks calls yield for every resident line of the set that block
// maps to, without touching LRU state, and reports whether the walk ran
// to completion (yield returning false stops it early). The parallel
// scheduler uses it to bound the replacement traffic a miss could
// generate: any victim of a fill of block is one of these lines.
func (c *Cache) SetBlocks(block memory.Addr, yield func(memory.Addr) bool) bool {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && !yield(set[i].block) {
			return false
		}
	}
	return true
}

// Resident returns the blocks currently cached, in no particular order.
// Intended for tests and invariant checks.
func (c *Cache) Resident() []Victim {
	var out []Victim
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			out = append(out, Victim{Block: c.lines[i].block, State: c.lines[i].state})
		}
	}
	return out
}

// Flush invalidates every line. Dirty contents are discarded; callers that
// need writebacks should walk Resident first.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i].state = Invalid
	}
}
