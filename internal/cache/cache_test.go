package cache

import (
	"testing"
	"testing/quick"

	"lsnuma/internal/memory"
)

func cfg(size uint64, assoc int, block uint64) Config {
	return Config{Size: size, Assoc: assoc, BlockSize: block, AccessTime: 1}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		c  Config
		ok bool
	}{
		{cfg(4096, 1, 16), true},
		{cfg(4096, 2, 16), true},
		{cfg(64*1024, 1, 16), true},
		{cfg(4096, 0, 16), false},
		{cfg(4096, 1, 24), false},
		{cfg(4000, 1, 16), false},
		{cfg(0, 1, 16), false},
		{cfg(48, 3, 16), true},   // 1 set, 3-way
		{cfg(80, 3, 16), false},  // not divisible by block×assoc
		{cfg(144, 3, 16), false}, // 3 sets, not a power of two
		{Config{Size: 4096, Assoc: 1, BlockSize: 16, AccessTime: -1}, false},
	}
	for i, c := range cases {
		if err := c.c.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := New(cfg(256, 2, 16)) // 8 sets, 2-way
	if s := c.Lookup(0x100); s != Invalid {
		t.Fatalf("empty cache Lookup = %v", s)
	}
	if _, ev := c.Insert(0x100, Shared); ev {
		t.Fatal("unexpected eviction in empty cache")
	}
	if s := c.Lookup(0x100); s != Shared {
		t.Fatalf("Lookup after insert = %v", s)
	}
	if s := c.Probe(0x100); s != Shared {
		t.Fatalf("Probe = %v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(cfg(32, 2, 16)) // 1 set, 2-way
	c.Insert(0x000, Shared)
	c.Insert(0x010, Shared)
	c.Lookup(0x000) // touch block 0 → block 0x010 becomes LRU
	v, ev := c.Insert(0x020, Shared)
	if !ev || v.Block != 0x010 {
		t.Fatalf("eviction = %+v, %v; want block 0x010", v, ev)
	}
	if c.Probe(0x000) != Shared || c.Probe(0x020) != Shared {
		t.Fatal("survivors wrong")
	}
}

func TestVictimStatePreserved(t *testing.T) {
	c := New(cfg(16, 1, 16)) // 1 set, direct mapped
	c.Insert(0x000, Modified)
	v, ev := c.Insert(0x100, Shared)
	if !ev || v.State != Modified || v.Block != 0 {
		t.Fatalf("victim = %+v, %v", v, ev)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(cfg(64, 1, 16)) // 4 sets
	// 0x000 and 0x040 map to the same set; 0x010 does not.
	c.Insert(0x000, Shared)
	c.Insert(0x010, Shared)
	v, ev := c.Insert(0x040, Shared)
	if !ev || v.Block != 0x000 {
		t.Fatalf("conflict victim = %+v, %v", v, ev)
	}
	if c.Probe(0x010) != Shared {
		t.Fatal("non-conflicting block evicted")
	}
}

func TestSetStateInvalidate(t *testing.T) {
	c := New(cfg(64, 2, 16))
	c.Insert(0x20, Shared)
	if !c.SetState(0x20, Modified) {
		t.Fatal("SetState on resident failed")
	}
	if c.Probe(0x20) != Modified {
		t.Fatal("state not updated")
	}
	if c.SetState(0x30, Shared) {
		t.Fatal("SetState on absent succeeded")
	}
	if old := c.Invalidate(0x20); old != Modified {
		t.Fatalf("Invalidate returned %v", old)
	}
	if c.Probe(0x20) != Invalid {
		t.Fatal("block still resident after invalidate")
	}
	if old := c.Invalidate(0x20); old != Invalid {
		t.Fatalf("double Invalidate returned %v", old)
	}
}

func TestInsertResidentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of resident block did not panic")
		}
	}()
	c := New(cfg(64, 2, 16))
	c.Insert(0x20, Shared)
	c.Insert(0x20, Modified)
}

func TestFlushAndResident(t *testing.T) {
	c := New(cfg(128, 2, 16))
	c.Insert(0x00, Shared)
	c.Insert(0x10, Modified)
	if got := len(c.Resident()); got != 2 {
		t.Fatalf("Resident = %d entries", got)
	}
	c.Flush()
	if got := len(c.Resident()); got != 0 {
		t.Fatalf("Resident after flush = %d entries", got)
	}
}

// TestCacheNeverExceedsCapacity drives random insert/invalidate traffic and
// checks structural invariants: residency never exceeds capacity, each set
// holds at most assoc blocks, and a block is never resident twice.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(cfg(256, 2, 16)) // 16 lines
		for _, op := range ops {
			block := memory.Addr(op&0x3ff) &^ 15
			switch {
			case op&0x8000 != 0:
				c.Invalidate(block)
			default:
				if c.Probe(block) == Invalid {
					c.Insert(block, Shared)
				}
			}
		}
		res := c.Resident()
		if len(res) > 16 {
			return false
		}
		seen := make(map[memory.Addr]bool)
		for _, v := range res {
			if seen[v.Block] {
				return false
			}
			seen[v.Block] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStateHelpers(t *testing.T) {
	if !Modified.Exclusive() || !LStemp.Exclusive() {
		t.Error("Modified/LStemp should be exclusive")
	}
	if Shared.Exclusive() || Invalid.Exclusive() {
		t.Error("Shared/Invalid should not be exclusive")
	}
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Modified: "M", LStemp: "LStemp"} {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(s), s.String(), want)
		}
	}
}
