package cache

import (
	"fmt"

	"lsnuma/internal/memory"
)

// GlobalAction classifies what global coherence action, if any, an access
// needs after consulting the local hierarchy.
type GlobalAction uint8

const (
	// NoGlobal means the access completes locally.
	NoGlobal GlobalAction = iota
	// GlobalRead means a read miss requiring a read request to the home.
	GlobalRead
	// GlobalUpgrade means a write hit on a Shared copy requiring an
	// ownership acquisition (the copy stays valid while upgrading).
	GlobalUpgrade
	// GlobalWriteMiss means a write miss requiring a read-exclusive
	// request to the home.
	GlobalWriteMiss
)

func (g GlobalAction) String() string {
	switch g {
	case NoGlobal:
		return "none"
	case GlobalRead:
		return "read"
	case GlobalUpgrade:
		return "upgrade"
	case GlobalWriteMiss:
		return "write-miss"
	default:
		return fmt.Sprintf("GlobalAction(%d)", uint8(g))
	}
}

// AccessResult reports how the hierarchy handled a local access attempt.
type AccessResult struct {
	Action  GlobalAction
	State   State // effective (L2) state before the access
	HitL1   bool
	HitL2   bool
	Latency int // local latency charged so far (L1 probe, L2 probe/refill)
	// LSWrite is set when a store was satisfied locally by promoting an
	// LStemp copy to Modified: the ownership acquisition the LS (or
	// migratory) optimization eliminated.
	LSWrite bool
}

// Hierarchy is a two-level inclusive cache hierarchy for one node. The L2
// holds the authoritative coherence state; the L1 mirrors a subset of it.
type Hierarchy struct {
	l1, l2 *Cache
}

// NewHierarchy builds the hierarchy. Both levels must share a block size,
// and L1 must not be larger than L2 (inclusion).
func NewHierarchy(l1cfg, l2cfg Config) (*Hierarchy, error) {
	if err := l1cfg.Validate(); err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	if err := l2cfg.Validate(); err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if l1cfg.BlockSize != l2cfg.BlockSize {
		return nil, fmt.Errorf("cache: L1 block size %d != L2 block size %d",
			l1cfg.BlockSize, l2cfg.BlockSize)
	}
	if l1cfg.Size > l2cfg.Size {
		return nil, fmt.Errorf("cache: L1 size %d exceeds L2 size %d (inclusion)",
			l1cfg.Size, l2cfg.Size)
	}
	return &Hierarchy{l1: New(l1cfg), l2: New(l2cfg)}, nil
}

// Reset empties both levels and restarts their LRU clocks, reusing the
// line arrays. A Reset hierarchy behaves bit-identically to a new one.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
}

// L1 returns the first-level cache (for inspection in tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the second-level cache (for inspection in tests).
func (h *Hierarchy) L2() *Cache { return h.l2 }

func (h *Hierarchy) l1Time() int { return h.l1.cfg.AccessTime }
func (h *Hierarchy) l2Time() int { return h.l2.cfg.AccessTime }

// Access attempts to satisfy a load or store locally. It updates cache
// state for everything that can be decided locally (L1 refills from L2,
// LStemp promotion on store) and reports the required global action
// otherwise. For GlobalUpgrade the Shared copy remains resident; for misses
// nothing is allocated until Fill.
func (h *Hierarchy) Access(block memory.Addr, kind memory.Kind) AccessResult {
	res := AccessResult{Latency: h.l1Time()}
	s1 := h.l1.Lookup(block)
	if s1 != Invalid {
		res.HitL1 = true
		res.State = h.l2.Probe(block)
		if res.State == Invalid {
			panic(fmt.Sprintf("cache: inclusion violated for block %#x (L1 %v, L2 invalid)", block, s1))
		}
		switch {
		case kind == memory.Load:
			return res
		case s1 == Modified:
			return res
		case s1 == LStemp:
			// The predicted store: promote locally, no global action.
			h.l1.SetState(block, Modified)
			h.l2.SetState(block, Modified)
			res.LSWrite = true
			return res
		default: // store to Shared
			res.Action = GlobalUpgrade
			return res
		}
	}

	res.Latency += h.l2Time()
	s2 := h.l2.Lookup(block)
	res.State = s2
	if s2 == Invalid {
		if kind == memory.Load {
			res.Action = GlobalRead
		} else {
			res.Action = GlobalWriteMiss
		}
		return res
	}
	res.HitL2 = true
	switch {
	case kind == memory.Load:
		h.refillL1(block, s2)
		return res
	case s2 == Modified:
		h.refillL1(block, Modified)
		return res
	case s2 == LStemp:
		h.l2.SetState(block, Modified)
		h.refillL1(block, Modified)
		res.LSWrite = true
		return res
	default: // store to Shared in L2
		res.Action = GlobalUpgrade
		return res
	}
}

// Classify predicts the global action Access would report for the given
// access without performing it: no LRU touch, no L1 refill, no LStemp
// promotion. The decision depends only on the authoritative L2 state
// (the L1 mirrors a subset of L2 with the same per-block state), so a
// probe suffices. The run-ahead engine uses this to decide whether an
// operation can be serviced inline or must go to the scheduler — in the
// latter case the caches must be left exactly as they were, because other
// processors' pending operations may change them first.
func (h *Hierarchy) Classify(block memory.Addr, kind memory.Kind) GlobalAction {
	switch h.l2.Probe(block) {
	case Invalid:
		if kind == memory.Load {
			return GlobalRead
		}
		return GlobalWriteMiss
	case Shared:
		if kind == memory.Load {
			return NoGlobal
		}
		return GlobalUpgrade
	default: // Modified, LStemp: loads and stores complete locally
		return NoGlobal
	}
}

// refillL1 brings a block into L1 mirroring state s. An L1 victim needs no
// coherence action (its authoritative copy stays in L2); a Modified L1
// victim's data conceptually writes back into L2, which already holds the
// Modified state under our mirroring scheme.
func (h *Hierarchy) refillL1(block memory.Addr, s State) {
	h.l1.Insert(block, s)
}

// Fill installs a block delivered by the global protocol into both levels
// and returns the L2 victim, if any, which the caller must write back (if
// Modified) or announce as replaced (Shared/LStemp) to its home. The L1
// shadow of the victim is invalidated to preserve inclusion.
func (h *Hierarchy) Fill(block memory.Addr, s State) (Victim, bool) {
	if cur := h.l2.Probe(block); cur != Invalid {
		panic(fmt.Sprintf("cache: Fill of resident block %#x (state %v)", block, cur))
	}
	v, evicted := h.l2.Insert(block, s)
	if evicted {
		h.l1.Invalidate(v.Block)
	}
	if h.l1.Probe(block) != Invalid {
		panic(fmt.Sprintf("cache: L1 holds block %#x missing from L2", block))
	}
	h.l1.Insert(block, s)
	return v, evicted
}

// L2SetBlocks walks the resident lines of the L2 set that block maps to
// (see Cache.SetBlocks): the candidate victims of a Fill of block.
func (h *Hierarchy) L2SetBlocks(block memory.Addr, yield func(memory.Addr) bool) bool {
	return h.l2.SetBlocks(block, yield)
}

// Upgrade completes an ownership acquisition: the Shared copy becomes
// Modified in both levels. It panics if the copy vanished (the engine must
// re-issue the access as a write miss if the copy was invalidated while
// the upgrade was pending; with blocking SC processors this cannot happen).
func (h *Hierarchy) Upgrade(block memory.Addr) {
	if !h.l2.SetState(block, Modified) {
		panic(fmt.Sprintf("cache: Upgrade of non-resident block %#x", block))
	}
	h.l1.SetState(block, Modified) // may be absent from L1; that is fine
	if h.l1.Probe(block) == Invalid {
		h.l1.Insert(block, Modified)
	}
}

// Invalidate removes the block from both levels and returns the previous
// authoritative (L2) state.
func (h *Hierarchy) Invalidate(block memory.Addr) State {
	h.l1.Invalidate(block)
	return h.l2.Invalidate(block)
}

// Downgrade moves an exclusive copy to Shared in both levels (e.g. the
// previous owner on a read-on-dirty) and returns the previous state.
func (h *Hierarchy) Downgrade(block memory.Addr) State {
	old := h.l2.Probe(block)
	if old == Invalid {
		return Invalid
	}
	h.l2.SetState(block, Shared)
	h.l1.SetState(block, Shared)
	return old
}

// State returns the authoritative coherence state of block.
func (h *Hierarchy) State(block memory.Addr) State {
	return h.l2.Probe(block)
}

// ForceState overwrites the state of a resident block in both levels
// without any coherence action, and reports whether the block was
// resident. This is a fault-injection hook (internal/fault): it
// deliberately creates the silent corruption — a stale exclusive copy, a
// leaked LStemp grant — that the online invariant checker must detect.
// Never call it from protocol code.
func (h *Hierarchy) ForceState(block memory.Addr, s State) bool {
	if !h.l2.SetState(block, s) {
		return false
	}
	h.l1.SetState(block, s) // may be absent from L1; that is fine
	return true
}

// CheckInclusion verifies that every valid L1 line has a valid L2 line with
// a compatible state. Intended for tests; returns the first violation.
func (h *Hierarchy) CheckInclusion() error {
	for _, ln := range h.l1.Resident() {
		s2 := h.l2.Probe(ln.Block)
		if s2 == Invalid {
			return fmt.Errorf("block %#x in L1 (%v) but not in L2", ln.Block, ln.State)
		}
		if ln.State.Exclusive() && !s2.Exclusive() {
			return fmt.Errorf("block %#x exclusive in L1 (%v) but %v in L2", ln.Block, ln.State, s2)
		}
	}
	return nil
}
