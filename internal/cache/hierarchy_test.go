package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lsnuma/internal/memory"
)

func newHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(
		Config{Size: 128, Assoc: 1, BlockSize: 16, AccessTime: 1},
		Config{Size: 512, Assoc: 1, BlockSize: 16, AccessTime: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	l1 := Config{Size: 128, Assoc: 1, BlockSize: 16, AccessTime: 1}
	l2 := Config{Size: 512, Assoc: 1, BlockSize: 16, AccessTime: 10}
	if _, err := NewHierarchy(l1, l2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := l2
	bad.BlockSize = 32
	if _, err := NewHierarchy(l1, bad); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	small := l2
	small.Size = 64
	if _, err := NewHierarchy(l1, small); err == nil {
		t.Error("L1 larger than L2 accepted")
	}
	if _, err := NewHierarchy(Config{}, l2); err == nil {
		t.Error("invalid L1 accepted")
	}
	if _, err := NewHierarchy(l1, Config{}); err == nil {
		t.Error("invalid L2 accepted")
	}
}

func TestColdMissKinds(t *testing.T) {
	h := newHier(t)
	r := h.Access(0x100, memory.Load)
	if r.Action != GlobalRead || r.HitL1 || r.HitL2 {
		t.Fatalf("cold load = %+v", r)
	}
	if r.Latency != 11 { // L1 probe (1) + L2 probe (10)
		t.Fatalf("cold miss latency = %d, want 11", r.Latency)
	}
	r = h.Access(0x200, memory.Store)
	if r.Action != GlobalWriteMiss {
		t.Fatalf("cold store = %+v", r)
	}
}

func TestFillThenHit(t *testing.T) {
	h := newHier(t)
	if _, ev := h.Fill(0x100, Shared); ev {
		t.Fatal("unexpected eviction on first fill")
	}
	r := h.Access(0x100, memory.Load)
	if r.Action != NoGlobal || !r.HitL1 || r.Latency != 1 {
		t.Fatalf("post-fill load = %+v", r)
	}
}

func TestUpgradePath(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, Shared)
	r := h.Access(0x100, memory.Store)
	if r.Action != GlobalUpgrade {
		t.Fatalf("store to Shared = %+v", r)
	}
	// The copy must still be resident while the upgrade is pending.
	if h.State(0x100) != Shared {
		t.Fatal("Shared copy lost before upgrade completed")
	}
	h.Upgrade(0x100)
	if h.State(0x100) != Modified {
		t.Fatal("upgrade did not set Modified")
	}
	r = h.Access(0x100, memory.Store)
	if r.Action != NoGlobal {
		t.Fatalf("store after upgrade = %+v", r)
	}
	if err := h.CheckInclusion(); err != nil {
		t.Error(err)
	}
}

func TestLStempPromotionL1(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, LStemp)
	r := h.Access(0x100, memory.Store)
	if r.Action != NoGlobal || !r.LSWrite {
		t.Fatalf("store to LStemp = %+v", r)
	}
	if h.State(0x100) != Modified {
		t.Fatalf("state after LS promotion = %v", h.State(0x100))
	}
	if h.L1().Probe(0x100) != Modified {
		t.Fatalf("L1 state after LS promotion = %v", h.L1().Probe(0x100))
	}
}

func TestLStempPromotionL2Only(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, LStemp)
	// Push the block out of the (direct-mapped, 8-set) L1 by touching a
	// conflicting block.
	h.Fill(0x180, Shared) // same L1 set as 0x100 (128 B L1), different L2 set
	if h.L1().Probe(0x100) != Invalid {
		t.Fatal("test setup: block still in L1")
	}
	r := h.Access(0x100, memory.Store)
	if r.Action != NoGlobal || !r.LSWrite || !r.HitL2 {
		t.Fatalf("store to LStemp in L2 = %+v", r)
	}
	if h.State(0x100) != Modified {
		t.Fatal("L2 promotion failed")
	}
}

func TestLoadToLStempStaysClean(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, LStemp)
	r := h.Access(0x100, memory.Load)
	if r.Action != NoGlobal || r.LSWrite {
		t.Fatalf("load to LStemp = %+v", r)
	}
	if h.State(0x100) != LStemp {
		t.Fatalf("load disturbed LStemp: %v", h.State(0x100))
	}
}

func TestL1RefillFromL2(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, Shared)
	h.Fill(0x180, Shared) // evicts 0x100 from L1 only
	r := h.Access(0x100, memory.Load)
	if !r.HitL2 || r.HitL1 || r.Action != NoGlobal {
		t.Fatalf("L2 hit = %+v", r)
	}
	if r.Latency != 11 {
		t.Fatalf("L2 hit latency = %d, want 11", r.Latency)
	}
	// Now it must be back in L1.
	r = h.Access(0x100, memory.Load)
	if !r.HitL1 {
		t.Fatalf("refill did not populate L1: %+v", r)
	}
}

func TestFillEvictionInvalidatesL1(t *testing.T) {
	h := newHier(t)
	// L2 is 512 B direct mapped (32 sets): 0x100 and 0x300 conflict in L2
	// (set 16) and in L1 (128 B → set 0... both map somewhere; what matters
	// is the L2 conflict).
	h.Fill(0x100, Modified)
	v, ev := h.Fill(0x300, Shared)
	if !ev || v.Block != 0x100 || v.State != Modified {
		t.Fatalf("victim = %+v, %v", v, ev)
	}
	if h.L1().Probe(0x100) != Invalid {
		t.Fatal("inclusion: L1 still holds evicted block")
	}
	if err := h.CheckInclusion(); err != nil {
		t.Error(err)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	h := newHier(t)
	h.Fill(0x100, Modified)
	if old := h.Downgrade(0x100); old != Modified {
		t.Fatalf("Downgrade returned %v", old)
	}
	if h.State(0x100) != Shared || h.L1().Probe(0x100) != Shared {
		t.Fatal("downgrade state wrong")
	}
	if old := h.Invalidate(0x100); old != Shared {
		t.Fatalf("Invalidate returned %v", old)
	}
	if h.State(0x100) != Invalid || h.L1().Probe(0x100) != Invalid {
		t.Fatal("invalidate left residue")
	}
	if old := h.Downgrade(0x100); old != Invalid {
		t.Fatalf("Downgrade of absent block returned %v", old)
	}
}

// TestHierarchyInclusionProperty drives a random access stream through the
// hierarchy, simulating the engine's fill/upgrade responses, and checks the
// inclusion invariant after every step.
func TestHierarchyInclusionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h, err := NewHierarchy(
			Config{Size: 64, Assoc: 1, BlockSize: 16, AccessTime: 1},
			Config{Size: 256, Assoc: 2, BlockSize: 16, AccessTime: 10},
		)
		if err != nil {
			return false
		}
		for _, op := range ops {
			block := memory.Addr(op&0x1ff) &^ 15
			kind := memory.Load
			if op&0x8000 != 0 {
				kind = memory.Store
			}
			switch r := h.Access(block, kind); r.Action {
			case GlobalRead:
				st := Shared
				if op&0x4000 != 0 {
					st = LStemp
				}
				h.Fill(block, st)
			case GlobalWriteMiss:
				h.Fill(block, Modified)
			case GlobalUpgrade:
				h.Upgrade(block)
			}
			if err := h.CheckInclusion(); err != nil {
				t.Logf("inclusion violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFillResidentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fill of resident block did not panic")
		}
	}()
	h := newHier(t)
	h.Fill(0x100, Shared)
	h.Fill(0x100, Shared)
}

func TestGlobalActionString(t *testing.T) {
	for g, want := range map[GlobalAction]string{
		NoGlobal: "none", GlobalRead: "read", GlobalUpgrade: "upgrade", GlobalWriteMiss: "write-miss",
	} {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(g), g.String(), want)
		}
	}
}

// TestClassifyMatchesAccess drives a random access/fill/invalidate
// sequence and checks that Classify always predicts exactly the Action
// that Access then reports, and that a rejected (global) classification
// leaves the hierarchy untouched — the contract the engine's run-ahead
// path depends on.
func TestClassifyMatchesAccess(t *testing.T) {
	f := func(seed int64) bool {
		h := newHier(t)
		r := rand.New(rand.NewSource(seed))
		blocks := []memory.Addr{0, 16, 32, 256, 272, 512}
		for i := 0; i < 500; i++ {
			b := blocks[r.Intn(len(blocks))]
			kind := memory.Load
			if r.Intn(2) == 0 {
				kind = memory.Store
			}
			predicted := h.Classify(b, kind)
			if predicted != NoGlobal {
				// A rejected classification must be side-effect free.
				before1, before2 := h.l1.Probe(b), h.l2.Probe(b)
				if h.Classify(b, kind) != predicted {
					t.Error("Classify not idempotent")
					return false
				}
				if h.l1.Probe(b) != before1 || h.l2.Probe(b) != before2 {
					t.Error("Classify mutated cache state")
					return false
				}
			}
			res := h.Access(b, kind)
			if res.Action != predicted {
				t.Errorf("block %#x %v: Classify=%v but Access=%v", b, kind, predicted, res.Action)
				return false
			}
			// Emulate the protocol's response so states keep evolving.
			switch res.Action {
			case GlobalRead:
				s := Shared
				if r.Intn(3) == 0 {
					s = LStemp
				}
				h.Fill(b, s)
			case GlobalWriteMiss:
				h.Fill(b, Modified)
			case GlobalUpgrade:
				h.Upgrade(b)
			}
			// Occasional remote invalidation/downgrade.
			if r.Intn(8) == 0 {
				v := blocks[r.Intn(len(blocks))]
				if r.Intn(2) == 0 {
					h.Invalidate(v)
				} else {
					h.Downgrade(v)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
