package engine

import (
	"errors"
	"strings"
	"testing"

	"lsnuma/internal/fault"
	"lsnuma/internal/protocol"
)

// dropAll returns an injector that destroys every network message.
func dropAll(t *testing.T, class fault.MsgClass) *fault.MsgInjector {
	t.Helper()
	mi := fault.NewMsgInjector(1)
	if err := mi.Set(class, 1); err != nil {
		t.Fatal(err)
	}
	return mi
}

// TestCancelHook: a machine built with Config.Cancel polls it between
// operations and aborts the run with a structured CancelledError.
func TestCancelHook(t *testing.T) {
	sentinel := errors.New("deadline elapsed")
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	polls := 0
	cfg.Cancel = func() error {
		polls++
		if polls > 1 {
			return sentinel
		}
		return nil
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) {
		for i := 0; i < 5000; i++ {
			p.Read(0)
		}
	}})
	if err == nil {
		t.Fatal("cancelled run completed cleanly")
	}
	var cancelled *CancelledError
	if !errors.As(err, &cancelled) {
		t.Fatalf("error is not a CancelledError: %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("CancelledError does not unwrap to the hook's error: %v", err)
	}
	if polls < 2 {
		t.Errorf("cancel hook polled %d times", polls)
	}
}

// TestDropRetriesDisabled: with an unreliable interconnect and no retry
// policy, the first lost message must fail the run immediately — reported
// as the starvation its progress window would have become.
func TestDropRetriesDisabled(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.MsgFaults = dropAll(t, fault.DropMsg)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) {
		p.Read(4096) // page 1 → home node 1: the first global message
	}})
	var starve *StarvationError
	if !errors.As(err, &starve) {
		t.Fatalf("want StarvationError, got %v", err)
	}
	if starve.Budget != 0 || !strings.Contains(starve.Cause, "retries disabled") {
		t.Errorf("report wrong: budget=%d cause=%q", starve.Budget, starve.Cause)
	}
	if starve.Stalled != starve.Window || starve.Window == 0 {
		t.Errorf("fail-fast should charge the full window: stalled=%d window=%d",
			starve.Stalled, starve.Window)
	}
	if starve.CPU != 0 || starve.Home != 1 {
		t.Errorf("attribution wrong: cpu=%d home=%d", starve.CPU, starve.Home)
	}
}

// TestDropBudgetExhausted: when every retransmission is also destroyed,
// the retry budget runs out and the watchdog reports exactly Max retries.
func TestDropBudgetExhausted(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.MsgFaults = dropAll(t, fault.DropMsg)
	cfg.Retry = protocol.RetryPolicy{Max: 3, Base: 10, Cap: 100, JitterSeed: 1}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) { p.Read(4096) }})
	var starve *StarvationError
	if !errors.As(err, &starve) {
		t.Fatalf("want StarvationError, got %v", err)
	}
	if !strings.Contains(starve.Cause, "retry budget exhausted") {
		t.Errorf("cause = %q", starve.Cause)
	}
	if starve.Retries != 3 || starve.Budget != 3 {
		t.Errorf("retries %d/%d, want 3/3", starve.Retries, starve.Budget)
	}
	if st := m.Stats(); st.Resil.TimeoutResends != 3 || st.Resil.DroppedMsgs != 4 {
		t.Errorf("accounting: resends=%d dropped=%d, want 3 and 4",
			st.Resil.TimeoutResends, st.Resil.DroppedMsgs)
	}
}

// TestReorderBudgetExhausted: the reorder path has its own recovery loop
// (receiver NACK + backoff) with the same budget semantics.
func TestReorderBudgetExhausted(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.MsgFaults = dropAll(t, fault.ReorderMsg)
	cfg.Retry = protocol.RetryPolicy{Max: 2, Base: 10, Cap: 100, JitterSeed: 1}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) { p.Read(4096) }})
	var starve *StarvationError
	if !errors.As(err, &starve) {
		t.Fatalf("want StarvationError, got %v", err)
	}
	if !strings.Contains(starve.Cause, "reordered") {
		t.Errorf("cause = %q", starve.Cause)
	}
	if st := m.Stats(); st.Resil.ReorderedMsgs != 3 {
		t.Errorf("reordered = %d, want 3", st.Resil.ReorderedMsgs)
	}
}

// TestProgressWindow: a tiny window trips before the budget does.
func TestProgressWindow(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.MsgFaults = dropAll(t, fault.DropMsg)
	cfg.Retry = protocol.RetryPolicy{Max: 1000, Base: 10, Cap: 100, JitterSeed: 1}
	cfg.ProgressWindow = 5
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) { p.Read(4096) }})
	var starve *StarvationError
	if !errors.As(err, &starve) {
		t.Fatalf("want StarvationError, got %v", err)
	}
	if !strings.Contains(starve.Cause, "progress window") {
		t.Errorf("cause = %q", starve.Cause)
	}
	if starve.Window != 5 || starve.Stalled <= 5 {
		t.Errorf("window report wrong: stalled=%d window=%d", starve.Stalled, starve.Window)
	}
}

// TestStarvationErrorRendering covers the report formats directly.
func TestStarvationErrorRendering(t *testing.T) {
	err := &StarvationError{
		CPU: 2, Block: 0x1040, Home: 1, Cycle: 9999,
		Retries: 4, Budget: 8, Stalled: 700, Window: 1000,
		Cause: "home transaction buffers saturated",
	}
	msg := err.Error()
	for _, want := range []string{"CPU 2", "0x1040", "home 1", "cycle 9999", "4/8", "700 of 1000"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() misses %q: %s", want, msg)
		}
	}
	d := err.Diagnosis()
	if !strings.Contains(d, "requesters of the stuck block") ||
		!strings.Contains(d, "no transaction ever recovered") {
		t.Errorf("empty-history diagnosis wrong:\n%s", d)
	}
	err.RetryHist[0], err.RetryHist[3] = 7, 2
	d = err.Diagnosis()
	if !strings.Contains(d, "1:7") || !strings.Contains(d, "4-7:2") {
		t.Errorf("histogram diagnosis wrong:\n%s", d)
	}
}
