// Conservative parallel discrete-event scheduler (Config.Sched ==
// SchedParallel): directory homes — and the processors co-numbered with
// them — are partitioned round-robin into shards, each owned by a
// persistent worker goroutine, and the run alternates between two kinds
// of steps chosen by a Chandy–Misra safe-time window computed over every
// parked operation:
//
//   - Batch streak: when the earliest parked operation's clock lies
//     strictly below the window W, every parked operation with clock < W
//     is popped and serviced concurrently by its shard's worker. W is the
//     minimum over all parked operations of a per-operation bound: the
//     operation's own clock when its service could leave its shard
//     (coordinator-only operations), or clock + advance, where advance is
//     a lower bound on the latency of any operation the issuing processor
//     could submit next (Machine.advance). Every batched operation is
//     therefore shard-confined, and — because the serial schedulers
//     service operations in globally ascending (clock, CPU id) order, and
//     confined operations on the same state share a shard (and a worker,
//     which services its batch in that same key order) — the concurrent
//     services commute into the exact serial service order. Consecutive
//     sub-batches are FUSED into one streak: after a sub-batch is
//     serviced, its processors stay parked, the window is recomputed, and
//     any further operation below both the new window and the floor — the
//     minimum (clock, id) over serviced-but-unresumed processors, which
//     lower-bounds their next submissions — is serviced in the same
//     streak, amortizing the resume phase, the sequence-log replay and
//     the checker fold over many sub-batches (Config.FuseLimit).
//
//   - Serial step: otherwise the coordinator services the head operation
//     exactly as the run-ahead scheduler would (popServe: MaxCycles guard,
//     spin re-arming and all).
//
// The workers are persistent and epoch-driven: the coordinator publishes
// a round by storing a fresh epoch into each participating shard's atomic
// counter; workers spin briefly (yielding) and then park on a buffered
// channel, so a busy run never pays a channel round-trip per round. A
// single shard degenerates further: every round trivially lands in the
// one shard, a batch serviced sequentially in key order is exactly a
// string of serial steps, so shards=1 runs a pure serial-step loop with
// no window maintenance, no sequence-event buffering and no worker at
// all — the single-core overhead floor the parbench regression guard
// watches.
//
// Program bodies NEVER run concurrently: after a batch streak the
// serviced processors are resumed one at a time in ascending key order,
// each under a run-ahead lease bounded by the remaining processors'
// clocks, so workload Go state and the engine's one-goroutine-at-a-time
// contract (see Program) are untouched. The parallelism is confined to
// the pure simulator state transitions, which is where the simulation
// spends its time. Results are byte-identical to the serial and
// run-ahead schedulers for every shard count and fuse limit, which the
// differential matrix tests enforce.
package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"lsnuma/internal/cache"
	"lsnuma/internal/check"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
	"lsnuma/internal/network"
	"lsnuma/internal/stats"
)

// MaxShards bounds Config.Shards (one worker goroutine per shard).
const MaxShards = 64

// seqFlushThreshold bounds how many buffered sequence events may
// accumulate before a serial step forces a partial replay (batch streaks
// replay on their own; a long run of coordinator-only operations —
// e.g. every global under the resilient layer — would otherwise grow the
// buffers without bound).
const seqFlushThreshold = 8192

// defaultFuseLimit is the Config.FuseLimit applied when the field is
// zero: how many operations a batch streak may service before the
// coordinator must resume and collect. Purely a liveness/latency bound —
// any positive value is byte-identical.
const defaultFuseLimit = 1024

// parFanoutMin is the smallest multi-shard sub-batch worth dispatching to
// the workers; below it the coordinator services the operations itself on
// the owning shards' lanes (identical effect, no handshake). Single-shard
// sub-batches of any size are always serviced inline: a worker round-trip
// cannot add parallelism there.
const parFanoutMin = 4

// workerSpin and coordSpin are how many scheduler yields a worker (resp.
// the coordinator) burns waiting for an epoch (resp. a completion) before
// parking on its channel. Spinning through the common fast turnaround is
// what makes rounds cheaper than the old per-round channel ping-pong;
// parking keeps idle shards off the host CPUs.
const (
	workerSpin = 16
	coordSpin  = 16
)

// stopEpoch shuts a worker down when published as its epoch.
const stopEpoch = ^uint64(0)

// Worker park states (parShard.state).
const (
	wkRunning uint32 = iota
	wkParked
)

// seqEvent is one buffered classify.Sequences notification. The sequence
// detector keeps a global logical clock, so its notifications must arrive
// in exact serial service order; workers instead buffer them keyed by the
// issuing operation's (clock, CPU) service key, and the coordinator
// replays them at quiescence with a k-way merge over the per-lane logs
// (Machine.replaySeq). Each lane's log is already key-sorted — a lane
// services operations in ascending key order, the global service order is
// the serial one, and per-CPU clocks strictly increase — and a key can
// never appear in two lanes (one operation is serviced by exactly one
// lane), so the merge needs no tie-breaking and no global sort.
type seqEvent struct {
	at    uint64
	cpu   memory.NodeID
	block memory.Addr
	src   memory.Source
	write bool
	elim  bool
}

// lane is the per-servicing-context state: one per shard worker plus one
// for the coordinator. Under the serial and run-ahead schedulers only the
// coordinator lane exists and aliases the machine's own collectors, so
// those paths are unchanged; under the parallel scheduler each worker
// gets private stats, a traffic-sink view of the network, a scoped
// checker and private hook state, merged (stats) or replayed (sequence
// events) at quiescence.
type lane struct {
	st      *stats.Stats
	net     *network.Network
	checker *check.Checker
	touched []memory.Addr // blocks mutated by the current operation

	// buffer redirects sequence notifications into seqBuf (parallel mode
	// with more than one shard, all lanes including the coordinator);
	// curAt/curCPU hold the service key of the operation currently inside
	// service/runInline. seqPos is the replay cursor into seqBuf's
	// consumed prefix, compacted after each merge pass.
	buffer bool
	seqBuf []seqEvent
	seqPos int
	curAt  uint64
	curCPU memory.NodeID

	// dirty queues the nodes whose observable state this lane changed
	// since the coordinator's last drain: the victims of invalidations and
	// downgrades (their cache contents changed) and the homes of mutated
	// directory entries. The incremental safe window recomputes only the
	// parked-op bounds that depend on these nodes (Machine.noteDirty,
	// parWindow.drain). Appended by at most one goroutine at a time (the
	// lane's owner), drained at quiescent points only.
	dirty []memory.NodeID

	opCount    uint64 // serviced memory operations (any scheduler path)
	sinceSweep uint64 // ops since the last full sweep (check.Full)
	isCoord    bool   // recorder, cancel polling, ring and sweeps live here
}

// noteSeqRead records a global-read sequence notification: direct when the
// lane is not buffering, keyed into the lane's buffer otherwise.
func (m *Machine) noteSeqRead(ln *lane, block memory.Addr, cpu memory.NodeID) {
	if m.seq == nil {
		return
	}
	if !ln.buffer {
		m.seq.GlobalRead(block, cpu)
		return
	}
	ln.seqBuf = append(ln.seqBuf, seqEvent{
		at: ln.curAt, cpu: ln.curCPU, block: block,
	})
}

// noteSeqWrite is noteSeqRead for global-write notifications.
func (m *Machine) noteSeqWrite(ln *lane, block memory.Addr, cpu memory.NodeID, src memory.Source, eliminated bool) {
	if m.seq == nil {
		return
	}
	if !ln.buffer {
		m.seq.GlobalWrite(block, cpu, src, eliminated)
		return
	}
	ln.seqBuf = append(ln.seqBuf, seqEvent{
		at: ln.curAt, cpu: ln.curCPU, block: block,
		src: src, write: true, elim: eliminated,
	})
}

// parRes is one worker's batch outcome: the first service failure (keyed
// for deterministic cross-shard error selection), or success.
type parRes struct {
	err error
	at  uint64
	cpu memory.NodeID
}

// parShard is one shard's persistent worker state. The coordinator
// publishes work by filling batch and storing a fresh round number into
// epoch (parShard.release); the worker acknowledges by storing the same
// number into done after servicing. Both sides spin briefly before
// blocking: the worker parks on wake (cap 1) after flagging state, the
// coordinator parks on the shared parSched.doneCh after flagging
// parSched.coordParked, and each publisher re-checks the flag after its
// own store (the classic two-flag handshake), so no wakeup can be missed
// and stale tokens are at worst one spurious non-blocking receive.
type parShard struct {
	ln    *lane
	batch []*op // this round's confined operations, in ascending key order
	res   parRes

	epoch atomic.Uint64 // round published by the coordinator
	done  atomic.Uint64 // last round completed by the worker
	state atomic.Uint32 // wkRunning / wkParked
	wake  chan struct{} // cap 1; kicks a parked worker
}

// release publishes round e to the shard and reports whether it had to
// kick a parked worker (a true channel wakeup, as opposed to a free spin
// pickup).
func (s *parShard) release(e uint64) bool {
	s.epoch.Store(e)
	if s.state.CompareAndSwap(wkParked, wkRunning) {
		select {
		case s.wake <- struct{}{}:
		default:
		}
		return true
	}
	return false
}

// await blocks the worker until a round beyond last is published,
// spinning (with scheduler yields) before parking. A stale wake token —
// left behind when the worker unparked itself right as the coordinator
// kicked it — is consumed as one spurious pass through the loop.
func (s *parShard) await(last uint64) uint64 {
	for i := 0; i < workerSpin; i++ {
		if e := s.epoch.Load(); e != last {
			return e
		}
		runtime.Gosched()
	}
	for {
		s.state.Store(wkParked)
		if e := s.epoch.Load(); e != last {
			s.state.Store(wkRunning)
			return e
		}
		<-s.wake
		s.state.Store(wkRunning)
		if e := s.epoch.Load(); e != last {
			return e
		}
	}
}

// shardWorker is the persistent per-shard service loop: await a round,
// service the batch, acknowledge, signal the coordinator if it parked.
func (m *Machine) shardWorker(s *parShard) {
	ps := m.par
	last := uint64(0)
	for {
		e := s.await(last)
		if e == stopEpoch {
			return
		}
		s.res = m.runBatch(s)
		s.done.Store(e)
		if ps.coordParked.Load() == 1 {
			select {
			case ps.doneCh <- struct{}{}:
			default:
			}
		}
		last = e
	}
}

// waitShard blocks the coordinator until shard s acknowledges round e,
// spinning before parking on the shared completion channel. Completions
// from other shards and stale tokens surface as spurious wakeups; the
// re-check after every flag store and receive keeps the handshake
// missed-wakeup-free.
func (m *Machine) waitShard(s *parShard, e uint64) {
	ps := m.par
	for i := 0; i < coordSpin; i++ {
		if s.done.Load() == e {
			return
		}
		runtime.Gosched()
	}
	for {
		ps.coordParked.Store(1)
		if s.done.Load() == e {
			ps.coordParked.Store(0)
			return
		}
		<-ps.doneCh
		ps.coordParked.Store(0)
		if s.done.Load() == e {
			return
		}
	}
}

// RoundStats is the parallel scheduler's per-run coordination profile
// (Machine.RoundStats): how the operations were serviced and what each
// quiescent-point mechanism cost. The parbench harness records it next
// to the wall-clock ratios so coordination regressions are visible in
// BENCH_10.json, not just as noise in ns/op.
type RoundStats struct {
	SerialSteps  uint64 // coordinator head-of-line services (all of shards=1)
	InlineRounds uint64 // sub-batches serviced on the coordinator goroutine
	WorkerRounds uint64 // sub-batches dispatched to the shard workers
	FusedRounds  uint64 // sub-batches that extended an already-open streak
	Wakeups      uint64 // parked-worker channel kicks (spin pickups are free)
	Replays      uint64 // sequence-log merge passes
}

// RoundStats returns the coordination counters from the machine's last
// parallel run (zero outside parallel runs).
func (m *Machine) RoundStats() RoundStats {
	if m.par == nil {
		return RoundStats{}
	}
	return m.par.rs
}

// parSched is the parallel scheduler's run state, built per Run.
type parSched struct {
	single    bool // one shard: pure serial-step loop, no workers
	shards    []*parShard
	nodeShard []int32            // node ID -> shard
	shardMask []directory.Bitset // shard -> member-node bitset
	// dirLimit is the allocator high-water mark at Run: directory pages
	// below it are pre-allocated (directory.Grow), so workers never
	// allocate pages; operations on blocks beyond it stay on the
	// coordinator.
	dirLimit memory.Addr
	// wordHome reports that one 64-entry directory presence word never
	// spans two homes (64*BlockSize <= PageSize), making the shared-mode
	// load/store presence update single-writer per shard. Without it no
	// global operation is ever shard-confined (hits still batch).
	wordHome  bool
	l1Min     uint64
	l2Min     uint64
	ctrlMin   uint64
	lookahead uint64
	fuse      uint64 // max operations per batch streak (Config.FuseLimit)

	epoch       uint64        // current round number (workers key off it)
	coordParked atomic.Uint32 // coordinator is blocked on doneCh
	doneCh      chan struct{} // cap 1; workers kick a parked coordinator

	served      []*op // current streak's operations, globally key-sorted
	sufAt       []uint64
	sufID       []memory.NodeID
	replayLanes []*lane // merge scratch: lanes with pending seq events

	rs RoundStats

	win *parWindow // incremental safe-window state
}

// parWindow maintains the Chandy–Misra safe window incrementally across
// rounds. Every parked operation carries a cached conservative bound
// (op.bound, registered at heap push, retired at pop) in an indexed
// min-heap keyed (bound, cpu), and a reverse index maps each node to the
// parked operations whose bound was computed from that node's state (the
// issuing node's cache, or directory entries homed there). Services queue
// the nodes they touch on their lane's dirty list; the coordinator drains
// the lists at quiescent points and recomputes only the affected bounds,
// so the per-round window cost is O(dirty), not O(parked) — the scan that
// dominated coordination overhead at large P.
//
// Soundness: a cached bound may only ever be stale-LOW safe, never
// stale-high. Bounds change only when the op's dependency footprint
// changes — its own node's cache contents (invalidation/downgrade by
// another node; the op's own services recompute at the next push) or a
// directory entry homed at a footprint node — and every such mutation
// site calls noteDirty with the matching key, so any event that could
// lower a bound forces its recomputation before the next window read. The
// window is the exact minimum over the same per-op bounds the previous
// full scan computed, so batch/serial decisions — and therefore Results —
// are unchanged.
type parWindow struct {
	bh        []*op    // indexed min-heap of parked ops on (bound, cpu)
	homeOps   [][]*op  // node -> parked ops depending on that node
	scratch   []*op    // dedup'd recompute set for the current drain
	nodeStamp []uint64 // node -> last drain pass that scanned it
	pass      uint64   // current drain pass (winStamp dedup)

	// Counters for the O(dirty) regression guard (Machine.WindowStats).
	rounds     uint64 // window reads answered
	recomputes uint64 // bound recomputations triggered by dirty events
	pushes     uint64 // bound computations at heap push
}

// boundBefore orders the bound heap: smallest cached bound first, ties by
// CPU id (any total order works; this one is deterministic).
func boundBefore(x, y *op) bool {
	return x.bound < y.bound || (x.bound == y.bound && x.proc.id < y.proc.id)
}

func (w *parWindow) bhUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !boundBefore(w.bh[i], w.bh[parent]) {
			break
		}
		w.bh[i], w.bh[parent] = w.bh[parent], w.bh[i]
		w.bh[i].bhIdx, w.bh[parent].bhIdx = int32(i), int32(parent)
		i = parent
	}
}

func (w *parWindow) bhDown(i int) {
	n := len(w.bh)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && boundBefore(w.bh[r], w.bh[c]) {
			c = r
		}
		if !boundBefore(w.bh[c], w.bh[i]) {
			break
		}
		w.bh[i], w.bh[c] = w.bh[c], w.bh[i]
		w.bh[i].bhIdx, w.bh[c].bhIdx = int32(i), int32(c)
		i = c
	}
}

func (w *parWindow) bhInsert(o *op) {
	o.bhIdx = int32(len(w.bh))
	w.bh = append(w.bh, o)
	w.bhUp(int(o.bhIdx))
}

func (w *parWindow) bhRemove(o *op) {
	i := int(o.bhIdx)
	n := len(w.bh) - 1
	last := w.bh[n]
	w.bh[n] = nil
	w.bh = w.bh[:n]
	o.bhIdx = -1
	if i == n {
		return
	}
	w.bh[i] = last
	last.bhIdx = int32(i)
	w.bhUp(i)
	w.bhDown(int(last.bhIdx))
}

// winCompute recomputes o's bound and dependency footprint against
// current machine state (advance fills o.deps) and indexes the footprint
// in homeOps.
func (m *Machine) winCompute(o *op) {
	w := m.par.win
	b := o.at
	if adv := m.advance(o); adv > 0 {
		if b+adv > b {
			b += adv
		} else {
			b = ^uint64(0)
		}
	}
	o.bound = b
	o.depPos = o.depPos[:0]
	for _, d := range o.deps {
		o.depPos = append(o.depPos, int32(len(w.homeOps[d])))
		w.homeOps[d] = append(w.homeOps[d], o)
	}
}

// winDeref drops o's footprint registrations from homeOps (swap-remove,
// fixing the displaced op's back-index).
func (m *Machine) winDeref(o *op) {
	w := m.par.win
	for i, d := range o.deps {
		list := w.homeOps[d]
		pos := int(o.depPos[i])
		n := len(list) - 1
		moved := list[n]
		list[pos] = moved
		list[n] = nil
		w.homeOps[d] = list[:n]
		if moved != o {
			for j, md := range moved.deps {
				if md == d {
					moved.depPos[j] = int32(pos)
					break
				}
			}
		}
	}
	o.deps = o.deps[:0]
	o.depPos = o.depPos[:0]
}

// winRegister computes o's bound and footprint and enters it into the
// window structures. Called from the heap's onPush hook — always at a
// quiescent point (the coordinator owns all simulator state when anything
// is pushed).
func (m *Machine) winRegister(o *op) {
	m.par.win.pushes++
	m.winCompute(o)
	m.par.win.bhInsert(o)
}

// winUnregister retires a popped op from the window structures.
func (m *Machine) winUnregister(o *op) {
	m.winDeref(o)
	m.par.win.bhRemove(o)
}

// drainWinDirty absorbs every lane's dirty queue: each parked operation
// depending on a dirtied node gets its bound and footprint recomputed
// against current state. Coordinator-only, at quiescent points.
func (m *Machine) drainWinDirty() {
	ps := m.par
	w := ps.win
	w.pass++
	w.scratch = w.scratch[:0]
	collect := func(ln *lane) {
		for _, d := range ln.dirty {
			if w.nodeStamp[d] == w.pass {
				continue
			}
			w.nodeStamp[d] = w.pass
			for _, o := range w.homeOps[d] {
				if o.winStamp != w.pass {
					o.winStamp = w.pass
					w.scratch = append(w.scratch, o)
				}
			}
		}
		ln.dirty = ln.dirty[:0]
	}
	collect(m.coord)
	for _, s := range ps.shards {
		collect(s.ln)
	}
	for _, o := range w.scratch {
		w.recomputes++
		m.winDeref(o)
		m.winCompute(o)
		w.bhUp(int(o.bhIdx))
		w.bhDown(int(o.bhIdx))
	}
}

// WindowStats returns the parallel scheduler's incremental-window
// counters from the machine's last run: window reads answered, per-op
// bound recomputations triggered by dirty events, and bound computations
// at heap push. Zero outside parallel runs — and zero at shards=1, where
// the degenerate serial-step loop never builds the window at all. The
// parbench regression guard asserts recomputes scale with serviced
// operations (the dirty set), not with rounds x parked operations.
func (m *Machine) WindowStats() (rounds, recomputes, pushes uint64) {
	if m.par == nil || m.par.win == nil {
		return 0, 0, 0
	}
	w := m.par.win
	return w.rounds, w.recomputes, w.pushes
}

// parallelOK reports whether the configuration is compatible with the
// parallel scheduler. Incompatible runs silently use run-ahead (results
// are byte-identical, so the fallback is invisible): protocol fault
// injection and the crash ring are keyed to a single global op counter,
// false-sharing classification is service-order-stateful with no buffered
// replay, the map directory has no atomic presence path, and a zero L1
// access time voids the strictly-increasing per-CPU clock the safe-window
// argument rests on. MsgFaults and the resilient layer do NOT degrade:
// they make every global operation coordinator-only, which preserves the
// exact serial order of their verdict and jitter draws.
func (m *Machine) parallelOK() bool {
	return m.faults == nil && m.fs == nil && m.ring == nil &&
		!m.cfg.MapDirectory && m.cfg.L1.AccessTime >= 1
}

// Scheduler returns the name of the scheduler a Run of this machine uses:
// "serial", "runahead" or "parallel" (after fallbacks).
func (m *Machine) Scheduler() string {
	switch {
	case m.cfg.SerialSchedule || m.recorder != nil || m.cfg.Sched == SchedSerial:
		return "serial"
	case m.cfg.Sched == SchedParallel && m.parallelOK():
		return "parallel"
	default:
		return "runahead"
	}
}

// newParSched builds the per-run parallel scheduler state. The shard
// count defaults to the host's GOMAXPROCS; any count in [1, Nodes]
// produces byte-identical Results, so a host-dependent default is safe.
// At a single shard none of the round machinery can ever help — every
// batch is trivially shard-confined and a batch serviced in key order IS
// a string of serial steps — so the window, the lanes and the worker are
// not built at all and scheduleParOne runs the degenerate loop.
func newParSched(m *Machine) *parSched {
	S := m.cfg.Shards
	if S == 0 {
		S = runtime.GOMAXPROCS(0)
	}
	if S > m.cfg.Nodes {
		S = m.cfg.Nodes
	}
	if S > MaxShards {
		S = MaxShards
	}
	if S < 1 {
		S = 1
	}
	fuse := m.cfg.FuseLimit
	if fuse == 0 {
		fuse = defaultFuseLimit
	}
	ps := &parSched{
		single:    S == 1,
		nodeShard: make([]int32, m.cfg.Nodes),
		wordHome:  64*m.layout.BlockSize <= m.layout.PageSize,
		l1Min:     uint64(m.cfg.L1.AccessTime),
		l2Min:     uint64(m.cfg.L2.AccessTime),
		ctrlMin:   uint64(m.cfg.Timing.CtrlTime),
		lookahead: m.cfg.Lookahead,
		fuse:      fuse,
	}
	if ps.single {
		return ps
	}
	ps.doneCh = make(chan struct{}, 1)
	ps.win = &parWindow{
		homeOps:   make([][]*op, m.cfg.Nodes),
		nodeStamp: make([]uint64, m.cfg.Nodes),
	}
	ps.shardMask = make([]directory.Bitset, S)
	for n := range ps.nodeShard {
		ps.nodeShard[n] = int32(n % S)
		ps.shardMask[n%S].Add(memory.NodeID(n))
	}
	for i := 0; i < S; i++ {
		ln := &lane{st: stats.New(m.cfg.Nodes), buffer: true}
		ln.net = m.net.WithSink(ln.st)
		if m.cfg.CheckLevel > check.Off {
			var scope directory.Bitset
			for n := 0; n < m.cfg.Nodes; n++ {
				if ps.nodeShard[n] == int32(i) {
					scope.Add(memory.NodeID(n))
				}
			}
			ln.checker = check.NewScoped(m.layout, m.dir, m.hierarchies(), scope)
			ln.touched = make([]memory.Addr, 0, 8)
		}
		ps.shards = append(ps.shards, &parShard{
			ln:   ln,
			wake: make(chan struct{}, 1),
		})
	}
	return ps
}

// holdersIn reports whether every cache holding block (per the directory)
// lives in shard s. Coordinator-only (reads the directory quiescently).
// This runs in the bound computation's inner loop, so it switches on the
// home state directly instead of materializing Holders() — the sharer
// case is a subset test against the shard's precomputed node bitset, the
// owner cases a single membership bit, and neither allocates even past 64
// nodes.
func (m *Machine) holdersIn(block memory.Addr, s int32) bool {
	e, ok := m.dir.Lookup(block)
	if !ok {
		return true
	}
	switch e.State {
	case directory.Shared:
		return e.Sharers.SubsetOf(m.par.shardMask[s])
	case directory.Dirty, directory.Excl:
		return e.Owner == memory.NoNode || m.par.shardMask[s].Has(e.Owner)
	default:
		return true
	}
}

// setConfined reports whether a fill of block into p's caches is
// guaranteed to stay inside shard s: every resident line of the L2 set
// block maps to — the candidate victims — has its home in s, lies below
// the directory limit, and is held only within s (a replacement mutates
// the victim's directory entry, which another shard's scoped checker may
// otherwise be reading). The victim identity itself may shift as earlier
// same-round fills consume ways, so the whole set is required, not a
// predicted victim.
// The op o, when non-nil, collects the homes of every visited candidate
// as window dependencies: a mutation of any of their directory entries
// can flip the confinement verdict, so those homes are part of the op's
// incremental-window footprint.
func (m *Machine) setConfined(o *op, p *Proc, block memory.Addr, s int32) bool {
	ps := m.par
	ok := true
	m.nodes[p.id].caches.L2SetBlocks(block, func(b memory.Addr) bool {
		if o != nil {
			o.addDep(m.layout.Home(b))
		}
		if b >= ps.dirLimit || ps.nodeShard[m.layout.Home(b)] != s || !m.holdersIn(b, s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// addDep appends node n to the op's window footprint if not yet present
// (footprints are tiny — issuing node, block home, a few victim homes —
// so the linear dedup beats any set structure).
func (o *op) addDep(n memory.NodeID) {
	for _, d := range o.deps {
		if d == n {
			return
		}
	}
	o.deps = append(o.deps, n)
}

// advance returns the parked operation's clock-advance bound: a positive
// lower bound, valid only when the operation's service is confined to its
// own shard, on how far beyond the issue clock the issuing processor's
// NEXT operation must be — or zero when the operation must be serviced
// serially by the coordinator. Confinement must survive earlier same-round
// services: a hit can degrade to a miss when a same-shard operation steals
// the copy, so the fill condition is required wherever that is possible
// (degradation only ever raises the true latency above the hit bound, and
// holders can only be removed or stay in-shard, so the bound and the
// confinement both remain valid).
func (m *Machine) advance(o *op) uint64 {
	ps := m.par
	o.deps = o.deps[:0]
	if o.rmw || o.spin != nil || o.size == 0 || m.resil != nil {
		// Statically coordinator-only: the bound is the op's own clock
		// forever, so no dependency footprint is needed.
		return 0
	}
	if !m.layout.SameBlock(o.addr, o.addr+memory.Addr(o.size)-1) {
		return 0
	}
	p := o.proc
	block := m.layout.Block(o.addr)
	s := ps.nodeShard[p.id]
	// The bound depends on p's own cache state (the classification and the
	// victim-candidate set) and on the directory entry of the block; the
	// victim candidates' homes are added by setConfined as visited.
	o.addDep(p.id)
	o.addDep(m.layout.Home(block))
	class := m.nodes[p.id].caches.Classify(block, o.kind)
	inHome := block < ps.dirLimit && ps.nodeShard[m.layout.Home(block)] == s

	var adv uint64
	if class == cache.NoGlobal {
		// Out-of-shard-home hits are class-stable: no operation on the
		// block is batchable anywhere (its home shard would need every
		// holder — including p — inside itself), so only p's own cache is
		// touched. In-shard-home hits with every holder local can be
		// degraded by an earlier same-shard service and need the fill
		// condition; with a foreign holder they are class-stable again.
		if ps.wordHome && inHome && m.holdersIn(block, s) && !m.setConfined(o, p, block, s) {
			return 0
		}
		adv = ps.l1Min
	} else {
		if !ps.wordHome || !inHome || !m.holdersIn(block, s) || !m.setConfined(o, p, block, s) {
			return 0
		}
		if o.kind == memory.Store && m.cfg.RelaxedWrites {
			// The store retires into the write buffer after the local
			// probe; only the local latency advances the clock.
			adv = ps.l1Min
			if class != cache.GlobalUpgrade {
				adv += ps.l2Min
			}
		} else {
			// Local probe + two controller services (home accept, final
			// requester-side) + the network's minimum request and reply
			// legs. Every global transaction path charges at least these.
			local := ps.l1Min
			if class != cache.GlobalUpgrade {
				local += ps.l2Min
			}
			var netMin uint64
			if H := m.layout.Home(block); H != p.id {
				netMin = m.net.MinLatency(p.id, H) + m.net.MinRemoteLatency()
			}
			adv = local + 2*ps.ctrlMin + netMin
		}
	}
	if ps.lookahead > 0 && adv > ps.lookahead {
		adv = ps.lookahead
	}
	if adv < 1 {
		adv = 1
	}
	return adv
}

// window returns the Chandy–Misra safe window W over every parked
// operation: all services with key strictly below W are shard-confined,
// and no operation — parked or future — can ever be submitted with a key
// below W. A MaxCycles guard caps W so batched operations never bypass
// the livelock check. W is the exact minimum of the incrementally
// maintained per-op bounds (see parWindow) — the same minimum the
// previous full-heap scan computed, read off the bound heap in O(1); the
// caller has already drained the dirty queues this iteration.
func (m *Machine) window() uint64 {
	w := m.par.win
	w.rounds++
	W := ^uint64(0)
	if m.cfg.MaxCycles > 0 {
		W = m.cfg.MaxCycles + 1
	}
	if len(w.bh) > 0 && w.bh[0].bound < W {
		W = w.bh[0].bound
	}
	return W
}

// runBatch services one shard's batch on its worker goroutine, in
// ascending key order. Panics (checker violations, engine bugs) are
// converted to a keyed parRes so the coordinator can pick the globally
// first failure deterministically.
func (m *Machine) runBatch(s *parShard) (res parRes) {
	cur := 0
	defer func() {
		if r := recover(); r != nil {
			o := s.batch[cur]
			res.err = recoveredError(o.proc.id, r)
			res.at, res.cpu = o.at, o.proc.id
		}
	}()
	for i, o := range s.batch {
		cur = i
		m.service(s.ln, o)
	}
	return res
}

// replaySeq merges every lane's buffered sequence events into exact
// serial service order and replays the prefix that can no longer be
// preceded by any future event: everything strictly before the earliest
// parked operation's key (everything, when final). The remainder stays in
// its lane's buffer, compacted in place.
//
// The merge is allocation-free: each lane's buffer is already key-sorted
// (its services are a subsequence of the globally ascending serial
// order), a key never appears in two lanes (one operation, one lane, and
// per-CPU clocks strictly increase), so a run-length k-way merge with
// per-lane cursors replaces the old gather + sort.Slice + carry copy.
func (m *Machine) replaySeq(final bool) {
	if m.seq == nil {
		return
	}
	ps := m.par
	floorAt, floorID := ^uint64(0), memory.NodeID(m.cfg.Nodes)
	if !final {
		if o := m.h.min(); o != nil {
			floorAt, floorID = o.at, o.proc.id
		}
	}
	lanes := ps.replayLanes[:0]
	if len(m.coord.seqBuf) > 0 {
		m.coord.seqPos = 0
		lanes = append(lanes, m.coord)
	}
	for _, s := range ps.shards {
		if len(s.ln.seqBuf) > 0 {
			s.ln.seqPos = 0
			lanes = append(lanes, s.ln)
		}
	}
	ps.replayLanes = lanes
	if len(lanes) == 0 {
		return
	}
	ps.rs.Replays++
	for {
		// Pick the lane with the smallest replayable head key and the
		// runner-up bound its run must stop at.
		var best *lane
		limAt, limID := floorAt, floorID
		for _, ln := range lanes {
			if ln.seqPos >= len(ln.seqBuf) {
				continue
			}
			e := &ln.seqBuf[ln.seqPos]
			if e.at > floorAt || (e.at == floorAt && e.cpu >= floorID) {
				continue // at/beyond the floor; so is the rest of the lane
			}
			if best == nil {
				best = ln
				continue
			}
			b := &best.seqBuf[best.seqPos]
			if e.at < b.at || (e.at == b.at && e.cpu < b.cpu) {
				limAt, limID = b.at, b.cpu
				best = ln
			} else if e.at < limAt || (e.at == limAt && e.cpu < limID) {
				limAt, limID = e.at, e.cpu
			}
		}
		if best == nil {
			break
		}
		buf := best.seqBuf
		i := best.seqPos
		for i < len(buf) {
			e := &buf[i]
			if e.at > limAt || (e.at == limAt && e.cpu >= limID) {
				break
			}
			if e.write {
				m.seq.GlobalWrite(e.block, e.cpu, e.src, e.elim)
			} else {
				m.seq.GlobalRead(e.block, e.cpu)
			}
			i++
		}
		best.seqPos = i
	}
	for _, ln := range lanes {
		if ln.seqPos > 0 {
			ln.seqBuf = ln.seqBuf[:copy(ln.seqBuf, ln.seqBuf[ln.seqPos:])]
			ln.seqPos = 0
		}
	}
}

// drainPar terminates every remaining program goroutine after a parallel-
// scheduler error: parked processors (heap entries plus any extra batch
// operations whose processors were never resumed) are woken in turn —
// each panics out through submit and reports a terminal event — and any
// processor still running its prologue is answered as it arrives. alive
// is the number of processors that have not yet sent a terminal event.
// Nil extras (already-resumed or in-flight slots of the streak's served
// list) are skipped.
func (m *Machine) drainPar(alive int, extra []*op) {
	m.aborted = true
	wake := func(o *op) {
		p := o.proc
		p.resume <- struct{}{}
		// p.active is stable here: its owner goroutine is parked, and its
		// last write happened before the channel operation that parked it.
		if p.active {
			<-m.park
		} else {
			<-m.events
		}
		alive--
	}
	for _, o := range extra {
		if o != nil {
			wake(o)
		}
	}
	for {
		o := m.h.pop()
		if o == nil {
			break
		}
		wake(o)
	}
	for alive > 0 {
		ev := <-m.events
		if ev.op != nil {
			ev.proc.resume <- struct{}{}
			continue
		}
		alive--
	}
}

// scheduleParOne is the one-shard degenerate of the parallel scheduler.
// Every batch the general machinery could ever cut is confined to the
// single shard, and a single-shard batch serviced sequentially in
// ascending key order is indistinguishable from a string of serial steps
// — so the window maintenance, the per-lane buffering, the sequence-log
// replay and the worker are pure overhead and are not built at all
// (newParSched). What remains IS the run-ahead handoff discipline, and
// this runs it verbatim: m.park stays nil, so processors drive popServe
// steps themselves (Proc.submit's conch path), self-wins cost zero
// context switches, and sequence notifications flow directly into the
// detector in exact serial order. The only residual cost over run-ahead
// is the RoundStats bookkeeping in popServe — the parbench single-core
// overhead guard holds the two schedulers to a ≤1.5x ratio.
func (m *Machine) scheduleParOne() (err error) {
	running := len(m.procs)
	m.live = len(m.procs)
	m.h.a = make([]*op, 0, len(m.procs))
	defer func() {
		if r := recover(); r != nil {
			cpu := memory.NoNode
			if o := m.servicing; o != nil {
				cpu = o.proc.id
				m.servicing = nil
				m.h.push(o)
			}
			m.drain(m.live, m.h.a)
			err = recoveredError(cpu, r)
		}
	}()

	// Collect every processor's first operation (prologues run
	// concurrently, exactly as under the other schedulers).
	for running > 0 {
		ev := <-m.events
		running--
		if ev.err != nil {
			m.drain(m.live-1, m.h.a)
			return eventError(ev)
		}
		if ev.op == nil {
			m.live--
			continue
		}
		m.h.push(ev.op)
	}
	if m.live == 0 {
		return m.finalCheck()
	}

	// First step: service the winner and hand it the conch.
	next, ok := m.popServe()
	if !ok {
		m.drain(m.live, m.h.a)
		return fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles)
	}
	m.grantLease(next.proc)
	next.proc.resume <- struct{}{}

	return <-m.done
}

// scheduleParallel drives the batch-streak / serial-step loop described
// in the package comment at the top of this file. It runs on the Run
// goroutine, like scheduleSerial; processors never hold the conch.
func (m *Machine) scheduleParallel() (err error) {
	ps := m.par
	if ps.single {
		return m.scheduleParOne()
	}
	running := len(m.procs)
	m.live = len(m.procs)
	m.h.a = make([]*op, 0, len(m.procs))
	m.coord.buffer = true

	ps.dirLimit = memory.Addr(m.alloc.Used())
	m.dir.Grow(ps.dirLimit)
	m.dir.SetShared(true)

	// Incremental safe window: the heap hooks keep parWindow tracking
	// exactly the parked operations, and winTrack arms the per-lane dirty
	// queues the drains consume.
	m.h.onPush = m.winRegister
	m.h.onPop = m.winUnregister
	m.winTrack = true

	for _, s := range ps.shards {
		go m.shardWorker(s)
	}
	defer func() {
		// Disarm the window hooks before anything touches the heap below:
		// the recover path re-pushes the in-flight op into a machine whose
		// state may be mid-mutation, where a bound computation could fault.
		m.h.onPush, m.h.onPop = nil, nil
		m.winTrack = false
		for _, s := range ps.shards {
			s.release(stopEpoch)
		}
		m.dir.SetShared(false)
		m.coord.buffer = false
		for _, s := range ps.shards {
			m.st.Merge(s.ln.st)
		}
		if r := recover(); r != nil {
			cpu := memory.NoNode
			if o := m.servicing; o != nil {
				cpu = o.proc.id
				m.servicing = nil
				m.h.push(o)
			}
			// ps.served still lists any serviced-but-unresumed (and popped-
			// but-unserviced) operations of an interrupted streak; resumed
			// and in-flight slots are nil.
			m.drainPar(m.live, ps.served)
			err = recoveredError(cpu, r)
		}
	}()

	// Collect every processor's first operation (prologues run
	// concurrently, exactly as under the other schedulers).
	for running > 0 {
		ev := <-m.events
		running--
		if ev.err != nil {
			m.drainPar(m.live-1, nil)
			return eventError(ev)
		}
		if ev.op == nil {
			m.live--
			continue
		}
		m.h.push(ev.op)
	}

	for m.live > 0 {
		if m.cancel != nil {
			if cerr := m.cancel(); cerr != nil {
				m.drainPar(m.live, nil)
				return &CancelledError{Err: cerr}
			}
		}
		head := m.h.min()
		if head == nil {
			return fmt.Errorf("engine: deadlock — %d live processors but none runnable", m.live)
		}
		// Absorb the state changes of the previous step into the cached
		// per-op bounds (O(events since last drain), not O(parked)).
		m.drainWinDirty()
		// A lone parked operation can never share a round with anything,
		// and a singleton sub-batch is serviced on the coordinator anyway,
		// so skip the window read entirely.
		W := head.at
		if len(m.h.a) > 1 {
			W = m.window()
		}
		if head.at >= W {
			// Serial step: coordinator services the head exactly as the
			// run-ahead scheduler would, then resumes its processor.
			// (popServe counts it in RoundStats.SerialSteps.)
			next, ok := m.popServe()
			if !ok {
				m.drainPar(m.live, nil)
				return fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles)
			}
			m.grantLease(next.proc)
			next.proc.resume <- struct{}{}
			ev := <-m.park
			if ev.err != nil {
				m.drainPar(m.live-1, nil)
				return eventError(ev)
			}
			if ev.op == nil {
				m.live--
			} else {
				m.h.push(ev.op)
			}
			if len(m.coord.seqBuf) >= seqFlushThreshold {
				m.replaySeq(false)
			}
			continue
		}

		// Batch streak: cut a sub-batch of everything below W, service it
		// without resuming anyone, absorb its effects, recompute the
		// window — additionally capped by the floor, the minimum
		// (clock, id) over serviced-but-unresumed processors, which
		// lower-bounds every submission they can make once resumed — and
		// keep cutting until the window closes or the fuse limit trips.
		// Sub-batch keys ascend across sub-rounds (each later cut draws
		// ops the earlier window excluded), so ps.served stays globally
		// key-sorted and the single resume phase below remains the exact
		// serial resume order.
		ps.served = ps.served[:0]
		floorAt, floorID := ^uint64(0), memory.NodeID(m.cfg.Nodes)
		for {
			base := len(ps.served)
			for o := m.h.min(); o != nil && o.at < W &&
				(o.at < floorAt || (o.at == floorAt && o.proc.id < floorID)); o = m.h.min() {
				m.h.pop()
				ps.served = append(ps.served, o)
			}
			sub := ps.served[base:]
			if len(sub) == 0 {
				break
			}
			if base > 0 {
				ps.rs.FusedRounds++
			}

			// Dispatch policy: a sub-batch confined to one shard gains
			// nothing from a worker (its services are sequential either
			// way), and a tiny multi-shard one costs more in handshakes
			// than it wins — the coordinator services those itself on the
			// owning shards' lanes, which is observably identical to the
			// worker path (same lanes, same scoped checkers, same order).
			spread1 := true
			first := ps.nodeShard[sub[0].proc.id]
			for _, o := range sub[1:] {
				if ps.nodeShard[o.proc.id] != first {
					spread1 = false
					break
				}
			}
			if spread1 || len(sub) < parFanoutMin {
				ps.rs.InlineRounds++
				for i, o := range sub {
					// The in-flight slot is nil while m.servicing owns the
					// op: the recover path re-pushes m.servicing and wakes
					// the remaining served entries, so neither may cover
					// this op twice.
					sub[i] = nil
					m.servicing = o
					m.service(ps.shards[ps.nodeShard[o.proc.id]].ln, o)
					m.servicing = nil
					sub[i] = o
				}
			} else {
				ps.rs.WorkerRounds++
				for _, o := range sub {
					s := ps.shards[ps.nodeShard[o.proc.id]]
					s.batch = append(s.batch, o)
				}
				ps.epoch++
				for _, s := range ps.shards {
					if len(s.batch) > 0 {
						if s.release(ps.epoch) {
							ps.rs.Wakeups++
						}
					}
				}
				var firstErr error
				var errAt uint64
				var errCPU memory.NodeID
				for _, s := range ps.shards {
					if len(s.batch) == 0 {
						continue
					}
					m.waitShard(s, ps.epoch)
					s.batch = s.batch[:0]
					if res := s.res; res.err != nil &&
						(firstErr == nil || res.at < errAt || (res.at == errAt && res.cpu < errCPU)) {
						firstErr, errAt, errCPU = res.err, res.at, res.cpu
					}
				}
				if firstErr != nil {
					// Every batched processor is still parked (workers
					// never resume); wake them all alongside the heap's.
					m.drainPar(m.live, ps.served)
					return firstErr
				}
			}

			for _, o := range sub {
				p := o.proc
				if p.clock < floorAt || (p.clock == floorAt && p.id < floorID) {
					floorAt, floorID = p.clock, p.id
				}
			}
			if uint64(len(ps.served)) >= ps.fuse || m.h.min() == nil {
				break
			}
			m.drainWinDirty()
			W = m.window()
		}

		// Resume phase: wake the serviced processors one at a time in
		// ascending key order, each under a run-ahead lease bounded by the
		// earliest possible next submission — the heap minimum or any
		// still-unresumed serviced processor's clock (suffix minima).
		n := len(ps.served)
		if cap(ps.sufAt) < n+1 {
			ps.sufAt = make([]uint64, n+1)
			ps.sufID = make([]memory.NodeID, n+1)
		}
		sufAt, sufID := ps.sufAt[:n+1], ps.sufID[:n+1]
		sufAt[n], sufID[n] = ^uint64(0), memory.NodeID(m.cfg.Nodes)
		for i := n - 1; i >= 0; i-- {
			sufAt[i], sufID[i] = sufAt[i+1], sufID[i+1]
			p := ps.served[i].proc
			if p.clock < sufAt[i] || (p.clock == sufAt[i] && p.id < sufID[i]) {
				sufAt[i], sufID[i] = p.clock, p.id
			}
		}
		for i := 0; i < n; i++ {
			o := ps.served[i]
			ps.served[i] = nil // resumed (or about to be): off the abort list
			p := o.proc
			p.leaseAt, p.leaseID = sufAt[i+1], sufID[i+1]
			if h := m.h.min(); h != nil &&
				(h.at < p.leaseAt || (h.at == p.leaseAt && h.proc.id < p.leaseID)) {
				p.leaseAt, p.leaseID = h.at, h.proc.id
			}
			p.resume <- struct{}{}
			ev := <-m.park
			if ev.err != nil {
				m.drainPar(m.live-1, ps.served)
				return eventError(ev)
			}
			if ev.op == nil {
				m.live--
			} else {
				m.h.push(ev.op)
			}
		}

		m.replaySeq(false)
		if m.coord.checker != nil && m.cfg.CheckLevel >= check.Full {
			for _, s := range ps.shards {
				m.coord.sinceSweep += s.ln.sinceSweep
				s.ln.sinceSweep = 0
			}
			if m.coord.sinceSweep >= m.checkEvery {
				m.coord.sinceSweep = 0
				if cerr := m.coord.checker.CheckAll(W); cerr != nil {
					m.drainPar(m.live, nil)
					return cerr
				}
			}
		}
	}

	m.replaySeq(true)
	return m.finalCheck()
}
