package engine

import (
	"fmt"

	"lsnuma/internal/memory"
)

// Synchronization primitives built from simulated loads, stores and atomic
// read-modify-writes, so they exhibit the real coherence behaviour the
// paper studies: test-and-set is a load-store sequence (SPARC ldstub),
// spinning reads hit the local cache until the holder's release
// invalidates the spinners' copies, and contended locks migrate between
// processors.
//
// The Go-side fields (held, count, sense...) are safe to touch without
// host synchronization: the engine's scheduler runs exactly one program
// goroutine at a time, and program code between two simulated memory
// operations is atomic with respect to all other simulated processors.

// Lock is a test-and-test-and-set spin lock occupying one simulated word.
type Lock struct {
	addr    memory.Addr
	held    bool
	holder  memory.NodeID
	backoff int

	// Acquisitions and Contended count lock usage for workload reports
	// (e.g. the OLTP critical-section statistics of §5.4).
	Acquisitions uint64
	Contended    uint64
}

// NewLock allocates a lock word from the allocator under the given region
// name. Locks allocated consecutively may share a cache block — exactly
// like adjacent pthread mutexes in the paper's workload; pad with
// a.AllocBlocks if that is not wanted.
func NewLock(a *memory.Allocator, name string) *Lock {
	return &Lock{addr: a.Alloc(name, memory.WordSize, 0), holder: memory.NoNode, backoff: 4}
}

// Addr returns the lock word's simulated address.
func (l *Lock) Addr() memory.Addr { return l.addr }

// TryAcquire attempts a single test-and-set and reports success.
func (l *Lock) TryAcquire(p *Proc) bool {
	p.RMW(l.addr)
	if l.held {
		return false
	}
	l.held = true
	l.holder = p.ID()
	l.Acquisitions++
	return true
}

// Acquire spins until the lock is held by p. The spin reads the lock word
// (cache-resident until invalidated by the releaser) with randomized
// exponential backoff — deterministic per processor, like the
// test-and-test-and-set loops in real spin-lock implementations. The
// jitter matters: in a deterministic simulator two contenders with
// identical timing would otherwise race for the word in lockstep and one
// could starve forever.
func (l *Lock) Acquire(p *Proc) {
	contended := false
	backoff := l.backoff
	for {
		if l.TryAcquire(p) {
			if contended {
				l.Contended++
			}
			return
		}
		contended = true
		p.SpinRead(l.addr,
			func() bool { return !l.held },
			func() int {
				n := backoff + p.Rand().Intn(backoff)
				if backoff < 1024 {
					backoff *= 2
				}
				return n
			})
		p.Compute(p.Rand().Intn(16)) // desynchronize the test-and-set
	}
}

// Release frees the lock. It panics if p does not hold it.
func (l *Lock) Release(p *Proc) {
	if !l.held || l.holder != p.ID() {
		panic(fmt.Sprintf("engine: CPU %d releasing lock %#x held by %d (held=%v)",
			p.ID(), l.addr, l.holder, l.held))
	}
	l.held = false
	l.holder = memory.NoNode
	p.Write(l.addr)
}

// Holder returns the current holder, or NoNode.
func (l *Lock) Holder() memory.NodeID {
	if !l.held {
		return memory.NoNode
	}
	return l.holder
}

// TicketLock is a fair FIFO lock: one word for the ticket counter, one for
// the now-serving counter.
type TicketLock struct {
	ticketAddr  memory.Addr
	servingAddr memory.Addr
	nextTicket  uint64
	nowServing  uint64
}

// NewTicketLock allocates the two lock words under the given region name.
func NewTicketLock(a *memory.Allocator, name string) *TicketLock {
	return &TicketLock{
		ticketAddr:  a.Alloc(name, memory.WordSize, 0),
		servingAddr: a.Alloc(name, memory.WordSize, 0),
	}
}

// Acquire takes a ticket (fetch-and-increment: a load-store sequence) and
// spins on the now-serving word.
func (t *TicketLock) Acquire(p *Proc) {
	p.RMW(t.ticketAddr)
	my := t.nextTicket
	t.nextTicket++
	p.SpinRead(t.servingAddr,
		func() bool { return t.nowServing == my },
		func() int { return 4 })
}

// Release passes the lock to the next ticket holder.
func (t *TicketLock) Release(p *Proc) {
	t.nowServing++
	p.Write(t.servingAddr)
}

// Counter is a shared fetch-and-add word.
type Counter struct {
	addr  memory.Addr
	value int64
}

// NewCounter allocates a counter word.
func NewCounter(a *memory.Allocator, name string) *Counter {
	return &Counter{addr: a.Alloc(name, memory.WordSize, 0)}
}

// Addr returns the counter's simulated address.
func (c *Counter) Addr() memory.Addr { return c.addr }

// Add atomically adds delta (a load-store sequence) and returns the new
// value.
func (c *Counter) Add(p *Proc, delta int64) int64 {
	p.RMW(c.addr)
	c.value += delta
	return c.value
}

// Load reads the counter.
func (c *Counter) Load(p *Proc) int64 {
	p.Read(c.addr)
	return c.value
}

// Barrier is a sense-reversing centralized barrier.
type Barrier struct {
	countAddr  memory.Addr
	senseAddr  memory.Addr
	parties    int
	count      int
	sense      bool
	localSense []bool
}

// NewBarrier allocates barrier state for the given number of parties.
func NewBarrier(a *memory.Allocator, name string, parties, cpus int) *Barrier {
	return &Barrier{
		countAddr:  a.Alloc(name, memory.WordSize, 0),
		senseAddr:  a.Alloc(name, memory.WordSize, 0),
		parties:    parties,
		localSense: make([]bool, cpus),
	}
}

// Wait blocks (in simulated time) until all parties have arrived.
func (b *Barrier) Wait(p *Proc) {
	id := p.ID()
	ls := !b.localSense[id]
	b.localSense[id] = ls

	p.RMW(b.countAddr) // fetch-and-increment the arrival counter
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.sense = ls
		p.Write(b.senseAddr) // release: invalidates all spinners
		return
	}
	p.SpinRead(b.senseAddr,
		func() bool { return b.sense == ls },
		func() int { return 8 })
}

// RWLock is a readers-writer spin lock built from a lock word and a
// reader-count word (the classic database latch). Reads of hot structures
// take the shared mode; writers drain readers, producing the
// write-to-read-shared invalidation pattern of the paper's OLTP analysis.
type RWLock struct {
	wordAddr    memory.Addr // writer flag word
	readersAddr memory.Addr // reader count word
	writer      bool
	readers     int
	holderW     memory.NodeID
}

// NewRWLock allocates the two latch words under the given region name.
func NewRWLock(a *memory.Allocator, name string) *RWLock {
	return &RWLock{
		wordAddr:    a.Alloc(name, memory.WordSize, 0),
		readersAddr: a.Alloc(name, memory.WordSize, 0),
		holderW:     memory.NoNode,
	}
}

// RLock acquires the latch in shared mode.
func (l *RWLock) RLock(p *Proc) {
	backoff := 4
	for {
		// Wait until no writer holds or wants the latch.
		p.SpinRead(l.wordAddr,
			func() bool { return !l.writer },
			func() int {
				n := backoff + p.Rand().Intn(backoff)
				if backoff < 512 {
					backoff *= 2
				}
				return n
			})
		// Register as a reader, then re-check the writer flag (the
		// standard acquire-recheck dance).
		p.RMW(l.readersAddr)
		l.readers++
		p.Read(l.wordAddr)
		if !l.writer {
			return
		}
		p.RMW(l.readersAddr)
		l.readers--
	}
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock(p *Proc) {
	if l.readers <= 0 {
		panic("engine: RUnlock without readers")
	}
	p.RMW(l.readersAddr)
	l.readers--
}

// Lock acquires the latch exclusively: set the writer flag, then drain
// the readers.
func (l *RWLock) Lock(p *Proc) {
	backoff := 4
	for {
		p.RMW(l.wordAddr)
		if !l.writer {
			l.writer = true
			l.holderW = p.ID()
			break
		}
		p.Compute(backoff + p.Rand().Intn(backoff))
		if backoff < 512 {
			backoff *= 2
		}
	}
	p.SpinRead(l.readersAddr,
		func() bool { return l.readers == 0 },
		func() int { return 8 + p.Rand().Intn(8) })
}

// Unlock releases the exclusive hold.
func (l *RWLock) Unlock(p *Proc) {
	if !l.writer || l.holderW != p.ID() {
		panic(fmt.Sprintf("engine: CPU %d unlocking RWLock held by %d", p.ID(), l.holderW))
	}
	l.writer = false
	l.holderW = memory.NoNode
	p.Write(l.wordAddr)
}
