package engine

import (
	"fmt"
	"math/rand"

	"lsnuma/internal/cache"
	"lsnuma/internal/memory"
)

// abortProgram is the sentinel panic Proc.submit raises once the
// scheduler has failed and is draining: it unwinds the program goroutine
// (terminating spin loops that would otherwise never return), and the
// goroutine's recover reports it back as the processor's final event —
// unless notify is false, which marks the goroutine that initiated the
// abort itself (its abortConch already delivered the error and nobody
// is listening for a further event).
type abortProgram struct{ notify bool }

// isAbort reports whether a recovered panic value is the drain sentinel.
func isAbort(r any) bool {
	_, ok := r.(abortProgram)
	return ok
}

// op is one memory operation submitted to the scheduler.
type op struct {
	proc *Proc
	at   uint64 // processor clock at issue
	addr memory.Addr
	size uint32
	kind memory.Kind
	rmw  bool // atomic read-modify-write (e.g. SPARC ldstub/swap)
	excl bool // exclusive-read annotation (software prefetch-exclusive)

	// spin marks a declarative spin-wait (Proc.SpinRead): after each
	// service the scheduler evaluates spin.stop and, while it is false,
	// re-arms the read spin.step busy cycles later without waking the
	// processor's goroutine (Machine.popServe).
	spin *spinState

	// Incremental safe-window bookkeeping (parallel scheduler only; see
	// parWindow). bound is the cached conservative Chandy–Misra bound for
	// this parked op; bhIdx its position in the bound heap; deps the node
	// footprint whose state the bound was computed from (the issuing node
	// plus the homes of the block and every candidate L2 victim), with
	// depPos the op's back-indices inside parWindow.homeOps; winStamp
	// dedups recomputation within one dirty drain.
	bound    uint64
	bhIdx    int32
	deps     []memory.NodeID
	depPos   []int32
	winStamp uint64
}

// spinState is the predicate pair of a declarative spin-wait. Both
// closures run on whichever goroutine holds the conch; the
// one-goroutine-at-a-time discipline makes that as safe as running them
// on the spinning processor's own goroutine, in exactly the same order.
type spinState struct {
	stop func() bool // terminate the spin after the read just serviced?
	step func() int  // busy cycles until the next read
}

// Proc is a simulated processor's handle onto the machine, passed to its
// Program. All methods must be called only from that program's goroutine.
type Proc struct {
	m      *Machine
	id     memory.NodeID
	clock  uint64
	src    memory.Source
	resume chan struct{}
	rng    *rand.Rand

	// writeDrain is the completion time of the last buffered store under
	// the relaxed-consistency model (zero when modeling SC).
	writeDrain uint64
	// lastDone is the clock after the previous operation completed (used
	// to compute trace capture gaps).
	lastDone uint64

	// pending is the processor's single in-flight operation, reused across
	// submissions: submit blocks until the scheduler has serviced it, so
	// one op per processor suffices and the per-access heap allocation of
	// a fresh op is avoided.
	pending op

	// leaseAt/leaseID are the processor's run-ahead lease: the (clock, id)
	// horizon of the best other pending operation, granted by the
	// scheduler on resume. Operations ordering strictly before the
	// horizon are serviced inline with no scheduler handshake (see
	// runInline). Zero under the serial scheduler, which never grants
	// leases, so the inline path is dead there (the zero lease rejects
	// every operation, including during the concurrent startup phase).
	leaseAt uint64
	leaseID memory.NodeID

	// active marks a processor that has completed its first handoff-
	// scheduler submission: from then on, whenever its goroutine runs it
	// holds the conch and drives scheduler steps itself (see submit).
	// Always false under the serial scheduler. Written only by this
	// processor's goroutine.
	active bool
}

// ID returns the processor's node id.
func (p *Proc) ID() memory.NodeID { return p.id }

// Clock returns the processor's current local time in cycles.
func (p *Proc) Clock() uint64 { return p.clock }

// Machine returns the machine the processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Rand returns a per-processor deterministic random source (seeded by CPU
// id), for workloads that need randomized but reproducible behaviour.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(0x9E3779B9*int64(p.id) + 1))
	}
	return p.rng
}

// SetSource sets the source class (application, library, OS) attributed to
// subsequent accesses, for the Table 2 breakdown.
func (p *Proc) SetSource(s memory.Source) { p.src = s }

// Source returns the current source class.
func (p *Proc) Source() memory.Source { return p.src }

// Compute advances the processor's clock by n busy cycles without touching
// memory. Computation is local, so it needs no scheduling round-trip; the
// clock ordering with other processors is enforced at the next memory
// operation.
func (p *Proc) Compute(n int) {
	if n <= 0 {
		return
	}
	p.clock += uint64(n)
	p.m.st.CPUs[p.id].Busy += uint64(n)
}

// submit services one memory operation. Fast path: inline in this
// goroutine when the run-ahead lease permits (runInline). Otherwise,
// under the handoff scheduler, this goroutine holds the conch and drives
// one scheduler step itself: park the operation in the heap, pop the
// global minimum, service it, and either continue (own op won — zero
// context switches) or hand the conch to the winner and block until a
// later step services our operation (one switch). The serial scheduler
// and the processor's very first operation instead go through the events
// channel to the goroutine running Machine.Run. On every return the
// operation has been serviced and the clock advanced by the modeled
// latency.
func (p *Proc) submit(o op) {
	o.proc = p
	o.at = p.clock
	if p.runInline(&o) {
		return
	}
	// Preserve the pending op's window-footprint scratch across
	// submissions: the fresh o carries nil slices, and overwriting them
	// would cost the parallel window one deps+depPos allocation per
	// parked op (winDeref has already emptied both by the time the
	// processor resumes and resubmits).
	deps, depPos := p.pending.deps, p.pending.depPos
	p.pending = o
	p.pending.deps, p.pending.depPos = deps[:0], depPos[:0]
	m := p.m
	if m.serial || !p.active {
		// Serial scheduler, or the first operation (collected centrally
		// by Machine.schedule while the prologues run concurrently).
		m.events <- event{proc: p, op: &p.pending}
		<-p.resume
		if m.aborted {
			panic(abortProgram{notify: true})
		}
		p.active = !m.serial
		return
	}
	if m.park != nil {
		// Parallel scheduler, more than one shard: park with the
		// coordinator and sleep until a batch streak (or serial step)
		// services the operation. The coordinator alone decides service
		// order; program goroutines never drive scheduler steps here.
		// (At a single shard m.park is nil and the conch handoff below
		// runs instead — see scheduleParOne.)
		m.park <- event{proc: p, op: &p.pending}
		<-p.resume
		if m.aborted {
			panic(abortProgram{notify: true})
		}
		return
	}
	m.h.push(&p.pending)
	next, ok := m.popServe()
	if !ok {
		// next was re-parked by popServe; park ourselves with the rest.
		m.abortConch(p, fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles))
		panic(abortProgram{notify: false})
	}
	m.grantLease(next.proc)
	if next.proc == p {
		return // our own operation won: keep the conch
	}
	next.proc.resume <- struct{}{}
	<-p.resume
	if m.aborted {
		panic(abortProgram{notify: true})
	}
}

// SpinRead is the engine's spin-wait primitive: simulated word reads of
// addr until stop() holds, separated by step() busy cycles — exactly the
// load / test / backoff loop it replaces, with identical simulated timing
// and service order. Under the handoff scheduler the iterations after the
// first are serviced declaratively by whichever goroutine holds the conch
// (Machine.popServe), so a spinning processor costs no goroutine handoffs
// until its predicate flips; under the serial scheduler (and during the
// concurrent startup phase) it degrades to the plain loop.
func (p *Proc) SpinRead(addr memory.Addr, stop func() bool, step func() int) {
	p.Read(addr)
	if stop() {
		return
	}
	// p.active is guaranteed by the Read above except under the serial
	// scheduler, which never activates processors.
	if p.m.serial {
		for {
			p.Compute(step())
			p.Read(addr)
			if stop() {
				return
			}
		}
	}
	p.Compute(step())
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Load,
		spin: &spinState{stop: stop, step: step}})
}

// runInline services o in the processor's own goroutine under its
// run-ahead lease, with no scheduler handshake, and reports whether it
// did. It may do so only when both hold:
//
//   - (o.at, p.id) orders strictly before the lease horizon — these are
//     exactly the operations the scheduler would pick next anyway, so
//     servicing them here preserves the global service order bit for bit;
//   - the operation is purely local: single-block, not an atomic, within
//     the MaxCycles guard, and classified hit/upgrade-free without side
//     effects — everything global (directory, network, invalidations,
//     the livelock guard) stays on the scheduler path.
//
// While this processor runs ahead, the scheduler is blocked receiving and
// every other processor is blocked on its resume channel, so the
// one-goroutine-at-a-time discipline (and with it the race-freedom of the
// shared simulator state) is unchanged.
func (p *Proc) runInline(o *op) bool {
	if o.at > p.leaseAt || (o.at == p.leaseAt && p.id >= p.leaseID) {
		return false
	}
	if o.rmw || o.spin != nil {
		return false
	}
	m := p.m
	if m.cfg.MaxCycles > 0 && o.at > m.cfg.MaxCycles {
		return false
	}
	if !m.layout.SameBlock(o.addr, o.addr+memory.Addr(o.size)-1) {
		return false
	}
	if m.nodes[p.id].caches.Classify(m.layout.Block(o.addr), o.kind) != cache.NoGlobal {
		return false
	}
	ln := m.coord
	ln.curAt, ln.curCPU = o.at, p.id
	if ln.checker != nil {
		// Same pre-transaction check as Machine.service (single block by
		// the guard above). A violation panics out of the program function
		// into its goroutine's recover, which aborts the run.
		if err := ln.checker.CheckBlock(o.addr, o.at); err != nil {
			panic(err)
		}
	}
	m.accessBlock(ln, p, o.addr, o.size, o.kind, false, o.excl)
	p.lastDone = p.clock
	m.runAheadOps++
	if m.hooks {
		m.afterOp(ln, o)
	}
	return true
}

// Read performs a word-sized load at addr.
func (p *Proc) Read(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Load})
}

// ReadN performs a load of size bytes at addr (split per block as needed).
func (p *Proc) ReadN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Load})
}

// Write performs a word-sized store at addr.
func (p *Proc) Write(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Store})
}

// WriteN performs a store of size bytes at addr.
func (p *Proc) WriteN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Store})
}

// ReadEx performs a word-sized load annotated exclusive: under a machine
// configured with SoftwareExclusive the read request is combined with an
// ownership acquisition (the compiler techniques of §2.1); otherwise it
// behaves exactly like Read.
func (p *Proc) ReadEx(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Load, excl: true})
}

// ReadExN is ReadEx for a size-byte access.
func (p *Proc) ReadExN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Load, excl: true})
}

// RMW performs an atomic word-sized read-modify-write at addr: a load
// immediately followed by a store to the same location with no intervening
// access from any other processor — the hardware primitive (ldstub, swap)
// behind locks, and the archetypal load-store sequence of the paper.
func (p *Proc) RMW(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Store, rmw: true})
}
