package engine

import (
	"math/rand"

	"lsnuma/internal/memory"
)

// op is one memory operation submitted to the scheduler.
type op struct {
	proc *Proc
	at   uint64 // processor clock at issue
	addr memory.Addr
	size uint32
	kind memory.Kind
	rmw  bool // atomic read-modify-write (e.g. SPARC ldstub/swap)
	excl bool // exclusive-read annotation (software prefetch-exclusive)
}

// Proc is a simulated processor's handle onto the machine, passed to its
// Program. All methods must be called only from that program's goroutine.
type Proc struct {
	m      *Machine
	id     memory.NodeID
	clock  uint64
	src    memory.Source
	resume chan struct{}
	rng    *rand.Rand

	// writeDrain is the completion time of the last buffered store under
	// the relaxed-consistency model (zero when modeling SC).
	writeDrain uint64
	// lastDone is the clock after the previous operation completed (used
	// to compute trace capture gaps).
	lastDone uint64

	// pending is the processor's single in-flight operation, reused across
	// submissions: submit blocks until the scheduler has serviced it, so
	// one op per processor suffices and the per-access heap allocation of
	// a fresh op is avoided.
	pending op
}

// ID returns the processor's node id.
func (p *Proc) ID() memory.NodeID { return p.id }

// Clock returns the processor's current local time in cycles.
func (p *Proc) Clock() uint64 { return p.clock }

// Machine returns the machine the processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Rand returns a per-processor deterministic random source (seeded by CPU
// id), for workloads that need randomized but reproducible behaviour.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(0x9E3779B9*int64(p.id) + 1))
	}
	return p.rng
}

// SetSource sets the source class (application, library, OS) attributed to
// subsequent accesses, for the Table 2 breakdown.
func (p *Proc) SetSource(s memory.Source) { p.src = s }

// Source returns the current source class.
func (p *Proc) Source() memory.Source { return p.src }

// Compute advances the processor's clock by n busy cycles without touching
// memory. Computation is local, so it needs no scheduling round-trip; the
// clock ordering with other processors is enforced at the next memory
// operation.
func (p *Proc) Compute(n int) {
	if n <= 0 {
		return
	}
	p.clock += uint64(n)
	p.m.st.CPUs[p.id].Busy += uint64(n)
}

// submit fills the processor's reusable operation slot, hands it to the
// scheduler, and blocks until it has been serviced (the processor's clock
// has then been advanced by the modeled latency).
func (p *Proc) submit(o op) {
	o.proc = p
	o.at = p.clock
	p.pending = o
	p.m.events <- event{proc: p, op: &p.pending}
	<-p.resume
}

// Read performs a word-sized load at addr.
func (p *Proc) Read(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Load})
}

// ReadN performs a load of size bytes at addr (split per block as needed).
func (p *Proc) ReadN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Load})
}

// Write performs a word-sized store at addr.
func (p *Proc) Write(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Store})
}

// WriteN performs a store of size bytes at addr.
func (p *Proc) WriteN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Store})
}

// ReadEx performs a word-sized load annotated exclusive: under a machine
// configured with SoftwareExclusive the read request is combined with an
// ownership acquisition (the compiler techniques of §2.1); otherwise it
// behaves exactly like Read.
func (p *Proc) ReadEx(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Load, excl: true})
}

// ReadExN is ReadEx for a size-byte access.
func (p *Proc) ReadExN(addr memory.Addr, size uint32) {
	if size == 0 {
		return
	}
	p.submit(op{addr: addr, size: size, kind: memory.Load, excl: true})
}

// RMW performs an atomic word-sized read-modify-write at addr: a load
// immediately followed by a store to the same location with no intervening
// access from any other processor — the hardware primitive (ldstub, swap)
// behind locks, and the archetypal load-store sequence of the paper.
func (p *Proc) RMW(addr memory.Addr) {
	p.submit(op{addr: addr, size: memory.WordSize, kind: memory.Store, rmw: true})
}
