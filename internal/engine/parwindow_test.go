package engine

import (
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// TestWindowScanIsIncremental is the regression guard for the parallel
// scheduler's incremental safe-window maintenance: on a workload of
// processors touching only their own node-local pages, each serviced
// operation dirties at most its own home, so per-round bound maintenance
// must visit O(dirty) parked operations — not rescan all P parked
// operations every round the way the original full confinement scan did.
// The guard holds recomputes to a small multiple of heap pushes; the old
// behaviour is rounds x parked, orders of magnitude larger.
func TestWindowScanIsIncremental(t *testing.T) {
	const nodes = 32
	cfg := Config{
		Nodes:          nodes,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         DefaultTiming(),
		Protocol:       protocol.New(protocol.LS, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      200_000_000,
		Sched:          SchedParallel,
		Shards:         4,
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each processor walks its own page (round-robin placement homes page
	// i at node i%nodes, so page p is local to CPU p): all misses are
	// private, and the only directory mutations are at the issuer's own
	// home.
	prog := func(p *Proc) {
		base := memory.Addr(int(p.ID())) * 4096
		for i := 0; i < 400; i++ {
			a := base + memory.Addr((i%128)*16)
			p.Read(a)
			p.Write(a)
			p.Compute(7)
		}
	}
	progs := make([]Program, nodes)
	for i := range progs {
		progs[i] = prog
	}
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	rounds, recomputes, pushes := m.WindowStats()
	if pushes == 0 || rounds == 0 {
		t.Fatalf("window never engaged: rounds=%d recomputes=%d pushes=%d", rounds, recomputes, pushes)
	}
	t.Logf("rounds=%d recomputes=%d pushes=%d", rounds, recomputes, pushes)
	// Incremental: recomputes track the dirty set (a few per serviced
	// global operation). The pre-incremental scan recomputed every parked
	// op every round — about rounds*nodes, far beyond this budget.
	if recomputes > 8*pushes {
		t.Errorf("bound recomputations not O(dirty): recomputes=%d > 8*pushes=%d", recomputes, 8*pushes)
	}
	if full := rounds * nodes; recomputes > full/4 {
		t.Errorf("bound recomputations near full-rescan volume: recomputes=%d vs rounds*nodes=%d", recomputes, full)
	}
}
