package engine

import (
	"fmt"
	"math/rand"
	"strings"

	"lsnuma/internal/directory"
	"lsnuma/internal/fault"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
	"lsnuma/internal/stats"
)

// defaultProgressWindow is the forward-progress watchdog's stall budget
// when Config.ProgressWindow is zero: a transaction stuck in NACK/loss
// recovery for this many cycles fails the run.
const defaultProgressWindow = 4_000_000

// resil is the machine's resilient transaction layer, nil when DirMSHRs,
// Retry and MsgFaults are all off (the classic reliable, infinitely-
// buffered model — a nil resil costs one comparison per message).
//
// The two recovery paths deliberately differ in timing visibility:
//
//   - The MSHR path (finite home transaction buffers, Machine.acquire) is
//     fully architectural: NACKs delay the transaction and backoff jitter
//     is drawn from a dedicated seeded stream. Home saturation depends
//     only on the configuration, so a faulty and a fault-free run of the
//     same config see the identical NACK sequence and jitter draws.
//
//   - The message-fault path (Machine.deliver) is architecturally
//     transparent: the simulated programs synchronize through spin locks,
//     so any timing shift would change lock-acquisition interleavings and
//     with them every Load/Store count. Retransmissions are therefore
//     accounted out-of-band — the extra messages enter the traffic
//     counters and the backoff waits enter stats.Resilience, but no port
//     is occupied and no clock advances — modeling retries that ride on
//     spare interconnect capacity. This is exactly what makes a lossy run
//     comparable field-for-field (minus traffic) to the lossless run,
//     the TestResilientMatrix invariant.
type resil struct {
	policy protocol.RetryPolicy
	window uint64                // forward-progress stall budget in cycles
	mshrs  *directory.TxnBuffers // nil = unlimited home buffers
	faults *fault.MsgInjector    // nil = reliable interconnect
	jitter *rand.Rand            // architectural backoff jitter (MSHR path)

	// Open-transaction buffer bookkeeping (transactions never nest:
	// acquire sets it, complete clears it).
	home memory.NodeID
	slot int

	// retriers records which nodes retried each block, for the starvation
	// report's requester set.
	retriers map[memory.Addr]directory.Bitset
}

func newResil(cfg Config) *resil {
	r := &resil{
		policy:   cfg.Retry,
		window:   cfg.ProgressWindow,
		faults:   cfg.MsgFaults,
		slot:     -1,
		retriers: make(map[memory.Addr]directory.Bitset),
	}
	if r.window == 0 {
		r.window = defaultProgressWindow
	}
	if cfg.DirMSHRs > 0 {
		r.mshrs = directory.NewTxnBuffers(cfg.Nodes, cfg.DirMSHRs)
	}
	if r.policy.Enabled() {
		r.jitter = rand.New(rand.NewSource(r.policy.JitterSeed))
	}
	return r
}

// noteRetry records node n retrying block, for starvation diagnostics.
func (r *resil) noteRetry(block memory.Addr, n memory.NodeID) {
	b := r.retriers[block]
	b.Add(n)
	r.retriers[block] = b
}

// StarvationError is the forward-progress watchdog's report: a
// transaction exceeded its retry budget or made no progress for the
// configured window. It carries the stuck block, the set of nodes that
// retried it, and the machine-wide retry histogram at the time of death.
type StarvationError struct {
	CPU        memory.NodeID // requester of the stuck transaction
	Block      memory.Addr   // block the transaction targeted
	Home       memory.NodeID // the block's home node
	Cycle      uint64        // simulated time the watchdog fired
	Retries    int           // retries attempted on the stuck transaction
	Budget     int           // configured retry budget (0 = retries disabled)
	Stalled    uint64        // cycles the transaction spent in recovery
	Window     uint64        // configured progress window
	Cause      string
	Requesters []memory.NodeID // nodes that retried the stuck block
	RetryHist  [stats.NumRetryBuckets]uint64
}

func (e *StarvationError) Error() string {
	return fmt.Sprintf("engine: starvation: CPU %d stuck on block %#x (home %d) at cycle %d: %s (retries %d/%d, stalled %d of %d-cycle window)",
		e.CPU, e.Block, e.Home, e.Cycle, e.Cause, e.Retries, e.Budget, e.Stalled, e.Window)
}

// Diagnosis renders the full watchdog report for repro bundles: the
// headline, the stuck block's requester set, and the retry histogram.
func (e *StarvationError) Diagnosis() string {
	var b strings.Builder
	b.WriteString(e.Error())
	fmt.Fprintf(&b, "\nrequesters of the stuck block: %v", e.Requesters)
	b.WriteString("\nrecovered-transaction retry histogram:")
	any := false
	for i, n := range e.RetryHist {
		if n > 0 {
			fmt.Fprintf(&b, " %s:%d", stats.RetryBucketLabels[i], n)
			any = true
		}
	}
	if !any {
		b.WriteString(" (no transaction ever recovered)")
	}
	return b.String()
}

// starve builds the watchdog's error for a stuck transaction.
func (m *Machine) starve(cpu memory.NodeID, block memory.Addr, home memory.NodeID, at uint64, retries int, stalled uint64, cause string) *StarvationError {
	r := m.resil
	r.noteRetry(block, cpu)
	e := &StarvationError{
		CPU: cpu, Block: block, Home: home, Cycle: at,
		Retries: retries, Budget: r.policy.Max,
		Stalled: stalled, Window: r.window, Cause: cause,
		RetryHist: m.st.Resil.RetryHist,
	}
	r.retriers[block].ForEach(func(n memory.NodeID) {
		e.Requesters = append(e.Requesters, n)
	})
	return e
}

// send is the engine's message transmission: the architectural delivery
// through the network, preceded — on an unreliable interconnect — by the
// out-of-band fault/recovery accounting of deliver. The returned arrival
// time comes from the architectural delivery alone, so the timeline of a
// faulty run matches the fault-free run exactly.
func (m *Machine) send(ln *lane, from, to memory.NodeID, t stats.MsgType, now uint64) uint64 {
	if r := m.resil; r != nil && r.faults != nil && from != to {
		m.deliver(from, to, t, now)
	}
	return ln.net.Send(from, to, t, now)
}

// deliver plays the unreliable-delivery game for one message: fault
// verdicts are drawn until a copy gets through. Every destroyed, extra or
// rejected copy — and every recovery action (NACKs, timeout
// retransmissions, backoff waits) — is accounted out-of-band; the final
// successful copy is not counted here, because the architectural
// net.Send in Machine.send is that copy. With retries disabled, the
// first loss is unrecoverable and the watchdog fails the run immediately
// (reported at the time its progress window would have expired) rather
// than simulating a hang.
func (m *Machine) deliver(from, to memory.NodeID, t stats.MsgType, now uint64) {
	r := m.resil
	rs := &m.st.Resil
	bs := m.cfg.L2.BlockSize
	// The requester and block of the in-flight transaction, for the
	// watchdog report (victim/ack traffic is attributed to the operation
	// that triggered it).
	cpu, block := from, memory.Addr(0)
	if o := m.servicing; o != nil {
		cpu, block = o.proc.id, m.layout.Block(o.addr)
	}
	home := m.layout.Home(block)
	retries := 0
	var stalled uint64
	for {
		switch r.faults.Verdict() {
		case fault.Deliver:
			if retries > 0 {
				rs.NoteRecovered(uint64(retries))
				r.noteRetry(block, cpu)
			}
			return

		case fault.Dup:
			// The extra copy arrives and is discarded idempotently; only
			// the wasted traffic is visible. The original still delivers.
			rs.DupMsgs++
			m.st.AddMsg(t, bs)
			return

		case fault.Drop:
			// The copy is destroyed in transit (its traffic up to the loss
			// point still counts). The sender detects the loss by timeout
			// — one backoff cap as a conservative round-trip bound — then
			// backs off and retransmits.
			rs.DroppedMsgs++
			m.st.AddMsg(t, bs)
			if !r.policy.Enabled() {
				panic(m.starve(cpu, block, home, now+r.window, retries, r.window,
					fmt.Sprintf("%s message lost and retries disabled — no retransmission will ever arrive", t)))
			}
			retries++
			if retries > r.policy.Max {
				panic(m.starve(cpu, block, home, now, retries-1, stalled, "retry budget exhausted recovering lost messages"))
			}
			wait := r.policy.Cap + r.policy.Backoff(retries, nil)
			rs.NoteBackoff(wait)
			rs.TimeoutResends++
			rs.Retries++
			stalled += wait
			if stalled > r.window {
				panic(m.starve(cpu, block, home, now, retries, stalled, "no forward progress within the progress window"))
			}

		case fault.Reorder:
			// The copy arrives out of order; the receiver rejects it with
			// a NACK (both travel and count) and the sender retransmits
			// after a backoff.
			rs.ReorderedMsgs++
			m.st.AddMsg(t, bs)
			m.st.AddMsg(stats.MsgRetry, bs)
			if !r.policy.Enabled() {
				panic(m.starve(cpu, block, home, now+r.window, retries, r.window,
					fmt.Sprintf("%s message rejected out-of-order and retries disabled", t)))
			}
			retries++
			if retries > r.policy.Max {
				panic(m.starve(cpu, block, home, now, retries-1, stalled, "retry budget exhausted recovering reordered messages"))
			}
			wait := r.policy.Backoff(retries, nil)
			rs.NoteBackoff(wait)
			rs.Retries++
			stalled += wait
			if stalled > r.window {
				panic(m.starve(cpu, block, home, now, retries, stalled, "no forward progress within the progress window"))
			}
		}
	}
}

// request transmits a transaction's opening request from p to the home H
// and — under finite DirMSHRs — secures a home transaction buffer,
// NACK-and-retrying while the home is saturated. It returns the time the
// home controller accepted the request. Only transaction-opening
// requests contend for buffers; replies, forwards, invalidations and
// victim traffic ride the transaction's existing buffer.
func (m *Machine) request(ln *lane, p *Proc, block memory.Addr, H memory.NodeID, typ stats.MsgType, at uint64) uint64 {
	t := m.send(ln, p.id, H, typ, at)
	if r := m.resil; r != nil && r.mshrs != nil {
		t = m.acquire(ln, p, block, H, typ, t)
	}
	return m.ctrl(H, t, m.cfg.Timing.CtrlTime)
}

// acquire claims a home transaction buffer for a request that arrived at
// time t, retrying with bounded backoff while every buffer is busy. The
// whole loop is architectural — the NACK and the retransmission occupy
// ports, the backoff advances the transaction, and jitter comes from the
// dedicated seeded stream — because buffer saturation is a property of
// the configuration, identical across faulty and fault-free runs.
func (m *Machine) acquire(ln *lane, p *Proc, block memory.Addr, H memory.NodeID, typ stats.MsgType, t uint64) uint64 {
	r := m.resil
	first := t
	retries := 0
	for {
		if slot, ok := r.mshrs.Reserve(H, t); ok {
			r.home, r.slot = H, slot
			if retries > 0 {
				m.st.Resil.NoteRecovered(uint64(retries))
			}
			return t
		}
		m.st.Resil.Nacks++
		r.noteRetry(block, p.id)
		nackT := m.send(ln, H, p.id, stats.MsgRetry, t)
		if !r.policy.Enabled() {
			panic(m.starve(p.id, block, H, nackT, retries, nackT-first,
				"home transaction buffers saturated and retries disabled"))
		}
		retries++
		if retries > r.policy.Max {
			panic(m.starve(p.id, block, H, nackT, retries-1, nackT-first, "retry budget exhausted"))
		}
		wait := r.policy.Backoff(retries, r.jitter)
		m.st.Resil.NoteBackoff(wait)
		m.st.Resil.Retries++
		t = m.send(ln, p.id, H, typ, nackT+wait)
		if t-first > r.window {
			panic(m.starve(p.id, block, H, t, retries, t-first, "no forward progress within the progress window"))
		}
	}
}

// complete releases the open transaction's home buffer at the time the
// transaction finished. The release time is the requester-side completion
// — slightly conservative (the home's involvement ends a hop earlier),
// which only makes buffer contention a little more pessimistic.
func (m *Machine) complete(done uint64) {
	r := m.resil
	if r == nil || r.slot < 0 {
		return
	}
	r.mshrs.Complete(r.home, r.slot, done)
	r.slot = -1
}
