package engine

import (
	"fmt"

	"lsnuma/internal/cache"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
	"lsnuma/internal/stats"
)

// execute services one scheduled memory operation, advancing the issuing
// processor's clock by the modeled latency and updating all simulator
// state (caches, directory, network occupancy, statistics, classifiers)
// through the servicing lane ln.
func (m *Machine) execute(ln *lane, o *op) {
	// The common case — an access confined to one block — skips the split
	// entirely; straddling accesses reuse the machine's scratch buffer so
	// neither path allocates. (Multi-block and atomic operations are never
	// batched by the parallel scheduler, so m.split stays single-writer.)
	if o.size > 0 && m.layout.SameBlock(o.addr, o.addr+memory.Addr(o.size)-1) {
		if o.rmw {
			m.accessBlock(ln, o.proc, o.addr, o.size, memory.Load, false, true)
			m.accessBlock(ln, o.proc, o.addr, o.size, memory.Store, true, false)
			return
		}
		m.accessBlock(ln, o.proc, o.addr, o.size, o.kind, false, o.excl)
		return
	}
	m.split = m.layout.AppendSplitByBlock(m.split[:0], o.addr, o.size)
	parts := m.split
	if o.rmw {
		// The load half of an atomic is a natural exclusive-read site
		// under the software prefetch-exclusive model.
		for _, part := range parts {
			m.accessBlock(ln, o.proc, part.Addr, part.Size, memory.Load, false, true)
		}
		for _, part := range parts {
			m.accessBlock(ln, o.proc, part.Addr, part.Size, memory.Store, true, false)
		}
		return
	}
	for _, part := range parts {
		m.accessBlock(ln, o.proc, part.Addr, part.Size, o.kind, false, o.excl)
	}
}

// accessBlock performs one access confined to a single cache block.
// rmwFence marks the store half of an atomic read-modify-write, which
// must drain the relaxed-mode write buffer before executing; exclAnnot
// marks an exclusive-read annotation, honoured only when the machine is
// configured with SoftwareExclusive.
func (m *Machine) accessBlock(ln *lane, p *Proc, addr memory.Addr, size uint32, kind memory.Kind, rmwFence, exclAnnot bool) {
	block := m.layout.Block(addr)
	nd := m.nodes[p.id]
	cpu := &ln.st.CPUs[p.id]
	if ln.checker != nil {
		// Queue the block for the post-operation invariant check; fill
		// adds replacement victims the same way.
		ln.touched = append(ln.touched, block)
	}
	if kind == memory.Load {
		cpu.Loads++
	} else {
		cpu.Stores++
	}

	res := nd.caches.Access(block, kind)

	// Under the relaxed-writes ablation an atomic RMW acts as a fence:
	// its store half must drain the write buffer first.
	if rmwFence && p.writeDrain > p.clock {
		stallF := p.writeDrain - p.clock
		cpu.WriteStall += stallF
		p.clock = p.writeDrain
	}

	// Local latency accounting: the L1 access is busy time; anything
	// beyond the L1 stalls the (sequentially consistent, blocking)
	// processor and is attributed to read or write stall by access kind.
	l1 := uint64(m.cfg.L1.AccessTime)
	local := uint64(res.Latency)
	cpu.Busy += l1
	stall := local - l1
	issued := p.clock + local

	switch {
	case res.HitL1:
		cpu.L1Hits++
	case res.HitL2:
		cpu.L2Hits++
	}

	if res.LSWrite {
		// A store satisfied by silently promoting an LStemp copy: the
		// ownership acquisition the optimization eliminated. The home
		// entry remains in the Load-Store (Excl) state — per Fig. 1 the
		// "Write (by LR)" transition to Dirty needs no message; the home
		// discovers the dirtiness when the next request is forwarded.
		ln.st.EliminatedOwnership++
		m.noteSeqWrite(ln, block, p.id, p.src, true)
	}

	var done uint64 = issued
	if res.Action != cache.NoGlobal {
		cpu.GlobalOps++
		if m.fs != nil && res.Action != cache.GlobalUpgrade {
			m.fs.OnMiss(p.id, block)
		}
		switch res.Action {
		case cache.GlobalRead:
			done = m.readMiss(ln, p, block, issued, exclAnnot && m.cfg.SoftwareExclusive)
		case cache.GlobalUpgrade:
			done = m.upgrade(ln, p, block, issued)
		case cache.GlobalWriteMiss:
			done = m.writeMiss(ln, p, block, issued)
		}
		stall += done - issued
	}

	if kind == memory.Load {
		cpu.ReadStall += stall
		p.clock = done
	} else if m.cfg.RelaxedWrites && !rmwFence && res.Action != cache.NoGlobal {
		// The store retires into the write buffer: the processor keeps
		// only the local (cache-probe) latency; the global transaction
		// completes in the background at `done`.
		cpu.WriteStall += local - l1
		p.clock = issued
		if done > p.writeDrain {
			p.writeDrain = done
		}
	} else {
		cpu.WriteStall += stall
		p.clock = done
	}

	if m.fs != nil {
		m.fs.OnAccess(p.id, addr, size, kind)
	}
}

// ctrl charges one memory-controller service of `work` cycles at node n,
// starting no earlier than `at`, and returns the completion time.
// Controller occupancy models contention at the home.
func (m *Machine) ctrl(n memory.NodeID, at uint64, work int) uint64 {
	nd := m.nodes[n]
	start := at
	if nd.ctrlBusy > start {
		start = nd.ctrlBusy
	}
	end := start + uint64(work)
	nd.ctrlBusy = end
	return end
}

// classifyReadMiss returns the paper's four-way read-miss class for the
// current home state of the block.
func (m *Machine) classifyReadMiss(e *directory.Entry, block memory.Addr) stats.ReadMissClass {
	switch e.State {
	case directory.Dirty:
		return stats.MissDirty
	case directory.Excl:
		if m.nodes[e.Owner].caches.State(block) == cache.LStemp {
			return stats.MissCleanExcl
		}
		return stats.MissDirtyExcl
	default:
		return stats.MissClean
	}
}

// readMiss services a global read request for block by processor p.id
// issued at time `at`, returns the completion time, and installs the
// block in p's caches.
func (m *Machine) readMiss(ln *lane, p *Proc, block memory.Addr, at uint64, wantExcl bool) uint64 {
	R := p.id
	H := m.layout.Home(block)
	e := m.dir.Entry(block)
	proto := m.cfg.Protocol
	m.noteDirty(ln, H)

	ln.st.ReadMisses[m.classifyReadMiss(e, block)]++
	m.noteSeqRead(ln, block, R)

	t := m.request(ln, p, block, H, stats.MsgReadReq, at)

	var fill cache.State
	switch e.State {
	case directory.Uncached, directory.Shared:
		// Data comes from home memory.
		t = m.ctrl(H, t, m.cfg.Timing.MemTime)
		grantExcl := wantExcl ||
			(e.State == directory.Uncached && proto.GrantExclusiveOnRead(e, R))
		if grantExcl {
			if e.State == directory.Shared {
				// A software exclusive read of a read-shared block
				// invalidates the other copies (prefetch-exclusive
				// semantics).
				t = m.invalidateSharers(ln, e, block, R, H, t)
			}
			ln.st.ExclusiveGrants++
			e.State = directory.Excl
			e.Owner = R
			m.clearSharers(e)
			fill = cache.LStemp
		} else {
			e.State = directory.Shared
			m.addSharer(ln, e, R)
			e.Owner = memory.NoNode
			fill = cache.Shared
		}
		t = m.send(ln, H, R, stats.MsgReadReply, t)

	case directory.Dirty, directory.Excl:
		O := e.Owner
		if O == R {
			panic(fmt.Sprintf("engine: read miss by owner %d of block %#x", R, block))
		}
		ownerState := m.nodes[O].caches.State(block)
		t = m.send(ln, H, O, stats.MsgReadFwd, t)
		t = m.ctrl(O, t, m.cfg.Timing.CtrlTime+m.cfg.L2.AccessTime)

		if ownerState == cache.LStemp {
			// The exclusive grant was not a load-store access after all
			// (Section 3.1, case 2): de-tag, share the block. The owner
			// keeps a Shared copy; home is notified via NotLS and gets
			// an up-to-date copy (which it already has — the block is
			// clean — but the message still travels, carrying data per
			// the paper: "both the requesting node as well as the home
			// node receives an updated copy").
			proto.NoteFailedPrediction(e)
			ln.st.FailedPredictions++
			m.nodes[O].caches.Downgrade(block)
			m.noteDirty(ln, O)
			m.send(ln, O, H, stats.MsgNotLS, t)
			m.send(ln, O, H, stats.MsgUpdate, t)
			t = m.send(ln, O, R, stats.MsgReadReply, t)
			e.State = directory.Shared
			m.clearSharers(e)
			m.addSharer(ln, e, O)
			m.addSharer(ln, e, R)
			e.Owner = memory.NoNode
			fill = cache.Shared
		} else {
			// Genuine dirty copy: DASH-style 4-hop read-on-dirty. The
			// owner writes back through the home, which replies to the
			// requester.
			t = m.send(ln, O, H, stats.MsgSharingWB, t)
			t = m.ctrl(H, t, m.cfg.Timing.CtrlTime+m.cfg.Timing.MemTime)
			if wantExcl || proto.GrantExclusiveOnRead(e, R) {
				// Migratory/LS handling: the read is combined with the
				// ownership acquisition — the previous owner is
				// invalidated and the requester receives an exclusive
				// copy.
				ln.st.ExclusiveGrants++
				m.loseCopy(ln, O, block, true)
				e.State = directory.Excl
				e.Owner = R
				fill = cache.LStemp
			} else {
				m.nodes[O].caches.Downgrade(block)
				m.noteDirty(ln, O)
				e.State = directory.Shared
				m.clearSharers(e)
				m.addSharer(ln, e, O)
				m.addSharer(ln, e, R)
				e.Owner = memory.NoNode
				fill = cache.Shared
			}
			t = m.send(ln, H, R, stats.MsgReadReply, t)
		}
	}

	proto.NoteRead(e, R)
	t = m.ctrl(R, t, m.cfg.Timing.CtrlTime)
	m.fill(ln, p, block, fill, t)
	m.complete(t)
	return t
}

// upgrade services an ownership acquisition: p holds a Shared copy and
// wants to write. Invalidations go to all other sharers; the grant waits
// for their acknowledgements (sequential consistency).
func (m *Machine) upgrade(ln *lane, p *Proc, block memory.Addr, at uint64) uint64 {
	R := p.id
	H := m.layout.Home(block)
	e := m.dir.Entry(block)
	m.noteDirty(ln, H)

	if e.State != directory.Shared || !e.Sharers.Has(R) {
		panic(fmt.Sprintf("engine: upgrade of block %#x by %d but home state %v sharers %v",
			block, R, e.State, e.Sharers))
	}

	ln.st.GlobalInv++
	ln.st.WritesToShared++
	if tagged := m.cfg.Protocol.NoteGlobalWrite(e, R, true); tagged {
		ln.st.Taggings++
	}
	m.noteSeqWrite(ln, block, R, p.src, false)

	t := m.request(ln, p, block, H, stats.MsgOwnReq, at)
	t = m.invalidateSharers(ln, e, block, R, H, t)

	e.State = directory.Dirty
	e.Owner = R
	m.clearSharers(e)

	t = m.send(ln, H, R, stats.MsgOwnAck, t)
	t = m.ctrl(R, t, m.cfg.Timing.CtrlTime)
	m.nodes[R].caches.Upgrade(block)
	m.complete(t)
	return t
}

// writeMiss services a read-exclusive request: p holds no copy and wants
// to write.
func (m *Machine) writeMiss(ln *lane, p *Proc, block memory.Addr, at uint64) uint64 {
	R := p.id
	H := m.layout.Home(block)
	e := m.dir.Entry(block)
	proto := m.cfg.Protocol
	m.noteDirty(ln, H)

	ln.st.GlobalWriteMisses++
	if tagged := proto.NoteGlobalWrite(e, R, false); tagged {
		ln.st.Taggings++
	}
	m.noteSeqWrite(ln, block, R, p.src, false)

	t := m.request(ln, p, block, H, stats.MsgWriteReq, at)

	switch e.State {
	case directory.Uncached:
		t = m.ctrl(H, t, m.cfg.Timing.MemTime)
		t = m.send(ln, H, R, stats.MsgWriteReply, t)

	case directory.Shared:
		ln.st.WritesToShared++
		t = m.invalidateSharers(ln, e, block, R, H, t)
		t = m.ctrl(H, t, m.cfg.Timing.MemTime)
		t = m.send(ln, H, R, stats.MsgWriteReply, t)

	case directory.Dirty, directory.Excl:
		O := e.Owner
		if O == R {
			panic(fmt.Sprintf("engine: write miss by owner %d of block %#x", R, block))
		}
		ownerState := m.nodes[O].caches.State(block)
		t = m.send(ln, H, O, stats.MsgWriteFwd, t)
		t = m.ctrl(O, t, m.cfg.Timing.CtrlTime+m.cfg.L2.AccessTime)
		if ownerState == cache.LStemp {
			// Foreign write to an unexercised exclusive grant: failed
			// prediction (Section 3.1, case 2). The copy is clean, so
			// the home supplies the data after the owner's ack.
			proto.NoteFailedPrediction(e)
			ln.st.FailedPredictions++
			m.loseCopy(ln, O, block, true)
			t = m.send(ln, O, H, stats.MsgInvalAck, t)
			ln.st.Invalidations++
			t = m.ctrl(H, t, m.cfg.Timing.MemTime)
			t = m.send(ln, H, R, stats.MsgWriteReply, t)
		} else {
			// Dirty transfer through the home (4 hops).
			m.loseCopy(ln, O, block, true)
			t = m.send(ln, O, H, stats.MsgWriteback, t)
			t = m.ctrl(H, t, m.cfg.Timing.CtrlTime+m.cfg.Timing.MemTime)
			t = m.send(ln, H, R, stats.MsgWriteReply, t)
		}
	}

	e.State = directory.Dirty
	e.Owner = R
	m.clearSharers(e)

	t = m.ctrl(R, t, m.cfg.Timing.CtrlTime)
	m.fill(ln, p, block, cache.Modified, t)
	m.complete(t)
	return t
}

// invalidateSharers sends individual invalidations to every sharer except
// keep, collects their acknowledgements, and returns the time the last ack
// reached the home. Copies are removed from the victims' caches and the
// false-sharing classifier is informed (invalidation losses).
func (m *Machine) invalidateSharers(ln *lane, e *directory.Entry, block memory.Addr, keep, H memory.NodeID, t uint64) uint64 {
	ackT := t
	e.Sharers.ForEach(func(s memory.NodeID) {
		if s == keep {
			return
		}
		ln.st.Invalidations++
		ti := m.send(ln, H, s, stats.MsgInval, t)
		ti = m.ctrl(s, ti, m.cfg.Timing.CtrlTime)
		if m.faults == nil || !m.faults.DropInvalidation(s, block, ln.opCount, t) {
			m.loseCopy(ln, s, block, true)
		}
		// When the injector drops the invalidation the victim keeps its
		// stale copy while the home forgets it — the lost-message bug the
		// online checker must catch. The ack still "arrives": the home
		// believes the invalidation succeeded.
		ta := m.send(ln, s, H, stats.MsgInvalAck, ti)
		if ta > ackT {
			ackT = ta
		}
	})
	// Compact wire formats (limited-pointer overflow, coarse vector) would
	// invalidate a superset of the exact sharer set. The extra victims hold
	// no copy, so the round's timing and the simulated timeline are
	// unchanged; the cost is counted architecturally, like PR 4's
	// resilience counters, so Results stay byte-identical across formats
	// modulo the Dir block.
	if f := m.cfg.DirFormat; f.Kind != directory.FullMap {
		extra, bcast := f.ExtraInvals(e, keep, m.cfg.Nodes)
		ln.st.Dir.ExtraInvals += extra
		if bcast {
			ln.st.Dir.Broadcasts++
		}
	}
	return ackT
}

// loseCopy removes node n's copy of block (invalidation or downgrade-free
// loss) and informs the false-sharing classifier.
func (m *Machine) loseCopy(ln *lane, n memory.NodeID, block memory.Addr, byInvalidation bool) {
	m.nodes[n].caches.Invalidate(block)
	m.noteDirty(ln, n)
	if m.fs != nil {
		m.fs.OnLose(n, block, byInvalidation)
	}
}

// addSharer inserts R into e's sharer set and models the wire format's
// capacity: under a limited-pointer directory, exceeding the pointer count
// sets the sticky overflow bit and counts the event. The exact set remains
// simulation truth, so protocol behaviour is format-independent.
func (m *Machine) addSharer(ln *lane, e *directory.Entry, R memory.NodeID) {
	e.Sharers.Add(R)
	if f := m.cfg.DirFormat; f.Kind == directory.LimitedPtr && !e.Ovf && e.Sharers.Count() > f.Ptrs {
		e.Ovf = true
		ln.st.Dir.Overflows++
	}
}

// clearSharers empties e's sharer set in place and rearms the wire-format
// overflow bit (the entry gets fresh pointers on its next sharing phase).
func (m *Machine) clearSharers(e *directory.Entry) {
	e.Sharers.Clear()
	e.Ovf = false
}

// noteDirty records that node n's observable state changed during the
// current service: either n's cache contents (invalidation/downgrade) or a
// directory entry homed at n. The parallel scheduler's incremental window
// drains these per-lane queues to recompute only the affected parked-op
// bounds. A no-op outside parallel runs.
func (m *Machine) noteDirty(ln *lane, n memory.NodeID) {
	if m.winTrack {
		ln.dirty = append(ln.dirty, n)
	}
}

// fill installs a block into p's caches at time t and handles the L2
// victim, if any: Modified victims write back to their home; clean
// victims send a replacement hint so the directory stays exact (the
// "Repl" transitions of Fig. 1). Victim traffic does not stall the
// processor.
func (m *Machine) fill(ln *lane, p *Proc, block memory.Addr, s cache.State, t uint64) {
	v, evicted := m.nodes[p.id].caches.Fill(block, s)
	if !evicted {
		return
	}
	if ln.checker != nil {
		ln.touched = append(ln.touched, v.Block)
	}
	vHome := m.layout.Home(v.Block)
	ve := m.dir.Entry(v.Block)
	m.noteDirty(ln, vHome)
	switch v.State {
	case cache.Modified, cache.LStemp:
		if ve.Owner != p.id || (ve.State != directory.Dirty && ve.State != directory.Excl) {
			panic(fmt.Sprintf("engine: victim %#x state %v but directory %v owner %d",
				v.Block, v.State, ve.State, ve.Owner))
		}
		msg := stats.MsgWriteback
		if v.State == cache.LStemp {
			// Replacement before the predicted store: the block is
			// clean, only a hint travels; the home keeps the current
			// LS-bit value (Section 3.1, case 3).
			msg = stats.MsgReplHint
		}
		tv := m.send(ln, p.id, vHome, msg, t)
		m.ctrl(vHome, tv, m.cfg.Timing.CtrlTime+m.cfg.Timing.MemTime)
		ve.State = directory.Uncached
		ve.Owner = memory.NoNode
	case cache.Shared:
		tv := m.send(ln, p.id, vHome, stats.MsgReplHint, t)
		m.ctrl(vHome, tv, m.cfg.Timing.CtrlTime)
		ve.Sharers.Remove(p.id)
		if ve.Sharers.Empty() {
			ve.State = directory.Uncached
		}
	}
	if m.fs != nil {
		m.fs.OnLose(p.id, v.Block, false)
	}
}
