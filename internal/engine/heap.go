package engine

// opHeap is a binary min-heap of pending operations ordered by the
// scheduler's service order: smallest processor clock first, ties broken
// by lowest CPU id. It replaces the O(P) linear scan over the pending-op
// array, so picking the next runnable operation is O(log P) even for the
// 16/32-CPU Figure 5 configurations. Each processor has at most one
// pending operation, so the heap never exceeds the node count and — with
// the backing slice preallocated — never allocates on the hot path.
type opHeap struct {
	a []*op

	// onPush/onPop, when non-nil, observe every heap insertion/removal.
	// The parallel scheduler installs them so its incremental safe-window
	// state (parWindow) tracks exactly the parked operations: push
	// registers a freshly computed bound, pop retires it. Nil under the
	// serial and run-ahead schedulers.
	onPush func(*op)
	onPop  func(*op)
}

// opBefore is the scheduler's total service order over pending ops.
func opBefore(x, y *op) bool {
	return x.at < y.at || (x.at == y.at && x.proc.id < y.proc.id)
}

// min returns the next op to service without removing it, or nil.
func (h *opHeap) min() *op {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// push adds a pending op.
func (h *opHeap) push(o *op) {
	if h.onPush != nil {
		h.onPush(o)
	}
	h.a = append(h.a, o)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !opBefore(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// pop removes and returns the next op to service, or nil if empty.
func (h *opHeap) pop() *op {
	n := len(h.a)
	if n == 0 {
		return nil
	}
	top := h.a[0]
	if h.onPop != nil {
		h.onPop(top)
	}
	n--
	h.a[0] = h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && opBefore(h.a[r], h.a[c]) {
			c = r
		}
		if !opBefore(h.a[c], h.a[i]) {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}
