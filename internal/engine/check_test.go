package engine

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"lsnuma/internal/check"
	"lsnuma/internal/fault"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// memoryAddr maps a small index to a distinct block address.
func memoryAddr(i int) memory.Addr { return memory.Addr(i * 16) }

// checkedConfig is testConfig plus online invariant checking.
func checkedConfig(kind protocol.Kind, level check.Level, serial bool) Config {
	cfg := testConfig(kind, protocol.Variant{})
	cfg.CheckLevel = level
	cfg.CheckInterval = 64
	cfg.SerialSchedule = serial
	return cfg
}

// TestCheckedRunIsBitIdentical: enabling the online checker must not
// perturb the simulation — the checker only probes, so every simulated
// quantity must match the unchecked run bit for bit, under both
// schedulers and at both checking levels.
func TestCheckedRunIsBitIdentical(t *testing.T) {
	for _, serial := range []bool{false, true} {
		base := schedulerStats(t, serial)
		for _, level := range []check.Level{check.Touched, check.Full} {
			t.Run(fmt.Sprintf("serial=%v/%v", serial, level), func(t *testing.T) {
				cfg := checkedConfig(protocol.LS, level, serial)
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				prog := contendedProgram(m)
				if err := m.Run([]Program{prog, prog, prog, prog}); err != nil {
					t.Fatal(err)
				}
				bs, cs := base.Stats(), m.Stats()
				if bs.ExecTime() != cs.ExecTime() {
					t.Errorf("exec time: unchecked %d, checked %d", bs.ExecTime(), cs.ExecTime())
				}
				if bs.TotalMsgs() != cs.TotalMsgs() || bs.TotalBytes() != cs.TotalBytes() {
					t.Errorf("traffic: unchecked %d msgs/%d B, checked %d msgs/%d B",
						bs.TotalMsgs(), bs.TotalBytes(), cs.TotalMsgs(), cs.TotalBytes())
				}
				for i := range bs.CPUs {
					if bs.CPUs[i] != cs.CPUs[i] {
						t.Errorf("CPU %d: unchecked %+v, checked %+v", i, bs.CPUs[i], cs.CPUs[i])
					}
				}
			})
		}
	}
}

// TestViolationAbortNoGoroutineLeak: a coherence violation raised by the
// online checker must abort the run like any other failure — the error
// surfaces as the structured *check.CoherenceViolation and every program
// goroutine is torn down, under both schedulers. This exercises the abort
// path from inside the machine's own service hooks (not from a program),
// which is new with online checking.
func TestViolationAbortNoGoroutineLeak(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cfg := checkedConfig(protocol.LS, check.Full, serial)
			cfg.CheckInterval = 1
			cfg.FaultInjector = fault.New(fault.ForgeOwner, 50, 1)
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prog := contendedProgram(m)
			err = m.Run([]Program{prog, prog, prog, prog})
			var v *check.CoherenceViolation
			if !errors.As(err, &v) {
				t.Fatalf("run returned %v, want a *check.CoherenceViolation", err)
			}
			if v.Invariant == "" || v.Detail == "" || v.State == "" {
				t.Errorf("violation not fully described: %+v", v)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// TestOpRing: with RecordOps set, LastOps returns the most recent
// operations in service order, capped at the ring size.
func TestOpRing(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.RecordOps = 4
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run([]Program{func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Read(memoryAddr(i))
		}
	}}); err != nil {
		t.Fatal(err)
	}
	ops := m.LastOps()
	if len(ops) != 4 {
		t.Fatalf("LastOps returned %d entries, want 4", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].At < ops[i-1].At {
			t.Errorf("ring out of order: %+v before %+v", ops[i-1], ops[i])
		}
	}
	if ops[len(ops)-1].Addr != memoryAddr(9) {
		t.Errorf("last op addr = %#x, want %#x", ops[len(ops)-1].Addr, memoryAddr(9))
	}
}

// TestPanicErrorStack: a program panic must surface as a *PanicError
// carrying the goroutine stack of the panicking program.
func TestPanicErrorStack(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	err := m.Run([]Program{func(p *Proc) {
		p.Read(0)
		panic("kaboom")
	}})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run returned %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}
