package engine

import (
	"strings"
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// testConfig returns a 4-node machine with caches large enough to avoid
// replacements, 16 B blocks, and the default timing.
func testConfig(kind protocol.Kind, v protocol.Variant) Config {
	return Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         DefaultTiming(),
		Protocol:       protocol.New(kind, v),
		TrackSequences: true,
		MaxCycles:      200_000_000,
	}
}

func newTestMachine(t *testing.T, kind protocol.Kind, v protocol.Variant) *Machine {
	t.Helper()
	m, err := NewMachine(testConfig(kind, v))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *Machine, progs ...Program) {
	t.Helper()
	if err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(protocol.Baseline, protocol.Variant{})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Nodes = MaxNodes + 1 },
		func(c *Config) { c.DirFormat = directory.Format{Kind: directory.CoarseVector, Gran: c.Nodes + 1} },
		func(c *Config) { c.L1.BlockSize = 32 },
		func(c *Config) { c.L1.Size = 0 },
		func(c *Config) { c.L2.Size = 0 },
		func(c *Config) { c.PageSize = 1000 },
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.PageSize = 8 },
		func(c *Config) { c.Timing.BytesPerCycle = 0 },
		func(c *Config) { c.Timing.MemTime = -1 },
		func(c *Config) { c.Protocol = nil },
	}
	for i, mutate := range cases {
		c := testConfig(protocol.Baseline, protocol.Variant{})
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestCompositeLatencies checks that the composite access latencies land
// near the paper's Table 1 targets: local ≈ 100, home ≈ 220, remote
// (read-on-dirty, 4 network hops) ≈ 420 cycles.
func TestCompositeLatencies(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	localAddr := memory.Addr(0)     // page 0 → home node 0
	homeAddr := memory.Addr(4096)   // page 1 → home node 1
	remoteAddr := memory.Addr(8192) // page 2 → home node 2

	var localLat, homeLat, remoteLat uint64
	p0 := func(p *Proc) {
		before := p.Clock()
		p.Read(localAddr)
		localLat = p.Clock() - before

		before = p.Clock()
		p.Read(homeAddr)
		homeLat = p.Clock() - before

		// Let P3 dirty remoteAddr first.
		p.Compute(100_000)
		before = p.Clock()
		p.Read(remoteAddr)
		remoteLat = p.Clock() - before
	}
	p3 := func(p *Proc) {
		p.Write(remoteAddr) // write miss → Dirty at node 3, home node 2
	}
	run(t, m, p0, nil, nil, p3)

	within := func(name string, got, want uint64) {
		lo, hi := want*85/100, want*115/100
		if got < lo || got > hi {
			t.Errorf("%s latency = %d, want %d ± 15%%", name, got, want)
		}
	}
	within("local", localLat, 100)
	within("home", homeLat, 220)
	within("remote read-on-dirty", remoteLat, 420)
}

func TestReadThenHit(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	var missLat, hitLat uint64
	run(t, m, func(p *Proc) {
		before := p.Clock()
		p.Read(0)
		missLat = p.Clock() - before
		before = p.Clock()
		p.Read(0)
		hitLat = p.Clock() - before
	})
	if hitLat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", hitLat)
	}
	if missLat <= hitLat {
		t.Errorf("miss latency %d not greater than hit latency %d", missLat, hitLat)
	}
	st := m.Stats()
	if st.CPUs[0].Loads != 2 || st.CPUs[0].L1Hits != 1 {
		t.Errorf("counters = %+v", st.CPUs[0])
	}
	if st.GlobalReadMisses() != 1 || st.ReadMisses[0] != 1 {
		t.Errorf("read misses = %v", st.ReadMisses)
	}
}

func TestBaselineUpgradeCountsGlobalInv(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.Read(0)
		p.Write(0) // upgrade of the Shared copy
		p.Write(0) // hit on Modified
	})
	st := m.Stats()
	if st.GlobalInv != 1 {
		t.Errorf("GlobalInv = %d, want 1", st.GlobalInv)
	}
	if st.GlobalWriteMisses != 0 {
		t.Errorf("GlobalWriteMisses = %d, want 0", st.GlobalWriteMisses)
	}
	if st.CPUs[0].WriteStall == 0 {
		t.Error("upgrade produced no write stall")
	}
	e := m.Directory().Entry(0)
	if e.State != directory.Dirty || e.Owner != 0 {
		t.Errorf("directory after upgrade = %+v", e)
	}
}

func TestWriteMissToUncached(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.Write(64)
	})
	st := m.Stats()
	if st.GlobalWriteMisses != 1 || st.GlobalInv != 0 {
		t.Errorf("write-miss counters: misses=%d inv=%d", st.GlobalWriteMisses, st.GlobalInv)
	}
	if m.Hierarchy(0).State(64) != cache.Modified {
		t.Error("write miss did not install Modified copy")
	}
}

// TestLSStateDiagram walks the home-node state machine of the paper's
// Figure 1 through the engine, asserting every major transition.
func TestLSStateDiagram(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{})
	X := memory.Addr(0)
	dir := m.Directory()

	type check struct {
		name  string
		state directory.HomeState
		ls    bool
	}
	var checks []check
	record := func(name string, want directory.HomeState, wantLS bool) {
		e := dir.Entry(X)
		checks = append(checks, check{name, e.State, e.LS})
		if e.State != want || e.LS != wantLS {
			t.Errorf("%s: state=%v LS=%v, want state=%v LS=%v", name, e.State, e.LS, want, wantLS)
		}
	}

	step := make(chan int) // host-side phase sequencing via simulated compute
	_ = step

	p0 := func(p *Proc) {
		p.Read(X) // Uncached --Read(LS=0)--> Shared
		record("Uncached+Read(LS=0)", directory.Shared, false)
		p.Write(X) // Shared --Write(by LR)--> Dirty, tag LS
		record("Shared+Write(by LR)", directory.Dirty, true)
	}
	p1 := func(p *Proc) {
		p.Compute(20_000) // let P0 finish
		p.Read(X)         // Dirty --Read(LS=1)--> Load-Store (exclusive grant)
		record("Dirty+Read(LS=1)", directory.Excl, true)
		if got := m.Hierarchy(1).State(X); got != cache.LStemp {
			t.Errorf("P1 cache state after exclusive grant = %v, want LStemp", got)
		}
		p.Write(X) // silent promotion; home stays Load-Store
		record("LoadStore+Write(by owner)", directory.Excl, true)
		if got := m.Hierarchy(1).State(X); got != cache.Modified {
			t.Errorf("P1 cache state after promotion = %v, want Modified", got)
		}
	}
	p2 := func(p *Proc) {
		p.Compute(40_000) // let P1 finish
		p.Read(X)         // dirty-exclusive, LS=1 --> migrate exclusively to P2
		record("LoadStore(dirty)+Read(LS=1)", directory.Excl, true)
		if got := m.Hierarchy(2).State(X); got != cache.LStemp {
			t.Errorf("P2 cache state = %v, want LStemp", got)
		}
		// P2 never writes: the prediction fails when P3 reads.
	}
	p3 := func(p *Proc) {
		p.Compute(60_000)
		p.Read(X) // foreign read of clean exclusive --NotLS--> Shared, de-tag
		record("LoadStore(clean)+foreign Read → NotLS", directory.Shared, false)
		e := dir.Entry(X)
		if !e.Sharers.Has(2) || !e.Sharers.Has(3) || e.Sharers.Count() != 2 {
			t.Errorf("sharers after NotLS = %b, want {2,3}", e.Sharers)
		}
		p.Write(X) // Shared --Write(by LR=3)--> Dirty, tag again
		record("Shared+Write(by LR)", directory.Dirty, true)
	}
	run(t, m, p0, p1, p2, p3)

	st := m.Stats()
	if st.EliminatedOwnership != 1 {
		t.Errorf("EliminatedOwnership = %d, want 1 (P1's silent promotion)", st.EliminatedOwnership)
	}
	if st.FailedPredictions != 1 {
		t.Errorf("FailedPredictions = %d, want 1 (P3's NotLS)", st.FailedPredictions)
	}
	if st.ExclusiveGrants != 2 {
		t.Errorf("ExclusiveGrants = %d, want 2 (P1 and P2)", st.ExclusiveGrants)
	}
	if len(checks) != 7 {
		t.Errorf("executed %d checks, want 7 (phase interleaving broke)", len(checks))
	}
}

func TestLSWriteMissDetagsThroughEngine(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{})
	X := memory.Addr(0)
	p0 := func(p *Proc) {
		p.Read(X)
		p.Write(X) // tags LS
	}
	p1 := func(p *Proc) {
		p.Compute(20_000)
		p.Write(X) // write miss from non-holder → de-tag (Fig. 1 "Write (not by LR)")
	}
	run(t, m, p0, p1)
	e := m.Directory().Entry(X)
	if e.LS {
		t.Error("write miss did not de-tag the block")
	}
	if e.State != directory.Dirty || e.Owner != 1 {
		t.Errorf("directory = %+v", e)
	}
}

func TestDefaultTaggedColdReadExclusive(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{DefaultTagged: true})
	run(t, m, func(p *Proc) {
		p.Read(0) // Uncached --Read(LS=1)--> Load-Store
		if got := m.Hierarchy(0).State(0); got != cache.LStemp {
			t.Errorf("cache state after default-tagged cold read = %v", got)
		}
		p.Write(0)
	})
	st := m.Stats()
	if st.ExclusiveGrants != 1 || st.EliminatedOwnership != 1 {
		t.Errorf("grants=%d eliminated=%d, want 1/1", st.ExclusiveGrants, st.EliminatedOwnership)
	}
	if st.GlobalWrites() != 0 {
		t.Errorf("GlobalWrites = %d, want 0", st.GlobalWrites())
	}
}

// TestMigrationPingPong runs the canonical migratory pattern (alternating
// read-modify-writes by two processors) under all three protocols and
// checks the paper's core result ordering: LS and AD eliminate the
// ownership acquisitions that Baseline pays for, and total traffic obeys
// LS ≤ AD < Baseline.
func TestMigrationPingPong(t *testing.T) {
	const rounds = 50
	results := map[protocol.Kind]*Machine{}
	for _, kind := range []protocol.Kind{protocol.Baseline, protocol.AD, protocol.LS} {
		m := newTestMachine(t, kind, protocol.Variant{})
		turn := NewCounter(m.Alloc(), "turn")
		data := m.Alloc().AllocBlocks("data", 16)
		prog := func(self int64) Program {
			return func(p *Proc) {
				for i := 0; i < rounds; i++ {
					for {
						p.Read(turn.Addr())
						if turn.Load(p)%2 == self {
							break
						}
						p.Compute(8)
					}
					p.Read(data)  // load...
					p.Compute(10) // ...modify...
					p.Write(data) // ...store: a load-store sequence
					turn.Add(p, 1)
				}
			}
		}
		if err := m.Run([]Program{prog(0), prog(1)}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := m.CheckCoherence(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		results[kind] = m
	}

	base, ad, ls := results[protocol.Baseline].Stats(), results[protocol.AD].Stats(), results[protocol.LS].Stats()
	if base.EliminatedOwnership != 0 {
		t.Errorf("baseline eliminated %d ownerships", base.EliminatedOwnership)
	}
	if ad.EliminatedOwnership == 0 {
		t.Error("AD eliminated no ownership acquisitions on migratory data")
	}
	if ls.EliminatedOwnership == 0 {
		t.Error("LS eliminated no ownership acquisitions on migratory data")
	}
	if ls.EliminatedOwnership < ad.EliminatedOwnership {
		t.Errorf("LS eliminated %d < AD %d", ls.EliminatedOwnership, ad.EliminatedOwnership)
	}
	// Write-related traffic: LS ≤ AD < Baseline.
	bw := base.ClassMsgs()[1]
	aw := ad.ClassMsgs()[1]
	lw := ls.ClassMsgs()[1]
	if !(lw <= aw && aw < bw) {
		t.Errorf("write-class messages: LS=%d AD=%d Base=%d, want LS ≤ AD < Base", lw, aw, bw)
	}
	// The sequence detector must classify the data accesses as migratory.
	seq := results[protocol.LS].Sequences()
	total := seq.Total()
	if total.LoadStoreWrites == 0 || total.MigratoryWrites == 0 {
		t.Errorf("sequence detection: %+v", total)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{})
	lock := NewLock(m.Alloc(), "lock")
	shared := NewCounter(m.Alloc(), "shared")
	inCS := 0
	violations := 0
	const perCPU = 25
	prog := func(p *Proc) {
		for i := 0; i < perCPU; i++ {
			lock.Acquire(p)
			inCS++
			if inCS != 1 {
				violations++
			}
			shared.Add(p, 1)
			p.Compute(50)
			inCS--
			lock.Release(p)
			p.Compute(p.Rand().Intn(100))
		}
	}
	run(t, m, prog, prog, prog, prog)
	if violations != 0 {
		t.Errorf("%d mutual-exclusion violations", violations)
	}
	if shared.value != 4*perCPU {
		t.Errorf("counter = %d, want %d", shared.value, 4*perCPU)
	}
	if lock.Acquisitions != 4*perCPU {
		t.Errorf("acquisitions = %d, want %d", lock.Acquisitions, 4*perCPU)
	}
}

func TestTicketLockFairAndExclusive(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	lock := NewTicketLock(m.Alloc(), "ticket")
	inCS := 0
	violations := 0
	count := 0
	prog := func(p *Proc) {
		for i := 0; i < 20; i++ {
			lock.Acquire(p)
			inCS++
			if inCS != 1 {
				violations++
			}
			count++
			p.Compute(30)
			inCS--
			lock.Release(p)
		}
	}
	run(t, m, prog, prog, prog, prog)
	if violations != 0 || count != 80 {
		t.Errorf("violations=%d count=%d", violations, count)
	}
}

func TestBarrierPhases(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{})
	const phases = 5
	bar := NewBarrier(m.Alloc(), "barrier", 4, 4)
	phase := make([]int, 4)
	prog := func(p *Proc) {
		for ph := 0; ph < phases; ph++ {
			p.Compute(10 + int(p.ID())*137) // skewed arrival
			phase[p.ID()] = ph
			bar.Wait(p)
			// After the barrier, every CPU must have recorded this phase.
			for cpu, got := range phase {
				if got < ph {
					// Report once; cannot t.Fatal from program goroutine.
					panic("barrier: CPU " + string(rune('0'+cpu)) + " behind")
				}
			}
		}
	}
	run(t, m, prog, prog, prog, prog)
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, uint64, uint64) {
		m := newTestMachine(t, protocol.LS, protocol.Variant{})
		lock := NewLock(m.Alloc(), "lock")
		data := m.Alloc().AllocBlocks("data", 256)
		prog := func(p *Proc) {
			r := p.Rand()
			for i := 0; i < 100; i++ {
				a := data + memory.Addr(r.Intn(16)*16)
				if r.Intn(3) == 0 {
					lock.Acquire(p)
					p.Read(a)
					p.Write(a)
					lock.Release(p)
				} else {
					p.Read(a)
				}
				p.Compute(r.Intn(50))
			}
		}
		run(t, m, prog, prog, prog, prog)
		st := m.Stats()
		return st.ExecTime(), st.TotalMsgs(), st.GlobalWrites()
	}
	e1, m1, w1 := runOnce()
	e2, m2, w2 := runOnce()
	if e1 != e2 || m1 != m2 || w1 != w2 {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, m1, w1, e2, m2, w2)
	}
}

// TestCoherenceUnderRandomTraffic hammers a small shared region from all
// four CPUs under each protocol and validates the machine-wide coherence
// invariant afterwards (and that the run terminates).
func TestCoherenceUnderRandomTraffic(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.Baseline, protocol.AD, protocol.LS} {
		for _, v := range []protocol.Variant{{}, {DefaultTagged: true}, {KeepOnWriteMiss: true}, {TagHysteresis: 2, DetagHysteresis: 2}} {
			m := newTestMachine(t, kind, v)
			region := m.Alloc().AllocBlocks("region", 512)
			prog := func(p *Proc) {
				r := p.Rand()
				for i := 0; i < 400; i++ {
					a := region + memory.Addr(r.Intn(128)*4)
					switch r.Intn(4) {
					case 0:
						p.Write(a)
					case 1:
						p.RMW(a)
					default:
						p.Read(a)
					}
				}
			}
			if err := m.Run([]Program{prog, prog, prog, prog}); err != nil {
				t.Fatalf("%v %v: %v", kind, v, err)
			}
			if err := m.CheckCoherence(); err != nil {
				t.Errorf("%v %v: %v", kind, v, err)
			}
		}
	}
}

// TestEvictionWritebackUpdatesDirectory forces L2 conflict evictions and
// checks the directory returns to Uncached with writeback traffic counted.
func TestEvictionWritebackUpdatesDirectory(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.L1 = cache.Config{Size: 64, Assoc: 1, BlockSize: 16, AccessTime: 1}
	cfg.L2 = cache.Config{Size: 256, Assoc: 1, BlockSize: 16, AccessTime: 10} // 16 lines
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Use page 1 (home = node 1) so the writebacks are remote and counted
	// as traffic; local messages are free and uncounted by design.
	base := memory.Addr(4096)
	run(t, m, func(p *Proc) {
		// Two L2-conflicting dirty blocks: 256 bytes apart.
		p.Write(base)
		p.Write(base + 256) // evicts the first dirty block → writeback
		p.Write(base + 512) // evicts the second → writeback
	})
	e0 := m.Directory().Entry(base)
	if e0.State != directory.Uncached {
		t.Errorf("evicted dirty block directory state = %v", e0.State)
	}
	st := m.Stats()
	if st.Msgs[11] == 0 { // MsgWriteback
		t.Error("no writeback messages counted")
	}
}

func TestReplacementOfSharedSendsHint(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.L1 = cache.Config{Size: 64, Assoc: 1, BlockSize: 16, AccessTime: 1}
	cfg.L2 = cache.Config{Size: 256, Assoc: 1, BlockSize: 16, AccessTime: 10}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, func(p *Proc) {
		p.Read(0)
		p.Read(256) // evicts Shared block 0 → replacement hint
	})
	if m.Directory().Entry(0).State != directory.Uncached {
		t.Error("replaced shared block not Uncached at home")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	if err := m.Run([]Program{func(p *Proc) { p.Read(0) }}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run([]Program{func(p *Proc) {}}); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestTooManyProgramsFails(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	progs := make([]Program, 5)
	for i := range progs {
		progs[i] = func(p *Proc) {}
	}
	if err := m.Run(progs); err == nil {
		t.Fatal("5 programs on 4 nodes accepted")
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	err := m.Run([]Program{func(p *Proc) {
		p.Read(0)
		panic("boom")
	}})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not propagated: %v", err)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.MaxCycles = 50_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) {
		for {
			p.Read(0)
			p.Compute(100)
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("livelock guard did not fire: %v", err)
	}
}

func TestSourceAttribution(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.SetSource(memory.SrcOS)
		p.Read(0)
		p.Write(0)
		p.SetSource(memory.SrcApp)
		p.Read(64)
		p.Write(64)
	})
	seq := m.Sequences()
	if seq.Sources[memory.SrcOS].LoadStoreWrites != 1 {
		t.Errorf("OS load-store writes = %d", seq.Sources[memory.SrcOS].LoadStoreWrites)
	}
	if seq.Sources[memory.SrcApp].LoadStoreWrites != 1 {
		t.Errorf("app load-store writes = %d", seq.Sources[memory.SrcApp].LoadStoreWrites)
	}
}

func TestRMWIsAtomicLoadStore(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.RMW(0)
	})
	st := m.Stats()
	if st.CPUs[0].Loads != 1 || st.CPUs[0].Stores != 1 {
		t.Errorf("RMW load/store counts = %d/%d", st.CPUs[0].Loads, st.CPUs[0].Stores)
	}
	// The RMW is a load-store sequence by definition.
	if m.Sequences().Total().LoadStoreWrites != 1 {
		t.Errorf("RMW not classified as load-store sequence")
	}
}

func TestComputeAccumulatesBusy(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.Compute(123)
		p.Compute(0)
		p.Compute(-5)
	})
	if got := m.Stats().CPUs[0].Busy; got != 123 {
		t.Errorf("busy = %d, want 123", got)
	}
}

func TestMultiBlockAccessSplits(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) {
		p.ReadN(12, 8) // straddles blocks 0 and 16
	})
	if got := m.Stats().GlobalReadMisses(); got != 2 {
		t.Errorf("straddling read caused %d misses, want 2", got)
	}
}

func TestIdleNodesAllowed(t *testing.T) {
	m := newTestMachine(t, protocol.Baseline, protocol.Variant{})
	run(t, m, func(p *Proc) { p.Read(0) }) // 1 program, 4 nodes
	if m.Stats().CPUs[1].Total() != 0 {
		t.Error("idle CPU accumulated cycles")
	}
}

// TestRelaxedWritesReduceWriteStall checks the relaxed-consistency
// ablation: buffered stores stop stalling the processor, while the
// traffic stays identical (state changes are the same, only timing
// differs) and RMW fences still pay the drain.
func TestRelaxedWritesReduceWriteStall(t *testing.T) {
	prog := func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Read(memory.Addr(4096 + i*16)) // remote home: global actions
			p.Write(memory.Addr(4096 + i*16))
			p.Compute(100)
		}
	}
	runWith := func(relaxed bool) (uint64, uint64) {
		cfg := testConfig(protocol.Baseline, protocol.Variant{})
		cfg.RelaxedWrites = relaxed
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run([]Program{prog}); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Sum().WriteStall, m.Stats().TotalMsgs()
	}
	scStall, scMsgs := runWith(false)
	rxStall, rxMsgs := runWith(true)
	if rxStall >= scStall/2 {
		t.Errorf("relaxed write stall %d not well below SC %d", rxStall, scStall)
	}
	if rxMsgs != scMsgs {
		t.Errorf("relaxed traffic %d != SC traffic %d", rxMsgs, scMsgs)
	}
}

// TestRelaxedWritesRMWDrains: an atomic RMW under the relaxed model must
// wait for the write buffer, so a tight RMW loop sees SC-like stalls.
func TestRelaxedWritesRMWDrains(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.RelaxedWrites = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var afterWrite, afterRMW uint64
	if err := m.Run([]Program{func(p *Proc) {
		p.Write(4096) // buffered: returns at local latency
		afterWrite = p.Clock()
		p.RMW(4112) // fence: must drain the pending write first
		afterRMW = p.Clock()
	}}); err != nil {
		t.Fatal(err)
	}
	if afterWrite > 50 {
		t.Errorf("buffered write stalled the processor: clock %d", afterWrite)
	}
	if afterRMW < 200 {
		t.Errorf("RMW did not drain the write buffer: clock %d", afterRMW)
	}
}

// TestRWLockSharedAndExclusive checks the readers-writer latch: readers
// overlap each other, writers are exclusive against everyone.
func TestRWLockSharedAndExclusive(t *testing.T) {
	m := newTestMachine(t, protocol.LS, protocol.Variant{})
	latch := NewRWLock(m.Alloc(), "latch")
	// Record the simulated-time critical-section intervals and check
	// overlap afterwards: reader intervals may overlap each other but
	// never a writer interval; writer intervals are pairwise disjoint.
	type interval struct {
		from, to uint64
		writer   bool
	}
	var intervals []interval
	value := 0
	reader := func(p *Proc) {
		for i := 0; i < 30; i++ {
			latch.RLock(p)
			from := p.Clock()
			p.Compute(200)
			intervals = append(intervals, interval{from, p.Clock(), false})
			latch.RUnlock(p)
			p.Compute(p.Rand().Intn(60))
		}
	}
	writer := func(p *Proc) {
		for i := 0; i < 20; i++ {
			latch.Lock(p)
			from := p.Clock()
			value++
			p.Compute(50)
			intervals = append(intervals, interval{from, p.Clock(), true})
			latch.Unlock(p)
			p.Compute(p.Rand().Intn(300))
		}
	}
	run(t, m, reader, reader, reader, writer)
	if value != 20 {
		t.Errorf("writer count = %d", value)
	}
	overlaps := func(a, b interval) bool { return a.from < b.to && b.from < a.to }
	readerOverlap := false
	for i := 0; i < len(intervals); i++ {
		for j := i + 1; j < len(intervals); j++ {
			a, b := intervals[i], intervals[j]
			if !overlaps(a, b) {
				continue
			}
			if a.writer || b.writer {
				t.Fatalf("writer interval overlap: %+v and %+v", a, b)
			}
			readerOverlap = true
		}
	}
	if !readerOverlap {
		t.Error("reader critical sections never overlapped in simulated time")
	}
}
