package engine

import (
	"testing"

	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// allocsForRun builds a machine and runs one single-processor program
// performing `accesses` load/store pairs over a small warm region, and
// returns the total allocation count of the whole build+run.
func allocsForRun(t *testing.T, accesses int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		m, err := NewMachine(testConfig(protocol.LS, protocol.Variant{}))
		if err != nil {
			t.Fatal(err)
		}
		buf := m.Alloc().Alloc("buf", 1024, 0)
		prog := func(p *Proc) {
			for i := 0; i < accesses; i++ {
				a := buf + memory.Addr((i*memory.WordSize)%1024)
				p.Read(a)
				p.Write(a)
			}
		}
		if err := m.Run([]Program{prog}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestHotPathAllocs guards the per-access allocation count of the engine
// hot path (op submission, block split, access servicing): the steady
// state must allocate (near) nothing, so the marginal cost of 20x more
// accesses is ~zero. Before the op-reuse and split-hoist optimizations the
// marginal cost was >2 allocations per access.
func TestHotPathAllocs(t *testing.T) {
	small := allocsForRun(t, 500)
	big := allocsForRun(t, 10000)
	perAccess := (big - small) / float64(2*(10000-500))
	t.Logf("allocs: %d accesses=%.0f, %d accesses=%.0f, marginal=%.4f allocs/access",
		2*500, small, 2*10000, big, perAccess)
	if perAccess > 0.02 {
		t.Errorf("hot path allocates %.4f allocations per access, want ~0 (<= 0.02)", perAccess)
	}
}

// TestDirectoryAllocs guards the flat paged directory against per-block
// allocation: touching N distinct blocks must allocate pages (one per
// ~256 blocks), not entries — the marginal allocation cost per block is a
// small fraction, where the map backend paid one *Entry plus map growth
// per block.
func TestDirectoryAllocs(t *testing.T) {
	run := func(blocks int) float64 {
		return testing.AllocsPerRun(3, func() {
			m, err := NewMachine(testConfig(protocol.LS, protocol.Variant{}))
			if err != nil {
				t.Fatal(err)
			}
			size := uint64(blocks * 16)
			buf := m.Alloc().Alloc("buf", size, 0)
			prog := func(p *Proc) {
				for i := 0; i < blocks; i++ {
					p.Read(buf + memory.Addr(i*16))
				}
			}
			if err := m.Run([]Program{prog}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := run(512)
	big := run(8192)
	perBlock := (big - small) / float64(8192-512)
	t.Logf("directory marginal allocs/block=%.4f", perBlock)
	// One page struct + two slices per 256 blocks plus cache-fill noise:
	// well under 0.1; the map backend sat near 1.2.
	if perBlock > 0.1 {
		t.Errorf("directory allocates %.4f allocations per touched block, want paged (<= 0.1)", perBlock)
	}
}

// TestResetRunAllocs guards the machine-reuse path: Reset + Run on a warm
// machine must allocate a small fraction of what NewMachine + Run costs,
// since every array (caches, directory pages, stats, op pool) is retained.
func TestResetRunAllocs(t *testing.T) {
	cfg := testConfig(protocol.LS, protocol.Variant{})
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exercise := func() {
		buf := m.Alloc().Alloc("buf", 4096, 0)
		prog := func(p *Proc) {
			for i := 0; i < 2000; i++ {
				a := buf + memory.Addr((i*memory.WordSize)%4096)
				p.Read(a)
				p.Write(a)
			}
		}
		if err := m.Run([]Program{prog}); err != nil {
			t.Fatal(err)
		}
	}
	exercise() // warm the machine before measuring
	reused := testing.AllocsPerRun(3, func() {
		if err := m.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		exercise()
	})
	fresh := testing.AllocsPerRun(3, func() {
		fm, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m = fm
		exercise()
	})
	t.Logf("allocs: fresh build+run=%.0f, reset+run=%.0f (%.1f%%)", fresh, reused, 100*reused/fresh)
	if reused > fresh/2 {
		t.Errorf("Reset+Run allocates %.0f, want well under half of a fresh build+run (%.0f)", reused, fresh)
	}
}

// TestStraddlingAccessAllocs guards the block-straddling path: the split
// scratch buffer is reused, so multi-block accesses must not allocate per
// access either.
func TestStraddlingAccessAllocs(t *testing.T) {
	run := func(accesses int) float64 {
		return testing.AllocsPerRun(3, func() {
			m, err := NewMachine(testConfig(protocol.Baseline, protocol.Variant{}))
			if err != nil {
				t.Fatal(err)
			}
			buf := m.Alloc().Alloc("buf", 1024, 16)
			prog := func(p *Proc) {
				for i := 0; i < accesses; i++ {
					// 32-byte access offset by half a block: always
					// straddles two (sometimes three) 16 B blocks.
					p.ReadN(buf+8, 32)
				}
			}
			if err := m.Run([]Program{prog}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := run(500)
	big := run(10000)
	perAccess := (big - small) / float64(10000-500)
	t.Logf("straddling marginal allocs/access=%.4f", perAccess)
	if perAccess > 0.02 {
		t.Errorf("straddling path allocates %.4f allocations per access, want ~0 (<= 0.02)", perAccess)
	}
}
