package engine

import (
	"testing"

	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// allocsForRun builds a machine and runs one single-processor program
// performing `accesses` load/store pairs over a small warm region, and
// returns the total allocation count of the whole build+run.
func allocsForRun(t *testing.T, accesses int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		m, err := NewMachine(testConfig(protocol.LS, protocol.Variant{}))
		if err != nil {
			t.Fatal(err)
		}
		buf := m.Alloc().Alloc("buf", 1024, 0)
		prog := func(p *Proc) {
			for i := 0; i < accesses; i++ {
				a := buf + memory.Addr((i*memory.WordSize)%1024)
				p.Read(a)
				p.Write(a)
			}
		}
		if err := m.Run([]Program{prog}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestHotPathAllocs guards the per-access allocation count of the engine
// hot path (op submission, block split, access servicing): the steady
// state must allocate (near) nothing, so the marginal cost of 20x more
// accesses is ~zero. Before the op-reuse and split-hoist optimizations the
// marginal cost was >2 allocations per access.
func TestHotPathAllocs(t *testing.T) {
	small := allocsForRun(t, 500)
	big := allocsForRun(t, 10000)
	perAccess := (big - small) / float64(2*(10000-500))
	t.Logf("allocs: %d accesses=%.0f, %d accesses=%.0f, marginal=%.4f allocs/access",
		2*500, small, 2*10000, big, perAccess)
	if perAccess > 0.02 {
		t.Errorf("hot path allocates %.4f allocations per access, want ~0 (<= 0.02)", perAccess)
	}
}

// TestStraddlingAccessAllocs guards the block-straddling path: the split
// scratch buffer is reused, so multi-block accesses must not allocate per
// access either.
func TestStraddlingAccessAllocs(t *testing.T) {
	run := func(accesses int) float64 {
		return testing.AllocsPerRun(3, func() {
			m, err := NewMachine(testConfig(protocol.Baseline, protocol.Variant{}))
			if err != nil {
				t.Fatal(err)
			}
			buf := m.Alloc().Alloc("buf", 1024, 16)
			prog := func(p *Proc) {
				for i := 0; i < accesses; i++ {
					// 32-byte access offset by half a block: always
					// straddles two (sometimes three) 16 B blocks.
					p.ReadN(buf+8, 32)
				}
			}
			if err := m.Run([]Program{prog}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := run(500)
	big := run(10000)
	perAccess := (big - small) / float64(10000-500)
	t.Logf("straddling marginal allocs/access=%.4f", perAccess)
	if perAccess > 0.02 {
		t.Errorf("straddling path allocates %.4f allocations per access, want ~0 (<= 0.02)", perAccess)
	}
}
