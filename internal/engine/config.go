// Package engine is the program-driven multiprocessor simulation engine.
//
// Each simulated processor runs an ordinary Go function (a Program)
// against the simulated memory system through a *Proc handle: every
// p.Read/p.Write is serviced by the detailed cache, directory, protocol
// and network models, and the processor's local clock advances by the
// modeled latency. A global scheduler always resumes the processor with
// the smallest local clock, so the interleaving of the programs reflects
// the modeled memory system — exactly the property the paper relies on
// ("we model processor stall according to the behavior and latencies of
// the memory components, so a realistic interleaving of execution between
// the different processors can be maintained", Section 4).
//
// The machine implements a sequentially consistent memory model: the
// processor stalls for the full duration of every second-level cache
// miss, both reads and writes (Section 4.2).
package engine

import (
	"fmt"

	"lsnuma/internal/cache"
	"lsnuma/internal/check"
	"lsnuma/internal/directory"
	"lsnuma/internal/fault"
	"lsnuma/internal/network"
	"lsnuma/internal/protocol"
)

// Timing holds the latency parameters of Table 1 / Figure 2.
type Timing struct {
	// MemTime is the memory (DRAM) access time in cycles.
	MemTime int
	// CtrlTime is the memory-controller occupancy per request in cycles.
	CtrlTime int
	// HopDelay is the network traversal time per hop in cycles.
	HopDelay int
	// BytesPerCycle is the link bandwidth for contention modeling.
	BytesPerCycle int
	// Topology selects the interconnect hop model (the paper's
	// point-to-point by default; Mesh2D scales delay with Manhattan
	// distance).
	Topology network.Topology
	// Concentration is the number of nodes sharing one mesh router (a
	// concentrated mesh): hop counts are Manhattan distances on the router
	// grid, so 256-1024-node machines keep realistic diameters. 0 or 1
	// means one node per router. Mesh2D only.
	Concentration int
}

// DefaultTiming returns the default latency parameters: memory 40 cycles
// and controller 20 cycles as in Table 1, with a 60-cycle network hop
// chosen so the composite access latencies land near the paper's Table 1
// targets — local ≈ 100, home ≈ 220, remote (read-on-dirty, 4 hops)
// ≈ 420 cycles (verified by a test). The paper's per-component and
// composite figures are mutually inconsistent as printed; the composites
// are what drive behaviour, so they take precedence.
func DefaultTiming() Timing {
	return Timing{MemTime: 40, CtrlTime: 20, HopDelay: 60, BytesPerCycle: 8}
}

// Validate checks the timing parameters.
func (t Timing) Validate() error {
	if t.MemTime < 0 || t.CtrlTime < 0 || t.HopDelay < 0 {
		return fmt.Errorf("engine: negative latency in %+v", t)
	}
	if t.BytesPerCycle < 1 {
		return fmt.Errorf("engine: bytes per cycle %d < 1", t.BytesPerCycle)
	}
	return nil
}

// Sched selects which scheduler drives the simulation. All three produce
// byte-identical Results; they differ only in host-side execution
// strategy.
type Sched uint8

const (
	// SchedRunAhead is the default conch-handoff scheduler with run-ahead
	// leases (see Machine.schedule).
	SchedRunAhead Sched = iota
	// SchedSerial is the per-access handshake reference scheduler,
	// equivalent to Config.SerialSchedule.
	SchedSerial
	// SchedParallel is the conservative parallel discrete-event scheduler:
	// directory homes (and the processors co-numbered with them) are
	// partitioned into shards, each driven by a worker goroutine inside
	// Chandy–Misra safe time windows; cross-shard transactions serialize
	// at barrier epochs (see Machine.scheduleParallel). Falls back to
	// run-ahead when a configuration is incompatible (recorders, protocol
	// fault injectors, false-sharing tracking, RecordOps, MapDirectory, or
	// a zero L1 access time).
	SchedParallel
)

func (s Sched) String() string {
	switch s {
	case SchedRunAhead:
		return "runahead"
	case SchedSerial:
		return "serial"
	case SchedParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Sched(%d)", uint8(s))
	}
}

// ParseSched converts a scheduler name ("", "runahead", "serial",
// "parallel"; "" means runahead) to a Sched.
func ParseSched(s string) (Sched, error) {
	switch s {
	case "", "runahead":
		return SchedRunAhead, nil
	case "serial":
		return SchedSerial, nil
	case "parallel":
		return SchedParallel, nil
	default:
		return SchedRunAhead, fmt.Errorf("engine: unknown scheduler %q (want runahead, serial, parallel)", s)
	}
}

// MaxNodes is the largest supported machine size. The directory's sharer
// sets scale past 64 nodes (inline word plus extension words), so the cap
// is only a sanity bound on simulation cost.
const MaxNodes = 4096

// Config describes the simulated machine.
type Config struct {
	// Nodes is the number of processor nodes (1..MaxNodes).
	Nodes int
	// L1 and L2 configure the per-node cache hierarchy. Both levels must
	// use the same block size.
	L1, L2 cache.Config
	// PageSize is the physical page size for round-robin placement.
	PageSize uint64
	// Timing holds the latency parameters.
	Timing Timing
	// Protocol selects the coherence policy (Baseline, AD or LS).
	Protocol protocol.Protocol
	// TrackSequences enables the load-store/migratory sequence detector
	// (Tables 2 and 3). Cheap; enabled by default in the public API.
	TrackSequences bool
	// TrackFalseSharing enables the word-granularity Dubois classifier
	// (Table 4). Costs memory proportional to the touched address space.
	TrackFalseSharing bool
	// MaxCycles aborts a run whose processors exceed this many cycles
	// (a guard against livelocked workloads). Zero means no limit.
	MaxCycles uint64
	// SerialSchedule forces the per-access handshake scheduler: every
	// memory operation round-trips through the central scheduler, as the
	// engine originally worked. The default run-ahead scheduler instead
	// leases processors the right to service local hits inline (see
	// Machine.schedule); the two produce bit-identical results — the
	// serial path is kept for differential testing, and is used
	// automatically when a trace recorder is installed.
	SerialSchedule bool
	// SoftwareExclusive honours exclusive-read annotations (Proc.ReadEx
	// and the load half of RMW): the read request is combined with the
	// ownership acquisition at the annotated sites, modelling the static
	// compiler techniques (Skeppstedt & Stenström's fictive exclusive
	// loads, Mowry's prefetch-exclusive) the paper compares against in
	// Sections 2.1 and 6. Without this flag the annotations degrade to
	// plain reads.
	SoftwareExclusive bool
	// RelaxedWrites models a relaxed memory consistency ablation (the
	// paper's Section 6 discussion): ordinary global stores retire into a
	// write buffer and do not stall the processor; atomic read-modify-
	// writes still drain the buffer (and so see the full latency). Under
	// this model the write-stall savings of LS/AD largely vanish while
	// their traffic savings remain — the paper's prediction.
	RelaxedWrites bool
	// CheckLevel runs the coherence invariant checker (internal/check)
	// online: check.Touched validates every block an operation touches,
	// before and after the transaction; check.Full adds a whole-machine
	// sweep every CheckInterval operations and at the end of the run. A
	// violation aborts the run with a *check.CoherenceViolation. The
	// default check.Off costs one nil comparison per serviced operation.
	CheckLevel check.Level
	// CheckInterval is the full-sweep period in serviced operations under
	// check.Full. Zero means the default (4096).
	CheckInterval uint64
	// FaultInjector, if non-nil, deterministically corrupts protocol state
	// mid-run (internal/fault) to prove the online checker detects real
	// corruption. Never set it for normal simulations.
	FaultInjector *fault.Injector
	// RecordOps keeps a ring buffer of the last RecordOps serviced
	// operations for crash diagnostics (Machine.LastOps). Zero disables
	// the ring.
	RecordOps int
	// DirMSHRs bounds the number of concurrent transactions each home
	// node's directory controller can buffer; a request that finds every
	// buffer busy is NACKed and retried under Retry. Zero means unlimited
	// buffers (the classic model).
	DirMSHRs int
	// Retry configures the requester-side retry state machine for NACKed
	// and lost transactions. The zero policy disables retries: any NACK
	// or loss then starves the requester and trips the watchdog.
	Retry protocol.RetryPolicy
	// ProgressWindow is the forward-progress watchdog's stall budget: a
	// transaction spending more than this many cycles in NACK/loss
	// recovery fails the run with a *StarvationError. Zero means the
	// default (4,000,000 cycles).
	ProgressWindow uint64
	// MsgFaults, if non-nil, subjects network messages to deterministic
	// drop/dup/reorder faults (fault.MsgInjector). Recovery is accounted
	// out-of-band, leaving the simulated timeline unchanged (see the
	// resil doc comment). Never set it for real measurements.
	MsgFaults *fault.MsgInjector
	// Cancel, if non-nil, is polled about every 1024 serviced operations;
	// a non-nil return aborts the run with a *CancelledError wrapping it.
	// Used for per-point wall-clock deadlines (context plumbing).
	Cancel func() error
	// MapDirectory selects the seed's map[uint64]*Entry directory storage
	// instead of the default flat paged layout. The two are bit-identical
	// in simulated behaviour; the map path is kept for differential
	// testing, like SerialSchedule for the scheduler.
	MapDirectory bool
	// Sched selects the scheduler (run-ahead, serial, parallel). All
	// produce byte-identical Results. SerialSchedule=true and an installed
	// recorder both force SchedSerial regardless of this field.
	Sched Sched
	// Shards is the parallel scheduler's home-shard count: directory homes
	// (and the processors co-numbered with them) are partitioned
	// round-robin into this many worker-driven shards. Zero means one
	// shard per host core (GOMAXPROCS), clamped to the node count. Ignored
	// outside SchedParallel.
	Shards int
	// Lookahead, when non-zero, caps the parallel scheduler's per-op
	// clock-advance bound at this many cycles. The automatic bounds
	// (cache/controller latencies plus the network's minimum cross-node
	// latency) are already safe; a cap only narrows the safe windows, so
	// this is a conservativeness/debugging knob, not a correctness one.
	// Ignored outside SchedParallel.
	Lookahead uint64
	// FuseLimit caps how many operations the parallel scheduler may
	// service in one fused batch streak before it must resume the
	// serviced processors. Zero means the default (1024); 1 disables
	// round fusion (one sub-batch per streak). Results are byte-identical
	// for every value — the limit only trades resume-phase amortization
	// against streak latency. Ignored outside SchedParallel.
	FuseLimit uint64
	// DirFormat selects the directory's wire format: full presence map
	// (the default and the differential oracle), limited-pointer Dir_i_B,
	// or coarse vector. The simulator always tracks the exact sharer set,
	// so the format never changes timing or protocol behaviour; it sets
	// the modeled per-entry storage cost and the architectural
	// extra-invalidation counters (stats.Dir / Result.Dir).
	DirFormat directory.Format
}

// SchemaVersion identifies the generation of simulated semantics: it is
// part of every persistent result-cache key, so cached Results are
// invalidated automatically when an engine change could alter any Result
// field. Bump it in any PR that changes simulated timing, protocol
// behaviour, or Result contents.
const SchemaVersion = 8

// Validate checks the machine configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > MaxNodes {
		return fmt.Errorf("engine: node count %d outside 1..%d", c.Nodes, MaxNodes)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("engine: L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("engine: L2: %w", err)
	}
	if c.L1.BlockSize != c.L2.BlockSize {
		return fmt.Errorf("engine: L1 block size %d != L2 block size %d", c.L1.BlockSize, c.L2.BlockSize)
	}
	if c.PageSize == 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("engine: page size %d not a power of two", c.PageSize)
	}
	if c.PageSize < c.L2.BlockSize {
		return fmt.Errorf("engine: page size %d smaller than block size %d", c.PageSize, c.L2.BlockSize)
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Protocol == nil {
		return fmt.Errorf("engine: no protocol configured")
	}
	if c.DirMSHRs < 0 {
		return fmt.Errorf("engine: negative directory MSHR count %d", c.DirMSHRs)
	}
	if c.Sched > SchedParallel {
		return fmt.Errorf("engine: unknown scheduler %d", c.Sched)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("engine: shard count %d outside 0..%d", c.Shards, MaxShards)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.DirFormat.Validate(c.Nodes); err != nil {
		return err
	}
	return nil
}
