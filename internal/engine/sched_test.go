package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// contendedProgram is a moderately contended mixed workload used by the
// scheduler tests: enough hits for run-ahead to engage, enough sharing
// for the service order to matter.
func contendedProgram(m *Machine) Program {
	lock := NewLock(m.Alloc(), "lock")
	data := m.Alloc().AllocBlocks("data", 64)
	return func(p *Proc) {
		r := p.Rand()
		for i := 0; i < 200; i++ {
			a := data + memory.Addr(r.Intn(32)*16)
			switch r.Intn(5) {
			case 0:
				lock.Acquire(p)
				p.Read(a)
				p.Write(a)
				lock.Release(p)
			case 1:
				p.Write(a)
			default:
				p.Read(a)
				p.Read(a) // guaranteed local hit
			}
			p.Compute(r.Intn(40))
		}
	}
}

// schedulerStats runs the contended workload under the given scheduler
// and returns the machine for inspection.
func schedulerStats(t *testing.T, serial bool) *Machine {
	t.Helper()
	cfg := testConfig(protocol.LS, protocol.Variant{})
	cfg.SerialSchedule = serial
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := contendedProgram(m)
	if err := m.Run([]Program{prog, prog, prog, prog}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunAheadEngages checks that the default scheduler actually services
// operations inline under the lease (the whole point of the optimization)
// and that the serial scheduler never does.
func TestRunAheadEngages(t *testing.T) {
	if got := schedulerStats(t, false).RunAheadOps(); got == 0 {
		t.Error("run-ahead scheduler serviced no operations inline")
	}
	if got := schedulerStats(t, true).RunAheadOps(); got != 0 {
		t.Errorf("serial scheduler serviced %d operations inline", got)
	}
}

// TestSchedulersBitIdentical compares every cycle- and traffic-level
// statistic between the serial handshake scheduler and the run-ahead
// handoff scheduler on the contended workload: the run-ahead path must
// service operations in exactly the serial order, so all simulated
// quantities must match bit for bit.
func TestSchedulersBitIdentical(t *testing.T) {
	serial := schedulerStats(t, true)
	ahead := schedulerStats(t, false)

	ss, as := serial.Stats(), ahead.Stats()
	if ss.ExecTime() != as.ExecTime() {
		t.Errorf("exec time: serial %d, run-ahead %d", ss.ExecTime(), as.ExecTime())
	}
	if ss.TotalMsgs() != as.TotalMsgs() || ss.TotalBytes() != as.TotalBytes() {
		t.Errorf("traffic: serial %d msgs/%d B, run-ahead %d msgs/%d B",
			ss.TotalMsgs(), ss.TotalBytes(), as.TotalMsgs(), as.TotalBytes())
	}
	for i := range ss.CPUs {
		if ss.CPUs[i] != as.CPUs[i] {
			t.Errorf("CPU %d: serial %+v, run-ahead %+v", i, ss.CPUs[i], as.CPUs[i])
		}
	}
	if ss.GlobalReadMisses() != as.GlobalReadMisses() || ss.GlobalWrites() != as.GlobalWrites() {
		t.Errorf("global actions differ: serial (%d,%d), run-ahead (%d,%d)",
			ss.GlobalReadMisses(), ss.GlobalWrites(), as.GlobalReadMisses(), as.GlobalWrites())
	}
	if serial.Sequences().Total() != ahead.Sequences().Total() {
		t.Errorf("sequence totals: serial %+v, run-ahead %+v",
			serial.Sequences().Total(), ahead.Sequences().Total())
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (program goroutines may still be unwinding when Run returns).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNoGoroutineLeakOnPanic: a program panic must terminate every
// sibling program goroutine (they would otherwise block forever on their
// resume channels), under both schedulers, whether the panic happens
// after scheduling has started or already in the startup prologue.
func TestNoGoroutineLeakOnPanic(t *testing.T) {
	for _, serial := range []bool{false, true} {
		for _, early := range []bool{false, true} {
			name := fmt.Sprintf("serial=%v/early=%v", serial, early)
			t.Run(name, func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				cfg := testConfig(protocol.Baseline, protocol.Variant{})
				cfg.SerialSchedule = serial
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				spin := func(p *Proc) {
					for {
						p.Read(0)
						p.Compute(10)
					}
				}
				bomb := func(p *Proc) {
					if !early {
						for i := 0; i < 50; i++ {
							p.Read(16)
							p.Compute(5)
						}
					}
					panic("boom")
				}
				err = m.Run([]Program{spin, spin, bomb, spin})
				if err == nil || !strings.Contains(err.Error(), "boom") {
					t.Fatalf("panic not propagated: %v", err)
				}
				waitForGoroutines(t, baseline)
			})
		}
	}
}

// TestNoGoroutineLeakOnMaxCycles: the livelock guard must likewise drain
// every program goroutine under both schedulers.
func TestNoGoroutineLeakOnMaxCycles(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cfg := testConfig(protocol.Baseline, protocol.Variant{})
			cfg.SerialSchedule = serial
			cfg.MaxCycles = 100_000
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spin := func(p *Proc) {
				for {
					p.Read(memory.Addr(16 * int(p.ID())))
					p.Compute(10)
				}
			}
			err = m.Run([]Program{spin, spin, spin, spin})
			if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
				t.Fatalf("livelock guard did not fire: %v", err)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// TestSerialMaxCyclesGuard mirrors TestMaxCyclesGuard on the serial path.
func TestSerialMaxCyclesGuard(t *testing.T) {
	cfg := testConfig(protocol.Baseline, protocol.Variant{})
	cfg.SerialSchedule = true
	cfg.MaxCycles = 50_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run([]Program{func(p *Proc) {
		for {
			p.Read(0)
			p.Compute(100)
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("livelock guard did not fire: %v", err)
	}
}

// TestOpHeapOrder pushes randomly ordered pending ops and checks the heap
// pops them in the scheduler's total service order: ascending clock, ties
// by CPU id.
func TestOpHeapOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	procs := make([]*Proc, 8)
	for i := range procs {
		procs[i] = &Proc{id: memory.NodeID(i)}
	}
	for trial := 0; trial < 50; trial++ {
		var h opHeap
		n := 1 + r.Intn(len(procs))
		perm := r.Perm(len(procs))[:n]
		ops := make([]*op, 0, n)
		for _, pi := range perm {
			o := &op{proc: procs[pi], at: uint64(r.Intn(5))} // ties likely
			ops = append(ops, o)
			h.push(o)
		}
		var prev *op
		for range ops {
			if h.min() != h.a[0] {
				t.Fatal("min disagrees with heap root")
			}
			o := h.pop()
			if prev != nil && opBefore(o, prev) {
				t.Fatalf("trial %d: popped (%d,%d) after (%d,%d)",
					trial, o.at, o.proc.id, prev.at, prev.proc.id)
			}
			prev = o
		}
		if h.pop() != nil || h.min() != nil {
			t.Fatal("heap not empty after popping all ops")
		}
	}
}
