package engine

import (
	"fmt"

	"lsnuma/internal/cache"
	"lsnuma/internal/classify"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
	"lsnuma/internal/network"
	"lsnuma/internal/stats"
)

// Program is the code one simulated processor executes. It runs as an
// ordinary Go function; every interaction with simulated memory goes
// through the Proc handle. Programs of different processors never run
// concurrently — the scheduler resumes exactly one at a time — so shared
// Go-side workload state needs no synchronization beyond the simulated
// locks.
type Program func(p *Proc)

// node is the per-node hardware state.
type node struct {
	caches   *cache.Hierarchy
	ctrlBusy uint64 // memory-controller occupancy (busy-until)
}

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg    Config
	layout memory.Layout
	dir    *directory.Directory
	net    *network.Network
	nodes  []*node
	st     *stats.Stats
	seq    *classify.Sequences
	fs     *classify.FalseSharing
	alloc  *memory.Allocator

	procs  []*Proc
	events chan event

	// split is the reusable scratch buffer for block-straddling accesses
	// (see execute); only ever used between two scheduler steps.
	split []memory.Access

	recorder func(OpRecord)
}

// OpRecord describes one scheduled memory operation, for trace capture.
type OpRecord struct {
	CPU     memory.NodeID
	Addr    memory.Addr
	Size    uint32
	Kind    memory.Kind
	RMW     bool
	Source  memory.Source
	Compute uint32 // busy cycles since the CPU's previous operation
}

type event struct {
	proc *Proc
	op   *op // nil means the program finished
	err  any // non-nil if the program panicked
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := memory.NewLayout(cfg.PageSize, cfg.L2.BlockSize, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	st := stats.New(cfg.Nodes)
	nw, err := network.New(network.Config{
		HopDelay:      cfg.Timing.HopDelay,
		BytesPerCycle: cfg.Timing.BytesPerCycle,
		BlockSize:     cfg.L2.BlockSize,
		Topology:      cfg.Timing.Topology,
	}, cfg.Nodes, st)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:    cfg,
		layout: layout,
		dir:    directory.New(layout, cfg.Protocol.InitEntry),
		net:    nw,
		st:     st,
		alloc:  memory.NewAllocator(layout, 0),
	}
	for i := 0; i < cfg.Nodes; i++ {
		h, err := cache.NewHierarchy(cfg.L1, cfg.L2)
		if err != nil {
			return nil, err
		}
		m.nodes = append(m.nodes, &node{caches: h})
	}
	if cfg.TrackSequences {
		m.seq = classify.NewSequences(layout)
		m.seq.Locate = m.alloc.FindName
	}
	if cfg.TrackFalseSharing {
		m.fs = classify.NewFalseSharing(layout, cfg.Nodes)
	}
	return m, nil
}

// Layout returns the machine's address-space layout.
func (m *Machine) Layout() memory.Layout { return m.layout }

// Alloc returns the machine's shared address-space allocator, used by
// workloads to place their data structures before Run.
func (m *Machine) Alloc() *memory.Allocator { return m.alloc }

// Nodes returns the number of processor nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Stats exposes the statistics collector (final after Run returns).
func (m *Machine) Stats() *stats.Stats { return m.st }

// Sequences returns the load-store sequence analysis, or nil if disabled.
func (m *Machine) Sequences() *classify.Sequences { return m.seq }

// FalseSharing returns the Dubois miss classifier, or nil if disabled.
func (m *Machine) FalseSharing() *classify.FalseSharing { return m.fs }

// Directory exposes the directory for invariant checks in tests.
func (m *Machine) Directory() *directory.Directory { return m.dir }

// Hierarchy exposes node n's cache hierarchy for tests.
func (m *Machine) Hierarchy(n memory.NodeID) *cache.Hierarchy { return m.nodes[n].caches }

// SetRecorder installs a hook invoked for every scheduled memory
// operation (trace capture). Must be set before Run.
func (m *Machine) SetRecorder(fn func(OpRecord)) { m.recorder = fn }

// Run executes one program per processor to completion and finalizes the
// statistics. The i-th program runs on node i; if fewer programs than
// nodes are supplied the remaining processors stay idle. Run may be called
// only once per Machine.
func (m *Machine) Run(programs []Program) error {
	if m.procs != nil {
		return fmt.Errorf("engine: Run called twice on the same machine")
	}
	if len(programs) > m.cfg.Nodes {
		return fmt.Errorf("engine: %d programs for %d nodes", len(programs), m.cfg.Nodes)
	}
	m.events = make(chan event)
	for i, prog := range programs {
		if prog == nil {
			continue // nil program: the node stays idle
		}
		p := &Proc{
			m:      m,
			id:     memory.NodeID(i),
			resume: make(chan struct{}),
		}
		m.procs = append(m.procs, p)
		go func(prog Program, p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					m.events <- event{proc: p, err: r}
					return
				}
				m.events <- event{proc: p}
			}()
			prog(p)
		}(prog, p)
	}
	return m.schedule()
}

// schedule is the deterministic serial scheduler: it waits for the single
// running processor to submit its next memory operation (or finish), then
// services the pending operation with the smallest processor clock
// (tie-break: lowest CPU id).
func (m *Machine) schedule() error {
	running := len(m.procs)
	pending := make([]*op, m.cfg.Nodes) // indexed by CPU id
	live := len(m.procs)

	for {
		for running > 0 {
			ev := <-m.events
			running--
			if ev.err != nil {
				// A program panicked: drain cannot continue safely.
				return fmt.Errorf("engine: program on CPU %d panicked: %v", ev.proc.id, ev.err)
			}
			if ev.op == nil {
				live--
				continue
			}
			pending[ev.proc.id] = ev.op
		}
		if live == 0 {
			break
		}
		// Pick the pending op with the smallest clock.
		var next *op
		for _, o := range pending {
			if o == nil {
				continue
			}
			if next == nil || o.at < next.at || (o.at == next.at && o.proc.id < next.proc.id) {
				next = o
			}
		}
		if next == nil {
			return fmt.Errorf("engine: deadlock — %d live processors but none runnable", live)
		}
		if m.cfg.MaxCycles > 0 && next.at > m.cfg.MaxCycles {
			return fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles)
		}
		pending[next.proc.id] = nil
		if m.recorder != nil {
			gap := uint32(0)
			if next.at > next.proc.lastDone {
				gap = uint32(next.at - next.proc.lastDone)
			}
			m.recorder(OpRecord{
				CPU: next.proc.id, Addr: next.addr, Size: next.size,
				Kind: next.kind, RMW: next.rmw, Source: next.proc.src,
				Compute: gap,
			})
		}
		m.execute(next)
		next.proc.lastDone = next.proc.clock
		running = 1
		next.proc.resume <- struct{}{}
	}

	if m.fs != nil {
		m.fs.Finalize()
	}
	return nil
}

// CheckCoherence validates the global single-writer/multiple-reader
// invariant between the directory and all caches: it returns an error if
// any block is held Modified/LStemp by one cache while any other cache
// holds it, or if directory presence information disagrees with the
// caches. Intended for tests after (or during) a run.
func (m *Machine) CheckCoherence() error {
	type holder struct {
		node  memory.NodeID
		state cache.State
	}
	held := make(map[memory.Addr][]holder)
	for i, n := range m.nodes {
		for _, ln := range n.caches.L2().Resident() {
			held[ln.Block] = append(held[ln.Block], holder{memory.NodeID(i), ln.State})
		}
	}
	for block, hs := range held {
		excl := 0
		for _, h := range hs {
			if h.state.Exclusive() {
				excl++
			}
		}
		if excl > 0 && len(hs) > 1 {
			return fmt.Errorf("coherence: block %#x held exclusively with %d total copies", block, len(hs))
		}
		e := m.dir.Entry(block)
		for _, h := range hs {
			if !e.Holds(h.node) {
				return fmt.Errorf("coherence: block %#x cached at node %d but directory (%v) disagrees",
					block, h.node, e.State)
			}
		}
	}
	// Directory must not claim holders that do not exist.
	var dirErr error
	m.dir.ForEach(func(idx uint64, e *directory.Entry) {
		if dirErr != nil {
			return
		}
		if err := e.CheckInvariant(); err != nil {
			dirErr = fmt.Errorf("block index %#x: %w", idx, err)
			return
		}
		block := memory.Addr(idx * m.layout.BlockSize)
		e.Holders().ForEach(func(n memory.NodeID) {
			if m.nodes[n].caches.State(block) == cache.Invalid && dirErr == nil {
				dirErr = fmt.Errorf("coherence: directory says node %d holds block %#x but cache is invalid", n, block)
			}
		})
	})
	return dirErr
}
