package engine

import (
	"fmt"
	"runtime/debug"

	"lsnuma/internal/cache"
	"lsnuma/internal/check"
	"lsnuma/internal/classify"
	"lsnuma/internal/directory"
	"lsnuma/internal/fault"
	"lsnuma/internal/memory"
	"lsnuma/internal/network"
	"lsnuma/internal/stats"
)

// Program is the code one simulated processor executes. It runs as an
// ordinary Go function; every interaction with simulated memory goes
// through the Proc handle. Programs of different processors never run
// concurrently — the scheduler resumes exactly one at a time — so shared
// Go-side workload state needs no synchronization beyond the simulated
// locks.
type Program func(p *Proc)

// node is the per-node hardware state.
type node struct {
	caches   *cache.Hierarchy
	ctrlBusy uint64 // memory-controller occupancy (busy-until)
}

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg    Config
	layout memory.Layout
	dir    *directory.Directory
	net    *network.Network
	nodes  []*node
	st     *stats.Stats
	seq    *classify.Sequences
	fs     *classify.FalseSharing
	alloc  *memory.Allocator

	procs  []*Proc
	events chan event

	// split is the reusable scratch buffer for block-straddling accesses
	// (see execute); only ever used between two scheduler steps.
	split []memory.Access

	// Scheduler state for the default handoff scheduler. Exactly one
	// goroutine is active at a time (initially Run, then whichever
	// processor goroutine last received a resume — it "holds the conch");
	// only the active goroutine touches these fields, and every transfer
	// of control happens through a channel operation, so the accesses are
	// totally ordered without locks.
	h    opHeap     // pending ops of every parked processor
	live int        // processors whose programs have not finished
	done chan error // handoff scheduler's completion signal to Run

	// serial selects the per-access handshake scheduler (SerialSchedule
	// or an installed recorder); set once before the goroutines start.
	serial bool

	// aborted is set (once) by drain/abortConch after a scheduler error;
	// program goroutines observe it after their next resume and
	// terminate. All accesses are ordered by the resume/events channel
	// operations.
	aborted bool

	// runAheadOps counts operations serviced inline under a run-ahead
	// lease, bypassing the scheduler handshake (introspection/tests).
	runAheadOps uint64

	recorder func(OpRecord)

	// Robustness state (Config.CheckLevel / FaultInjector / RecordOps).
	// hooks gates the whole per-operation robustness path with a single
	// comparison, so a machine with everything off pays nothing. servicing
	// is the operation currently inside Machine.service: on an abort its
	// processor is parked in submit without an entry in any pending list,
	// so the abort paths must wake it explicitly.
	hooks      bool
	checker    *check.Checker
	checkEvery uint64
	faults     *fault.Injector
	ring       []OpTrace // last-ops ring buffer (RecordOps)
	ringPos    int
	ringLen    int
	servicing  *op

	// coord is the coordinator servicing lane (stats, network sink,
	// checker, per-op hook state): the only lane under the serial and
	// run-ahead schedulers, and the quiescent-phase lane of the parallel
	// scheduler, whose shard workers get lanes of their own (see par.go).
	coord *lane
	// par and park exist only for the duration of a parallel Run: the
	// shard/window state, and the channel active processors park on (the
	// coordinator owns the conch permanently there, so the handoff path's
	// heap-push protocol does not apply).
	par  *parSched
	park chan event
	// winTrack arms the incremental safe window's dirty-event queues
	// (Machine.noteDirty) for the duration of a parallel run; off
	// everywhere else so the other schedulers pay one boolean test.
	winTrack bool

	// resil is the resilient transaction layer (finite home buffers,
	// NACK/retry, message-fault recovery, forward-progress watchdog);
	// nil when DirMSHRs, Retry and MsgFaults are all off.
	resil *resil
	// cancel, if set, is polled every 1024 serviced operations through
	// the hooks path (Config.Cancel).
	cancel func() error
}

// CancelledError aborts a run whose Config.Cancel hook reported an error
// (per-point wall-clock deadlines, context cancellation). errors.Is/As
// reach the hook's error through Unwrap.
type CancelledError struct{ Err error }

func (e *CancelledError) Error() string { return "engine: run cancelled: " + e.Err.Error() }

// Unwrap exposes the hook's error to errors.Is/As.
func (e *CancelledError) Unwrap() error { return e.Err }

// OpTrace is one entry of the crash-diagnostics ring buffer
// (Config.RecordOps): the operations serviced just before a failure.
type OpTrace struct {
	CPU  memory.NodeID
	At   uint64 // issuing processor's clock at issue
	Addr memory.Addr
	Size uint32
	Kind memory.Kind
	RMW  bool
}

// PanicError is a panic — in a program or in the engine itself —
// converted into a run error, with the goroutine stack captured at the
// point of recovery.
type PanicError struct {
	CPU   memory.NodeID // issuing CPU, or memory.NoNode when unattributable
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.CPU != memory.NoNode {
		return fmt.Sprintf("engine: program on CPU %d panicked: %v", e.CPU, e.Value)
	}
	return fmt.Sprintf("engine: panicked: %v", e.Value)
}

// recoveredError converts a recovered panic into the run's error. The
// structured failures — a CoherenceViolation from the online checker, a
// StarvationError from the forward-progress watchdog, a CancelledError
// from the Cancel hook — pass through unchanged; anything else becomes a
// PanicError with the stack captured here, on the goroutine that
// panicked.
func recoveredError(cpu memory.NodeID, r any) error {
	switch v := r.(type) {
	case *check.CoherenceViolation:
		return v
	case *StarvationError:
		return v
	case *CancelledError:
		return v
	}
	return &PanicError{CPU: cpu, Value: r, Stack: debug.Stack()}
}

// eventError extracts the run error from a program goroutine's failure
// event (the goroutine's recover already converted the panic).
func eventError(ev event) error {
	if err, ok := ev.err.(error); ok {
		return err
	}
	return fmt.Errorf("engine: program on CPU %d panicked: %v", ev.proc.id, ev.err)
}

// OpRecord describes one scheduled memory operation, for trace capture.
type OpRecord struct {
	CPU     memory.NodeID
	Addr    memory.Addr
	Size    uint32
	Kind    memory.Kind
	RMW     bool
	Source  memory.Source
	Compute uint32 // busy cycles since the CPU's previous operation
}

type event struct {
	proc *Proc
	op   *op // nil means the program finished
	err  any // non-nil if the program panicked
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := memory.NewLayout(cfg.PageSize, cfg.L2.BlockSize, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	st := stats.New(cfg.Nodes)
	nw, err := network.New(network.Config{
		HopDelay:      cfg.Timing.HopDelay,
		BytesPerCycle: cfg.Timing.BytesPerCycle,
		BlockSize:     cfg.L2.BlockSize,
		Topology:      cfg.Timing.Topology,
		Concentration: cfg.Timing.Concentration,
	}, cfg.Nodes, st)
	if err != nil {
		return nil, err
	}
	dir := directory.New(layout, cfg.Protocol.InitEntry)
	if cfg.MapDirectory {
		dir = directory.NewMap(layout, cfg.Protocol.InitEntry)
	}
	m := &Machine{
		cfg:    cfg,
		layout: layout,
		dir:    dir,
		net:    nw,
		st:     st,
		alloc:  memory.NewAllocator(layout, 0),
	}
	for i := 0; i < cfg.Nodes; i++ {
		h, err := cache.NewHierarchy(cfg.L1, cfg.L2)
		if err != nil {
			return nil, err
		}
		m.nodes = append(m.nodes, &node{caches: h})
	}
	if cfg.TrackSequences {
		m.seq = classify.NewSequences(layout)
		m.seq.Locate = m.alloc.FindName
	}
	if cfg.TrackFalseSharing {
		m.fs = classify.NewFalseSharing(layout, cfg.Nodes)
	}
	m.coord = &lane{st: st, net: nw, isCoord: true}
	if cfg.CheckLevel > check.Off {
		m.checker = check.New(layout, m.dir, m.hierarchies())
		m.checkEvery = cfg.CheckInterval
		if m.checkEvery == 0 {
			m.checkEvery = 4096
		}
		m.coord.checker = m.checker
		m.coord.touched = make([]memory.Addr, 0, 8)
	}
	m.faults = cfg.FaultInjector
	if cfg.RecordOps > 0 {
		m.ring = make([]OpTrace, cfg.RecordOps)
	}
	if cfg.DirMSHRs > 0 || cfg.MsgFaults != nil || cfg.Retry.Enabled() {
		m.resil = newResil(cfg)
	}
	m.cancel = cfg.Cancel
	m.hooks = m.checker != nil || m.faults != nil || m.ring != nil || m.cancel != nil
	return m, nil
}

// Reset returns the machine to its post-NewMachine state under a (possibly
// different) configuration, so sweep runners can re-run points against one
// machine instead of reallocating caches, directory pages and scheduler
// structures per point. The new configuration must match the machine's
// structure — node count, cache geometry, page size and directory layout —
// and must not install fault injectors (injector state is per-machine;
// pooling faulted machines would break their determinism). A Reset machine
// produces bit-identical Results to a freshly built one.
func (m *Machine) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Nodes != m.cfg.Nodes || cfg.L1 != m.cfg.L1 || cfg.L2 != m.cfg.L2 ||
		cfg.PageSize != m.cfg.PageSize || cfg.MapDirectory != m.cfg.MapDirectory {
		return fmt.Errorf("engine: Reset with structurally different config")
	}
	if cfg.FaultInjector != nil || cfg.MsgFaults != nil {
		return fmt.Errorf("engine: Reset with fault injectors (build a fresh machine)")
	}
	m.st.Reset()
	nw, err := network.New(network.Config{
		HopDelay:      cfg.Timing.HopDelay,
		BytesPerCycle: cfg.Timing.BytesPerCycle,
		BlockSize:     cfg.L2.BlockSize,
		Topology:      cfg.Timing.Topology,
		Concentration: cfg.Timing.Concentration,
	}, cfg.Nodes, m.st)
	if err != nil {
		return err
	}
	m.cfg = cfg
	m.net = nw
	m.dir.SetInit(cfg.Protocol.InitEntry)
	m.dir.Reset()
	for _, n := range m.nodes {
		n.caches.Reset()
		n.ctrlBusy = 0
	}
	m.alloc = memory.NewAllocator(m.layout, 0)
	m.seq = nil
	if cfg.TrackSequences {
		m.seq = classify.NewSequences(m.layout)
		m.seq.Locate = m.alloc.FindName
	}
	m.fs = nil
	if cfg.TrackFalseSharing {
		m.fs = classify.NewFalseSharing(m.layout, cfg.Nodes)
	}
	m.checker, m.checkEvery = nil, 0
	m.coord = &lane{st: m.st, net: m.net, isCoord: true}
	if cfg.CheckLevel > check.Off {
		m.checker = check.New(m.layout, m.dir, m.hierarchies())
		m.checkEvery = cfg.CheckInterval
		if m.checkEvery == 0 {
			m.checkEvery = 4096
		}
		m.coord.checker = m.checker
		m.coord.touched = make([]memory.Addr, 0, 8)
	}
	m.faults = nil
	m.ring, m.ringPos, m.ringLen = nil, 0, 0
	if cfg.RecordOps > 0 {
		m.ring = make([]OpTrace, cfg.RecordOps)
	}
	m.resil = nil
	if cfg.DirMSHRs > 0 || cfg.Retry.Enabled() {
		m.resil = newResil(cfg)
	}
	m.cancel = cfg.Cancel
	m.hooks = m.checker != nil || m.ring != nil || m.cancel != nil

	m.procs = nil
	m.events = nil
	m.done = nil
	m.h.a = m.h.a[:0]
	m.live = 0
	m.serial = false
	m.aborted = false
	m.runAheadOps = 0
	m.recorder = nil
	m.servicing = nil
	m.split = m.split[:0]
	m.par = nil
	m.park = nil
	m.winTrack = false
	m.h.onPush, m.h.onPop = nil, nil
	return nil
}

// hierarchies returns the per-node cache hierarchies indexed by node ID.
func (m *Machine) hierarchies() []*cache.Hierarchy {
	hs := make([]*cache.Hierarchy, len(m.nodes))
	for i, n := range m.nodes {
		hs[i] = n.caches
	}
	return hs
}

// Layout returns the machine's address-space layout.
func (m *Machine) Layout() memory.Layout { return m.layout }

// Alloc returns the machine's shared address-space allocator, used by
// workloads to place their data structures before Run.
func (m *Machine) Alloc() *memory.Allocator { return m.alloc }

// Nodes returns the number of processor nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Stats exposes the statistics collector (final after Run returns).
func (m *Machine) Stats() *stats.Stats { return m.st }

// Sequences returns the load-store sequence analysis, or nil if disabled.
func (m *Machine) Sequences() *classify.Sequences { return m.seq }

// FalseSharing returns the Dubois miss classifier, or nil if disabled.
func (m *Machine) FalseSharing() *classify.FalseSharing { return m.fs }

// Directory exposes the directory for invariant checks in tests.
func (m *Machine) Directory() *directory.Directory { return m.dir }

// Hierarchy exposes node n's cache hierarchy for tests.
func (m *Machine) Hierarchy(n memory.NodeID) *cache.Hierarchy { return m.nodes[n].caches }

// SetRecorder installs a hook invoked for every scheduled memory
// operation (trace capture). Must be set before Run. A recorder implies
// the serial scheduler: every operation must pass through the scheduler
// for the hook to see it, so run-ahead is disabled for the run.
func (m *Machine) SetRecorder(fn func(OpRecord)) { m.recorder = fn }

// RunAheadOps returns the number of operations serviced inline under a
// run-ahead lease (zero under Config.SerialSchedule or a recorder).
func (m *Machine) RunAheadOps() uint64 { return m.runAheadOps }

// LastOps returns the crash-diagnostics ring (Config.RecordOps) in
// chronological order: the last operations serviced before Run returned.
func (m *Machine) LastOps() []OpTrace {
	if m.ringLen == 0 {
		return nil
	}
	out := make([]OpTrace, 0, m.ringLen)
	start := m.ringPos - m.ringLen
	if start < 0 {
		start += len(m.ring)
	}
	for i := 0; i < m.ringLen; i++ {
		out = append(out, m.ring[(start+i)%len(m.ring)])
	}
	return out
}

// Run executes one program per processor to completion and finalizes the
// statistics. The i-th program runs on node i; if fewer programs than
// nodes are supplied the remaining processors stay idle. Run may be called
// only once per Machine.
func (m *Machine) Run(programs []Program) error {
	if m.procs != nil {
		return fmt.Errorf("engine: Run called twice on the same machine")
	}
	if len(programs) > m.cfg.Nodes {
		return fmt.Errorf("engine: %d programs for %d nodes", len(programs), m.cfg.Nodes)
	}
	m.events = make(chan event)
	m.done = make(chan error)
	m.serial = m.cfg.SerialSchedule || m.recorder != nil || m.cfg.Sched == SchedSerial
	if !m.serial && m.cfg.Sched == SchedParallel && m.parallelOK() {
		m.par = newParSched(m)
		if !m.par.single {
			// A single shard runs the degenerate conch-handoff loop
			// (scheduleParOne): processors drive scheduler steps
			// themselves and never park with a coordinator, so the park
			// channel stays nil and the routing below falls through to
			// the run-ahead paths.
			m.park = make(chan event)
		}
	}
	for i, prog := range programs {
		if prog == nil {
			continue // nil program: the node stays idle
		}
		p := &Proc{
			m:      m,
			id:     memory.NodeID(i),
			resume: make(chan struct{}),
		}
		m.procs = append(m.procs, p)
		go func(prog Program, p *Proc) {
			defer func() {
				r := recover()
				// Under the parallel scheduler the coordinator keeps the
				// conch permanently: active processors report through the
				// park channel and never drive scheduler steps themselves.
				switch {
				case r == nil:
					if p.active {
						if m.park != nil {
							m.park <- event{proc: p}
							return
						}
						m.finish(p) // holds the conch: drive the next step
						return
					}
					m.events <- event{proc: p}
				case isAbort(r):
					// Terminated by a drain; report back unless this
					// goroutine initiated the abort itself (the drain
					// then already ran and nobody is listening).
					if r.(abortProgram).notify {
						if m.park != nil && p.active {
							m.park <- event{proc: p, err: r}
							return
						}
						m.events <- event{proc: p, err: r}
					}
				case p.active:
					if m.park != nil {
						m.park <- event{proc: p, err: recoveredError(p.id, r)}
						return
					}
					m.abortConch(p, recoveredError(p.id, r))
				default:
					m.events <- event{proc: p, err: recoveredError(p.id, r)}
				}
			}()
			prog(p)
		}(prog, p)
	}
	if m.serial {
		return m.scheduleSerial()
	}
	if m.par != nil {
		return m.scheduleParallel()
	}
	return m.schedule()
}

// service executes one scheduled operation: the recorder hook (if any),
// the detailed memory-system model, and the issuing processor's
// completion bookkeeping, all against the given servicing lane — the
// coordinator lane on the serial/run-ahead paths, a shard worker's lane
// inside a parallel batch round. Identical in effect to the inline
// run-ahead path of Proc.runInline. On the coordinator the in-flight
// operation is registered in m.servicing so the abort paths can wake its
// (parked, list-less) processor if anything panics; worker panics are
// caught by runBatch instead.
func (m *Machine) service(ln *lane, next *op) {
	if ln.isCoord {
		m.servicing = next
	}
	if m.recorder != nil {
		gap := uint32(0)
		if next.at > next.proc.lastDone {
			gap = uint32(next.at - next.proc.lastDone)
		}
		m.recorder(OpRecord{
			CPU: next.proc.id, Addr: next.addr, Size: next.size,
			Kind: next.kind, RMW: next.rmw, Source: next.proc.src,
			Compute: gap,
		})
	}
	ln.curAt, ln.curCPU = next.at, next.proc.id
	if ln.checker != nil {
		m.precheckOp(ln, next)
	}
	m.execute(ln, next)
	next.proc.lastDone = next.proc.clock
	if m.hooks {
		m.afterOp(ln, next)
	}
	if ln.isCoord {
		m.servicing = nil
	}
}

// precheckOp validates every block the operation is about to touch, so a
// corruption is reported as a structured CoherenceViolation before the
// memory system trips over it with a bare panic.
func (m *Machine) precheckOp(ln *lane, o *op) {
	first := m.layout.Block(o.addr)
	last := first
	if o.size > 0 {
		last = m.layout.Block(o.addr + memory.Addr(o.size) - 1)
	}
	for b := first; ; b += memory.Addr(m.layout.BlockSize) {
		if err := ln.checker.CheckBlock(b, o.at); err != nil {
			panic(err)
		}
		if b >= last {
			break
		}
	}
}

// afterOp runs the per-operation robustness hooks once an operation has
// been fully serviced: the crash-diagnostics ring, the touched-block
// invariant checks, fault injection, and the periodic full sweep. Checker
// failures panic with a *CoherenceViolation and flow through the normal
// abort machinery. Cancel polling, the ring, fault injection and the full
// sweep are coordinator-only duties (workers count sinceSweep; the
// coordinator folds the counts in and sweeps at quiescence).
func (m *Machine) afterOp(ln *lane, o *op) {
	ln.opCount++
	if m.cancel != nil && ln.isCoord && ln.opCount&1023 == 0 {
		if err := m.cancel(); err != nil {
			panic(&CancelledError{Err: err})
		}
	}
	if m.ring != nil {
		m.ring[m.ringPos] = OpTrace{
			CPU: o.proc.id, At: o.at, Addr: o.addr, Size: o.size,
			Kind: o.kind, RMW: o.rmw,
		}
		m.ringPos++
		if m.ringPos == len(m.ring) {
			m.ringPos = 0
		}
		if m.ringLen < len(m.ring) {
			m.ringLen++
		}
	}
	if ln.checker != nil {
		for _, b := range ln.touched {
			if err := ln.checker.CheckBlock(b, o.proc.clock); err != nil {
				ln.touched = ln.touched[:0]
				panic(err)
			}
		}
		ln.touched = ln.touched[:0]
	}
	if m.faults != nil {
		m.faults.Tick(m, ln.opCount, o.proc.clock)
	}
	if ln.checker != nil && m.cfg.CheckLevel >= check.Full {
		ln.sinceSweep++
		if ln.isCoord && ln.sinceSweep >= m.checkEvery {
			ln.sinceSweep = 0
			if err := ln.checker.CheckAll(o.proc.clock); err != nil {
				panic(err)
			}
		}
	}
}

// finalCheck is the end-of-run whole-machine sweep under check.Full.
func (m *Machine) finalCheck() error {
	if m.checker == nil || m.cfg.CheckLevel < check.Full {
		return nil
	}
	var t uint64
	for _, p := range m.procs {
		if p.clock > t {
			t = p.clock
		}
	}
	return m.checker.CheckAll(t)
}

// schedule is the default run-ahead handoff scheduler. Service order is
// identical to the serial scheduler — always the pending operation with
// the smallest (clock, CPU id), kept in a min-heap rather than rescanned
// linearly — but the per-access handshake with a central goroutine is
// gone. Run only collects every processor's first operation and services
// the winner; from then on the active processor goroutine drives the
// schedule itself (Proc.submitSlow, Machine.finish): it pushes its own
// operation, pops the global minimum, services it, and either continues
// (its own op won — zero context switches) or hands control directly to
// the winning processor (one switch, versus two through a scheduler
// goroutine). On top of that, every service grants the processor a
// run-ahead lease — the (clock, id) horizon of the best other pending
// operation — under which purely local hits are serviced inline with no
// heap traffic at all (Proc.runInline). Every step services the same op
// the serial scheduler would pick, so simulated cycle counts are
// bit-identical. Run waits on m.done for completion or error.
//
// The first scheduler step below runs on this (the Run) goroutine, so a
// panic while servicing it — a checker violation or an engine bug — is
// recovered here: the in-flight operation is re-parked and every program
// goroutine drained, keeping the error paths leak-free.
func (m *Machine) schedule() (err error) {
	running := len(m.procs)
	m.live = len(m.procs)
	m.h.a = make([]*op, 0, len(m.procs))
	defer func() {
		if r := recover(); r != nil {
			cpu := memory.NoNode
			if o := m.servicing; o != nil {
				cpu = o.proc.id
				m.servicing = nil
				m.h.push(o)
			}
			m.drain(m.live, m.h.a)
			err = recoveredError(cpu, r)
		}
	}()

	// Collect every processor's first operation (programs run their
	// prologues concurrently, exactly as under the serial scheduler).
	for running > 0 {
		ev := <-m.events
		running--
		if ev.err != nil {
			m.drain(m.live-1, m.h.a)
			return eventError(ev)
		}
		if ev.op == nil {
			m.live--
			continue
		}
		m.h.push(ev.op)
	}
	if m.live == 0 {
		if m.fs != nil {
			m.fs.Finalize()
		}
		return m.finalCheck()
	}

	// First step: service the winner and hand it the conch.
	next, ok := m.popServe()
	if !ok {
		m.drain(m.live, m.h.a)
		return fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles)
	}
	m.grantLease(next.proc)
	next.proc.resume <- struct{}{}

	return <-m.done
}

// popServe performs scheduler steps from the goroutine holding the
// conch: pop the globally earliest pending operation, guard, service it
// — and, when it is a declarative spin-wait whose predicate is still
// false, advance the spinner and re-arm the read without waking its
// goroutine, then keep going. It returns the first completed operation
// (ok=true; its processor is the one to resume), or the operation that
// tripped the MaxCycles livelock guard (ok=false; already re-parked in
// the heap so the abort paths find its processor).
//
// Iterating spins here is what makes contended barriers and locks cheap:
// each spin read is still a heap-ordered, fully modeled operation —
// byte-identical to the serial scheduler's — but a processor that spins N
// times costs one goroutine handoff instead of N.
func (m *Machine) popServe() (next *op, ok bool) {
	if m.par != nil {
		m.par.rs.SerialSteps++
	}
	for {
		next = m.h.pop()
		if m.cfg.MaxCycles > 0 && next.at > m.cfg.MaxCycles {
			m.h.push(next)
			return next, false
		}
		m.service(m.coord, next)
		if s := next.spin; s != nil && !s.stop() {
			next.proc.Compute(s.step())
			next.at = next.proc.clock
			m.h.push(next)
			continue
		}
		return next, true
	}
}

// grantLease grants p the run-ahead lease up to the best other pending
// op. With no other pending op the lease is unbounded (the id bound is
// above every real CPU id, so the tie case cannot reject).
func (m *Machine) grantLease(p *Proc) {
	if o := m.h.min(); o != nil {
		p.leaseAt, p.leaseID = o.at, o.proc.id
	} else {
		p.leaseAt, p.leaseID = ^uint64(0), memory.NodeID(m.cfg.Nodes)
	}
}

// finish retires a processor whose program returned while holding the
// conch: it either completes the run or performs one scheduler step to
// pass control on.
func (m *Machine) finish(p *Proc) {
	m.live--
	if m.live == 0 {
		if m.fs != nil {
			m.fs.Finalize()
		}
		m.done <- m.finalCheck()
		return
	}
	next, ok := m.popServe()
	if !ok {
		m.abortConch(p, fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles))
		return
	}
	m.grantLease(next.proc)
	next.proc.resume <- struct{}{}
}

// abortConch aborts the run from the goroutine holding the conch: every
// parked processor is woken in turn and panics out through Proc.submit
// (terminating spin loops), each reporting back before the next is woken
// so the one-goroutine-at-a-time discipline holds throughout; then the
// error is delivered to Run. Operations belonging to the caller itself
// are skipped — the caller exits (or panics abortProgram{notify: false})
// right after, without reporting. Run therefore leaks no goroutines on
// the handoff scheduler's error paths.
func (m *Machine) abortConch(self *Proc, err error) {
	m.aborted = true
	// An operation that was mid-service when the abort began has a parked
	// processor with no entry in the heap (submit popped it); wake it
	// first, unless it is the aborting goroutine's own operation.
	if o := m.servicing; o != nil {
		m.servicing = nil
		if o.proc != self {
			o.proc.resume <- struct{}{}
			<-m.events
		}
	}
	for {
		o := m.h.pop()
		if o == nil {
			break
		}
		if o.proc == self {
			continue
		}
		o.proc.resume <- struct{}{}
		<-m.events // the woken processor's terminal event
	}
	m.done <- err
}

// scheduleSerial is the per-access handshake scheduler: every memory
// operation of every processor is submitted over the events channel and
// serviced here, with the runnable set rescanned linearly. It is the
// reference implementation the run-ahead scheduler must match bit for
// bit, kept alive behind Config.SerialSchedule for differential testing,
// and the path used when a recorder is installed.
func (m *Machine) scheduleSerial() (err error) {
	running := len(m.procs)
	pending := make([]*op, m.cfg.Nodes) // indexed by CPU id
	live := len(m.procs)
	// Every service below runs on this (the Run) goroutine; recover
	// panics — checker violations, engine bugs — by re-parking the
	// in-flight operation and draining the program goroutines.
	defer func() {
		if r := recover(); r != nil {
			cpu := memory.NoNode
			if o := m.servicing; o != nil {
				cpu = o.proc.id
				m.servicing = nil
				pending[o.proc.id] = o
			}
			m.drain(live, pending)
			err = recoveredError(cpu, r)
		}
	}()

	for {
		for running > 0 {
			ev := <-m.events
			running--
			if ev.err != nil {
				m.drain(live-1, pending)
				return eventError(ev)
			}
			if ev.op == nil {
				live--
				continue
			}
			pending[ev.proc.id] = ev.op
		}
		if live == 0 {
			break
		}
		// Pick the pending op with the smallest clock.
		var next *op
		for _, o := range pending {
			if o == nil {
				continue
			}
			if next == nil || opBefore(o, next) {
				next = o
			}
		}
		if next == nil {
			return fmt.Errorf("engine: deadlock — %d live processors but none runnable", live)
		}
		if m.cfg.MaxCycles > 0 && next.at > m.cfg.MaxCycles {
			m.drain(live, pending)
			return fmt.Errorf("engine: CPU %d exceeded MaxCycles=%d (livelock guard)", next.proc.id, m.cfg.MaxCycles)
		}
		pending[next.proc.id] = nil
		m.service(m.coord, next)
		running = 1
		next.proc.resume <- struct{}{}
	}

	if m.fs != nil {
		m.fs.Finalize()
	}
	return m.finalCheck()
}

// drain terminates every remaining program goroutine after a scheduler
// error, so Run's error paths leak nothing: parked processors (those with
// a pending operation, passed in; nil entries are skipped) are resumed,
// and every later submission is answered with an immediate resume.
// Proc.submit observes m.aborted after each resume and panics with
// abortProgram, which the program goroutine's recover converts into a
// final event. alive is the number of processors that have not yet sent
// their final event.
func (m *Machine) drain(alive int, parked []*op) {
	m.aborted = true
	for _, o := range parked {
		if o != nil {
			o.proc.resume <- struct{}{}
		}
	}
	for alive > 0 {
		ev := <-m.events
		if ev.op != nil {
			ev.proc.resume <- struct{}{}
			continue
		}
		alive--
	}
}

// CheckCoherence validates the machine-wide coherence invariants — SWMR,
// directory exactness, home-state legality, no ghost holders, inclusion —
// through the shared internal/check package, the same code the engine
// runs online under Config.CheckLevel, so the model-check tests and the
// online checker cannot drift apart. Intended for tests after (or during)
// a run; failures are *check.CoherenceViolation values.
func (m *Machine) CheckCoherence() error {
	c := m.checker
	if c == nil {
		c = check.New(m.layout, m.dir, m.hierarchies())
	}
	return c.CheckAll(0)
}
