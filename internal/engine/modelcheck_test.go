package engine

// Exhaustive model checking of the coherence protocols: enumerate every
// sequence of (cpu, load/store, block) operations up to a bounded length,
// drive them through the full memory-system transaction logic, and check
// the machine-wide invariants after every step:
//
//   - single-writer / multiple-reader: an exclusive (Modified/LStemp)
//     copy is never co-resident with any other copy;
//   - directory exactness: the home's presence information always
//     matches the caches;
//   - home-state legality: the directory entry always satisfies its
//     structural invariant.
//
// Because the engine services transactions atomically, an interleaving of
// the processors IS a sequence of operations, so bounded exhaustive
// enumeration covers every reachable protocol state within the bound.
// With 3 CPUs × 2 kinds × 2 blocks and depth 5 this explores ~250k
// sequences per protocol.

import (
	"fmt"
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// mcOp is one symbol of the operation alphabet.
type mcOp struct {
	cpu   memory.NodeID
	kind  memory.Kind
	block memory.Addr
}

// mcMachine builds a small machine for model checking. Tiny direct-mapped
// caches make replacements reachable within the bound: the two blocks
// conflict in L1 (one set) but not in L2.
func mcMachine(t testing.TB, kind protocol.Kind, v protocol.Variant) *Machine {
	m, err := NewMachine(Config{
		Nodes:          3,
		L1:             cache.Config{Size: 16, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         DefaultTiming(),
		Protocol:       protocol.New(kind, v),
		TrackSequences: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// apply drives one operation directly through the memory system (the
// in-package shortcut around the scheduler; transactions are atomic, so
// this is exactly what an interleaved program run would do).
func apply(m *Machine, procs []*Proc, op mcOp) {
	p := procs[op.cpu]
	m.accessBlock(m.coord, p, op.block, memory.WordSize, op.kind, false, false)
}

// checkInvariants is CheckCoherence plus nothing-omitted error reporting.
func checkInvariants(m *Machine) error {
	return m.CheckCoherence()
}

func TestModelCheckProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check in -short mode")
	}
	blocks := []memory.Addr{0x00, 0x40} // L2 sets differ; L1 set shared
	var alphabet []mcOp
	for cpu := memory.NodeID(0); cpu < 3; cpu++ {
		for _, k := range []memory.Kind{memory.Load, memory.Store} {
			for _, b := range blocks {
				alphabet = append(alphabet, mcOp{cpu, k, b})
			}
		}
	}
	const depth = 4 // 12^4 = 20,736 sequences per protocol/variant

	variants := []struct {
		kind protocol.Kind
		v    protocol.Variant
	}{
		{protocol.Baseline, protocol.Variant{}},
		{protocol.AD, protocol.Variant{}},
		{protocol.LS, protocol.Variant{}},
		{protocol.LS, protocol.Variant{DefaultTagged: true}},
		{protocol.LS, protocol.Variant{KeepOnWriteMiss: true}},
		{protocol.LS, protocol.Variant{TagHysteresis: 2, DetagHysteresis: 2}},
	}

	for _, pv := range variants {
		pv := pv
		name := fmt.Sprintf("%v%s", pv.kind, pv.v.String())
		t.Run(name, func(t *testing.T) {
			seq := make([]mcOp, depth)
			var count int
			// Machines are not copyable, so each sequence replays from
			// scratch; the operations are cheap enough that the full
			// 12^4 enumeration stays well under a second.
			var enumerate func(level int) bool
			enumerate = func(level int) bool {
				if level == depth {
					count++
					m := mcMachine(t, pv.kind, pv.v)
					procs := []*Proc{
						{m: m, id: 0}, {m: m, id: 1}, {m: m, id: 2},
					}
					for step, op := range seq {
						apply(m, procs, op)
						if err := checkInvariants(m); err != nil {
							t.Fatalf("sequence %v failed at step %d: %v", seq[:step+1], step, err)
						}
					}
					return true
				}
				for _, op := range alphabet {
					seq[level] = op
					if !enumerate(level + 1) {
						return false
					}
				}
				return true
			}
			enumerate(0)
			if count != pow(len(alphabet), depth) {
				t.Fatalf("explored %d sequences, want %d", count, pow(len(alphabet), depth))
			}
		})
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// TestModelCheckDeepSingleBlock goes deeper (depth 6) on a single block,
// where the protocol state machine lives, for the LS protocol.
func TestModelCheckDeepSingleBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check in -short mode")
	}
	var alphabet []mcOp
	for cpu := memory.NodeID(0); cpu < 3; cpu++ {
		for _, k := range []memory.Kind{memory.Load, memory.Store} {
			alphabet = append(alphabet, mcOp{cpu, k, 0})
		}
	}
	const depth = 6 // 6^6 = 46,656 sequences
	seq := make([]mcOp, depth)
	var enumerate func(level int)
	enumerate = func(level int) {
		if level == depth {
			m := mcMachine(t, protocol.LS, protocol.Variant{})
			procs := []*Proc{{m: m, id: 0}, {m: m, id: 1}, {m: m, id: 2}}
			for step, op := range seq {
				apply(m, procs, op)
				if err := checkInvariants(m); err != nil {
					t.Fatalf("sequence %v failed at step %d: %v", seq[:step+1], step, err)
				}
			}
			return
		}
		for _, op := range alphabet {
			seq[level] = op
			enumerate(level + 1)
		}
	}
	enumerate(0)
}
