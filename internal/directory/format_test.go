package directory

import (
	"testing"

	"lsnuma/internal/memory"
)

func TestParseFormat(t *testing.T) {
	good := map[string]Format{
		"":          {Kind: FullMap},
		"full":      {Kind: FullMap},
		"fullmap":   {Kind: FullMap},
		"full-map":  {Kind: FullMap},
		" full ":    {Kind: FullMap},
		"limited:4": {Kind: LimitedPtr, Ptrs: 4},
		"ptr:1":     {Kind: LimitedPtr, Ptrs: 1},
		"coarse:8":  {Kind: CoarseVector, Gran: 8},
	}
	for s, want := range good {
		got, err := ParseFormat(s)
		if err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseFormat(%q) = %+v, want %+v", s, got, want)
		}
	}
	bad := []string{"bogus", "limited", "limited:", "limited:0", "limited:-2",
		"coarse:x", "coarse:0", "full:4", ":", "limited:4:2"}
	for _, s := range bad {
		if f, err := ParseFormat(s); err == nil {
			t.Errorf("ParseFormat(%q) accepted as %+v", s, f)
		}
	}
}

func TestFormatStringRoundTrip(t *testing.T) {
	for _, s := range []string{"full", "limited:4", "coarse:8"} {
		f, err := ParseFormat(s)
		if err != nil {
			t.Fatal(err)
		}
		if f.String() != s {
			t.Errorf("ParseFormat(%q).String() = %q", s, f.String())
		}
		back, err := ParseFormat(f.String())
		if err != nil || back != f {
			t.Errorf("round trip of %q: %+v, %v", s, back, err)
		}
	}
}

func TestFormatValidate(t *testing.T) {
	if err := (Format{Kind: CoarseVector, Gran: 8}).Validate(4); err == nil {
		t.Error("coarse granularity beyond machine size accepted")
	}
	if err := (Format{Kind: CoarseVector, Gran: 8}).Validate(1024); err != nil {
		t.Errorf("valid coarse format rejected: %v", err)
	}
	if err := (Format{Kind: LimitedPtr, Ptrs: 4}).Validate(64); err != nil {
		t.Errorf("valid limited format rejected: %v", err)
	}
	if err := (Format{Kind: FormatKind(9)}).Validate(4); err == nil {
		t.Error("invalid format kind accepted")
	}
}

func TestEntryBits(t *testing.T) {
	cases := []struct {
		f     Format
		nodes int
		want  int
	}{
		{Format{Kind: FullMap}, 64, 64},
		{Format{Kind: FullMap}, 1024, 1024},
		{Format{Kind: LimitedPtr, Ptrs: 4}, 64, 4*6 + 1},
		{Format{Kind: LimitedPtr, Ptrs: 4}, 1024, 4*10 + 1},
		{Format{Kind: LimitedPtr, Ptrs: 1}, 1, 1 + 1}, // 1-node pointer still takes one bit
		{Format{Kind: CoarseVector, Gran: 8}, 1024, 128},
		{Format{Kind: CoarseVector, Gran: 8}, 60, 8}, // partial last group
		{Format{Kind: CoarseVector, Gran: 1}, 32, 32},
	}
	for _, tc := range cases {
		if got := tc.f.EntryBits(tc.nodes); got != tc.want {
			t.Errorf("%s.EntryBits(%d) = %d, want %d", tc.f, tc.nodes, got, tc.want)
		}
	}
}

func TestExtraInvalsLimited(t *testing.T) {
	f := Format{Kind: LimitedPtr, Ptrs: 2}
	e := &Entry{State: Shared, Sharers: Of(1, 2), Owner: memory.NoNode}
	// Within pointer capacity: exact.
	if extra, bcast := f.ExtraInvals(e, 3, 8); extra != 0 || bcast {
		t.Errorf("non-overflowed entry: extra=%d bcast=%v", extra, bcast)
	}
	// Overflowed: broadcast to all 8 nodes minus the requester (7
	// targets), 3 of which held the block.
	e.Sharers.Add(5)
	e.Ovf = true
	if extra, bcast := f.ExtraInvals(e, 3, 8); extra != 4 || !bcast {
		t.Errorf("overflowed entry: extra=%d bcast=%v, want 4 true", extra, bcast)
	}
	// Requester among the sharers: needed drops to 2, targets stay 7.
	if extra, bcast := f.ExtraInvals(e, 2, 8); extra != 5 || !bcast {
		t.Errorf("overflowed, requester sharing: extra=%d bcast=%v, want 5 true", extra, bcast)
	}
	// No requester (e.g. a replacement-driven round): all 8 targeted.
	if extra, _ := f.ExtraInvals(e, memory.NoNode, 8); extra != 5 {
		t.Errorf("overflowed, no requester: extra=%d, want 5", extra)
	}
}

func TestExtraInvalsCoarse(t *testing.T) {
	f := Format{Kind: CoarseVector, Gran: 4}
	// Sharers 1 and 6 mark groups [0,4) and [4,8): 8 targets, 2 needed.
	e := &Entry{State: Shared, Sharers: Of(1, 6), Owner: memory.NoNode}
	if extra, bcast := f.ExtraInvals(e, memory.NoNode, 16); extra != 6 || bcast {
		t.Errorf("two groups: extra=%d bcast=%v, want 6 false", extra, bcast)
	}
	// Requester inside a marked group is not targeted.
	if extra, _ := f.ExtraInvals(e, 2, 16); extra != 5 {
		t.Errorf("requester in marked group: extra=%d, want 5", extra)
	}
	// Requester outside every marked group changes nothing.
	if extra, _ := f.ExtraInvals(e, 9, 16); extra != 6 {
		t.Errorf("requester outside groups: extra=%d, want 6", extra)
	}
	// Partial last group is clipped at the machine size.
	e2 := &Entry{State: Shared, Sharers: Of(13), Owner: memory.NoNode}
	if extra, _ := f.ExtraInvals(e2, memory.NoNode, 14); extra != 1 {
		t.Errorf("partial group: extra=%d, want 1 (group [12,14))", extra)
	}
	// Gran 1 is exact.
	f1 := Format{Kind: CoarseVector, Gran: 1}
	if extra, _ := f1.ExtraInvals(e, memory.NoNode, 16); extra != 0 {
		t.Errorf("gran-1 coarse vector not exact: extra=%d", extra)
	}
}

// FuzzParseFormat holds the Config.DirFormat parser to its contract: it
// either rejects the input or returns a Format that validates, renders,
// and re-parses to itself.
func FuzzParseFormat(f *testing.F) {
	for _, seed := range []string{"", "full", "fullmap", "full-map", "limited:4",
		"ptr:1", "coarse:8", "coarse:1024", "limited:0", "coarse:-1",
		"bogus", "limited:999999999999999999999", " coarse:8 ", "ptr:"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fm, err := ParseFormat(s)
		if err != nil {
			return
		}
		if err := fm.Validate(0); err != nil {
			t.Fatalf("ParseFormat(%q) = %+v fails Validate: %v", s, fm, err)
		}
		back, err := ParseFormat(fm.String())
		if err != nil || back != fm {
			t.Fatalf("ParseFormat(%q).String() = %q does not round-trip: %+v, %v",
				s, fm.String(), back, err)
		}
		if fm.EntryBits(1024) < 1 {
			t.Fatalf("ParseFormat(%q): EntryBits(1024) = %d", s, fm.EntryBits(1024))
		}
	})
}
