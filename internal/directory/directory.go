// Package directory implements the full-map directory of the simulated
// CC-NUMA machine. Each memory block has a home node holding a directory
// entry: presence bits for all caches, the home state machine of the
// paper's Figure 1 (Uncached, Shared, Dirty, Load-Store/exclusive), and the
// per-block tag state used by the protocol extensions — the last-reader
// (LR) field and LS bit of the LS protocol (Section 3.1), and the
// last-writer field and migratory bit of the AD protocol (Stenström et
// al.).
package directory

import (
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"lsnuma/internal/memory"
)

// bitsPerWord is the width of one presence word in a Bitset.
const bitsPerWord = 64

// HomeState is the directory (home-node) state of a memory block.
type HomeState uint8

const (
	// Uncached: no cache holds the block; memory is current.
	Uncached HomeState = iota
	// Shared: one or more caches hold read-only copies; memory is current.
	Shared
	// Dirty: exactly one cache holds the block Modified (acquired through
	// a write); memory is stale.
	Dirty
	// Excl: exactly one cache holds the block through an exclusive read
	// grant (the Load-Store state of Fig. 1, also used for AD's migratory
	// grants). The holder may still be clean (LStemp) or may have
	// silently promoted to Modified — the saved ownership acquisition.
	Excl
)

func (s HomeState) String() string {
	switch s {
	case Uncached:
		return "Uncached"
	case Shared:
		return "Shared"
	case Dirty:
		return "Dirty"
	case Excl:
		return "Load-Store"
	default:
		return fmt.Sprintf("HomeState(%d)", uint8(s))
	}
}

// Bitset is a set of node IDs (presence bits). The first 64 nodes live in
// an inline word so machines up to 64 CPUs pay nothing extra; larger
// machines lazily grow an extension array holding one word per further 64
// nodes. The zero value is the empty set.
//
// Copies made by plain assignment share the extension storage, so a copied
// Bitset must only be read, never mutated — the engine mutates sharer sets
// exclusively through the canonical Entry in the directory, and clears them
// in place with Clear rather than by assignment.
type Bitset struct {
	lo  uint64
	ext []uint64
}

// Of returns the set containing exactly the given nodes.
func Of(ns ...memory.NodeID) Bitset {
	var b Bitset
	for _, n := range ns {
		b.Add(n)
	}
	return b
}

// Add inserts node n.
func (b *Bitset) Add(n memory.NodeID) {
	if uint(n) < bitsPerWord {
		b.lo |= 1 << uint(n)
		return
	}
	w := uint(n)/bitsPerWord - 1
	if w >= uint(len(b.ext)) {
		b.ext = append(b.ext, make([]uint64, w+1-uint(len(b.ext)))...)
	}
	b.ext[w] |= 1 << (uint(n) % bitsPerWord)
}

// Remove deletes node n.
func (b *Bitset) Remove(n memory.NodeID) {
	if uint(n) < bitsPerWord {
		b.lo &^= 1 << uint(n)
		return
	}
	if w := uint(n)/bitsPerWord - 1; w < uint(len(b.ext)) {
		b.ext[w] &^= 1 << (uint(n) % bitsPerWord)
	}
}

// Clear empties the set in place, keeping the extension storage.
func (b *Bitset) Clear() {
	b.lo = 0
	for i := range b.ext {
		b.ext[i] = 0
	}
}

// Has reports whether node n is present.
func (b Bitset) Has(n memory.NodeID) bool {
	if uint(n) < bitsPerWord {
		return b.lo&(1<<uint(n)) != 0
	}
	w := uint(n)/bitsPerWord - 1
	return w < uint(len(b.ext)) && b.ext[w]&(1<<(uint(n)%bitsPerWord)) != 0
}

// Count returns the number of nodes present.
func (b Bitset) Count() int {
	c := bits.OnesCount64(b.lo)
	for _, w := range b.ext {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set is empty.
func (b Bitset) Empty() bool {
	if b.lo != 0 {
		return false
	}
	for _, w := range b.ext {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have the same members.
func (b Bitset) Equal(o Bitset) bool {
	if b.lo != o.lo {
		return false
	}
	long, short := b.ext, o.ext
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range long {
		var ow uint64
		if i < len(short) {
			ow = short[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

// Only returns the single member if the set has exactly one, else NoNode.
func (b Bitset) Only() memory.NodeID {
	if b.Count() != 1 {
		return memory.NoNode
	}
	if b.lo != 0 {
		return memory.NodeID(bits.TrailingZeros64(b.lo))
	}
	for i, w := range b.ext {
		if w != 0 {
			return memory.NodeID((i+1)*bitsPerWord + bits.TrailingZeros64(w))
		}
	}
	return memory.NoNode
}

// Other returns the single member that is not n, if the set is exactly
// {n, other}; otherwise NoNode.
func (b Bitset) Other(n memory.NodeID) memory.NodeID {
	if b.Count() != 2 || !b.Has(n) {
		return memory.NoNode
	}
	other := memory.NoNode
	b.ForEach(func(m memory.NodeID) {
		if m != n {
			other = m
		}
	})
	return other
}

// SubsetOf reports whether every member of b is also in o.
func (b Bitset) SubsetOf(o Bitset) bool {
	if b.lo&^o.lo != 0 {
		return false
	}
	for i, w := range b.ext {
		var ow uint64
		if i < len(o.ext) {
			ow = o.ext[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order.
func (b Bitset) ForEach(fn func(memory.NodeID)) {
	v := b.lo
	for v != 0 {
		fn(memory.NodeID(bits.TrailingZeros64(v)))
		v &= v - 1
	}
	for i, w := range b.ext {
		base := (i + 1) * bitsPerWord
		for w != 0 {
			fn(memory.NodeID(base + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// String renders the set as {n1,n2,...} for diagnostics.
func (b Bitset) String() string {
	var sb []byte
	sb = append(sb, '{')
	first := true
	b.ForEach(func(n memory.NodeID) {
		if !first {
			sb = append(sb, ',')
		}
		first = false
		sb = fmt.Appendf(sb, "%d", n)
	})
	return string(append(sb, '}'))
}

// Entry is the directory state of one memory block.
type Entry struct {
	State   HomeState
	Sharers Bitset        // valid when State == Shared
	Owner   memory.NodeID // valid when State == Dirty or Excl

	// LS protocol tag state (Section 3.1).
	LR memory.NodeID // last reader: updated on every global read
	LS bool          // block tagged load-store

	// AD protocol tag state (Stenström et al.).
	LastWriter memory.NodeID
	Migratory  bool

	// Hysteresis counters for the §5.5 ablation (two-step deep tagging
	// and de-tagging).
	TagCount   uint8
	DetagCount uint8

	// Ovf marks a limited-pointer entry whose sharer count exceeded the
	// pointer capacity: the wire format has degraded to broadcast for this
	// block until the sharer set is next cleared. Sticky by design —
	// evicted pointers cannot be reconstructed from i pointers. The exact
	// sharer set above remains simulation truth regardless; Ovf only
	// drives the architectural extra-invalidation accounting.
	Ovf bool
}

// Holders returns the set of caches holding the block in any state.
func (e *Entry) Holders() Bitset {
	switch e.State {
	case Shared:
		return e.Sharers
	case Dirty, Excl:
		var b Bitset
		if e.Owner != memory.NoNode {
			b.Add(e.Owner)
		}
		return b
	default:
		return Bitset{}
	}
}

// Holds reports whether node n caches the block according to the directory.
func (e *Entry) Holds(n memory.NodeID) bool { return e.Holders().Has(n) }

// CheckInvariant validates the entry's structural invariants.
func (e *Entry) CheckInvariant() error {
	switch e.State {
	case Uncached:
		if !e.Sharers.Empty() {
			return fmt.Errorf("directory: Uncached entry with sharers %v", e.Sharers)
		}
	case Shared:
		if e.Sharers.Empty() {
			return fmt.Errorf("directory: Shared entry with no sharers")
		}
	case Dirty, Excl:
		if e.Owner == memory.NoNode {
			return fmt.Errorf("directory: %v entry with no owner", e.State)
		}
		if !e.Sharers.Empty() {
			return fmt.Errorf("directory: %v entry with sharers %v", e.State, e.Sharers)
		}
	default:
		return fmt.Errorf("directory: invalid state %d", e.State)
	}
	return nil
}

// minEntriesPerPage bounds directory pages from below so that large
// simulated block sizes (few blocks per physical page) still amortize the
// page allocation, and so a page's presence bitset is always at least one
// whole uint64 word.
const minEntriesPerPage = 256

// page is one lazily allocated directory page: a dense array of Entry
// values with a presence bitset. Pages are fixed-size once allocated, so
// &entries[i] pointers handed out by Directory.Entry stay stable for the
// lifetime of the directory (only the page spine grows).
type page struct {
	present []uint64
	entries []Entry
}

// Directory holds the entries of all blocks, created lazily. A real
// machine banks the directory per home node; for simulation a single table
// indexed by block suffices — home-node attribution happens in the network
// and timing model.
//
// The default storage is data-oriented: Entry values live in dense,
// address-indexed pages sized off the layout (at least minEntriesPerPage
// blocks per page), with presence tracked by a uint64 bitset per page.
// The common-case lookup is two shifts and a bounds check — no hashing, no
// per-entry allocation, no pointer chasing through map buckets. A legacy
// map[uint64]*Entry backend (NewMap) is retained for differential testing;
// both backends yield identical entries and iterate in the same order.
type Directory struct {
	layout     memory.Layout
	init       func(*Entry) // protocol hook: default tag state for new blocks
	blockShift uint         // log2(layout.BlockSize)

	// Flat paged backend (used when entries == nil).
	pages     []*page
	pageShift uint   // log2(entries per page)
	pageMask  uint64 // entries per page - 1
	count     int64

	// shared marks concurrent-access mode (the parallel scheduler's
	// phases): presence words and the entry count go through atomics so a
	// shard first-touching an entry cannot race another shard reading a
	// different bit of the same presence word. Entry contents themselves
	// need no atomics — shard confinement guarantees a single writer, and
	// cross-shard readers only see quiescent entries.
	shared bool

	// Legacy map backend (used when entries != nil).
	entries map[uint64]*Entry
}

// New returns an empty directory with the flat paged storage. The init
// hook, if non-nil, runs on each freshly created entry (used by the §5.5
// default-tagging ablation).
func New(layout memory.Layout, init func(*Entry)) *Directory {
	per := layout.PageSize / layout.BlockSize
	if per < minEntriesPerPage {
		per = minEntriesPerPage
	}
	return &Directory{
		layout:     layout,
		init:       init,
		blockShift: uint(bits.TrailingZeros64(layout.BlockSize)),
		pageShift:  uint(bits.TrailingZeros64(per)),
		pageMask:   per - 1,
	}
}

// NewMap returns an empty directory backed by the original map storage.
// It is retained only for differential testing against the flat layout
// (engine Config.MapDirectory); simulation results are identical.
func NewMap(layout memory.Layout, init func(*Entry)) *Directory {
	return &Directory{
		layout:     layout,
		init:       init,
		blockShift: uint(bits.TrailingZeros64(layout.BlockSize)),
		entries:    make(map[uint64]*Entry),
	}
}

// SetInit replaces the new-entry hook. Only meaningful on an empty (or
// freshly Reset) directory; used when a pooled machine is retargeted at a
// different protocol.
func (d *Directory) SetInit(init func(*Entry)) { d.init = init }

// Entry returns the directory entry for the block containing addr,
// creating it in the Uncached state on first touch. The returned pointer
// stays valid (and keeps aliasing the same block) until Reset.
func (d *Directory) Entry(block memory.Addr) *Entry {
	idx := uint64(block) >> d.blockShift
	if d.entries != nil {
		e, ok := d.entries[idx]
		if !ok {
			e = &Entry{Owner: memory.NoNode, LR: memory.NoNode, LastWriter: memory.NoNode}
			if d.init != nil {
				d.init(e)
			}
			d.entries[idx] = e
		}
		return e
	}
	pi := idx >> d.pageShift
	if pi >= uint64(len(d.pages)) {
		d.pages = append(d.pages, make([]*page, pi+1-uint64(len(d.pages)))...)
	}
	pg := d.pages[pi]
	if pg == nil {
		per := d.pageMask + 1
		pg = &page{present: make([]uint64, per/64), entries: make([]Entry, per)}
		d.pages[pi] = pg
	}
	off := idx & d.pageMask
	e := &pg.entries[off]
	w, bit := off>>6, off&63
	if d.shared {
		// Single writer per presence word (shard confinement), but other
		// shards may concurrently load the word for neighbouring bits, so
		// the read-modify-write goes through atomics. The release store
		// also publishes the entry initialization below it.
		word := atomic.LoadUint64(&pg.present[w])
		if word&(1<<bit) == 0 {
			e.Owner, e.LR, e.LastWriter = memory.NoNode, memory.NoNode, memory.NoNode
			if d.init != nil {
				d.init(e)
			}
			atomic.StoreUint64(&pg.present[w], word|1<<bit)
			atomic.AddInt64(&d.count, 1)
		}
		return e
	}
	if pg.present[w]&(1<<bit) == 0 {
		pg.present[w] |= 1 << bit
		e.Owner, e.LR, e.LastWriter = memory.NoNode, memory.NoNode, memory.NoNode
		if d.init != nil {
			d.init(e)
		}
		d.count++
	}
	return e
}

// Lookup returns the directory entry for the block containing addr if one
// exists. Unlike Entry it never creates an entry, so invariant checkers
// can probe the directory without perturbing it.
func (d *Directory) Lookup(block memory.Addr) (*Entry, bool) {
	idx := uint64(block) >> d.blockShift
	if d.entries != nil {
		e, ok := d.entries[idx]
		return e, ok
	}
	pi := idx >> d.pageShift
	if pi >= uint64(len(d.pages)) || d.pages[pi] == nil {
		return nil, false
	}
	pg := d.pages[pi]
	off := idx & d.pageMask
	if d.shared {
		if atomic.LoadUint64(&pg.present[off>>6])&(1<<(off&63)) == 0 {
			return nil, false
		}
	} else if pg.present[off>>6]&(1<<(off&63)) == 0 {
		return nil, false
	}
	return &pg.entries[off], true
}

// Len returns the number of blocks with directory state.
func (d *Directory) Len() int {
	if d.entries != nil {
		return len(d.entries)
	}
	return int(d.count)
}

// Grow pre-extends the page spine and allocates every directory page
// covering blocks below limit, so concurrent Entry calls during the
// parallel scheduler's batch rounds neither append to the spine nor race
// to allocate a page (a page may span several memory pages and therefore
// several shards; pre-allocating removes the only cross-shard write to
// the spine). Flat backend only; the map backend is excluded from
// parallel scheduling.
func (d *Directory) Grow(limit memory.Addr) {
	if d.entries != nil || limit == 0 {
		return
	}
	idx := uint64(limit-1) >> d.blockShift
	pi := idx >> d.pageShift
	if pi >= uint64(len(d.pages)) {
		d.pages = append(d.pages, make([]*page, pi+1-uint64(len(d.pages)))...)
	}
	per := d.pageMask + 1
	for i := uint64(0); i <= pi; i++ {
		if d.pages[i] == nil {
			d.pages[i] = &page{present: make([]uint64, per/64), entries: make([]Entry, per)}
		}
	}
}

// SetShared switches concurrent-access mode on or off (see the shared
// field). The parallel scheduler enables it for the duration of a run and
// disables it before handing the machine back.
func (d *Directory) SetShared(v bool) { d.shared = v }

// ForEach visits every entry in ascending block order. The ordering is a
// contract: repro-bundle snapshots, check reports and fault-target
// selection iterate the directory and must be deterministic across runs
// and storage backends.
func (d *Directory) ForEach(fn func(blockIndex uint64, e *Entry)) {
	if d.entries != nil {
		idxs := make([]uint64, 0, len(d.entries))
		for idx := range d.entries {
			idxs = append(idxs, idx)
		}
		slices.Sort(idxs)
		for _, idx := range idxs {
			fn(idx, d.entries[idx])
		}
		return
	}
	for pi, pg := range d.pages {
		if pg == nil {
			continue
		}
		base := uint64(pi) << d.pageShift
		for w, word := range pg.present {
			for word != 0 {
				off := uint64(w)<<6 + uint64(bits.TrailingZeros64(word))
				fn(base+off, &pg.entries[off])
				word &= word - 1
			}
		}
	}
}

// Reset returns the directory to its freshly constructed state while
// keeping the allocated pages (or map) for reuse, so a pooled machine can
// re-run a sweep point without reallocating directory storage.
func (d *Directory) Reset() {
	if d.entries != nil {
		clear(d.entries)
		return
	}
	for _, pg := range d.pages {
		if pg == nil {
			continue
		}
		clear(pg.present)
		clear(pg.entries)
	}
	d.count = 0
}
