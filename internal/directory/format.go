package directory

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"lsnuma/internal/memory"
)

// FormatKind selects the directory's wire format — how a real machine
// would encode the sharer set of each block. The simulator always tracks
// the exact sharer set (simulation truth, and the differential oracle);
// the wire format determines the modeled per-entry storage cost and the
// architectural extra invalidations a compact encoding would send beyond
// the exact set. Timing and protocol behaviour are format-independent, so
// Results across formats are byte-identical modulo the Dir counters.
type FormatKind uint8

const (
	// FullMap: one presence bit per CPU (the paper's directory). Exact;
	// O(P) bits per entry.
	FullMap FormatKind = iota
	// LimitedPtr: Dir_i_B — i node pointers plus a broadcast bit. When a
	// block gains more than i sharers the entry overflows and sticks in
	// broadcast mode: invalidations go to every cache except the
	// requester until the sharer set is next cleared.
	LimitedPtr
	// CoarseVector: one presence bit per group of Gran consecutive CPUs.
	// Invalidations go to every CPU of every marked group.
	CoarseVector
)

// Format is a parsed directory wire-format spec (Config.DirFormat).
type Format struct {
	Kind FormatKind
	Ptrs int // LimitedPtr: number of pointers (the i of Dir_i_B)
	Gran int // CoarseVector: CPUs per presence bit (the K of coarse:K)
}

// ParseFormat parses a directory format spec:
//
//	""ǀ"full"ǀ"fullmap"ǀ"full-map"  full presence-bit map (default)
//	"limited:i" ǀ "ptr:i"           Dir_i_B limited pointers, i >= 1
//	"coarse:K"                      coarse vector, K >= 1 CPUs per bit
func ParseFormat(s string) (Format, error) {
	switch strings.TrimSpace(s) {
	case "", "full", "fullmap", "full-map":
		return Format{Kind: FullMap}, nil
	}
	name, arg, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return Format{}, fmt.Errorf("directory: unknown format %q (want full, limited:i, or coarse:K)", s)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return Format{}, fmt.Errorf("directory: format %q needs a positive integer argument", s)
	}
	switch name {
	case "limited", "ptr":
		return Format{Kind: LimitedPtr, Ptrs: n}, nil
	case "coarse":
		return Format{Kind: CoarseVector, Gran: n}, nil
	}
	return Format{}, fmt.Errorf("directory: unknown format %q (want full, limited:i, or coarse:K)", s)
}

// String renders the format in the spec grammar accepted by ParseFormat.
func (f Format) String() string {
	switch f.Kind {
	case LimitedPtr:
		return fmt.Sprintf("limited:%d", f.Ptrs)
	case CoarseVector:
		return fmt.Sprintf("coarse:%d", f.Gran)
	default:
		return "full"
	}
}

// Validate checks the format against a machine size.
func (f Format) Validate(nodes int) error {
	switch f.Kind {
	case FullMap:
		return nil
	case LimitedPtr:
		if f.Ptrs < 1 {
			return fmt.Errorf("directory: limited-pointer format needs at least 1 pointer")
		}
		return nil
	case CoarseVector:
		if f.Gran < 1 {
			return fmt.Errorf("directory: coarse-vector format needs granularity >= 1")
		}
		if nodes > 0 && f.Gran > nodes {
			return fmt.Errorf("directory: coarse-vector granularity %d exceeds machine size %d", f.Gran, nodes)
		}
		return nil
	default:
		return fmt.Errorf("directory: invalid format kind %d", f.Kind)
	}
}

// EntryBits returns the modeled sharer-set storage cost of one directory
// entry in bits: P for the full map, i*ceil(log2 P)+1 for Dir_i_B (i
// pointers plus the broadcast bit), ceil(P/K) for a coarse vector.
func (f Format) EntryBits(nodes int) int {
	if nodes < 1 {
		return 0
	}
	switch f.Kind {
	case LimitedPtr:
		ptrBits := bits.Len(uint(nodes - 1))
		if ptrBits == 0 {
			ptrBits = 1
		}
		return f.Ptrs*ptrBits + 1
	case CoarseVector:
		return (nodes + f.Gran - 1) / f.Gran
	default:
		return nodes
	}
}

// ExtraInvals returns the architectural cost the wire format adds to an
// invalidation round for entry e: how many invalidations beyond the exact
// sharer set (minus keep, the requester) the encoding would send, and
// whether the round is a limited-pointer broadcast. The exact count of
// necessary invalidations is len(e.Sharers \ {keep}); a broadcast reaches
// every cache except the requester, and a coarse vector reaches every CPU
// of every marked group except the requester.
func (f Format) ExtraInvals(e *Entry, keep memory.NodeID, nodes int) (extra uint64, broadcast bool) {
	needed := e.Sharers.Count()
	keepIsSharer := keep != memory.NoNode && e.Sharers.Has(keep)
	if keepIsSharer {
		needed--
	}
	switch f.Kind {
	case LimitedPtr:
		if !e.Ovf {
			return 0, false
		}
		targets := nodes
		if keep != memory.NoNode {
			targets--
		}
		if targets < needed {
			targets = needed
		}
		return uint64(targets - needed), true
	case CoarseVector:
		// Sum the populations of the marked groups (each group is Gran
		// CPUs, the last possibly partial), skipping the requester if it
		// falls in a marked group.
		targets := 0
		group := -1
		e.Sharers.ForEach(func(n memory.NodeID) {
			g := int(n) / f.Gran
			if g == group {
				return
			}
			group = g
			lo := g * f.Gran
			hi := lo + f.Gran
			if hi > nodes {
				hi = nodes
			}
			targets += hi - lo
			if keep != memory.NoNode && int(keep) >= lo && int(keep) < hi {
				targets--
			}
		})
		if targets < needed {
			targets = needed
		}
		return uint64(targets - needed), false
	default:
		return 0, false
	}
}
