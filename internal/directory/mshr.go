package directory

import "lsnuma/internal/memory"

// TxnBuffers models the finite transaction-buffer pool (MSHRs) of each
// home node's directory controller. A global transaction holds one buffer
// at its home from the arrival of the request until the home's
// involvement in the transaction ends; a request that finds every buffer
// busy is NACKed and the requester must retry. Buffers are represented as
// busy-until times, matching the engine's discrete-event occupancy style
// (network ports, memory controllers): slot i is free at time t iff its
// recorded busy-until is <= t.
type TxnBuffers struct {
	slots [][]uint64 // [home][slot] busy-until time
}

// reserved marks a slot claimed by an in-flight transaction whose end
// time is not yet known (Complete overwrites it).
const reserved = ^uint64(0)

// NewTxnBuffers returns a pool of n transaction buffers per home node for
// a machine of `homes` nodes. n must be >= 1.
func NewTxnBuffers(homes, n int) *TxnBuffers {
	s := make([][]uint64, homes)
	backing := make([]uint64, homes*n)
	for i := range s {
		s[i], backing = backing[:n:n], backing[n:]
	}
	return &TxnBuffers{slots: s}
}

// PerHome returns the number of buffers per home node.
func (b *TxnBuffers) PerHome() int { return len(b.slots[0]) }

// Reserve claims a free transaction buffer at home for a request arriving
// at time `at`. It returns the claimed slot, or ok=false when every
// buffer is busy (the home NACKs the request). A claimed slot stays busy
// until Complete releases it with the transaction's end time.
func (b *TxnBuffers) Reserve(home memory.NodeID, at uint64) (slot int, ok bool) {
	s := b.slots[home]
	for i, busy := range s {
		if busy <= at {
			s[i] = reserved
			return i, true
		}
	}
	return -1, false
}

// Complete releases a reserved buffer at the time the home's involvement
// in the transaction ended; the slot can serve another request from
// `done` onward.
func (b *TxnBuffers) Complete(home memory.NodeID, slot int, done uint64) {
	b.slots[home][slot] = done
}

// Busy returns the number of buffers at home still occupied after time
// `at` (introspection for tests).
func (b *TxnBuffers) Busy(home memory.NodeID, at uint64) int {
	n := 0
	for _, busy := range b.slots[home] {
		if busy > at {
			n++
		}
	}
	return n
}
