package directory

import "testing"

func TestTxnBuffersReserveComplete(t *testing.T) {
	b := NewTxnBuffers(2, 2)
	if b.PerHome() != 2 {
		t.Fatalf("PerHome = %d, want 2", b.PerHome())
	}

	s0, ok := b.Reserve(0, 10)
	if !ok {
		t.Fatal("fresh pool refused a reservation")
	}
	s1, ok := b.Reserve(0, 10)
	if !ok || s1 == s0 {
		t.Fatalf("second reservation: slot=%d ok=%v (first %d)", s1, ok, s0)
	}
	if _, ok := b.Reserve(0, 10); ok {
		t.Error("saturated home still granted a buffer")
	}
	if got := b.Busy(0, 10); got != 2 {
		t.Errorf("Busy(0,10) = %d, want 2", got)
	}

	// Homes are independent pools.
	if _, ok := b.Reserve(1, 10); !ok {
		t.Error("saturation leaked across homes")
	}

	// A reserved slot with no known end time never frees by the clock
	// alone, however far time advances.
	if _, ok := b.Reserve(0, 1<<60); ok {
		t.Error("open reservation freed by time passing")
	}

	// Complete releases the slot from `done` onward.
	b.Complete(0, s0, 50)
	if _, ok := b.Reserve(0, 49); ok {
		t.Error("buffer granted before its transaction completed")
	}
	got, ok := b.Reserve(0, 50)
	if !ok || got != s0 {
		t.Errorf("Reserve after completion: slot=%d ok=%v, want %d", got, ok, s0)
	}
}

func TestTxnBuffersBusyCounts(t *testing.T) {
	b := NewTxnBuffers(1, 3)
	a, _ := b.Reserve(0, 0)
	c, _ := b.Reserve(0, 0)
	b.Complete(0, a, 100)
	b.Complete(0, c, 200)
	for _, tc := range []struct {
		at   uint64
		want int
	}{{0, 2}, {99, 2}, {100, 1}, {199, 1}, {200, 0}} {
		if got := b.Busy(0, tc.at); got != tc.want {
			t.Errorf("Busy(0,%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
}
