package directory

import (
	"testing"
	"testing/quick"

	"lsnuma/internal/memory"
)

func layout(t *testing.T) memory.Layout {
	t.Helper()
	l, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero bitset not empty")
	}
	b.Add(3)
	b.Add(7)
	b.Add(3) // idempotent
	if b.Count() != 2 || !b.Has(3) || !b.Has(7) || b.Has(0) {
		t.Fatalf("bitset = %b", b)
	}
	b.Remove(3)
	if b.Count() != 1 || b.Has(3) {
		t.Fatalf("after remove = %b", b)
	}
	b.Remove(3) // idempotent
	if b.Count() != 1 {
		t.Fatalf("double remove changed set: %b", b)
	}
}

func TestBitsetOnly(t *testing.T) {
	var b Bitset
	if b.Only() != memory.NoNode {
		t.Error("empty Only() != NoNode")
	}
	b.Add(5)
	if b.Only() != 5 {
		t.Errorf("Only() = %d", b.Only())
	}
	b.Add(9)
	if b.Only() != memory.NoNode {
		t.Error("two-member Only() != NoNode")
	}
}

func TestBitsetOther(t *testing.T) {
	var b Bitset
	b.Add(2)
	b.Add(6)
	if got := b.Other(2); got != 6 {
		t.Errorf("Other(2) = %d", got)
	}
	if got := b.Other(6); got != 2 {
		t.Errorf("Other(6) = %d", got)
	}
	if got := b.Other(3); got != memory.NoNode {
		t.Errorf("Other(non-member) = %d", got)
	}
	b.Add(9)
	if got := b.Other(2); got != memory.NoNode {
		t.Errorf("Other with 3 members = %d", got)
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	var b Bitset
	for _, n := range []memory.NodeID{9, 1, 33, 0} {
		b.Add(n)
	}
	var got []memory.NodeID
	b.ForEach(func(n memory.NodeID) { got = append(got, n) })
	want := []memory.NodeID{0, 1, 9, 33}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
}

// fromWords builds a Bitset whose members are the set bits of the given
// 64-bit words (word i covering nodes [i*64, i*64+64)).
func fromWords(words ...uint64) Bitset {
	var b Bitset
	for i, w := range words {
		for bit := 0; bit < 64; bit++ {
			if w&(1<<uint(bit)) != 0 {
				b.Add(memory.NodeID(i*64 + bit))
			}
		}
	}
	return b
}

func TestBitsetCountMatchesForEach(t *testing.T) {
	f := func(lo, hi uint64) bool {
		b := fromWords(lo, hi)
		n := 0
		b.ForEach(func(memory.NodeID) { n++ })
		return n == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetBeyond64(t *testing.T) {
	var b Bitset
	for _, n := range []memory.NodeID{0, 63, 64, 200, 1023} {
		b.Add(n)
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d", b.Count())
	}
	for _, n := range []memory.NodeID{0, 63, 64, 200, 1023} {
		if !b.Has(n) {
			t.Errorf("Has(%d) = false", n)
		}
	}
	if b.Has(65) || b.Has(1024) || b.Has(4000) {
		t.Error("Has reports absent high members")
	}
	b.Remove(200)
	if b.Count() != 4 || b.Has(200) {
		t.Fatalf("after Remove(200): %v", b)
	}
	var got []memory.NodeID
	b.ForEach(func(n memory.NodeID) { got = append(got, n) })
	want := []memory.NodeID{0, 63, 64, 1023}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
	if !b.Equal(Of(0, 63, 64, 1023)) || b.Equal(Of(0, 63, 64)) {
		t.Error("Equal wrong across words")
	}
	b.Clear()
	if !b.Empty() || !b.Equal(Bitset{}) {
		t.Fatalf("Clear left members: %v", b)
	}
	two := Of(70, 900)
	if two.Other(70) != 900 || two.Other(900) != 70 {
		t.Errorf("Other across high words = %d/%d", two.Other(70), two.Other(900))
	}
	if Of(500).Only() != 500 {
		t.Errorf("Only high member = %d", Of(500).Only())
	}
	if !Of(64, 128).SubsetOf(Of(1, 64, 128, 256)) || Of(64, 512).SubsetOf(Of(64)) {
		t.Error("SubsetOf wrong across words")
	}
}

func TestEntryLazyCreation(t *testing.T) {
	d := New(layout(t), nil)
	if d.Len() != 0 {
		t.Fatal("new directory not empty")
	}
	e := d.Entry(0x120)
	if e.State != Uncached || e.Owner != memory.NoNode || e.LR != memory.NoNode || e.LastWriter != memory.NoNode {
		t.Fatalf("fresh entry = %+v", e)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Same block, same entry.
	if d.Entry(0x120) != e {
		t.Fatal("second lookup returned different entry")
	}
	// Addresses inside the same block share the entry (the directory is
	// indexed by block; callers pass block-aligned addresses, but any
	// address in the block resolves identically).
	if d.Entry(0x12c) != e {
		t.Fatal("same-block address returned different entry")
	}
	if d.Entry(0x130) == e {
		t.Fatal("different block shared an entry")
	}
}

func TestInitHook(t *testing.T) {
	d := New(layout(t), func(e *Entry) { e.LS = true; e.Migratory = true })
	e := d.Entry(0x40)
	if !e.LS || !e.Migratory {
		t.Fatalf("init hook not applied: %+v", e)
	}
}

func TestEntryInvariants(t *testing.T) {
	ok := []Entry{
		{State: Uncached, Owner: memory.NoNode},
		{State: Shared, Sharers: Of(1, 3), Owner: memory.NoNode},
		{State: Dirty, Owner: 2},
		{State: Excl, Owner: 0},
	}
	for i, e := range ok {
		if err := e.CheckInvariant(); err != nil {
			t.Errorf("valid entry %d rejected: %v", i, err)
		}
	}
	bad := []Entry{
		{State: Uncached, Sharers: Of(0), Owner: memory.NoNode},
		{State: Shared, Owner: memory.NoNode},
		{State: Dirty, Owner: memory.NoNode},
		{State: Excl, Owner: memory.NoNode},
		{State: Dirty, Owner: 1, Sharers: Of(1)},
		{State: HomeState(9)},
	}
	for i, e := range bad {
		if err := e.CheckInvariant(); err == nil {
			t.Errorf("invalid entry %d accepted: %+v", i, e)
		}
	}
}

func TestHolders(t *testing.T) {
	e := Entry{State: Shared, Sharers: Of(1, 2), Owner: memory.NoNode}
	if h := e.Holders(); !h.Equal(Of(1, 2)) {
		t.Errorf("Shared Holders = %v", h)
	}
	if !e.Holds(1) || e.Holds(0) {
		t.Error("Holds wrong for Shared")
	}
	e = Entry{State: Dirty, Owner: 3}
	if h := e.Holders(); !h.Has(3) || h.Count() != 1 {
		t.Errorf("Dirty Holders = %v", h)
	}
	e = Entry{State: Uncached, Owner: memory.NoNode}
	if !e.Holders().Empty() {
		t.Error("Uncached has holders")
	}
	e = Entry{State: Excl, Owner: memory.NoNode}
	if !e.Holders().Empty() {
		t.Error("ownerless Excl has holders")
	}
}

func TestHomeStateString(t *testing.T) {
	for s, want := range map[HomeState]string{
		Uncached: "Uncached", Shared: "Shared", Dirty: "Dirty", Excl: "Load-Store",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", uint8(s), s.String())
		}
	}
	if HomeState(12).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestForEach(t *testing.T) {
	d := New(layout(t), nil)
	d.Entry(0x00)
	d.Entry(0x10)
	d.Entry(0x20)
	n := 0
	d.ForEach(func(idx uint64, e *Entry) {
		n++
		if e == nil {
			t.Error("nil entry in ForEach")
		}
	})
	if n != 3 {
		t.Errorf("ForEach visited %d entries", n)
	}
}

// constructors builds both directory backends, so every storage-contract
// test runs against the flat paged layout and the legacy map.
func constructors() map[string]func(memory.Layout, func(*Entry)) *Directory {
	return map[string]func(memory.Layout, func(*Entry)) *Directory{
		"flat": New,
		"map":  NewMap,
	}
}

// TestForEachAscendingOrder is the regression test for the ordering
// contract: iteration must yield strictly ascending block indices on both
// backends, no matter the insertion order. (The map backend used to
// iterate in Go map order, making repro bundles and fault-target
// selection nondeterministic.)
func TestForEachAscendingOrder(t *testing.T) {
	// Insertion order deliberately scrambled, spanning several pages
	// (4096/16 = 256 entries per page) and bitset words.
	blocks := []memory.Addr{0x7f30, 0x10, 0x4000, 0x20f0, 0x00, 0x1010, 0x9ff0, 0x40, 0x8000}
	for name, ctor := range constructors() {
		t.Run(name, func(t *testing.T) {
			d := ctor(layout(t), nil)
			for _, b := range blocks {
				d.Entry(b)
			}
			var got []uint64
			d.ForEach(func(idx uint64, e *Entry) { got = append(got, idx) })
			if len(got) != len(blocks) {
				t.Fatalf("ForEach visited %d entries, want %d", len(got), len(blocks))
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("ForEach order not strictly ascending: %v", got)
				}
			}
		})
	}
}

// entryEqual compares every Entry field; Entry stopped being Go-comparable
// when Bitset grew its extension-word slice.
func entryEqual(a, b *Entry) bool {
	return a.State == b.State && a.Sharers.Equal(b.Sharers) &&
		a.Owner == b.Owner && a.LR == b.LR && a.LS == b.LS &&
		a.LastWriter == b.LastWriter && a.Migratory == b.Migratory &&
		a.TagCount == b.TagCount && a.DetagCount == b.DetagCount &&
		a.Ovf == b.Ovf
}

// TestBackendEquivalence drives both backends through an identical
// mutation sequence and requires identical Len, Lookup and ForEach views.
func TestBackendEquivalence(t *testing.T) {
	l := layout(t)
	init := func(e *Entry) { e.LS = true }
	flat, mp := New(l, init), NewMap(l, init)
	// A deterministic pseudo-random walk of touches and mutations.
	x := uint64(12345)
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		block := memory.Addr((x>>16)%4096) * 16
		ef, em := flat.Entry(block), mp.Entry(block)
		if !entryEqual(ef, em) {
			t.Fatalf("entries diverge at %#x: flat %+v map %+v", block, *ef, *em)
		}
		switch i % 3 {
		case 0:
			ef.State, em.State = Shared, Shared
			ef.Sharers.Add(memory.NodeID(i % 4))
			em.Sharers.Add(memory.NodeID(i % 4))
		case 1:
			ef.State, em.State = Dirty, Dirty
			ef.Owner, em.Owner = memory.NodeID(i%4), memory.NodeID(i%4)
			ef.Sharers.Clear()
			em.Sharers.Clear()
		}
	}
	if flat.Len() != mp.Len() {
		t.Fatalf("Len diverges: flat %d map %d", flat.Len(), mp.Len())
	}
	type view struct {
		idx uint64
		e   Entry
	}
	var vf, vm []view
	flat.ForEach(func(idx uint64, e *Entry) { vf = append(vf, view{idx, *e}) })
	mp.ForEach(func(idx uint64, e *Entry) { vm = append(vm, view{idx, *e}) })
	if len(vf) != len(vm) {
		t.Fatalf("ForEach sizes diverge: flat %d map %d", len(vf), len(vm))
	}
	for i := range vf {
		if vf[i].idx != vm[i].idx || !entryEqual(&vf[i].e, &vm[i].e) {
			t.Fatalf("ForEach diverges at %d: flat %+v map %+v", i, vf[i], vm[i])
		}
	}
	// Lookup of an untouched block must not create on either backend.
	probe := memory.Addr(4096 * 16 * 4)
	if _, ok := flat.Lookup(probe); ok {
		t.Error("flat Lookup invented an entry")
	}
	if _, ok := mp.Lookup(probe); ok {
		t.Error("map Lookup invented an entry")
	}
	if flat.Len() != mp.Len() {
		t.Error("Lookup changed Len")
	}
}

// TestEntryPointerStability verifies the flat backend's aliasing
// contract: pointers returned by Entry stay valid and keep aliasing the
// same block while later touches allocate new pages and grow the spine.
func TestEntryPointerStability(t *testing.T) {
	d := New(layout(t), nil)
	e := d.Entry(0x40)
	e.State = Dirty
	e.Owner = 2
	// Touch blocks far beyond the first page, forcing spine growth.
	for i := 0; i < 10_000; i++ {
		d.Entry(memory.Addr(i) * 16 * 300)
	}
	if d.Entry(0x40) != e {
		t.Fatal("entry pointer changed after spine growth")
	}
	if e.State != Dirty || e.Owner != 2 {
		t.Fatalf("entry contents changed: %+v", e)
	}
}

// TestReset verifies Reset on both backends: the directory is empty,
// re-created entries are fresh (init hook re-applied), and on the flat
// backend storage is reused.
func TestReset(t *testing.T) {
	for name, ctor := range constructors() {
		t.Run(name, func(t *testing.T) {
			d := ctor(layout(t), func(e *Entry) { e.Migratory = true })
			e := d.Entry(0x100)
			e.State = Dirty
			e.Owner = 1
			e.Migratory = false
			d.Entry(0x5000)
			d.Reset()
			if d.Len() != 0 {
				t.Fatalf("Len after Reset = %d", d.Len())
			}
			if _, ok := d.Lookup(0x100); ok {
				t.Fatal("entry survived Reset")
			}
			n := 0
			d.ForEach(func(uint64, *Entry) { n++ })
			if n != 0 {
				t.Fatalf("ForEach visited %d entries after Reset", n)
			}
			e2 := d.Entry(0x100)
			if e2.State != Uncached || e2.Owner != memory.NoNode || !e2.Migratory {
				t.Fatalf("re-created entry not fresh: %+v", e2)
			}
		})
	}
}

// TestSetInit verifies the protocol-hook swap used when a pooled machine
// is retargeted at a different protocol.
func TestSetInit(t *testing.T) {
	d := New(layout(t), func(e *Entry) { e.LS = true })
	if !d.Entry(0x10).LS {
		t.Fatal("initial hook not applied")
	}
	d.Reset()
	d.SetInit(func(e *Entry) { e.Migratory = true })
	e := d.Entry(0x10)
	if e.LS || !e.Migratory {
		t.Fatalf("swapped hook not applied: %+v", e)
	}
}

// TestLargeBlockLayout exercises the minEntriesPerPage clamp: with
// 256-byte blocks a physical page holds only 16 blocks, far below the
// clamp, and indexing must still be exact.
func TestLargeBlockLayout(t *testing.T) {
	l, err := memory.NewLayout(4096, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := New(l, nil)
	a := d.Entry(0x000)
	b := d.Entry(0x100)
	if a == b {
		t.Fatal("adjacent 256B blocks shared an entry")
	}
	if d.Entry(0x0ff) != a || d.Entry(0x1ff) != b {
		t.Fatal("intra-block addresses resolved to wrong entries")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}
