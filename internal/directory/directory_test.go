package directory

import (
	"testing"
	"testing/quick"

	"lsnuma/internal/memory"
)

func layout(t *testing.T) memory.Layout {
	t.Helper()
	l, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero bitset not empty")
	}
	b.Add(3)
	b.Add(7)
	b.Add(3) // idempotent
	if b.Count() != 2 || !b.Has(3) || !b.Has(7) || b.Has(0) {
		t.Fatalf("bitset = %b", b)
	}
	b.Remove(3)
	if b.Count() != 1 || b.Has(3) {
		t.Fatalf("after remove = %b", b)
	}
	b.Remove(3) // idempotent
	if b.Count() != 1 {
		t.Fatalf("double remove changed set: %b", b)
	}
}

func TestBitsetOnly(t *testing.T) {
	var b Bitset
	if b.Only() != memory.NoNode {
		t.Error("empty Only() != NoNode")
	}
	b.Add(5)
	if b.Only() != 5 {
		t.Errorf("Only() = %d", b.Only())
	}
	b.Add(9)
	if b.Only() != memory.NoNode {
		t.Error("two-member Only() != NoNode")
	}
}

func TestBitsetOther(t *testing.T) {
	var b Bitset
	b.Add(2)
	b.Add(6)
	if got := b.Other(2); got != 6 {
		t.Errorf("Other(2) = %d", got)
	}
	if got := b.Other(6); got != 2 {
		t.Errorf("Other(6) = %d", got)
	}
	if got := b.Other(3); got != memory.NoNode {
		t.Errorf("Other(non-member) = %d", got)
	}
	b.Add(9)
	if got := b.Other(2); got != memory.NoNode {
		t.Errorf("Other with 3 members = %d", got)
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	var b Bitset
	for _, n := range []memory.NodeID{9, 1, 33, 0} {
		b.Add(n)
	}
	var got []memory.NodeID
	b.ForEach(func(n memory.NodeID) { got = append(got, n) })
	want := []memory.NodeID{0, 1, 9, 33}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
}

func TestBitsetCountMatchesForEach(t *testing.T) {
	f := func(v uint64) bool {
		b := Bitset(v)
		n := 0
		b.ForEach(func(memory.NodeID) { n++ })
		return n == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryLazyCreation(t *testing.T) {
	d := New(layout(t), nil)
	if d.Len() != 0 {
		t.Fatal("new directory not empty")
	}
	e := d.Entry(0x120)
	if e.State != Uncached || e.Owner != memory.NoNode || e.LR != memory.NoNode || e.LastWriter != memory.NoNode {
		t.Fatalf("fresh entry = %+v", e)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Same block, same entry.
	if d.Entry(0x120) != e {
		t.Fatal("second lookup returned different entry")
	}
	// Addresses inside the same block share the entry (the directory is
	// indexed by block; callers pass block-aligned addresses, but any
	// address in the block resolves identically).
	if d.Entry(0x12c) != e {
		t.Fatal("same-block address returned different entry")
	}
	if d.Entry(0x130) == e {
		t.Fatal("different block shared an entry")
	}
}

func TestInitHook(t *testing.T) {
	d := New(layout(t), func(e *Entry) { e.LS = true; e.Migratory = true })
	e := d.Entry(0x40)
	if !e.LS || !e.Migratory {
		t.Fatalf("init hook not applied: %+v", e)
	}
}

func TestEntryInvariants(t *testing.T) {
	ok := []Entry{
		{State: Uncached, Owner: memory.NoNode},
		{State: Shared, Sharers: 0b1010, Owner: memory.NoNode},
		{State: Dirty, Owner: 2},
		{State: Excl, Owner: 0},
	}
	for i, e := range ok {
		if err := e.CheckInvariant(); err != nil {
			t.Errorf("valid entry %d rejected: %v", i, err)
		}
	}
	bad := []Entry{
		{State: Uncached, Sharers: 1, Owner: memory.NoNode},
		{State: Shared, Owner: memory.NoNode},
		{State: Dirty, Owner: memory.NoNode},
		{State: Excl, Owner: memory.NoNode},
		{State: Dirty, Owner: 1, Sharers: 0b10},
		{State: HomeState(9)},
	}
	for i, e := range bad {
		if err := e.CheckInvariant(); err == nil {
			t.Errorf("invalid entry %d accepted: %+v", i, e)
		}
	}
}

func TestHolders(t *testing.T) {
	e := Entry{State: Shared, Sharers: 0b110, Owner: memory.NoNode}
	if h := e.Holders(); h != 0b110 {
		t.Errorf("Shared Holders = %b", h)
	}
	if !e.Holds(1) || e.Holds(0) {
		t.Error("Holds wrong for Shared")
	}
	e = Entry{State: Dirty, Owner: 3}
	if h := e.Holders(); !h.Has(3) || h.Count() != 1 {
		t.Errorf("Dirty Holders = %b", h)
	}
	e = Entry{State: Uncached, Owner: memory.NoNode}
	if !e.Holders().Empty() {
		t.Error("Uncached has holders")
	}
	e = Entry{State: Excl, Owner: memory.NoNode}
	if !e.Holders().Empty() {
		t.Error("ownerless Excl has holders")
	}
}

func TestHomeStateString(t *testing.T) {
	for s, want := range map[HomeState]string{
		Uncached: "Uncached", Shared: "Shared", Dirty: "Dirty", Excl: "Load-Store",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", uint8(s), s.String())
		}
	}
	if HomeState(12).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestForEach(t *testing.T) {
	d := New(layout(t), nil)
	d.Entry(0x00)
	d.Entry(0x10)
	d.Entry(0x20)
	n := 0
	d.ForEach(func(idx uint64, e *Entry) {
		n++
		if e == nil {
			t.Error("nil entry in ForEach")
		}
	})
	if n != 3 {
		t.Errorf("ForEach visited %d entries", n)
	}
}
