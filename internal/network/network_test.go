package network

import (
	"testing"
	"testing/quick"

	"lsnuma/internal/memory"
	"lsnuma/internal/stats"
)

func newNet(t *testing.T, n int) (*Network, *stats.Stats) {
	t.Helper()
	st := stats.New(n)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32}, n, st)
	if err != nil {
		t.Fatal(err)
	}
	return nw, st
}

func TestConfigValidate(t *testing.T) {
	ok := Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{HopDelay: -1, BytesPerCycle: 8, BlockSize: 32},
		{HopDelay: 40, BytesPerCycle: 0, BlockSize: 32},
		{HopDelay: 40, BytesPerCycle: 8, BlockSize: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
	if _, err := New(ok, 0, stats.New(0)); err == nil {
		t.Error("zero-node network accepted")
	}
}

func TestLocalSendIsFree(t *testing.T) {
	nw, st := newNet(t, 4)
	if got := nw.Send(2, 2, stats.MsgReadReq, 100); got != 100 {
		t.Errorf("local send arrival = %d, want 100", got)
	}
	if st.TotalMsgs() != 0 {
		t.Error("local send counted as traffic")
	}
}

func TestRemoteSendLatency(t *testing.T) {
	nw, st := newNet(t, 4)
	// Header-only message: 8 bytes / 8 B/cy = 1 cycle occupancy.
	got := nw.Send(0, 1, stats.MsgReadReq, 100)
	want := uint64(100 + 1 + 40 + 1) // egress occ + hop + ingress occ
	if got != want {
		t.Errorf("arrival = %d, want %d", got, want)
	}
	if st.Msgs[stats.MsgReadReq] != 1 {
		t.Error("message not counted")
	}
}

func TestDataMessageOccupancy(t *testing.T) {
	nw, _ := newNet(t, 4)
	// Data message: (8+32)/8 = 5 cycles occupancy each side.
	got := nw.Send(0, 1, stats.MsgReadReply, 0)
	want := uint64(5 + 40 + 5)
	if got != want {
		t.Errorf("data arrival = %d, want %d", got, want)
	}
}

func TestEgressContention(t *testing.T) {
	nw, _ := newNet(t, 4)
	a := nw.Send(0, 1, stats.MsgReadReq, 100)
	b := nw.Send(0, 2, stats.MsgReadReq, 100) // same egress port, later departure
	if b <= a {
		t.Errorf("second message on busy egress arrived at %d, first at %d", b, a)
	}
	if b != a+1 { // serialized by 1 cycle of egress occupancy
		t.Errorf("contended arrival = %d, want %d", b, a+1)
	}
}

func TestIngressContention(t *testing.T) {
	nw, _ := newNet(t, 4)
	a := nw.Send(1, 0, stats.MsgReadReq, 100)
	b := nw.Send(2, 0, stats.MsgReadReq, 100) // different egress, same ingress
	if a == b {
		t.Error("two messages finished receiving at the same ingress simultaneously")
	}
}

func TestNoContentionAcrossDisjointPairs(t *testing.T) {
	nw, _ := newNet(t, 4)
	a := nw.Send(0, 1, stats.MsgReadReq, 100)
	b := nw.Send(2, 3, stats.MsgReadReq, 100)
	if a != b {
		t.Errorf("disjoint transfers interfered: %d vs %d", a, b)
	}
}

// TestArrivalMonotonicity: a message can never arrive before it was sent
// plus the minimum latency, and port busy-until times never decrease.
func TestArrivalMonotonicity(t *testing.T) {
	f := func(ops []uint16) bool {
		st := stats.New(4)
		nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32}, 4, st)
		if err != nil {
			return false
		}
		var lastEgress [4]uint64
		now := uint64(0)
		for _, op := range ops {
			from := memNode(op & 3)
			to := memNode((op >> 2) & 3)
			now += uint64(op >> 12) // advance time irregularly
			arr := nw.Send(from, to, stats.MsgReadReq, now)
			if from == to {
				if arr != now {
					return false
				}
				continue
			}
			if arr < now+42 { // occupancy 1 + hop 40 + occupancy 1
				return false
			}
			eg, _ := nw.PortBusyUntil(from)
			if eg < lastEgress[from] {
				return false
			}
			lastEgress[from] = eg
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrafficBytesAccumulate(t *testing.T) {
	nw, st := newNet(t, 2)
	nw.Send(0, 1, stats.MsgReadReq, 0)
	nw.Send(1, 0, stats.MsgReadReply, 50)
	if st.TotalBytes() != 8+(8+32) {
		t.Errorf("TotalBytes = %d", st.TotalBytes())
	}
}

func memNode(v uint16) memory.NodeID { return memory.NodeID(v) }

func TestTopologyStrings(t *testing.T) {
	if PointToPoint.String() != "point-to-point" || Mesh2D.String() != "mesh2d" {
		t.Error("topology strings wrong")
	}
	if Topology(9).String() == "" {
		t.Error("unknown topology string empty")
	}
}

func TestMeshHops(t *testing.T) {
	st := stats.New(16)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 16, st)
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 mesh: node layout row-major.
	cases := []struct {
		from, to memory.NodeID
		hops     int
	}{
		{0, 0, 0},
		{0, 1, 1},  // same row, adjacent
		{0, 4, 1},  // same column, adjacent
		{0, 5, 2},  // diagonal neighbour
		{0, 15, 6}, // opposite corner of a 4x4 mesh
		{3, 12, 6}, // other diagonal
		{5, 6, 1},
	}
	for _, c := range cases {
		if got := nw.Hops(c.from, c.to); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.hops)
		}
		if got := nw.Hops(c.to, c.from); got != c.hops {
			t.Errorf("Hops(%d,%d) not symmetric", c.to, c.from)
		}
	}
}

func TestMeshDelayScalesWithDistance(t *testing.T) {
	st := stats.New(16)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 16, st)
	if err != nil {
		t.Fatal(err)
	}
	near := nw.Send(0, 1, stats.MsgReadReq, 0)
	far := nw.Send(2, 13, stats.MsgReadReq, 0) // distinct ports, distance 4
	if far <= near {
		t.Errorf("far delivery %d not after near %d", far, near)
	}
	if want := near + 3*40; far != want {
		t.Errorf("far delivery %d, want %d (3 extra hops)", far, want)
	}
}

func TestPointToPointUnchangedByTopologyDefault(t *testing.T) {
	st := stats.New(4)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32}, 4, st)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Hops(0, 3) != 1 {
		t.Error("default topology not single-hop")
	}
}

// TestValidateTopology: the validator must reject configurations whose
// topology silently measures nothing — an unknown topology value and a
// Mesh2D whose zero hop delay collapses the distance model.
func TestValidateTopology(t *testing.T) {
	bad := Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Topology(7)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown topology accepted")
	}
	flat := Config{HopDelay: 0, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}
	if err := flat.Validate(); err == nil {
		t.Error("Mesh2D with zero hop delay accepted")
	}
	// Zero hop delay stays legal for point-to-point (an idealized
	// contention-only network), and Mesh2D with a real delay is fine.
	ptp := Config{HopDelay: 0, BytesPerCycle: 8, BlockSize: 32}
	if err := ptp.Validate(); err != nil {
		t.Errorf("point-to-point with zero hop delay rejected: %v", err)
	}
	mesh := Config{HopDelay: 1, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}
	if err := mesh.Validate(); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
}

// TestMeshWidthNonSquare: node counts that don't fill a square still get
// a covering mesh — 5 nodes on a 3x3, 17 nodes on a 5x5 — and the hop
// metric stays consistent on the ragged last row.
func TestMeshWidthNonSquare(t *testing.T) {
	if w := meshWidth(5); w != 3 {
		t.Errorf("meshWidth(5) = %d, want 3", w)
	}
	if w := meshWidth(17); w != 5 {
		t.Errorf("meshWidth(17) = %d, want 5", w)
	}
	if w := meshWidth(1); w != 1 {
		t.Errorf("meshWidth(1) = %d, want 1", w)
	}
	if w := meshWidth(16); w != 4 {
		t.Errorf("meshWidth(16) = %d, want 4", w)
	}

	// 5 nodes on a 3-wide mesh: rows are {0,1,2}, {3,4}.
	st := stats.New(5)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 5, st)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to memory.NodeID
		hops     int
	}{
		{0, 2, 2}, // across the top row
		{0, 3, 1}, // down one row
		{2, 3, 3}, // corner to the ragged row's start
		{2, 4, 2},
		{4, 4, 0},
	}
	for _, c := range cases {
		if got := nw.Hops(c.from, c.to); got != c.hops {
			t.Errorf("5-node mesh Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.hops)
		}
	}

	// 17 nodes on a 5-wide mesh: node 16 sits alone at (1,3) on the
	// fourth row.
	st = stats.New(17)
	nw, err = New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 17, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Hops(0, 16); got != 4 { // (0,0) -> (1,3)
		t.Errorf("17-node mesh Hops(0,16) = %d, want 4", got)
	}
	if got := nw.Hops(4, 16); got != 6 { // (4,0) -> (1,3)
		t.Errorf("17-node mesh Hops(4,16) = %d, want 6", got)
	}
}

// TestMeshBurstSameSource: a burst of messages out of one mesh node must
// serialize on its egress port regardless of destination — distance
// shapes the flight time, contention the departure times.
func TestMeshBurstSameSource(t *testing.T) {
	st := stats.New(16)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 16, st)
	if err != nil {
		t.Fatal(err)
	}
	// Header-only messages occupy 1 cycle. Three messages injected at the
	// same instant to increasingly distant nodes: departures serialize at
	// 0,1,2 and each then flies Manhattan-distance hops.
	dests := []memory.NodeID{1, 5, 15}
	hops := []uint64{1, 2, 6}
	for i, d := range dests {
		got := nw.Send(0, d, stats.MsgReadReq, 0)
		want := uint64(i) + 1 + hops[i]*40 + 1
		if got != want {
			t.Errorf("burst msg %d to node %d arrived %d, want %d", i, d, got, want)
		}
	}
	eg, _ := nw.PortBusyUntil(0)
	if eg != uint64(len(dests)) {
		t.Errorf("egress busy-until = %d after %d-message burst, want %d", eg, len(dests), len(dests))
	}

	// A burst to a single destination additionally serializes on the
	// receiver's ingress port: arrivals must be strictly increasing.
	st = stats.New(16)
	nw, err = New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32, Topology: Mesh2D}, 16, st)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 8; i++ {
		got := nw.Send(0, 15, stats.MsgReadReply, 0)
		if got <= last {
			t.Fatalf("burst arrival %d not after previous %d", got, last)
		}
		last = got
	}
	// 8 data messages of 5 cycles each: the ingress drains one per 5
	// cycles, so the last arrival is 7*5 after the first.
	first := uint64(5 + 6*40 + 5)
	if last != first+7*5 {
		t.Errorf("last burst arrival = %d, want %d", last, first+7*5)
	}
}

// TestSendAllocationFree guards the message hot path: Send is pure
// counter arithmetic (port occupancy + traffic accounting) and must not
// allocate — messages are never materialized as objects. Together with
// the engine's op reuse this keeps the per-access simulation path
// allocation-free.
func TestSendAllocationFree(t *testing.T) {
	st := stats.New(4)
	nw, err := New(Config{HopDelay: 40, BytesPerCycle: 8, BlockSize: 32}, 4, st)
	if err != nil {
		t.Fatal(err)
	}
	var now uint64
	allocs := testing.AllocsPerRun(100, func() {
		for mt := stats.MsgType(0); mt < stats.NumMsgTypes; mt++ {
			now = nw.Send(0, 1, mt, now)
			now = nw.Send(1, 0, mt, now)
		}
	})
	if allocs != 0 {
		t.Errorf("Send allocates %.1f times per message batch, want 0", allocs)
	}
}
