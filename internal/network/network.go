// Package network models the point-to-point interconnection network of the
// simulated multiprocessor: fixed per-hop delay with contention modeled as
// link occupancy at each node's egress and ingress ports, matching the
// paper's architectural model ("The processor nodes are connected in a
// point-to-point network with a fixed delay. Contention is accurately
// modeled in the network.", Section 4.2).
package network

import (
	"fmt"

	"lsnuma/internal/memory"
	"lsnuma/internal/stats"
)

// Topology selects how the hop count between two nodes is computed.
type Topology uint8

const (
	// PointToPoint is the paper's model: every node pair is one fixed-
	// delay hop apart (Section 4.2).
	PointToPoint Topology = iota
	// Mesh2D arranges the nodes in a (near-)square two-dimensional mesh
	// with X-Y dimension-order routing: the traversal delay scales with
	// the Manhattan distance — an extension for studying distance-
	// sensitive NUMA effects.
	Mesh2D
)

func (t Topology) String() string {
	switch t {
	case PointToPoint:
		return "point-to-point"
	case Mesh2D:
		return "mesh2d"
	default:
		return fmt.Sprintf("Topology(%d)", uint8(t))
	}
}

// Config holds the network timing parameters.
type Config struct {
	// HopDelay is the traversal latency of one network hop in cycles
	// (Table 1 / Figure 2).
	HopDelay int
	// BytesPerCycle is the link bandwidth used to charge occupancy; a
	// message holds a port for ceil(size/BytesPerCycle) cycles.
	BytesPerCycle int
	// BlockSize is the cache block size, used to size data-carrying
	// messages.
	BlockSize uint64
	// Topology selects the hop-count model (default PointToPoint).
	Topology Topology
	// Concentration is the number of nodes attached to each mesh router
	// (a concentrated mesh, the standard way to keep hop counts realistic
	// at hundreds to thousands of nodes: a 1024-node machine with
	// Concentration 4 routes over a 16x16 router grid instead of 32x32).
	// Zero or one means the plain mesh; only meaningful with Mesh2D.
	Concentration int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HopDelay < 0 {
		return fmt.Errorf("network: negative hop delay %d", c.HopDelay)
	}
	if c.BytesPerCycle < 1 {
		return fmt.Errorf("network: bytes per cycle %d < 1", c.BytesPerCycle)
	}
	if c.BlockSize == 0 {
		return fmt.Errorf("network: zero block size")
	}
	if c.Concentration < 0 {
		return fmt.Errorf("network: negative concentration %d", c.Concentration)
	}
	switch c.Topology {
	case PointToPoint:
		if c.Concentration > 1 {
			return fmt.Errorf("network: concentration %d is only meaningful with the %s topology", c.Concentration, Mesh2D)
		}
	case Mesh2D:
		// A zero hop delay silently collapses the mesh's Manhattan-
		// distance model to uniform cost — reject it rather than let a
		// distance study measure nothing.
		if c.HopDelay == 0 {
			return fmt.Errorf("network: Mesh2D with zero hop delay degrades distance modeling; set HopDelay >= 1")
		}
	default:
		return fmt.Errorf("network: unknown topology %d (want %s or %s)",
			uint8(c.Topology), PointToPoint, Mesh2D)
	}
	return nil
}

// Network is the interconnect state: per-node port occupancy plus traffic
// accounting.
type Network struct {
	cfg     Config
	egress  []uint64 // busy-until time of each node's output port
	ingress []uint64 // busy-until time of each node's input port
	st      *stats.Stats
	meshW   int // router-grid width for Mesh2D
	conc    int // nodes per mesh router (>= 1)
}

// meshWidth returns the smallest width whose square covers n nodes.
func meshWidth(n int) int {
	w := 1
	for w*w < n {
		w++
	}
	return w
}

// Hops returns the number of network hops between two nodes under the
// configured topology (0 for a node talking to itself).
func (nw *Network) Hops(from, to memory.NodeID) int {
	if from == to {
		return 0
	}
	if nw.cfg.Topology == PointToPoint {
		return 1
	}
	// Concentrated mesh: route between the routers the two nodes hang off
	// (node/conc), by X-Y Manhattan distance over the router grid. Two
	// distinct nodes on the same router are still one hop apart (through
	// their shared router), never zero.
	fr, tr := int(from)/nw.conc, int(to)/nw.conc
	fx, fy := fr%nw.meshW, fr/nw.meshW
	tx, ty := tr%nw.meshW, tr/nw.meshW
	dx, dy := fx-tx, fy-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if d := dx + dy; d > 0 {
		return d
	}
	return 1
}

// New builds a network for n nodes, recording traffic into st.
func New(cfg Config, n int, st *stats.Stats) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("network: need at least one node, got %d", n)
	}
	conc := cfg.Concentration
	if conc < 1 {
		conc = 1
	}
	return &Network{
		cfg:     cfg,
		egress:  make([]uint64, n),
		ingress: make([]uint64, n),
		st:      st,
		meshW:   meshWidth((n + conc - 1) / conc),
		conc:    conc,
	}, nil
}

// Reset clears all port occupancy, returning the network to its freshly
// constructed state (the stats sink is owned by the caller and reset
// separately).
func (nw *Network) Reset() {
	clear(nw.egress)
	clear(nw.ingress)
}

// msgBytes returns the wire size of a message of type t.
func (nw *Network) msgBytes(t stats.MsgType) int {
	n := stats.HeaderBytes
	if t.CarriesData() {
		n += int(nw.cfg.BlockSize)
	}
	return n
}

func (nw *Network) occupancy(bytes int) uint64 {
	bpc := nw.cfg.BytesPerCycle
	return uint64((bytes + bpc - 1) / bpc)
}

// Send transmits one message of type t from node `from` to node `to`,
// injected at time now, and returns the time the message has been fully
// received. Messages between a node and itself (a processor accessing its
// local home) do not traverse the network, cost nothing, and are not
// counted as traffic — the paper's traffic figures count global messages.
func (nw *Network) Send(from, to memory.NodeID, t stats.MsgType, now uint64) uint64 {
	if from == to {
		return now
	}
	nw.st.AddMsg(t, nw.cfg.BlockSize)
	occ := nw.occupancy(nw.msgBytes(t))

	depart := now
	if nw.egress[from] > depart {
		depart = nw.egress[from]
	}
	nw.egress[from] = depart + occ

	arrive := depart + occ + uint64(nw.cfg.HopDelay)*uint64(nw.Hops(from, to))
	if nw.ingress[to] > arrive {
		arrive = nw.ingress[to]
	}
	nw.ingress[to] = arrive + occ
	return arrive + occ
}

// PortBusyUntil exposes port occupancy for tests and contention analysis.
func (nw *Network) PortBusyUntil(node memory.NodeID) (egress, ingress uint64) {
	return nw.egress[node], nw.ingress[node]
}

// WithSink returns a view of the network that records traffic into st
// instead of the original sink, while sharing the same port-occupancy
// state. The parallel scheduler gives each shard such a view so workers
// can account messages into private collectors without touching the
// shared one; the underlying egress/ingress arrays are still the single
// source of truth for timing (shard confinement guarantees two shards
// never touch the same node's ports concurrently).
func (nw *Network) WithSink(st *stats.Stats) *Network {
	cp := *nw
	cp.st = st
	return &cp
}

// MinLatency returns a lower bound on how much later than its injection
// time a message from->to can be fully received: the header's occupancy
// charge plus the hop traversal delay, ignoring all port contention
// (contention only delays further). Zero for a node talking to itself.
// This is the Chandy–Misra lookahead floor of the parallel scheduler.
func (nw *Network) MinLatency(from, to memory.NodeID) uint64 {
	if from == to {
		return 0
	}
	return nw.occupancy(stats.HeaderBytes) + uint64(nw.cfg.HopDelay)*uint64(nw.Hops(from, to))
}

// MinRemoteLatency returns the smallest MinLatency over any pair of
// distinct nodes: one header occupancy plus one hop. It bounds the reply
// leg of a transaction whose responder is not known in advance (a dirty
// read's data can come from the owner rather than the home).
func (nw *Network) MinRemoteLatency() uint64 {
	return nw.occupancy(stats.HeaderBytes) + uint64(nw.cfg.HopDelay)
}
