// Package runner executes independent jobs concurrently on a bounded
// worker pool. It is the machinery behind the public lsnuma.RunAll /
// lsnuma.Sweep APIs: the paper's evaluation is a large matrix of
// independent (config, protocol, workload) simulation points, and every
// point is a self-contained Machine, so the matrix parallelizes perfectly
// across cores.
//
// The runner guarantees:
//
//   - deterministic result ordering: job i's outcome is reported at
//     index i regardless of completion order;
//   - per-job error isolation: one failing job does not abort the rest;
//   - bounded parallelism: at most `parallelism` jobs run at once;
//   - cancellation: once ctx is done, unstarted jobs are skipped and
//     recorded as ctx.Err() (the runner never interrupts a running job
//     itself, but jobs receive a context they can observe mid-run);
//   - per-job deadlines: RunEach bounds each job's wall-clock runtime
//     independently of ctx's own deadline.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// JobError wraps the failure of one job with its index.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a job panic converted into an error, with the stack
// captured on the panicking goroutine. Callers retrieve it (and the
// stack) with errors.As for crash diagnostics.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Run executes jobs 0..n-1 on at most `parallelism` concurrent workers
// (<= 0 selects runtime.GOMAXPROCS(0)) and returns the per-job errors at
// their job's index (nil for jobs that succeeded). The second return
// value aggregates all failures via errors.Join, each wrapped in a
// *JobError; it is nil when every job succeeded.
//
// All jobs run even if some fail. If ctx is cancelled, jobs not yet
// started are skipped and their slot records ctx.Err().
func Run(ctx context.Context, n, parallelism int, job func(ctx context.Context, i int) error) ([]error, error) {
	return RunEach(ctx, n, parallelism, 0, job)
}

// RunEach is Run with a per-job wall-clock deadline: when `each` is
// positive, every job receives a context that is cancelled `each` after
// the job starts, independent of ctx's own lifetime. A job that outlives
// its deadline is expected to observe its context and return the
// context's error; the runner itself never kills a job.
func RunEach(ctx context.Context, n, parallelism int, each time.Duration, job func(ctx context.Context, i int) error) ([]error, error) {
	errs := make([]error, n)
	if n == 0 {
		return errs, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				jctx, cancel := ctx, func() {}
				if each > 0 {
					jctx, cancel = context.WithTimeout(ctx, each)
				}
				errs[i] = safeRun(jctx, i, job)
				cancel()
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &JobError{Index: i, Err: err})
		}
	}
	return errs, errors.Join(failed...)
}

// safeRun invokes one job, converting a panic into a *PanicError — stack
// included — so a bug in one simulation point cannot take down the whole
// sweep and still leaves enough to debug it.
func safeRun(ctx context.Context, i int, job func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return job(ctx, i)
}
