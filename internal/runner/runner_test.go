package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllJobsComplete(t *testing.T) {
	const n = 50
	var done [n]atomic.Bool
	errs, err := Run(context.Background(), n, 8, func(_ context.Context, i int) error {
		done[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(errs) != n {
		t.Fatalf("got %d error slots, want %d", len(errs), n)
	}
	for i := range done {
		if !done[i].Load() {
			t.Errorf("job %d never ran", i)
		}
	}
}

// TestErrorAggregation: failing jobs are reported at their index and in
// the joined error, while every other job still completes.
func TestErrorAggregation(t *testing.T) {
	const n = 20
	boom := errors.New("boom")
	var ran atomic.Int32
	errs, err := Run(context.Background(), n, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 || i == 17 {
			return fmt.Errorf("point %d: %w", i, boom)
		}
		return nil
	})
	if got := ran.Load(); got != n {
		t.Errorf("ran %d jobs, want %d (one failure must not abort the rest)", got, n)
	}
	if err == nil {
		t.Fatal("want aggregated error, got nil")
	}
	if !errors.Is(err, boom) {
		t.Errorf("aggregated error does not wrap the job error: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Errorf("aggregated error contains no *JobError: %v", err)
	}
	for i, e := range errs {
		wantErr := i == 3 || i == 17
		if (e != nil) != wantErr {
			t.Errorf("errs[%d] = %v, want error: %v", i, e, wantErr)
		}
	}
}

// TestPanicIsolation: a panicking job is reported as that job's error.
func TestPanicIsolation(t *testing.T) {
	errs, err := Run(context.Background(), 3, 2, func(_ context.Context, i int) error {
		if i == 1 {
			panic("simulated engine bug")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error from panicking job")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy jobs failed: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("panicking job reported no error")
	}
}

// TestPanicStackCapture: a panicking job's error is a *PanicError that
// carries the panic value and the goroutine stack of the panic site, so
// sweep diagnostics can point at the faulty frame instead of just saying
// "panic".
func TestPanicStackCapture(t *testing.T) {
	errs, _ := Run(context.Background(), 1, 1, func(_ context.Context, i int) error {
		panicForStackCapture()
		return nil
	})
	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("job error = %v (%T), want *PanicError", errs[0], errs[0])
	}
	if pe.Value != "simulated engine bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(errs[0].Error(), "panic: simulated engine bug") {
		t.Errorf("error text %q lost the panic value", errs[0].Error())
	}
	if !strings.Contains(string(pe.Stack), "panicForStackCapture") {
		t.Errorf("captured stack does not contain the panic site:\n%s", pe.Stack)
	}
}

// panicForStackCapture panics from a named function so the test can
// assert the frame appears in the captured stack.
func panicForStackCapture() {
	panic("simulated engine bug")
}

// TestCancellationMidSweep: once the context is cancelled, unstarted jobs
// are skipped and recorded as the context error.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 32
	var started atomic.Int32
	errs, err := Run(ctx, n, 2, func(ctx context.Context, i int) error {
		if started.Add(1) == 2 {
			cancel() // cancel while the first jobs are still running
		}
		<-ctx.Done() // hold the first workers until cancellation propagates
		return nil
	})
	if err == nil {
		t.Fatal("want aggregated cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("aggregated error should wrap context.Canceled: %v", err)
	}
	var cancelled, completed int
	for _, e := range errs {
		switch {
		case e == nil:
			completed++
		case errors.Is(e, context.Canceled):
			cancelled++
		default:
			t.Errorf("unexpected error: %v", e)
		}
	}
	if cancelled == 0 {
		t.Error("no job recorded context.Canceled")
	}
	if completed+cancelled != n {
		t.Errorf("completed %d + cancelled %d != %d", completed, cancelled, n)
	}
	// The two in-flight jobs may or may not observe the cancellation, but
	// nothing after them may start.
	if got := started.Load(); got > 3 {
		t.Errorf("%d jobs started after cancellation, want <= 3", got)
	}
}

// TestWorkerPoolBounding: at most `parallelism` jobs run concurrently.
func TestWorkerPoolBounding(t *testing.T) {
	const n, parallelism = 40, 3
	var cur, max atomic.Int32
	_, err := Run(context.Background(), n, parallelism, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > parallelism {
		t.Errorf("observed %d concurrent jobs, bound is %d", got, parallelism)
	}
}

// TestParallelismDefaults: parallelism <= 0 falls back to GOMAXPROCS and
// still completes everything.
func TestParallelismDefaults(t *testing.T) {
	for _, p := range []int{0, -1, 1000} {
		errs, err := Run(context.Background(), 5, p, func(_ context.Context, i int) error { return nil })
		if err != nil || len(errs) != 5 {
			t.Errorf("parallelism=%d: errs=%v err=%v", p, errs, err)
		}
	}
}

// TestConcurrencyOverlap: with blocking jobs, the pool genuinely overlaps
// them — 4 jobs that each wait on the others' arrival deadlock unless at
// least 4 run at once. This is the wall-clock-speedup mechanism the
// parallel sweep relies on, demonstrated without timing assumptions.
func TestConcurrencyOverlap(t *testing.T) {
	const n = 4
	var wg sync.WaitGroup
	wg.Add(n)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	_, err := Run(context.Background(), n, n, func(_ context.Context, i int) error {
		wg.Done()
		select {
		case <-done:
			return nil
		case <-time.After(10 * time.Second):
			return errors.New("jobs did not overlap")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunEachDeadline: RunEach's per-job deadline cancels each job's
// context independently — one job that outlives its deadline observes the
// expiry while its siblings run to completion, and the parent context
// stays alive throughout.
func TestRunEachDeadline(t *testing.T) {
	ctx := context.Background()
	errs, err := RunEach(ctx, 3, 3, 20*time.Millisecond, func(jctx context.Context, i int) error {
		if i == 1 {
			<-jctx.Done() // an observant job returns its context's error
			return jctx.Err()
		}
		return nil
	})
	if err == nil {
		t.Fatal("deadline expiry not aggregated")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("siblings infected by job 1's deadline: %v %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Errorf("job 1 error = %v, want deadline exceeded", errs[1])
	}
	if ctx.Err() != nil {
		t.Error("per-job deadline cancelled the parent context")
	}
}

// TestRunEachZeroIsRun: a zero per-job deadline must impose no limit.
func TestRunEachZeroIsRun(t *testing.T) {
	errs, err := RunEach(context.Background(), 2, 2, 0, func(jctx context.Context, i int) error {
		if _, ok := jctx.Deadline(); ok {
			return errors.New("zero deadline still set a deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(errs)
	}
}
