package fault

import (
	"strings"
	"testing"
)

func TestParseMsgClass(t *testing.T) {
	for _, c := range MsgClasses() {
		got, err := ParseMsgClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseMsgClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseMsgClass("lose-msg"); err == nil {
		t.Error("unknown message class accepted")
	}
	if s := MsgClass(9).String(); !strings.Contains(s, "9") {
		t.Errorf("out-of-range class renders %q", s)
	}
}

func TestParseMsgSpec(t *testing.T) {
	mi, err := ParseMsgSpec("drop-msg")
	if err != nil {
		t.Fatal(err)
	}
	if mi.Rate(DropMsg) != 1e-3 || mi.Seed() != 1 {
		t.Errorf("defaults wrong: rate=%g seed=%d", mi.Rate(DropMsg), mi.Seed())
	}
	mi, err = ParseMsgSpec("drop-msg@0.5,dup-msg@1e-4,reorder-msg:7")
	if err != nil {
		t.Fatal(err)
	}
	if mi.Rate(DropMsg) != 0.5 || mi.Rate(DupMsg) != 1e-4 || mi.Rate(ReorderMsg) != 1e-3 {
		t.Errorf("rates wrong: %g %g %g", mi.Rate(DropMsg), mi.Rate(DupMsg), mi.Rate(ReorderMsg))
	}
	if mi.Seed() != 7 {
		t.Errorf("seed = %d, want 7", mi.Seed())
	}
	for _, bad := range []string{
		"lose-msg",                  // unknown class
		"drop-msg@0.1,drop-msg@0.2", // duplicate class
		"drop-msg:1,dup-msg:2",      // two seeds
		"drop-msg@banana",           // bad rate
		"drop-msg@2.0",              // rate above 1
		"drop-msg@-0.1",             // negative rate
		"drop-msg:1.5",              // non-integer seed
		"",                          // empty part
	} {
		if _, err := ParseMsgSpec(bad); err == nil {
			t.Errorf("ParseMsgSpec(%q) accepted", bad)
		}
	}
}

func TestMsgInjectorSet(t *testing.T) {
	mi := NewMsgInjector(1)
	if mi.Enabled() {
		t.Error("fresh injector already enabled")
	}
	if err := mi.Set(DropMsg, 0.25); err != nil {
		t.Fatal(err)
	}
	if !mi.Enabled() || mi.Rate(DropMsg) != 0.25 {
		t.Errorf("Set did not take: enabled=%v rate=%g", mi.Enabled(), mi.Rate(DropMsg))
	}
	nan := 0.0
	nan /= nan
	for _, bad := range []float64{-0.1, 1.1, nan} {
		if err := mi.Set(DupMsg, bad); err == nil {
			t.Errorf("rate %v accepted", bad)
		}
	}
	if err := mi.Set(MsgClass(9), 0.1); err == nil {
		t.Error("out-of-range class accepted")
	}
}

func TestVerdictDeterminismAndRates(t *testing.T) {
	// Rate 1 forces the class; rate 0 never fires.
	mi := NewMsgInjector(3)
	mi.Set(ReorderMsg, 1)
	for i := 0; i < 100; i++ {
		if v := mi.Verdict(); v != Reorder {
			t.Fatalf("verdict %d = %v, want Reorder", i, v)
		}
	}
	if v := NewMsgInjector(3).Verdict(); v != Deliver {
		t.Errorf("all-zero injector faulted: %v", v)
	}
	// Identical configuration → identical verdict sequence.
	a, _ := ParseMsgSpec("drop-msg@0.3,dup-msg@0.3:9")
	b, _ := ParseMsgSpec("drop-msg@0.3,dup-msg@0.3:9")
	for i := 0; i < 1000; i++ {
		if va, vb := a.Verdict(), b.Verdict(); va != vb {
			t.Fatalf("verdict %d diverges: %v vs %v", i, va, vb)
		}
	}
	// Drop draws before dup: at rate 1 on both, drop always wins.
	c := NewMsgInjector(1)
	c.Set(DropMsg, 1)
	c.Set(DupMsg, 1)
	if v := c.Verdict(); v != Drop {
		t.Errorf("class order broken: %v", v)
	}
}

func TestMsgInjectorStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"drop-msg@0.001",
		"drop-msg@0.5,reorder-msg@0.25:7",
		"dup-msg@1e-05:-3",
	} {
		mi, err := ParseMsgSpec(spec)
		if err != nil {
			t.Fatalf("ParseMsgSpec(%q): %v", spec, err)
		}
		back, err := ParseMsgSpec(mi.String())
		if err != nil {
			t.Fatalf("String() %q of %q does not reparse: %v", mi.String(), spec, err)
		}
		if back.Seed() != mi.Seed() {
			t.Errorf("%q: seed diverges %d -> %d", spec, mi.Seed(), back.Seed())
		}
		for _, c := range MsgClasses() {
			if back.Rate(c) != mi.Rate(c) {
				t.Errorf("%q: rate of %s diverges %g -> %g", spec, c, mi.Rate(c), back.Rate(c))
			}
		}
	}
}

func TestParseSpecs(t *testing.T) {
	inj, mi, err := ParseSpecs("")
	if inj != nil || mi != nil || err != nil {
		t.Errorf("empty spec: %v %v %v", inj, mi, err)
	}
	inj, mi, err = ParseSpecs("drop-msg@0.1")
	if err != nil || inj != nil || mi == nil || mi.Rate(DropMsg) != 0.1 {
		t.Errorf("message-only spec: inj=%v mi=%v err=%v", inj, mi, err)
	}
	inj, mi, err = ParseSpecs("forge-owner@500:7")
	if err != nil || inj == nil || mi != nil {
		t.Errorf("state-only spec: inj=%v mi=%v err=%v", inj, mi, err)
	}
	inj, mi, err = ParseSpecs("drop-inval@200,drop-msg@0.2,reorder-msg@0.1:9")
	if err != nil || inj == nil || mi == nil {
		t.Fatalf("combined spec: inj=%v mi=%v err=%v", inj, mi, err)
	}
	if mi.Rate(DropMsg) != 0.2 || mi.Rate(ReorderMsg) != 0.1 || mi.Seed() != 9 {
		t.Errorf("combined message side wrong: %+v", mi)
	}
	if _, _, err := ParseSpecs("drop-inval@200,forge-owner@300"); err == nil {
		t.Error("two state-corruption classes accepted")
	}
	if _, _, err := ParseSpecs("made-up-class"); err == nil ||
		!strings.Contains(err.Error(), "fault:") {
		t.Errorf("unknown class error not structured: %v", err)
	}
}

// FuzzParseMsgSpec holds the message-fault parser to its grammar:
// anything it accepts must render (String) and reparse to the identical
// rates and seed, with every rate inside [0, 1].
func FuzzParseMsgSpec(f *testing.F) {
	f.Add("drop-msg")
	f.Add("drop-msg@0.5,dup-msg@1e-4,reorder-msg:7")
	f.Add("dup-msg@1e-05:-3")
	f.Add("reorder-msg@1")
	f.Add("drop-msg@1e-3,reorder-msg@1e-4:9")
	f.Fuzz(func(t *testing.T, spec string) {
		mi, err := ParseMsgSpec(spec)
		if err != nil {
			return
		}
		for _, c := range MsgClasses() {
			if r := mi.Rate(c); r < 0 || r > 1 || r != r {
				t.Fatalf("ParseMsgSpec(%q) accepted rate %v for %s", spec, r, c)
			}
		}
		back, err := ParseMsgSpec(mi.String())
		if err != nil {
			t.Fatalf("String() %q of accepted spec %q does not reparse: %v", mi.String(), spec, err)
		}
		if back.Seed() != mi.Seed() {
			t.Fatalf("round trip seed diverges: %q -> %d -> %d", spec, mi.Seed(), back.Seed())
		}
		for _, c := range MsgClasses() {
			if back.Rate(c) != mi.Rate(c) {
				t.Fatalf("round trip rate of %s diverges: %q -> %g -> %g", c, spec, mi.Rate(c), back.Rate(c))
			}
		}
	})
}
