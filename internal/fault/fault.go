// Package fault deterministically corrupts the protocol state of a
// running simulation. Its only purpose is to prove that the online
// invariant checker (internal/check) is load-bearing: every fault class
// models a realistic protocol bug — a lost message, a stale directory
// field, a leaked tag — and the mutation-coverage test asserts the checker
// detects each one within a bounded number of operations.
//
// Injection is fully deterministic: an Injector is armed with a fault
// class, an operation index, and a seed. The engine calls Tick after every
// serviced memory operation; once the index is reached the injector picks
// its corruption target by walking the directory in block order and
// drawing from the seeded generator, fires exactly once, and records a
// Report of what it broke.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"lsnuma/internal/cache"
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// Class enumerates the injectable fault classes, spanning directory
// state, cache state, protocol messaging, and the LS tag machinery.
type Class uint8

const (
	// FlipPresence flips one presence bit of a Shared directory entry:
	// either the directory forgets a real sharer (a ghostless stale copy)
	// or invents one (a ghost holder).
	FlipPresence Class = iota
	// ForgeOwner redirects the owner field of a Dirty or Load-Store entry
	// to another node, as if an ownership transfer message had been
	// misrouted.
	ForgeOwner
	// DropInvalidation silently drops one invalidation message in transit:
	// the home removes the sharer from its presence bits, but the victim
	// cache keeps its copy — the classic lost-message bug.
	DropInvalidation
	// CorruptHomeState breaks the structural legality of one directory
	// entry (an owner-less Dirty entry, a Shared entry with no sharers),
	// as a wild write into directory memory would.
	CorruptHomeState
	// SilentDowngrade demotes an owner's exclusive cache copy to Shared
	// without telling the home, leaving the directory claiming an
	// exclusive holder that no longer exists.
	SilentDowngrade
	// LeakLSTag forges an LStemp (exclusive-on-read) grant in a cache that
	// only holds the block Shared: the LS protocol's saved ownership
	// acquisition applied to a block whose home never granted it.
	LeakLSTag

	numClasses
)

var classNames = [numClasses]string{
	FlipPresence:     "flip-presence",
	ForgeOwner:       "forge-owner",
	DropInvalidation: "drop-inval",
	CorruptHomeState: "corrupt-home",
	SilentDowngrade:  "silent-downgrade",
	LeakLSTag:        "leak-ls-tag",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes returns all fault classes.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if s == n {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q (want %s)", s, strings.Join(classNames[:], ", "))
}

// Target is the view of the machine an injector corrupts. It is
// implemented by *engine.Machine.
type Target interface {
	Nodes() int
	Layout() memory.Layout
	Directory() *directory.Directory
	Hierarchy(n memory.NodeID) *cache.Hierarchy
}

// Report records what a fired injector actually broke.
type Report struct {
	Class   Class
	Fired   bool
	OpIndex uint64      // serviced-operation index at injection
	Cycle   uint64      // issuing processor's clock at injection
	Block   memory.Addr // corrupted block
	Node    memory.NodeID
	Detail  string
}

// Injector corrupts one piece of protocol state, once, deterministically.
type Injector struct {
	class   Class
	afterOp uint64
	rng     *rand.Rand
	report  Report
}

// New returns an injector that fires its fault class at the first
// opportunity at or after serviced operation afterOp, with target
// selection driven by seed.
func New(class Class, afterOp uint64, seed int64) *Injector {
	return &Injector{class: class, afterOp: afterOp, rng: rand.New(rand.NewSource(seed)),
		report: Report{Class: class}}
}

// Class returns the injector's fault class.
func (inj *Injector) Class() Class { return inj.class }

// Fired reports whether the fault has been injected.
func (inj *Injector) Fired() bool { return inj.report.Fired }

// Report returns what was injected (Fired false if nothing yet).
func (inj *Injector) Report() Report { return inj.report }

// ParseSpec parses a fault specification of the form
// "class[@afterOp][:seed]", e.g. "forge-owner@500:7". afterOp defaults to
// 0 (fire at the first opportunity) and seed to 1.
func ParseSpec(spec string) (*Injector, error) {
	rest := spec
	seed := int64(1)
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		v, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad seed in spec %q: %v", spec, err)
		}
		seed, rest = v, rest[:i]
	}
	afterOp := uint64(0)
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		v, err := strconv.ParseUint(rest[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad op index in spec %q: %v", spec, err)
		}
		afterOp, rest = v, rest[:i]
	}
	class, err := ParseClass(rest)
	if err != nil {
		return nil, err
	}
	return New(class, afterOp, seed), nil
}

// candidate is one corruptible block, keyed by its dense block index.
type candidate struct {
	idx   uint64
	entry *directory.Entry
}

// candidates collects, in block order, every directory entry the class
// can corrupt right now. Directory.ForEach guarantees ascending block
// order, so selection is deterministic without a sort.
func (inj *Injector) candidates(t Target, suitable func(*directory.Entry) bool) []candidate {
	var cs []candidate
	t.Directory().ForEach(func(idx uint64, e *directory.Entry) {
		if suitable(e) {
			cs = append(cs, candidate{idx, e})
		}
	})
	return cs
}

// fire records the injection.
func (inj *Injector) fire(opIndex, cycle uint64, block memory.Addr, n memory.NodeID, format string, args ...any) {
	inj.report = Report{
		Class: inj.class, Fired: true,
		OpIndex: opIndex, Cycle: cycle, Block: block, Node: n,
		Detail: fmt.Sprintf(format, args...),
	}
}

// Tick gives the injector a chance to fire. The engine calls it after
// every serviced memory operation; the injector is inert until the armed
// operation index, fires at the first operation with a suitable corruption
// target, and is inert again afterwards. DropInvalidation does not fire
// from Tick — it waits for an invalidation to drop (DropInvalidation
// method).
func (inj *Injector) Tick(t Target, opIndex, cycle uint64) {
	if inj.report.Fired || opIndex < inj.afterOp || inj.class == DropInvalidation {
		return
	}
	blockOf := func(c candidate) memory.Addr {
		return memory.Addr(c.idx * t.Layout().BlockSize)
	}
	switch inj.class {
	case FlipPresence:
		cs := inj.candidates(t, func(e *directory.Entry) bool { return e.State == directory.Shared })
		if len(cs) == 0 {
			return
		}
		c := cs[inj.rng.Intn(len(cs))]
		n := memory.NodeID(inj.rng.Intn(t.Nodes()))
		if c.entry.Sharers.Has(n) {
			c.entry.Sharers.Remove(n)
			inj.fire(opIndex, cycle, blockOf(c), n, "cleared presence bit of sharer %d", n)
		} else {
			c.entry.Sharers.Add(n)
			inj.fire(opIndex, cycle, blockOf(c), n, "set presence bit of non-sharer %d", n)
		}
	case ForgeOwner:
		if t.Nodes() < 2 {
			return
		}
		cs := inj.candidates(t, func(e *directory.Entry) bool {
			return e.State == directory.Dirty || e.State == directory.Excl
		})
		if len(cs) == 0 {
			return
		}
		c := cs[inj.rng.Intn(len(cs))]
		old := c.entry.Owner
		c.entry.Owner = memory.NodeID((int(old) + 1 + inj.rng.Intn(t.Nodes()-1)) % t.Nodes())
		inj.fire(opIndex, cycle, blockOf(c), c.entry.Owner,
			"forged owner %d (real owner %d)", c.entry.Owner, old)
	case CorruptHomeState:
		cs := inj.candidates(t, func(e *directory.Entry) bool { return e.State != directory.Uncached })
		if len(cs) == 0 {
			return
		}
		c := cs[inj.rng.Intn(len(cs))]
		switch c.entry.State {
		case directory.Shared:
			c.entry.Sharers.Clear()
			inj.fire(opIndex, cycle, blockOf(c), memory.NoNode, "cleared all sharers of a Shared entry")
		default: // Dirty, Excl
			old := c.entry.Owner
			c.entry.Owner = memory.NoNode
			inj.fire(opIndex, cycle, blockOf(c), old, "erased owner %d of a %v entry", old, c.entry.State)
		}
	case SilentDowngrade:
		cs := inj.candidates(t, func(e *directory.Entry) bool {
			return (e.State == directory.Dirty || e.State == directory.Excl) &&
				e.Owner != memory.NoNode
		})
		for len(cs) > 0 {
			i := inj.rng.Intn(len(cs))
			c := cs[i]
			block := blockOf(c)
			h := t.Hierarchy(c.entry.Owner)
			if h.State(block).Exclusive() && h.ForceState(block, cache.Shared) {
				inj.fire(opIndex, cycle, block, c.entry.Owner,
					"downgraded owner %d's exclusive copy to Shared behind the home's back", c.entry.Owner)
				return
			}
			cs = append(cs[:i], cs[i+1:]...)
		}
	case LeakLSTag:
		cs := inj.candidates(t, func(e *directory.Entry) bool {
			return e.State == directory.Shared && !e.Sharers.Empty()
		})
		for len(cs) > 0 {
			i := inj.rng.Intn(len(cs))
			c := cs[i]
			block := blockOf(c)
			var leaked memory.NodeID = memory.NoNode
			c.entry.Sharers.ForEach(func(n memory.NodeID) {
				if leaked == memory.NoNode && t.Hierarchy(n).State(block) == cache.Shared {
					leaked = n
				}
			})
			if leaked != memory.NoNode && t.Hierarchy(leaked).ForceState(block, cache.LStemp) {
				inj.fire(opIndex, cycle, block, leaked,
					"forged an LStemp grant in sharer %d's cache (leaked LS tag)", leaked)
				return
			}
			cs = append(cs[:i], cs[i+1:]...)
		}
	}
}

// DropInvalidation reports whether the invalidation being sent to node n
// for block should be lost in transit. Only the DropInvalidation class
// ever returns true, at most once, at or after the armed operation index.
func (inj *Injector) DropInvalidation(n memory.NodeID, block memory.Addr, opIndex, cycle uint64) bool {
	if inj.class != DropInvalidation || inj.report.Fired || opIndex < inj.afterOp {
		return false
	}
	inj.fire(opIndex, cycle, block, n, "dropped invalidation to sharer %d", n)
	return true
}
