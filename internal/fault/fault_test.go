// Mutation coverage for the online invariant checker: every fault class
// the injector can produce must be detected by internal/check as a
// structured coherence violation within a bounded number of cycles. This
// is the proof that the checker is load-bearing — a checker that misses
// an injected lost message or leaked tag would miss the real bug too.
package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"lsnuma/internal/cache"
	"lsnuma/internal/check"
	"lsnuma/internal/engine"
	"lsnuma/internal/fault"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

// injectionOp is when the injector arms itself: late enough that the
// machine has built up a rich mix of Shared, Dirty and Load-Store
// directory state for every class to corrupt.
const injectionOp = 200

// detectionBound is the maximum accepted gap between the injection cycle
// and the detection cycle. With CheckInterval=1 the full sweep runs in
// the same post-operation hook as the injector, so the bound is one
// operation's worth of simulated time.
const detectionBound = 5000

func testConfig(serial bool, inj *fault.Injector) engine.Config {
	return engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(protocol.LS, protocol.Variant{}),
		MaxCycles:      200_000_000,
		SerialSchedule: serial,
		CheckLevel:     check.Full,
		CheckInterval:  1,
		FaultInjector:  inj,
	}
}

// mixedPrograms builds per-CPU programs that keep all fault classes
// supplied with corruption targets: widely shared read-only blocks
// (Shared entries with several sharers), per-CPU read-modify-write blocks
// (Dirty / Load-Store entries with exclusive cache copies), and periodic
// writes to the shared region (invalidation traffic to drop).
func mixedPrograms(m *engine.Machine, cpus int) []engine.Program {
	shared := m.Alloc().AllocBlocks("shared", 16*16)
	priv := m.Alloc().AllocBlocks("priv", uint64(cpus)*16*16)
	progs := make([]engine.Program, cpus)
	for i := 0; i < cpus; i++ {
		i := i
		progs[i] = func(p *engine.Proc) {
			mine := priv + memory.Addr(i*16*16)
			for round := 0; round < 40; round++ {
				for b := 0; b < 16; b++ {
					p.Read(shared + memory.Addr(b*16))
				}
				for b := 0; b < 16; b++ {
					p.Read(mine + memory.Addr(b*16))
					p.Write(mine + memory.Addr(b*16))
				}
				if round%4 == 3 {
					p.Write(shared + memory.Addr(((i*4+round)%16)*16))
				}
			}
		}
	}
	return progs
}

// TestCheckerDetectsEveryFaultClass is the mutation-coverage matrix:
// each fault class, under both schedulers, must abort the run with a
// *check.CoherenceViolation, and detection must land within
// detectionBound cycles of the injection.
func TestCheckerDetectsEveryFaultClass(t *testing.T) {
	for _, serial := range []bool{false, true} {
		for _, class := range fault.Classes() {
			name := fmt.Sprintf("%v/serial=%v", class, serial)
			t.Run(name, func(t *testing.T) {
				inj := fault.New(class, injectionOp, 1)
				m, err := engine.NewMachine(testConfig(serial, inj))
				if err != nil {
					t.Fatal(err)
				}
				err = m.Run(mixedPrograms(m, 4))
				rep := inj.Report()
				if !rep.Fired {
					t.Fatalf("fault %v never fired (run error: %v)", class, err)
				}
				var v *check.CoherenceViolation
				if !errors.As(err, &v) {
					t.Fatalf("fault %v: run returned %v, want a *check.CoherenceViolation", class, err)
				}
				if v.Cycle < rep.Cycle || v.Cycle-rep.Cycle > detectionBound {
					t.Errorf("fault %v: injected at cycle %d, detected at cycle %d (bound %d)",
						class, rep.Cycle, v.Cycle, detectionBound)
				}
				t.Logf("%-16v injected op=%d cycle=%d (%s) -> detected %q at cycle %d (latency %d cycles)",
					class, rep.OpIndex, rep.Cycle, rep.Detail, v.Invariant, v.Cycle, v.Cycle-rep.Cycle)
			})
		}
	}
}

// TestNoFaultNoViolation is the matching sanity leg: the same workload
// under the same full-sweep checking, with no injector, must complete
// cleanly — the mutation matrix is meaningless if the checker also fires
// on healthy runs.
func TestNoFaultNoViolation(t *testing.T) {
	for _, serial := range []bool{false, true} {
		cfg := testConfig(serial, nil)
		m, err := engine.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(mixedPrograms(m, 4)); err != nil {
			t.Fatalf("serial=%v: clean run failed under full checking: %v", serial, err)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		class   fault.Class
		wantErr bool
	}{
		{"forge-owner", fault.ForgeOwner, false},
		{"drop-inval@500", fault.DropInvalidation, false},
		{"flip-presence@10:7", fault.FlipPresence, false},
		{"leak-ls-tag:3", fault.LeakLSTag, false},
		{"corrupt-home", fault.CorruptHomeState, false},
		{"silent-downgrade", fault.SilentDowngrade, false},
		{"bogus-class", 0, true},
		{"forge-owner@x", 0, true},
		{"forge-owner:x", 0, true},
	}
	for _, c := range cases {
		inj, err := fault.ParseSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if inj.Class() != c.class {
			t.Errorf("ParseSpec(%q) class = %v, want %v", c.spec, inj.Class(), c.class)
		}
	}
}

// TestInjectionIsDeterministic: the same spec against the same workload
// must corrupt the same block the same way.
func TestInjectionIsDeterministic(t *testing.T) {
	reports := make([]fault.Report, 2)
	for i := range reports {
		inj := fault.New(fault.ForgeOwner, injectionOp, 7)
		m, err := engine.NewMachine(testConfig(false, inj))
		if err != nil {
			t.Fatal(err)
		}
		m.Run(mixedPrograms(m, 4)) // error expected; the report is the subject
		reports[i] = inj.Report()
	}
	if reports[0] != reports[1] {
		t.Errorf("same seed, different injections:\n  %+v\n  %+v", reports[0], reports[1])
	}
	inj := fault.New(fault.ForgeOwner, injectionOp, 8)
	m, err := engine.NewMachine(testConfig(false, inj))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(mixedPrograms(m, 4))
	if r := inj.Report(); !r.Fired {
		t.Error("seed 8 injection never fired")
	}
}
