package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// MsgClass enumerates the message-level fault classes applied at the
// network layer. Unlike the state-corruption classes of Class — protocol
// bugs the online checker must catch — message faults model an
// unreliable interconnect (lost, duplicated, reordered messages) that the
// requester-side retry machinery must recover from without changing the
// simulated outcome.
type MsgClass uint8

const (
	// DropMsg destroys a message in transit; the sender must time out and
	// retransmit.
	DropMsg MsgClass = iota
	// DupMsg delivers an extra copy of a message; the receiver discards
	// it idempotently (transactions are identified by requester and
	// block), so only the wasted traffic is visible.
	DupMsg
	// ReorderMsg delivers a message out of order: the receiver rejects
	// the stale copy with a NACK and the sender retransmits.
	ReorderMsg

	numMsgClasses
)

var msgClassNames = [numMsgClasses]string{
	DropMsg:    "drop-msg",
	DupMsg:     "dup-msg",
	ReorderMsg: "reorder-msg",
}

func (c MsgClass) String() string {
	if int(c) < len(msgClassNames) {
		return msgClassNames[c]
	}
	return fmt.Sprintf("MsgClass(%d)", uint8(c))
}

// MsgClasses returns all message-fault classes.
func MsgClasses() []MsgClass {
	out := make([]MsgClass, numMsgClasses)
	for i := range out {
		out[i] = MsgClass(i)
	}
	return out
}

// ParseMsgClass converts a class name to a MsgClass.
func ParseMsgClass(s string) (MsgClass, error) {
	for i, n := range msgClassNames {
		if s == n {
			return MsgClass(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown message class %q (want %s)", s, strings.Join(msgClassNames[:], ", "))
}

// MsgVerdict is a MsgInjector's decision for one message.
type MsgVerdict uint8

const (
	// Deliver lets the message through unharmed.
	Deliver MsgVerdict = iota
	// Drop destroys the message in transit.
	Drop
	// Dup delivers an extra copy of the message.
	Dup
	// Reorder delivers the message out of order (the receiver NACKs it).
	Reorder
)

// MsgInjector draws a deterministic fault verdict for every network
// message: one uniform draw per enabled class, in class order, first hit
// wins. The draw sequence depends only on the seed and the message
// sequence, so the same configuration faults the same messages on every
// run.
type MsgInjector struct {
	rates [numMsgClasses]float64
	seed  int64
	rng   *rand.Rand
}

// NewMsgInjector returns an injector with all rates zero, drawing from a
// generator seeded with seed.
func NewMsgInjector(seed int64) *MsgInjector {
	return &MsgInjector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Set configures the per-message fault probability of one class.
func (mi *MsgInjector) Set(class MsgClass, rate float64) error {
	if class >= numMsgClasses {
		return fmt.Errorf("fault: invalid message class %d", class)
	}
	if rate < 0 || rate > 1 || rate != rate {
		return fmt.Errorf("fault: message fault rate %v outside [0, 1]", rate)
	}
	mi.rates[class] = rate
	return nil
}

// Rate returns the configured probability of one class.
func (mi *MsgInjector) Rate(class MsgClass) float64 { return mi.rates[class] }

// Seed returns the injector's seed.
func (mi *MsgInjector) Seed() int64 { return mi.seed }

// Enabled reports whether any class has a nonzero rate.
func (mi *MsgInjector) Enabled() bool {
	for _, r := range mi.rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// Verdict draws the fate of the next message.
func (mi *MsgInjector) Verdict() MsgVerdict {
	for c := MsgClass(0); c < numMsgClasses; c++ {
		if mi.rates[c] == 0 {
			continue
		}
		if mi.rng.Float64() < mi.rates[c] {
			switch c {
			case DropMsg:
				return Drop
			case DupMsg:
				return Dup
			default:
				return Reorder
			}
		}
	}
	return Deliver
}

// String renders the injector's configuration in ParseMsgSpec's grammar.
func (mi *MsgInjector) String() string {
	var parts []string
	for c := MsgClass(0); c < numMsgClasses; c++ {
		if mi.rates[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s@%g", c, mi.rates[c]))
		}
	}
	s := strings.Join(parts, ",")
	if mi.seed != 1 {
		s += ":" + strconv.FormatInt(mi.seed, 10)
	}
	return s
}

// ParseMsgSpec parses a message-fault specification: comma-separated
// "class[@rate]" parts with an optional ":seed" suffix on one part, e.g.
// "drop-msg@1e-3,dup-msg@1e-4:7". The rate defaults to 1e-3 and the seed
// to 1. Each class may appear at most once.
func ParseMsgSpec(spec string) (*MsgInjector, error) {
	seed := int64(1)
	seenSeed := false
	type part struct {
		class MsgClass
		rate  float64
	}
	var parts []part
	var seen [numMsgClasses]bool
	for _, raw := range strings.Split(spec, ",") {
		rest := raw
		if i := strings.LastIndexByte(rest, ':'); i >= 0 {
			if seenSeed {
				return nil, fmt.Errorf("fault: multiple seeds in message spec %q", spec)
			}
			v, err := strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed in message spec %q: %v", spec, err)
			}
			seed, seenSeed, rest = v, true, rest[:i]
		}
		rate := 1e-3
		if i := strings.IndexByte(rest, '@'); i >= 0 {
			v, err := strconv.ParseFloat(rest[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad rate in message spec %q: %v", spec, err)
			}
			rate, rest = v, rest[:i]
		}
		class, err := ParseMsgClass(rest)
		if err != nil {
			return nil, err
		}
		if seen[class] {
			return nil, fmt.Errorf("fault: duplicate class %s in message spec %q", class, spec)
		}
		seen[class] = true
		parts = append(parts, part{class, rate})
	}
	mi := NewMsgInjector(seed)
	for _, p := range parts {
		if err := mi.Set(p.class, p.rate); err != nil {
			return nil, fmt.Errorf("%w (message spec %q)", err, spec)
		}
	}
	return mi, nil
}

// classToken extracts the leading class name of one spec part — the text
// before the first '@' or ':' — used to route parts between the state-
// corruption and message-fault grammars.
func classToken(part string) string {
	if i := strings.IndexAny(part, "@:"); i >= 0 {
		return part[:i]
	}
	return part
}

// ParseSpecs parses a combined fault specification: comma-separated
// parts, each either a state-corruption spec in ParseSpec's grammar
// ("class[@afterOp][:seed]", at most one) or a message-fault part in
// ParseMsgSpec's grammar ("class[@rate][:seed]", any subset of classes).
// Examples: "drop-msg@1e-3", "forge-owner@500:7",
// "drop-msg@1e-3,reorder-msg@1e-4:9". The empty string yields (nil, nil).
func ParseSpecs(spec string) (*Injector, *MsgInjector, error) {
	if spec == "" {
		return nil, nil, nil
	}
	var stateParts, msgParts []string
	for _, part := range strings.Split(spec, ",") {
		if _, err := ParseMsgClass(classToken(part)); err == nil {
			msgParts = append(msgParts, part)
		} else {
			stateParts = append(stateParts, part)
		}
	}
	var inj *Injector
	var mi *MsgInjector
	var err error
	if len(stateParts) > 1 {
		return nil, nil, fmt.Errorf("fault: at most one state-corruption class per spec, got %s", strings.Join(stateParts, ", "))
	}
	if len(stateParts) == 1 {
		if inj, err = ParseSpec(stateParts[0]); err != nil {
			return nil, nil, err
		}
	}
	if len(msgParts) > 0 {
		if mi, err = ParseMsgSpec(strings.Join(msgParts, ",")); err != nil {
			return nil, nil, err
		}
	}
	return inj, mi, err
}
