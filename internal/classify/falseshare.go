package classify

import (
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// MissKind classifies a data miss for the Table 4 analysis.
type MissKind uint8

const (
	// ColdMiss: the processor touches the block for the first time.
	ColdMiss MissKind = iota
	// ReplacementMiss: the processor's previous copy was replaced
	// (capacity/conflict), not invalidated.
	ReplacementMiss
	// TrueSharingMiss: the copy was invalidated and, during the new
	// residency, the processor used at least one word written by another
	// processor since it lost the block — an essential miss.
	TrueSharingMiss
	// FalseSharingMiss: the copy was invalidated but the processor never
	// used a word modified by another processor — the miss exists only
	// because the block is wider than a word (Dubois et al.).
	FalseSharingMiss
	// NumMissKinds is the number of miss kinds.
	NumMissKinds
)

func (k MissKind) String() string {
	switch k {
	case ColdMiss:
		return "cold"
	case ReplacementMiss:
		return "replacement"
	case TrueSharingMiss:
		return "true-sharing"
	case FalseSharingMiss:
		return "false-sharing"
	default:
		return "unknown"
	}
}

// fsBlock is the per-block tracking state of the false-sharing classifier.
// The per-CPU sets are directory.Bitsets so the classifier works beyond 64
// processors.
type fsBlock struct {
	wordTime   []uint64        // logical time of last write, per word
	wordWriter []memory.NodeID // last writer, per word

	resident  directory.Bitset // CPUs with an open residency
	everHeld  directory.Bitset // CPUs that ever held the block
	lostInval directory.Bitset // last residency ended by invalidation
	essential directory.Bitset // open residency already proven essential
	coherent  directory.Bitset // open residency began as a coherence miss
	lostTime  []uint64
}

// FalseSharing is the Dubois-style word-granularity miss classifier. The
// engine reports every access (for word-use tracking), every miss (to open
// a residency) and every loss of a copy (invalidation or replacement, to
// close and classify it). Classification is deferred to the close of the
// residency (or Finalize), when it is known whether the processor ever
// consumed a remotely written word.
type FalseSharing struct {
	layout memory.Layout
	cpus   int
	blocks map[uint64]*fsBlock
	clock  uint64

	Misses [NumMissKinds]uint64
}

// NewFalseSharing returns a classifier for the given layout and processor
// count.
func NewFalseSharing(layout memory.Layout, cpus int) *FalseSharing {
	return &FalseSharing{layout: layout, cpus: cpus, blocks: make(map[uint64]*fsBlock)}
}

func (f *FalseSharing) block(block memory.Addr) *fsBlock {
	idx := f.layout.BlockIndex(block)
	b, ok := f.blocks[idx]
	if !ok {
		words := f.layout.WordsPerBlock()
		b = &fsBlock{
			wordTime:   make([]uint64, words),
			wordWriter: make([]memory.NodeID, words),
			lostTime:   make([]uint64, f.cpus),
		}
		for i := range b.wordWriter {
			b.wordWriter[i] = memory.NoNode
		}
		f.blocks[idx] = b
	}
	return b
}

// OnMiss opens a residency: cpu missed on the block containing addr. Must
// be called before the corresponding OnAccess for the missing access.
func (f *FalseSharing) OnMiss(cpu memory.NodeID, block memory.Addr) {
	b := f.block(block)
	if b.resident.Has(cpu) {
		return // already resident (shouldn't happen; be tolerant)
	}
	b.resident.Add(cpu)
	b.essential.Remove(cpu)
	b.coherent.Remove(cpu)
	if !b.everHeld.Has(cpu) {
		// Cold miss: classified immediately; the residency is marked
		// essential so its close doesn't double-count.
		f.Misses[ColdMiss]++
		b.everHeld.Add(cpu)
		b.essential.Add(cpu)
		return
	}
	if b.lostInval.Has(cpu) {
		b.coherent.Add(cpu)
	} else {
		// Replacement miss: classified immediately.
		f.Misses[ReplacementMiss]++
		b.essential.Add(cpu)
	}
}

// OnAccess records that cpu touched words [addr, addr+size) of a resident
// block. For stores it also bumps the word versions. The kind of sharing
// is decided here: touching a word written by another processor since the
// block was last lost proves the current residency essential.
func (f *FalseSharing) OnAccess(cpu memory.NodeID, addr memory.Addr, size uint32, kind memory.Kind) {
	b := f.block(f.layout.Block(addr))
	first := f.layout.WordInBlock(addr)
	last := f.layout.WordInBlock(addr + memory.Addr(size) - 1)

	if !b.essential.Has(cpu) && b.coherent.Has(cpu) {
		lost := b.lostTime[cpu]
		for w := first; w <= last; w++ {
			if b.wordTime[w] > lost && b.wordWriter[w] != cpu {
				b.essential.Add(cpu)
				break
			}
		}
	}
	if kind == memory.Store {
		f.clock++
		for w := first; w <= last; w++ {
			b.wordTime[w] = f.clock
			b.wordWriter[w] = cpu
		}
	}
}

// OnLose closes cpu's residency of the block: byInvalidation tells whether
// the copy was invalidated by the coherence protocol (as opposed to being
// replaced for capacity/conflict reasons). Coherence-miss residencies are
// classified true/false sharing at this point.
//
// Ordering contract: for an invalidation caused by another processor's
// store, OnLose must be called before that store's OnAccess — exactly the
// order the protocol performs them (invalidations complete before the
// write). This guarantees the causing write is timestamped after the loss
// and therefore counts as new to the losing processor.
func (f *FalseSharing) OnLose(cpu memory.NodeID, block memory.Addr, byInvalidation bool) {
	b := f.block(block)
	if !b.resident.Has(cpu) {
		return
	}
	f.closeResidency(b, cpu)
	b.resident.Remove(cpu)
	if byInvalidation {
		b.lostInval.Add(cpu)
	} else {
		b.lostInval.Remove(cpu)
	}
	f.clock++
	b.lostTime[cpu] = f.clock
}

func (f *FalseSharing) closeResidency(b *fsBlock, cpu memory.NodeID) {
	if !b.coherent.Has(cpu) {
		return // cold or replacement miss, already classified
	}
	if b.essential.Has(cpu) {
		f.Misses[TrueSharingMiss]++
	} else {
		f.Misses[FalseSharingMiss]++
	}
	b.coherent.Remove(cpu)
}

// Finalize closes all open residencies at the end of the simulation so
// their misses are classified.
func (f *FalseSharing) Finalize() {
	for _, b := range f.blocks {
		b.resident.ForEach(func(cpu memory.NodeID) {
			f.closeResidency(b, cpu)
		})
		b.resident.Clear()
	}
}

// TotalMisses returns the total number of classified data misses.
func (f *FalseSharing) TotalMisses() uint64 {
	var n uint64
	for _, v := range f.Misses {
		n += v
	}
	return n
}

// FalseSharingFrac returns the fraction of all data misses (including
// cold misses) that are false-sharing misses.
func (f *FalseSharing) FalseSharingFrac() float64 {
	total := f.TotalMisses()
	if total == 0 {
		return 0
	}
	return float64(f.Misses[FalseSharingMiss]) / float64(total)
}

// SteadyStateFrac returns Table 4's metric with cold misses excluded: the
// paper measures billions of instructions, so its miss population is
// steady-state; simulation runs here are orders of magnitude shorter and
// cold misses would otherwise swamp the denominator.
func (f *FalseSharing) SteadyStateFrac() float64 {
	total := f.TotalMisses() - f.Misses[ColdMiss]
	if total == 0 {
		return 0
	}
	return float64(f.Misses[FalseSharingMiss]) / float64(total)
}
