// Package classify implements the paper's access-pattern analyses:
//
//   - The load-store sequence detector (Section 2): a global read request
//     followed by a global write action to the same memory block from the
//     same processor, with no intervening access to the block from any
//     other processor. Tables 2 and 3 are computed from it, including the
//     per-source (application / libraries / OS) attribution and the
//     migratory sub-classification.
//
//   - The Dubois et al. (ISCA '93) false-sharing classifier used for
//     Table 4: a word-granularity essential/useless miss analysis.
package classify

import (
	"lsnuma/internal/memory"
)

// seqState is the per-block state of the load-store sequence detector.
type seqState struct {
	lastAccessor memory.NodeID // processor of the most recent global access
	lastWasRead  bool          // ... and whether it was a read
	lastSeqOwner memory.NodeID // processor of the last completed load-store sequence
	readSeq      uint64        // global access sequence number of the opening read
}

// Per-block detector state is stored the same way the directory stores
// its entries: dense pages of values indexed by block index, with a
// presence bitset for lazy initialization. The detector sits on the
// global-access hot path, so block lookups must not hash or allocate;
// a page is three allocations per seqPageSize blocks instead of one-plus
// per block with the old map.
const (
	seqPageSize  = 256 // blocks per page; power of two
	seqPageShift = 8
)

type seqPage struct {
	present [seqPageSize / 64]uint64
	states  [seqPageSize]seqState
}

// SourceCounters accumulates Table 2 per source class.
type SourceCounters struct {
	// GlobalWrites counts global write actions (including ones the
	// protocol eliminated by an exclusive grant — they are still global
	// write actions of the workload).
	GlobalWrites uint64
	// LoadStoreWrites counts global writes that complete a load-store
	// sequence.
	LoadStoreWrites uint64
	// MigratoryWrites counts load-store writes whose previous load-store
	// sequence on the block was performed by a different processor —
	// migratory sharing, the sub-set AD targets.
	MigratoryWrites uint64
}

// LoadStoreFrac returns the fraction of global writes that are part of
// load-store sequences (Table 2, first row).
func (c SourceCounters) LoadStoreFrac() float64 {
	if c.GlobalWrites == 0 {
		return 0
	}
	return float64(c.LoadStoreWrites) / float64(c.GlobalWrites)
}

// MigratoryFrac returns the fraction of load-store sequences that are
// migratory (Table 2, second row).
func (c SourceCounters) MigratoryFrac() float64 {
	if c.LoadStoreWrites == 0 {
		return 0
	}
	return float64(c.MigratoryWrites) / float64(c.LoadStoreWrites)
}

// Coverage accumulates Table 3: how many of the load-store (and migratory)
// global writes the protocol actually removed by granting exclusive copies.
type Coverage struct {
	LoadStoreWrites     uint64 // writes completing a load-store sequence
	LoadStoreEliminated uint64 // ... of those, performed locally (no global action)
	MigratoryWrites     uint64
	MigratoryEliminated uint64
}

// LoadStoreCoverage returns the fraction of load-store global writes
// removed (Table 3, "Load-Store" column).
func (c Coverage) LoadStoreCoverage() float64 {
	if c.LoadStoreWrites == 0 {
		return 0
	}
	return float64(c.LoadStoreEliminated) / float64(c.LoadStoreWrites)
}

// MigratoryCoverage returns the fraction of migratory global writes
// removed (Table 3, "Migratory" column).
func (c Coverage) MigratoryCoverage() float64 {
	if c.MigratoryWrites == 0 {
		return 0
	}
	return float64(c.MigratoryEliminated) / float64(c.MigratoryWrites)
}

// Sequences is the online load-store sequence detector. The engine feeds
// it every *global* access (one that reached the home node) plus every
// eliminated write (a store satisfied locally by an exclusive grant, which
// under the baseline protocol would have been a global write action).
type Sequences struct {
	layout  memory.Layout
	pages   []*seqPage
	Sources [memory.NumSources]SourceCounters
	Cov     Coverage

	// Locate, if set, maps a block address to a data-region name;
	// coverage is then additionally attributed per region (diagnostics
	// and the lssweep region report).
	Locate  func(memory.Addr) string
	Regions map[string]*Coverage

	// Distance histogram: the number of global accesses (machine-wide)
	// between a load-store sequence's opening read and its closing write.
	// The paper (§1, §2) attributes the static techniques' weak OLTP
	// coverage to "the loads and the stores in the instruction stream
	// [being] generally farther apart"; this measures the data-centric
	// analogue. Buckets: 0, 1-3, 4-15, 16-63, 64-255, ≥256.
	Distance [6]uint64
	clock    uint64
}

// DistanceBuckets labels the Distance histogram buckets.
func DistanceBuckets() []string {
	return []string{"0", "1-3", "4-15", "16-63", "64-255", ">=256"}
}

func distanceBucket(d uint64) int {
	switch {
	case d == 0:
		return 0
	case d <= 3:
		return 1
	case d <= 15:
		return 2
	case d <= 63:
		return 3
	case d <= 255:
		return 4
	default:
		return 5
	}
}

// NewSequences returns an empty detector for the given layout.
func NewSequences(layout memory.Layout) *Sequences {
	return &Sequences{layout: layout}
}

func (s *Sequences) state(block memory.Addr) *seqState {
	idx := s.layout.BlockIndex(block)
	pi := idx >> seqPageShift
	if pi >= uint64(len(s.pages)) {
		s.pages = append(s.pages, make([]*seqPage, pi+1-uint64(len(s.pages)))...)
	}
	pg := s.pages[pi]
	if pg == nil {
		pg = &seqPage{}
		s.pages[pi] = pg
	}
	off := idx & (seqPageSize - 1)
	if w, bit := off>>6, off&63; pg.present[w]&(1<<bit) == 0 {
		pg.present[w] |= 1 << bit
		pg.states[off] = seqState{lastAccessor: memory.NoNode, lastSeqOwner: memory.NoNode}
	}
	return &pg.states[off]
}

// GlobalRead records a global read action by cpu on the block containing
// addr.
func (s *Sequences) GlobalRead(block memory.Addr, cpu memory.NodeID) {
	s.clock++
	st := s.state(block)
	st.lastAccessor = cpu
	st.lastWasRead = true
	st.readSeq = s.clock
}

// GlobalWrite records a global write action by cpu on the block:
// an ownership acquisition or write miss (eliminated=false), or a store
// satisfied locally through an exclusive grant (eliminated=true). It
// returns whether the write completed a load-store sequence and whether
// that sequence was migratory.
func (s *Sequences) GlobalWrite(block memory.Addr, cpu memory.NodeID, src memory.Source, eliminated bool) (isLS, isMigratory bool) {
	s.clock++
	st := s.state(block)
	isLS = st.lastWasRead && st.lastAccessor == cpu
	isMigratory = isLS && st.lastSeqOwner != memory.NoNode && st.lastSeqOwner != cpu
	if isLS {
		s.Distance[distanceBucket(s.clock-st.readSeq-1)]++
	}

	sc := &s.Sources[src]
	sc.GlobalWrites++
	var reg *Coverage
	if s.Locate != nil {
		name := s.Locate(block)
		if s.Regions == nil {
			s.Regions = make(map[string]*Coverage)
		}
		reg = s.Regions[name]
		if reg == nil {
			reg = &Coverage{}
			s.Regions[name] = reg
		}
	}
	if isLS {
		sc.LoadStoreWrites++
		s.Cov.LoadStoreWrites++
		if eliminated {
			s.Cov.LoadStoreEliminated++
		}
		if reg != nil {
			reg.LoadStoreWrites++
			if eliminated {
				reg.LoadStoreEliminated++
			}
		}
		st.lastSeqOwner = cpu
	}
	if isMigratory {
		sc.MigratoryWrites++
		s.Cov.MigratoryWrites++
		if eliminated {
			s.Cov.MigratoryEliminated++
		}
		if reg != nil {
			reg.MigratoryWrites++
			if eliminated {
				reg.MigratoryEliminated++
			}
		}
	}

	st.lastAccessor = cpu
	st.lastWasRead = false
	return isLS, isMigratory
}

// Total returns the sum of the per-source counters (Table 2, "Total"
// column).
func (s *Sequences) Total() SourceCounters {
	var out SourceCounters
	for _, c := range s.Sources {
		out.GlobalWrites += c.GlobalWrites
		out.LoadStoreWrites += c.LoadStoreWrites
		out.MigratoryWrites += c.MigratoryWrites
	}
	return out
}
