package classify

import (
	"math"
	"testing"

	"lsnuma/internal/memory"
)

func layout(t *testing.T) memory.Layout {
	t.Helper()
	l, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoadStoreSequenceDetection(t *testing.T) {
	s := NewSequences(layout(t))
	b := memory.Addr(0x100)

	// Read by 0 then write by 0: a load-store sequence, not migratory.
	s.GlobalRead(b, 0)
	isLS, isMig := s.GlobalWrite(b, 0, memory.SrcApp, false)
	if !isLS || isMig {
		t.Fatalf("first sequence: isLS=%v isMig=%v", isLS, isMig)
	}

	// Read by 1 then write by 1: load-store AND migratory (previous
	// sequence owner was 0).
	s.GlobalRead(b, 1)
	isLS, isMig = s.GlobalWrite(b, 1, memory.SrcApp, false)
	if !isLS || !isMig {
		t.Fatalf("second sequence: isLS=%v isMig=%v", isLS, isMig)
	}

	// Read by 1 then write by 1 again: load-store, NOT migratory (same
	// processor repeats).
	s.GlobalRead(b, 1)
	isLS, isMig = s.GlobalWrite(b, 1, memory.SrcApp, false)
	if !isLS || isMig {
		t.Fatalf("repeat sequence: isLS=%v isMig=%v", isLS, isMig)
	}
}

func TestInterveningAccessBreaksSequence(t *testing.T) {
	s := NewSequences(layout(t))
	b := memory.Addr(0x200)
	s.GlobalRead(b, 0)
	s.GlobalRead(b, 1) // intervening read by another processor
	isLS, _ := s.GlobalWrite(b, 0, memory.SrcApp, false)
	if isLS {
		t.Fatal("intervening foreign read did not break the sequence")
	}
}

func TestWriteWithoutPriorReadIsNotLS(t *testing.T) {
	s := NewSequences(layout(t))
	b := memory.Addr(0x300)
	if isLS, _ := s.GlobalWrite(b, 0, memory.SrcApp, false); isLS {
		t.Fatal("cold write classified as load-store")
	}
	// Two writes in a row: still not load-store.
	if isLS, _ := s.GlobalWrite(b, 0, memory.SrcApp, false); isLS {
		t.Fatal("write-after-write classified as load-store")
	}
}

func TestPerSourceAttribution(t *testing.T) {
	s := NewSequences(layout(t))
	b := memory.Addr(0x400)
	s.GlobalRead(b, 0)
	s.GlobalWrite(b, 0, memory.SrcOS, false)
	s.GlobalWrite(b, 0, memory.SrcLib, false)
	os, lib, app := s.Sources[memory.SrcOS], s.Sources[memory.SrcLib], s.Sources[memory.SrcApp]
	if os.GlobalWrites != 1 || os.LoadStoreWrites != 1 {
		t.Errorf("OS counters = %+v", os)
	}
	if lib.GlobalWrites != 1 || lib.LoadStoreWrites != 0 {
		t.Errorf("lib counters = %+v", lib)
	}
	if app.GlobalWrites != 0 {
		t.Errorf("app counters = %+v", app)
	}
	total := s.Total()
	if total.GlobalWrites != 2 || total.LoadStoreWrites != 1 {
		t.Errorf("total = %+v", total)
	}
}

func TestCoverageAccounting(t *testing.T) {
	s := NewSequences(layout(t))
	b := memory.Addr(0x500)
	// Migration 0 -> 1 -> 0; the second and third sequences eliminated.
	s.GlobalRead(b, 0)
	s.GlobalWrite(b, 0, memory.SrcApp, false)
	s.GlobalRead(b, 1)
	s.GlobalWrite(b, 1, memory.SrcApp, true)
	s.GlobalRead(b, 0)
	s.GlobalWrite(b, 0, memory.SrcApp, true)

	if s.Cov.LoadStoreWrites != 3 || s.Cov.LoadStoreEliminated != 2 {
		t.Errorf("coverage = %+v", s.Cov)
	}
	if s.Cov.MigratoryWrites != 2 || s.Cov.MigratoryEliminated != 2 {
		t.Errorf("migratory coverage = %+v", s.Cov)
	}
	if got := s.Cov.LoadStoreCoverage(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("LoadStoreCoverage = %v", got)
	}
	if got := s.Cov.MigratoryCoverage(); got != 1.0 {
		t.Errorf("MigratoryCoverage = %v", got)
	}
}

func TestFractionsZeroSafe(t *testing.T) {
	var c SourceCounters
	if c.LoadStoreFrac() != 0 || c.MigratoryFrac() != 0 {
		t.Error("zero counters produced nonzero fractions")
	}
	var cov Coverage
	if cov.LoadStoreCoverage() != 0 || cov.MigratoryCoverage() != 0 {
		t.Error("zero coverage produced nonzero fractions")
	}
}

func TestSequencesPerBlockIndependence(t *testing.T) {
	s := NewSequences(layout(t))
	s.GlobalRead(0x100, 0)
	s.GlobalRead(0x200, 1)
	// Write by 0 to 0x100 is LS even though another block saw a foreign read.
	if isLS, _ := s.GlobalWrite(0x100, 0, memory.SrcApp, false); !isLS {
		t.Fatal("foreign access to a different block broke the sequence")
	}
}

// --- false sharing ---

func TestColdMiss(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.Finalize()
	if f.Misses[ColdMiss] != 1 || f.TotalMisses() != 1 {
		t.Errorf("misses = %+v", f.Misses)
	}
}

func TestReplacementMiss(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.OnLose(0, 0x100, false) // replaced, not invalidated
	f.OnMiss(0, 0x100)
	f.Finalize()
	if f.Misses[ColdMiss] != 1 || f.Misses[ReplacementMiss] != 1 {
		t.Errorf("misses = %+v", f.Misses)
	}
}

func TestTrueSharingMiss(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	// CPU 0 reads word 0; CPU 1 writes word 0; CPU 0 re-reads word 0.
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.OnMiss(1, 0x100)
	f.OnLose(0, 0x100, true)              // invalidated by CPU 1's write...
	f.OnAccess(1, 0x100, 4, memory.Store) // ...which completes after the invalidation
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load) // consumes CPU 1's new value
	f.Finalize()
	if f.Misses[TrueSharingMiss] != 1 {
		t.Errorf("misses = %+v", f.Misses)
	}
	if f.Misses[FalseSharingMiss] != 0 {
		t.Errorf("false sharing misreported: %+v", f.Misses)
	}
}

func TestFalseSharingMiss(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	// CPU 0 uses word 0; CPU 1 writes word 1 (same block); CPU 0 re-reads
	// only word 0 — the miss is pure false sharing.
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.OnMiss(1, 0x100)
	f.OnLose(0, 0x100, true)
	f.OnAccess(1, 0x104, 4, memory.Store)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.OnLose(0, 0x100, true)
	f.Finalize()
	if f.Misses[FalseSharingMiss] != 1 {
		t.Errorf("misses = %+v", f.Misses)
	}
	if got := f.FalseSharingFrac(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("FalseSharingFrac = %v (misses %+v)", got, f.Misses)
	}
}

func TestOwnWritesDoNotMakeMissEssential(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Store) // CPU 0 writes its own word
	f.OnLose(0, 0x100, true)              // invalidated (say, by false sharing)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load) // re-reads its OWN value
	f.Finalize()
	if f.Misses[FalseSharingMiss] != 1 {
		t.Errorf("reading own value counted as true sharing: %+v", f.Misses)
	}
}

func TestFinalizeClassifiesOpenResidencies(t *testing.T) {
	f := NewFalseSharing(layout(t), 4)
	f.OnMiss(0, 0x100)
	f.OnAccess(0, 0x100, 4, memory.Load)
	f.OnMiss(1, 0x100)
	f.OnLose(0, 0x100, true)
	f.OnAccess(1, 0x104, 4, memory.Store)
	f.OnMiss(0, 0x100) // residency left open at simulation end
	f.Finalize()
	if f.Misses[FalseSharingMiss] != 1 {
		t.Errorf("open residency not classified: %+v", f.Misses)
	}
	// Finalize must be idempotent.
	f.Finalize()
	if f.Misses[FalseSharingMiss] != 1 {
		t.Errorf("Finalize not idempotent: %+v", f.Misses)
	}
}

func TestWideBlockFalseSharingGrowsWithBlockSize(t *testing.T) {
	// The same word-level access pattern classified under 16 B and 64 B
	// blocks: with the larger block the neighbours' writes fall into the
	// same block and turn the misses into false-sharing misses.
	small, err := memory.NewLayout(4096, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := memory.NewLayout(4096, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(l memory.Layout) float64 {
		f := NewFalseSharing(l, 2)
		// CPU 0 works on the word at 0x100, CPU 1 on the word at 0x110 —
		// different 16 B blocks, same 64 B block. Under 16 B blocks the
		// writes never invalidate the other CPU's copy, so after the cold
		// miss each CPU keeps its block; under 64 B blocks every write
		// invalidates the other's copy, and every re-miss is pure false
		// sharing.
		interfere := l.SameBlock(0x100, 0x110)
		resident := [2]bool{}
		touch := func(cpu memory.NodeID, addr memory.Addr) {
			if !resident[cpu] {
				f.OnMiss(cpu, l.Block(addr))
				resident[cpu] = true
			}
			if interfere {
				other := 1 - cpu
				if resident[other] {
					f.OnLose(other, l.Block(addr), true)
					resident[other] = false
				}
			}
			f.OnAccess(cpu, addr, 4, memory.Store)
		}
		for i := 0; i < 4; i++ {
			touch(0, 0x100)
			touch(1, 0x110)
		}
		f.Finalize()
		return f.FalseSharingFrac()
	}
	if fr := run(small); fr != 0 {
		t.Errorf("16 B blocks: false sharing frac = %v, want 0", fr)
	}
	if fr := run(big); fr <= 0.5 {
		t.Errorf("64 B blocks: false sharing frac = %v, want > 0.5", fr)
	}
}

func TestMissKindStrings(t *testing.T) {
	for k := MissKind(0); k < NumMissKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if NumMissKinds.String() != "unknown" {
		t.Error("out-of-range kind not unknown")
	}
}

func TestDistanceHistogram(t *testing.T) {
	s := NewSequences(layout(t))
	// Adjacent read-write: distance 0.
	s.GlobalRead(0x100, 0)
	s.GlobalWrite(0x100, 0, memory.SrcApp, false)
	if s.Distance[0] != 1 {
		t.Errorf("Distance = %v, want bucket 0 == 1", s.Distance)
	}
	// Two intervening global accesses to other blocks: distance 2 → bucket 1.
	s.GlobalRead(0x200, 1)
	s.GlobalRead(0x300, 2)
	s.GlobalRead(0x400, 2)
	s.GlobalWrite(0x200, 1, memory.SrcApp, false)
	if s.Distance[1] != 1 {
		t.Errorf("Distance = %v, want bucket 1 == 1", s.Distance)
	}
	// A long gap lands in the top bucket.
	s.GlobalRead(0x500, 3)
	for i := 0; i < 300; i++ {
		s.GlobalRead(memory.Addr(0x1000+i*16), 0)
	}
	s.GlobalWrite(0x500, 3, memory.SrcApp, false)
	if s.Distance[5] != 1 {
		t.Errorf("Distance = %v, want top bucket == 1", s.Distance)
	}
	if len(DistanceBuckets()) != len(s.Distance) {
		t.Error("bucket labels out of sync")
	}
}

func TestDistanceOnlyCountsCompletedSequences(t *testing.T) {
	s := NewSequences(layout(t))
	s.GlobalRead(0x100, 0)
	s.GlobalRead(0x100, 1) // foreign read breaks the sequence
	s.GlobalWrite(0x100, 0, memory.SrcApp, false)
	var total uint64
	for _, v := range s.Distance {
		total += v
	}
	if total != 0 {
		t.Errorf("broken sequence counted in distance histogram: %v", s.Distance)
	}
}
