// Package trace implements memory-reference trace capture and replay for
// the simulator. The paper's platform (SimICS) is program-driven, and so
// is this engine; trace support adds the classic companion methodology:
//
//   - Capture: record every memory operation a program-driven run issues
//     into a compact binary trace (one file per machine), preserving the
//     per-processor streams and source-class tags.
//
//   - Replay: drive a machine from a captured trace instead of live
//     programs. Timing-dependent interleaving is re-resolved by the
//     engine's scheduler (trace-driven simulation's usual approximation),
//     which makes replay useful for protocol A/B comparisons over an
//     identical reference stream and for regression corpora.
//
// The binary format is versioned and self-describing:
//
//	header:  magic "LSTR" | u16 version | u16 cpus
//	records: u8 kindAndSource | u8 cpu | u16 size | u32 computeGap | u64 addr
//
// computeGap is the busy time (Compute cycles) the processor spent since
// its previous record, so replay reproduces the original compute/access
// mix.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
)

// Magic identifies a trace stream.
const Magic = "LSTR"

// Version is the current trace format version.
const Version = 1

// Op is one traced memory operation.
type Op struct {
	CPU     memory.NodeID
	Addr    memory.Addr
	Size    uint32
	Kind    memory.Kind
	Source  memory.Source
	RMW     bool
	Compute uint32 // busy cycles since the previous op on this CPU
}

const (
	flagStore = 1 << 0
	flagRMW   = 1 << 1
	srcShift  = 4
)

// record is the 16-byte wire layout.
type record struct {
	Flags uint8
	CPU   uint8
	Size  uint16
	Gap   uint32
	Addr  uint64
}

// Writer streams trace records.
type Writer struct {
	w    *bufio.Writer
	cpus int
	n    uint64
}

// NewWriter writes a trace header for a machine with the given processor
// count and returns the writer.
func NewWriter(w io.Writer, cpus int) (*Writer, error) {
	if cpus < 1 || cpus > 255 {
		return nil, fmt.Errorf("trace: cpu count %d outside 1..255", cpus)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(Version)); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(cpus)); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cpus: cpus}, nil
}

// Append writes one operation.
func (t *Writer) Append(op Op) error {
	if int(op.CPU) < 0 || int(op.CPU) >= t.cpus {
		return fmt.Errorf("trace: op CPU %d outside 0..%d", op.CPU, t.cpus-1)
	}
	if op.Size > 0xffff {
		return fmt.Errorf("trace: op size %d too large", op.Size)
	}
	flags := uint8(op.Source) << srcShift
	if op.Kind == memory.Store {
		flags |= flagStore
	}
	if op.RMW {
		flags |= flagRMW
	}
	rec := record{
		Flags: flags,
		CPU:   uint8(op.CPU),
		Size:  uint16(op.Size),
		Gap:   op.Compute,
		Addr:  uint64(op.Addr),
	}
	if err := binary.Write(t.w, binary.LittleEndian, rec); err != nil {
		return err
	}
	t.n++
	return nil
}

// Len returns the number of records written.
func (t *Writer) Len() uint64 { return t.n }

// Flush flushes the underlying buffer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Trace is a fully loaded trace.
type Trace struct {
	CPUs int
	Ops  []Op
}

// Read loads a complete trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, cpus uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &cpus); err != nil {
		return nil, err
	}
	if cpus < 1 || cpus > 255 {
		return nil, fmt.Errorf("trace: bad cpu count %d", cpus)
	}
	tr := &Trace{CPUs: int(cpus)}
	for {
		var rec record
		err := binary.Read(br, binary.LittleEndian, &rec)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: truncated record %d", len(tr.Ops))
		}
		if err != nil {
			return nil, err
		}
		if int(rec.CPU) >= int(cpus) {
			return nil, fmt.Errorf("trace: record %d has CPU %d of %d", len(tr.Ops), rec.CPU, cpus)
		}
		op := Op{
			CPU:     memory.NodeID(rec.CPU),
			Addr:    memory.Addr(rec.Addr),
			Size:    uint32(rec.Size),
			Compute: rec.Gap,
			Source:  memory.Source(rec.Flags >> srcShift),
		}
		if rec.Flags&flagStore != 0 {
			op.Kind = memory.Store
		}
		if rec.Flags&flagRMW != 0 {
			op.RMW = true
		}
		tr.Ops = append(tr.Ops, op)
	}
	return tr, nil
}

// Programs converts a trace into per-processor replay programs for
// engine.Machine.Run: each processor replays its stream, interleaving
// resolved by the simulated timing.
func (tr *Trace) Programs() []engine.Program {
	perCPU := make([][]Op, tr.CPUs)
	for _, op := range tr.Ops {
		perCPU[op.CPU] = append(perCPU[op.CPU], op)
	}
	progs := make([]engine.Program, tr.CPUs)
	for cpu := range progs {
		ops := perCPU[cpu]
		if len(ops) == 0 {
			continue
		}
		progs[cpu] = func(p *engine.Proc) {
			for _, op := range ops {
				if op.Compute > 0 {
					p.Compute(int(op.Compute))
				}
				p.SetSource(op.Source)
				switch {
				case op.RMW:
					p.RMW(op.Addr)
				case op.Kind == memory.Store:
					p.WriteN(op.Addr, op.Size)
				default:
					p.ReadN(op.Addr, op.Size)
				}
			}
		}
	}
	return progs
}
