package trace

import (
	"lsnuma/internal/engine"
)

// Capture installs a recorder on the machine that appends every scheduled
// memory operation to the writer. Errors are reported through the returned
// error function after the run (the engine hook cannot fail).
func Capture(m *engine.Machine, w *Writer) (firstErr func() error) {
	var err error
	m.SetRecorder(func(rec engine.OpRecord) {
		if err != nil {
			return
		}
		err = w.Append(Op{
			CPU:     rec.CPU,
			Addr:    rec.Addr,
			Size:    rec.Size,
			Kind:    rec.Kind,
			Source:  rec.Source,
			RMW:     rec.RMW,
			Compute: rec.Compute,
		})
	})
	return func() error { return err }
}

// CaptureOps installs a recorder that collects operations in memory.
func CaptureOps(m *engine.Machine) *[]Op {
	ops := &[]Op{}
	m.SetRecorder(func(rec engine.OpRecord) {
		*ops = append(*ops, Op{
			CPU:     rec.CPU,
			Addr:    rec.Addr,
			Size:    rec.Size,
			Kind:    rec.Kind,
			Source:  rec.Source,
			RMW:     rec.RMW,
			Compute: rec.Compute,
		})
	})
	return ops
}
