package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"lsnuma/internal/cache"
	"lsnuma/internal/engine"
	"lsnuma/internal/memory"
	"lsnuma/internal/protocol"
)

func machine(t *testing.T, kind protocol.Kind) *engine.Machine {
	t.Helper()
	m, err := engine.NewMachine(engine.Config{
		Nodes:          4,
		L1:             cache.Config{Size: 4 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 1},
		L2:             cache.Config{Size: 64 * 1024, Assoc: 1, BlockSize: 16, AccessTime: 10},
		PageSize:       4096,
		Timing:         engine.DefaultTiming(),
		Protocol:       protocol.New(kind, protocol.Variant{}),
		TrackSequences: true,
		MaxCycles:      1_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	ops := []Op{
		{CPU: 0, Addr: 0x1234, Size: 4, Kind: memory.Load, Source: memory.SrcApp, Compute: 17},
		{CPU: 3, Addr: 0xfff0, Size: 16, Kind: memory.Store, Source: memory.SrcOS, Compute: 0},
		{CPU: 1, Addr: 0x40, Size: 4, Kind: memory.Store, Source: memory.SrcLib, RMW: true, Compute: 9},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CPUs != 4 || len(tr.Ops) != len(ops) {
		t.Fatalf("trace = %d cpus, %d ops", tr.CPUs, len(tr.Ops))
	}
	for i, got := range tr.Ops {
		if got != ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got, ops[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		var ops []Op
		for _, v := range raw {
			ops = append(ops, Op{
				CPU:     memory.NodeID(v % 4),
				Addr:    memory.Addr(v >> 8),
				Size:    uint32(v%64) + 1,
				Kind:    memory.Kind(v >> 7 & 1),
				Source:  memory.Source(v >> 5 & 3),
				RMW:     v>>4&1 == 1,
				Compute: uint32(v >> 32 & 0xffff),
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 4)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if err := w.Append(op); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		tr, err := Read(&buf)
		if err != nil || len(tr.Ops) != len(ops) {
			return false
		}
		for i := range ops {
			if tr.Ops[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("LST"),
		[]byte("XXXX\x01\x00\x04\x00"),
		[]byte("LSTR\x09\x00\x04\x00"), // bad version
		[]byte("LSTR\x01\x00\x00\x00"), // zero cpus
		append([]byte("LSTR\x01\x00\x04\x00"), 1, 2, 3),             // truncated record
		append([]byte("LSTR\x01\x00\x02\x00"), make([]byte, 16)...), // record CPU ok (0)
	}
	for i, c := range cases[:6] {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Case 6 is valid: one record for CPU 0.
	if _, err := Read(bytes.NewReader(cases[6])); err != nil {
		t.Errorf("valid single-record trace rejected: %v", err)
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err == nil {
		t.Error("zero cpus accepted")
	}
	if _, err := NewWriter(&buf, 256); err == nil {
		t.Error("256 cpus accepted")
	}
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Op{CPU: 5}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if err := w.Append(Op{CPU: 0, Size: 1 << 20}); err == nil {
		t.Error("oversized op accepted")
	}
}

// TestCaptureReplayEquivalence captures a live run's reference stream and
// replays it on a fresh machine with the same protocol: access counts and
// global-write behaviour must match exactly (timing may differ slightly
// because replay resolves interleaving anew).
func TestCaptureReplayEquivalence(t *testing.T) {
	prog := func(p *engine.Proc) {
		r := p.Rand()
		for i := 0; i < 200; i++ {
			a := memory.Addr(r.Intn(64) * 16)
			switch r.Intn(3) {
			case 0:
				p.Write(a)
			case 1:
				p.RMW(a)
			default:
				p.Read(a)
			}
			p.Compute(r.Intn(60))
		}
	}

	// Capture.
	live := machine(t, protocol.LS)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	errFn := Capture(live, w)
	if err := live.Run([]engine.Program{prog, prog, prog, prog}); err != nil {
		t.Fatal(err)
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay.
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := machine(t, protocol.LS)
	if err := replay.Run(tr.Programs()); err != nil {
		t.Fatal(err)
	}
	if err := replay.CheckCoherence(); err != nil {
		t.Error(err)
	}

	ls, rs := live.Stats().Sum(), replay.Stats().Sum()
	if ls.Loads != rs.Loads || ls.Stores != rs.Stores {
		t.Errorf("replay access counts %d/%d != live %d/%d", rs.Loads, rs.Stores, ls.Loads, ls.Stores)
	}
	// Per-CPU streams are identical, so per-CPU load/store counts match.
	for i := 0; i < 4; i++ {
		l, r := live.Stats().CPUs[i], replay.Stats().CPUs[i]
		if l.Loads != r.Loads || l.Stores != r.Stores {
			t.Errorf("CPU %d: replay %d/%d != live %d/%d", i, r.Loads, r.Stores, l.Loads, l.Stores)
		}
	}
}

// TestReplayProtocolComparison replays one captured stream under all three
// protocols — the trace-driven A/B methodology.
func TestReplayProtocolComparison(t *testing.T) {
	prog := func(p *engine.Proc) {
		for i := 0; i < 100; i++ {
			a := memory.Addr((i % 16) * 16)
			p.Read(a)
			p.Write(a)
			p.Compute(40)
		}
	}
	live := machine(t, protocol.Baseline)
	ops := CaptureOps(live)
	if err := live.Run([]engine.Program{prog, prog}); err != nil {
		t.Fatal(err)
	}
	tr := &Trace{CPUs: 4, Ops: *ops}

	elim := map[protocol.Kind]uint64{}
	for _, kind := range []protocol.Kind{protocol.Baseline, protocol.AD, protocol.LS} {
		m := machine(t, kind)
		if err := m.Run(tr.Programs()); err != nil {
			t.Fatal(err)
		}
		elim[kind] = m.Stats().EliminatedOwnership
	}
	if elim[protocol.Baseline] != 0 {
		t.Errorf("baseline eliminated %d", elim[protocol.Baseline])
	}
	if elim[protocol.LS] == 0 {
		t.Error("LS eliminated nothing on the replayed load-store stream")
	}
	// Both techniques cover this migratory stream; they may differ by a
	// few sequences where interleavings land differently.
	if elim[protocol.LS]*10 < elim[protocol.AD]*9 {
		t.Errorf("LS (%d) well below AD (%d) on replay", elim[protocol.LS], elim[protocol.AD])
	}
}
