package trace

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the trace parser: it must never
// panic, and any trace it accepts must survive a write/read round trip
// unchanged.
func FuzzRead(f *testing.F) {
	// Seed with a valid two-record trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(Op{CPU: 1, Addr: 0x40, Size: 8, Compute: 3})
	w.Append(Op{CPU: 2, Addr: 0x80, Size: 4, RMW: true})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("LSTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, tr.CPUs)
		if err != nil {
			t.Fatalf("accepted trace has unwritable CPU count %d: %v", tr.CPUs, err)
		}
		for _, op := range tr.Ops {
			if err := w.Append(op); err != nil {
				t.Fatalf("accepted op %+v not writable: %v", op, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if back.CPUs != tr.CPUs || len(back.Ops) != len(tr.Ops) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.CPUs, len(back.Ops), tr.CPUs, len(tr.Ops))
		}
		for i := range tr.Ops {
			if back.Ops[i] != tr.Ops[i] {
				t.Fatalf("round trip changed op %d", i)
			}
		}
	})
}
