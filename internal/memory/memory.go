// Package memory defines the simulated physical address space of the
// multiprocessor: addresses, nodes, access records, page-to-home placement
// and block arithmetic.
//
// The simulated machine is word-addressable at 4-byte granularity (the
// paper's platform is SimICS/sun4m, an ILP32 SPARC machine). Physical pages
// are distributed round-robin among the nodes, as in the paper's Section
// 4.2.
package memory

import (
	"fmt"
	"math/bits"
)

// WordSize is the size in bytes of the simulated machine word.
const WordSize = 4

// DefaultPageSize is the simulated physical page size in bytes.
const DefaultPageSize = 4096

// Addr is a byte address in the simulated shared physical address space.
type Addr uint64

// NodeID identifies a processor node. Nodes are numbered 0..N-1.
type NodeID int32

// NoNode is the sentinel for "no node" (e.g. no owner, no last reader).
const NoNode NodeID = -1

// Kind is the kind of a memory access.
type Kind uint8

const (
	// Load is a read access.
	Load Kind = iota
	// Store is a write access.
	Store
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Source classifies which part of the workload issued an access. The paper's
// Table 2 breaks down load-store sequence occurrence by application (MySQL),
// system libraries, and operating system; our workloads tag every access so
// the same split can be measured.
type Source uint8

const (
	// SrcApp marks accesses issued by application code.
	SrcApp Source = iota
	// SrcLib marks accesses issued by system-library code (allocator,
	// pthread internals, ...).
	SrcLib
	// SrcOS marks accesses issued by operating-system code (scheduler,
	// timer, ...).
	SrcOS
	// NumSources is the number of source classes.
	NumSources
)

func (s Source) String() string {
	switch s {
	case SrcApp:
		return "app"
	case SrcLib:
		return "lib"
	case SrcOS:
		return "os"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Access is a single memory access issued by a simulated processor.
type Access struct {
	CPU    NodeID
	Addr   Addr
	Size   uint32 // bytes; must not cross a block boundary after splitting
	Kind   Kind
	Source Source
}

// Layout describes the physical address space organisation: page size and
// the number of nodes over which pages are interleaved round-robin.
type Layout struct {
	PageSize  uint64
	BlockSize uint64
	Nodes     int
}

// NewLayout validates and returns a Layout. PageSize and BlockSize must be
// powers of two, BlockSize must divide PageSize, and nodes must be >= 1.
func NewLayout(pageSize, blockSize uint64, nodes int) (Layout, error) {
	if nodes < 1 {
		return Layout{}, fmt.Errorf("memory: layout needs at least one node, got %d", nodes)
	}
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		return Layout{}, fmt.Errorf("memory: page size %d is not a power of two", pageSize)
	}
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return Layout{}, fmt.Errorf("memory: block size %d is not a power of two", blockSize)
	}
	if blockSize > pageSize {
		return Layout{}, fmt.Errorf("memory: block size %d exceeds page size %d", blockSize, pageSize)
	}
	return Layout{PageSize: pageSize, BlockSize: blockSize, Nodes: nodes}, nil
}

// Home returns the home node of the page containing addr. Pages are
// assigned round-robin, as in the paper's architectural model.
func (l Layout) Home(addr Addr) NodeID {
	return NodeID((uint64(addr) >> uint(bits.TrailingZeros64(l.PageSize))) % uint64(l.Nodes))
}

// Block returns the block-aligned address of the block containing addr.
func (l Layout) Block(addr Addr) Addr {
	return addr &^ Addr(l.BlockSize-1)
}

// BlockIndex returns a dense index for the block containing addr, suitable
// for use as a map key or table index. BlockSize is a power of two
// (NewLayout validates), so the division compiles to a shift rather than a
// hardware divide — this is on the simulator's per-access hot path.
func (l Layout) BlockIndex(addr Addr) uint64 {
	return uint64(addr) >> uint(bits.TrailingZeros64(l.BlockSize))
}

// WordInBlock returns the word offset of addr within its block.
func (l Layout) WordInBlock(addr Addr) int {
	return int((uint64(addr) & (l.BlockSize - 1)) / WordSize)
}

// WordsPerBlock returns the number of machine words per block.
func (l Layout) WordsPerBlock() int {
	return int(l.BlockSize / WordSize)
}

// SameBlock reports whether two addresses fall in the same block.
func (l Layout) SameBlock(a, b Addr) bool {
	return l.Block(a) == l.Block(b)
}

// SplitByBlock splits the byte range [addr, addr+size) into per-block
// sub-ranges. Most accesses fit in one block; misaligned multi-word
// accesses may span two or more.
func (l Layout) SplitByBlock(addr Addr, size uint32) []Access {
	if size == 0 {
		return nil
	}
	return l.AppendSplitByBlock(nil, addr, size)
}

// AppendSplitByBlock appends the per-block sub-ranges of [addr, addr+size)
// to dst and returns the extended slice. Callers on hot paths pass a
// reusable buffer (dst[:0]) so the common case allocates nothing.
func (l Layout) AppendSplitByBlock(dst []Access, addr Addr, size uint32) []Access {
	if size == 0 {
		return dst
	}
	if l.SameBlock(addr, addr+Addr(size)-1) {
		return append(dst, Access{Addr: addr, Size: size})
	}
	cur := addr
	remaining := uint64(size)
	for remaining > 0 {
		blockEnd := l.Block(cur) + Addr(l.BlockSize)
		n := uint64(blockEnd - cur)
		if n > remaining {
			n = remaining
		}
		dst = append(dst, Access{Addr: cur, Size: uint32(n)})
		cur += Addr(n)
		remaining -= n
	}
	return dst
}

// Allocator hands out non-overlapping address ranges from the simulated
// physical address space. Allocations are aligned at least to the machine
// word; callers may request stronger alignment (e.g. block or page) to
// control sharing granularity.
type Allocator struct {
	layout   Layout
	next     Addr
	sizes    map[string]uint64
	order    []string
	segments []segment
}

type segment struct {
	base Addr
	end  Addr
	name string
}

// NewAllocator returns an allocator that starts placing data at base.
func NewAllocator(layout Layout, base Addr) *Allocator {
	return &Allocator{layout: layout, next: base, sizes: make(map[string]uint64)}
}

// Layout returns the layout the allocator was created with.
func (a *Allocator) Layout() Layout { return a.layout }

// Alloc reserves size bytes aligned to align (0 or 1 means word alignment)
// and returns the base address. The name is recorded for reporting; names
// need not be unique, but sizes are accumulated per name.
func (a *Allocator) Alloc(name string, size uint64, align uint64) Addr {
	if align < WordSize {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("memory: alignment %d is not a power of two", align))
	}
	if size == 0 {
		size = WordSize
	}
	base := (uint64(a.next) + align - 1) &^ (align - 1)
	a.next = Addr(base + size)
	if _, seen := a.sizes[name]; !seen {
		a.order = append(a.order, name)
	}
	a.sizes[name] += size
	if n := len(a.segments); n > 0 && a.segments[n-1].name == name && a.segments[n-1].end <= Addr(base) {
		a.segments[n-1].end = Addr(base + size)
	} else {
		a.segments = append(a.segments, segment{base: Addr(base), end: Addr(base + size), name: name})
	}
	return Addr(base)
}

// FindName returns the region name containing addr, or "" if the address
// was never allocated. Segments are appended in address order, so a
// binary search suffices.
func (a *Allocator) FindName(addr Addr) string {
	lo, hi := 0, len(a.segments)
	for lo < hi {
		mid := (lo + hi) / 2
		seg := a.segments[mid]
		switch {
		case addr < seg.base:
			hi = mid
		case addr >= seg.end:
			lo = mid + 1
		default:
			return seg.name
		}
	}
	return ""
}

// AllocBlocks reserves size bytes aligned to the block size. Use it for
// data structures that should not falsely share a block with neighbours.
func (a *Allocator) AllocBlocks(name string, size uint64) Addr {
	return a.Alloc(name, size, a.layout.BlockSize)
}

// AllocPage reserves size bytes aligned to the page size.
func (a *Allocator) AllocPage(name string, size uint64) Addr {
	return a.Alloc(name, size, a.layout.PageSize)
}

// Used returns the total number of bytes handed out so far, including
// alignment padding.
func (a *Allocator) Used() uint64 { return uint64(a.next) }

// Regions returns the allocation names in order with their accumulated
// sizes.
func (a *Allocator) Regions() []Region {
	out := make([]Region, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, Region{Name: name, Size: a.sizes[name]})
	}
	return out
}

// Region describes a named allocation for reporting.
type Region struct {
	Name string
	Size uint64
}
