package memory

import (
	"testing"
	"testing/quick"
)

func mustLayout(t *testing.T, page, block uint64, nodes int) Layout {
	t.Helper()
	l, err := NewLayout(page, block, nodes)
	if err != nil {
		t.Fatalf("NewLayout(%d,%d,%d): %v", page, block, nodes, err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	cases := []struct {
		page, block uint64
		nodes       int
		ok          bool
	}{
		{4096, 16, 4, true},
		{4096, 32, 1, true},
		{4096, 256, 32, true},
		{4096, 4096, 4, true},
		{4096, 8192, 4, false}, // block > page
		{4095, 16, 4, false},   // page not power of two
		{4096, 24, 4, false},   // block not power of two
		{4096, 0, 4, false},
		{0, 16, 4, false},
		{4096, 16, 0, false},
		{4096, 16, -3, false},
	}
	for _, c := range cases {
		_, err := NewLayout(c.page, c.block, c.nodes)
		if (err == nil) != c.ok {
			t.Errorf("NewLayout(%d,%d,%d) err=%v, want ok=%v", c.page, c.block, c.nodes, err, c.ok)
		}
	}
}

func TestHomeRoundRobin(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	for page := 0; page < 16; page++ {
		addr := Addr(page * 4096)
		want := NodeID(page % 4)
		if got := l.Home(addr); got != want {
			t.Errorf("Home(page %d) = %d, want %d", page, got, want)
		}
		// Every address within the page has the same home.
		if got := l.Home(addr + 4095); got != want {
			t.Errorf("Home(page %d end) = %d, want %d", page, got, want)
		}
	}
}

func TestBlockArithmetic(t *testing.T) {
	l := mustLayout(t, 4096, 32, 4)
	if got := l.Block(0x1234); got != 0x1220 {
		t.Errorf("Block(0x1234) = %#x, want 0x1220", got)
	}
	if got := l.BlockIndex(0x1234); got != 0x1234/32 {
		t.Errorf("BlockIndex = %d", got)
	}
	if got := l.WordInBlock(0x1234); got != int((0x1234%32)/4) {
		t.Errorf("WordInBlock = %d", got)
	}
	if got := l.WordsPerBlock(); got != 8 {
		t.Errorf("WordsPerBlock = %d, want 8", got)
	}
	if !l.SameBlock(0x1220, 0x123f) {
		t.Error("SameBlock(0x1220, 0x123f) = false, want true")
	}
	if l.SameBlock(0x121f, 0x1220) {
		t.Error("SameBlock(0x121f, 0x1220) = true, want false")
	}
}

func TestSplitByBlockSingle(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	parts := l.SplitByBlock(0x100, 8)
	if len(parts) != 1 || parts[0].Addr != 0x100 || parts[0].Size != 8 {
		t.Fatalf("SplitByBlock single = %+v", parts)
	}
}

func TestSplitByBlockStraddle(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	parts := l.SplitByBlock(0x10c, 8) // 4 bytes in block 0x100, 4 in 0x110
	if len(parts) != 2 {
		t.Fatalf("SplitByBlock straddle = %+v", parts)
	}
	if parts[0].Addr != 0x10c || parts[0].Size != 4 {
		t.Errorf("part 0 = %+v", parts[0])
	}
	if parts[1].Addr != 0x110 || parts[1].Size != 4 {
		t.Errorf("part 1 = %+v", parts[1])
	}
}

func TestSplitByBlockZero(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	if parts := l.SplitByBlock(0x100, 0); parts != nil {
		t.Errorf("SplitByBlock zero size = %+v, want nil", parts)
	}
}

func TestSplitByBlockProperties(t *testing.T) {
	l := mustLayout(t, 4096, 64, 4)
	f := func(addr uint32, size uint16) bool {
		a := Addr(addr)
		sz := uint32(size%512) + 1
		parts := l.SplitByBlock(a, sz)
		// Parts must be contiguous, cover exactly [a, a+sz), and each
		// part must stay within one block.
		var total uint32
		cur := a
		for _, p := range parts {
			if p.Addr != cur {
				return false
			}
			if !l.SameBlock(p.Addr, p.Addr+Addr(p.Size)-1) {
				return false
			}
			cur += Addr(p.Size)
			total += p.Size
		}
		return total == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorAlignmentAndNonOverlap(t *testing.T) {
	l := mustLayout(t, 4096, 32, 4)
	a := NewAllocator(l, 0)
	prevEnd := Addr(0)
	for i, req := range []struct {
		size, align uint64
	}{
		{100, 0}, {1, 4}, {64, 32}, {5000, 4096}, {32, 32}, {7, 0},
	} {
		base := a.Alloc("r", req.size, req.align)
		align := req.align
		if align < WordSize {
			align = WordSize
		}
		if uint64(base)%align != 0 {
			t.Errorf("alloc %d: base %#x not aligned to %d", i, base, align)
		}
		if base < prevEnd {
			t.Errorf("alloc %d: base %#x overlaps previous end %#x", i, base, prevEnd)
		}
		sz := req.size
		if sz == 0 {
			sz = WordSize
		}
		prevEnd = base + Addr(sz)
	}
	if a.Used() < uint64(prevEnd) {
		t.Errorf("Used() = %d < end %d", a.Used(), prevEnd)
	}
}

func TestAllocatorBlocksAndPages(t *testing.T) {
	l := mustLayout(t, 4096, 64, 4)
	a := NewAllocator(l, 12345)
	b := a.AllocBlocks("blocks", 10)
	if uint64(b)%64 != 0 {
		t.Errorf("AllocBlocks base %#x not block aligned", b)
	}
	p := a.AllocPage("page", 10)
	if uint64(p)%4096 != 0 {
		t.Errorf("AllocPage base %#x not page aligned", p)
	}
}

func TestAllocatorRegions(t *testing.T) {
	l := mustLayout(t, 4096, 64, 4)
	a := NewAllocator(l, 0)
	a.Alloc("matrix", 100, 0)
	a.Alloc("locks", 50, 0)
	a.Alloc("matrix", 20, 0)
	regions := a.Regions()
	if len(regions) != 2 {
		t.Fatalf("Regions = %+v, want 2 entries", regions)
	}
	if regions[0].Name != "matrix" || regions[0].Size != 120 {
		t.Errorf("region 0 = %+v", regions[0])
	}
	if regions[1].Name != "locks" || regions[1].Size != 50 {
		t.Errorf("region 1 = %+v", regions[1])
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	l := mustLayout(t, 4096, 64, 4)
	a := NewAllocator(l, 0)
	b1 := a.Alloc("a", 0, 0)
	b2 := a.Alloc("b", 4, 0)
	if b2 == b1 {
		t.Error("zero-size allocation did not reserve space")
	}
}

func TestKindAndSourceStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind strings wrong")
	}
	if SrcApp.String() != "app" || SrcLib.String() != "lib" || SrcOS.String() != "os" {
		t.Error("Source strings wrong")
	}
	if Kind(9).String() == "" || Source(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestHomeSingleNode(t *testing.T) {
	l := mustLayout(t, 4096, 16, 1)
	for _, addr := range []Addr{0, 4096, 1 << 20} {
		if got := l.Home(addr); got != 0 {
			t.Errorf("Home(%#x) = %d, want 0", addr, got)
		}
	}
}

func TestFindName(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	a := NewAllocator(l, 0)
	x := a.Alloc("x", 100, 0)
	y := a.Alloc("y", 50, 64)
	z := a.Alloc("x", 32, 0) // same name again, later segment
	if got := a.FindName(x); got != "x" {
		t.Errorf("FindName(x base) = %q", got)
	}
	if got := a.FindName(x + 99); got != "x" {
		t.Errorf("FindName(x end) = %q", got)
	}
	if got := a.FindName(y + 10); got != "y" {
		t.Errorf("FindName(y) = %q", got)
	}
	if got := a.FindName(z); got != "x" {
		t.Errorf("FindName(second x) = %q", got)
	}
	if got := a.FindName(Addr(1 << 40)); got != "" {
		t.Errorf("FindName(unallocated) = %q", got)
	}
}

func TestFindNameProperty(t *testing.T) {
	l := mustLayout(t, 4096, 16, 4)
	a := NewAllocator(l, 0)
	names := []string{"a", "b", "c", "d"}
	type seg struct {
		base Addr
		end  Addr
		name string
	}
	var segs []seg
	rng := uint64(12345)
	for i := 0; i < 200; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		name := names[rng>>33%4]
		size := rng>>20%500 + 1
		align := uint64(1) << (rng >> 50 % 7)
		base := a.Alloc(name, size, align)
		segs = append(segs, seg{base, base + Addr(size), name})
	}
	// Every allocated byte resolves to its region name.
	for _, sg := range segs {
		for _, addr := range []Addr{sg.base, sg.base + (sg.end-sg.base)/2, sg.end - 1} {
			if got := a.FindName(addr); got != sg.name {
				t.Fatalf("FindName(%#x) = %q, want %q", addr, got, sg.name)
			}
		}
	}
}
