package protocol

import (
	"math/rand"
	"testing"
)

func TestParseRetry(t *testing.T) {
	cases := []struct {
		spec string
		want RetryPolicy
	}{
		{"", RetryPolicy{}},
		{"max:0", RetryPolicy{}},
		{"max:0,base:5000", RetryPolicy{}},
		{"max:8", RetryPolicy{Max: 8, Base: 100, Cap: 10_000, JitterSeed: 1}},
		{"base:50", RetryPolicy{Max: 16, Base: 50, Cap: 10_000, JitterSeed: 1}},
		{"max:8,base:200,cap:5000,jitter:42", RetryPolicy{Max: 8, Base: 200, Cap: 5000, JitterSeed: 42}},
		{"jitter:-3", RetryPolicy{Max: 16, Base: 100, Cap: 10_000, JitterSeed: -3}},
	}
	for _, tc := range cases {
		got, err := ParseRetry(tc.spec)
		if err != nil {
			t.Errorf("ParseRetry(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRetry(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{
		"max",              // not key:value
		"max:banana",       // non-numeric
		"max:-1",           // negative budget
		"base:0",           // zero backoff
		"cap:0",            // zero ceiling
		"base:200,cap:100", // cap below base
		"cap:99999999999",  // outside the 31-bit bound
		"frequency:9",      // unknown field
		"max:8,,cap:5000",  // empty field
		"max:8 ,base:100",  // stray whitespace in key
	} {
		if _, err := ParseRetry(bad); err == nil {
			t.Errorf("ParseRetry(%q) accepted", bad)
		}
	}
}

func TestRetryStringRoundTrip(t *testing.T) {
	if s := (RetryPolicy{}).String(); s != "" {
		t.Errorf("disabled policy renders %q, want empty", s)
	}
	p := RetryPolicy{Max: 5, Base: 30, Cap: 900, JitterSeed: 17}
	back, err := ParseRetry(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if back != p {
		t.Errorf("round trip: %+v -> %q -> %+v", p, p.String(), back)
	}
}

func TestRetryValidate(t *testing.T) {
	if err := DefaultRetry().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Errorf("disabled policy invalid: %v", err)
	}
	for _, bad := range []RetryPolicy{
		{Max: -1},
		{Max: 4, Base: 0, Cap: 100},
		{Max: 4, Base: 200, Cap: 100},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid policy accepted: %+v", bad)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{Max: 64, Base: 100, Cap: 10_000, JitterSeed: 1}
	wants := []uint64{100, 200, 400, 800, 1600, 3200, 6400, 10_000, 10_000}
	for i, want := range wants {
		if got := p.Backoff(i+1, nil); got != want {
			t.Errorf("Backoff(%d) = %d, want %d", i+1, got, want)
		}
	}
	// Attempts below 1 clamp to the first backoff; huge attempts (where
	// the shift would overflow) sit at the cap.
	if got := p.Backoff(0, nil); got != 100 {
		t.Errorf("Backoff(0) = %d, want 100", got)
	}
	if got := p.Backoff(1000, nil); got != 10_000 {
		t.Errorf("Backoff(1000) = %d, want cap 10000", got)
	}
}

func TestBackoffJitter(t *testing.T) {
	p := RetryPolicy{Max: 8, Base: 100, Cap: 10_000, JitterSeed: 7}
	a := rand.New(rand.NewSource(p.JitterSeed))
	b := rand.New(rand.NewSource(p.JitterSeed))
	varied := false
	for i := 1; i <= 32; i++ {
		base := p.Backoff(i, nil)
		ja, jb := p.Backoff(i, a), p.Backoff(i, b)
		if ja != jb {
			t.Fatalf("same seed, different jitter: %d vs %d", ja, jb)
		}
		if ja < base || ja >= base+p.Base {
			t.Errorf("jittered backoff %d outside [%d, %d)", ja, base, base+p.Base)
		}
		if ja != base {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never moved the backoff")
	}
	// Base <= 1 draws no jitter at all (Int63n would reject n=0 or be a
	// constant), so the stream is not consumed.
	tiny := RetryPolicy{Max: 8, Base: 1, Cap: 100}
	rng := rand.New(rand.NewSource(1))
	if got := tiny.Backoff(1, rng); got != 1 {
		t.Errorf("Base=1 backoff = %d, want 1", got)
	}
}

// FuzzParseRetry holds the parser to its grammar: anything it accepts
// must render (String) and reparse to the identical policy, and the
// accepted policy must pass Validate.
func FuzzParseRetry(f *testing.F) {
	f.Add("")
	f.Add("max:0")
	f.Add("max:8,base:200,cap:5000,jitter:42")
	f.Add("base:50")
	f.Add("jitter:-3")
	f.Add("max:16,base:100,cap:10000,jitter:1")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseRetry(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseRetry(%q) accepted an invalid policy %+v: %v", spec, p, err)
		}
		back, err := ParseRetry(p.String())
		if err != nil {
			t.Fatalf("String() of accepted policy %+v does not reparse: %v", p, err)
		}
		if back != p {
			t.Fatalf("round trip diverges: %q -> %+v -> %q -> %+v", spec, p, p.String(), back)
		}
	})
}
