package protocol

import (
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// adaptive implements AD, the adaptive cache-coherence protocol optimized
// for migratory sharing of Stenström, Brorsson & Sandberg (ISCA '93),
// which the paper uses as the previous-work comparison point (Section 2.1,
// Section 5).
//
// Migratory sharing is detected at the home on an ownership acquisition:
// the block is tagged migratory when exactly two caches hold copies, the
// requester is one of them, and the last writer is the *other* holder —
// the signature of data moving processor to processor in read-modify-write
// fashion. While tagged, read requests to Dirty (or exclusively granted)
// blocks return exclusive copies, combining the read with the ownership
// acquisition.
//
// The prediction reverts to ordinary write-invalidate handling when the
// pattern breaks: a foreign access reaches a block whose exclusive holder
// never wrote it (the read was not part of a load-store sequence), or an
// ownership acquisition arrives that does not match the detection
// signature.
type adaptive struct {
	variant Variant
}

func (p *adaptive) Name() string { return "AD" + p.variant.String() }
func (p *adaptive) Kind() Kind   { return AD }

func (p *adaptive) InitEntry(e *directory.Entry) {
	if p.variant.DefaultTagged {
		e.Migratory = true
	}
}

func (p *adaptive) GrantExclusiveOnRead(e *directory.Entry, req memory.NodeID) bool {
	return e.Migratory
}

func (p *adaptive) NoteRead(e *directory.Entry, req memory.NodeID) {
	e.LR = req // maintained uniformly for the classification machinery
}

func (p *adaptive) NoteGlobalWrite(e *directory.Entry, req memory.NodeID, holdsCopy bool) bool {
	tagged := false
	if holdsCopy && e.State == directory.Shared {
		other := e.Sharers.Other(req)
		if other != memory.NoNode && other == e.LastWriter {
			// Exactly two copies, requester is one, last writer is the
			// other: migratory detection fires.
			tagged = p.tag(e)
		} else {
			// The ownership acquisition does not match the migratory
			// signature: adapt back.
			p.detag(e)
		}
	} else if !holdsCopy && e.State == directory.Shared {
		// A write miss invalidating multiple read-shared copies is not
		// migratory behaviour.
		p.detag(e)
	}
	e.LastWriter = req
	return tagged
}

func (p *adaptive) NoteFailedPrediction(e *directory.Entry) {
	p.detag(e)
}

func (p *adaptive) tag(e *directory.Entry) bool {
	e.DetagCount = 0
	if p.variant.TagHysteresis > 1 {
		if int(e.TagCount)+1 < p.variant.TagHysteresis {
			e.TagCount++
			return false
		}
		e.TagCount = 0
	}
	was := e.Migratory
	e.Migratory = true
	return !was
}

func (p *adaptive) detag(e *directory.Entry) {
	e.TagCount = 0
	if p.variant.DetagHysteresis > 1 {
		if int(e.DetagCount)+1 < p.variant.DetagHysteresis {
			e.DetagCount++
			return
		}
		e.DetagCount = 0
	}
	e.Migratory = false
}
