package protocol

import (
	"testing"

	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

func freshEntry(p Protocol) *directory.Entry {
	e := &directory.Entry{Owner: memory.NoNode, LR: memory.NoNode, LastWriter: memory.NoNode}
	p.InitEntry(e)
	return e
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"Baseline": Baseline, "baseline": Baseline, "base": Baseline,
		"AD": AD, "ad": AD, "LS": LS, "ls": LS,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("MOESI"); err == nil {
		t.Error("ParseKind accepted unknown protocol")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Baseline: "Baseline", AD: "AD", LS: "LS"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", uint8(k), k.String())
		}
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(unknown) did not panic")
		}
	}()
	New(Kind(42), Variant{})
}

func TestVariantString(t *testing.T) {
	v := Variant{DefaultTagged: true, KeepOnWriteMiss: true, TagHysteresis: 2, DetagHysteresis: 3}
	s := v.String()
	for _, want := range []string{"default-tagged", "keep-on-write-miss", "tag-hysteresis=2", "detag-hysteresis=3"} {
		if !contains(s, want) {
			t.Errorf("Variant string %q missing %q", s, want)
		}
	}
	if (Variant{}).String() != "" {
		t.Error("zero variant string not empty")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBaselineNeverGrantsExclusive(t *testing.T) {
	p := New(Baseline, Variant{DefaultTagged: true})
	e := freshEntry(p)
	if e.LS || e.Migratory {
		t.Fatal("baseline InitEntry set tags")
	}
	e.LS = true // even with stale tag state...
	e.Migratory = true
	if p.GrantExclusiveOnRead(e, 1) {
		t.Error("baseline granted exclusive read")
	}
	if p.NoteGlobalWrite(e, 2, true) {
		t.Error("baseline tagged a block")
	}
	if e.LastWriter != 2 {
		t.Error("baseline did not track last writer")
	}
}

// TestLSTaggingSequence exercises the defining pattern of Section 3.1: a
// global read by P followed by an ownership request from P tags the block;
// a subsequent read is granted exclusively.
func TestLSTaggingSequence(t *testing.T) {
	p := New(LS, Variant{})
	e := freshEntry(p)

	if p.GrantExclusiveOnRead(e, 1) {
		t.Fatal("untagged block granted exclusive")
	}
	p.NoteRead(e, 1)
	if e.LR != 1 {
		t.Fatal("LR not updated")
	}
	e.State = directory.Shared
	e.Sharers.Add(1)
	if !p.NoteGlobalWrite(e, 1, true) {
		t.Fatal("ownership by last reader did not tag")
	}
	if !e.LS {
		t.Fatal("LS bit not set")
	}
	if !p.GrantExclusiveOnRead(e, 2) {
		t.Fatal("tagged block not granted exclusive")
	}
}

func TestLSOwnershipByNonLastReaderLeavesTag(t *testing.T) {
	p := New(LS, Variant{})
	e := freshEntry(p)
	e.LS = true
	e.State = directory.Shared
	e.Sharers.Add(1)
	e.Sharers.Add(2)
	p.NoteRead(e, 2) // LR = 2
	if p.NoteGlobalWrite(e, 1, true) {
		t.Fatal("non-LR ownership tagged the block")
	}
	// Fig. 1's Shared→Dirty "Write" edge neither tags nor de-tags: the
	// LS bit keeps its value.
	if !e.LS {
		t.Fatal("non-LR ownership de-tagged the block")
	}
	e2 := freshEntry(p)
	p.NoteRead(e2, 2)
	e2.State = directory.Shared
	e2.Sharers.Add(1)
	e2.Sharers.Add(2)
	if p.NoteGlobalWrite(e2, 1, true) || e2.LS {
		t.Fatal("non-LR ownership tagged an untagged block")
	}
}

func TestLSWriteMissDetags(t *testing.T) {
	p := New(LS, Variant{})
	e := freshEntry(p)
	e.LS = true
	p.NoteRead(e, 1)
	// Write miss from node 2 (not holding a copy): de-tag, per §3.
	if p.NoteGlobalWrite(e, 2, false) {
		t.Fatal("write miss tagged the block")
	}
	if e.LS {
		t.Fatal("write miss did not de-tag")
	}
}

func TestLSKeepOnWriteMissVariant(t *testing.T) {
	p := New(LS, Variant{KeepOnWriteMiss: true})
	e := freshEntry(p)
	e.LS = true
	p.NoteRead(e, 1)
	// Write miss from the last reader (read copy was evicted between the
	// load and the store): the §5.5 heuristic keeps the LS bit.
	p.NoteGlobalWrite(e, 1, false)
	if !e.LS {
		t.Fatal("KeepOnWriteMiss variant cleared LS bit for LR write miss")
	}
	// But a write miss from a different node still de-tags.
	p.NoteGlobalWrite(e, 2, false)
	if e.LS {
		t.Fatal("KeepOnWriteMiss variant kept LS bit for foreign write miss")
	}
}

func TestLSFailedPredictionDetags(t *testing.T) {
	p := New(LS, Variant{})
	e := freshEntry(p)
	e.LS = true
	p.NoteFailedPrediction(e)
	if e.LS {
		t.Fatal("NotLS event did not de-tag")
	}
}

func TestLSDefaultTagged(t *testing.T) {
	p := New(LS, Variant{DefaultTagged: true})
	e := freshEntry(p)
	if !e.LS {
		t.Fatal("default-tagged variant did not set LS bit")
	}
	if !p.GrantExclusiveOnRead(e, 0) {
		t.Fatal("cold read of default-tagged block not exclusive")
	}
}

func TestLSTagHysteresis(t *testing.T) {
	p := New(LS, Variant{TagHysteresis: 2})
	e := freshEntry(p)
	e.State = directory.Shared
	e.Sharers.Add(1)
	p.NoteRead(e, 1)
	if p.NoteGlobalWrite(e, 1, true) || e.LS {
		t.Fatal("first tagging event tagged despite hysteresis")
	}
	p.NoteRead(e, 1)
	if !p.NoteGlobalWrite(e, 1, true) || !e.LS {
		t.Fatal("second tagging event did not tag")
	}
}

func TestLSTagHysteresisResetByDetag(t *testing.T) {
	p := New(LS, Variant{TagHysteresis: 2})
	e := freshEntry(p)
	e.State = directory.Shared
	e.Sharers.Add(1)
	p.NoteRead(e, 1)
	p.NoteGlobalWrite(e, 1, true) // TagCount = 1
	p.NoteFailedPrediction(e)     // resets the tag counter
	p.NoteRead(e, 1)
	if p.NoteGlobalWrite(e, 1, true) {
		t.Fatal("tag counter not reset by intervening de-tag event")
	}
}

func TestLSDetagHysteresis(t *testing.T) {
	p := New(LS, Variant{DetagHysteresis: 2})
	e := freshEntry(p)
	e.LS = true
	p.NoteFailedPrediction(e)
	if !e.LS {
		t.Fatal("first de-tag event cleared bit despite hysteresis")
	}
	p.NoteFailedPrediction(e)
	if e.LS {
		t.Fatal("second de-tag event did not clear bit")
	}
}

func TestLSDetagHysteresisResetByTag(t *testing.T) {
	p := New(LS, Variant{DetagHysteresis: 2})
	e := freshEntry(p)
	e.LS = true
	p.NoteFailedPrediction(e) // DetagCount = 1
	e.State = directory.Shared
	e.Sharers.Add(3)
	p.NoteRead(e, 3)
	p.NoteGlobalWrite(e, 3, true) // tagging event resets detag counter
	p.NoteFailedPrediction(e)
	if !e.LS {
		t.Fatal("de-tag counter not reset by intervening tag event")
	}
}

// TestADMigratoryDetection exercises the ISCA '93 detection signature:
// exactly two copies, requester is one, last writer is the other.
func TestADMigratoryDetection(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)

	// P0 writes the block first (write miss): last writer = 0.
	p.NoteGlobalWrite(e, 0, false)
	if e.Migratory {
		t.Fatal("write miss tagged migratory")
	}
	// P1 reads (block now shared by {0,1} after the read-on-dirty), then
	// writes: detection fires.
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(1)
	p.NoteRead(e, 1)
	if !p.NoteGlobalWrite(e, 1, true) || !e.Migratory {
		t.Fatal("migratory signature not detected")
	}
	if !p.GrantExclusiveOnRead(e, 2) {
		t.Fatal("migratory block not granted exclusive read")
	}
}

func TestADDetectionRequiresExactlyTwoCopies(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)
	e.LastWriter = 0
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(1)
	e.Sharers.Add(2)
	if p.NoteGlobalWrite(e, 1, true) || e.Migratory {
		t.Fatal("detection fired with three sharers")
	}
}

func TestADDetectionRequiresOtherIsLastWriter(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)
	e.LastWriter = 1 // requester itself was the last writer
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(1)
	if p.NoteGlobalWrite(e, 1, true) || e.Migratory {
		t.Fatal("detection fired when requester was last writer")
	}
}

func TestADNonMigratoryOwnershipDetags(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)
	e.Migratory = true
	e.LastWriter = 0
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(1)
	e.Sharers.Add(2)
	p.NoteGlobalWrite(e, 1, true) // three sharers: pattern broken
	if e.Migratory {
		t.Fatal("broken migratory pattern did not de-tag")
	}
}

func TestADWriteMissToSharedDetags(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)
	e.Migratory = true
	e.State = directory.Shared
	e.Sharers.Add(0)
	e.Sharers.Add(1)
	p.NoteGlobalWrite(e, 2, false)
	if e.Migratory {
		t.Fatal("write miss to shared block did not de-tag")
	}
}

func TestADFailedPredictionDetags(t *testing.T) {
	p := New(AD, Variant{})
	e := freshEntry(p)
	e.Migratory = true
	p.NoteFailedPrediction(e)
	if e.Migratory {
		t.Fatal("failed prediction did not de-tag")
	}
}

func TestADDefaultTagged(t *testing.T) {
	p := New(AD, Variant{DefaultTagged: true})
	e := freshEntry(p)
	if !e.Migratory || !p.GrantExclusiveOnRead(e, 0) {
		t.Fatal("default migratory tagging not applied")
	}
}

func TestNamesIncludeVariant(t *testing.T) {
	if New(LS, Variant{}).Name() != "LS" {
		t.Error("plain LS name wrong")
	}
	if got := New(LS, Variant{DefaultTagged: true}).Name(); got != "LS+default-tagged" {
		t.Errorf("LS variant name = %q", got)
	}
	if got := New(AD, Variant{TagHysteresis: 2}).Name(); got != "AD+tag-hysteresis=2" {
		t.Errorf("AD variant name = %q", got)
	}
}

// TestLSMigratoryIsSubset verifies the paper's core claim at the policy
// level: every access pattern AD tags (migratory) is also tagged by LS,
// but LS additionally tags single-processor load-store sequences that AD
// misses (Section 2's super-set argument).
func TestLSMigratoryIsSubset(t *testing.T) {
	ls := New(LS, Variant{})
	ad := New(AD, Variant{})

	// Migratory pattern: P0 read-write, P1 read-write, P2 read-write...
	// both protocols should end up tagging.
	eLS, eAD := freshEntry(ls), freshEntry(ad)
	migrate := func(p Protocol, e *directory.Entry, from, to memory.NodeID) bool {
		// "to" reads (joins sharers with current holder "from"), then writes.
		e.State = directory.Shared
		e.Sharers.Clear()
		e.Sharers.Add(from)
		e.Sharers.Add(to)
		p.NoteRead(e, to)
		return p.NoteGlobalWrite(e, to, true)
	}
	// Establish last writer P0.
	ls.NoteGlobalWrite(eLS, 0, false)
	ad.NoteGlobalWrite(eAD, 0, false)
	migrate(ls, eLS, 0, 1)
	migrate(ad, eAD, 0, 1)
	if !eLS.LS {
		t.Error("LS failed to tag migratory pattern")
	}
	if !eAD.Migratory {
		t.Error("AD failed to tag migratory pattern")
	}

	// Single-processor load-store with eviction in between: P0 reads,
	// copy evicted, P0 writes (write miss). AD never tags; LS with the
	// keep heuristic retains, and plain LS tags on the in-cache pattern.
	eLS2, eAD2 := freshEntry(ls), freshEntry(ad)
	ls.NoteRead(eLS2, 0)
	ad.NoteRead(eAD2, 0)
	eLS2.State = directory.Shared
	eLS2.Sharers.Add(0)
	eAD2.State = directory.Shared
	eAD2.Sharers.Add(0)
	lsTag := ls.NoteGlobalWrite(eLS2, 0, true)
	adTag := ad.NoteGlobalWrite(eAD2, 0, true)
	if !lsTag || !eLS2.LS {
		t.Error("LS failed to tag single-processor load-store sequence")
	}
	if adTag || eAD2.Migratory {
		t.Error("AD tagged a non-migratory load-store sequence")
	}
}
