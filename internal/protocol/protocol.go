// Package protocol implements the three cache-coherence policies evaluated
// in the paper:
//
//   - Baseline: the DASH-like full-map write-invalidate protocol
//     (Section 4.2) with no read-exclusive optimization.
//   - AD: the adaptive protocol optimized for migratory sharing of
//     Stenström, Brorsson & Sandberg (ISCA '93), as used for comparison
//     throughout the paper's Section 5.
//   - LS: the paper's contribution (Section 3) — per-block last-reader
//     tracking and an LS bit that turns subsequent reads of load-store
//     blocks into exclusive grants.
//
// A Protocol is a pure policy object: the engine performs all message
// sequencing and timing and consults the protocol at the home node for two
// things — whether a read is granted an exclusive copy, and how the
// per-block tag state evolves on coherence events. This mirrors the
// paper's observation that LS and AD add the same kind (and amount) of
// complexity to the same baseline protocol.
package protocol

import (
	"fmt"

	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// Kind enumerates the implemented protocols.
type Kind uint8

const (
	// Baseline is the unmodified write-invalidate protocol.
	Baseline Kind = iota
	// AD is the adaptive migratory-sharing protocol.
	AD
	// LS is the load-store sequence protocol extension.
	LS
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case AD:
		return "AD"
	case LS:
		return "LS"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a protocol name (case-sensitive: "Baseline", "AD",
// "LS") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "Baseline", "baseline", "base":
		return Baseline, nil
	case "AD", "ad":
		return AD, nil
	case "LS", "ls":
		return LS, nil
	default:
		return 0, fmt.Errorf("protocol: unknown protocol %q", s)
	}
}

// Variant selects the Section 5.5 ablation options.
type Variant struct {
	// DefaultTagged starts every block tagged (LS bit set, or migratory
	// for AD), so even cold read misses return exclusive copies.
	DefaultTagged bool
	// KeepOnWriteMiss suppresses de-tagging on an ownership request that
	// was not preceded by a read from the same processor (the alternative
	// de-tag heuristic of §5.5).
	KeepOnWriteMiss bool
	// TagHysteresis requires this many consecutive tagging events before
	// the block is tagged (0 and 1 mean immediate tagging; the paper
	// evaluates 2).
	TagHysteresis int
	// DetagHysteresis requires this many consecutive de-tagging events
	// before the tag is cleared (0 and 1 mean immediate).
	DetagHysteresis int
}

func (v Variant) String() string {
	s := ""
	if v.DefaultTagged {
		s += "+default-tagged"
	}
	if v.KeepOnWriteMiss {
		s += "+keep-on-write-miss"
	}
	if v.TagHysteresis > 1 {
		s += fmt.Sprintf("+tag-hysteresis=%d", v.TagHysteresis)
	}
	if v.DetagHysteresis > 1 {
		s += fmt.Sprintf("+detag-hysteresis=%d", v.DetagHysteresis)
	}
	return s
}

// Protocol is the policy interface consulted by the engine's home-node
// (memory controller) logic.
type Protocol interface {
	// Name returns a human-readable protocol name including variant.
	Name() string
	// Kind returns the protocol family.
	Kind() Kind
	// InitEntry sets the initial tag state of a freshly allocated
	// directory entry (used by the default-tagging ablation).
	InitEntry(e *directory.Entry)
	// GrantExclusiveOnRead reports whether a global read by req should
	// return an exclusive (LStemp) copy. Called when the home state is
	// Uncached or Dirty, or Excl with a modified owner — i.e. the cases
	// where Fig. 1 takes the "Read (LS=1)" edge. Reads of Shared blocks
	// are always granted shared.
	GrantExclusiveOnRead(e *directory.Entry, req memory.NodeID) bool
	// NoteRead records a global read by req at the home (LR update).
	NoteRead(e *directory.Entry, req memory.NodeID)
	// NoteGlobalWrite records a global write action by req at the home:
	// an ownership acquisition (holdsCopy=true, req has a Shared copy)
	// or a write miss (holdsCopy=false). Called before the directory
	// entry's presence information is updated for the write. Returns
	// true if the event tagged the block.
	NoteGlobalWrite(e *directory.Entry, req memory.NodeID, holdsCopy bool) bool
	// NoteFailedPrediction records that an exclusive grant turned out not
	// to be a load-store/migratory access (a foreign processor accessed
	// the block while the holder's copy was still clean) — the NotLS
	// de-tag of Fig. 1 and AD's reversion to ordinary sharing.
	NoteFailedPrediction(e *directory.Entry)
}

// New constructs the protocol policy for kind with the given variant
// options. Variant options that do not apply to a protocol family are
// ignored (Baseline ignores all of them).
func New(kind Kind, v Variant) Protocol {
	switch kind {
	case Baseline:
		return baseline{}
	case AD:
		return &adaptive{variant: v}
	case LS:
		return &loadstore{variant: v}
	default:
		panic(fmt.Sprintf("protocol: unknown kind %d", kind))
	}
}

// baseline never grants exclusive reads and keeps no tag state.
type baseline struct{}

func (baseline) Name() string                             { return "Baseline" }
func (baseline) Kind() Kind                               { return Baseline }
func (baseline) InitEntry(*directory.Entry)               {}
func (baseline) NoteRead(*directory.Entry, memory.NodeID) {}
func (baseline) NoteFailedPrediction(*directory.Entry)    {}

func (baseline) GrantExclusiveOnRead(*directory.Entry, memory.NodeID) bool { return false }

func (baseline) NoteGlobalWrite(e *directory.Entry, req memory.NodeID, holdsCopy bool) bool {
	e.LastWriter = req // harmless bookkeeping, keeps stats uniform
	return false
}
