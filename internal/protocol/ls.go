package protocol

import (
	"lsnuma/internal/directory"
	"lsnuma/internal/memory"
)

// loadstore implements the paper's LS protocol extension (Section 3.1).
//
// Tag state per block: LR (last reader) and the LS bit. The rules:
//
//   - Every global read updates LR to the requesting node.
//   - An ownership acquisition whose source equals LR tags the block LS.
//   - A write request from a processor not holding a copy de-tags the
//     block (unless the KeepOnWriteMiss heuristic variant is enabled).
//   - A foreign access to a block held in LStemp (an exclusive read grant
//     whose predicted store never arrived) de-tags the block — the NotLS
//     transition of Fig. 1.
//   - While the LS bit is set, reads of Uncached or Dirty blocks are
//     granted exclusive copies; reads of Shared blocks stay shared (the
//     Fig. 1 Shared state has no exclusive-read edge, which protects
//     read-shared data from spurious invalidations).
//
// Hysteresis variants (§5.5) gate the bit flips behind small counters.
type loadstore struct {
	variant Variant
}

func (p *loadstore) Name() string { return "LS" + p.variant.String() }
func (p *loadstore) Kind() Kind   { return LS }

func (p *loadstore) InitEntry(e *directory.Entry) {
	if p.variant.DefaultTagged {
		e.LS = true
	}
}

func (p *loadstore) GrantExclusiveOnRead(e *directory.Entry, req memory.NodeID) bool {
	return e.LS
}

func (p *loadstore) NoteRead(e *directory.Entry, req memory.NodeID) {
	e.LR = req
}

func (p *loadstore) NoteGlobalWrite(e *directory.Entry, req memory.NodeID, holdsCopy bool) bool {
	e.LastWriter = req
	if holdsCopy && req == e.LR {
		// Ownership request from the last reader: the defining
		// load-store sequence event.
		return p.tag(e)
	}
	if !holdsCopy {
		// Write request from a processor without a copy: the access was
		// not part of a load-store sequence — the paper's explicit
		// de-tagging rule ("a block is also de-tagged when the home node
		// receives a write request from a processor not holding a copy
		// of the block in its cache").
		if p.variant.KeepOnWriteMiss && req == e.LR {
			// §5.5 heuristic: the read may have been evicted between
			// the load and the store; keep the LS bit value.
			return false
		}
		p.detag(e)
		return false
	}
	// Ownership request from a holder that was not the last reader:
	// neither the tagging rule nor a de-tagging rule applies (Fig. 1's
	// Shared→Dirty "Write" edge); the LS bit keeps its value.
	return false
}

func (p *loadstore) NoteFailedPrediction(e *directory.Entry) {
	p.detag(e)
}

func (p *loadstore) tag(e *directory.Entry) bool {
	e.DetagCount = 0
	if p.variant.TagHysteresis > 1 {
		if int(e.TagCount)+1 < p.variant.TagHysteresis {
			e.TagCount++
			return false
		}
		e.TagCount = 0
	}
	was := e.LS
	e.LS = true
	return !was
}

func (p *loadstore) detag(e *directory.Entry) {
	e.TagCount = 0
	if p.variant.DetagHysteresis > 1 {
		if int(e.DetagCount)+1 < p.variant.DetagHysteresis {
			e.DetagCount++
			return
		}
		e.DetagCount = 0
	}
	e.LS = false
}
