package protocol

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// RetryPolicy configures the requester-side retry state machine for
// NACKed and lost coherence transactions: up to Max retries per
// transaction, retry k waiting min(Cap, Base<<(k-1)) cycles of bounded
// exponential backoff plus deterministic jitter in [0, Base) drawn from a
// generator seeded with JitterSeed. The zero policy (Max == 0) disables
// retries entirely — any NACK or loss then starves the requester and
// trips the engine's forward-progress watchdog.
type RetryPolicy struct {
	Max        int    // retry budget per transaction (0 = retries disabled)
	Base       uint64 // initial backoff in cycles
	Cap        uint64 // backoff ceiling in cycles
	JitterSeed int64  // seed of the deterministic jitter stream
}

// DefaultRetry returns the default policy: 16 retries, 100-cycle base,
// 10,000-cycle cap, jitter seed 1.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Max: 16, Base: 100, Cap: 10_000, JitterSeed: 1}
}

// Enabled reports whether the policy allows any retries.
func (p RetryPolicy) Enabled() bool { return p.Max > 0 }

// Validate checks the policy's internal consistency.
func (p RetryPolicy) Validate() error {
	if p.Max < 0 {
		return fmt.Errorf("protocol: retry max %d < 0", p.Max)
	}
	if !p.Enabled() {
		return nil
	}
	if p.Base == 0 {
		return fmt.Errorf("protocol: retry base backoff is zero")
	}
	if p.Cap < p.Base {
		return fmt.Errorf("protocol: retry cap %d below base %d", p.Cap, p.Base)
	}
	return nil
}

// Backoff returns the wait in cycles before retry `attempt` (1-based):
// exponential growth from Base, bounded by Cap, plus jitter in [0, Base)
// from rng (no jitter when rng is nil or Base <= 1).
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) uint64 {
	if attempt < 1 {
		attempt = 1
	}
	wait := p.Cap
	if shift := uint(attempt - 1); shift < 32 {
		if v := p.Base << shift; v < p.Cap {
			wait = v
		}
	}
	if rng != nil && p.Base > 1 {
		wait += uint64(rng.Int63n(int64(p.Base)))
	}
	return wait
}

// String renders the policy in ParseRetry's grammar; the disabled zero
// policy renders as the empty string.
func (p RetryPolicy) String() string {
	if !p.Enabled() {
		return ""
	}
	return fmt.Sprintf("max:%d,base:%d,cap:%d,jitter:%d", p.Max, p.Base, p.Cap, p.JitterSeed)
}

// ParseRetry parses a retry specification: comma-separated key:value
// fields from {max, base, cap, jitter}, e.g. "max:8,base:200,cap:5000" or
// "max:16,base:100,cap:10000,jitter:42". Omitted fields take the
// DefaultRetry values; the empty string yields the disabled zero policy.
func ParseRetry(spec string) (RetryPolicy, error) {
	if spec == "" {
		return RetryPolicy{}, nil
	}
	p := DefaultRetry()
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return RetryPolicy{}, fmt.Errorf("protocol: retry field %q is not key:value (spec %q)", field, spec)
		}
		switch key {
		case "max":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return RetryPolicy{}, fmt.Errorf("protocol: bad retry max %q in spec %q", val, spec)
			}
			p.Max = v
		case "base", "cap":
			// 31-bit bound keeps the backoff arithmetic (shifts, jitter
			// draws) comfortably inside uint64/int63.
			v, err := strconv.ParseUint(val, 10, 31)
			if err != nil || v == 0 {
				return RetryPolicy{}, fmt.Errorf("protocol: bad retry %s %q in spec %q", key, val, spec)
			}
			if key == "base" {
				p.Base = v
			} else {
				p.Cap = v
			}
		case "jitter":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return RetryPolicy{}, fmt.Errorf("protocol: bad retry jitter seed %q in spec %q", val, spec)
			}
			p.JitterSeed = v
		default:
			return RetryPolicy{}, fmt.Errorf("protocol: unknown retry field %q in spec %q (want max, base, cap, jitter)", key, spec)
		}
	}
	if !p.Enabled() {
		// "max:0" explicitly disables retries.
		return RetryPolicy{}, nil
	}
	if err := p.Validate(); err != nil {
		return RetryPolicy{}, err
	}
	return p, nil
}
