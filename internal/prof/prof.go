// Package prof wires the standard runtime/pprof profilers into the
// command-line tools: a -cpuprofile flag captures where the simulator
// spends its time (the scheduler work behind the run-ahead optimization
// was found this way), a -memprofile flag captures heap allocations, and
// -mutexprofile/-blockprofile capture lock contention and blocking —
// the profiles that matter when tuning the parallel scheduler's
// shard-worker handoffs.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names the profile outputs a tool wants; empty fields are off.
type Options struct {
	CPU   string // CPU profile file
	Mem   string // heap profile file, written on stop
	Mutex string // mutex-contention profile file, written on stop
	Block string // blocking (channel/select/lock wait) profile file, written on stop
}

// Start begins CPU profiling (when requested) and arms the mutex and
// block profilers (when requested; both sample every event, which is
// cheap at the scheduler's handoff rate). It returns a stop function
// that ends the CPU profile and writes the heap, mutex and block
// profiles. The stop function is safe to call more than once, so tools
// can invoke it both from a defer and from their fatal path before
// os.Exit.
func Start(opts Options) (func(), error) {
	var cpu *os.File
	if opts.CPU != "" {
		f, err := os.Create(opts.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpu = f
	}
	if opts.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if opts.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if opts.Mem != "" {
			runtime.GC() // materialize the final live set
			writeProfile("heap", opts.Mem)
		}
		writeProfile("mutex", opts.Mutex)
		writeProfile("block", opts.Block)
	}, nil
}

// writeProfile dumps the named runtime profile to file; a "" file means
// the profile was not requested. Failures are reported, not fatal: the
// run itself already finished.
func writeProfile(name, file string) {
	if file == "" {
		return
	}
	f, err := os.Create(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
	}
}
