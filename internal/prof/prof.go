// Package prof wires the standard runtime/pprof profilers into the
// command-line tools: a -cpuprofile flag captures where the simulator
// spends its time (the scheduler work behind the run-ahead optimization
// was found this way), a -memprofile flag captures heap allocations.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memFile (when non-empty). The stop function is safe to call more than
// once, so tools can invoke it both from a defer and from their fatal
// path before os.Exit.
func Start(cpuFile, memFile string) (func(), error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpu = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
			f.Close()
		}
	}, nil
}
