package loadtest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lsnuma"
	"lsnuma/internal/report"
	"lsnuma/internal/server"
)

// The explicit service-level objectives the harness enforces. CI runs
// this suite under -race, so the latency bounds are generous; the error
// and drop bounds are exact.
const (
	sloErrorRate = 0.0              // no failed requests at target concurrency
	sloWarmP95   = 60 * time.Second // warm-cache P95 under full load, -race included
	sloDrainTime = 30 * time.Second // graceful drain completes within the default deadline
)

func newDaemon(t *testing.T, cfg server.Config) (*server.Server, *Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, New(ts.URL)
}

func openCache(t *testing.T, dir string) *lsnuma.ResultCache {
	t.Helper()
	c, err := lsnuma.OpenResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLoadSLO drives the daemon cold then warm at target concurrency
// (32 clients against 4 job slots) and asserts the SLOs: zero failed
// requests, zero admission rejections with an adequate queue, and a
// warm-cache P95 under the bound.
func TestLoadSLO(t *testing.T) {
	dir := t.TempDir()
	_, client := newDaemon(t, server.Config{
		MaxJobs:    4,
		QueueDepth: 256, // deep enough to admit the whole burst
		Cache:      openCache(t, dir),
	})
	ctx := context.Background()

	// Cold phase: one sweep fills the cache.
	coldStart := time.Now()
	recs, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("cold sweep: status=%d err=%v", status, err)
	}
	trailer := recs[len(recs)-1]
	if trailer.Type != "done" || trailer.Failed != 0 {
		t.Fatalf("cold sweep trailer = %+v, want done with 0 failed", trailer)
	}
	t.Logf("cold sweep (1 client): %v", time.Since(coldStart))

	// Warm single-client baseline for the EXPERIMENTS SLO table.
	warm1 := Fire(ctx, 1, 4, func(ctx context.Context, c, i int) Result {
		_, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
		return Result{Status: status, Err: err}
	})
	t.Logf("warm load (1 client): %v", warm1)

	// Warm phase: 32 clients, each a sweep and a point, all warm.
	sum := Fire(ctx, 32, 2, func(ctx context.Context, c, i int) Result {
		if i%2 == 0 {
			recs, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
			if err == nil && (len(recs) == 0 || recs[len(recs)-1].Type != "done") {
				err = errors.New("stream ended without done trailer")
			}
			return Result{Status: status, Err: err}
		}
		_, status, err := client.Point(ctx, `{"workload":"mp3d","config":{"Protocol":"LS"}}`)
		return Result{Status: status, Err: err}
	})
	t.Logf("warm load: %v", sum)

	if got := sum.ErrorRate(); got > sloErrorRate {
		t.Errorf("error rate = %.3f, want <= %.3f (%d failed of %d)", got, sloErrorRate, sum.Failed, sum.Requests)
	}
	if sum.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 (queue sized for the burst)", sum.Rejected)
	}
	if sum.OK != sum.Requests {
		t.Errorf("ok = %d of %d requests", sum.OK, sum.Requests)
	}
	if sum.P95 > sloWarmP95 {
		t.Errorf("warm P95 = %v, want <= %v", sum.P95, sloWarmP95)
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["lsnumad_points_failed_total"] != 0 {
		t.Errorf("points_failed_total = %v, want 0", m["lsnumad_points_failed_total"])
	}
	if m["lsnumad_cache_hits_total"] == 0 {
		t.Errorf("cache_hits_total = 0, want warm hits")
	}
}

// TestStampedeSingleCompute fires 8 simultaneous clients at one cold
// point key on a dedup-only daemon and asserts the single-flight layer
// ran exactly one simulation — the others shared it.
func TestStampedeSingleCompute(t *testing.T) {
	_, client := newDaemon(t, server.Config{MaxJobs: 8})
	ctx := context.Background()

	// cholesky/test runs ~80ms (longer under -race): a wide window next
	// to the microseconds of dispatch jitter, so all 8 arrivals overlap
	// the one computation.
	const clients = 8
	body := `{"workload":"cholesky","config":{"Protocol":"LS"}}`
	responses := make([]server.PointResponse, clients)
	sum := Fire(ctx, clients, 1, func(ctx context.Context, c, i int) Result {
		resp, status, err := client.Point(ctx, body)
		responses[c] = resp
		return Result{Status: status, Err: err}
	})
	if sum.OK != clients {
		t.Fatalf("load summary %v, want %d ok", sum, clients)
	}

	deduped := 0
	for _, r := range responses {
		if r.Result == nil {
			t.Fatalf("response missing result: %+v", r)
		}
		if r.Deduped {
			deduped++
		}
	}
	if deduped != clients-1 {
		t.Errorf("deduped responses = %d, want %d", deduped, clients-1)
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["lsnumad_points_computed_total"]; got != 1 {
		t.Errorf("points_computed_total = %v, want exactly 1", got)
	}
	if got := m["lsnumad_points_deduped_total"]; got != clients-1 {
		t.Errorf("points_deduped_total = %v, want %d", got, clients-1)
	}
}

// TestKillMidSweep is the chaos scenario: clients repeatedly vanish
// mid-stream. The daemon must release their slots, stay healthy, and
// keep serving well-formed sweeps afterwards.
func TestKillMidSweep(t *testing.T) {
	srv, client := newDaemon(t, server.Config{MaxJobs: 2})
	ctx := context.Background()

	errKilled := errors.New("client killed")
	for round := 0; round < 3; round++ {
		killCtx, cancel := context.WithCancel(ctx)
		_, err := client.Stream(killCtx, "sweep", `{"workload":"mp3d","sweep":"block"}`,
			func(rec server.StreamRecord) error {
				if rec.Type == "cell" {
					cancel() // die after the first streamed cell
					return errKilled
				}
				return nil
			})
		cancel()
		if !errors.Is(err, errKilled) {
			t.Fatalf("round %d: stream error = %v, want the kill", round, err)
		}
		waitFor(t, func() bool { return srv.Inflight() == 0 && srv.QueueDepth() == 0 })
	}

	// After the carnage: a clean sweep completes and the daemon is healthy.
	recs, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-chaos sweep: status=%d err=%v", status, err)
	}
	if trailer := recs[len(recs)-1]; trailer.Type != "done" || trailer.Failed != 0 {
		t.Fatalf("post-chaos trailer = %+v, want done with 0 failed", trailer)
	}
	h, status, err := client.Healthz(ctx)
	if err != nil || status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("post-chaos healthz = %+v status=%d err=%v", h, status, err)
	}
}

// TestDrainUnderLoad starts sweeps on every slot, drains, and asserts
// the drain SLO: new work is refused with 503, every in-flight stream
// still ends with its done trailer (zero dropped jobs), and the drain
// completes within the bound.
func TestDrainUnderLoad(t *testing.T) {
	srv, client := newDaemon(t, server.Config{MaxJobs: 2})
	ctx := context.Background()

	type stream struct {
		recs []server.StreamRecord
		err  error
	}
	streams := make(chan stream, 2)
	for i := 0; i < 2; i++ {
		go func() {
			recs, _, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
			streams <- stream{recs, err}
		}()
	}
	waitFor(t, func() bool { return srv.Inflight() == 2 })

	start := time.Now()
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, sloDrainTime)
		defer cancel()
		drained <- srv.Drain(dctx)
	}()
	waitFor(t, srv.Draining)

	_, status, err := client.Point(ctx, `{}`)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Errorf("POST during drain status = %d, want 503", status)
	}

	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil within %v", err, sloDrainTime)
	}
	drainTime := time.Since(start)
	t.Logf("drain under load completed in %v", drainTime)
	if drainTime > sloDrainTime {
		t.Errorf("drain took %v, want <= %v", drainTime, sloDrainTime)
	}
	for i := 0; i < 2; i++ {
		s := <-streams
		if s.err != nil {
			t.Fatalf("in-flight stream %d dropped during drain: %v", i, s.err)
		}
		if len(s.recs) == 0 || s.recs[len(s.recs)-1].Type != "done" {
			t.Fatalf("in-flight stream %d has no done trailer: %d records", i, len(s.recs))
		}
		if f := s.recs[len(s.recs)-1].Failed; f != 0 {
			t.Errorf("in-flight stream %d finished with %d failed points, want 0", i, f)
		}
	}
}

// TestWarmStreamMatchesLssweep asserts the byte-identity contract: the
// concatenated "text" fields of a warm-cache daemon sweep equal,
// byte for byte, the stdout an equivalent lssweep invocation prints
// (which is the concatenation of report.SweepCell over the same grid).
func TestWarmStreamMatchesLssweep(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// The lssweep side: same workload/sweep/scale, same cache dir.
	results, err := lsnuma.Sweep(ctx, lsnuma.DefaultConfig(), lsnuma.SweepBlock, "mp3d", lsnuma.ScaleTest,
		lsnuma.RunOptions{Cache: openCache(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, pt := range results {
		text, failed := report.SweepCell(pt)
		if failed != 0 {
			t.Fatalf("reference sweep cell %s failed", pt.Label)
		}
		want.WriteString(text)
	}

	_, client := newDaemon(t, server.Config{MaxJobs: 2, Cache: openCache(t, dir)})
	recs, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("daemon sweep: status=%d err=%v", status, err)
	}
	var got strings.Builder
	cells := 0
	for _, rec := range recs {
		if rec.Type == "cell" {
			got.WriteString(rec.Text)
			cells++
		}
	}
	if cells != len(results) {
		t.Fatalf("daemon streamed %d cells, lssweep prints %d", cells, len(results))
	}
	if got.String() != want.String() {
		t.Errorf("daemon stream is not byte-identical to lssweep stdout:\n--- daemon ---\n%s--- lssweep ---\n%s", got.String(), want.String())
	}

	// And it really was warm: every point served from the cache.
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := float64(len(results) * len(lsnuma.Protocols()))
	if m["lsnumad_cache_hits_total"] != wantHits {
		t.Errorf("cache_hits_total = %v, want %v (fully warm)", m["lsnumad_cache_hits_total"], wantHits)
	}
	if m["lsnumad_points_computed_total"] != 0 {
		t.Errorf("points_computed_total = %v, want 0 on a warm sweep", m["lsnumad_points_computed_total"])
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within 10s")
}
