// Package loadtest is the in-repo load and chaos harness for the
// lsnumad daemon: a small NDJSON-aware client, a concurrent load
// generator with latency quantiles, and a Prometheus text-format
// scraper. The SLO suite (slo_test.go) drives a live daemon through
// saturation, cache-stampede, kill-mid-sweep and drain scenarios and
// asserts explicit thresholds; the CI daemon job runs it under -race.
package loadtest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lsnuma/internal/server"
)

// Client talks to one lsnumad instance.
type Client struct {
	Base string
	HTTP *http.Client
}

// New returns a client for the daemon at base (e.g. an httptest URL).
func New(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{}}
}

// Point submits a point job and decodes the JSON reply. The returned
// status is the HTTP code (0 on transport error).
func (c *Client) Point(ctx context.Context, body string) (server.PointResponse, int, error) {
	var out server.PointResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/point", strings.NewReader(body))
	if err != nil {
		return out, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return out, 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, resp.StatusCode, fmt.Errorf("decode point response: %w", err)
	}
	return out, resp.StatusCode, nil
}

// Stream submits a job to a streaming endpoint ("sweep" or "compare")
// and feeds each NDJSON record to onRec as it arrives. A non-nil onRec
// error aborts the stream and is returned. The HTTP status is returned
// even on error paths that produced one.
func (c *Client) Stream(ctx context.Context, endpoint, body string, onRec func(server.StreamRecord) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/"+endpoint, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // body is best-effort on rejections
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec server.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return resp.StatusCode, fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		if err := onRec(rec); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, sc.Err()
}

// Sweep collects a full sweep stream.
func (c *Client) Sweep(ctx context.Context, body string) ([]server.StreamRecord, int, error) {
	var recs []server.StreamRecord
	status, err := c.Stream(ctx, "sweep", body, func(rec server.StreamRecord) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, status, err
}

// JobStatus fetches /api/v1/jobs/<id> — the journaled job's state and
// completion cursor, which survive daemon restarts.
func (c *Client) JobStatus(ctx context.Context, id string) (server.JobStatus, int, error) {
	var st server.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return st, 0, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return st, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best-effort detail
		return st, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

// Health is the /healthz reply.
type Health struct {
	Status   string `json:"status"`
	Queue    int64  `json:"queue"`
	Inflight int64  `json:"inflight"`
	Version  string `json:"version"`
}

// Healthz fetches /healthz.
func (c *Client) Healthz(ctx context.Context) (Health, int, error) {
	var h Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return h, 0, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return h, 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, resp.StatusCode, err
	}
	return h, resp.StatusCode, nil
}

// Metrics scrapes /metrics and returns every series as a map from
// "name" or `name{labels}` to its value.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// Result is one generated request's outcome.
type Result struct {
	Status  int
	Err     error
	Latency time.Duration
}

// Summary aggregates a load run. Rejected counts admission NACKs (429)
// and drain refusals (503) — back-pressure, not failures; Failed counts
// everything else that was not 2xx.
type Summary struct {
	Requests int
	OK       int
	Rejected int
	Failed   int
	P50      time.Duration
	P95      time.Duration
	Max      time.Duration
}

func (s Summary) String() string {
	return fmt.Sprintf("requests=%d ok=%d rejected=%d failed=%d p50=%v p95=%v max=%v",
		s.Requests, s.OK, s.Rejected, s.Failed, s.P50, s.P95, s.Max)
}

// ErrorRate is failed requests over all requests (rejections excluded:
// a NACKed client was told to back off, not failed).
func (s Summary) ErrorRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Failed) / float64(s.Requests)
}

// Fire launches clients goroutines, each performing perClient
// sequential requests through job, all released from a common barrier
// so arrival bursts genuinely overlap. job receives the client and
// iteration indexes and returns the request outcome.
func Fire(ctx context.Context, clients, perClient int, job func(ctx context.Context, client, iter int) Result) Summary {
	results := make([]Result, clients*perClient)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				r := job(ctx, c, i)
				r.Latency = time.Since(t0)
				results[c*perClient+i] = r
			}
		}(c)
	}
	close(start)
	wg.Wait()

	var s Summary
	var lat []time.Duration
	for _, r := range results {
		s.Requests++
		switch {
		case r.Err == nil && r.Status >= 200 && r.Status < 300:
			s.OK++
			lat = append(lat, r.Latency)
		case r.Status == http.StatusTooManyRequests || r.Status == http.StatusServiceUnavailable:
			s.Rejected++
		default:
			s.Failed++
		}
		if r.Latency > s.Max {
			s.Max = r.Latency
		}
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.P50 = lat[len(lat)/2]
		s.P95 = lat[len(lat)*95/100]
	}
	return s
}
