package loadtest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lsnuma"
	"lsnuma/internal/report"
	"lsnuma/internal/server"
	"lsnuma/internal/server/journal"
)

// Durability and fairness SLOs enforced by this file. The crash bound
// is exact — a restart may recompute only the points that were
// literally in flight when the daemon died; everything the cursor had
// passed must come back from the cache. The fairness bound says a
// light tenant's admission wait under a greedy flood stays an order of
// magnitude below the FIFO backlog it would otherwise sit behind.
const (
	sloLightP95 = 1 * time.Second // light-tenant P95 under a greedy flood
)

func openCrashJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestCrashRestartResumes is the in-process crash drill: kill the
// daemon (Close aborts every in-flight simulation, exactly what a
// SIGKILL plus process exit does to them) after the first streamed
// cell, restart over the same state dir, and assert the journaled
// sweep replays to completion with zero duplicate computes for the
// points that had already been persisted — then prove the resumed
// result is byte-identical to what lssweep prints.
func TestCrashRestartResumes(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := filepath.Join(stateDir, "cache")
	ctx := context.Background()

	grid, err := lsnuma.SweepGrid(lsnuma.SweepBlock, lsnuma.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nproto := len(lsnuma.Protocols())
	totalPoints := len(grid) * nproto

	// Incarnation 1: journaled daemon, killed after the first cell. The
	// RunAll wrapper makes the crash deterministic: once the first
	// cell's points have completed (and streamed — the inner OnPoint
	// runs first), no further point may finish until the kill has
	// landed, so the crash always interrupts a mostly-pending sweep.
	killed := make(chan struct{})
	var kill sync.Once
	srv1 := server.New(server.Config{
		MaxJobs:     1,
		Parallelism: 1,
		Cache:       openCache(t, cacheDir),
		Journal:     openCrashJournal(t, stateDir),
		RunAll: func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
			var okPoints atomic.Int64
			orig := opt.OnPoint
			opt.OnPoint = func(i int, pr lsnuma.PointResult) {
				if orig != nil {
					orig(i, pr) // stream + cursor first, then gate
				}
				if pr.Err == nil && okPoints.Add(1) == int64(nproto) {
					<-killed
				}
			}
			return lsnuma.RunAll(ctx, points, opt)
		},
	})
	ts1 := httptest.NewServer(srv1.Handler())
	client1 := New(ts1.URL)

	errKilled := errors.New("daemon killed")
	var jobID string
	_, err = client1.Stream(ctx, "sweep", `{"workload":"mp3d","sweep":"block","tenant":"team-a"}`,
		func(rec server.StreamRecord) error {
			if rec.Type == "job" {
				jobID = rec.ID
			}
			if rec.Type == "cell" {
				kill.Do(func() {
					srv1.Close() // the crash: in-flight points die mid-compute
					close(killed)
				})
				return errKilled
			}
			return nil
		})
	kill.Do(func() { srv1.Close(); close(killed) }) // stream died early: unblock regardless
	ts1.Close()
	if !errors.Is(err, errKilled) {
		t.Fatalf("stream error = %v, want the kill", err)
	}
	if jobID == "" {
		t.Fatal("stream header carried no job id")
	}

	// The journal (reopened, as the next boot would) shows the wreck:
	// the job is still running and the cursor proves the first cell's
	// points were durable before the crash.
	jn2 := openCrashJournal(t, stateDir)
	rec, ok := jn2.Get(jobID)
	if !ok {
		t.Fatalf("job %s missing from reopened journal", jobID)
	}
	if rec.State != journal.StateRunning {
		t.Fatalf("crashed job state = %s, want running (terminal states must not survive a crash mid-run)", rec.State)
	}
	if rec.Completed < nproto {
		t.Fatalf("completion cursor = %d, want >= %d (the streamed cell's points)", rec.Completed, nproto)
	}
	durable := rec.Completed
	t.Logf("crash left job %s running with %d/%d points durable", jobID, durable, totalPoints)

	// Incarnation 2: same state dir, replay on startup.
	srv2 := server.New(server.Config{
		MaxJobs: 2,
		Cache:   openCache(t, cacheDir),
		Journal: jn2,
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := New(ts2.URL)
	if n := srv2.Recover(); n != 1 {
		t.Fatalf("Recover = %d, want 1 replayed job", n)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var st server.JobStatus
	for {
		var status int
		st, status, err = client2.JobStatus(ctx, jobID)
		if err != nil || status != http.StatusOK {
			t.Fatalf("JobStatus: status=%d err=%v", status, err)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay did not finish: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" || st.Percent != 100 || st.Attempts != 2 {
		t.Fatalf("replayed job = %+v, want done/100%%/2 attempts", st)
	}

	// Zero duplicate computes: every point the cursor had passed comes
	// back from the cache; only the in-flight remainder is recomputed.
	m, err := client2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cached := int(m["lsnumad_points_cached_total"])
	computed := int(m["lsnumad_points_computed_total"])
	deduped := int(m["lsnumad_points_deduped_total"])
	if cached+computed+deduped != totalPoints {
		t.Errorf("replay touched %d points (cached=%d computed=%d deduped=%d), want %d",
			cached+computed+deduped, cached, computed, deduped, totalPoints)
	}
	if cached < durable {
		t.Errorf("replay served %d points from cache, want >= %d (the durable cursor): duplicate computes", cached, durable)
	}
	if got := srv2.Metrics().Recovered.Load(); got != 1 {
		t.Errorf("jobs_recovered_total = %d, want 1", got)
	}
	t.Logf("replay: cached=%d computed=%d deduped=%d of %d points", cached, computed, deduped, totalPoints)

	// Byte-identity: the resumed cache must yield exactly what an
	// uninterrupted lssweep prints over the same grid.
	results, err := lsnuma.Sweep(ctx, lsnuma.DefaultConfig(), lsnuma.SweepBlock, "mp3d", lsnuma.ScaleTest,
		lsnuma.RunOptions{Cache: openCache(t, cacheDir)})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, pt := range results {
		text, failed := report.SweepCell(pt)
		if failed != 0 {
			t.Fatalf("reference sweep cell %s failed", pt.Label)
		}
		want.WriteString(text)
	}
	recs, status, err := client2.Sweep(ctx, `{"workload":"mp3d","sweep":"block"}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-replay sweep: status=%d err=%v", status, err)
	}
	var got strings.Builder
	for _, r := range recs {
		if r.Type == "cell" {
			got.WriteString(r.Text)
		}
	}
	if got.String() != want.String() {
		t.Errorf("resumed sweep is not byte-identical to lssweep stdout:\n--- daemon ---\n%s--- lssweep ---\n%s", got.String(), want.String())
	}

	// And the resumption left a fully warm cache behind: re-running the
	// grid computes nothing fresh.
	_, pts, err := lsnuma.SweepPoints(lsnuma.SweepBlock, lsnuma.DefaultConfig(), "mp3d", lsnuma.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var fresh int
	final, err := lsnuma.RunAll(ctx, pts, lsnuma.RunOptions{Cache: openCache(t, cacheDir)})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range final {
		if !pr.Cached {
			fresh++
		}
	}
	if fresh != 0 {
		t.Errorf("%d of %d points computed fresh after resumption, want 0 (cache fully repaired)", fresh, len(final))
	}
}

// TestTenantFairnessSLO floods a one-slot daemon with a greedy tenant
// and asserts three light tenants are still admitted within the SLO —
// under FIFO the first light job alone would wait behind the entire
// greedy backlog (64 x 20ms = 1.28s), so a passing P95 proves the
// deficit-round-robin scheduler is doing the interleaving.
func TestTenantFairnessSLO(t *testing.T) {
	const (
		greedyJobs = 64
		jobCost    = 20 * time.Millisecond
	)
	srv, client := newDaemon(t, server.Config{
		MaxJobs:    1,
		QueueDepth: 256,
		Quantum:    4,
		RunAll: func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
			select {
			case <-time.After(jobCost):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			out := make([]lsnuma.PointResult, len(points))
			for i, pt := range points {
				out[i] = lsnuma.PointResult{Point: pt, Result: &lsnuma.Result{}}
				if opt.OnPoint != nil {
					opt.OnPoint(i, out[i])
				}
			}
			return out, nil
		},
	})
	ctx := context.Background()

	greedyDone := make(chan int, greedyJobs)
	for i := 0; i < greedyJobs; i++ {
		go func() {
			_, status, _ := client.Point(ctx, `{"tenant":"greedy"}`)
			greedyDone <- status
		}()
	}
	waitFor(t, func() bool { return srv.QueueDepth() >= greedyJobs*3/4 })

	// The greedy backlog is visible per tenant while it is queued.
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m[`lsnumad_tenant_queue_depth{tenant="greedy"}`] < float64(greedyJobs/2) {
		t.Errorf(`tenant_queue_depth{greedy} = %v mid-flood, want >= %d`,
			m[`lsnumad_tenant_queue_depth{tenant="greedy"}`], greedyJobs/2)
	}

	// Three light tenants, six sequential jobs each, arriving into the
	// flood. Every one must be admitted, and quickly.
	sum := Fire(ctx, 3, 6, func(ctx context.Context, c, i int) Result {
		_, status, err := client.Point(ctx, fmt.Sprintf(`{"tenant":"light-%d"}`, c))
		return Result{Status: status, Err: err}
	})
	t.Logf("light tenants under greedy flood: %v", sum)
	if sum.OK != sum.Requests {
		t.Fatalf("light tenants: %d of %d ok (%d rejected, %d failed), want all admitted",
			sum.OK, sum.Requests, sum.Rejected, sum.Failed)
	}
	if sum.P95 > sloLightP95 {
		t.Errorf("light-tenant P95 = %v under greedy flood, want <= %v (FIFO would be >= %v)",
			sum.P95, sloLightP95, time.Duration(greedyJobs)*jobCost)
	}

	// The greedy tenant is throttled, not starved: all its jobs finish.
	for i := 0; i < greedyJobs; i++ {
		if status := <-greedyDone; status != http.StatusOK {
			t.Fatalf("greedy job %d = %d, want 200", i, status)
		}
	}

	// 2:1 weighted quanta: a fresh one-slot daemon where the gold tenant
	// earns twice the bronze quantum per DRR visit. Compare jobs cost
	// three points against a bronze quantum of two, so bronze banks two
	// visits of credit per job while gold's override covers a whole job
	// every visit — gold's equal-sized backlog must drain roughly twice
	// as fast, with bronze throttled but still flowing.
	const weightedJobs = 10
	_, wclient := newDaemon(t, server.Config{
		MaxJobs:      1,
		QueueDepth:   256,
		Quantum:      2,
		TenantQuanta: map[string]int{"gold": 4},
		RunAll: func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
			select {
			case <-time.After(jobCost):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			out := make([]lsnuma.PointResult, len(points))
			for i, pt := range points {
				out[i] = lsnuma.PointResult{Point: pt, Result: &lsnuma.Result{}}
				if opt.OnPoint != nil {
					opt.OnPoint(i, out[i])
				}
			}
			return out, nil
		},
	})
	type completion struct {
		tenant string
		at     time.Duration
		status int
	}
	done := make(chan completion, 2*weightedJobs)
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < weightedJobs; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				status, err := wclient.Stream(ctx, "compare", fmt.Sprintf(`{"tenant":%q}`, tenant), func(server.StreamRecord) error { return nil })
				if err != nil {
					t.Errorf("%s compare job: status %d: %v", tenant, status, err)
				}
				done <- completion{tenant: tenant, at: time.Since(t0), status: status}
			}(tenant)
		}
	}
	wg.Wait()
	close(done)
	var goldSum, bronzeSum time.Duration
	for c := range done {
		if c.status != http.StatusOK {
			t.Fatalf("%s job = %d, want 200", c.tenant, c.status)
		}
		if c.tenant == "gold" {
			goldSum += c.at
		} else {
			bronzeSum += c.at
		}
	}
	goldMean := goldSum / weightedJobs
	bronzeMean := bronzeSum / weightedJobs
	t.Logf("weighted quanta: gold mean completion %v, bronze mean %v", goldMean, bronzeMean)
	// Ideal 2:1 weighting puts gold's mean at half of bronze's; unweighted
	// DRR would put them equal. 0.8 splits the difference with headroom
	// for scheduling noise.
	if goldMean > bronzeMean*8/10 {
		t.Errorf("gold mean completion %v vs bronze %v: want gold <= 0.8x bronze under 2:1 quanta", goldMean, bronzeMean)
	}
}

// TestCrashRestartSIGKILL is the real thing: a built lsnumad binary,
// kill -9 mid-sweep, restart on the same -state-dir, and the journaled
// job completes with the stream byte-identical to lssweep. This is the
// in-tree twin of the CI shell smoke.
func TestCrashRestartSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "lsnumad")
	if out, err := exec.Command("go", "build", "-o", bin, "lsnuma/cmd/lsnumad").CombinedOutput(); err != nil {
		t.Fatalf("go build lsnumad: %v\n%s", err, out)
	}

	stateDir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx := context.Background()

	// -j 1 keeps points sequential so the SIGKILL lands mid-sweep.
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-jobs", "1", "-j", "1", "-state-dir", stateDir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start lsnumad: %v", err)
		}
		return cmd
	}
	client := New("http://" + addr)
	waitUp := func() {
		waitFor(t, func() bool {
			_, status, err := client.Healthz(ctx)
			return err == nil && status == http.StatusOK
		})
	}

	cmd1 := start()
	waitUp()

	// Small scale: sequential points take ~30ms each, so the SIGKILL
	// lands mid-sweep with a couple hundred ms to spare.
	errKilled := errors.New("kill -9")
	var jobID string
	_, err = client.Stream(ctx, "sweep", `{"workload":"mp3d","sweep":"block","scale":"small","tenant":"ci"}`,
		func(rec server.StreamRecord) error {
			if rec.Type == "job" {
				jobID = rec.ID
			}
			if rec.Type == "cell" {
				cmd1.Process.Kill() //nolint:errcheck // SIGKILL mid-sweep is the point
				return errKilled
			}
			return nil
		})
	cmd1.Wait() //nolint:errcheck // killed
	if jobID == "" {
		t.Fatalf("no job id before the kill (stream err=%v)", err)
	}

	cmd2 := start()
	defer func() {
		cmd2.Process.Kill() //nolint:errcheck
		cmd2.Wait()         //nolint:errcheck
	}()
	waitUp()

	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, status, err := client.JobStatus(ctx, jobID)
		if err == nil && status == http.StatusOK && st.State == "done" {
			if st.Percent != 100 || st.Attempts < 2 {
				t.Fatalf("replayed job = %+v, want 100%% with a second attempt", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journaled job never completed after restart: %+v status=%d err=%v", st, status, err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Warm stream from the restarted daemon == lssweep stdout.
	results, err := lsnuma.Sweep(ctx, lsnuma.DefaultConfig(), lsnuma.SweepBlock, "mp3d", lsnuma.ScaleSmall,
		lsnuma.RunOptions{Cache: openCache(t, filepath.Join(stateDir, "cache"))})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, pt := range results {
		text, _ := report.SweepCell(pt)
		want.WriteString(text)
	}
	recs, status, err := client.Sweep(ctx, `{"workload":"mp3d","sweep":"block","scale":"small"}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-restart sweep: status=%d err=%v", status, err)
	}
	var got strings.Builder
	for _, r := range recs {
		if r.Type == "cell" {
			got.WriteString(r.Text)
		}
	}
	if got.String() != want.String() {
		t.Errorf("post-SIGKILL sweep is not byte-identical to lssweep stdout:\n--- daemon ---\n%s--- lssweep ---\n%s", got.String(), want.String())
	}
}
