package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lsnuma/internal/server/journal"
)

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJobsEndpoint: a journaled job's ID comes back in the response and
// /api/v1/jobs/<id> reports its terminal state; without a journal the
// endpoint explains how to enable it.
func TestJobsEndpoint(t *testing.T) {
	bare := New(Config{})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp, err := http.Get(tsBare.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	var msg struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&msg) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(msg.Error, "-state-dir") {
		t.Fatalf("journal-less /jobs = %d %q, want 404 pointing at -state-dir", resp.StatusCode, msg.Error)
	}

	srv := New(Config{Journal: openJournal(t, t.TempDir())})
	fakeRunNow(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp = postPoint(t, ts, `{"tenant":"team-a"}`)
	var pr PointResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.JobID == "" {
		t.Fatal("journaled point response missing job_id")
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + pr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "done" || st.Percent != 100 || st.Tenant != "team-a" || st.Attempts != 1 {
		t.Fatalf("job status = %+v, want done/100%%/team-a/1 attempt", st)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != pr.JobID {
		t.Fatalf("job list = %+v, want the one job", list.Jobs)
	}
}

// TestDrainLeavesJournaledJobQueued is the drain/journal race
// regression: a job accepted-and-journaled but still waiting for a slot
// when drain begins must be left queued (never running), so the next
// startup replays it. The sibling of the inflight-before-recheck drain
// test.
func TestDrainLeavesJournaledJobQueued(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{MaxJobs: 1, QueueDepth: 2, Journal: openJournal(t, dir)})
	started, release := fakeRun(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(`{}`))
		if err != nil {
			codes <- -1
			return
		}
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	go post() // job A takes the slot and blocks in fakeRun
	<-started
	go post() // job B is journaled, then waits in the queue
	waitFor(t, func() bool { return srv.QueueDepth() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(t.Context()) }()
	waitFor(t, srv.Draining)

	// B is bounced with 503 while A is still running.
	if got := <-codes; got != http.StatusServiceUnavailable {
		t.Fatalf("queued job during drain = %d, want 503", got)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if got := <-codes; got != http.StatusOK {
		t.Fatalf("in-flight job during drain = %d, want 200", got)
	}

	// The journal (reopened, as a restart would) must hold exactly one
	// record — job B, still queued, never flipped to running. A's done
	// record was compacted away by the clean drain, and the compaction
	// was counted.
	j2 := openJournal(t, dir)
	inc := j2.Incomplete()
	if len(inc) != 1 || inc[0].State != journal.StateQueued {
		t.Fatalf("Incomplete after drain = %+v, want one queued record", inc)
	}
	if got := len(j2.List()); got != 1 {
		t.Fatalf("journal has %d records, want 1 (A compacted away, B queued)", got)
	}
	if got := srv.Metrics().JournalCompacted.Load(); got != 1 {
		t.Fatalf("JournalCompacted = %d, want 1", got)
	}

	// A restarted daemon replays B to completion.
	srv2 := New(Config{Journal: j2})
	fakeRunNow(srv2)
	if n := srv2.Recover(); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	waitFor(t, func() bool {
		rec, ok := j2.Get(inc[0].ID)
		return ok && rec.State == journal.StateDone
	})
	if got := srv2.Metrics().Recovered.Load(); got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
}

// TestTenantQueueCapAndMetrics: a tenant at its queue cap is NACKed
// without affecting other tenants, and both the per-tenant depth gauge
// and rejection counter are exported.
func TestTenantQueueCapAndMetrics(t *testing.T) {
	srv := New(Config{MaxJobs: 1, QueueDepth: 4, TenantQueueDepth: 1})
	started, release := fakeRun(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codes := make(chan int, 8)
	post := func(body string) {
		resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(body))
		if err != nil {
			codes <- -1
			return
		}
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	go post(`{"tenant":"greedy"}`) // takes the slot
	<-started
	go post(`{"tenant":"greedy"}`) // fills greedy's queue (cap 1)
	waitFor(t, func() bool { return srv.QueueDepth() == 1 })

	// Greedy over its cap: immediate 429. Another tenant still queues.
	resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(`{"tenant":"greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap tenant job = %d, want 429", resp.StatusCode)
	}
	go post(`{"tenant":"light"}`)
	waitFor(t, func() bool { return srv.QueueDepth() == 2 })

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(m.Body)
	m.Body.Close()
	text := string(body)
	for _, want := range []string{
		`lsnumad_tenant_queue_depth{tenant="greedy"} 1`,
		`lsnumad_tenant_queue_depth{tenant="light"} 1`,
		`lsnumad_tenant_rejected_total{tenant="greedy"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	close(release)
	for i := 0; i < 3; i++ {
		if got := <-codes; got != http.StatusOK {
			t.Fatalf("admitted job %d = %d, want 200", i, got)
		}
	}
}

// TestJournalCorruptCounterExported: a daemon started over a state dir
// with a corrupt record serves (not crashes) and reports the skip in
// its metrics.
func TestJournalCorruptCounterExported(t *testing.T) {
	dir := t.TempDir()
	jobs := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobs, "trailing.json"), []byte(`{"id":"trailing","state":"run`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Journal: openJournal(t, dir)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(m.Body)
	m.Body.Close()
	if !strings.Contains(string(body), "lsnumad_journal_corrupt_records_total 1") {
		t.Fatalf("metrics missing corrupt-record counter:\n%s", body)
	}
}
