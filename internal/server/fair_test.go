package server

import (
	"testing"
)

// grantOrder drains the queue one slot at a time and records which
// tenant each grant went to.
func grantOrder(t *testing.T, f *fairQueue, waiters []*waiter, grants int) []string {
	t.Helper()
	granted := make(map[*waiter]bool)
	var order []string
	for len(order) < grants {
		progressed := false
		for _, w := range waiters {
			if granted[w] {
				continue
			}
			select {
			case <-w.ready:
				granted[w] = true
				order = append(order, w.tenant)
				progressed = true
			default:
			}
		}
		if !progressed {
			f.release() // hand back a slot, triggering the next DRR grant
		}
		if len(order) > grants {
			t.Fatalf("more grants than releases: %v", order)
		}
	}
	return order
}

// TestFairQueueRoundRobin: with equal-cost jobs queued by a greedy
// tenant and two light tenants, grants interleave across tenants
// instead of draining the greedy FIFO first.
func TestFairQueueRoundRobin(t *testing.T) {
	f := newFairQueue(1, 8, 64, nil)
	// Occupy the only slot so everything below queues.
	if _, granted, _ := f.acquire("greedy", 1); !granted {
		t.Fatal("first acquire should grant immediately")
	}
	var waiters []*waiter
	for i := 0; i < 6; i++ {
		w, granted, rejected := f.acquire("greedy", 4)
		if granted || rejected {
			t.Fatalf("greedy enqueue %d: granted=%v rejected=%v", i, granted, rejected)
		}
		waiters = append(waiters, w)
	}
	for _, tenant := range []string{"light-a", "light-b"} {
		w, granted, rejected := f.acquire(tenant, 4)
		if granted || rejected {
			t.Fatalf("%s enqueue: granted=%v rejected=%v", tenant, granted, rejected)
		}
		waiters = append(waiters, w)
	}

	order := grantOrder(t, f, waiters, 8)
	// Both light tenants must be served within the first three grants:
	// one greedy job per round, not six in a row.
	firstLight := map[string]int{}
	for i, tenant := range order {
		if _, seen := firstLight[tenant]; !seen {
			firstLight[tenant] = i
		}
	}
	if firstLight["light-a"] > 2 || firstLight["light-b"] > 2 {
		t.Fatalf("light tenants served at positions %d and %d of %v, want both within the first 3 grants",
			firstLight["light-a"], firstLight["light-b"], order)
	}
	if f.queueDepth() != 0 {
		t.Fatalf("queueDepth = %d after draining, want 0", f.queueDepth())
	}
	if len(f.tenantDepths()) != 0 {
		t.Fatalf("tenant states leaked: %v", f.tenantDepths())
	}
}

// TestFairQueueBigJobWaits: a tenant's oversized job accumulates
// deficit across visits while small jobs from other tenants keep
// flowing — bounded delay, not head-of-line blocking.
func TestFairQueueBigJobWaits(t *testing.T) {
	f := newFairQueue(1, 8, 64, nil)
	if _, granted, _ := f.acquire("x", 1); !granted {
		t.Fatal("first acquire should grant immediately")
	}
	big, _, _ := f.acquire("heavy", 24) // needs 3 visits of quantum 8
	var smalls []*waiter
	for i := 0; i < 3; i++ {
		w, _, _ := f.acquire("light", 4)
		smalls = append(smalls, w)
	}
	order := grantOrder(t, f, append([]*waiter{big}, smalls...), 4)
	// The light tenant's jobs must not all trail the 24-point job.
	if order[0] == "heavy" {
		t.Fatalf("grant order %v: heavy job served first despite cost 24 vs quantum 8", order)
	}
	last := order[len(order)-1]
	if last != "heavy" {
		// Heavy earns 8 deficit per round; with 3 light jobs interleaved
		// it is served by the final grant at the latest.
		t.Logf("grant order %v (heavy served before the end; acceptable)", order)
	}
}

// TestFairQueueWeightedQuanta: a tenant with a 2x quantum override
// drains roughly twice the points per DRR pass — the paid tier goes
// faster, but the base tenant still earns a grant every round (weighted
// fairness, not starvation).
func TestFairQueueWeightedQuanta(t *testing.T) {
	f := newFairQueue(1, 4, 64, map[string]int{"gold": 8})
	if _, granted, _ := f.acquire("x", 1); !granted {
		t.Fatal("first acquire should grant immediately")
	}
	// 8-point jobs against a base quantum of 4: gold's override covers a
	// whole job per visit while base needs two visits of credit per job.
	var waiters []*waiter
	for i := 0; i < 4; i++ {
		w, granted, rejected := f.acquire("gold", 8)
		if granted || rejected {
			t.Fatalf("gold enqueue %d: granted=%v rejected=%v", i, granted, rejected)
		}
		waiters = append(waiters, w)
		w, granted, rejected = f.acquire("base", 8)
		if granted || rejected {
			t.Fatalf("base enqueue %d: granted=%v rejected=%v", i, granted, rejected)
		}
		waiters = append(waiters, w)
	}

	order := grantOrder(t, f, waiters, 6)
	gold, base := 0, 0
	for _, tenant := range order {
		switch tenant {
		case "gold":
			gold++
		case "base":
			base++
		}
	}
	if gold != 2*base {
		t.Fatalf("grant order %v: gold=%d base=%d, want 2:1 weighting", order, gold, base)
	}
	if base == 0 {
		t.Fatalf("grant order %v: base tenant starved by the weighted tenant", order)
	}
}

// TestFairQueueTenantCap: a tenant at its queue cap is rejected without
// touching other tenants, and the default bucket keeps the full cap.
func TestFairQueueTenantCap(t *testing.T) {
	f := newFairQueue(1, 8, 2, nil)
	f.acquire("x", 1) // occupy the slot
	for i := 0; i < 2; i++ {
		if _, granted, rejected := f.acquire("a", 1); granted || rejected {
			t.Fatalf("a enqueue %d: granted=%v rejected=%v", i, granted, rejected)
		}
	}
	if _, _, rejected := f.acquire("a", 1); !rejected {
		t.Fatal("tenant a over cap should be rejected")
	}
	if _, granted, rejected := f.acquire("b", 1); granted || rejected {
		t.Fatal("tenant b must be unaffected by a's full queue")
	}
	// Anonymous requests land in the default bucket.
	w, granted, rejected := f.acquire("", 1)
	if granted || rejected {
		t.Fatalf("anonymous enqueue: granted=%v rejected=%v", granted, rejected)
	}
	if w.tenant != defaultTenant {
		t.Fatalf("anonymous tenant = %q, want %q", w.tenant, defaultTenant)
	}
	depths := f.tenantDepths()
	if depths["a"] != 2 || depths["b"] != 1 || depths[defaultTenant] != 1 {
		t.Fatalf("tenantDepths = %v", depths)
	}
}

// TestFairQueueMaxTenants: distinct-tenant cardinality is bounded; a
// flood of unique tenant names cannot grow the queue without limit.
func TestFairQueueMaxTenants(t *testing.T) {
	f := newFairQueue(1, 8, 8, nil)
	f.acquire("seed", 1) // occupy the slot
	for i := 0; i < maxTenants; i++ {
		name := "t" + string(rune('A'+i%26)) + string(rune('a'+i/26))
		if _, granted, rejected := f.acquire(name, 1); granted || rejected {
			t.Fatalf("tenant %d (%s): granted=%v rejected=%v", i, name, granted, rejected)
		}
	}
	if _, _, rejected := f.acquire("one-too-many", 1); !rejected {
		t.Fatalf("tenant %d should be rejected (cardinality cap)", maxTenants+1)
	}
	// Existing tenants still enqueue fine.
	if _, granted, rejected := f.acquire("tAa", 1); granted || rejected {
		t.Fatal("existing tenant must not be affected by the cardinality cap")
	}
}

// TestFairQueueAbandon: withdrawing a waiter removes it cleanly, and
// abandoning after the grant reports the owned slot so the caller can
// release it.
func TestFairQueueAbandon(t *testing.T) {
	f := newFairQueue(1, 8, 64, nil)
	f.acquire("x", 1)
	w1, _, _ := f.acquire("a", 1)
	w2, _, _ := f.acquire("a", 1)
	if granted := f.abandon(w1); granted {
		t.Fatal("abandon of a queued waiter reported granted")
	}
	if f.queueDepth() != 1 {
		t.Fatalf("queueDepth = %d after abandon, want 1", f.queueDepth())
	}
	f.release() // grants w2
	select {
	case <-w2.ready:
	default:
		t.Fatal("w2 not granted after release")
	}
	if granted := f.abandon(w2); !granted {
		t.Fatal("abandon after grant must report the owned slot")
	}
	f.release() // the caller's duty after a granted abandon
	// Queue is empty; the slot must be immediately available again.
	if _, granted, _ := f.acquire("z", 1); !granted {
		t.Fatal("slot lost after abandon/release cycle")
	}
	if len(f.tenantDepths()) != 0 {
		t.Fatalf("tenant states leaked: %v", f.tenantDepths())
	}
}
