package server

import (
	"slices"
	"strings"
	"testing"

	"lsnuma"
)

// FuzzParseJobRequest drives the daemon's job-request decode path with
// hostile bodies: whatever parses must satisfy the invariants every
// handler (and the journal replay path) relies on — a valid workload, a
// validated config, and a tenant name safe to use as a file-system and
// metric label token.
func FuzzParseJobRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"workload":"mp3d","sweep":"block","tenant":"team-a"}`,
		`{"workload":"oltp","scale":"small","config":{"Protocol":"LS"}}`,
		`{"tenant":"../../etc/passwd"}`,
		`{"tenant":"` + strings.Repeat("a", 64) + `"}`,
		`{"tenant":""}`,
		`{"config":{"Nodes":1073741824}}`,
		`{"config":{"BlockSize":0}}`,
		`{"workload":"mp3d","workload":"oltp"}`,
		`{"point_timeout_ms":-5}`,
		`{"config":{"Nodes":-3}}`,
		`[1,2,3]`,
		`"just a string"`,
		"\x00\x01\x02",
		`{"config":"not an object"}`,
		`{"sweep":"voltage"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, base, scale, err := parseJobBytes(data)
		if err != nil {
			return // rejection is always acceptable; crashing is not
		}
		if req.Tenant != "" && !tenantPattern.MatchString(req.Tenant) {
			t.Fatalf("accepted unsafe tenant %q", req.Tenant)
		}
		if !slices.Contains(lsnuma.Workloads(), req.Workload) {
			t.Fatalf("accepted unknown workload %q", req.Workload)
		}
		if err := base.Validate(); err != nil {
			t.Fatalf("accepted invalid config: %v", err)
		}
		if scale.String() == "" {
			t.Fatalf("accepted request with unnamed scale %v", scale)
		}
		// A parsed sweep request must expand deterministically or fail
		// cleanly — the same call the handler and journal replay make.
		if req.Sweep != "" {
			if _, _, _, err := sweepSpec(req, base, scale, 4096); err == nil {
				if _, _, again, err2 := sweepSpec(req, base, scale, 4096); err2 != nil || len(again) == 0 {
					t.Fatalf("sweep expansion not reproducible: %v", err2)
				}
			}
		}
	})
}
