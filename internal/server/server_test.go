package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lsnuma"
)

// fakeRun installs a runAll seam that signals each call's start on
// started, blocks until release is closed, then produces one zero
// Result per point (invoking OnPoint in order).
func fakeRun(s *Server) (started chan struct{}, release chan struct{}) {
	started = make(chan struct{}, 64)
	release = make(chan struct{})
	s.runAll = func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		out := make([]lsnuma.PointResult, len(points))
		for i, pt := range points {
			out[i] = lsnuma.PointResult{Point: pt}
			if ctx.Err() != nil {
				out[i].Err = ctx.Err()
			} else {
				out[i].Result = &lsnuma.Result{}
			}
			if opt.OnPoint != nil && ctx.Err() == nil {
				opt.OnPoint(i, out[i])
			}
		}
		return out, ctx.Err()
	}
	return started, release
}

func postPoint(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/point: %v", err)
	}
	return resp
}

// TestAdmissionControl saturates a 1-slot, 1-deep server and checks
// the third arrival is NACKed with 429 + Retry-After while the first
// two eventually complete.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{MaxJobs: 1, QueueDepth: 1})
	started, release := fakeRun(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type res struct {
		status int
		err    error
	}
	results := make(chan res, 2)
	do := func() {
		resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(`{}`))
		if err != nil {
			results <- res{err: err}
			return
		}
		resp.Body.Close()
		results <- res{status: resp.StatusCode}
	}

	go do() // takes the slot
	<-started
	go do() // waits in the queue
	waitFor(t, func() bool { return srv.QueueDepth() == 1 })

	// Queue full: this one must bounce immediately.
	resp := postPoint(t, ts, `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After header")
	}
	resp.Body.Close()

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("admitted job %d: status=%d err=%v, want 200", i, r.status, r.err)
		}
	}
	m := srv.Metrics()
	if got := m.Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if got := m.Admitted.Load(); got != 2 {
		t.Errorf("Admitted = %d, want 2", got)
	}
	if got := m.QueuedTotal.Load(); got != 1 {
		t.Errorf("QueuedTotal = %d, want 1", got)
	}
}

// TestPanicIsolation: a panicking job becomes a structured 500 and the
// daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	srv := New(Config{MaxJobs: 2})
	srv.runAll = func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
		panic("handler bug")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postPoint(t, ts, `{}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job status = %d, want 500", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
		Stack string `json:"stack"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode 500 body: %v", err)
	}
	if !strings.Contains(body.Error, "handler bug") || body.Stack == "" {
		t.Fatalf("500 body = %+v, want panic message and stack", body)
	}
	if got := srv.Metrics().Panics.Load(); got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
	// Slot released despite the panic: the daemon still serves jobs.
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status=%v err=%v", h.StatusCode, err)
	}
	h.Body.Close()
	if srv.Inflight() != 0 {
		t.Errorf("inflight = %d after panic, want 0", srv.Inflight())
	}
}

// TestGracefulDrain: drain stops admissions with 503, waits for the
// in-flight job, and completes with zero dropped jobs.
func TestGracefulDrain(t *testing.T) {
	srv := New(Config{MaxJobs: 1})
	started, release := fakeRun(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	okCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(`{}`))
		if err != nil {
			okCh <- -1
			return
		}
		resp.Body.Close()
		okCh <- resp.StatusCode
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, srv.Draining)

	resp := postPoint(t, ts, `{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain status = %d, want 503", h.StatusCode)
	}
	h.Body.Close()

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a job still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	if got := <-okCh; got != http.StatusOK {
		t.Fatalf("in-flight job during drain finished with %d, want 200", got)
	}
	if srv.Inflight() != 0 || srv.QueueDepth() != 0 {
		t.Fatalf("post-drain inflight=%d queue=%d, want 0/0", srv.Inflight(), srv.QueueDepth())
	}
}

// TestDrainDeadline: an expired drain context aborts in-flight jobs
// through their contexts instead of hanging forever.
func TestDrainDeadline(t *testing.T) {
	srv := New(Config{MaxJobs: 1})
	started, release := fakeRun(srv)
	defer close(release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codeCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(`{}`))
		if err != nil {
			codeCh <- -1
			return
		}
		resp.Body.Close()
		codeCh <- resp.StatusCode
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	// The aborted job reports 503 (cancelled by the server, not the client).
	if got := <-codeCh; got != http.StatusServiceUnavailable {
		t.Fatalf("aborted job status = %d, want 503", got)
	}
}

// TestBadRequests: malformed jobs are rejected up front with 400.
func TestBadRequests(t *testing.T) {
	srv := New(Config{})
	fakeRunNow(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
	}{
		{"bad workload", "/api/v1/point", `{"workload":"spice"}`},
		{"bad scale", "/api/v1/point", `{"scale":"huge"}`},
		{"unknown config field", "/api/v1/point", `{"config":{"Bogus":1}}`},
		{"unknown top-level field", "/api/v1/point", `{"bogus":1}`},
		{"missing sweep", "/api/v1/sweep", `{"workload":"mp3d"}`},
		{"bad sweep", "/api/v1/sweep", `{"sweep":"voltage"}`},
		{"invalid config", "/api/v1/point", `{"config":{"Nodes":-3}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// fakeRunNow installs a seam that completes instantly with zero-value
// results.
func fakeRunNow(s *Server) {
	s.runAll = func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
		out := make([]lsnuma.PointResult, len(points))
		for i, pt := range points {
			out[i] = lsnuma.PointResult{Point: pt, Result: &lsnuma.Result{}}
			if opt.OnPoint != nil {
				opt.OnPoint(i, out[i])
			}
		}
		return out, nil
	}
}

// TestSweepStreamOrder: cells stream in grid order even when points
// complete in reverse, and the stream is framed job/cell.../done.
func TestSweepStreamOrder(t *testing.T) {
	srv := New(Config{MaxJobs: 1})
	srv.runAll = func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
		out := make([]lsnuma.PointResult, len(points))
		for i := len(points) - 1; i >= 0; i-- { // complete in reverse
			out[i] = lsnuma.PointResult{Point: points[i], Result: &lsnuma.Result{}}
			if opt.OnPoint != nil {
				opt.OnPoint(i, out[i])
			}
		}
		return out, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/sweep", "application/json",
		strings.NewReader(`{"workload":"mp3d","sweep":"block"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var recs []StreamRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// block sweep: 4 grid points.
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6 (job, 4 cells, done)", len(recs))
	}
	if recs[0].Type != "job" || recs[0].Cells != 4 || recs[0].Points != 4*len(lsnuma.Protocols()) {
		t.Errorf("header = %+v, want job with 4 cells", recs[0])
	}
	for i, rec := range recs[1:5] {
		if rec.Type != "cell" || rec.Index != i {
			t.Errorf("record %d = type %q index %d, want cell %d", i+1, rec.Type, rec.Index, i)
		}
		if rec.Text == "" || !strings.HasPrefix(rec.Text, rec.Label+":") {
			t.Errorf("cell %d text %q does not start with its label %q", i, rec.Text, rec.Label)
		}
	}
	if last := recs[5]; last.Type != "done" || last.Failed != 0 {
		t.Errorf("trailer = %+v, want done with 0 failed", last)
	}
}

// TestCompareStream: per-protocol points stream in Protocols() order
// with a correct trailer, and failures carry error + repro fields.
func TestCompareStream(t *testing.T) {
	srv := New(Config{MaxJobs: 1})
	srv.runAll = func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error) {
		out := make([]lsnuma.PointResult, len(points))
		for i, pt := range points {
			out[i] = lsnuma.PointResult{Point: pt, Result: &lsnuma.Result{}}
			if i == 1 {
				out[i] = lsnuma.PointResult{Point: pt, Err: fmt.Errorf("boom"),
					Repro: &lsnuma.ReproBundle{Config: pt.Config, Workload: pt.Workload, Scale: pt.Scale, Stack: "stack"}}
			}
			if opt.OnPoint != nil {
				opt.OnPoint(i, out[i])
			}
		}
		return out, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/compare", "application/json",
		strings.NewReader(`{"workload":"cholesky"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var recs []StreamRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	protos := lsnuma.Protocols()
	if len(recs) != len(protos)+2 {
		t.Fatalf("got %d records, want %d", len(recs), len(protos)+2)
	}
	for i, p := range protos {
		rec := recs[i+1]
		if rec.Type != "point" || rec.Index != i || rec.Protocol != string(p) {
			t.Errorf("record %d = %+v, want point %d proto %s", i+1, rec, i, p)
		}
	}
	if recs[2].Error == "" || recs[2].Repro == nil || recs[2].Repro.StackBytes == 0 {
		t.Errorf("failed point record = %+v, want error and repro with stack bytes", recs[2])
	}
	if last := recs[len(recs)-1]; last.Type != "done" || last.Failed != 1 {
		t.Errorf("trailer = %+v, want done with 1 failed", last)
	}
}

// TestMetricsEndpoint: the exposition includes the load-bearing series.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	fakeRunNow(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postPoint(t, ts, `{}`)
	resp.Body.Close()

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(m.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	text := sb.String()
	for _, want := range []string{
		"lsnumad_queue_depth 0",
		"lsnumad_inflight_jobs 0",
		"lsnumad_jobs_admitted_total 1",
		"lsnumad_jobs_completed_total 1",
		"lsnumad_points_computed_total 1",
		"lsnumad_cache_dedups_total",
		"lsnumad_request_duration_ms_count{endpoint=\"point\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConcurrentJobsShareCache drives two real (non-seam) point jobs of
// the same cold key through the daemon concurrently and checks the
// single-flight layer collapsed them into one simulation.
func TestConcurrentJobsShareCache(t *testing.T) {
	srv := New(Config{MaxJobs: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"workload":"mp3d","config":{"Protocol":"LS"}}`
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/v1/point", "application/json", strings.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("job %d status = %d, want 200", i, c)
		}
	}
	m := srv.Metrics()
	computed, deduped := m.PointsComputed.Load(), m.PointsDeduped.Load()
	if computed+deduped != 2 || computed < 1 {
		t.Fatalf("computed=%d deduped=%d, want them to sum to 2 with at least one compute", computed, deduped)
	}
	// Identical concurrent points may or may not overlap in time; when
	// they do, exactly one simulates. Either way never two dedups.
	if deduped > 1 {
		t.Fatalf("deduped=%d, want at most 1", deduped)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within 5s")
}
