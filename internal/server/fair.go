package server

import "sync"

// defaultTenant is the admission bucket for requests that carry no
// tenant field. Anonymous clients all share it, which degenerates to
// exactly the pre-fairness behavior: one FIFO queue with the full
// QueueDepth cap.
const defaultTenant = "default"

// maxTenants bounds the number of distinct tenants with queued jobs at
// once. Beyond it new tenants are NACKed like a full queue — it caps
// total queued work at maxTenants*tenantCap and stops a tenant-name
// cardinality attack from growing the queue (and the metrics) without
// bound.
const maxTenants = 64

// waiter is one job waiting for an execution slot. Its ready channel is
// closed (under the queue mutex) when the slot is granted.
type waiter struct {
	tenant string
	cost   int // job size in points — the DRR currency
	ready  chan struct{}
}

// tenantState is one tenant's FIFO plus its running DRR deficit.
type tenantState struct {
	name    string
	queue   []*waiter
	deficit int
}

// fairQueue allocates a fixed pool of execution slots across tenants by
// deficit round-robin: each tenant with queued work is visited in turn,
// earns quantum deficit per visit, and may start jobs while its head
// job's cost fits the accumulated deficit. Big jobs therefore wait for
// a few visits' worth of deficit while small jobs from other tenants
// keep flowing — bounded per-tenant delay instead of FCFS head-of-line
// blocking, the same trade the bus service disciplines make.
//
// Within one tenant order stays FIFO, so a deployment with only
// anonymous clients (everything in the default bucket) behaves exactly
// like the old single queue.
// Per-tenant quantum overrides (see newFairQueue) weight the service
// rates: a tenant earning 2x the quantum per visit drains roughly twice
// the points per round — paid tiers without starving anyone, since every
// tenant still earns a positive deficit every pass.
type fairQueue struct {
	mu        sync.Mutex
	free      int            // available execution slots
	quantum   int            // default deficit earned per DRR visit, in points
	quanta    map[string]int // per-tenant quantum overrides (nil = none)
	tenantCap int            // per-tenant queue depth bound

	tenants map[string]*tenantState // tenants with queued waiters
	active  []*tenantState          // round-robin ring over tenants
	rr      int                     // next ring position to visit
	depth   int                     // total queued waiters
}

func newFairQueue(slots, quantum, tenantCap int, quanta map[string]int) *fairQueue {
	return &fairQueue{
		free:      slots,
		quantum:   quantum,
		quanta:    quanta,
		tenantCap: tenantCap,
		tenants:   make(map[string]*tenantState),
	}
}

// quantumFor returns the deficit a named tenant earns per DRR visit:
// its override when one is configured, the default otherwise.
func (f *fairQueue) quantumFor(tenant string) int {
	if q, ok := f.quanta[tenant]; ok && q > 0 {
		return q
	}
	return f.quantum
}

// acquire requests a slot for a job of the given cost. Exactly one of
// the three outcomes holds: granted (the caller owns a slot now), a
// non-nil waiter (wait on w.ready; the grant transfers slot ownership),
// or rejected (tenant queue full, or too many distinct tenants).
func (f *fairQueue) acquire(tenant string, cost int) (w *waiter, granted, rejected bool) {
	if tenant == "" {
		tenant = defaultTenant
	}
	if cost < 1 {
		cost = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Invariant: free > 0 implies depth == 0 (dispatch drains one or the
	// other), so an idle slot with nobody queued is an immediate grant —
	// no DRR bookkeeping, no waiter allocation.
	if f.free > 0 && f.depth == 0 {
		f.free--
		return nil, true, false
	}
	ts := f.tenants[tenant]
	if ts == nil {
		if len(f.tenants) >= maxTenants {
			return nil, false, true
		}
		ts = &tenantState{name: tenant}
		f.tenants[tenant] = ts
	}
	if len(ts.queue) >= f.tenantCap {
		if len(ts.queue) == 0 { // tenantCap 0 corner: drop the empty state
			delete(f.tenants, tenant)
		}
		return nil, false, true
	}
	w = &waiter{tenant: tenant, cost: cost, ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	if len(ts.queue) == 1 {
		f.active = append(f.active, ts)
	}
	f.depth++
	return w, false, false
}

// release returns a slot to the pool and hands it (and any others idle)
// to queued waiters by DRR.
func (f *fairQueue) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free++
	f.dispatch()
}

// dispatch grants free slots to queued waiters: visit tenants round-
// robin, earn quantum per visit, start head jobs whose cost fits the
// deficit. f.mu held. Terminates because each full ring pass strictly
// grows every remaining head's deficit.
func (f *fairQueue) dispatch() {
	for f.free > 0 && len(f.active) > 0 {
		if f.rr >= len(f.active) {
			f.rr = 0
		}
		ts := f.active[f.rr]
		ts.deficit += f.quantumFor(ts.name)
		for f.free > 0 && len(ts.queue) > 0 && ts.queue[0].cost <= ts.deficit {
			w := ts.queue[0]
			ts.queue = ts.queue[1:]
			ts.deficit -= w.cost
			f.depth--
			f.free--
			close(w.ready)
		}
		if len(ts.queue) == 0 {
			// An idle tenant keeps no deficit — credit accrues only
			// while it has work queued, so a long-idle tenant cannot
			// bank a burst.
			delete(f.tenants, ts.name)
			f.active = append(f.active[:f.rr], f.active[f.rr+1:]...)
			// rr now indexes the next tenant; no advance.
		} else {
			f.rr++
		}
	}
}

// abandon withdraws a waiter that stopped waiting (client gone, drain).
// Returns true when the grant already happened — the slot is the
// caller's and must be released like any finished job.
func (f *fairQueue) abandon(w *waiter) (granted bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-w.ready:
		// close(ready) happens under f.mu, so this check is race-free:
		// either the grant committed before we got the lock (the slot is
		// ours) or it can never happen (we are about to dequeue).
		return true
	default:
	}
	ts := f.tenants[w.tenant]
	if ts == nil {
		return false
	}
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			f.depth--
			break
		}
	}
	if len(ts.queue) == 0 {
		delete(f.tenants, w.tenant)
		for i, a := range f.active {
			if a == ts {
				f.active = append(f.active[:i], f.active[i+1:]...)
				if f.rr > i {
					f.rr--
				}
				break
			}
		}
	}
	return false
}

// queueDepth returns the total number of queued waiters.
func (f *fairQueue) queueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.depth
}

// tenantDepths snapshots per-tenant queue depths for the metrics
// endpoint.
func (f *fairQueue) tenantDepths() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.tenants))
	for name, ts := range f.tenants {
		out[name] = len(ts.queue)
	}
	return out
}
