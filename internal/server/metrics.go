package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// sortedKeys returns a map's keys in sorted order for deterministic
// metric rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// histBoundsMs are the latency histogram bucket upper bounds in
// milliseconds; a final +Inf bucket catches everything beyond. The
// range spans a warm cache hit (~1 ms) to a paper-scale cold sweep
// (minutes).
var histBoundsMs = [...]uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// histogram is a fixed-bucket, lock-free latency histogram.
type histogram struct {
	buckets [len(histBoundsMs) + 1]atomic.Uint64
	sumMs   atomic.Uint64
	count   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ms := uint64(d.Milliseconds())
	i := sort.Search(len(histBoundsMs), func(i int) bool { return ms <= histBoundsMs[i] })
	h.buckets[i].Add(1)
	h.sumMs.Add(ms)
	h.count.Add(1)
}

// quantile returns an upper-bound estimate (bucket boundary) of the
// q-quantile in milliseconds; 0 when the histogram is empty.
func (h *histogram) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i < len(histBoundsMs) {
				return histBoundsMs[i]
			}
			return histBoundsMs[len(histBoundsMs)-1] * 2 // +Inf bucket: beyond the largest bound
		}
	}
	return 0
}

// endpoints are the job endpoints carrying latency histograms.
var endpoints = []string{"point", "sweep", "compare"}

// Metrics is the daemon's observable state: admission and job counters,
// per-point outcome counters (the stampede test's "exactly one compute"
// assertion reads PointsComputed), aggregated resilience counters from
// the simulated runs, and per-endpoint latency histograms. All fields
// are safe for concurrent use.
type Metrics struct {
	// Admission control.
	Admitted         atomic.Uint64 // jobs that got a slot
	QueuedTotal      atomic.Uint64 // jobs that had to wait for a slot
	Rejected         atomic.Uint64 // 429: queue full
	RejectedDraining atomic.Uint64 // 503: drain in progress
	AbandonedQueue   atomic.Uint64 // client gone while waiting for a slot

	// Job outcomes.
	Completed   atomic.Uint64 // jobs that ran to completion (holes included)
	JobFailures atomic.Uint64 // jobs with at least one failed point
	Panics      atomic.Uint64 // handler panics caught by the isolation wrapper

	// Per-point outcomes across all jobs.
	PointsComputed atomic.Uint64 // fresh simulations
	PointsCached   atomic.Uint64 // served from the persistent cache
	PointsDeduped  atomic.Uint64 // shared from a concurrent in-flight compute
	PointsFailed   atomic.Uint64 // errors, panics, timeouts, cancellations

	// Resilience counters summed over every completed point's Result
	// (the service-layer mirror of the PR 4 MSHR/NACK machinery).
	Nacks   atomic.Uint64
	Retries atomic.Uint64

	// Durability counters (journal-backed daemons only).
	Recovered        atomic.Uint64 // journaled jobs replayed at startup
	JournalCorrupt   atomic.Uint64 // corrupt journal records skipped at startup
	JournalCompacted atomic.Uint64 // terminal journal records dropped by compaction

	// jobDurEWMAms is an exponentially-weighted moving average of job
	// wall time, feeding the Retry-After estimate on 429s. retrySeed is
	// the assumed job duration before the first completion lands.
	jobDurEWMAms atomic.Uint64
	retrySeed    time.Duration

	// tenantRejected counts per-tenant 429s. Cardinality is bounded by
	// the fair queue's maxTenants plus an overflow bucket.
	tenantMu       sync.Mutex
	tenantRejected map[string]uint64

	hist map[string]*histogram
}

func newMetrics(retrySeed time.Duration) *Metrics {
	if retrySeed <= 0 {
		retrySeed = time.Second
	}
	m := &Metrics{
		retrySeed:      retrySeed,
		tenantRejected: make(map[string]uint64),
		hist:           make(map[string]*histogram, len(endpoints)),
	}
	for _, e := range endpoints {
		m.hist[e] = &histogram{}
	}
	return m
}

// rejectTenant accounts one per-tenant 429. Tenants beyond the fair
// queue's cardinality bound collapse into an "other" series so a flood
// of unique names cannot grow the exposition without limit.
func (m *Metrics) rejectTenant(tenant string) {
	if tenant == "" {
		tenant = defaultTenant
	}
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if _, ok := m.tenantRejected[tenant]; !ok && len(m.tenantRejected) >= maxTenants {
		tenant = "other"
	}
	m.tenantRejected[tenant]++
}

// observe records one finished job on endpoint's histogram and folds
// its duration into the Retry-After EWMA.
func (m *Metrics) observe(endpoint string, d time.Duration) {
	if h, ok := m.hist[endpoint]; ok {
		h.observe(d)
	}
	ms := uint64(d.Milliseconds())
	for {
		old := m.jobDurEWMAms.Load()
		ewma := ms
		if old != 0 {
			ewma = (3*old + ms) / 4
		}
		if m.jobDurEWMAms.CompareAndSwap(old, ewma) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a rejected client should back
// off: the queue ahead of it, in units of average job time over the
// available slots, floored at one second. Before the first job
// completes the EWMA is empty and the configured seed stands in — the
// estimate still scales with queue depth on a cold daemon instead of
// collapsing to the floor.
func (m *Metrics) retryAfterSeconds(queued int64, slots int) int {
	ewma := time.Duration(m.jobDurEWMAms.Load()) * time.Millisecond
	if ewma == 0 {
		ewma = m.retrySeed
	}
	if slots < 1 {
		slots = 1
	}
	est := ewma * time.Duration(queued+1) / time.Duration(slots)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// point accounts one completed point's outcome (and its resilience
// counters) into the per-point totals.
func (m *Metrics) point(failed, cached, deduped bool, nacks, retries uint64) {
	switch {
	case failed:
		m.PointsFailed.Add(1)
	case cached:
		m.PointsCached.Add(1)
	case deduped:
		m.PointsDeduped.Add(1)
	default:
		m.PointsComputed.Add(1)
	}
	m.Nacks.Add(nacks)
	m.Retries.Add(retries)
}

// metricsSnapshotGauges are the live gauges rendered alongside the
// counters; the server passes them in at render time.
type gauges struct {
	queueDepth int64
	inflight   int64
	draining   bool
	cacheHits  uint64
	cacheMiss  uint64
	cacheSkips uint64
	cacheErrs  uint64
	cacheDedup uint64
	// tenantDepth is the per-tenant queue depth snapshot (nil when the
	// fair queue has no waiters).
	tenantDepth map[string]int
}

// write renders the metrics in the Prometheus text exposition format.
func (m *Metrics) write(w io.Writer, g gauges) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	gauge("lsnumad_queue_depth", "jobs waiting for an execution slot", g.queueDepth)
	gauge("lsnumad_inflight_jobs", "jobs currently executing", g.inflight)
	draining := int64(0)
	if g.draining {
		draining = 1
	}
	gauge("lsnumad_draining", "1 while the daemon is draining", draining)

	counter("lsnumad_jobs_admitted_total", "jobs admitted to an execution slot", m.Admitted.Load())
	counter("lsnumad_jobs_queued_total", "admitted jobs that waited in the queue first", m.QueuedTotal.Load())
	counter("lsnumad_jobs_rejected_total", "jobs rejected with 429 (queue full)", m.Rejected.Load())
	counter("lsnumad_jobs_rejected_draining_total", "jobs rejected with 503 (draining)", m.RejectedDraining.Load())
	counter("lsnumad_jobs_abandoned_total", "queued jobs whose client disconnected before a slot freed", m.AbandonedQueue.Load())
	counter("lsnumad_jobs_completed_total", "jobs that ran to completion", m.Completed.Load())
	counter("lsnumad_jobs_failed_total", "completed jobs with at least one failed point", m.JobFailures.Load())
	counter("lsnumad_handler_panics_total", "handler panics caught by the isolation wrapper", m.Panics.Load())

	counter("lsnumad_points_computed_total", "points freshly simulated", m.PointsComputed.Load())
	counter("lsnumad_points_cached_total", "points served from the persistent result cache", m.PointsCached.Load())
	counter("lsnumad_points_deduped_total", "points shared from a concurrent identical computation", m.PointsDeduped.Load())
	counter("lsnumad_points_failed_total", "points that failed (error, panic, timeout, cancel)", m.PointsFailed.Load())

	counter("lsnumad_cache_hits_total", "result cache hits", g.cacheHits)
	counter("lsnumad_cache_misses_total", "result cache misses", g.cacheMiss)
	counter("lsnumad_cache_skips_total", "points ineligible for caching", g.cacheSkips)
	counter("lsnumad_cache_errors_total", "failed cache operations", g.cacheErrs)
	counter("lsnumad_cache_dedups_total", "single-flight shares in the cache layer", g.cacheDedup)

	counter("lsnumad_sim_nacks_total", "directory NACKs across all simulated points", m.Nacks.Load())
	counter("lsnumad_sim_retries_total", "transaction retries across all simulated points", m.Retries.Load())

	counter("lsnumad_jobs_recovered_total", "journaled jobs replayed after a restart", m.Recovered.Load())
	counter("lsnumad_journal_corrupt_records_total", "corrupt journal records skipped at startup", m.JournalCorrupt.Load())
	counter("lsnumad_journal_compacted_records_total", "completed journal records dropped by compaction", m.JournalCompacted.Load())

	// Per-tenant series: HELP/TYPE once per family, then one sample per
	// tenant in sorted order (deterministic output for tests and diffs).
	fmt.Fprintf(w, "# HELP lsnumad_tenant_queue_depth queued jobs by tenant\n# TYPE lsnumad_tenant_queue_depth gauge\n")
	for _, tenant := range sortedKeys(g.tenantDepth) {
		fmt.Fprintf(w, "lsnumad_tenant_queue_depth{tenant=%q} %d\n", tenant, g.tenantDepth[tenant])
	}
	m.tenantMu.Lock()
	rejected := make(map[string]uint64, len(m.tenantRejected))
	for k, v := range m.tenantRejected {
		rejected[k] = v
	}
	m.tenantMu.Unlock()
	fmt.Fprintf(w, "# HELP lsnumad_tenant_rejected_total jobs rejected with 429 by tenant\n# TYPE lsnumad_tenant_rejected_total counter\n")
	for _, tenant := range sortedKeys(rejected) {
		fmt.Fprintf(w, "lsnumad_tenant_rejected_total{tenant=%q} %d\n", tenant, rejected[tenant])
	}

	fmt.Fprintf(w, "# HELP lsnumad_request_duration_ms job latency by endpoint\n# TYPE lsnumad_request_duration_ms histogram\n")
	for _, e := range endpoints {
		h := m.hist[e]
		var cum uint64
		for i, bound := range histBoundsMs {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "lsnumad_request_duration_ms_bucket{endpoint=%q,le=%q} %d\n", e, strconv.FormatUint(bound, 10), cum)
		}
		cum += h.buckets[len(histBoundsMs)].Load()
		fmt.Fprintf(w, "lsnumad_request_duration_ms_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, cum)
		fmt.Fprintf(w, "lsnumad_request_duration_ms_sum{endpoint=%q} %d\n", e, h.sumMs.Load())
		fmt.Fprintf(w, "lsnumad_request_duration_ms_count{endpoint=%q} %d\n", e, h.count.Load())
	}
}
