// Package server implements lsnumad, the sweep-as-a-service daemon:
// an HTTP front end that multiplexes sweep/point/compare jobs from many
// clients onto the bounded runner pool, shares one result cache (with
// single-flight stampede protection) across all of them, and degrades
// under pressure instead of falling over.
//
// The service applies the paper's resource-exhaustion discipline (PR 4's
// bounded MSHRs with NACK/retry) at the job layer: a bounded execution
// pool, a bounded admission queue, and an explicit 429 + Retry-After
// NACK when both are full. Panics in a job are isolated to a structured
// 500 carrying the repro bundle; SIGTERM triggers a graceful drain that
// stops admitting, finishes in-flight jobs and exits within a deadline.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lsnuma"
	"lsnuma/internal/report"
	"lsnuma/internal/version"
	"lsnuma/internal/workload"
)

// maxRequestBytes bounds a job request body; configs are small.
const maxRequestBytes = 1 << 20

// Config parameterizes a Server. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// MaxJobs bounds the number of jobs executing at once (default 2).
	// Each job runs its points on its own RunAll pool, so total
	// simulation parallelism is roughly MaxJobs * Parallelism.
	MaxJobs int
	// QueueDepth bounds the number of jobs allowed to wait for an
	// execution slot (default 8). Arrivals beyond it are NACKed with
	// 429 and a Retry-After estimate.
	QueueDepth int
	// Parallelism is each job's RunAll worker bound (default 0: all
	// cores).
	Parallelism int
	// PointTimeout is the server-wide per-point wall-clock ceiling
	// (0 = none). Requests may lower it per job, never raise it.
	PointTimeout time.Duration
	// MaxPointsPerJob rejects absurdly large jobs up front (default
	// 4096, matching the runner's practical ceiling).
	MaxPointsPerJob int
	// Cache is the shared result cache. Nil selects a dedup-only cache
	// (lsnuma.NewDedupCache): no persistence, but concurrent identical
	// points across all clients still collapse into one simulation.
	Cache *lsnuma.ResultCache
	// Version is reported by /version and /healthz (default the build's
	// stamped version).
	Version string
}

// Server is the daemon core: admission control, job execution, metrics
// and drain. Create with New, mount Handler on an http.Server, and call
// Drain on shutdown.
type Server struct {
	cfg     Config
	cache   *lsnuma.ResultCache
	metrics *Metrics
	mux     *http.ServeMux

	slots    chan struct{} // execution slots, cap MaxJobs
	queued   atomic.Int64  // jobs waiting for a slot
	inflight atomic.Int64  // jobs holding a slot

	draining  atomic.Bool
	drainCh   chan struct{} // closed when draining starts
	drainOnce sync.Once

	jobsCtx  context.Context // cancelled to abort in-flight simulations
	stopJobs context.CancelFunc

	// runAll is a test seam over lsnuma.RunAll.
	runAll func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error)
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxPointsPerJob <= 0 {
		cfg.MaxPointsPerJob = 4096
	}
	if cfg.Cache == nil {
		cfg.Cache = lsnuma.NewDedupCache()
	}
	if cfg.Version == "" {
		cfg.Version = version.Version
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
		slots:    make(chan struct{}, cfg.MaxJobs),
		drainCh:  make(chan struct{}),
		jobsCtx:  ctx,
		stopJobs: cancel,
		runAll:   lsnuma.RunAll,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("POST /api/v1/point", s.isolate(s.handlePoint))
	s.mux.HandleFunc("POST /api/v1/sweep", s.isolate(s.handleSweep))
	s.mux.HandleFunc("POST /api/v1/compare", s.isolate(s.handleCompare))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters for tests and embedding binaries.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the current number of jobs waiting for a slot.
func (s *Server) QueueDepth() int64 { return s.queued.Load() }

// Inflight returns the current number of jobs holding a slot.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Drain performs a graceful shutdown of the job layer: stop admitting
// (new arrivals get 503, queued waiters are bounced), let in-flight
// jobs finish, and return once queue and pool are both empty. If ctx
// expires first, in-flight simulations are aborted via their contexts
// and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.queued.Load() == 0 && s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.stopJobs()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close aborts everything immediately (used after a failed Drain).
func (s *Server) Close() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	s.stopJobs()
}

// ---------------------------------------------------------------------
// Admission control.

// admit implements the NACK discipline in front of the execution pool.
// It returns a release function and true when the job may run; on false
// the response has already been written (429 queue-full with
// Retry-After, 503 draining) or the client is gone.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.draining.Load() {
		s.rejectDraining(w)
		return nil, false
	}
	got := false
	select {
	case s.slots <- struct{}{}:
		got = true
	default:
	}
	if !got {
		if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			s.metrics.Rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSeconds(q-1, s.cfg.MaxJobs)))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"error": "job queue is full; retry after the indicated backoff",
			})
			return nil, false
		}
		s.metrics.QueuedTotal.Add(1)
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
		case <-r.Context().Done():
			s.queued.Add(-1)
			s.metrics.AbandonedQueue.Add(1)
			return nil, false
		case <-s.drainCh:
			s.queued.Add(-1)
			s.rejectDraining(w)
			return nil, false
		}
	}
	// Publish the in-flight claim before re-checking the drain flag:
	// if Drain's zero-poll missed this increment it must have stored
	// the flag first, so we observe it here and bounce — no job can
	// slip past a completed drain.
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		<-s.slots
		s.rejectDraining(w)
		return nil, false
	}
	s.metrics.Admitted.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.inflight.Add(-1)
			<-s.slots
		})
	}, true
}

func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.metrics.RejectedDraining.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": "daemon is draining; no new jobs accepted",
	})
}

// jobContext derives a job's context: cancelled when the client goes
// away, when the request handler returns, or when the server aborts
// in-flight work (drain deadline, Close).
func (s *Server) jobContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.jobsCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// isolate wraps a job handler so a panic becomes a structured 500 (or a
// trailing NDJSON error record when the stream is already open) instead
// of killing the daemon.
func (s *Server) isolate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Panics.Add(1)
				// Best-effort: if nothing was written yet this sets the
				// status; on an open stream it appends a parseable error
				// record. Either way the client sees the failure and the
				// daemon lives on.
				writeJSON(w, http.StatusInternalServerError, map[string]string{
					"error": fmt.Sprintf("internal panic: %v", rec),
					"stack": string(debug.Stack()),
				})
			}
		}()
		h(w, r)
	}
}

// ---------------------------------------------------------------------
// Requests.

// JobRequest is the JSON body of the point, sweep and compare
// endpoints.
type JobRequest struct {
	// Workload names the program to simulate (default "mp3d").
	Workload string `json:"workload,omitempty"`
	// Scale is "test" (default), "small" or "paper".
	Scale string `json:"scale,omitempty"`
	// Sweep selects the Table 1 axis for /api/v1/sweep: block, l1, l2
	// or nodes. Ignored by the other endpoints.
	Sweep string `json:"sweep,omitempty"`
	// Config overrides fields of the workload's default lsnuma.Config
	// (unknown fields are rejected). The point endpoint reads the
	// protocol from Config.Protocol; sweep and compare run every
	// protocol.
	Config json.RawMessage `json:"config,omitempty"`
	// PointTimeoutMs lowers the per-point deadline below the server's
	// ceiling for this job (0 = server default).
	PointTimeoutMs int64 `json:"point_timeout_ms,omitempty"`
}

// parseJob decodes and validates a job request, returning the resolved
// base config and scale.
func parseJob(r *http.Request) (JobRequest, lsnuma.Config, lsnuma.Scale, error) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, lsnuma.Config{}, 0, fmt.Errorf("bad request body: %w", err)
	}
	if req.Workload == "" {
		req.Workload = "mp3d"
	}
	if !slices.Contains(lsnuma.Workloads(), req.Workload) {
		return req, lsnuma.Config{}, 0, fmt.Errorf("unknown workload %q (want one of %v)", req.Workload, lsnuma.Workloads())
	}
	scale := lsnuma.ScaleTest
	if req.Scale != "" {
		var err error
		if scale, err = workload.ParseScale(req.Scale); err != nil {
			return req, lsnuma.Config{}, 0, err
		}
	}
	base := lsnuma.DefaultConfig()
	if req.Workload == "oltp" {
		base = lsnuma.OLTPConfig()
	}
	if len(req.Config) > 0 {
		over := json.NewDecoder(bytes.NewReader(req.Config))
		over.DisallowUnknownFields()
		if err := over.Decode(&base); err != nil {
			return req, lsnuma.Config{}, 0, fmt.Errorf("bad config override: %w", err)
		}
	}
	if err := base.Validate(); err != nil {
		return req, lsnuma.Config{}, 0, fmt.Errorf("invalid config: %w", err)
	}
	return req, base, scale, nil
}

// runOpts assembles the RunOptions for one job: the server's pool
// bound, the tighter of the server and request point deadlines, the
// shared cache, and the streaming hook.
func (s *Server) runOpts(req JobRequest, onPoint func(int, lsnuma.PointResult)) lsnuma.RunOptions {
	pt := s.cfg.PointTimeout
	if req.PointTimeoutMs > 0 {
		rt := time.Duration(req.PointTimeoutMs) * time.Millisecond
		if pt == 0 || rt < pt {
			pt = rt
		}
	}
	return lsnuma.RunOptions{
		Parallelism:  s.cfg.Parallelism,
		PointTimeout: pt,
		Cache:        s.cache,
		OnPoint:      onPoint,
	}
}

// ---------------------------------------------------------------------
// Responses.

// ReproInfo is the JSON rendering of a failed point's diagnostic
// bundle.
type ReproInfo struct {
	Workload   string   `json:"workload"`
	Scale      string   `json:"scale"`
	Diagnosis  string   `json:"diagnosis,omitempty"`
	Retry      string   `json:"retry,omitempty"`
	LastOps    []string `json:"last_ops,omitempty"`
	StackBytes int      `json:"stack_bytes,omitempty"`
	// Text is the human rendering (report.ReproText), identical to the
	// indented block lssweep prints under a FAILED cell.
	Text string `json:"text,omitempty"`
}

func reproInfo(b *lsnuma.ReproBundle) *ReproInfo {
	if b == nil {
		return nil
	}
	ri := &ReproInfo{
		Workload:   b.Workload,
		Scale:      b.Scale.String(),
		Diagnosis:  b.Diagnosis,
		Retry:      b.Retry,
		StackBytes: len(b.Stack),
		Text:       report.ReproText(b, ""),
	}
	for _, op := range b.LastOps {
		ri.LastOps = append(ri.LastOps, op.String())
	}
	return ri
}

// PointResponse is the point endpoint's JSON reply.
type PointResponse struct {
	Label     string         `json:"label"`
	Result    *lsnuma.Result `json:"result,omitempty"`
	Cached    bool           `json:"cached,omitempty"`
	Deduped   bool           `json:"deduped,omitempty"`
	Error     string         `json:"error,omitempty"`
	Repro     *ReproInfo     `json:"repro,omitempty"`
	ElapsedMs int64          `json:"elapsed_ms"`
}

// StreamRecord is one NDJSON line of a sweep or compare stream. Type is
// "job" (stream header), "cell" (one sweep grid point), "point" (one
// compare protocol), or "done" (trailer).
type StreamRecord struct {
	Type     string `json:"type"`
	Endpoint string `json:"endpoint,omitempty"`
	Version  string `json:"version,omitempty"`
	// Points and Cells size the job in the header record.
	Points int `json:"points,omitempty"`
	Cells  int `json:"cells,omitempty"`

	Index    int            `json:"index,omitempty"`
	Label    string         `json:"label,omitempty"`
	Protocol string         `json:"protocol,omitempty"`
	Result   *lsnuma.Result `json:"result,omitempty"`
	Cached   bool           `json:"cached,omitempty"`
	Deduped  bool           `json:"deduped,omitempty"`
	// Errors maps protocol to failure for a sweep cell's holes.
	Errors map[string]string `json:"errors,omitempty"`
	Error  string            `json:"error,omitempty"`
	Repro  *ReproInfo        `json:"repro,omitempty"`
	// Text is the cell rendered exactly as lssweep prints it.
	Text string `json:"text,omitempty"`

	Failed    int   `json:"failed,omitempty"`
	ElapsedMs int64 `json:"elapsed_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing useful to do on a dead client
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// ndjsonWriter serializes NDJSON records onto a streamed response,
// flushing after each one so clients see results as they complete.
type ndjsonWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	rc  *http.ResponseController
	err error
}

func newNDJSON(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	return &ndjsonWriter{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
}

func (n *ndjsonWriter) write(rec StreamRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	if err := n.enc.Encode(rec); err != nil {
		n.err = err
		return
	}
	n.rc.Flush() //nolint:errcheck // flush is best-effort on streams
}

// ---------------------------------------------------------------------
// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queue":    s.queued.Load(),
		"inflight": s.inflight.Load(),
		"version":  s.cfg.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, gauges{
		queueDepth: s.queued.Load(),
		inflight:   s.inflight.Load(),
		draining:   s.draining.Load(),
		cacheHits:  st.Hits,
		cacheMiss:  st.Misses,
		cacheSkips: st.Skips,
		cacheErrs:  st.Errors,
		cacheDedup: st.Dedups,
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"binary":  "lsnumad",
		"version": s.cfg.Version,
		"detail":  version.String("lsnumad"),
	})
}

// handlePoint runs one (config, workload, scale) point and replies with
// plain JSON: 200 with the result, 400 on a bad request, 500 with the
// repro bundle on a failed simulation, 504 on a point deadline.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := s.jobContext(r)
	defer cancel()

	pt := lsnuma.Point{
		Label:    fmt.Sprintf("%s/%s", req.Workload, base.ProtocolName()),
		Config:   base,
		Workload: req.Workload,
		Scale:    scale,
	}
	results, _ := s.runAll(ctx, []lsnuma.Point{pt}, s.runOpts(req, nil))
	pr := results[0]
	s.finishJob("point", start, results)

	resp := PointResponse{
		Label:     pr.Label,
		Result:    pr.Result,
		Cached:    pr.Cached,
		Deduped:   pr.Deduped,
		Repro:     reproInfo(pr.Repro),
		ElapsedMs: time.Since(start).Milliseconds(),
	}
	switch {
	case pr.Err == nil:
		writeJSON(w, http.StatusOK, resp)
	case r.Context().Err() != nil:
		// Client gone: nothing to write.
	default:
		resp.Error = pr.Err.Error()
		status := http.StatusInternalServerError
		if errors.Is(pr.Err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if s.jobsCtx.Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	}
}

// handleSweep runs the Table 1 grid along the requested axis under
// every protocol and streams NDJSON: a "job" header, one "cell" record
// per grid point in grid order as soon as the cell's protocols have all
// completed, and a "done" trailer. Each cell record's "text" field is
// byte-identical to the block lssweep prints for the same cell.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	if req.Sweep == "" {
		badRequest(w, errors.New(`missing "sweep" (want block, l1, l2, nodes)`))
		return
	}
	param, err := lsnuma.ParseSweepParam(req.Sweep)
	if err != nil {
		badRequest(w, err)
		return
	}
	grid, points, err := lsnuma.SweepPoints(param, base, req.Workload, scale)
	if err != nil {
		badRequest(w, err)
		return
	}
	if len(points) > s.cfg.MaxPointsPerJob {
		badRequest(w, fmt.Errorf("job expands to %d points, over the %d limit", len(points), s.cfg.MaxPointsPerJob))
		return
	}
	ctx, cancel := s.jobContext(r)
	defer cancel()

	out := newNDJSON(w)
	out.write(StreamRecord{
		Type: "job", Endpoint: "sweep", Version: s.cfg.Version,
		Label: string(param), Points: len(points), Cells: len(grid),
	})

	nproto := len(lsnuma.Protocols())
	var (
		mu      sync.Mutex
		results = make([]lsnuma.PointResult, len(points))
		remain  = make([]int, len(grid))
		next    int
	)
	for i := range remain {
		remain[i] = nproto
	}
	// emit streams cell ci from results; callers hold mu and only pass
	// each index once, in grid order.
	emit := func(ci int) {
		cell := lsnuma.CellResult(grid[ci], results[ci*nproto:(ci+1)*nproto])
		text, _ := report.SweepCell(cell)
		rec := StreamRecord{Type: "cell", Index: ci, Label: cell.Label, Text: text}
		for p, cerr := range cell.Errs {
			if rec.Errors == nil {
				rec.Errors = make(map[string]string, len(cell.Errs))
			}
			rec.Errors[string(p)] = cerr.Error()
		}
		out.write(rec)
	}
	onPoint := func(i int, pr lsnuma.PointResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = pr
		remain[i/nproto]--
		for next < len(grid) && remain[next] == 0 {
			emit(next)
			next++
		}
	}
	final, runErr := s.runAll(ctx, points, s.runOpts(req, onPoint))

	// Cancellation-skipped points never reach onPoint; flush the
	// remaining cells (annotated holes) from the final slice.
	mu.Lock()
	copy(results, final)
	for ; next < len(grid); next++ {
		emit(next)
	}
	mu.Unlock()

	failed := s.finishJob("sweep", start, final)
	done := StreamRecord{Type: "done", Failed: failed, ElapsedMs: time.Since(start).Milliseconds()}
	if runErr != nil && ctx.Err() != nil {
		done.Error = fmt.Sprintf("interrupted (%v); cells above are partial with annotated holes", ctx.Err())
	}
	out.write(done)
}

// handleCompare runs one configuration under every protocol and streams
// NDJSON: a "job" header, one "point" record per protocol in
// Protocols() order as each completes, and a "done" trailer.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := s.jobContext(r)
	defer cancel()

	protos := lsnuma.Protocols()
	points := make([]lsnuma.Point, len(protos))
	for i, p := range protos {
		cfg := base
		cfg.Protocol = p
		points[i] = lsnuma.Point{
			Label:    fmt.Sprintf("%s/%s", req.Workload, p),
			Config:   cfg,
			Workload: req.Workload,
			Scale:    scale,
		}
	}

	out := newNDJSON(w)
	out.write(StreamRecord{
		Type: "job", Endpoint: "compare", Version: s.cfg.Version,
		Label: req.Workload, Points: len(points),
	})

	var (
		mu      sync.Mutex
		results = make([]lsnuma.PointResult, len(points))
		done    = make([]bool, len(points))
		next    int
	)
	emit := func(i int) { // mu held; each index passed once, in order
		pr := results[i]
		rec := StreamRecord{
			Type: "point", Index: i, Label: pr.Label, Protocol: string(protos[i]),
			Result: pr.Result, Cached: pr.Cached, Deduped: pr.Deduped,
			Repro: reproInfo(pr.Repro),
		}
		if pr.Err != nil {
			rec.Error = pr.Err.Error()
		}
		out.write(rec)
	}
	onPoint := func(i int, pr lsnuma.PointResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = pr
		done[i] = true
		for next < len(points) && done[next] {
			emit(next)
			next++
		}
	}
	final, runErr := s.runAll(ctx, points, s.runOpts(req, onPoint))

	mu.Lock()
	copy(results, final)
	for ; next < len(points); next++ {
		emit(next)
	}
	mu.Unlock()

	failed := s.finishJob("compare", start, final)
	trailer := StreamRecord{Type: "done", Failed: failed, ElapsedMs: time.Since(start).Milliseconds()}
	if runErr != nil && ctx.Err() != nil {
		trailer.Error = fmt.Sprintf("interrupted (%v); points above are partial", ctx.Err())
	}
	out.write(trailer)
}

// finishJob accounts a completed job's points into the metrics and
// returns the failed-point count.
func (s *Server) finishJob(endpoint string, start time.Time, results []lsnuma.PointResult) int {
	failed := 0
	for _, pr := range results {
		var nacks, retries uint64
		if pr.Result != nil {
			nacks, retries = pr.Result.Resil.Nacks, pr.Result.Resil.Retries
		}
		s.metrics.point(pr.Err != nil, pr.Cached, pr.Deduped, nacks, retries)
		if pr.Err != nil {
			failed++
		}
	}
	s.metrics.Completed.Add(1)
	if failed > 0 {
		s.metrics.JobFailures.Add(1)
	}
	s.metrics.observe(endpoint, time.Since(start))
	return failed
}
