// Package server implements lsnumad, the sweep-as-a-service daemon:
// an HTTP front end that multiplexes sweep/point/compare jobs from many
// clients onto the bounded runner pool, shares one result cache (with
// single-flight stampede protection) across all of them, and degrades
// under pressure instead of falling over.
//
// The service applies the paper's resource-exhaustion discipline (PR 4's
// bounded MSHRs with NACK/retry) at the job layer: a bounded execution
// pool, a bounded admission queue, and an explicit 429 + Retry-After
// NACK when both are full. Panics in a job are isolated to a structured
// 500 carrying the repro bundle; SIGTERM triggers a graceful drain that
// stops admitting, finishes in-flight jobs and exits within a deadline.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lsnuma"
	"lsnuma/internal/report"
	"lsnuma/internal/server/journal"
	"lsnuma/internal/version"
	"lsnuma/internal/workload"
)

// maxRequestBytes bounds a job request body; configs are small.
const maxRequestBytes = 1 << 20

// Config parameterizes a Server. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// MaxJobs bounds the number of jobs executing at once (default 2).
	// Each job runs its points on its own RunAll pool, so total
	// simulation parallelism is roughly MaxJobs * Parallelism.
	MaxJobs int
	// QueueDepth bounds the number of jobs allowed to wait for an
	// execution slot (default 8). Arrivals beyond it are NACKed with
	// 429 and a Retry-After estimate. With fair queueing this is the
	// default bucket's cap, so anonymous deployments keep exactly the
	// old single-FIFO behavior; see TenantQueueDepth for named tenants.
	QueueDepth int
	// TenantQueueDepth bounds each named tenant's queue (default
	// QueueDepth). Arrivals beyond a tenant's cap are NACKed with 429
	// without affecting other tenants.
	TenantQueueDepth int
	// Quantum is the deficit-round-robin quantum in points (default 8):
	// how much job cost each tenant with queued work earns per
	// scheduling round. One sweep cell's worth (len(Protocols())) or
	// more keeps small jobs flowing past a tenant with big ones queued.
	Quantum int
	// TenantQuanta overrides Quantum per named tenant: a tenant earning
	// 2x the default quantum per round drains roughly twice the points
	// per pass (weighted DRR — paying tenants go faster without starving
	// anyone). Non-positive entries are ignored.
	TenantQuanta map[string]int
	// RetrySeed seeds the Retry-After estimate before the first job
	// completes (default 1s). A deployment running paper-scale sweeps
	// should raise it so cold-start 429s do not invite thundering
	// re-arrivals.
	RetrySeed time.Duration
	// Journal, if non-nil, write-ahead-logs every accepted job and
	// enables /api/v1/jobs plus crash recovery (Recover). Journaled
	// jobs run detached from their client connection: a disconnect
	// stops the response stream but not the job, whose results stay
	// durable in the cache and whose state lands in the journal.
	Journal *journal.Journal
	// Parallelism is each job's RunAll worker bound (default 0: all
	// cores).
	Parallelism int
	// PointTimeout is the server-wide per-point wall-clock ceiling
	// (0 = none). Requests may lower it per job, never raise it.
	PointTimeout time.Duration
	// MaxPointsPerJob rejects absurdly large jobs up front (default
	// 4096, matching the runner's practical ceiling).
	MaxPointsPerJob int
	// Cache is the shared result cache. Nil selects a dedup-only cache
	// (lsnuma.NewDedupCache): no persistence, but concurrent identical
	// points across all clients still collapse into one simulation.
	Cache *lsnuma.ResultCache
	// Version is reported by /version and /healthz (default the build's
	// stamped version).
	Version string
	// RunAll overrides the simulation engine (default lsnuma.RunAll) —
	// a seam for load tests that need deterministic job durations.
	RunAll func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error)
	// Logf receives operational warnings (journal corruption, replay
	// failures). Nil discards them.
	Logf func(format string, args ...any)
}

// Server is the daemon core: admission control, job execution, metrics
// and drain. Create with New, mount Handler on an http.Server, and call
// Drain on shutdown.
type Server struct {
	cfg     Config
	cache   *lsnuma.ResultCache
	metrics *Metrics
	mux     *http.ServeMux
	journal *journal.Journal
	logf    func(format string, args ...any)

	fq       *fairQueue   // execution slots + per-tenant admission queues
	inflight atomic.Int64 // jobs holding a slot

	draining  atomic.Bool
	drainCh   chan struct{} // closed when draining starts
	drainOnce sync.Once

	jobsCtx  context.Context // cancelled to abort in-flight simulations
	stopJobs context.CancelFunc

	// runAll is a test seam over lsnuma.RunAll.
	runAll func(ctx context.Context, points []lsnuma.Point, opt lsnuma.RunOptions) ([]lsnuma.PointResult, error)
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.TenantQueueDepth <= 0 {
		cfg.TenantQueueDepth = cfg.QueueDepth
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 8
	}
	if cfg.MaxPointsPerJob <= 0 {
		cfg.MaxPointsPerJob = 4096
	}
	if cfg.Cache == nil {
		cfg.Cache = lsnuma.NewDedupCache()
	}
	if cfg.Version == "" {
		cfg.Version = version.Version
	}
	if cfg.RunAll == nil {
		cfg.RunAll = lsnuma.RunAll
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		metrics:  newMetrics(cfg.RetrySeed),
		mux:      http.NewServeMux(),
		journal:  cfg.Journal,
		logf:     cfg.Logf,
		fq:       newFairQueue(cfg.MaxJobs, cfg.Quantum, cfg.TenantQueueDepth, cfg.TenantQuanta),
		drainCh:  make(chan struct{}),
		jobsCtx:  ctx,
		stopJobs: cancel,
		runAll:   cfg.RunAll,
	}
	if s.journal != nil {
		s.metrics.JournalCorrupt.Store(s.journal.CorruptRecords())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /api/v1/point", s.isolate(s.handlePoint))
	s.mux.HandleFunc("POST /api/v1/sweep", s.isolate(s.handleSweep))
	s.mux.HandleFunc("POST /api/v1/compare", s.isolate(s.handleCompare))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters for tests and embedding binaries.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the current number of jobs waiting for a slot.
func (s *Server) QueueDepth() int64 { return int64(s.fq.queueDepth()) }

// Inflight returns the current number of jobs holding a slot.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Drain performs a graceful shutdown of the job layer: stop admitting
// (new arrivals get 503, queued waiters are bounced), let in-flight
// jobs finish, and return once queue and pool are both empty. If ctx
// expires first, in-flight simulations are aborted via their contexts
// and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.fq.queueDepth() == 0 && s.inflight.Load() == 0 {
			// Clean shutdown: every in-flight job has journaled its
			// terminal state, so this is a quiescent point to drop the
			// completed records from the state directory.
			s.compactJournal()
			return nil
		}
		select {
		case <-ctx.Done():
			s.stopJobs()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close aborts everything immediately (used after a failed Drain).
func (s *Server) Close() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	s.stopJobs()
}

// ---------------------------------------------------------------------
// Admission control.

// newJobID returns a fresh random job identifier (file-name safe,
// collision-free across restarts of the same state dir).
func newJobID() string {
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand does not fail on supported platforms
	return "j" + hex.EncodeToString(b[:])
}

// admit implements the NACK discipline in front of the execution pool:
// deficit-round-robin fair queueing across tenants, write-ahead
// journaling of every acceptance, and an explicit 429/503 NACK when the
// tenant's queue is full or the daemon is draining. It returns the
// journaled job ID (empty without a journal), a release function and
// true when the job may run; on false the response has already been
// written or the client is gone.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string, req JobRequest, cost int) (jobID string, release func(), ok bool) {
	if s.draining.Load() {
		s.rejectDraining(w)
		return "", nil, false
	}
	wt, granted, rejected := s.fq.acquire(req.Tenant, cost)
	if rejected {
		q := int64(s.fq.queueDepth())
		s.metrics.Rejected.Add(1)
		s.metrics.rejectTenant(req.Tenant)
		w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSeconds(q, s.cfg.MaxJobs)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "job queue is full; retry after the indicated backoff",
		})
		return "", nil, false
	}
	// Journal the acceptance before the job may run: from here on a
	// crash replays it. Rejections above never reach the journal.
	if s.journal != nil {
		jobID = newJobID()
		body, err := json.Marshal(req)
		if err == nil {
			err = s.journal.Append(journal.Record{
				ID: jobID, Endpoint: endpoint, Tenant: req.Tenant,
				Request: body, Points: cost,
			})
		}
		if err != nil {
			if wt == nil || s.fq.abandon(wt) {
				s.fq.release()
			}
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error": "cannot journal job: " + err.Error(),
			})
			return "", nil, false
		}
	}
	if !granted {
		s.metrics.QueuedTotal.Add(1)
		// Journaled jobs wait detached from the client connection: the
		// journal owns them now, and a disconnect must not dequeue work
		// the daemon has durably promised to run.
		waitDone := r.Context().Done()
		if s.journal != nil {
			waitDone = s.jobsCtx.Done()
		}
		select {
		case <-wt.ready:
		case <-waitDone:
			if s.fq.abandon(wt) {
				s.fq.release()
			}
			s.metrics.AbandonedQueue.Add(1)
			return "", nil, false
		case <-s.drainCh:
			if s.fq.abandon(wt) {
				s.fq.release()
			}
			// The journal record (if any) stays queued — the next
			// startup replays it.
			s.rejectDraining(w)
			return "", nil, false
		}
	}
	// Publish the in-flight claim before re-checking the drain flag:
	// if Drain's zero-poll missed this increment it must have stored
	// the flag first, so we observe it here and bounce — no job can
	// slip past a completed drain. The journal record is still queued
	// here, so a bounced job is replayed after restart, never stranded
	// as running.
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		s.fq.release()
		s.rejectDraining(w)
		return "", nil, false
	}
	s.metrics.Admitted.Add(1)
	if s.journal != nil {
		if err := s.journal.SetState(jobID, journal.StateRunning, ""); err != nil {
			s.logf("journal: %v", err)
		}
	}
	var once sync.Once
	return jobID, func() {
		once.Do(func() {
			s.inflight.Add(-1)
			s.fq.release()
		})
	}, true
}

func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.metrics.RejectedDraining.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": "daemon is draining; no new jobs accepted",
	})
}

// jobContext derives a job's context. Without a journal it is
// cancelled when the client goes away, when the request handler
// returns, or when the server aborts in-flight work (drain deadline,
// Close). A journaled job is NOT a child of the client connection: the
// daemon promised the work durably, so only server shutdown cancels it
// — the client may reconnect and poll /api/v1/jobs/<id>.
func (s *Server) jobContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.journal != nil {
		return context.WithCancel(s.jobsCtx)
	}
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.jobsCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// journalFinish records a finished job's terminal state. A job cut
// short by server shutdown keeps its running state so the next startup
// replays it; real point failures are terminal (they are deterministic
// — a replay would only fail again).
func (s *Server) journalFinish(jobID string, failed, total int) {
	if s.journal == nil || jobID == "" {
		return
	}
	if s.jobsCtx.Err() != nil {
		return // aborted shutdown: leave running for the restart replay
	}
	var err error
	if failed == 0 {
		err = s.journal.SetState(jobID, journal.StateDone, "")
	} else {
		err = s.journal.SetState(jobID, journal.StateFailed, fmt.Sprintf("%d of %d points failed", failed, total))
	}
	if err != nil {
		s.logf("journal: %v", err)
	}
}

// cursorHook wraps a job's OnPoint callback so every successful
// completion also advances the journal's per-job cursor — the
// percent-complete that /api/v1/jobs/<id> reports across restarts.
// Failed points (including ones aborted by a crash-in-progress) do not
// count: the cursor must never run ahead of what the result cache has
// durably persisted, and the cache is only written on success — before
// OnPoint fires.
func (s *Server) cursorHook(jobID string, inner func(int, lsnuma.PointResult)) func(int, lsnuma.PointResult) {
	if s.journal == nil || jobID == "" {
		return inner
	}
	var done atomic.Int64
	return func(i int, pr lsnuma.PointResult) {
		if inner != nil {
			inner(i, pr)
		}
		if pr.Err != nil {
			return
		}
		if err := s.journal.SetProgress(jobID, int(done.Add(1))); err != nil {
			s.logf("journal: %v", err)
		}
	}
}

// isolate wraps a job handler so a panic becomes a structured 500 (or a
// trailing NDJSON error record when the stream is already open) instead
// of killing the daemon.
func (s *Server) isolate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Panics.Add(1)
				// Best-effort: if nothing was written yet this sets the
				// status; on an open stream it appends a parseable error
				// record. Either way the client sees the failure and the
				// daemon lives on.
				writeJSON(w, http.StatusInternalServerError, map[string]string{
					"error": fmt.Sprintf("internal panic: %v", rec),
					"stack": string(debug.Stack()),
				})
			}
		}()
		h(w, r)
	}
}

// ---------------------------------------------------------------------
// Requests.

// tenantPattern bounds tenant names: short, file-name and label safe.
var tenantPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,32}$`)

// JobRequest is the JSON body of the point, sweep and compare
// endpoints.
type JobRequest struct {
	// Tenant names the fair-queueing bucket this job is admitted under
	// ([A-Za-z0-9._-]{1,32}). Empty selects the shared default bucket,
	// preserving pre-tenant behavior for anonymous clients.
	Tenant string `json:"tenant,omitempty"`
	// Workload names the program to simulate (default "mp3d").
	Workload string `json:"workload,omitempty"`
	// Scale is "test" (default), "small" or "paper".
	Scale string `json:"scale,omitempty"`
	// Sweep selects the Table 1 axis for /api/v1/sweep: block, l1, l2
	// or nodes. Ignored by the other endpoints.
	Sweep string `json:"sweep,omitempty"`
	// Config overrides fields of the workload's default lsnuma.Config
	// (unknown fields are rejected). The point endpoint reads the
	// protocol from Config.Protocol; sweep and compare run every
	// protocol.
	Config json.RawMessage `json:"config,omitempty"`
	// PointTimeoutMs lowers the per-point deadline below the server's
	// ceiling for this job (0 = server default).
	PointTimeoutMs int64 `json:"point_timeout_ms,omitempty"`
}

// parseJob decodes and validates a job request, returning the resolved
// base config and scale.
func parseJob(r *http.Request) (JobRequest, lsnuma.Config, lsnuma.Scale, error) {
	return parseJobReader(http.MaxBytesReader(nil, r.Body, maxRequestBytes))
}

// parseJobBytes is parseJob over a raw body — the replay path (journal
// records hold the canonical request JSON) and the fuzz target.
func parseJobBytes(body []byte) (JobRequest, lsnuma.Config, lsnuma.Scale, error) {
	return parseJobReader(bytes.NewReader(body))
}

func parseJobReader(body io.Reader) (JobRequest, lsnuma.Config, lsnuma.Scale, error) {
	var req JobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, lsnuma.Config{}, 0, fmt.Errorf("bad request body: %w", err)
	}
	if req.Tenant != "" && !tenantPattern.MatchString(req.Tenant) {
		return req, lsnuma.Config{}, 0, fmt.Errorf("bad tenant %q (want 1-32 chars of [A-Za-z0-9._-])", req.Tenant)
	}
	if req.Workload == "" {
		req.Workload = "mp3d"
	}
	if !slices.Contains(lsnuma.Workloads(), req.Workload) {
		return req, lsnuma.Config{}, 0, fmt.Errorf("unknown workload %q (want one of %v)", req.Workload, lsnuma.Workloads())
	}
	scale := lsnuma.ScaleTest
	if req.Scale != "" {
		var err error
		if scale, err = workload.ParseScale(req.Scale); err != nil {
			return req, lsnuma.Config{}, 0, err
		}
	}
	base := lsnuma.DefaultConfig()
	if req.Workload == "oltp" {
		base = lsnuma.OLTPConfig()
	}
	if len(req.Config) > 0 {
		over := json.NewDecoder(bytes.NewReader(req.Config))
		over.DisallowUnknownFields()
		if err := over.Decode(&base); err != nil {
			return req, lsnuma.Config{}, 0, fmt.Errorf("bad config override: %w", err)
		}
	}
	if err := base.Validate(); err != nil {
		return req, lsnuma.Config{}, 0, fmt.Errorf("invalid config: %w", err)
	}
	return req, base, scale, nil
}

// runOpts assembles the RunOptions for one job: the server's pool
// bound, the tighter of the server and request point deadlines, the
// shared cache, and the streaming hook.
func (s *Server) runOpts(req JobRequest, onPoint func(int, lsnuma.PointResult)) lsnuma.RunOptions {
	pt := s.cfg.PointTimeout
	if req.PointTimeoutMs > 0 {
		rt := time.Duration(req.PointTimeoutMs) * time.Millisecond
		if pt == 0 || rt < pt {
			pt = rt
		}
	}
	return lsnuma.RunOptions{
		Parallelism:  s.cfg.Parallelism,
		PointTimeout: pt,
		Cache:        s.cache,
		OnPoint:      onPoint,
	}
}

// ---------------------------------------------------------------------
// Responses.

// ReproInfo is the JSON rendering of a failed point's diagnostic
// bundle.
type ReproInfo struct {
	Workload   string   `json:"workload"`
	Scale      string   `json:"scale"`
	Diagnosis  string   `json:"diagnosis,omitempty"`
	Retry      string   `json:"retry,omitempty"`
	LastOps    []string `json:"last_ops,omitempty"`
	StackBytes int      `json:"stack_bytes,omitempty"`
	// Text is the human rendering (report.ReproText), identical to the
	// indented block lssweep prints under a FAILED cell.
	Text string `json:"text,omitempty"`
}

func reproInfo(b *lsnuma.ReproBundle) *ReproInfo {
	if b == nil {
		return nil
	}
	ri := &ReproInfo{
		Workload:   b.Workload,
		Scale:      b.Scale.String(),
		Diagnosis:  b.Diagnosis,
		Retry:      b.Retry,
		StackBytes: len(b.Stack),
		Text:       report.ReproText(b, ""),
	}
	for _, op := range b.LastOps {
		ri.LastOps = append(ri.LastOps, op.String())
	}
	return ri
}

// PointResponse is the point endpoint's JSON reply.
type PointResponse struct {
	// JobID is the journaled job identifier (empty without -state-dir).
	JobID     string         `json:"job_id,omitempty"`
	Label     string         `json:"label"`
	Result    *lsnuma.Result `json:"result,omitempty"`
	Cached    bool           `json:"cached,omitempty"`
	Deduped   bool           `json:"deduped,omitempty"`
	Error     string         `json:"error,omitempty"`
	Repro     *ReproInfo     `json:"repro,omitempty"`
	ElapsedMs int64          `json:"elapsed_ms"`
}

// StreamRecord is one NDJSON line of a sweep or compare stream. Type is
// "job" (stream header), "cell" (one sweep grid point), "point" (one
// compare protocol), or "done" (trailer).
type StreamRecord struct {
	Type     string `json:"type"`
	Endpoint string `json:"endpoint,omitempty"`
	Version  string `json:"version,omitempty"`
	// ID is the journaled job identifier in the header record (empty
	// without -state-dir); poll /api/v1/jobs/<id> with it.
	ID string `json:"id,omitempty"`
	// Points and Cells size the job in the header record.
	Points int `json:"points,omitempty"`
	Cells  int `json:"cells,omitempty"`

	Index    int            `json:"index,omitempty"`
	Label    string         `json:"label,omitempty"`
	Protocol string         `json:"protocol,omitempty"`
	Result   *lsnuma.Result `json:"result,omitempty"`
	Cached   bool           `json:"cached,omitempty"`
	Deduped  bool           `json:"deduped,omitempty"`
	// Errors maps protocol to failure for a sweep cell's holes.
	Errors map[string]string `json:"errors,omitempty"`
	Error  string            `json:"error,omitempty"`
	Repro  *ReproInfo        `json:"repro,omitempty"`
	// Text is the cell rendered exactly as lssweep prints it.
	Text string `json:"text,omitempty"`

	Failed    int   `json:"failed,omitempty"`
	ElapsedMs int64 `json:"elapsed_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing useful to do on a dead client
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// ndjsonWriter serializes NDJSON records onto a streamed response,
// flushing after each one so clients see results as they complete.
type ndjsonWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	rc  *http.ResponseController
	err error
}

func newNDJSON(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	return &ndjsonWriter{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
}

func (n *ndjsonWriter) write(rec StreamRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	if err := n.enc.Encode(rec); err != nil {
		n.err = err
		return
	}
	n.rc.Flush() //nolint:errcheck // flush is best-effort on streams
}

// ---------------------------------------------------------------------
// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queue":    s.fq.queueDepth(),
		"inflight": s.inflight.Load(),
		"version":  s.cfg.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, gauges{
		queueDepth:  int64(s.fq.queueDepth()),
		inflight:    s.inflight.Load(),
		draining:    s.draining.Load(),
		cacheHits:   st.Hits,
		cacheMiss:   st.Misses,
		cacheSkips:  st.Skips,
		cacheErrs:   st.Errors,
		cacheDedup:  st.Dedups,
		tenantDepth: s.fq.tenantDepths(),
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"binary":  "lsnumad",
		"version": s.cfg.Version,
		"detail":  version.String("lsnumad"),
	})
}

// handlePoint runs one (config, workload, scale) point and replies with
// plain JSON: 200 with the result, 400 on a bad request, 500 with the
// repro bundle on a failed simulation, 504 on a point deadline.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	jobID, release, ok := s.admit(w, r, "point", req, 1)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.jobContext(r)
	defer cancel()

	pt := lsnuma.Point{
		Label:    fmt.Sprintf("%s/%s", req.Workload, base.ProtocolName()),
		Config:   base,
		Workload: req.Workload,
		Scale:    scale,
	}
	results, _ := s.runAll(ctx, []lsnuma.Point{pt}, s.runOpts(req, s.cursorHook(jobID, nil)))
	pr := results[0]
	failed := s.finishJob("point", start, results)
	s.journalFinish(jobID, failed, len(results))

	resp := PointResponse{
		JobID:     jobID,
		Label:     pr.Label,
		Result:    pr.Result,
		Cached:    pr.Cached,
		Deduped:   pr.Deduped,
		Repro:     reproInfo(pr.Repro),
		ElapsedMs: time.Since(start).Milliseconds(),
	}
	switch {
	case pr.Err == nil:
		writeJSON(w, http.StatusOK, resp)
	case r.Context().Err() != nil:
		// Client gone: nothing to write.
	default:
		resp.Error = pr.Err.Error()
		status := http.StatusInternalServerError
		if errors.Is(pr.Err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if s.jobsCtx.Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	}
}

// handleSweep runs the Table 1 grid along the requested axis under
// every protocol and streams NDJSON: a "job" header, one "cell" record
// per grid point in grid order as soon as the cell's protocols have all
// completed, and a "done" trailer. Each cell record's "text" field is
// byte-identical to the block lssweep prints for the same cell.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	param, grid, points, err := sweepSpec(req, base, scale, s.cfg.MaxPointsPerJob)
	if err != nil {
		badRequest(w, err)
		return
	}
	jobID, release, ok := s.admit(w, r, "sweep", req, len(points))
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.jobContext(r)
	defer cancel()

	out := newNDJSON(w)
	out.write(StreamRecord{
		Type: "job", Endpoint: "sweep", Version: s.cfg.Version, ID: jobID,
		Label: string(param), Points: len(points), Cells: len(grid),
	})

	nproto := len(lsnuma.Protocols())
	var (
		mu      sync.Mutex
		results = make([]lsnuma.PointResult, len(points))
		prog    = lsnuma.NewSweepProgress(len(grid))
	)
	// emit streams cell ci from results; callers hold mu and only pass
	// each index once, in grid order (SweepProgress guarantees both).
	emit := func(ci int) {
		cell := lsnuma.CellResult(grid[ci], results[ci*nproto:(ci+1)*nproto])
		text, _ := report.SweepCell(cell)
		rec := StreamRecord{Type: "cell", Index: ci, Label: cell.Label, Text: text}
		for p, cerr := range cell.Errs {
			if rec.Errors == nil {
				rec.Errors = make(map[string]string, len(cell.Errs))
			}
			rec.Errors[string(p)] = cerr.Error()
		}
		out.write(rec)
	}
	onPoint := func(i int, pr lsnuma.PointResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = pr
		for _, ci := range prog.PointDone(i) {
			emit(ci)
		}
	}
	final, runErr := s.runAll(ctx, points, s.runOpts(req, s.cursorHook(jobID, onPoint)))

	// Cancellation-skipped points never reach onPoint; flush the
	// remaining cells (annotated holes) from the final slice.
	mu.Lock()
	copy(results, final)
	for _, ci := range prog.Flush() {
		emit(ci)
	}
	mu.Unlock()

	failed := s.finishJob("sweep", start, final)
	s.journalFinish(jobID, failed, len(final))
	done := StreamRecord{Type: "done", Failed: failed, ElapsedMs: time.Since(start).Milliseconds()}
	if runErr != nil && ctx.Err() != nil {
		done.Error = fmt.Sprintf("interrupted (%v); cells above are partial with annotated holes", ctx.Err())
	}
	out.write(done)
}

// sweepSpec expands and validates a sweep request into its grid and
// flat point list — shared by the handler and the journal replay path.
func sweepSpec(req JobRequest, base lsnuma.Config, scale lsnuma.Scale, maxPoints int) (lsnuma.SweepParam, []lsnuma.SweepPoint, []lsnuma.Point, error) {
	if req.Sweep == "" {
		return "", nil, nil, errors.New(`missing "sweep" (want block, l1, l2, nodes)`)
	}
	param, err := lsnuma.ParseSweepParam(req.Sweep)
	if err != nil {
		return "", nil, nil, err
	}
	grid, points, err := lsnuma.SweepPoints(param, base, req.Workload, scale)
	if err != nil {
		return "", nil, nil, err
	}
	if len(points) > maxPoints {
		return "", nil, nil, fmt.Errorf("job expands to %d points, over the %d limit", len(points), maxPoints)
	}
	return param, grid, points, nil
}

// handleCompare runs one configuration under every protocol and streams
// NDJSON: a "job" header, one "point" record per protocol in
// Protocols() order as each completes, and a "done" trailer.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, base, scale, err := parseJob(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	protos := lsnuma.Protocols()
	points := make([]lsnuma.Point, len(protos))
	for i, p := range protos {
		cfg := base
		cfg.Protocol = p
		points[i] = lsnuma.Point{
			Label:    fmt.Sprintf("%s/%s", req.Workload, p),
			Config:   cfg,
			Workload: req.Workload,
			Scale:    scale,
		}
	}
	jobID, release, ok := s.admit(w, r, "compare", req, len(points))
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.jobContext(r)
	defer cancel()

	out := newNDJSON(w)
	out.write(StreamRecord{
		Type: "job", Endpoint: "compare", Version: s.cfg.Version, ID: jobID,
		Label: req.Workload, Points: len(points),
	})

	var (
		mu      sync.Mutex
		results = make([]lsnuma.PointResult, len(points))
		done    = make([]bool, len(points))
		next    int
	)
	emit := func(i int) { // mu held; each index passed once, in order
		pr := results[i]
		rec := StreamRecord{
			Type: "point", Index: i, Label: pr.Label, Protocol: string(protos[i]),
			Result: pr.Result, Cached: pr.Cached, Deduped: pr.Deduped,
			Repro: reproInfo(pr.Repro),
		}
		if pr.Err != nil {
			rec.Error = pr.Err.Error()
		}
		out.write(rec)
	}
	onPoint := func(i int, pr lsnuma.PointResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = pr
		done[i] = true
		for next < len(points) && done[next] {
			emit(next)
			next++
		}
	}
	final, runErr := s.runAll(ctx, points, s.runOpts(req, s.cursorHook(jobID, onPoint)))

	mu.Lock()
	copy(results, final)
	for ; next < len(points); next++ {
		emit(next)
	}
	mu.Unlock()

	failed := s.finishJob("compare", start, final)
	s.journalFinish(jobID, failed, len(final))
	trailer := StreamRecord{Type: "done", Failed: failed, ElapsedMs: time.Since(start).Milliseconds()}
	if runErr != nil && ctx.Err() != nil {
		trailer.Error = fmt.Sprintf("interrupted (%v); points above are partial", ctx.Err())
	}
	out.write(trailer)
}

// finishJob accounts a completed job's points into the metrics and
// returns the failed-point count.
func (s *Server) finishJob(endpoint string, start time.Time, results []lsnuma.PointResult) int {
	failed := 0
	for _, pr := range results {
		var nacks, retries uint64
		if pr.Result != nil {
			nacks, retries = pr.Result.Resil.Nacks, pr.Result.Resil.Retries
		}
		s.metrics.point(pr.Err != nil, pr.Cached, pr.Deduped, nacks, retries)
		if pr.Err != nil {
			failed++
		}
	}
	s.metrics.Completed.Add(1)
	if failed > 0 {
		s.metrics.JobFailures.Add(1)
	}
	s.metrics.observe(endpoint, time.Since(start))
	return failed
}

// ---------------------------------------------------------------------
// Job status and crash recovery (journal-backed daemons).

// JobStatus is the /api/v1/jobs JSON rendering of a journal record.
type JobStatus struct {
	ID        string `json:"id"`
	Endpoint  string `json:"endpoint"`
	Tenant    string `json:"tenant,omitempty"`
	State     string `json:"state"`
	Points    int    `json:"points,omitempty"`
	Completed int    `json:"completed,omitempty"`
	// Percent is the completion cursor as a percentage; it survives
	// restarts along with the record.
	Percent   float64   `json:"percent"`
	Attempts  int       `json:"attempts,omitempty"`
	Submitted time.Time `json:"submitted"`
	Updated   time.Time `json:"updated"`
	Error     string    `json:"error,omitempty"`
}

func jobStatus(rec journal.Record) JobStatus {
	st := JobStatus{
		ID: rec.ID, Endpoint: rec.Endpoint, Tenant: rec.Tenant,
		State: string(rec.State), Points: rec.Points, Completed: rec.Completed,
		Attempts: rec.Attempts, Submitted: rec.Submitted, Updated: rec.Updated,
		Error: rec.Error,
	}
	if rec.State == journal.StateDone {
		st.Percent = 100
	} else if rec.Points > 0 {
		st.Percent = 100 * float64(rec.Completed) / float64(rec.Points)
	}
	return st
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "job journal disabled; start the daemon with -state-dir",
		})
		return
	}
	rec, ok := s.journal.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(rec))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "job journal disabled; start the daemon with -state-dir",
		})
		return
	}
	recs := s.journal.List()
	out := make([]JobStatus, len(recs))
	for i, rec := range recs {
		out[i] = jobStatus(rec)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// Recover replays the journal's incomplete jobs (queued or running at
// the last shutdown) through the regular fair admission path, each in
// its own goroutine, and returns how many it scheduled. Completed
// points are re-read from the result cache, so a replay recomputes only
// what was genuinely lost in flight. Call once after New, before
// serving traffic (replays and fresh arrivals then contend fairly).
func (s *Server) Recover() int {
	if s.journal == nil {
		return 0
	}
	recs := s.journal.Incomplete()
	// Startup-after-replay compaction: the replay set is collected, so
	// every terminal record left over from previous runs can go. (The
	// replays themselves are incomplete records — Compact never touches
	// them.)
	s.compactJournal()
	for _, rec := range recs {
		go s.replay(rec)
	}
	return len(recs)
}

// compactJournal drops terminal records from the journal, accounting
// them in the compaction counter. No-op without a journal.
func (s *Server) compactJournal() {
	if s.journal == nil {
		return
	}
	n, err := s.journal.Compact()
	if err != nil {
		s.logf("journal: %v", err)
	}
	if n > 0 {
		s.metrics.JournalCompacted.Add(uint64(n))
		s.logf("journal: compacted %d completed record(s)", n)
	}
}

// replay re-runs one journaled job from its canonical request JSON. An
// unparseable record is marked failed (it can never run); a full queue
// or a drain leaves the record untouched for the next restart.
func (s *Server) replay(rec journal.Record) {
	start := time.Now()
	req, base, scale, err := parseJobBytes(rec.Request)
	if err != nil {
		s.logf("replay %s: unreplayable request: %v", rec.ID, err)
		s.journal.SetState(rec.ID, journal.StateFailed, "unreplayable: "+err.Error()) //nolint:errcheck
		return
	}
	var points []lsnuma.Point
	switch rec.Endpoint {
	case "point":
		points = []lsnuma.Point{{
			Label:    fmt.Sprintf("%s/%s", req.Workload, base.ProtocolName()),
			Config:   base,
			Workload: req.Workload,
			Scale:    scale,
		}}
	case "sweep":
		_, _, points, err = sweepSpec(req, base, scale, s.cfg.MaxPointsPerJob)
	case "compare":
		for _, p := range lsnuma.Protocols() {
			cfg := base
			cfg.Protocol = p
			points = append(points, lsnuma.Point{
				Label:    fmt.Sprintf("%s/%s", req.Workload, p),
				Config:   cfg,
				Workload: req.Workload,
				Scale:    scale,
			})
		}
	default:
		err = fmt.Errorf("unknown endpoint %q", rec.Endpoint)
	}
	if err != nil {
		s.logf("replay %s: unreplayable: %v", rec.ID, err)
		s.journal.SetState(rec.ID, journal.StateFailed, "unreplayable: "+err.Error()) //nolint:errcheck
		return
	}

	wt, granted, rejected := s.fq.acquire(req.Tenant, len(points))
	if rejected {
		// Queue pressure at startup: leave the record for the next
		// restart rather than dropping it.
		s.logf("replay %s: queue full; left %s for the next restart", rec.ID, rec.State)
		return
	}
	if !granted {
		s.metrics.QueuedTotal.Add(1)
		select {
		case <-wt.ready:
		case <-s.jobsCtx.Done():
			if s.fq.abandon(wt) {
				s.fq.release()
			}
			return
		case <-s.drainCh:
			if s.fq.abandon(wt) {
				s.fq.release()
			}
			return
		}
	}
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		s.fq.release()
		return // record untouched; the next restart replays it
	}
	s.metrics.Admitted.Add(1)
	s.metrics.Recovered.Add(1)
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.inflight.Add(-1)
			s.fq.release()
		})
	}
	defer release()
	if err := s.journal.SetState(rec.ID, journal.StateRunning, ""); err != nil {
		s.logf("journal: %v", err)
	}

	ctx, cancel := context.WithCancel(s.jobsCtx)
	defer cancel()
	results, _ := s.runAll(ctx, points, s.runOpts(req, s.cursorHook(rec.ID, nil)))
	failed := s.finishJob(rec.Endpoint, start, results)
	s.journalFinish(rec.ID, failed, len(results))
}
