// Package journal is the lsnumad daemon's crash-durable job log: every
// accepted job is write-ahead-logged as one record file under a state
// directory before it runs, transitions through queued → running →
// done/failed with fsync'd state flips, and a restart replays whatever
// was left incomplete. Together with the content-addressed result cache
// (each completed sweep cell is durable by PointKey) this makes a
// SIGKILL mid-sweep cost only the points that were literally in flight:
// the replayed job re-reads everything already computed and finishes
// the rest.
//
// Records are written with the same discipline as the result cache:
// staged in a temp file, renamed into place (atomic on POSIX), fsync'd
// before the rename on state transitions so a torn write can never
// masquerade as a valid record. The read side is correspondingly
// forgiving — a truncated, garbage or foreign file in the state
// directory is skipped with a warning and counted, never fatal.
package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued: accepted and journaled, waiting for an execution
	// slot. A crash (or a drain that bounced the waiter) leaves the
	// record here, and the next startup replays it.
	StateQueued State = "queued"
	// StateRunning: holding an execution slot. A crash mid-run leaves
	// the record here; the next startup replays it, re-reading every
	// already-durable point from the result cache.
	StateRunning State = "running"
	// StateDone: ran to completion with zero failed points. Terminal.
	StateDone State = "done"
	// StateFailed: ran to completion with failed points, or proved
	// unreplayable. Terminal — failures are deterministic, so replaying
	// them would only fail again.
	StateFailed State = "failed"
)

// Terminal reports whether a state is final (never replayed).
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

func validState(s State) bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed:
		return true
	}
	return false
}

// Record is one journaled job.
type Record struct {
	// ID is the daemon-assigned job identifier ([A-Za-z0-9._-]+; it
	// doubles as the record's file name).
	ID string `json:"id"`
	// Endpoint is the job kind: "point", "sweep" or "compare".
	Endpoint string `json:"endpoint"`
	// Tenant is the admission bucket the job was accepted under.
	Tenant string `json:"tenant,omitempty"`
	// Request is the canonical JSON of the client's JobRequest —
	// everything needed to rebuild and replay the job.
	Request json.RawMessage `json:"request"`
	// State is the job's lifecycle position.
	State State `json:"state"`
	// Points is the job's total point count; Completed is the
	// completion cursor (points finished so far, across restarts the
	// current attempt's count — completed cells are durable in the
	// result cache either way).
	Points    int `json:"points,omitempty"`
	Completed int `json:"completed,omitempty"`
	// Attempts counts queued→running transitions: 1 for a normal run,
	// +1 per post-crash replay.
	Attempts int `json:"attempts,omitempty"`
	// Submitted and Updated timestamp acceptance and the last flip.
	Submitted time.Time `json:"submitted"`
	Updated   time.Time `json:"updated"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
}

// idPattern bounds record IDs to file-name-safe tokens.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Journal is the on-disk job log plus its in-memory index. Safe for
// concurrent use by any number of goroutines; the directory belongs to
// one daemon process at a time.
type Journal struct {
	dir     string // the jobs/ directory
	warnf   func(format string, args ...any)
	corrupt atomic.Uint64

	mu   sync.Mutex
	recs map[string]*Record
}

// Open loads (creating if needed) the journal under dir. Corrupt or
// foreign record files are skipped with a warning through warnf (nil =
// silent) and counted (CorruptRecords); leftover temp files from a
// crashed writer are removed silently — an unrenamed temp file is a
// write that never happened.
func Open(dir string, warnf func(format string, args ...any)) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("journal: empty state directory")
	}
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	jobs := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: jobs, warnf: warnf, recs: make(map[string]*Record)}
	entries, err := os.ReadDir(jobs)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(jobs, name)) // crash debris from a staged write
			continue
		}
		rec, err := readRecord(filepath.Join(jobs, name))
		if err != nil {
			j.corrupt.Add(1)
			warnf("journal: skipping corrupt record %s: %v", name, err)
			continue
		}
		if name != rec.ID+".json" {
			j.corrupt.Add(1)
			warnf("journal: skipping record %s: file name does not match job id %q", name, rec.ID)
			continue
		}
		j.recs[rec.ID] = rec
	}
	return j, nil
}

func readRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	if !idPattern.MatchString(rec.ID) {
		return nil, fmt.Errorf("invalid job id %q", rec.ID)
	}
	if !validState(rec.State) {
		return nil, fmt.Errorf("invalid state %q", rec.State)
	}
	return &rec, nil
}

// CorruptRecords returns how many record files this process skipped as
// corrupt (at Open time).
func (j *Journal) CorruptRecords() uint64 { return j.corrupt.Load() }

// Append write-ahead-logs a newly accepted job: the record enters the
// journal as queued with an fsync'd write, before the job may run.
func (j *Journal) Append(rec Record) error {
	if !idPattern.MatchString(rec.ID) {
		return fmt.Errorf("journal: invalid job id %q", rec.ID)
	}
	now := time.Now().UTC()
	rec.State = StateQueued
	if rec.Submitted.IsZero() {
		rec.Submitted = now
	}
	rec.Updated = now
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.recs[rec.ID]; dup {
		return fmt.Errorf("journal: duplicate job id %q", rec.ID)
	}
	if err := j.persistLocked(&rec, true); err != nil {
		return err
	}
	j.recs[rec.ID] = &rec
	return nil
}

// SetState flips a job's lifecycle state with an fsync'd write. Flipping
// to running bumps Attempts; errMsg annotates failures.
func (j *Journal) SetState(id string, st State, errMsg string) error {
	if !validState(st) {
		return fmt.Errorf("journal: invalid state %q", st)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[id]
	if !ok {
		return fmt.Errorf("journal: unknown job %q", id)
	}
	rec.State = st
	rec.Updated = time.Now().UTC()
	if st == StateRunning {
		rec.Attempts++
	}
	if errMsg != "" {
		rec.Error = errMsg
	}
	return j.persistLocked(rec, true)
}

// SetProgress advances a job's completion cursor. Regressions are
// ignored (concurrent point completions may arrive out of order). The
// write is atomic but not fsync'd: the cursor is advisory — the truth
// about completed points lives in the content-addressed result cache.
func (j *Journal) SetProgress(id string, completed int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[id]
	if !ok {
		return fmt.Errorf("journal: unknown job %q", id)
	}
	if completed <= rec.Completed {
		return nil
	}
	rec.Completed = completed
	rec.Updated = time.Now().UTC()
	return j.persistLocked(rec, false)
}

// Get returns a copy of the record for id.
func (j *Journal) Get(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// List returns copies of every record, oldest submission first.
func (j *Journal) List() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.recs))
	for _, rec := range j.recs {
		out = append(out, *rec)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Submitted.Equal(out[b].Submitted) {
			return out[a].Submitted.Before(out[b].Submitted)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Incomplete returns the queued and running records (oldest first) —
// the replay set after a restart.
func (j *Journal) Incomplete() []Record {
	all := j.List()
	out := all[:0]
	for _, rec := range all {
		if !rec.State.Terminal() {
			out = append(out, rec)
		}
	}
	return out
}

// Compact rewrites the state directory dropping terminal records: done
// and failed jobs are removed from disk and from the in-memory index,
// so a long-lived daemon's jobs/ directory holds only work that a
// restart could still replay. Returns how many records were dropped.
// Call at quiescent points — clean shutdown, or startup once the replay
// set has been collected; incomplete records are never touched. A
// record whose file cannot be removed stays indexed (it would reappear
// on the next startup anyway) and reports the first such error.
func (j *Journal) Compact() (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	var firstErr error
	for id, rec := range j.recs {
		if !rec.State.Terminal() {
			continue
		}
		if err := os.Remove(filepath.Join(j.dir, id+".json")); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("journal: compact %s: %w", id, err)
			}
			continue
		}
		delete(j.recs, id)
		n++
	}
	if n > 0 {
		// Best-effort directory fsync so the removals are durable.
		if d, err := os.Open(j.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return n, firstErr
}

// persistLocked writes rec to its record file: staged in a temp file
// (fsync'd when sync — state flips must survive power loss; cursor
// bumps need not), renamed into place. j.mu held.
func (j *Journal) persistLocked(rec *Record, sync bool) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(j.dir, rec.ID+".json")
	tmp, err := os.CreateTemp(j.dir, rec.ID+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if sync {
		// Best-effort directory fsync so the rename itself is durable.
		if d, err := os.Open(j.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
