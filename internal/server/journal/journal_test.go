package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalRoundTrip: append → state flips → progress survive a
// close/reopen cycle, and the replay set is exactly the non-terminal
// records in submission order.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().UTC().Add(-time.Minute)
	for i, st := range []State{StateDone, StateRunning, StateQueued, StateFailed} {
		id := fmt.Sprintf("job-%d", i)
		rec := Record{
			ID:        id,
			Endpoint:  "sweep",
			Tenant:    "t1",
			Request:   []byte(`{"workload":"counter"}`),
			Points:    12,
			Submitted: base.Add(time.Duration(i) * time.Second),
		}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		if st == StateQueued {
			continue
		}
		if err := j.SetState(id, StateRunning, ""); err != nil {
			t.Fatal(err)
		}
		if err := j.SetProgress(id, 5); err != nil {
			t.Fatal(err)
		}
		if err := j.SetProgress(id, 3); err != nil { // regression ignored
			t.Fatal(err)
		}
		if st == StateRunning {
			continue
		}
		msg := ""
		if st == StateFailed {
			msg = "2 of 12 points failed"
		}
		if err := j.SetState(id, st, msg); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: the on-disk records are the source of truth.
	j2, err := Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if n := j2.CorruptRecords(); n != 0 {
		t.Fatalf("CorruptRecords = %d, want 0", n)
	}
	if got := len(j2.List()); got != 4 {
		t.Fatalf("List = %d records, want 4", got)
	}
	rec, ok := j2.Get("job-1")
	if !ok {
		t.Fatal("job-1 missing after reopen")
	}
	if rec.State != StateRunning || rec.Completed != 5 || rec.Attempts != 1 {
		t.Fatalf("job-1 = %+v, want running/completed=5/attempts=1", rec)
	}
	if rec.Tenant != "t1" || rec.Points != 12 || string(rec.Request) != `{"workload":"counter"}` {
		t.Fatalf("job-1 payload lost: %+v", rec)
	}
	fail, _ := j2.Get("job-3")
	if fail.State != StateFailed || fail.Error != "2 of 12 points failed" {
		t.Fatalf("job-3 = %+v, want failed with error message", fail)
	}

	inc := j2.Incomplete()
	if len(inc) != 2 || inc[0].ID != "job-1" || inc[1].ID != "job-2" {
		ids := make([]string, len(inc))
		for i, r := range inc {
			ids[i] = r.ID + ":" + string(r.State)
		}
		t.Fatalf("Incomplete = %v, want [job-1:running job-2:queued]", ids)
	}

	// A second running flip (post-crash replay) bumps Attempts.
	if err := j2.SetState("job-1", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	rec, _ = j2.Get("job-1")
	if rec.Attempts != 2 {
		t.Fatalf("Attempts after replay flip = %d, want 2", rec.Attempts)
	}
}

// TestJournalCorruptionTolerance: truncated and garbage record files —
// the debris a crash mid-write or a stray editor leaves behind — are
// skipped with a warning and counted, never fatal, and never shadow the
// valid records beside them.
func TestJournalCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "good", Endpoint: "sweep", Request: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}

	jobs := filepath.Join(dir, "jobs")
	// Truncated JSON (torn write without the fsync discipline).
	good, err := os.ReadFile(filepath.Join(jobs, "good.json"))
	if err != nil {
		t.Fatal(err)
	}
	writeFile := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(jobs, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("torn.json", good[:len(good)/2])
	// Outright garbage.
	writeFile("garbage.json", []byte("\x00\x01not json at all"))
	// Valid JSON, invalid state.
	writeFile("badstate.json", []byte(`{"id":"badstate","state":"sideways","request":{},"submitted":"2026-01-01T00:00:00Z","updated":"2026-01-01T00:00:00Z"}`))
	// Valid record whose file name does not match its id.
	renamed := strings.Replace(string(good), `"good"`, `"other"`, 1)
	writeFile("mismatch.json", []byte(renamed))
	// Staged-write debris: silently removed, not counted as corrupt.
	writeFile("good.tmp123", []byte("partial"))

	var warnings []string
	j2, err := Open(dir, func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("Open over corrupt records: %v (must skip, not fail)", err)
	}
	if n := j2.CorruptRecords(); n != 4 {
		t.Fatalf("CorruptRecords = %d, want 4 (torn, garbage, badstate, mismatch); warnings: %v", n, warnings)
	}
	if len(warnings) != 4 {
		t.Fatalf("warnings = %d %v, want 4", len(warnings), warnings)
	}
	if _, ok := j2.Get("good"); !ok {
		t.Fatal("valid record lost among corrupt neighbors")
	}
	if got := len(j2.List()); got != 1 {
		t.Fatalf("List = %d records, want just the valid one", got)
	}
	if _, err := os.Stat(filepath.Join(jobs, "good.tmp123")); !os.IsNotExist(err) {
		t.Fatalf("temp debris not cleaned up: %v", err)
	}
}

// TestJournalRejectsBadIDs: ids that could escape the jobs directory or
// collide with temp files are refused at the write side.
func TestJournalRejectsBadIDs(t *testing.T) {
	j, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", "x y", strings.Repeat("a", 65)} {
		if err := j.Append(Record{ID: id, Request: []byte(`{}`)}); err == nil {
			t.Errorf("Append(%q) accepted, want error", id)
		}
	}
	if err := j.Append(Record{ID: "ok-1", Request: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "ok-1", Request: []byte(`{}`)}); err == nil {
		t.Error("duplicate Append accepted, want error")
	}
	if err := j.SetState("ghost", StateRunning, ""); err == nil {
		t.Error("SetState on unknown job accepted, want error")
	}
	if err := j.SetProgress("ghost", 1); err == nil {
		t.Error("SetProgress on unknown job accepted, want error")
	}
}

// TestJournalCompact: compaction drops exactly the terminal records —
// from disk and from the index — and a reopen sees only the survivors.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range []State{StateDone, StateRunning, StateQueued, StateFailed} {
		id := fmt.Sprintf("job-%d", i)
		if err := j.Append(Record{ID: id, Endpoint: "point", Request: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
		if st == StateQueued {
			continue
		}
		if err := j.SetState(id, StateRunning, ""); err != nil {
			t.Fatal(err)
		}
		if st == StateRunning {
			continue
		}
		if err := j.SetState(id, st, ""); err != nil {
			t.Fatal(err)
		}
	}

	n, err := j.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n != 2 {
		t.Fatalf("Compact = %d, want 2 (done + failed)", n)
	}
	if got := len(j.List()); got != 2 {
		t.Fatalf("List after compact = %d records, want 2", got)
	}
	for _, id := range []string{"job-0", "job-3"} {
		if _, ok := j.Get(id); ok {
			t.Fatalf("%s still indexed after compaction", id)
		}
		if _, err := os.Stat(filepath.Join(dir, "jobs", id+".json")); !os.IsNotExist(err) {
			t.Fatalf("%s record file survived compaction (err=%v)", id, err)
		}
	}

	// Idempotent: nothing terminal remains.
	if n, err := j.Compact(); err != nil || n != 0 {
		t.Fatalf("second Compact = (%d, %v), want (0, nil)", n, err)
	}

	// The incomplete records are untouched and still replayable.
	j2, err := Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Incomplete()); got != 2 {
		t.Fatalf("Incomplete after reopen = %d, want 2", got)
	}
}
