package server

import (
	"testing"
	"time"
)

// TestRetryAfterColdStart: before any job completes the EWMA is empty;
// the estimate must still scale with queue depth using the configured
// seed instead of collapsing to the 1-second floor.
func TestRetryAfterColdStart(t *testing.T) {
	m := newMetrics(2 * time.Second)
	// queued ≫ slots on a cold daemon: 16 queued jobs over 2 slots at
	// the 2 s seed is (16+1)*2/2 = 17 s of estimated backlog.
	if got := m.retryAfterSeconds(16, 2); got != 17 {
		t.Fatalf("cold retryAfterSeconds(16, 2) = %d, want 17 (seed-scaled)", got)
	}
	if got := m.retryAfterSeconds(0, 2); got != 1 {
		t.Fatalf("cold retryAfterSeconds(0, 2) = %d, want 1", got)
	}
	// The default seed is one second.
	d := newMetrics(0)
	if got := d.retryAfterSeconds(16, 2); got != 9 {
		t.Fatalf("default-seed retryAfterSeconds(16, 2) = %d, want 9", got)
	}
	// Once a job completes, the observed EWMA takes over from the seed.
	m.observe("sweep", 8*time.Second)
	if got := m.retryAfterSeconds(16, 2); got != 68 {
		t.Fatalf("warm retryAfterSeconds(16, 2) = %d, want 68 (EWMA-scaled)", got)
	}
}

// TestTenantRejectCardinality: per-tenant 429 accounting collapses
// tenants beyond the fair queue's bound into "other" instead of growing
// the metric space without limit.
func TestTenantRejectCardinality(t *testing.T) {
	m := newMetrics(0)
	for i := 0; i < maxTenants+10; i++ {
		m.rejectTenant(string(rune('A'+i%26)) + string(rune('a'+i/26)))
	}
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if len(m.tenantRejected) > maxTenants+1 {
		t.Fatalf("tenantRejected grew to %d series, want at most %d", len(m.tenantRejected), maxTenants+1)
	}
	if m.tenantRejected["other"] != 10 {
		t.Fatalf(`tenantRejected["other"] = %d, want 10 overflow rejections`, m.tenantRejected["other"])
	}
}
