// Package version carries the build stamp every lsnuma binary reports
// through its -version flag — the ops-traceability hook that ties a
// running daemon or a CI artifact back to the exact build that produced
// it.
package version

import (
	"fmt"
	"runtime"

	"lsnuma/internal/engine"
)

// Version is the build stamp, overridden at build time with
//
//	go build -ldflags "-X lsnuma/internal/version.Version=v1.2.3+gabcdef"
//
// Unstamped builds report "dev".
var Version = "dev"

// String renders the one-line version report for the named binary:
// build stamp, engine schema generation (the result-cache compatibility
// key), and the toolchain/platform it was built for.
func String(binary string) string {
	return fmt.Sprintf("%s %s (engine schema v%d, %s, %s/%s)",
		binary, Version, engine.SchemaVersion, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
