package stats

import "testing"

func TestMsgClassMapping(t *testing.T) {
	wantRead := []MsgType{MsgReadReq, MsgReadFwd, MsgReadReply, MsgSharingWB}
	wantWrite := []MsgType{MsgOwnReq, MsgOwnAck, MsgWriteReq, MsgWriteFwd, MsgWriteReply, MsgInval, MsgInvalAck}
	wantOther := []MsgType{MsgWriteback, MsgReplHint, MsgNotLS, MsgUpdate, MsgRetry}
	for _, m := range wantRead {
		if m.Class() != ReadClass {
			t.Errorf("%v class = %v, want read", m, m.Class())
		}
	}
	for _, m := range wantWrite {
		if m.Class() != WriteClass {
			t.Errorf("%v class = %v, want write", m, m.Class())
		}
	}
	for _, m := range wantOther {
		if m.Class() != OtherClass {
			t.Errorf("%v class = %v, want other", m, m.Class())
		}
	}
	if len(wantRead)+len(wantWrite)+len(wantOther) != int(NumMsgTypes) {
		t.Errorf("class mapping test does not cover all %d message types", NumMsgTypes)
	}
}

func TestCarriesData(t *testing.T) {
	carrying := map[MsgType]bool{
		MsgReadReply: true, MsgWriteReply: true, MsgSharingWB: true,
		MsgWriteback: true, MsgUpdate: true,
	}
	for m := MsgType(0); m < NumMsgTypes; m++ {
		if m.CarriesData() != carrying[m] {
			t.Errorf("%v.CarriesData() = %v", m, m.CarriesData())
		}
	}
}

func TestAddMsgBytes(t *testing.T) {
	s := New(4)
	s.AddMsg(MsgReadReq, 32)
	s.AddMsg(MsgReadReply, 32)
	if s.Msgs[MsgReadReq] != 1 || s.Msgs[MsgReadReply] != 1 {
		t.Fatal("message counts wrong")
	}
	if s.MsgBytes[MsgReadReq] != HeaderBytes {
		t.Errorf("header-only bytes = %d", s.MsgBytes[MsgReadReq])
	}
	if s.MsgBytes[MsgReadReply] != HeaderBytes+32 {
		t.Errorf("data-carrying bytes = %d", s.MsgBytes[MsgReadReply])
	}
	if s.TotalMsgs() != 2 {
		t.Errorf("TotalMsgs = %d", s.TotalMsgs())
	}
	if s.TotalBytes() != 2*HeaderBytes+32 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestClassAggregation(t *testing.T) {
	s := New(1)
	s.AddMsg(MsgReadReq, 16)
	s.AddMsg(MsgReadReply, 16)
	s.AddMsg(MsgInval, 16)
	s.AddMsg(MsgRetry, 16)
	msgs := s.ClassMsgs()
	if msgs[ReadClass] != 2 || msgs[WriteClass] != 1 || msgs[OtherClass] != 1 {
		t.Errorf("ClassMsgs = %v", msgs)
	}
	bytes := s.ClassBytes()
	if bytes[ReadClass] != 2*HeaderBytes+16 || bytes[WriteClass] != HeaderBytes || bytes[OtherClass] != HeaderBytes {
		t.Errorf("ClassBytes = %v", bytes)
	}
}

func TestExecTimeIsMax(t *testing.T) {
	s := New(3)
	s.CPUs[0] = CPU{Busy: 10, ReadStall: 5, WriteStall: 2}
	s.CPUs[1] = CPU{Busy: 30}
	s.CPUs[2] = CPU{Busy: 1, ReadStall: 1, WriteStall: 40}
	if got := s.ExecTime(); got != 42 {
		t.Errorf("ExecTime = %d, want 42", got)
	}
}

func TestSum(t *testing.T) {
	s := New(2)
	s.CPUs[0] = CPU{Busy: 1, ReadStall: 2, WriteStall: 3, Loads: 4, Stores: 5, L1Hits: 6, L2Hits: 7, GlobalOps: 8}
	s.CPUs[1] = CPU{Busy: 10, ReadStall: 20, WriteStall: 30, Loads: 40, Stores: 50, L1Hits: 60, L2Hits: 70, GlobalOps: 80}
	got := s.Sum()
	want := CPU{Busy: 11, ReadStall: 22, WriteStall: 33, Loads: 44, Stores: 55, L1Hits: 66, L2Hits: 77, GlobalOps: 88}
	if got != want {
		t.Errorf("Sum = %+v, want %+v", got, want)
	}
}

func TestReadMissTotalsAndStrings(t *testing.T) {
	s := New(1)
	s.ReadMisses[MissClean] = 3
	s.ReadMisses[MissDirty] = 2
	s.ReadMisses[MissCleanExcl] = 1
	s.ReadMisses[MissDirtyExcl] = 4
	if s.GlobalReadMisses() != 10 {
		t.Errorf("GlobalReadMisses = %d", s.GlobalReadMisses())
	}
	for m, want := range map[ReadMissClass]string{
		MissClean: "Clean", MissDirty: "Dirty",
		MissCleanExcl: "Clean exclusive", MissDirtyExcl: "Dirty exclusive",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", uint8(m), m.String())
		}
	}
}

func TestInvalidationsPerGlobalWrite(t *testing.T) {
	s := New(1)
	if s.InvalidationsPerGlobalWrite() != 0 {
		t.Error("zero-division not handled")
	}
	s.WritesToShared = 10
	s.Invalidations = 14
	if got := s.InvalidationsPerGlobalWrite(); got != 1.4 {
		t.Errorf("InvalidationsPerGlobalWrite = %v", got)
	}
}

func TestGlobalWrites(t *testing.T) {
	s := New(1)
	s.GlobalInv = 3
	s.GlobalWriteMisses = 4
	if s.GlobalWrites() != 7 {
		t.Errorf("GlobalWrites = %d", s.GlobalWrites())
	}
}

func TestCPUTotal(t *testing.T) {
	c := CPU{Busy: 1, ReadStall: 2, WriteStall: 3}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestEnumStringsNonEmpty(t *testing.T) {
	for m := MsgType(0); m < NumMsgTypes; m++ {
		if m.String() == "" {
			t.Errorf("MsgType %d has empty name", m)
		}
	}
	if MsgType(200).String() == "" || ReadMissClass(200).String() == "" || Class(200).String() == "" {
		t.Error("out-of-range enums have empty strings")
	}
	if ReadClass.String() != "read" || WriteClass.String() != "write" || OtherClass.String() != "other" {
		t.Error("class strings wrong")
	}
}

func TestRetryBucket(t *testing.T) {
	cases := []struct {
		retries uint64
		bucket  int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 3}, {7, 3},
		{8, 4}, {15, 4}, {16, 5}, {1000, 5},
	}
	for _, tc := range cases {
		if got := RetryBucket(tc.retries); got != tc.bucket {
			t.Errorf("RetryBucket(%d) = %d, want %d", tc.retries, got, tc.bucket)
		}
	}
	if len(RetryBucketLabels) != NumRetryBuckets {
		t.Errorf("label count %d != bucket count %d", len(RetryBucketLabels), NumRetryBuckets)
	}
}

func TestResilienceNotes(t *testing.T) {
	var r Resilience
	r.NoteBackoff(100)
	r.NoteBackoff(400)
	r.NoteBackoff(50)
	if r.BackoffCycles != 550 || r.MaxBackoff != 400 {
		t.Errorf("backoff accounting: total=%d max=%d", r.BackoffCycles, r.MaxBackoff)
	}
	r.NoteRecovered(1)
	r.NoteRecovered(5)
	r.NoteRecovered(3)
	if r.MaxRetries != 5 {
		t.Errorf("MaxRetries = %d, want 5", r.MaxRetries)
	}
	if r.RetryHist[0] != 1 || r.RetryHist[2] != 1 || r.RetryHist[3] != 1 {
		t.Errorf("histogram wrong: %v", r.RetryHist)
	}
}
