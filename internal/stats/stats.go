// Package stats collects the measurements the paper reports: execution
// time decomposed into busy / read-stall / write-stall cycles, network
// traffic split into read-related, write-related and other messages,
// global read misses classified by the home state of the block (Clean,
// Dirty, Clean-exclusive, Dirty-exclusive — Figures 3, 4, 6, 7), and the
// invalidation-traffic split into ownership acquisitions ("Global Inv's")
// and individual invalidation messages (Figure 5).
package stats

import "fmt"

// MsgType enumerates the coherence message types of the simulated
// protocol. The mapping to the paper's three traffic categories
// (read-related, write-related, other) is given by Class.
type MsgType uint8

const (
	// MsgReadReq is a read request from a requester to the home.
	MsgReadReq MsgType = iota
	// MsgReadFwd is the home forwarding a read to a dirty/exclusive owner.
	MsgReadFwd
	// MsgReadReply carries block data to a reader (from home or owner).
	MsgReadReply
	// MsgSharingWB is the owner's writeback to home on a read-on-dirty.
	MsgSharingWB
	// MsgOwnReq is an ownership acquisition (upgrade) request.
	MsgOwnReq
	// MsgOwnAck is the home's grant of an ownership acquisition.
	MsgOwnAck
	// MsgWriteReq is a read-exclusive (write miss) request.
	MsgWriteReq
	// MsgWriteFwd is the home forwarding a write miss to the owner.
	MsgWriteFwd
	// MsgWriteReply carries block data to a writer (from home or owner).
	MsgWriteReply
	// MsgInval is an individual invalidation sent to a sharing cache.
	MsgInval
	// MsgInvalAck acknowledges an invalidation.
	MsgInvalAck
	// MsgWriteback is a replacement writeback of a Modified block.
	MsgWriteback
	// MsgReplHint announces replacement of a clean (Shared/LStemp) block.
	MsgReplHint
	// MsgNotLS tells the home an exclusive grant was not a load-store
	// access after all (Section 3.1, case 2).
	MsgNotLS
	// MsgUpdate carries an updated copy of the block to the home when an
	// LStemp holder is downgraded by a foreign read.
	MsgUpdate
	// MsgRetry is a negative acknowledgement for a request that raced an
	// ongoing state change.
	MsgRetry
	// NumMsgTypes is the number of message types.
	NumMsgTypes
)

var msgNames = [NumMsgTypes]string{
	"ReadReq", "ReadFwd", "ReadReply", "SharingWB",
	"OwnReq", "OwnAck", "WriteReq", "WriteFwd", "WriteReply",
	"Inval", "InvalAck", "Writeback", "ReplHint", "NotLS", "Update", "Retry",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Class is the paper's traffic category.
type Class uint8

const (
	// ReadClass covers messages caused by read misses.
	ReadClass Class = iota
	// WriteClass covers messages caused by write misses, ownership
	// acquisitions and the resulting invalidations.
	WriteClass
	// OtherClass covers retries, replacement hints, writebacks and
	// protocol-extension bookkeeping (NotLS).
	OtherClass
	// NumClasses is the number of traffic categories.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ReadClass:
		return "read"
	case WriteClass:
		return "write"
	case OtherClass:
		return "other"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Class maps a message type to its traffic category, following the
// paper's split: read- and write-related messages, and Other (e.g. retry
// messages, replacements).
func (t MsgType) Class() Class {
	switch t {
	case MsgReadReq, MsgReadFwd, MsgReadReply, MsgSharingWB:
		return ReadClass
	case MsgOwnReq, MsgOwnAck, MsgWriteReq, MsgWriteFwd, MsgWriteReply, MsgInval, MsgInvalAck:
		return WriteClass
	default:
		return OtherClass
	}
}

// CarriesData reports whether the message carries a full cache block (in
// addition to the header).
func (t MsgType) CarriesData() bool {
	switch t {
	case MsgReadReply, MsgWriteReply, MsgSharingWB, MsgWriteback, MsgUpdate:
		return true
	default:
		return false
	}
}

// HeaderBytes is the size of a coherence message header.
const HeaderBytes = 8

// NumRetryBuckets is the size of the per-transaction retry histogram:
// buckets 1, 2, 3, 4-7, 8-15, >= 16 retries.
const NumRetryBuckets = 6

// RetryBucket maps a per-transaction retry count (>= 1) to its histogram
// bucket.
func RetryBucket(retries uint64) int {
	switch {
	case retries <= 1:
		return 0
	case retries <= 3:
		return int(retries) - 1
	case retries < 8:
		return 3
	case retries < 16:
		return 4
	default:
		return 5
	}
}

// RetryBucketLabels names the RetryHist buckets for reports.
var RetryBucketLabels = [NumRetryBuckets]string{"1", "2", "3", "4-7", "8-15", ">=16"}

// Resilience aggregates the resilient transaction layer's accounting:
// NACKs from saturated home transaction buffers, request retransmissions
// with their backoff-induced latency, and the injected message faults the
// retry machinery recovered from. All-zero on a classic run (unlimited
// buffers, reliable interconnect).
type Resilience struct {
	// Nacks counts negative acknowledgements sent by homes whose
	// transaction buffers were all busy (finite-MSHR contention only;
	// reorder-rejection NACKs appear in Msgs[MsgRetry] but not here).
	Nacks uint64
	// Retries counts request retransmissions from all causes: buffer
	// NACKs, lost-message timeouts, and reorder rejections.
	Retries uint64
	// TimeoutResends counts the subset of Retries triggered by a
	// lost-message timeout rather than an explicit NACK.
	TimeoutResends uint64
	// BackoffCycles accumulates the cycles spent waiting in retry
	// backoff (including loss-detection timeouts); MaxBackoff is the
	// largest single wait.
	BackoffCycles uint64
	MaxBackoff    uint64
	// MaxRetries is the largest number of retries any single transaction
	// needed; RetryHist buckets every recovered transaction by its retry
	// count (see RetryBucket).
	MaxRetries uint64
	RetryHist  [NumRetryBuckets]uint64
	// Injected message-fault activity: messages destroyed in transit,
	// duplicate copies delivered, and messages rejected for arriving out
	// of order.
	DroppedMsgs   uint64
	DupMsgs       uint64
	ReorderedMsgs uint64
}

// NoteBackoff records one backoff wait of the given length.
func (r *Resilience) NoteBackoff(cycles uint64) {
	r.BackoffCycles += cycles
	if cycles > r.MaxBackoff {
		r.MaxBackoff = cycles
	}
}

// NoteRecovered records a transaction (or message delivery) that needed
// `retries` retransmissions before succeeding.
func (r *Resilience) NoteRecovered(retries uint64) {
	if retries == 0 {
		return
	}
	r.RetryHist[RetryBucket(retries)]++
	if retries > r.MaxRetries {
		r.MaxRetries = retries
	}
}

// CPU accumulates per-processor cycle and access counts.
type CPU struct {
	Busy       uint64 // computation + L1 hit cycles
	ReadStall  uint64 // cycles stalled on read misses (L2 and global)
	WriteStall uint64 // cycles stalled on write misses/upgrades
	Loads      uint64
	Stores     uint64
	L1Hits     uint64
	L2Hits     uint64
	GlobalOps  uint64 // accesses that required a global action
}

// Total returns the processor's total cycle count.
func (c *CPU) Total() uint64 { return c.Busy + c.ReadStall + c.WriteStall }

// ReadMissClass classifies a global read miss by the home-node state of
// the block at the time of the request (Figures 3, 4, 6, 7, rightmost
// diagrams).
type ReadMissClass uint8

const (
	// MissClean: home state Uncached or Shared — memory is current.
	MissClean ReadMissClass = iota
	// MissDirty: block Modified in a remote cache via an ordinary
	// ownership acquisition.
	MissDirty
	// MissCleanExcl: block exclusively granted (tagged migratory or
	// load-store) and still clean at the holder.
	MissCleanExcl
	// MissDirtyExcl: block exclusively granted and already modified by
	// the holder.
	MissDirtyExcl
	// NumReadMissClasses is the number of read-miss classes.
	NumReadMissClasses
)

func (m ReadMissClass) String() string {
	switch m {
	case MissClean:
		return "Clean"
	case MissDirty:
		return "Dirty"
	case MissCleanExcl:
		return "Clean exclusive"
	case MissDirtyExcl:
		return "Dirty exclusive"
	default:
		return fmt.Sprintf("ReadMissClass(%d)", uint8(m))
	}
}

// Stats is the full measurement set for one simulation run.
type Stats struct {
	CPUs []CPU

	// Traffic counters, indexed by MsgType.
	Msgs     [NumMsgTypes]uint64
	MsgBytes [NumMsgTypes]uint64

	// Global read misses by home state.
	ReadMisses [NumReadMissClasses]uint64

	// Invalidation accounting (Figure 5): GlobalInv counts ownership
	// acquisitions — global write actions to blocks held Shared locally;
	// Invalidations counts the individual invalidation messages the home
	// generates.
	GlobalInv         uint64
	GlobalWriteMisses uint64
	Invalidations     uint64
	// WritesToShared counts global write actions that found the block in
	// Shared state at the home (upgrades plus write misses to shared
	// blocks) — the denominator of the paper's "invalidations per write
	// to a shared block" metric (§5.4 reports ~1.4 for OLTP).
	WritesToShared uint64

	// EliminatedOwnership counts stores satisfied locally by promoting an
	// LStemp copy — the ownership acquisitions the LS/AD optimization
	// removed.
	EliminatedOwnership uint64

	// ExclusiveGrants counts read requests answered with an exclusive
	// copy; FailedPredictions counts those later de-tagged by a foreign
	// access before the predicted store (NotLS events).
	ExclusiveGrants   uint64
	FailedPredictions uint64

	// Tagging activity.
	Taggings uint64

	// Resil is the resilient transaction layer's accounting (NACK/retry/
	// message-fault recovery); all-zero on classic runs.
	Resil Resilience

	// Dir is the compact directory wire format's accounting (limited-
	// pointer/coarse-vector extra invalidations); all-zero under the
	// default full-map format.
	Dir DirFormat
}

// DirFormat counts the architectural side effects of a compact directory
// wire format (engine Config.DirFormat). Like the resilience counters,
// these are out-of-band: the simulated timeline models the exact sharer
// set, so Results across formats differ only in this block.
type DirFormat struct {
	// ExtraInvals is the number of invalidations the wire format would
	// send beyond the exact sharer set (broadcast or coarse-group
	// overshoot); the victims hold no copy and just ack.
	ExtraInvals uint64
	// Broadcasts counts invalidation rounds served from an overflowed
	// limited-pointer entry (every cache except the requester is
	// addressed).
	Broadcasts uint64
	// Overflows counts limited-pointer capacity overflow events (an entry
	// crossing from exact pointers to broadcast mode).
	Overflows uint64
}

// New returns a Stats sized for n processors.
func New(n int) *Stats {
	return &Stats{CPUs: make([]CPU, n)}
}

// Reset zeroes every counter while keeping the CPUs slice, so a pooled
// machine's stats object (shared by reference with the network and
// engine) can be reused across runs.
func (s *Stats) Reset() {
	cpus := s.CPUs
	clear(cpus)
	*s = Stats{CPUs: cpus}
}

// Merge folds another collector into s: every additive counter is summed
// and the maxima (backoff, retries) take the larger value. The parallel
// scheduler gives each shard a private collector and merges them here at
// the end of the run; because every counter is either a sum over serviced
// operations or a max, the merged totals equal a serial run's exactly.
// The two collectors must cover the same number of CPUs.
func (s *Stats) Merge(o *Stats) {
	for i := range s.CPUs {
		a, b := &s.CPUs[i], &o.CPUs[i]
		a.Busy += b.Busy
		a.ReadStall += b.ReadStall
		a.WriteStall += b.WriteStall
		a.Loads += b.Loads
		a.Stores += b.Stores
		a.L1Hits += b.L1Hits
		a.L2Hits += b.L2Hits
		a.GlobalOps += b.GlobalOps
	}
	for i := range s.Msgs {
		s.Msgs[i] += o.Msgs[i]
		s.MsgBytes[i] += o.MsgBytes[i]
	}
	for i := range s.ReadMisses {
		s.ReadMisses[i] += o.ReadMisses[i]
	}
	s.GlobalInv += o.GlobalInv
	s.GlobalWriteMisses += o.GlobalWriteMisses
	s.Invalidations += o.Invalidations
	s.WritesToShared += o.WritesToShared
	s.EliminatedOwnership += o.EliminatedOwnership
	s.ExclusiveGrants += o.ExclusiveGrants
	s.FailedPredictions += o.FailedPredictions
	s.Taggings += o.Taggings
	s.Resil.Nacks += o.Resil.Nacks
	s.Resil.Retries += o.Resil.Retries
	s.Resil.TimeoutResends += o.Resil.TimeoutResends
	s.Resil.BackoffCycles += o.Resil.BackoffCycles
	if o.Resil.MaxBackoff > s.Resil.MaxBackoff {
		s.Resil.MaxBackoff = o.Resil.MaxBackoff
	}
	if o.Resil.MaxRetries > s.Resil.MaxRetries {
		s.Resil.MaxRetries = o.Resil.MaxRetries
	}
	for i := range s.Resil.RetryHist {
		s.Resil.RetryHist[i] += o.Resil.RetryHist[i]
	}
	s.Resil.DroppedMsgs += o.Resil.DroppedMsgs
	s.Resil.DupMsgs += o.Resil.DupMsgs
	s.Resil.ReorderedMsgs += o.Resil.ReorderedMsgs
	s.Dir.ExtraInvals += o.Dir.ExtraInvals
	s.Dir.Broadcasts += o.Dir.Broadcasts
	s.Dir.Overflows += o.Dir.Overflows
}

// AddMsg records one message of type t carrying blockSize bytes of data if
// the type is data-carrying.
func (s *Stats) AddMsg(t MsgType, blockSize uint64) {
	s.Msgs[t]++
	n := uint64(HeaderBytes)
	if t.CarriesData() {
		n += blockSize
	}
	s.MsgBytes[t] += n
}

// TotalMsgs returns the total message count.
func (s *Stats) TotalMsgs() uint64 {
	var n uint64
	for _, v := range s.Msgs {
		n += v
	}
	return n
}

// TotalBytes returns the total traffic in bytes.
func (s *Stats) TotalBytes() uint64 {
	var n uint64
	for _, v := range s.MsgBytes {
		n += v
	}
	return n
}

// ClassMsgs returns message counts grouped into the paper's categories.
func (s *Stats) ClassMsgs() [NumClasses]uint64 {
	var out [NumClasses]uint64
	for t := MsgType(0); t < NumMsgTypes; t++ {
		out[t.Class()] += s.Msgs[t]
	}
	return out
}

// ClassBytes returns byte counts grouped into the paper's categories.
func (s *Stats) ClassBytes() [NumClasses]uint64 {
	var out [NumClasses]uint64
	for t := MsgType(0); t < NumMsgTypes; t++ {
		out[t.Class()] += s.MsgBytes[t]
	}
	return out
}

// ExecTime returns the simulated execution time: the largest total cycle
// count over all processors (they start together; the slowest finishes
// last).
func (s *Stats) ExecTime() uint64 {
	var max uint64
	for i := range s.CPUs {
		if t := s.CPUs[i].Total(); t > max {
			max = t
		}
	}
	return max
}

// Sum returns the element-wise sum of the per-CPU counters.
func (s *Stats) Sum() CPU {
	var out CPU
	for i := range s.CPUs {
		c := &s.CPUs[i]
		out.Busy += c.Busy
		out.ReadStall += c.ReadStall
		out.WriteStall += c.WriteStall
		out.Loads += c.Loads
		out.Stores += c.Stores
		out.L1Hits += c.L1Hits
		out.L2Hits += c.L2Hits
		out.GlobalOps += c.GlobalOps
	}
	return out
}

// GlobalReadMisses returns the total number of global read misses.
func (s *Stats) GlobalReadMisses() uint64 {
	var n uint64
	for _, v := range s.ReadMisses {
		n += v
	}
	return n
}

// GlobalWrites returns the number of global write actions (ownership
// acquisitions plus write misses), excluding eliminated ones.
func (s *Stats) GlobalWrites() uint64 { return s.GlobalInv + s.GlobalWriteMisses }

// InvalidationsPerGlobalWrite returns the paper's "invalidations per write
// to a shared block" metric (§5.4 reports ~1.4 for OLTP): individual
// invalidation messages divided by global writes that found the block in
// Shared state.
func (s *Stats) InvalidationsPerGlobalWrite() float64 {
	if s.WritesToShared == 0 {
		return 0
	}
	return float64(s.Invalidations) / float64(s.WritesToShared)
}
