package lsnuma

import "testing"

func TestOverheadEqualForLSAndAD(t *testing.T) {
	// The paper's Section 3.1 claim: LS's added complexity equals AD's.
	for _, n := range []int{4, 16, 32, 64} {
		ls := Overhead(LS, n, Variant{})
		ad := Overhead(AD, n, Variant{})
		if ls != ad {
			t.Errorf("n=%d: LS %+v != AD %+v", n, ls, ad)
		}
		base := Overhead(Baseline, n, Variant{})
		if ls.Total() <= base.Total() {
			t.Errorf("n=%d: LS total %d not above baseline %d", n, ls.Total(), base.Total())
		}
		if ls.TagBits != ad.TagBits {
			t.Errorf("n=%d: tag bits differ", n)
		}
	}
}

func TestOverheadValues(t *testing.T) {
	d := Overhead(LS, 4, Variant{})
	// 4 presence + 2 state + 2 owner + (2 LR + 1 LS bit) = 11.
	if d.PresenceBits != 4 || d.StateBits != 2 || d.OwnerBits != 2 || d.TagBits != 3 {
		t.Errorf("Overhead(LS, 4) = %+v", d)
	}
	if d.Total() != 11 {
		t.Errorf("Total = %d, want 11", d.Total())
	}
	if h := Overhead(LS, 4, Variant{TagHysteresis: 2}); h.HysteresisBits != 2 {
		t.Errorf("hysteresis bits = %d", h.HysteresisBits)
	}
	if ex := Overhead(EX, 32, Variant{}); ex.TagBits != 0 {
		t.Errorf("EX tag bits = %d, want 0 (annotation travels with the request)", ex.TagBits)
	}
	if unknown := Overhead("MOESI", 4, Variant{}); unknown.Total() != 0 {
		t.Errorf("unknown protocol overhead = %+v", unknown)
	}
	if small := Overhead(LS, 1, Variant{}); small.OwnerBits != 1 {
		t.Errorf("n=1 clamps to 2 nodes: %+v", small)
	}
}
