package lsnuma

// Machine-readable benchmark results. `go test -run WriteBenchJSON
// -benchjson BENCH_3.json .` benchmarks every figure workload under both
// schedulers (the default run-ahead handoff scheduler and the serial
// per-access handshake scheduler kept behind Config.SerialSchedule) and,
// on the run-ahead scheduler, at every online-checking level
// (Config.Check off / touched / full), writing one JSON record per
// point: wall-clock ns/op, allocations per run, simulated cycles, and
// simulator throughput in simulated cycles and simulated memory
// operations per wall-clock second. The file checked in at the repo root
// records the run-ahead speedup and the checker overhead on the machine
// that generated it; regenerate it when touching the engine hot path or
// the checker.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

var benchJSONFlag = flag.String("benchjson", "", "write machine-readable scheduler benchmarks to this file")

// BenchPoint is one benchmarked configuration in the -benchjson output.
type BenchPoint struct {
	Workload  string `json:"workload"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"` // "run-ahead" or "serial"
	Check     string `json:"check"`     // online checking level: "off", "touched", "full"

	NsPerOp         float64 `json:"ns_per_op"`       // wall-clock per full simulation
	AllocsPerOp     int64   `json:"allocs_per_op"`   // heap allocations per full simulation
	SimCycles       uint64  `json:"sim_cycles"`      // simulated execution time
	SimOps          uint64  `json:"sim_ops"`         // simulated loads + stores
	SimOpsPerSec    float64 `json:"sim_ops_per_sec"` // simulator throughput
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// BenchReport is the top-level -benchjson document.
type BenchReport struct {
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	NumCPU  int          `json:"num_cpu"`
	Scale   string       `json:"scale"`
	Results []BenchPoint `json:"results"`
}

func TestWriteBenchJSON(t *testing.T) {
	if *benchJSONFlag == "" {
		t.Skip("set -benchjson <file> to generate machine-readable benchmarks")
	}
	workloads := []struct {
		name string
		cfg  Config
	}{
		{"mp3d", DefaultConfig()},
		{"cholesky", DefaultConfig()},
		{"lu", DefaultConfig()},
		{"oltp", OLTPConfig()},
	}
	// The serial scheduler runs only unchecked (its cost is the scheduler
	// handshake, not the checker); the checker overhead is measured on the
	// production run-ahead path.
	variants := []struct {
		sched string
		check CheckLevel
	}{
		{"run-ahead", CheckOff},
		{"serial", CheckOff},
		{"run-ahead", CheckTouched},
		{"run-ahead", CheckFull},
	}
	report := BenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "test",
	}
	for _, w := range workloads {
		for _, v := range variants {
			cfg := w.cfg
			cfg.Protocol = LS
			cfg.SerialSchedule = v.sched == "serial"
			cfg.Check = v.check
			var last *Result
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg, w.name, ScaleTest)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			})
			secPerOp := float64(br.NsPerOp()) / 1e9
			simOps := last.Loads + last.Stores
			report.Results = append(report.Results, BenchPoint{
				Workload:  w.name,
				Protocol:  string(LS),
				Scheduler: v.sched,
				Check:     string(v.check),

				NsPerOp:         float64(br.NsPerOp()),
				AllocsPerOp:     br.AllocsPerOp(),
				SimCycles:       last.ExecTime,
				SimOps:          simOps,
				SimOpsPerSec:    float64(simOps) / secPerOp,
				SimCyclesPerSec: float64(last.ExecTime) / secPerOp,
			})
			t.Logf("%s/%s/check=%s: %.2fms/op, %d allocs, %d sim-cycles, %.2fM sim-ops/s",
				w.name, v.sched, v.check, float64(br.NsPerOp())/1e6, br.AllocsPerOp(),
				last.ExecTime, float64(simOps)/secPerOp/1e6)
		}
	}
	// Every variant of a workload — either scheduler, any checking level —
	// must agree on every simulated quantity; the report would otherwise be
	// comparing different experiments.
	first := map[string]BenchPoint{}
	for _, p := range report.Results {
		ref, ok := first[p.Workload]
		if !ok {
			first[p.Workload] = p
			continue
		}
		if p.SimCycles != ref.SimCycles || p.SimOps != ref.SimOps {
			t.Errorf("%s: %s/check=%s disagrees with %s/check=%s: %d cycles/%d ops vs %d cycles/%d ops",
				p.Workload, p.Scheduler, p.Check, ref.Scheduler, ref.Check,
				p.SimCycles, p.SimOps, ref.SimCycles, ref.SimOps)
		}
	}
	f, err := os.Create(*benchJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}
