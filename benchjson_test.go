package lsnuma

// Machine-readable benchmark results. `go test -run WriteBenchJSON
// -benchjson BENCH_2.json .` benchmarks every figure workload under both
// schedulers (the default run-ahead handoff scheduler and the serial
// per-access handshake scheduler kept behind Config.SerialSchedule) and
// writes one JSON record per point: wall-clock ns/op, allocations per
// run, simulated cycles, and simulator throughput in simulated cycles
// and simulated memory operations per wall-clock second. The file checked
// in at the repo root records the speedup of the run-ahead scheduler on
// the machine that generated it; regenerate it when touching the engine
// hot path.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

var benchJSONFlag = flag.String("benchjson", "", "write machine-readable scheduler benchmarks to this file")

// BenchPoint is one benchmarked configuration in the -benchjson output.
type BenchPoint struct {
	Workload  string `json:"workload"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"` // "run-ahead" or "serial"

	NsPerOp         float64 `json:"ns_per_op"`       // wall-clock per full simulation
	AllocsPerOp     int64   `json:"allocs_per_op"`   // heap allocations per full simulation
	SimCycles       uint64  `json:"sim_cycles"`      // simulated execution time
	SimOps          uint64  `json:"sim_ops"`         // simulated loads + stores
	SimOpsPerSec    float64 `json:"sim_ops_per_sec"` // simulator throughput
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// BenchReport is the top-level -benchjson document.
type BenchReport struct {
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	NumCPU  int          `json:"num_cpu"`
	Scale   string       `json:"scale"`
	Results []BenchPoint `json:"results"`
}

func TestWriteBenchJSON(t *testing.T) {
	if *benchJSONFlag == "" {
		t.Skip("set -benchjson <file> to generate machine-readable benchmarks")
	}
	workloads := []struct {
		name string
		cfg  Config
	}{
		{"mp3d", DefaultConfig()},
		{"cholesky", DefaultConfig()},
		{"lu", DefaultConfig()},
		{"oltp", OLTPConfig()},
	}
	report := BenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "test",
	}
	for _, w := range workloads {
		for _, sched := range []string{"run-ahead", "serial"} {
			cfg := w.cfg
			cfg.Protocol = LS
			cfg.SerialSchedule = sched == "serial"
			var last *Result
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg, w.name, ScaleTest)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			})
			secPerOp := float64(br.NsPerOp()) / 1e9
			simOps := last.Loads + last.Stores
			report.Results = append(report.Results, BenchPoint{
				Workload:  w.name,
				Protocol:  string(LS),
				Scheduler: sched,

				NsPerOp:         float64(br.NsPerOp()),
				AllocsPerOp:     br.AllocsPerOp(),
				SimCycles:       last.ExecTime,
				SimOps:          simOps,
				SimOpsPerSec:    float64(simOps) / secPerOp,
				SimCyclesPerSec: float64(last.ExecTime) / secPerOp,
			})
			t.Logf("%s/%s: %.2fms/op, %d allocs, %d sim-cycles, %.2fM sim-ops/s",
				w.name, sched, float64(br.NsPerOp())/1e6, br.AllocsPerOp(),
				last.ExecTime, float64(simOps)/secPerOp/1e6)
		}
	}
	// Both schedulers must agree on every simulated quantity; the report
	// would otherwise be comparing different experiments.
	for i := 0; i+1 < len(report.Results); i += 2 {
		a, s := report.Results[i], report.Results[i+1]
		if a.SimCycles != s.SimCycles || a.SimOps != s.SimOps {
			t.Errorf("%s: schedulers disagree: run-ahead %d cycles/%d ops, serial %d cycles/%d ops",
				a.Workload, a.SimCycles, a.SimOps, s.SimCycles, s.SimOps)
		}
	}
	f, err := os.Create(*benchJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}
