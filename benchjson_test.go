package lsnuma

// Machine-readable benchmark results. `go test -run WriteBenchJSON
// -benchjson BENCH_5.json .` benchmarks every figure workload under both
// schedulers (the default run-ahead handoff scheduler and the serial
// per-access handshake scheduler kept behind Config.SerialSchedule), both
// directory layouts (the dense paged-array directory and the legacy map
// directory kept behind Config.MapDirectory), and, on the run-ahead
// scheduler, at every online-checking level (Config.Check off / touched /
// full), writing one JSON record per point: wall-clock ns/op, allocations
// per run, simulated cycles, and simulator throughput in simulated cycles
// and simulated memory operations per wall-clock second. A second section
// benchmarks the persistent result cache: a cold block-size sweep against
// an empty cache directory versus a warm re-run answered entirely from it.
// The file checked in at the repo root records the run-ahead speedup, the
// flat-directory speedup, the checker overhead and the warm-sweep speedup
// on the machine that generated it; regenerate it when touching the engine
// hot path, the directory, the checker or the result cache.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"
)

var benchJSONFlag = flag.String("benchjson", "", "write machine-readable scheduler benchmarks to this file")

// BenchPoint is one benchmarked configuration in the -benchjson output.
type BenchPoint struct {
	Workload  string `json:"workload"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"` // "run-ahead" or "serial"
	Check     string `json:"check"`     // online checking level: "off", "touched", "full"
	Directory string `json:"directory"` // directory storage: "flat" or "map"

	NsPerOp         float64 `json:"ns_per_op"`       // wall-clock per full simulation
	AllocsPerOp     int64   `json:"allocs_per_op"`   // heap allocations per full simulation
	SimCycles       uint64  `json:"sim_cycles"`      // simulated execution time
	SimOps          uint64  `json:"sim_ops"`         // simulated loads + stores
	SimOpsPerSec    float64 `json:"sim_ops_per_sec"` // simulator throughput
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// SweepBench is one warm-versus-cold result-cache measurement in the
// -benchjson output: the same sweep run against an empty cache directory
// (every point simulates and is stored) and again against the warm one
// (every point is answered from disk).
type SweepBench struct {
	Workload    string  `json:"workload"`
	Sweep       string  `json:"sweep"`
	Points      int     `json:"points"`        // cells in the sweep (grid points x protocols)
	ColdNs      float64 `json:"cold_ns"`       // wall-clock of the populating sweep
	WarmNs      float64 `json:"warm_ns"`       // wall-clock of the fully cached re-run
	WarmHitRate float64 `json:"warm_hit_rate"` // fraction of warm points answered from cache
	Speedup     float64 `json:"speedup"`       // cold_ns / warm_ns
}

// BenchReport is the top-level -benchjson document.
type BenchReport struct {
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	NumCPU  int          `json:"num_cpu"`
	Scale   string       `json:"scale"`
	Results []BenchPoint `json:"results"`
	// Sweeps records the persistent result cache's warm-vs-cold benefit.
	Sweeps []SweepBench `json:"sweeps"`
}

func TestWriteBenchJSON(t *testing.T) {
	if *benchJSONFlag == "" {
		t.Skip("set -benchjson <file> to generate machine-readable benchmarks")
	}
	workloads := []struct {
		name string
		cfg  Config
	}{
		{"mp3d", DefaultConfig()},
		{"cholesky", DefaultConfig()},
		{"lu", DefaultConfig()},
		{"oltp", OLTPConfig()},
	}
	// The serial scheduler and the map directory run only unchecked (their
	// cost is the scheduler handshake / the hashing, not the checker); the
	// checker overhead is measured on the production run-ahead + flat path.
	variants := []struct {
		sched string
		check CheckLevel
		dir   string
	}{
		{"run-ahead", CheckOff, "flat"},
		{"run-ahead", CheckOff, "map"},
		{"serial", CheckOff, "flat"},
		{"run-ahead", CheckTouched, "flat"},
		{"run-ahead", CheckFull, "flat"},
	}
	report := BenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "test",
	}
	for _, w := range workloads {
		for _, v := range variants {
			cfg := w.cfg
			cfg.Protocol = LS
			cfg.SerialSchedule = v.sched == "serial"
			cfg.Check = v.check
			cfg.MapDirectory = v.dir == "map"
			var last *Result
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg, w.name, ScaleTest)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			})
			secPerOp := float64(br.NsPerOp()) / 1e9
			simOps := last.Loads + last.Stores
			report.Results = append(report.Results, BenchPoint{
				Workload:  w.name,
				Protocol:  string(LS),
				Scheduler: v.sched,
				Check:     string(v.check),
				Directory: v.dir,

				NsPerOp:         float64(br.NsPerOp()),
				AllocsPerOp:     br.AllocsPerOp(),
				SimCycles:       last.ExecTime,
				SimOps:          simOps,
				SimOpsPerSec:    float64(simOps) / secPerOp,
				SimCyclesPerSec: float64(last.ExecTime) / secPerOp,
			})
			t.Logf("%s/%s/check=%s/dir=%s: %.2fms/op, %d allocs, %d sim-cycles, %.2fM sim-ops/s",
				w.name, v.sched, v.check, v.dir, float64(br.NsPerOp())/1e6, br.AllocsPerOp(),
				last.ExecTime, float64(simOps)/secPerOp/1e6)
		}
	}
	// Every variant of a workload — either scheduler, any checking level —
	// must agree on every simulated quantity; the report would otherwise be
	// comparing different experiments.
	first := map[string]BenchPoint{}
	for _, p := range report.Results {
		ref, ok := first[p.Workload]
		if !ok {
			first[p.Workload] = p
			continue
		}
		if p.SimCycles != ref.SimCycles || p.SimOps != ref.SimOps {
			t.Errorf("%s: %s/check=%s disagrees with %s/check=%s: %d cycles/%d ops vs %d cycles/%d ops",
				p.Workload, p.Scheduler, p.Check, ref.Scheduler, ref.Check,
				p.SimCycles, p.SimOps, ref.SimCycles, ref.SimOps)
		}
	}
	// Result-cache benefit: one block-size sweep cold (empty cache
	// directory, every cell simulates) and once more warm (every cell
	// answered from disk). Wall-clock is a single measurement per leg —
	// the two differ by orders of magnitude, so run-to-run noise is
	// irrelevant next to the effect.
	param, err := ParseSweepParam("block")
	if err != nil {
		t.Fatal(err)
	}
	timedSweep := func(dir string) (time.Duration, int, CacheStats) {
		rc, err := OpenResultCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		results, err := Sweep(context.Background(), DefaultConfig(), param, "mp3d", ScaleTest,
			RunOptions{Cache: rc})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), len(results) * len(Protocols()), rc.Stats()
	}
	cacheDir := t.TempDir()
	coldT, points, coldStats := timedSweep(cacheDir)
	warmT, _, warmStats := timedSweep(cacheDir)
	if coldStats.Hits != 0 || warmStats.Misses != 0 {
		t.Errorf("sweep cache stats off: cold=%+v warm=%+v", coldStats, warmStats)
	}
	report.Sweeps = append(report.Sweeps, SweepBench{
		Workload:    "mp3d",
		Sweep:       "block",
		Points:      points,
		ColdNs:      float64(coldT.Nanoseconds()),
		WarmNs:      float64(warmT.Nanoseconds()),
		WarmHitRate: float64(warmStats.Hits) / float64(points),
		Speedup:     float64(coldT.Nanoseconds()) / float64(warmT.Nanoseconds()),
	})
	t.Logf("mp3d/block sweep: cold=%.1fms warm=%.1fms (%d points, %.0f%% warm hits, %.0fx)",
		float64(coldT.Nanoseconds())/1e6, float64(warmT.Nanoseconds())/1e6,
		points, 100*float64(warmStats.Hits)/float64(points),
		float64(coldT.Nanoseconds())/float64(warmT.Nanoseconds()))

	f, err := os.Create(*benchJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}
