package lsnuma

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestCompareParallelDeterminism guards against shared-state leaks between
// concurrently running machines: every protocol's Result from the parallel
// Compare must be bit-identical to a serial Run of the same configuration.
func TestCompareParallelDeterminism(t *testing.T) {
	for _, tc := range []struct {
		workload string
		cfg      Config
	}{
		{"mp3d", DefaultConfig()},
		{"oltp", OLTPConfig()},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			serial := make(map[Protocol]*Result)
			for _, p := range Protocols() {
				cfg := tc.cfg
				cfg.Protocol = p
				res, err := Run(cfg, tc.workload, ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				serial[p] = res
			}
			parallel, err := CompareContext(context.Background(), tc.cfg, tc.workload, ScaleTest,
				RunOptions{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range Protocols() {
				if !reflect.DeepEqual(serial[p], parallel[p]) {
					t.Errorf("%s/%s: parallel Result differs from serial Result\nserial:   %+v\nparallel: %+v",
						tc.workload, p, serial[p], parallel[p])
				}
			}
		})
	}
}

// TestRunAllDeterminism runs the same point matrix serially and in
// parallel and requires bit-identical results in identical order.
func TestRunAllDeterminism(t *testing.T) {
	points := sweepPoints(t)
	serial, err := RunAll(context.Background(), points, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(context.Background(), points, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if serial[i].Label != points[i].Label || parallel[i].Label != points[i].Label {
			t.Fatalf("result %d out of order: serial %q parallel %q want %q",
				i, serial[i].Label, parallel[i].Label, points[i].Label)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("%s: parallel Result differs from serial", points[i].Label)
		}
	}
}

// TestRunAllErrorIsolation: one invalid point is reported as that point's
// error while every other point completes with a Result.
func TestRunAllErrorIsolation(t *testing.T) {
	bad := DefaultConfig()
	bad.Nodes = 0 // invalid
	points := []Point{
		{Label: "good-1", Config: DefaultConfig(), Workload: "mp3d", Scale: ScaleTest},
		{Label: "bad", Config: bad, Workload: "mp3d", Scale: ScaleTest},
		{Label: "good-2", Config: DefaultConfig(), Workload: "cholesky", Scale: ScaleTest},
	}
	results, err := RunAll(context.Background(), points, RunOptions{Parallelism: 2})
	if err == nil {
		t.Fatal("want aggregated error for the invalid point")
	}
	if results[0].Result == nil || results[0].Err != nil {
		t.Errorf("good-1 did not complete: %+v", results[0].Err)
	}
	if results[1].Err == nil || results[1].Result != nil {
		t.Errorf("bad point not reported: %+v", results[1])
	}
	if results[2].Result == nil || results[2].Err != nil {
		t.Errorf("good-2 did not complete: %+v", results[2].Err)
	}
}

// TestRunAllCancellation: a pre-cancelled context skips all points and
// records the context error per point.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points := []Point{
		{Label: "a", Config: DefaultConfig(), Workload: "mp3d", Scale: ScaleTest},
		{Label: "b", Config: DefaultConfig(), Workload: "lu", Scale: ScaleTest},
	}
	results, err := RunAll(ctx, points, RunOptions{})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled: %v", err)
	}
	for _, r := range results {
		if r.Result != nil {
			t.Errorf("%s: ran despite cancelled context", r.Label)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: Err = %v, want context.Canceled", r.Label, r.Err)
		}
	}
}

// TestSweepGridDefinitions pins the shared Table 1 grids that lssweep,
// lsreport and the benchmarks rely on.
func TestSweepGridDefinitions(t *testing.T) {
	wantLabels := map[SweepParam][]string{
		SweepBlock: {"block=16B", "block=32B", "block=64B", "block=128B"},
		SweepL1:    {"l1=4kB", "l1=16kB", "l1=32kB", "l1=64kB"},
		SweepL2:    {"l2=64kB", "l2=512kB", "l2=1024kB", "l2=2048kB"},
		SweepNodes: {"nodes=2", "nodes=4", "nodes=8", "nodes=16", "nodes=32"},
	}
	for _, param := range SweepParams() {
		grid, err := SweepGrid(param, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var labels []string
		for _, g := range grid {
			labels = append(labels, g.Label)
			if err := g.Config.Validate(); err != nil {
				t.Errorf("%s/%s: invalid grid config: %v", param, g.Label, err)
			}
		}
		if !reflect.DeepEqual(labels, wantLabels[param]) {
			t.Errorf("%s grid = %v, want %v", param, labels, wantLabels[param])
		}
	}
	if _, err := SweepGrid("bogus", DefaultConfig()); err == nil {
		t.Error("bogus sweep param accepted")
	}
	if _, err := ParseSweepParam("nope"); err == nil {
		t.Error("ParseSweepParam accepted garbage")
	}
	if p, err := ParseSweepParam("block"); err != nil || p != SweepBlock {
		t.Errorf("ParseSweepParam(block) = %v, %v", p, err)
	}
}

// TestSweepEndToEnd runs a small sweep through the public API and checks
// the grouped results and baseline normalization inputs are present.
func TestSweepEndToEnd(t *testing.T) {
	results, err := Sweep(context.Background(), DefaultConfig(), SweepNodes, "mp3d", ScaleTest,
		RunOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d grid points, want 5", len(results))
	}
	for _, pt := range results {
		for _, p := range Protocols() {
			r := pt.Results[p]
			if r == nil {
				t.Fatalf("%s/%s: missing result", pt.Label, p)
			}
			if r.ExecTime == 0 {
				t.Errorf("%s/%s: zero execution time", pt.Label, p)
			}
		}
	}
}
