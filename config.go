// Package lsnuma reproduces "Reducing Ownership Overhead for Load-Store
// Sequences in Cache-Coherent Multiprocessors" (Nilsson & Dahlgren, IPPS
// 2000): a program-driven CC-NUMA multiprocessor simulator with three
// coherence protocols — the baseline DASH-like write-invalidate protocol,
// the adaptive migratory protocol (AD, Stenström et al.), and the paper's
// load-store protocol extension (LS) — plus the paper's four workloads and
// the full measurement set (execution-time decomposition, traffic
// categories, read-miss classification, load-store/migratory sequence
// analysis, and Dubois false-sharing classification).
//
// Quick start:
//
//	cfg := lsnuma.DefaultConfig()
//	cfg.Protocol = lsnuma.LS
//	res, err := lsnuma.Run(cfg, "mp3d", lsnuma.ScaleTest)
//
// Compare all three protocols on a workload:
//
//	results, err := lsnuma.Compare(lsnuma.OLTPConfig(), "oltp", lsnuma.ScaleSmall)
package lsnuma

import (
	"fmt"

	"lsnuma/internal/cache"
	"lsnuma/internal/check"
	"lsnuma/internal/directory"
	"lsnuma/internal/engine"
	"lsnuma/internal/fault"
	"lsnuma/internal/network"
	"lsnuma/internal/protocol"
	"lsnuma/internal/workload"
)

// Protocol selects the coherence policy.
type Protocol string

// The three protocols of the paper, plus EX — the static (compiler)
// exclusive-load technique of Skeppstedt & Stenström that the paper
// contrasts with its hardware approach (Sections 2.1 and 6): the baseline
// protocol with the workloads' annotated read-modify-write sites issuing
// combined read+ownership requests.
const (
	Baseline Protocol = "Baseline"
	AD       Protocol = "AD"
	LS       Protocol = "LS"
	EX       Protocol = "EX"
)

// Protocols lists the paper's three protocols in presentation order (EX
// is available separately as an extension).
func Protocols() []Protocol { return []Protocol{Baseline, AD, LS} }

// Scale selects the workload problem size.
type Scale = workload.Scale

// Workload scales.
const (
	ScaleTest  = workload.ScaleTest
	ScaleSmall = workload.ScaleSmall
	ScalePaper = workload.ScalePaper
)

// CheckLevel selects how much online coherence invariant checking a
// simulation performs (see the Robustness section of the README).
type CheckLevel string

const (
	// CheckOff disables online checking (the default; near-zero cost).
	CheckOff CheckLevel = "off"
	// CheckTouched validates every block an operation touches, before and
	// after the transaction.
	CheckTouched CheckLevel = "touched"
	// CheckFull is CheckTouched plus a whole-machine invariant sweep every
	// CheckInterval operations and at the end of the run.
	CheckFull CheckLevel = "full"
)

// ParseCheckLevel converts a level name ("off", "touched", "full"; ""
// means off) to a CheckLevel.
func ParseCheckLevel(s string) (CheckLevel, error) {
	lvl, err := check.ParseLevel(s)
	if err != nil {
		return CheckOff, err
	}
	return CheckLevel(lvl.String()), nil
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Size       uint64 // bytes
	Assoc      int    // 1 = direct mapped
	AccessTime int    // cycles
}

// Variant selects the Section 5.5 protocol ablations.
type Variant struct {
	// DefaultTagged starts every block tagged load-store/migratory.
	DefaultTagged bool
	// KeepOnWriteMiss keeps the LS bit on a write miss from the last
	// reader (the alternative de-tag heuristic).
	KeepOnWriteMiss bool
	// TagHysteresis and DetagHysteresis gate tag flips behind two-step
	// counters when set to 2 (0/1 = immediate).
	TagHysteresis   int
	DetagHysteresis int
}

// Config is the machine configuration (the paper's Table 1).
type Config struct {
	// Nodes is the processor count (the paper uses 4; Figure 5 also uses
	// 16 and 32).
	Nodes int
	// L1 and L2 configure the cache hierarchy.
	L1, L2 CacheConfig
	// BlockSize is the cache block size in bytes (16-256 in the paper).
	BlockSize uint64
	// PageSize is the physical page size for round-robin placement.
	PageSize uint64
	// MemTime, CtrlTime, HopDelay, BytesPerCycle are the latency
	// parameters; zero values take the defaults.
	MemTime, CtrlTime, HopDelay, BytesPerCycle int
	// Mesh2D switches the interconnect from the paper's fixed-delay
	// point-to-point network to a 2-D mesh whose traversal delay scales
	// with Manhattan distance (an extension for distance-sensitive NUMA
	// studies; mostly interesting at 16+ nodes).
	Mesh2D bool
	// Concentration attaches this many nodes to each mesh router (a
	// concentrated mesh), keeping hop counts realistic at 256-1024 nodes:
	// 1024 nodes with Concentration 4 route over a 16x16 router grid.
	// Zero or one is the plain mesh; requires Mesh2D.
	Concentration int
	// DirFormat selects the directory wire format whose storage and
	// invalidation behaviour the run models: "" or "full" (full-map
	// presence vector, the paper's model), "limited:i" (Dir_i_B limited
	// pointers, broadcast on overflow), or "coarse:K" (coarse vector, one
	// bit per K processors). The exact sharer set remains simulation
	// truth in every format — the simulated timeline, traffic, and every
	// classic counter are byte-identical across formats; compact formats
	// additionally report their architectural overshoot in Result.Dir
	// (extra invalidations, broadcasts, overflows) and their modeled
	// entry size in Result.Dir.EntryBits.
	DirFormat string
	// Protocol and Variant select the coherence policy.
	Protocol Protocol
	Variant  Variant
	// TrackFalseSharing enables the Dubois word-granularity classifier
	// (needed for Table 4; costs memory and time).
	TrackFalseSharing bool
	// RelaxedWrites replaces the sequentially consistent stall-on-write
	// model with a write-buffer (relaxed consistency) ablation — the
	// paper's Section 6 discussion: the write-stall savings of LS/AD
	// shrink, the traffic savings remain.
	RelaxedWrites bool
	// MaxCycles aborts runaway runs; zero applies a generous default.
	MaxCycles uint64
	// SerialSchedule forces the per-access handshake scheduler instead of
	// the default run-ahead handoff scheduler. The two produce
	// bit-identical results; the serial path exists for differential
	// testing and debugging (see internal/engine.Config.SerialSchedule).
	SerialSchedule bool
	// Scheduler selects the discrete-event scheduler: "runahead" (or
	// empty, the default), "serial", or "parallel" — the conservative
	// parallel scheduler that shards directory homes across host cores
	// and services independent operations concurrently within
	// Chandy–Misra safe windows. All three produce byte-identical
	// Results; "parallel" silently degrades to run-ahead when a feature
	// incompatible with concurrent service is enabled (fault injection,
	// false-sharing tracking, op recording, the map directory).
	// SerialSchedule=true overrides this field (back compatibility).
	Scheduler string
	// Shards is the number of home shards (worker lanes) for the
	// parallel scheduler; zero picks GOMAXPROCS, clamped to the node
	// count. Results are identical for every shard count.
	Shards int
	// Lookahead caps the per-operation conservative latency bound of the
	// parallel scheduler in cycles (zero = uncapped). Smaller windows
	// reduce batch sizes; results are unaffected. Mostly a tuning and
	// testing knob.
	Lookahead uint64
	// Fuse caps how many operations the parallel scheduler may service
	// in one fused batch streak before resuming the serviced processors
	// (zero = default 1024; 1 disables fusion). Results are identical
	// for every value; purely an amortization/latency knob.
	Fuse uint64
	// Check runs the coherence invariant checker online ("" or CheckOff
	// disables it). Checking is side-effect free: simulated Results are
	// byte-identical with it on or off; a violation aborts the run with a
	// structured error naming the block, CPUs, cache and directory states,
	// and cycle.
	Check CheckLevel
	// CheckInterval is the full-sweep period in serviced operations under
	// CheckFull (zero = the engine default, 4096).
	CheckInterval uint64
	// Faults injects deterministic faults, for validating the checker and
	// the retry machinery. Comma-separated parts: at most one
	// state-corruption class "class[@afterOp][:seed]" (flip-presence,
	// forge-owner, drop-inval, corrupt-home, silent-downgrade,
	// leak-ls-tag), plus any subset of message-fault classes
	// "class[@rate][:seed]" (drop-msg, dup-msg, reorder-msg) applied to
	// every network message. Examples: "forge-owner@500:7",
	// "drop-msg@1e-3", "drop-msg@1e-3,reorder-msg@1e-4:9". Empty disables
	// injection. Never set this for real measurements.
	Faults string
	// RecordOps keeps a ring buffer of the last RecordOps memory
	// operations for crash diagnostics (surfaced in ReproBundle.LastOps).
	// Zero disables the ring.
	RecordOps int
	// DirMSHRs bounds the number of concurrent transactions each home
	// node's directory controller can buffer: a request arriving while
	// every buffer is busy is NACKed and retried under Retry. Zero means
	// unlimited buffers (the classic infinitely-buffered model).
	DirMSHRs int
	// Retry configures the requester-side retry state machine for NACKed
	// and lost transactions: comma-separated key:value fields from
	// {max, base, cap, jitter}, e.g. "max:8,base:200,cap:5000,jitter:42"
	// (omitted fields default to max:16,base:100,cap:10000,jitter:1).
	// Empty disables retries — any NACK or message loss then trips the
	// forward-progress watchdog instead of hanging.
	Retry string
	// ProgressWindow is the forward-progress watchdog's stall budget in
	// cycles (zero = the engine default, 4,000,000): a transaction stuck
	// in NACK/loss recovery longer than this fails the run with a
	// structured starvation error naming the stuck block, its requester
	// set, and the retry histogram.
	ProgressWindow uint64
	// MapDirectory selects the original map-backed directory storage
	// instead of the default flat paged layout. Simulated results are
	// bit-identical either way; the map path exists for differential
	// testing (like SerialSchedule for the scheduler) and costs roughly a
	// third of the simulator's throughput.
	MapDirectory bool
}

// DefaultConfig returns the paper's baseline configuration for the
// scientific workloads: four nodes, a direct-mapped 4 kB L1 and 64 kB L2
// with 16-byte blocks (Section 4.2).
func DefaultConfig() Config {
	return Config{
		Nodes:     4,
		L1:        CacheConfig{Size: 4 * 1024, Assoc: 1, AccessTime: 1},
		L2:        CacheConfig{Size: 64 * 1024, Assoc: 1, AccessTime: 10},
		BlockSize: 16,
		PageSize:  4096,
		Protocol:  Baseline,
	}
}

// OLTPConfig returns the paper's OLTP configuration: a two-way 64 kB L1
// and a direct-mapped 512 kB L2 with 32-byte blocks (Section 4.2).
func OLTPConfig() Config {
	c := DefaultConfig()
	c.L1 = CacheConfig{Size: 64 * 1024, Assoc: 2, AccessTime: 1}
	c.L2 = CacheConfig{Size: 512 * 1024, Assoc: 1, AccessTime: 10}
	c.BlockSize = 32
	return c
}

// engineConfig lowers the public Config to the engine's configuration.
func (c Config) engineConfig() (engine.Config, error) {
	name := string(c.Protocol)
	softwareExclusive := false
	if c.Protocol == EX {
		name = string(Baseline)
		softwareExclusive = true
	}
	kind, err := protocol.ParseKind(name)
	if err != nil {
		return engine.Config{}, err
	}
	timing := engine.DefaultTiming()
	if c.MemTime > 0 {
		timing.MemTime = c.MemTime
	}
	if c.CtrlTime > 0 {
		timing.CtrlTime = c.CtrlTime
	}
	if c.HopDelay > 0 {
		timing.HopDelay = c.HopDelay
	}
	if c.BytesPerCycle > 0 {
		timing.BytesPerCycle = c.BytesPerCycle
	}
	if c.Mesh2D {
		timing.Topology = network.Mesh2D
	}
	timing.Concentration = c.Concentration
	dirFormat, err := directory.ParseFormat(c.DirFormat)
	if err != nil {
		return engine.Config{}, fmt.Errorf("lsnuma: %w", err)
	}
	maxCycles := c.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100_000_000_000
	}
	level, err := check.ParseLevel(string(c.Check))
	if err != nil {
		return engine.Config{}, fmt.Errorf("lsnuma: %w", err)
	}
	injector, msgFaults, err := fault.ParseSpecs(c.Faults)
	if err != nil {
		return engine.Config{}, fmt.Errorf("lsnuma: %w", err)
	}
	retry, err := protocol.ParseRetry(c.Retry)
	if err != nil {
		return engine.Config{}, fmt.Errorf("lsnuma: %w", err)
	}
	sched, err := engine.ParseSched(c.Scheduler)
	if err != nil {
		return engine.Config{}, fmt.Errorf("lsnuma: %w", err)
	}
	return engine.Config{
		Nodes: c.Nodes,
		L1: cache.Config{
			Size: c.L1.Size, Assoc: c.L1.Assoc,
			BlockSize: c.BlockSize, AccessTime: c.L1.AccessTime,
		},
		L2: cache.Config{
			Size: c.L2.Size, Assoc: c.L2.Assoc,
			BlockSize: c.BlockSize, AccessTime: c.L2.AccessTime,
		},
		PageSize: c.PageSize,
		Timing:   timing,
		Protocol: protocol.New(kind, protocol.Variant{
			DefaultTagged:   c.Variant.DefaultTagged,
			KeepOnWriteMiss: c.Variant.KeepOnWriteMiss,
			TagHysteresis:   c.Variant.TagHysteresis,
			DetagHysteresis: c.Variant.DetagHysteresis,
		}),
		TrackSequences:    true,
		TrackFalseSharing: c.TrackFalseSharing,
		SoftwareExclusive: softwareExclusive,
		RelaxedWrites:     c.RelaxedWrites,
		MaxCycles:         maxCycles,
		SerialSchedule:    c.SerialSchedule,
		Sched:             sched,
		Shards:            c.Shards,
		Lookahead:         c.Lookahead,
		FuseLimit:         c.Fuse,
		CheckLevel:        level,
		CheckInterval:     c.CheckInterval,
		FaultInjector:     injector,
		RecordOps:         c.RecordOps,
		DirMSHRs:          c.DirMSHRs,
		Retry:             retry,
		ProgressWindow:    c.ProgressWindow,
		MsgFaults:         msgFaults,
		MapDirectory:      c.MapDirectory,
		DirFormat:         dirFormat,
	}, nil
}

// Validate checks the configuration without building a machine.
func (c Config) Validate() error {
	ec, err := c.engineConfig()
	if err != nil {
		return err
	}
	return ec.Validate()
}

// ProtocolName returns the full protocol name including variant options.
func (c Config) ProtocolName() string {
	if c.Protocol == EX {
		return "EX"
	}
	kind, err := protocol.ParseKind(string(c.Protocol))
	if err != nil {
		return string(c.Protocol)
	}
	return protocol.New(kind, protocol.Variant{
		DefaultTagged:   c.Variant.DefaultTagged,
		KeepOnWriteMiss: c.Variant.KeepOnWriteMiss,
		TagHysteresis:   c.Variant.TagHysteresis,
		DetagHysteresis: c.Variant.DetagHysteresis,
	}).Name()
}
