package lsnuma

// Service-shaped concurrency tests for the result cache (PR 8): the
// single-flight layer must collapse N concurrent computations of one
// cold key into exactly one simulation, for both the persistent cache
// and the store-less dedup cache, and damaged cache files must still
// read as plain misses when many goroutines race the same entry. All of
// these run in CI under -race.

import (
	"bytes"
	"context"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stampedeSettle gives follower goroutines time to queue behind a
// deliberately-blocked flight leader; generous relative to goroutine
// startup so the tests stay deterministic on loaded CI machines.
const stampedeSettle = 100 * time.Millisecond

// TestCacheStampedeSingleCompute pins the dedup contract at the do()
// layer with a countable compute: N goroutines race one cold key, the
// leader blocks until everyone has had time to arrive, and exactly one
// compute runs — every caller sharing its Result, all but one flagged
// Deduped.
func TestCacheStampedeSingleCompute(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func(t *testing.T) *ResultCache
	}{
		{"persistent", func(t *testing.T) *ResultCache { return openCache(t, t.TempDir()) }},
		{"dedup-only", func(t *testing.T) *ResultCache { return NewDedupCache() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rc := tc.open(t)
			pt := cachePoints()[0]
			const n = 16
			var (
				computes atomic.Int64
				started  sync.Once
				arrived  = make(chan struct{})
				release  = make(chan struct{})
			)
			compute := func() (*Result, *ReproBundle, error) {
				computes.Add(1)
				started.Do(func() { close(arrived) })
				<-release
				return &Result{Workload: pt.Workload, Protocol: string(pt.Config.Protocol)}, nil, nil
			}

			var (
				wg      sync.WaitGroup
				results [n]*Result
				deduped [n]bool
				errs    [n]error
			)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], _, _, deduped[i], errs[i] = rc.do(pt, compute)
				}(i)
			}
			<-arrived
			time.Sleep(stampedeSettle)
			close(release)
			wg.Wait()

			if got := computes.Load(); got != 1 {
				t.Fatalf("computes = %d, want exactly 1", got)
			}
			ndeduped := 0
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("caller %d: %v", i, errs[i])
				}
				if results[i] == nil || results[i].Workload != pt.Workload {
					t.Fatalf("caller %d got %+v, want the shared Result", i, results[i])
				}
				if deduped[i] {
					ndeduped++
				}
			}
			if ndeduped != n-1 {
				t.Fatalf("deduped callers = %d, want %d", ndeduped, n-1)
			}
			if s := rc.Stats(); s.Dedups != n-1 || s.Errors != 0 {
				t.Fatalf("stats = %+v, want %d dedups and no errors", s, n-1)
			}
		})
	}
}

// TestRunAllStampede is the end-to-end version: N concurrent RunAll
// calls of one identical cold point against a shared cache must
// simulate at most once (one store miss, everything else a hit or a
// dedup) and hand every caller a byte-identical Result.
func TestRunAllStampede(t *testing.T) {
	rc := openCache(t, t.TempDir())
	pt := cachePoints()[0]

	ref, err := RunAll(context.Background(), []Point{pt}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, ref[0].Result)

	const n = 16
	outs := make([][]PointResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = RunAll(context.Background(), []Point{pt}, RunOptions{Cache: rc})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := exportJSON(t, outs[i][0].Result); !bytes.Equal(got, want) {
			t.Fatalf("run %d: Result differs from uncached reference", i)
		}
	}
	s := rc.Stats()
	if s.Errors != 0 {
		t.Fatalf("stats = %+v, want no cache errors", s)
	}
	// Exactly one simulation: one goroutine missed and computed; each of
	// the others either joined that flight (dedup) or arrived later and
	// hit the store. How the n-1 non-computers split between the two
	// depends on scheduling, but the total is pinned.
	if s.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss (one compute)", s)
	}
	if s.Hits+s.Dedups != n-1 {
		t.Fatalf("stats = %+v, want hits+dedups = %d", s, n-1)
	}
}

// TestCacheCorruptionRace reads one damaged entry from many goroutines
// at once (under -race in CI): every read must degrade to a miss —
// never an error, never a partial Result — and the re-simulated Results
// must match a fresh reference. The damaged file is also concurrently
// rewritten by the winning computation, so this exercises the
// read-while-replace path of the store too.
func TestCacheCorruptionRace(t *testing.T) {
	for _, damage := range []struct {
		name string
		do   func(path string) error
	}{
		{"truncated", func(path string) error { return os.Truncate(path, 7) }},
		{"garbage", func(path string) error { return os.WriteFile(path, []byte("{\"schema\":\"lsnuma-"), 0o644) }},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			pt := cachePoints()[0]
			key, err := PointKey(pt.Config, pt.Workload, pt.Scale)
			if err != nil {
				t.Fatal(err)
			}

			seed := openCache(t, dir)
			ref, err := RunAll(context.Background(), []Point{pt}, RunOptions{Cache: seed})
			if err != nil {
				t.Fatal(err)
			}
			want := exportJSON(t, ref[0].Result)
			if err := damage.do(seed.c.Path(key)); err != nil {
				t.Fatal(err)
			}

			rc := openCache(t, dir)
			const n = 8
			outs := make([][]PointResult, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs[i], errs[i] = RunAll(context.Background(), []Point{pt}, RunOptions{Cache: rc})
				}(i)
			}
			wg.Wait()

			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("run %d: damaged entry surfaced as an error: %v", i, errs[i])
				}
				if got := exportJSON(t, outs[i][0].Result); !bytes.Equal(got, want) {
					t.Fatalf("run %d: Result differs from reference after corruption recovery", i)
				}
			}
			if s := rc.Stats(); s.Errors != 0 {
				t.Fatalf("stats = %+v, want corruption to count as misses, not errors", s)
			}
		})
	}
}
