package lsnuma

// Public-API robustness tests: structured coherence violations through
// Config.Check, fault injection through Config.Faults, the
// retry-once-with-checks-on escalation with its repro bundle, and
// partial sweep results with annotated holes.

import (
	"context"
	"strings"
	"testing"
)

// faultPoint returns a point whose simulation reliably fails: a dropped
// invalidation leaves a stale sharer that later trips an engine
// assertion (checks off) or the online checker (checks on).
func faultPoint(label string) Point {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	cfg.Faults = "drop-inval@200"
	return Point{Label: label, Config: cfg, Workload: "mp3d", Scale: ScaleTest}
}

func goodPoint(label string) Point {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	return Point{Label: label, Config: cfg, Workload: "mp3d", Scale: ScaleTest}
}

// TestCheckedRunCatchesInjectedFault: with online checking on, an
// injected protocol fault surfaces as a structured coherence violation
// rather than a downstream engine panic.
func TestCheckedRunCatchesInjectedFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	cfg.Check = CheckFull
	cfg.CheckInterval = 1
	cfg.Faults = "forge-owner@200"
	_, err := Run(cfg, "mp3d", ScaleTest)
	if err == nil {
		t.Fatal("run with a forged owner completed cleanly")
	}
	if !strings.Contains(err.Error(), "coherence:") {
		t.Errorf("error is not a structured violation: %v", err)
	}
}

// TestRetryEscalation: a point that dies with a cryptic engine panic is
// retried once with checking on; the repro bundle must carry the panic
// stack, the checker's diagnosis, and the tail of the operation ring.
func TestRetryEscalation(t *testing.T) {
	results, err := RunAll(context.Background(),
		[]Point{goodPoint("good"), faultPoint("bad")}, RunOptions{})
	if err == nil {
		t.Fatal("want aggregated error from the failing point")
	}
	if results[0].Result == nil || results[0].Err != nil {
		t.Fatalf("healthy point did not survive the sweep: %+v", results[0].Err)
	}
	bad := results[1]
	if bad.Err == nil || bad.Result != nil {
		t.Fatalf("failing point: Result=%v Err=%v", bad.Result, bad.Err)
	}
	b := bad.Repro
	if b == nil {
		t.Fatal("failing point carries no repro bundle")
	}
	if b.Workload != "mp3d" || b.Config.Faults != "drop-inval@200" {
		t.Errorf("bundle does not reproduce the point: %+v", b)
	}
	if !strings.Contains(b.Stack, "goroutine") {
		t.Errorf("bundle has no panic stack (got %d bytes)", len(b.Stack))
	}
	if !strings.HasPrefix(b.Retry, "checks-on retry failed:") ||
		!strings.Contains(b.Retry, "coherence:") {
		t.Errorf("retry did not diagnose the fault as a coherence violation: %q", b.Retry)
	}
	if len(b.LastOps) == 0 {
		t.Error("retry captured no operation trail")
	} else if s := b.LastOps[len(b.LastOps)-1].String(); !strings.Contains(s, "cpu") {
		t.Errorf("op trace renders oddly: %q", s)
	}
}

// TestNoRetryOption: RunOptions.NoRetry suppresses the escalation — the
// bundle still has the config and stack, but no retry diagnosis.
func TestNoRetryOption(t *testing.T) {
	results, err := RunAll(context.Background(),
		[]Point{faultPoint("bad")}, RunOptions{NoRetry: true})
	if err == nil {
		t.Fatal("want error")
	}
	b := results[0].Repro
	if b == nil {
		t.Fatal("no repro bundle")
	}
	if b.Retry != "" || len(b.LastOps) != 0 {
		t.Errorf("NoRetry still ran the escalation: Retry=%q LastOps=%d", b.Retry, len(b.LastOps))
	}
}

// TestNoDoubleRetry: a point that already ran with checking on is not
// retried (the failure is already structured).
func TestNoDoubleRetry(t *testing.T) {
	pt := faultPoint("checked")
	pt.Config.Check = CheckTouched
	results, err := RunAll(context.Background(), []Point{pt}, RunOptions{})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(results[0].Err.Error(), "coherence:") {
		t.Errorf("checked run did not fail structurally: %v", results[0].Err)
	}
	if b := results[0].Repro; b == nil || b.Retry != "" {
		t.Errorf("checked failure should carry a bundle without retry, got %+v", b)
	}
}

// TestSweepPartialResults: a sweep whose cells fail still returns every
// grid point, with nil holes annotated by their error and bundle.
func TestSweepPartialResults(t *testing.T) {
	base := DefaultConfig()
	base.Faults = "drop-inval@200"
	results, runErr := Sweep(context.Background(), base, SweepBlock, "mp3d", ScaleTest,
		RunOptions{NoRetry: true})
	if len(results) == 0 {
		t.Fatal("sweep returned no grid points")
	}
	var holes, cells int
	for _, pt := range results {
		if len(pt.Results) == 0 {
			t.Errorf("%s: no protocol map", pt.Label)
		}
		for p, r := range pt.Results {
			cells++
			if r != nil {
				if pt.Errs[p] != nil {
					t.Errorf("%s/%s: both result and error", pt.Label, p)
				}
				continue
			}
			holes++
			if pt.Errs[p] == nil {
				t.Errorf("%s/%s: hole without an error annotation", pt.Label, p)
			}
			if pt.Repros[p] == nil {
				t.Errorf("%s/%s: hole without a repro bundle", pt.Label, p)
			}
		}
	}
	if holes == 0 {
		t.Fatal("fault injection produced no failed cells — the partial path went untested")
	}
	if runErr == nil {
		t.Error("sweep with failed cells returned a nil aggregate error")
	}
	t.Logf("%d/%d cells failed, sweep stayed alive", holes, cells)
}

// TestBadFaultSpec: a malformed Config.Faults fails fast at config
// lowering, not mid-run.
func TestBadFaultSpec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = "made-up-class"
	if _, err := Run(cfg, "mp3d", ScaleTest); err == nil ||
		!strings.Contains(err.Error(), "fault:") {
		t.Errorf("bad fault spec not rejected: %v", err)
	}
}

// TestParseCheckLevelPublic covers the public level parser used by the
// CLI flags.
func TestParseCheckLevelPublic(t *testing.T) {
	for _, s := range []string{"off", "touched", "full", ""} {
		if _, err := ParseCheckLevel(s); err != nil {
			t.Errorf("ParseCheckLevel(%q): %v", s, err)
		}
	}
	if _, err := ParseCheckLevel("extreme"); err == nil {
		t.Error("ParseCheckLevel accepted an unknown level")
	}
}
