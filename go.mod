module lsnuma

go 1.22
