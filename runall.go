package lsnuma

import (
	"context"

	"lsnuma/internal/runner"
)

// Point is one independent simulation of a (config, workload, scale)
// triple — one cell of the paper's evaluation matrix.
type Point struct {
	// Label identifies the point in reports (e.g. "block=64B/LS").
	Label    string
	Config   Config
	Workload string
	Scale    Scale
}

// PointResult pairs a Point with its outcome: exactly one of Result and
// Err is non-nil.
type PointResult struct {
	Point
	Result *Result
	Err    error
}

// RunOptions controls the parallel execution of a point set.
type RunOptions struct {
	// Parallelism bounds the number of simulations running at once;
	// <= 0 selects runtime.GOMAXPROCS(0) (all cores).
	Parallelism int
}

// RunAll executes the points concurrently on a bounded worker pool and
// returns their outcomes in point order (deterministic regardless of
// completion order — every Machine is self-contained, so point i's
// Result is bit-identical to a serial Run of the same point).
//
// One failed point does not abort the sweep: all points run, failures
// are recorded per point, and the returned error aggregates them
// (errors.Join of *runner.JobError; nil when everything succeeded).
// Cancelling ctx skips points that have not started and records ctx's
// error for them; points already running complete normally.
func RunAll(ctx context.Context, points []Point, opt RunOptions) ([]PointResult, error) {
	out := make([]PointResult, len(points))
	for i := range points {
		out[i].Point = points[i]
	}
	_, err := runner.Run(ctx, len(points), opt.Parallelism, func(ctx context.Context, i int) error {
		res, err := Run(points[i].Config, points[i].Workload, points[i].Scale)
		if err != nil {
			out[i].Err = err
			return err
		}
		out[i].Result = res
		return nil
	})
	if err != nil {
		// Points skipped by cancellation carry the context error.
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i].Err = ctx.Err()
			}
		}
	}
	return out, err
}

// Compare runs the workload under all three protocols with otherwise
// identical configuration and returns the results keyed by protocol, in
// the paper's order (Baseline, AD, LS). The protocols run concurrently;
// see CompareContext for cancellation and parallelism control.
func Compare(cfg Config, workloadName string, scale Scale) (map[Protocol]*Result, error) {
	return CompareContext(context.Background(), cfg, workloadName, scale, RunOptions{})
}

// CompareContext is Compare with a cancellation context and explicit run
// options. Results are independent per protocol and bit-identical to
// serial Run calls (the simulations share no state).
func CompareContext(ctx context.Context, cfg Config, workloadName string, scale Scale, opt RunOptions) (map[Protocol]*Result, error) {
	protos := Protocols()
	points := make([]Point, len(protos))
	for i, p := range protos {
		c := cfg
		c.Protocol = p
		points[i] = Point{Label: string(p), Config: c, Workload: workloadName, Scale: scale}
	}
	results, err := RunAll(ctx, points, opt)
	if err != nil {
		// Preserve Compare's historical contract: any failure fails the
		// comparison (a protocol comparison with a missing column is
		// useless), reporting the first failed point's error.
		for _, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		return nil, err
	}
	out := make(map[Protocol]*Result, len(protos))
	for i, p := range protos {
		out[p] = results[i].Result
	}
	return out, nil
}
