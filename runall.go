package lsnuma

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lsnuma/internal/engine"
	"lsnuma/internal/runner"
)

// Point is one independent simulation of a (config, workload, scale)
// triple — one cell of the paper's evaluation matrix.
type Point struct {
	// Label identifies the point in reports (e.g. "block=64B/LS").
	Label    string
	Config   Config
	Workload string
	Scale    Scale
}

// PointResult pairs a Point with its outcome: exactly one of Result and
// Err is non-nil. A failed point additionally carries a Repro bundle.
type PointResult struct {
	Point
	Result *Result
	Err    error
	// Repro is the diagnostic bundle of a failed point (nil on success).
	Repro *ReproBundle
	// Cached reports that Result came from the persistent result cache
	// (RunOptions.Cache) instead of a fresh simulation.
	Cached bool
	// Deduped reports that the outcome was shared from a concurrent
	// in-flight computation of an identical point (single-flight
	// stampede protection in RunOptions.Cache) rather than computed or
	// read from disk by this point itself.
	Deduped bool
}

// Fresh reports that the point's Result came from a fresh simulation in
// this process — not the persistent cache, not a shared in-flight
// computation, and not a failure. Durability assertions (the lsnumad
// crash-restart harness) use it to prove that resumed sweeps recompute
// nothing that was already durable.
func (pr PointResult) Fresh() bool {
	return pr.Err == nil && pr.Result != nil && !pr.Cached && !pr.Deduped
}

// OpTrace is one memory operation from a failed run's crash-diagnostics
// ring buffer (Config.RecordOps).
type OpTrace struct {
	CPU  int    // issuing processor
	At   uint64 // processor clock at issue
	Addr uint64
	Size uint32
	Kind string // "load" or "store"
	RMW  bool
}

func (o OpTrace) String() string {
	rmw := ""
	if o.RMW {
		rmw = " (rmw)"
	}
	return fmt.Sprintf("cpu%d@%d %s %#x+%d%s", o.CPU, o.At, o.Kind, o.Addr, o.Size, rmw)
}

// ReproBundle is the diagnostic bundle RunAll captures for a failed
// point: everything needed to reproduce and localize the failure offline.
type ReproBundle struct {
	// Config, Workload and Scale reproduce the failing simulation.
	Config   Config
	Workload string
	Scale    Scale
	// Stack is the panic stack trace when the failure was a panic
	// (empty for clean errors such as coherence violations).
	Stack string
	// Diagnosis is the forward-progress watchdog's full report when the
	// failure was a starvation (engine.StarvationError): the stuck block,
	// its requester set and the retry histogram. Empty otherwise.
	Diagnosis string
	// Retry records the outcome of the automatic retry with the online
	// invariant checker enabled (empty when no retry ran — e.g. the
	// original run already had checking on, the failure was already
	// structured, or RunOptions.NoRetry).
	Retry string
	// LastOps is the tail of the retry run's operation ring: the memory
	// operations serviced just before the failure (empty when the retry
	// succeeded, did not run, or died before servicing anything).
	LastOps []OpTrace
}

// RunOptions controls the parallel execution of a point set.
type RunOptions struct {
	// Parallelism bounds the number of simulations running at once;
	// <= 0 selects runtime.GOMAXPROCS(0) (all cores).
	Parallelism int
	// NoRetry disables the retry-once-with-checks-on escalation for
	// failed points (the retry doubles the cost of a failing cell; bench
	// harnesses and differential tests want the raw failure).
	NoRetry bool
	// PointTimeout bounds each point's wall-clock runtime. An expired
	// point aborts between operations with an engine.CancelledError
	// wrapping context.DeadlineExceeded and is reported as an annotated
	// hole in sweep reports, not retried. Zero means no per-point bound.
	PointTimeout time.Duration
	// Cache, if non-nil, memoizes point Results persistently: each point
	// is looked up by its content hash before simulating (a hit returns
	// the stored Result byte-identically and marks the PointResult
	// Cached), and successful fresh runs are stored back. Failed points
	// are never cached. Concurrent computations of identical points —
	// within one RunAll or across RunAll calls sharing the cache —
	// additionally collapse into a single simulation (single-flight;
	// the sharers are marked Deduped). See OpenResultCache and
	// NewDedupCache.
	Cache *ResultCache
	// OnPoint, if non-nil, is invoked as each point completes (success,
	// cache hit or failure), before RunAll returns — the streaming hook
	// behind the lsnumad daemon's NDJSON responses and the completion
	// cursor its job journal persists (see SweepProgress for the
	// grid-order bookkeeping). Calls come from the
	// worker goroutines in completion order, possibly concurrently: the
	// callback must be safe for concurrent use and should return
	// quickly. Points skipped by context cancellation do not invoke it;
	// they appear only in RunAll's returned slice.
	OnPoint func(i int, pr PointResult)
}

// reproRingSize is the operation-ring length used by the automatic
// checks-on retry of a failed point.
const reproRingSize = 32

// runPointDiag runs one point; on failure it builds the repro bundle and
// — unless disabled — retries once with the online invariant checker
// enabled, so a cryptic panic gets a second chance to be localized as a
// structured coherence violation with an operation trail.
func runPointDiag(ctx context.Context, pt Point, noRetry bool) (*Result, *ReproBundle, error) {
	res, _, err := runNamed(ctx, pt.Config, pt.Workload, pt.Scale)
	if err == nil {
		return res, nil, nil
	}
	bundle := &ReproBundle{Config: pt.Config, Workload: pt.Workload, Scale: pt.Scale}
	var ep *engine.PanicError
	if errors.As(err, &ep) {
		bundle.Stack = string(ep.Stack)
	}
	var starve *engine.StarvationError
	if errors.As(err, &starve) {
		bundle.Diagnosis = starve.Diagnosis()
	}
	// A starvation report or an expired per-point deadline is already a
	// structured, localized failure: the checks-on retry would only burn a
	// second timeout (or re-derive what the watchdog said), so skip it.
	structured := bundle.Diagnosis != "" ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	if noRetry || structured || (pt.Config.Check != "" && pt.Config.Check != CheckOff) {
		return nil, bundle, err
	}
	rcfg := pt.Config
	rcfg.Check = CheckTouched
	if rcfg.RecordOps == 0 {
		rcfg.RecordOps = reproRingSize
	}
	_, m, rerr := runNamed(ctx, rcfg, pt.Workload, pt.Scale)
	if rerr == nil {
		bundle.Retry = "checks-on retry succeeded: the failure did not reproduce under CheckTouched"
		return nil, bundle, err
	}
	bundle.Retry = "checks-on retry failed: " + rerr.Error()
	if m != nil {
		for _, o := range m.LastOps() {
			bundle.LastOps = append(bundle.LastOps, OpTrace{
				CPU: int(o.CPU), At: o.At, Addr: uint64(o.Addr),
				Size: o.Size, Kind: o.Kind.String(), RMW: o.RMW,
			})
		}
	}
	return nil, bundle, err
}

// RunAll executes the points concurrently on a bounded worker pool and
// returns their outcomes in point order (deterministic regardless of
// completion order — every Machine is self-contained, so point i's
// Result is bit-identical to a serial Run of the same point).
//
// One failed point does not abort the sweep: all points run, failures
// are recorded per point, and the returned error aggregates them
// (errors.Join of *runner.JobError; nil when everything succeeded).
// A failed point also carries a ReproBundle — config, panic stack, and
// (after the automatic retry-once-with-checks-on escalation, see
// RunOptions.NoRetry) the checker's diagnosis plus the last operations
// serviced before the failure. Cancelling ctx skips points that have not
// started and records ctx's error for them; points already running
// complete normally.
func RunAll(ctx context.Context, points []Point, opt RunOptions) ([]PointResult, error) {
	out := make([]PointResult, len(points))
	for i := range points {
		out[i].Point = points[i]
	}
	errs, err := runner.RunEach(ctx, len(points), opt.Parallelism, opt.PointTimeout, func(ctx context.Context, i int) error {
		res, bundle, cached, deduped, err := opt.Cache.do(points[i], func() (*Result, *ReproBundle, error) {
			return runPointDiag(ctx, points[i], opt.NoRetry)
		})
		out[i].Result = res
		out[i].Repro = bundle
		out[i].Cached = cached
		out[i].Deduped = deduped
		out[i].Err = err
		if opt.OnPoint != nil {
			opt.OnPoint(i, out[i])
		}
		return err
	})
	if err != nil {
		// Points skipped by cancellation carry the context error; a panic
		// that escaped the job glue itself (outside the engine's own
		// recovery) is surfaced with the runner's captured stack.
		for i := range out {
			if out[i].Result != nil || out[i].Err != nil {
				continue
			}
			out[i].Err = errs[i]
			if out[i].Err == nil {
				out[i].Err = ctx.Err()
			}
			var pe *runner.PanicError
			if errors.As(errs[i], &pe) {
				out[i].Repro = &ReproBundle{
					Config: points[i].Config, Workload: points[i].Workload,
					Scale: points[i].Scale, Stack: string(pe.Stack),
				}
			}
		}
	}
	return out, err
}

// Compare runs the workload under all three protocols with otherwise
// identical configuration and returns the results keyed by protocol, in
// the paper's order (Baseline, AD, LS). The protocols run concurrently;
// see CompareContext for cancellation and parallelism control.
func Compare(cfg Config, workloadName string, scale Scale) (map[Protocol]*Result, error) {
	return CompareContext(context.Background(), cfg, workloadName, scale, RunOptions{})
}

// CompareContext is Compare with a cancellation context and explicit run
// options. Results are independent per protocol and bit-identical to
// serial Run calls (the simulations share no state).
func CompareContext(ctx context.Context, cfg Config, workloadName string, scale Scale, opt RunOptions) (map[Protocol]*Result, error) {
	protos := Protocols()
	points := make([]Point, len(protos))
	for i, p := range protos {
		c := cfg
		c.Protocol = p
		points[i] = Point{Label: string(p), Config: c, Workload: workloadName, Scale: scale}
	}
	results, err := RunAll(ctx, points, opt)
	if err != nil {
		// Preserve Compare's historical contract: any failure fails the
		// comparison (a protocol comparison with a missing column is
		// useless), reporting the first failed point's error.
		for _, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		return nil, err
	}
	out := make(map[Protocol]*Result, len(protos))
	for i, p := range protos {
		out[p] = results[i].Result
	}
	return out, nil
}
