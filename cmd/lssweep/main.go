// Command lssweep runs the paper's variation analysis (Section 5.5 and the
// Table 1 parameter space): cache-size and block-size sweeps for a
// workload under every protocol, printing one summary line per point.
// Normalized lines report both byte traffic (traffic-bytes) and message
// counts (traffic-msgs) so the figures are comparable with the benchmark
// harness.
//
// All (point, protocol) simulations of a sweep are independent and run
// concurrently on a bounded worker pool; -j bounds the parallelism
// (default: all cores) and -timeout aborts points that have not started
// when it expires.
//
// SIGINT/SIGTERM degrade gracefully rather than kill the sweep:
// in-flight simulations abort at their next cancellation poll, the
// completed cells print normally, interrupted cells become annotated
// holes, and fresh results computed before the signal are already in
// the result cache (each point is flushed as it completes).
//
// Usage:
//
//	lssweep -workload mp3d -sweep block
//	lssweep -workload oltp -sweep l2 -j 4
//	lssweep -workload cholesky -sweep nodes -timeout 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lsnuma"
	"lsnuma/internal/report"
	"lsnuma/internal/version"
)

func main() {
	var (
		workloadName = flag.String("workload", "mp3d", "workload: mp3d, cholesky, lu, oltp")
		sweep        = flag.String("sweep", "block", "parameter to sweep: block, l1, l2, nodes")
		scaleName    = flag.String("scale", "test", "problem size: test, small, paper")
		parallelism  = flag.Int("j", 0, "simulations to run concurrently (0 = all cores)")
		timeout      = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		pointTimeout = flag.Duration("point-timeout", 0, "abort any single cell after this long; the cell becomes an annotated hole (0 = no limit)")
		checkLevel   = flag.String("check", "off", "online coherence invariant checking: off, touched, full")
		faults       = flag.String("faults", "", "inject protocol/message faults into every cell: class[@arg][:seed],...")
		mshrs        = flag.Int("mshrs", 0, "per-home directory transaction buffers (0 = unlimited)")
		retry        = flag.String("retry", "", "NACK/loss retry policy: max:N,base:C,cap:C,jitter:S (empty = retries off)")
		scheduler    = flag.String("scheduler", "", "scheduler for every cell: runahead (default), serial, or parallel")
		shards       = flag.Int("shards", 0, "parallel scheduler home shards (0 = GOMAXPROCS)")
		lookahead    = flag.Uint64("lookahead", 0, "parallel scheduler safe-window cap in cycles (0 = uncapped)")
		fuse         = flag.Uint64("fuse", 0, "parallel scheduler fused-streak op cap (0 = default 1024; 1 disables fusion)")
		cpus         = flag.Int("cpus", 0, "processor count for every cell (0 = workload default; the nodes sweep overrides this)")
		dirformat    = flag.String("dirformat", "", "directory wire format: full (default), limited:i, or coarse:K")
		cacheFlag    = flag.Bool("cache", false, "memoize point results in the persistent result cache (default dir .lscache)")
		cacheDir     = flag.String("cache-dir", "", "result cache directory (implies -cache)")
		noCache      = flag.Bool("no-cache", false, "disable the result cache even if -cache/-cache-dir is given")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lssweep"))
		return
	}

	var resultCache *lsnuma.ResultCache
	if (*cacheFlag || *cacheDir != "") && !*noCache {
		var err error
		if resultCache, err = lsnuma.OpenResultCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	var scale lsnuma.Scale
	switch *scaleName {
	case "test":
		scale = lsnuma.ScaleTest
	case "small":
		scale = lsnuma.ScaleSmall
	case "paper":
		scale = lsnuma.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	base := lsnuma.DefaultConfig()
	if *workloadName == "oltp" {
		base = lsnuma.OLTPConfig()
	}
	check, err := lsnuma.ParseCheckLevel(*checkLevel)
	if err != nil {
		fatal(err)
	}
	base.Check = check
	base.Faults = *faults
	base.DirMSHRs = *mshrs
	base.Retry = *retry
	base.Scheduler = *scheduler
	base.Shards = *shards
	base.Lookahead = *lookahead
	base.Fuse = *fuse
	if *cpus > 0 {
		base.Nodes = *cpus
	}
	base.DirFormat = *dirformat

	param, err := lsnuma.ParseSweepParam(*sweep)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the run context: in-flight cells abort at
	// their next poll, untouched cells are skipped, and the partial
	// results below print with annotated holes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// A failed cell must not kill the sweep: print every completed cell,
	// annotate the holes with their error and diagnostic bundle, and exit
	// non-zero at the end if anything failed.
	results, runErr := lsnuma.Sweep(ctx, base, param, *workloadName, scale,
		lsnuma.RunOptions{Parallelism: *parallelism, PointTimeout: *pointTimeout, Cache: resultCache})

	failed := 0
	for _, pt := range results {
		text, f := report.SweepCell(pt)
		failed += f
		fmt.Print(text)
	}
	// Cache traffic goes to stderr so warm and cold invocations keep
	// byte-identical stdout (the CI cached-sweep job diffs it).
	if resultCache != nil {
		s := resultCache.Stats()
		fmt.Fprintf(os.Stderr, "lssweep: cache hits=%d misses=%d skips=%d errors=%d\n",
			s.Hits, s.Misses, s.Skips, s.Errors)
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "lssweep: interrupted (%v); results above are partial with annotated holes\n", err)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "lssweep: %d cell(s) failed (results above are partial)\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lssweep:", err)
	os.Exit(1)
}
