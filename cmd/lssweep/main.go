// Command lssweep runs the paper's variation analysis (Section 5.5 and the
// Table 1 parameter space): cache-size and block-size sweeps for a
// workload under every protocol, printing one summary line per point.
//
// Usage:
//
//	lssweep -workload mp3d -sweep block
//	lssweep -workload oltp -sweep l2
//	lssweep -workload cholesky -sweep nodes
package main

import (
	"flag"
	"fmt"
	"os"

	"lsnuma"
	"lsnuma/internal/report"
)

func main() {
	var (
		workloadName = flag.String("workload", "mp3d", "workload: mp3d, cholesky, lu, oltp")
		sweep        = flag.String("sweep", "block", "parameter to sweep: block, l1, l2, nodes")
		scaleName    = flag.String("scale", "test", "problem size: test, small, paper")
	)
	flag.Parse()

	var scale lsnuma.Scale
	switch *scaleName {
	case "test":
		scale = lsnuma.ScaleTest
	case "small":
		scale = lsnuma.ScaleSmall
	case "paper":
		scale = lsnuma.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	base := lsnuma.DefaultConfig()
	if *workloadName == "oltp" {
		base = lsnuma.OLTPConfig()
	}

	type point struct {
		label string
		cfg   lsnuma.Config
	}
	var points []point
	switch *sweep {
	case "block":
		// Table 1: block sizes 16..128 (OLTP's Table 4 also uses 256).
		for _, b := range []uint64{16, 32, 64, 128} {
			cfg := base
			cfg.BlockSize = b
			points = append(points, point{fmt.Sprintf("block=%dB", b), cfg})
		}
	case "l1":
		// Table 1: L1 sizes 4..64 kB.
		for _, kb := range []uint64{4, 16, 32, 64} {
			cfg := base
			cfg.L1.Size = kb * 1024
			points = append(points, point{fmt.Sprintf("l1=%dkB", kb), cfg})
		}
	case "l2":
		// Table 1: L2 sizes 64 kB..2 MB.
		for _, kb := range []uint64{64, 512, 1024, 2048} {
			cfg := base
			cfg.L2.Size = kb * 1024
			if cfg.L1.Size > cfg.L2.Size {
				cfg.L1.Size = cfg.L2.Size / 2
			}
			points = append(points, point{fmt.Sprintf("l2=%dkB", kb), cfg})
		}
	case "nodes":
		for _, n := range []int{2, 4, 8, 16, 32} {
			cfg := base
			cfg.Nodes = n
			points = append(points, point{fmt.Sprintf("nodes=%d", n), cfg})
		}
	default:
		fatal(fmt.Errorf("unknown sweep %q (want block, l1, l2, nodes)", *sweep))
	}

	for _, pt := range points {
		results, err := lsnuma.Compare(pt.cfg, *workloadName, scale)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", pt.label, err))
		}
		base := results[lsnuma.Baseline]
		fmt.Printf("%s:\n", pt.label)
		for _, p := range lsnuma.Protocols() {
			r := results[p]
			fmt.Printf("  %s\n", report.Summary(r))
			if p != lsnuma.Baseline && base.ExecTime > 0 {
				fmt.Printf("    normalized: exec=%.1f traffic=%.1f read-misses=%.1f\n",
					100*float64(r.ExecTime)/float64(base.ExecTime),
					100*float64(r.Bytes)/float64(base.Bytes),
					100*float64(r.GlobalReadMisses())/float64(base.GlobalReadMisses()))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lssweep:", err)
	os.Exit(1)
}
