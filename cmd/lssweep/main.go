// Command lssweep runs the paper's variation analysis (Section 5.5 and the
// Table 1 parameter space): cache-size and block-size sweeps for a
// workload under every protocol, printing one summary line per point.
// Normalized lines report both byte traffic (traffic-bytes) and message
// counts (traffic-msgs) so the figures are comparable with the benchmark
// harness.
//
// All (point, protocol) simulations of a sweep are independent and run
// concurrently on a bounded worker pool; -j bounds the parallelism
// (default: all cores) and -timeout aborts points that have not started
// when it expires.
//
// Usage:
//
//	lssweep -workload mp3d -sweep block
//	lssweep -workload oltp -sweep l2 -j 4
//	lssweep -workload cholesky -sweep nodes -timeout 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"lsnuma"
	"lsnuma/internal/report"
)

func main() {
	var (
		workloadName = flag.String("workload", "mp3d", "workload: mp3d, cholesky, lu, oltp")
		sweep        = flag.String("sweep", "block", "parameter to sweep: block, l1, l2, nodes")
		scaleName    = flag.String("scale", "test", "problem size: test, small, paper")
		parallelism  = flag.Int("j", 0, "simulations to run concurrently (0 = all cores)")
		timeout      = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		pointTimeout = flag.Duration("point-timeout", 0, "abort any single cell after this long; the cell becomes an annotated hole (0 = no limit)")
		checkLevel   = flag.String("check", "off", "online coherence invariant checking: off, touched, full")
		faults       = flag.String("faults", "", "inject protocol/message faults into every cell: class[@arg][:seed],...")
		mshrs        = flag.Int("mshrs", 0, "per-home directory transaction buffers (0 = unlimited)")
		retry        = flag.String("retry", "", "NACK/loss retry policy: max:N,base:C,cap:C,jitter:S (empty = retries off)")
		scheduler    = flag.String("scheduler", "", "scheduler for every cell: runahead (default), serial, or parallel")
		shards       = flag.Int("shards", 0, "parallel scheduler home shards (0 = GOMAXPROCS)")
		lookahead    = flag.Uint64("lookahead", 0, "parallel scheduler safe-window cap in cycles (0 = uncapped)")
		cpus         = flag.Int("cpus", 0, "processor count for every cell (0 = workload default; the nodes sweep overrides this)")
		dirformat    = flag.String("dirformat", "", "directory wire format: full (default), limited:i, or coarse:K")
		cacheFlag    = flag.Bool("cache", false, "memoize point results in the persistent result cache (default dir .lscache)")
		cacheDir     = flag.String("cache-dir", "", "result cache directory (implies -cache)")
		noCache      = flag.Bool("no-cache", false, "disable the result cache even if -cache/-cache-dir is given")
	)
	flag.Parse()

	var resultCache *lsnuma.ResultCache
	if (*cacheFlag || *cacheDir != "") && !*noCache {
		var err error
		if resultCache, err = lsnuma.OpenResultCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	var scale lsnuma.Scale
	switch *scaleName {
	case "test":
		scale = lsnuma.ScaleTest
	case "small":
		scale = lsnuma.ScaleSmall
	case "paper":
		scale = lsnuma.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	base := lsnuma.DefaultConfig()
	if *workloadName == "oltp" {
		base = lsnuma.OLTPConfig()
	}
	check, err := lsnuma.ParseCheckLevel(*checkLevel)
	if err != nil {
		fatal(err)
	}
	base.Check = check
	base.Faults = *faults
	base.DirMSHRs = *mshrs
	base.Retry = *retry
	base.Scheduler = *scheduler
	base.Shards = *shards
	base.Lookahead = *lookahead
	if *cpus > 0 {
		base.Nodes = *cpus
	}
	base.DirFormat = *dirformat

	param, err := lsnuma.ParseSweepParam(*sweep)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// A failed cell must not kill the sweep: print every completed cell,
	// annotate the holes with their error and diagnostic bundle, and exit
	// non-zero at the end if anything failed.
	results, runErr := lsnuma.Sweep(ctx, base, param, *workloadName, scale,
		lsnuma.RunOptions{Parallelism: *parallelism, PointTimeout: *pointTimeout, Cache: resultCache})

	failed := 0
	for _, pt := range results {
		base := pt.Results[lsnuma.Baseline]
		fmt.Printf("%s:\n", pt.Label)
		for _, p := range lsnuma.Protocols() {
			r := pt.Results[p]
			if r == nil {
				failed++
				fmt.Printf("  %s: FAILED: %v\n", p, pt.Errs[p])
				printRepro(pt.Repros[p])
				continue
			}
			fmt.Printf("  %s\n", report.Summary(r))
			if line := report.Resilience(r); line != "" {
				fmt.Printf("    %s\n", line)
			}
			if p != lsnuma.Baseline && base != nil && base.ExecTime > 0 {
				fmt.Printf("    normalized: exec=%.1f traffic-bytes=%.1f traffic-msgs=%.1f read-misses=%.1f\n",
					100*float64(r.ExecTime)/float64(base.ExecTime),
					100*float64(r.Bytes)/float64(base.Bytes),
					100*float64(r.Msgs)/float64(base.Msgs),
					100*float64(r.GlobalReadMisses())/float64(base.GlobalReadMisses()))
			}
		}
	}
	// Cache traffic goes to stderr so warm and cold invocations keep
	// byte-identical stdout (the CI cached-sweep job diffs it).
	if resultCache != nil {
		s := resultCache.Stats()
		fmt.Fprintf(os.Stderr, "lssweep: cache hits=%d misses=%d skips=%d errors=%d\n",
			s.Hits, s.Misses, s.Skips, s.Errors)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "lssweep: %d cell(s) failed (results above are partial)\n", failed)
		os.Exit(1)
	}
}

// printRepro summarizes a failed cell's diagnostic bundle.
func printRepro(b *lsnuma.ReproBundle) {
	if b == nil {
		return
	}
	if b.Diagnosis != "" {
		for _, line := range strings.Split(b.Diagnosis, "\n") {
			fmt.Printf("    %s\n", line)
		}
	}
	if b.Retry != "" {
		fmt.Printf("    %s\n", b.Retry)
	}
	if n := len(b.LastOps); n > 0 {
		show := b.LastOps
		if n > 8 {
			show = show[n-8:]
		}
		fmt.Printf("    last ops before failure:")
		for _, o := range show {
			fmt.Printf(" [%s]", o)
		}
		fmt.Println()
	}
	if b.Stack != "" {
		fmt.Printf("    panic stack captured (%d bytes); re-run the cell with lssim for the full trace\n", len(b.Stack))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lssweep:", err)
	os.Exit(1)
}
