// Command lsnumad runs the simulator as a hardened sweep service: an
// HTTP daemon accepting point, sweep and comparison jobs (JSON in,
// NDJSON-streamed results out) from many concurrent clients, sharing
// one result cache — with single-flight stampede protection — across
// all of them.
//
// Robustness properties:
//
//   - Admission control: a bounded execution pool plus a bounded wait
//     queue; saturated arrivals are NACKed with 429 and a Retry-After
//     estimate instead of piling up (the service-layer analogue of the
//     simulator's bounded-MSHR NACK/retry discipline).
//   - Panic isolation: a panicking job produces a structured 500 with
//     its repro bundle; the daemon keeps serving.
//   - Graceful drain: SIGTERM/SIGINT stops admissions (503), lets
//     in-flight jobs finish, flushes, and exits; a second signal or the
//     drain deadline aborts remaining work via context cancellation.
//
// Usage:
//
//	lsnumad -addr :8347 -cache -jobs 4 -queue 16
//	curl -s localhost:8347/api/v1/sweep -d '{"workload":"mp3d","sweep":"block"}'
//	curl -s localhost:8347/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lsnuma"
	"lsnuma/internal/server"
	"lsnuma/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8347", "listen address")
		jobs         = flag.Int("jobs", 2, "concurrent job slots")
		queue        = flag.Int("queue", 8, "admission queue depth (beyond it: 429 + Retry-After)")
		parallelism  = flag.Int("j", 0, "per-job simulation parallelism (0 = all cores)")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point wall clock ceiling (0 = none); requests may lower it, never raise it")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
		cacheFlag    = flag.Bool("cache", false, "memoize point results in the persistent result cache (default dir .lscache)")
		cacheDir     = flag.String("cache-dir", "", "result cache directory (implies -cache)")
		noCache      = flag.Bool("no-cache", false, "disable the persistent cache even if -cache/-cache-dir is given (single-flight dedup stays on)")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lsnumad"))
		return
	}

	var cache *lsnuma.ResultCache
	if (*cacheFlag || *cacheDir != "") && !*noCache {
		var err error
		if cache, err = lsnuma.OpenResultCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	srv := server.New(server.Config{
		MaxJobs:      *jobs,
		QueueDepth:   *queue,
		Parallelism:  *parallelism,
		PointTimeout: *pointTimeout,
		Cache:        cache,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "lsnumad: %s listening on %s (jobs=%d queue=%d)\n",
			version.String("lsnumad"), *addr, *jobs, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "lsnumad: %v: draining (deadline %s; signal again to abort)\n", sig, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "lsnumad: second signal: aborting in-flight jobs")
		cancel()
	}()

	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "lsnumad: drain aborted: %v\n", err)
		srv.Close()
		code = 1
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "lsnumad: shutdown: %v\n", err)
		code = 1
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "lsnumad: cache hits=%d misses=%d dedups=%d skips=%d errors=%d\n",
			s.Hits, s.Misses, s.Dedups, s.Skips, s.Errors)
	}
	fmt.Fprintln(os.Stderr, "lsnumad: drained, bye")
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsnumad:", err)
	os.Exit(1)
}
