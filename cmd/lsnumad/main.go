// Command lsnumad runs the simulator as a hardened sweep service: an
// HTTP daemon accepting point, sweep and comparison jobs (JSON in,
// NDJSON-streamed results out) from many concurrent clients, sharing
// one result cache — with single-flight stampede protection — across
// all of them.
//
// Robustness properties:
//
//   - Admission control: a bounded execution pool plus a bounded wait
//     queue; saturated arrivals are NACKed with 429 and a Retry-After
//     estimate instead of piling up (the service-layer analogue of the
//     simulator's bounded-MSHR NACK/retry discipline).
//   - Panic isolation: a panicking job produces a structured 500 with
//     its repro bundle; the daemon keeps serving.
//   - Graceful drain: SIGTERM/SIGINT stops admissions (503), lets
//     in-flight jobs finish, flushes, and exits; a second signal or the
//     drain deadline aborts remaining work via context cancellation.
//   - Crash durability (-state-dir): every accepted job is write-ahead
//     journaled, sweep progress is checkpointed through the result
//     cache, and a restart replays incomplete jobs — a kill -9 costs
//     only the points that were literally in flight.
//   - Per-tenant fairness: admission is deficit-round-robin across the
//     "tenant" request field, so one greedy client cannot starve the
//     queue; anonymous clients share a default bucket with the old FIFO
//     behavior.
//
// Usage:
//
//	lsnumad -addr :8347 -cache -jobs 4 -queue 16
//	lsnumad -addr :8347 -state-dir /var/lib/lsnumad   # durable jobs + cache
//	curl -s localhost:8347/api/v1/sweep -d '{"workload":"mp3d","sweep":"block","tenant":"team-a"}'
//	curl -s localhost:8347/api/v1/jobs/<id>
//	curl -s localhost:8347/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lsnuma"
	"lsnuma/internal/server"
	"lsnuma/internal/server/journal"
	"lsnuma/internal/version"
)

// quantumFlag is the -quantum value: a plain integer sets the default
// deficit-round-robin quantum, and repeatable tenant=N forms set
// per-tenant overrides (weighted DRR).
//
//	-quantum 8 -quantum gold=16 -quantum best-effort=4
type quantumFlag struct {
	def int
	per map[string]int
}

func (q *quantumFlag) String() string {
	parts := []string{}
	if q == nil {
		return ""
	}
	if q.def != 0 {
		parts = append(parts, strconv.Itoa(q.def))
	}
	names := make([]string, 0, len(q.per))
	for name := range q.per {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, q.per[name]))
	}
	return strings.Join(parts, ",")
}

func (q *quantumFlag) Set(s string) error {
	if name, val, ok := strings.Cut(s, "="); ok {
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || name == "" {
			return fmt.Errorf("want tenant=N with N >= 1, got %q", s)
		}
		if q.per == nil {
			q.per = make(map[string]int)
		}
		q.per[name] = n
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return fmt.Errorf("want a non-negative integer or tenant=N, got %q", s)
	}
	q.def = n
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8347", "listen address")
		jobs         = flag.Int("jobs", 2, "concurrent job slots")
		queue        = flag.Int("queue", 8, "admission queue depth (beyond it: 429 + Retry-After)")
		tenantQueue  = flag.Int("tenant-queue", 0, "per-tenant queue depth (0 = same as -queue)")
		quantum      quantumFlag
		retrySeed    = flag.Duration("retry-seed", 0, "assumed job duration for Retry-After before the first job completes (0 = 1s)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); bind loopback unless you mean to expose it")
		stateDir     = flag.String("state-dir", "", "journal accepted jobs under this directory and replay incomplete ones on startup (implies a result cache at <state-dir>/cache unless -cache-dir or -no-cache overrides)")
		parallelism  = flag.Int("j", 0, "per-job simulation parallelism (0 = all cores)")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point wall clock ceiling (0 = none); requests may lower it, never raise it")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
		cacheFlag    = flag.Bool("cache", false, "memoize point results in the persistent result cache (default dir .lscache)")
		cacheDir     = flag.String("cache-dir", "", "result cache directory (implies -cache)")
		noCache      = flag.Bool("no-cache", false, "disable the persistent cache even if -cache/-cache-dir is given (single-flight dedup stays on)")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Var(&quantum, "quantum", "deficit-round-robin quantum in points (0 = default 8); repeatable tenant=N forms weight individual tenants (e.g. -quantum 8 -quantum gold=16)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lsnumad"))
		return
	}

	// -state-dir implies a persistent cache: resumption works by
	// re-reading completed points, so a journal without a cache would
	// replay jobs from scratch.
	if *stateDir != "" && *cacheDir == "" && !*cacheFlag {
		*cacheDir = filepath.Join(*stateDir, "cache")
	}
	var cache *lsnuma.ResultCache
	if (*cacheFlag || *cacheDir != "") && !*noCache {
		var err error
		if cache, err = lsnuma.OpenResultCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lsnumad: "+format+"\n", args...)
	}
	var jn *journal.Journal
	if *stateDir != "" {
		var err error
		if jn, err = journal.Open(*stateDir, logf); err != nil {
			fatal(err)
		}
	}

	srv := server.New(server.Config{
		MaxJobs:          *jobs,
		QueueDepth:       *queue,
		TenantQueueDepth: *tenantQueue,
		Quantum:          quantum.def,
		TenantQuanta:     quantum.per,
		RetrySeed:        *retrySeed,
		Journal:          jn,
		Parallelism:      *parallelism,
		PointTimeout:     *pointTimeout,
		Cache:            cache,
		Logf:             logf,
	})
	if n := srv.Recover(); n > 0 {
		fmt.Fprintf(os.Stderr, "lsnumad: replaying %d incomplete job(s) from %s\n", n, *stateDir)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Profiling endpoints live on their own listener so they are never
	// reachable through the job-serving address. A host-less address
	// (":6060") binds loopback only; exposing the profiler beyond the
	// machine takes an explicit host.
	if *pprofAddr != "" {
		pa := *pprofAddr
		if strings.HasPrefix(pa, ":") {
			pa = "127.0.0.1" + pa
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "lsnumad: pprof listening on %s\n", pa)
			if err := http.ListenAndServe(pa, pm); err != nil {
				fmt.Fprintf(os.Stderr, "lsnumad: pprof: %v\n", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "lsnumad: %s listening on %s (jobs=%d queue=%d)\n",
			version.String("lsnumad"), *addr, *jobs, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "lsnumad: %v: draining (deadline %s; signal again to abort)\n", sig, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "lsnumad: second signal: aborting in-flight jobs")
		cancel()
	}()

	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "lsnumad: drain aborted: %v\n", err)
		srv.Close()
		code = 1
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "lsnumad: shutdown: %v\n", err)
		code = 1
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "lsnumad: cache hits=%d misses=%d dedups=%d skips=%d errors=%d\n",
			s.Hits, s.Misses, s.Dedups, s.Skips, s.Errors)
	}
	fmt.Fprintln(os.Stderr, "lsnumad: drained, bye")
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsnumad:", err)
	os.Exit(1)
}
