// Command lstrace captures a workload's memory-reference trace and
// replays captured traces under any protocol — the trace-driven companion
// to the program-driven simulator.
//
// Usage:
//
//	lstrace -capture -workload mp3d -o mp3d.lstr
//	lstrace -replay mp3d.lstr -protocol LS
//	lstrace -info mp3d.lstr
package main

import (
	"flag"
	"fmt"
	"os"

	"lsnuma"
	"lsnuma/internal/engine"
	"lsnuma/internal/trace"
	"lsnuma/internal/version"
	"lsnuma/internal/workload"
	"lsnuma/internal/workload/cholesky"
	"lsnuma/internal/workload/lu"
	"lsnuma/internal/workload/mp3d"
	"lsnuma/internal/workload/oltp"
)

func main() {
	var (
		capture      = flag.Bool("capture", false, "capture a workload trace")
		replay       = flag.String("replay", "", "replay the given trace file")
		info         = flag.String("info", "", "print statistics about a trace file")
		workloadName = flag.String("workload", "mp3d", "workload to capture")
		protoName    = flag.String("protocol", "Baseline", "protocol for capture/replay")
		scaleName    = flag.String("scale", "test", "problem size for capture")
		out          = flag.String("o", "trace.lstr", "output trace file for capture")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.StringVar(&checkFlag, "check", "off", "online coherence invariant checking: off, touched, full")
	flag.StringVar(&faultsFlag, "faults", "", "inject a protocol fault: class[@afterOp][:seed]")
	flag.StringVar(&schedFlag, "scheduler", "", "scheduler for replay: runahead (default), serial, or parallel (capture always records serially)")
	flag.IntVar(&shardsFlag, "shards", 0, "parallel scheduler home shards (0 = GOMAXPROCS)")
	flag.Uint64Var(&lookFlag, "lookahead", 0, "parallel scheduler safe-window cap in cycles (0 = uncapped)")
	flag.Uint64Var(&fuseFlag, "fuse", 0, "parallel scheduler fused-streak op cap (0 = default 1024; 1 disables fusion)")
	flag.StringVar(&dirfmtFlag, "dirformat", "", "directory wire format: full (default), limited:i, or coarse:K")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lstrace"))
		return
	}

	switch {
	case *capture:
		doCapture(*workloadName, *protoName, *scaleName, *out)
	case *replay != "":
		doReplay(*replay, *protoName)
	case *info != "":
		doInfo(*info)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// checkFlag / faultsFlag / schedFlag are the robustness and scheduler
// knobs shared by capture and replay (see lsnuma.Config.Check /
// Config.Faults / Config.Scheduler). Capture itself always runs
// serially — the recorder hook forces the serial scheduler — but replay
// honours the scheduler selection.
var (
	checkFlag  string
	faultsFlag string
	schedFlag  string
	shardsFlag int
	lookFlag   uint64
	fuseFlag   uint64
	dirfmtFlag string
)

// buildMachine lowers a public config to an engine machine (trace capture
// needs direct engine access for the recorder hook).
func buildMachine(workloadName, protoName string) (*engine.Machine, error) {
	cfg := lsnuma.DefaultConfig()
	if workloadName == "oltp" {
		cfg = lsnuma.OLTPConfig()
	}
	cfg.Protocol = lsnuma.Protocol(protoName)
	check, err := lsnuma.ParseCheckLevel(checkFlag)
	if err != nil {
		return nil, err
	}
	cfg.Check = check
	cfg.Faults = faultsFlag
	cfg.Scheduler = schedFlag
	cfg.Shards = shardsFlag
	cfg.Lookahead = lookFlag
	cfg.Fuse = fuseFlag
	cfg.DirFormat = dirfmtFlag
	return lsnuma.NewEngineMachine(cfg)
}

func newWorkload(name string, scale workload.Scale, cpus int) (workload.Workload, error) {
	switch name {
	case "mp3d":
		return mp3d.New(scale, cpus), nil
	case "cholesky":
		return cholesky.New(scale, cpus), nil
	case "lu":
		return lu.New(scale, cpus), nil
	case "oltp":
		return oltp.New(scale, cpus), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func doCapture(workloadName, protoName, scaleName, out string) {
	scale, err := workload.ParseScale(scaleName)
	if err != nil {
		fatal(err)
	}
	m, err := buildMachine(workloadName, protoName)
	if err != nil {
		fatal(err)
	}
	w, err := newWorkload(workloadName, scale, m.Nodes())
	if err != nil {
		fatal(err)
	}
	progs, err := w.Programs(m)
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f, m.Nodes())
	if err != nil {
		fatal(err)
	}
	errFn := trace.Capture(m, tw)
	if err := m.Run(progs); err != nil {
		fatal(err)
	}
	if err := errFn(); err != nil {
		fatal(err)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("captured %d operations from %s (%s) into %s\n",
		tw.Len(), workloadName, protoName, out)
}

func doReplay(path, protoName string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	m, err := buildMachine("", protoName)
	if err != nil {
		fatal(err)
	}
	if err := m.Run(tr.Programs()); err != nil {
		fatal(err)
	}
	st := m.Stats()
	sum := st.Sum()
	fmt.Printf("replayed %d ops under %s: exec=%d busy=%d rstall=%d wstall=%d msgs=%d eliminated=%d\n",
		len(tr.Ops), protoName, st.ExecTime(), sum.Busy, sum.ReadStall, sum.WriteStall,
		st.TotalMsgs(), st.EliminatedOwnership)
}

func doInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	var loads, stores, rmws uint64
	perCPU := make([]uint64, tr.CPUs)
	for _, op := range tr.Ops {
		perCPU[op.CPU]++
		switch {
		case op.RMW:
			rmws++
		case op.Kind == 1:
			stores++
		default:
			loads++
		}
	}
	fmt.Printf("%s: %d CPUs, %d ops (%d loads, %d stores, %d RMWs)\n",
		path, tr.CPUs, len(tr.Ops), loads, stores, rmws)
	for cpu, n := range perCPU {
		fmt.Printf("  cpu %d: %d ops\n", cpu, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lstrace:", err)
	os.Exit(1)
}
