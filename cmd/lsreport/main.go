// Command lsreport regenerates the paper's evaluation artifacts: the
// behaviour figures (3, 4, 6, 7), the invalidation-traffic figure (5) and
// Tables 2-4, plus the Section 5.5 ablations.
//
// Independent simulation points (the protocols of a comparison, the grid
// points of a table, the ablation variants) run concurrently on a bounded
// worker pool; -j bounds the parallelism (default: all cores) and
// -timeout aborts points that have not started when it expires.
//
// Usage:
//
//	lsreport -all -scale small          # everything the paper reports
//	lsreport -all -j 4                   # at most four concurrent runs
//	lsreport -fig 3                      # MP3D behaviour figure
//	lsreport -fig 5                      # Cholesky at 4/16/32 processors
//	lsreport -table 4                    # false sharing vs block size
//	lsreport -ablations                  # §5.5 variants
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lsnuma"
	"lsnuma/internal/prof"
	"lsnuma/internal/report"
	"lsnuma/internal/version"
)

var (
	scaleFlag    = flag.String("scale", "test", "problem size: test, small, paper")
	parallelism  = flag.Int("j", 0, "simulations to run concurrently (0 = all cores)")
	timeout      = flag.Duration("timeout", 0, "abort the report after this long (0 = no limit)")
	pointTimeout = flag.Duration("point-timeout", 0, "abort any single point after this long; the point becomes an annotated hole (0 = no limit)")
	checkFlag    = flag.String("check", "off", "online coherence invariant checking: off, touched, full")
	faultsFlag   = flag.String("faults", "", "inject protocol/message faults into every point: class[@arg][:seed],...")
	mshrsFlag    = flag.Int("mshrs", 0, "per-home directory transaction buffers (0 = unlimited)")
	retryFlag    = flag.String("retry", "", "NACK/loss retry policy: max:N,base:C,cap:C,jitter:S (empty = retries off)")
	schedFlag    = flag.String("scheduler", "", "scheduler for every point: runahead (default), serial, or parallel")
	dirfmtFlag   = flag.String("dirformat", "", "directory wire format for every point: full (default), limited:i, or coarse:K")
	shardsFlag   = flag.Int("shards", 0, "parallel scheduler home shards (0 = GOMAXPROCS)")
	lookFlag     = flag.Uint64("lookahead", 0, "parallel scheduler safe-window cap in cycles (0 = uncapped)")
	fuseFlag     = flag.Uint64("fuse", 0, "parallel scheduler fused-streak op cap (0 = default 1024; 1 disables fusion)")
	cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	cacheFlag    = flag.Bool("cache", false, "memoize point results in the persistent result cache (default dir .lscache)")
	cacheDir     = flag.String("cache-dir", "", "result cache directory (implies -cache)")
	noCache      = flag.Bool("no-cache", false, "disable the result cache even if -cache/-cache-dir is given")
)

// resultCache is the persistent point-result cache (nil when disabled).
var resultCache *lsnuma.ResultCache

// checkLevel is the parsed -check flag, applied to every simulation
// point by robust.
var checkLevel lsnuma.CheckLevel

// failed counts simulation points that could not be completed; a partial
// report still renders (failed figures become annotated holes) but the
// process exits non-zero.
var failed int

// stopProfiles flushes any active profiles; fatal calls it so profiles
// survive error exits (os.Exit skips the deferred call).
var stopProfiles = func() {}

// runCtx is the cancellation context shared by every simulation of the
// invocation (set up in main from -timeout).
var runCtx = context.Background()

func main() {
	var (
		fig         = flag.Int("fig", 0, "regenerate figure 3, 4, 5, 6 or 7")
		table       = flag.Int("table", 0, "regenerate table 2, 3 or 4")
		ablations   = flag.Bool("ablations", false, "run the §5.5 ablation variants")
		all         = flag.Bool("all", false, "regenerate every figure and table")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lsreport"))
		return
	}

	// SIGINT/SIGTERM cancel the shared run context: in-flight points
	// abort at their next poll, the report renders with annotated holes
	// and the process exits non-zero — graceful degradation, not a kill.
	var stopSignals context.CancelFunc
	runCtx, stopSignals = signal.NotifyContext(runCtx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stop, err := prof.Start(prof.Options{
		CPU: *cpuprofile, Mem: *memprofile,
		Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	if checkLevel, err = lsnuma.ParseCheckLevel(*checkFlag); err != nil {
		fatal(err)
	}

	if (*cacheFlag || *cacheDir != "") && !*noCache {
		if resultCache, err = lsnuma.OpenResultCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	if *all {
		for _, f := range []int{3, 4, 5, 6, 7} {
			figure(f)
		}
		for _, tb := range []int{2, 3, 4} {
			tableOut(tb)
		}
		runAblations()
		exit()
	}
	ran := false
	if *fig != 0 {
		figure(*fig)
		ran = true
	}
	if *table != 0 {
		tableOut(*table)
		ran = true
	}
	if *ablations {
		runAblations()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	exit()
}

// exit terminates the report: non-zero when any point failed, so a
// partial report is distinguishable from a clean one.
func exit() {
	stopProfiles()
	printCacheStats()
	if err := runCtx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "lsreport: interrupted (%v); output above is partial with annotated holes\n", err)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lsreport: %d simulation point(s) failed (output above is partial)\n", failed)
		os.Exit(1)
	}
	os.Exit(0)
}

// printCacheStats summarizes result-cache traffic on stderr (stderr so
// that warm and cold invocations keep byte-identical stdout).
func printCacheStats() {
	if resultCache == nil {
		return
	}
	s := resultCache.Stats()
	fmt.Fprintf(os.Stderr, "lsreport: cache hits=%d misses=%d skips=%d errors=%d\n",
		s.Hits, s.Misses, s.Skips, s.Errors)
}

func scale() lsnuma.Scale {
	switch *scaleFlag {
	case "test":
		return lsnuma.ScaleTest
	case "small":
		return lsnuma.ScaleSmall
	case "paper":
		return lsnuma.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
		return 0
	}
}

func opts() lsnuma.RunOptions {
	return lsnuma.RunOptions{Parallelism: *parallelism, PointTimeout: *pointTimeout, Cache: resultCache}
}

// robust applies the report-wide -check / -faults / -mshrs / -retry /
// -scheduler flags to one point's configuration.
func robust(cfg lsnuma.Config) lsnuma.Config {
	cfg.Check = checkLevel
	cfg.Faults = *faultsFlag
	cfg.DirMSHRs = *mshrsFlag
	cfg.Retry = *retryFlag
	cfg.Scheduler = *schedFlag
	cfg.Shards = *shardsFlag
	cfg.Lookahead = *lookFlag
	cfg.Fuse = *fuseFlag
	cfg.DirFormat = *dirfmtFlag
	return cfg
}

// compare runs the workload under all protocols; a failed protocol
// leaves a hole in the map (annotated on stderr) instead of killing the
// report.
func compare(cfg lsnuma.Config, workload string) map[lsnuma.Protocol]*lsnuma.Result {
	protos := lsnuma.Protocols()
	points := make([]lsnuma.Point, len(protos))
	for i, p := range protos {
		c := robust(cfg)
		c.Protocol = p
		points[i] = lsnuma.Point{Label: fmt.Sprintf("%s/%s", workload, p), Config: c, Workload: workload, Scale: scale()}
	}
	results := runAll(points)
	out := make(map[lsnuma.Protocol]*lsnuma.Result, len(protos))
	for i, p := range protos {
		if results[i].Result != nil {
			out[p] = results[i].Result
		}
	}
	return out
}

// runAll runs a set of points concurrently. Failed points are reported
// on stderr (with their diagnostic bundle) and come back with a nil
// Result — an annotated hole, not a dead report.
func runAll(points []lsnuma.Point) []lsnuma.PointResult {
	results, err := lsnuma.RunAll(runCtx, points, opts())
	if err != nil {
		for _, r := range results {
			if r.Err == nil {
				continue
			}
			failed++
			fmt.Fprintf(os.Stderr, "lsreport: %s: %v\n", r.Label, r.Err)
			if b := r.Repro; b != nil {
				if b.Diagnosis != "" {
					fmt.Fprintf(os.Stderr, "lsreport: %s diagnosis:\n%s\n", r.Label, b.Diagnosis)
				}
				if b.Retry != "" {
					fmt.Fprintf(os.Stderr, "lsreport: %s: %s\n", r.Label, b.Retry)
				}
			}
		}
	}
	return results
}

func figure(n int) {
	switch n {
	case 3:
		fmt.Println(report.BehaviorFigure("Figure 3: Behavior of MP3D",
			compare(lsnuma.DefaultConfig(), "mp3d")))
	case 4:
		fmt.Println(report.BehaviorFigure("Figure 4: Behavior of Cholesky",
			compare(lsnuma.DefaultConfig(), "cholesky")))
	case 5:
		// 3 node counts x 3 protocols, all concurrent.
		nodeCounts := []int{4, 16, 32}
		var points []lsnuma.Point
		for _, nodes := range nodeCounts {
			for _, p := range lsnuma.Protocols() {
				cfg := robust(lsnuma.DefaultConfig())
				cfg.Nodes = nodes
				cfg.Protocol = p
				points = append(points, lsnuma.Point{
					Label:    fmt.Sprintf("procs=%d/%s", nodes, p),
					Config:   cfg,
					Workload: "cholesky",
					Scale:    scale(),
				})
			}
		}
		results := runAll(points)
		byProcs := map[int]map[lsnuma.Protocol]*lsnuma.Result{}
		i := 0
		for _, nodes := range nodeCounts {
			byProcs[nodes] = map[lsnuma.Protocol]*lsnuma.Result{}
			for _, p := range lsnuma.Protocols() {
				if results[i].Result != nil {
					byProcs[nodes][p] = results[i].Result
				}
				i++
			}
		}
		fmt.Println(report.InvalidationFigure(
			"Figure 5: Invalidation traffic for Cholesky at 4, 16, and 32 processors", byProcs))
	case 6:
		fmt.Println(report.BehaviorFigure("Figure 6: Behavior of LU",
			compare(lsnuma.DefaultConfig(), "lu")))
	case 7:
		fmt.Println(report.BehaviorFigure("Figure 7: Behavior of OLTP",
			compare(lsnuma.OLTPConfig(), "oltp")))
	default:
		fatal(fmt.Errorf("no figure %d (have 3, 4, 5, 6, 7)", n))
	}
}

func tableOut(n int) {
	switch n {
	case 2:
		cfg := robust(lsnuma.OLTPConfig())
		cfg.Protocol = lsnuma.Baseline
		pts := []lsnuma.Point{{Label: "table2/oltp", Config: cfg, Workload: "oltp", Scale: scale()}}
		if res := runAll(pts)[0].Result; res != nil {
			fmt.Println(report.Table2(res))
		} else {
			fmt.Println("Table 2: SKIPPED (simulation failed; see stderr)")
		}
	case 3:
		res := compare(lsnuma.OLTPConfig(), "oltp")
		if res[lsnuma.LS] == nil || res[lsnuma.AD] == nil {
			fmt.Println("Table 3: SKIPPED (simulation failed; see stderr)")
			break
		}
		fmt.Println(report.Table3(res[lsnuma.LS], res[lsnuma.AD]))
	case 4:
		blocks := []uint64{16, 32, 64, 128, 256}
		var points []lsnuma.Point
		for _, block := range blocks {
			cfg := robust(lsnuma.OLTPConfig())
			cfg.Protocol = lsnuma.Baseline
			cfg.BlockSize = block
			cfg.TrackFalseSharing = true
			points = append(points, lsnuma.Point{
				Label:    fmt.Sprintf("block=%dB", block),
				Config:   cfg,
				Workload: "oltp",
				Scale:    scale(),
			})
		}
		results := runAll(points)
		byBlock := map[uint64]*lsnuma.Result{}
		for i, block := range blocks {
			if results[i].Result != nil {
				byBlock[block] = results[i].Result
			}
		}
		fmt.Println(report.Table4(byBlock))
	default:
		fatal(fmt.Errorf("no table %d (have 2, 3, 4)", n))
	}
}

// runAblations reproduces the §5.5 variation analysis: default tagging,
// the keep-on-write-miss de-tag heuristic, and two-step hysteresis. The
// variants are independent simulations and run concurrently.
func runAblations() {
	fmt.Println("=== §5.5 ablations (execution time / total traffic / global read misses) ===")
	type variantCase struct {
		name     string
		workload string
		cfg      lsnuma.Config
		variant  lsnuma.Variant
		protocol lsnuma.Protocol
	}
	cases := []variantCase{
		{"LS plain (mp3d)", "mp3d", lsnuma.DefaultConfig(), lsnuma.Variant{}, lsnuma.LS},
		{"LS default-tagged (mp3d)", "mp3d", lsnuma.DefaultConfig(), lsnuma.Variant{DefaultTagged: true}, lsnuma.LS},
		{"AD plain (mp3d)", "mp3d", lsnuma.DefaultConfig(), lsnuma.Variant{}, lsnuma.AD},
		{"AD default-tagged (mp3d)", "mp3d", lsnuma.DefaultConfig(), lsnuma.Variant{DefaultTagged: true}, lsnuma.AD},
		{"LS plain (oltp)", "oltp", lsnuma.OLTPConfig(), lsnuma.Variant{}, lsnuma.LS},
		{"LS default-tagged (oltp)", "oltp", lsnuma.OLTPConfig(), lsnuma.Variant{DefaultTagged: true}, lsnuma.LS},
		{"LS keep-on-write-miss (oltp)", "oltp", lsnuma.OLTPConfig(), lsnuma.Variant{KeepOnWriteMiss: true}, lsnuma.LS},
		{"LS tag-hysteresis=2 (oltp)", "oltp", lsnuma.OLTPConfig(), lsnuma.Variant{TagHysteresis: 2}, lsnuma.LS},
		{"LS detag-hysteresis=2 (oltp)", "oltp", lsnuma.OLTPConfig(), lsnuma.Variant{DetagHysteresis: 2}, lsnuma.LS},
	}
	points := make([]lsnuma.Point, len(cases))
	for i, c := range cases {
		cfg := robust(c.cfg)
		cfg.Protocol = c.protocol
		cfg.Variant = c.variant
		points[i] = lsnuma.Point{Label: c.name, Config: cfg, Workload: c.workload, Scale: scale()}
	}
	results := runAll(points)
	for i, c := range cases {
		res := results[i].Result
		if res == nil {
			fmt.Printf("  %-32s FAILED (see stderr)\n", c.name)
			continue
		}
		fmt.Printf("  %-32s exec=%-10d msgs=%-8d read-misses=%-8d eliminated=%d\n",
			c.name, res.ExecTime, res.Msgs, res.GlobalReadMisses(), res.EliminatedOwnership)
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "lsreport:", err)
	os.Exit(1)
}
