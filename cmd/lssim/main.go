// Command lssim runs one workload on the simulated multiprocessor and
// prints the full measurement set.
//
// Usage:
//
//	lssim -workload oltp -protocol LS -scale small
//	lssim -workload cholesky -protocol all -nodes 16
//	lssim -workload oltp -protocol all -falseshare -block 64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lsnuma"
	"lsnuma/internal/prof"
	"lsnuma/internal/report"
	"lsnuma/internal/version"
)

// stopProfiles flushes any active profiles; fatal calls it so profiles
// survive error exits (os.Exit skips the deferred call).
var stopProfiles = func() {}

func main() {
	var (
		workloadName = flag.String("workload", "mp3d", "workload: mp3d, cholesky, lu, oltp")
		protoName    = flag.String("protocol", "all", "protocol: Baseline, AD, LS, or all")
		scaleName    = flag.String("scale", "test", "problem size: test, small, paper")
		nodes        = flag.Int("nodes", 4, "processor count")
		block        = flag.Uint64("block", 0, "cache block size in bytes (0 = workload default)")
		l1Size       = flag.Uint64("l1", 0, "L1 size in bytes (0 = default)")
		l2Size       = flag.Uint64("l2", 0, "L2 size in bytes (0 = default)")
		falseShare   = flag.Bool("falseshare", false, "enable the Dubois false-sharing classifier")
		defaultTag   = flag.Bool("default-tagged", false, "§5.5: start all blocks tagged")
		keepOnMiss   = flag.Bool("keep-on-write-miss", false, "§5.5: keep tag on LR write miss")
		tagHyst      = flag.Int("tag-hysteresis", 0, "§5.5: tagging hysteresis depth")
		detagHyst    = flag.Int("detag-hysteresis", 0, "§5.5: de-tagging hysteresis depth")
		figure       = flag.Bool("figure", false, "render the three-panel behaviour figure (needs -protocol all)")
		regions      = flag.Bool("regions", false, "print per-region load-store coverage")
		jsonOut      = flag.Bool("json", false, "emit results as JSON instead of text")
		serial       = flag.Bool("serial", false, "use the per-access handshake scheduler (slower; for debugging/differential runs)")
		scheduler    = flag.String("scheduler", "", "scheduler: runahead (default), serial, or parallel (shard homes across host cores)")
		dirformat    = flag.String("dirformat", "", "directory wire format: full (default), limited:i, or coarse:K")
		shards       = flag.Int("shards", 0, "parallel scheduler home shards (0 = GOMAXPROCS)")
		lookahead    = flag.Uint64("lookahead", 0, "parallel scheduler safe-window cap in cycles (0 = uncapped)")
		fuse         = flag.Uint64("fuse", 0, "parallel scheduler fused-streak op cap (0 = default 1024; 1 disables fusion)")
		checkLevel   = flag.String("check", "off", "online coherence invariant checking: off, touched, full")
		faults       = flag.String("faults", "", "inject protocol/message faults: class[@arg][:seed],... (see lsnuma.Config.Faults)")
		mshrs        = flag.Int("mshrs", 0, "per-home directory transaction buffers (0 = unlimited)")
		retry        = flag.String("retry", "", "NACK/loss retry policy: max:N,base:C,cap:C,jitter:S (empty = retries off)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lssim"))
		return
	}

	stop, err := prof.Start(prof.Options{
		CPU: *cpuprofile, Mem: *memprofile,
		Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	cfg := configFor(*workloadName)
	cfg.Nodes = *nodes
	if *block != 0 {
		cfg.BlockSize = *block
	}
	if *l1Size != 0 {
		cfg.L1.Size = *l1Size
	}
	if *l2Size != 0 {
		cfg.L2.Size = *l2Size
	}
	cfg.TrackFalseSharing = *falseShare
	cfg.SerialSchedule = *serial
	cfg.Scheduler = *scheduler
	cfg.Shards = *shards
	cfg.Lookahead = *lookahead
	cfg.Fuse = *fuse
	cfg.DirFormat = *dirformat
	if cfg.Check, err = lsnuma.ParseCheckLevel(*checkLevel); err != nil {
		fatal(err)
	}
	cfg.Faults = *faults
	cfg.DirMSHRs = *mshrs
	cfg.Retry = *retry
	cfg.Variant = lsnuma.Variant{
		DefaultTagged:   *defaultTag,
		KeepOnWriteMiss: *keepOnMiss,
		TagHysteresis:   *tagHyst,
		DetagHysteresis: *detagHyst,
	}

	if *protoName == "all" {
		results, err := lsnuma.Compare(cfg, *workloadName, scale)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := lsnuma.WriteComparisonJSON(os.Stdout, results); err != nil {
				fatal(err)
			}
			return
		}
		if *figure {
			fmt.Println(report.BehaviorFigure(
				fmt.Sprintf("%s (%s, %d CPUs)", *workloadName, *scaleName, *nodes), results))
		}
		for _, p := range lsnuma.Protocols() {
			printResult(results[p])
		}
		return
	}

	cfg.Protocol = lsnuma.Protocol(*protoName)
	res, err := lsnuma.Run(cfg, *workloadName, scale)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	printResult(res)
	if *regions {
		printRegions(res)
	}
}

func printRegions(r *lsnuma.Result) {
	names := make([]string, 0, len(r.RegionCoverage))
	for n := range r.RegionCoverage {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return r.RegionCoverage[names[i]].LoadStoreWrites > r.RegionCoverage[names[j]].LoadStoreWrites
	})
	fmt.Println("    region coverage (load-store writes / eliminated / migratory):")
	for _, n := range names {
		c := r.RegionCoverage[n]
		fmt.Printf("      %-16s ls=%5d elim=%5d (%5.1f%%)  mig=%5d elimMig=%5d\n",
			n, c.LoadStoreWrites, c.LoadStoreEliminated, 100*c.LoadStoreCoverage,
			c.MigratoryWrites, c.MigratoryEliminated)
	}
}

func parseScale(s string) (lsnuma.Scale, error) {
	switch s {
	case "test":
		return lsnuma.ScaleTest, nil
	case "small":
		return lsnuma.ScaleSmall, nil
	case "paper":
		return lsnuma.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want test, small, paper)", s)
	}
}

func configFor(workload string) lsnuma.Config {
	if workload == "oltp" {
		return lsnuma.OLTPConfig()
	}
	return lsnuma.DefaultConfig()
}

func printResult(r *lsnuma.Result) {
	fmt.Println(report.Summary(r))
	fmt.Printf("    read-misses: clean=%d dirty=%d clean-excl=%d dirty-excl=%d\n",
		r.ReadMisses[0], r.ReadMisses[1], r.ReadMisses[2], r.ReadMisses[3])
	fmt.Printf("    sequences: ls-frac=%.3f migratory-frac=%.3f  coverage: ls=%.3f mig=%.3f\n",
		r.Total.LoadStoreFrac, r.Total.MigratoryFrac,
		r.Coverage.LoadStoreCoverage, r.Coverage.MigratoryCoverage)
	fmt.Printf("    inv/global-write=%.3f exclusive-grants=%d failed-predictions=%d\n",
		r.InvalidationsPerGlobalWrite, r.ExclusiveGrants, r.FailedPredictions)
	var distTotal uint64
	for _, v := range r.SequenceDistance {
		distTotal += v
	}
	if distTotal > 0 {
		fmt.Printf("    ls-seq distance:")
		for i, v := range r.SequenceDistance {
			fmt.Printf(" %s:%.0f%%", []string{"0", "1-3", "4-15", "16-63", "64-255", ">=256"}[i],
				100*float64(v)/float64(distTotal))
		}
		fmt.Println()
	}
	if r.FalseSharingFrac > 0 || r.MissKinds[0] > 0 {
		fmt.Printf("    misses: cold=%d repl=%d true-sharing=%d false-sharing=%d (false frac %.3f)\n",
			r.MissKinds[0], r.MissKinds[1], r.MissKinds[2], r.MissKinds[3], r.FalseSharingFrac)
	}
	printResilience(&r.Resil)
}

// printResilience reports the resilient transaction layer's activity;
// silent on classic (reliable, unlimited-buffer) runs.
func printResilience(rs *lsnuma.ResilRow) {
	if rs.Nacks == 0 && rs.Retries == 0 &&
		rs.DroppedMsgs == 0 && rs.DupMsgs == 0 && rs.ReorderedMsgs == 0 {
		return
	}
	fmt.Printf("    resilience: nacks=%d retries=%d (mean %.4f/txn, max %d) resends=%d\n",
		rs.Nacks, rs.Retries, rs.MeanRetries, rs.MaxRetries, rs.TimeoutResends)
	fmt.Printf("      backoff: total=%d cycles, max=%d  faults: dropped=%d dup=%d reordered=%d\n",
		rs.BackoffCycles, rs.MaxBackoff, rs.DroppedMsgs, rs.DupMsgs, rs.ReorderedMsgs)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "lssim:", err)
	os.Exit(1)
}
